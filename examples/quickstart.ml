(* Quickstart: model a toy ECU in CSPm, check a security property, and
   read a counterexample.

   Run with: dune exec examples/quickstart.exe *)

let script =
  {|
-- A door-lock ECU: it must never unlock while the vehicle is moving.
nametype Speed = {0..3}

channel speed : Speed       -- periodic speed report on the bus
channel lockCmd             -- lock request
channel unlockCmd           -- unlock request
channel unlocked            -- the actuator fires

-- The implementation model (as a model extractor would produce it):
-- the ECU tracks the last speed report and honours unlock requests
-- only when stationary... except the developer compared with <= 1
-- instead of == 0.
ECU(v) =
     speed?s -> ECU(s)
  [] lockCmd -> ECU(v)
  [] unlockCmd -> (if v <= 1 then unlocked -> ECU(v) else ECU(v))

-- The security property: between a speed report above zero and the
-- next zero report, the actuator must not fire.
SAFE = speed?s -> (if s == 0 then SAFE else MOVING) [] lockCmd -> SAFE
    [] unlockCmd -> SAFE [] unlocked -> SAFE
MOVING = speed?s -> (if s == 0 then SAFE else MOVING) [] lockCmd -> MOVING
    [] unlockCmd -> MOVING

assert SAFE [T= ECU(0)
assert ECU(0) :[deadlock free]
|}

let () =
  print_endline "Loading the CSPm script...";
  let loaded = Cspm.Elaborate.load_string script in
  let outcomes = Cspm.Check.run loaded in
  Format.printf "@[<v>%a@]@." Cspm.Check.pp_outcomes outcomes;
  (* The refinement fails: the counterexample trace shows the flaw.
     Reading it: a speed report of 1 (moving slowly), then an unlock
     request, then the actuator fires. *)
  (match
     List.find_opt
       (fun o -> not (Csp.Refine.holds o.Cspm.Check.result))
       outcomes
   with
   | Some { Cspm.Check.result = Csp.Refine.Fails cex; _ } ->
     Format.printf "@.The flaw, as a trace: %a@."
       Csp.Pretty.pp_trace cex.Csp.Refine.trace
   | _ -> print_endline "unexpected: every assertion passed");
  (* Fix the comparison and re-check. *)
  print_endline "\nApplying the fix (v <= 1 becomes v == 0) and re-checking...";
  let replace ~sub ~by s =
    let sl = String.length sub in
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i <= String.length s - sl do
      if String.sub s !i sl = sub then begin
        Buffer.add_string buf by;
        i := !i + sl
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.add_string buf (String.sub s !i (String.length s - !i));
    Buffer.contents buf
  in
  let fixed = replace ~sub:"v <= 1" ~by:"v == 0" script in
  let outcomes = Cspm.Check.run (Cspm.Elaborate.load_string fixed) in
  Format.printf "@[<v>%a@]@." Cspm.Check.pp_outcomes outcomes
