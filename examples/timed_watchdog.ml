(* The tock-timed translation (the paper's Section VII-B future-work item,
   implemented): a watchdog ECU that must raise an alarm if the engine
   controller stops sending its heartbeat — a deadline property that the
   untimed model cannot even express.

   Run with: dune exec examples/timed_watchdog.exe *)

let dbc =
  "BU_: ENGINE WATCHDOG\n\
   BO_ 16 heartbeat: 1 ENGINE\n\
   \ SG_ seq : 0|2@1+ (1,0) [0|3] \"\" WATCHDOG\n\
   BO_ 32 alarm: 1 WATCHDOG\n\
   \ SG_ code : 0|2@1+ (1,0) [0|3] \"\" ENGINE\n"

(* The watchdog re-arms a 30 ms timeout on every heartbeat; if it expires,
   the alarm goes out. *)
let watchdog_src =
  {|
variables {
  message alarm mAlarm;
  msTimer deadline;
}
on start { setTimer(deadline, 30); }
on message heartbeat {
  setTimer(deadline, 30);   // heartbeat arrived in time: re-arm
}
on timer deadline {
  mAlarm.code = 1;
  output(mAlarm);
}
|}

let () =
  let config =
    {
      Extractor.Extract.default_config with
      timed = true;
      tock_ms = 10;  (* one tock = 10 ms, so the deadline is 3 tocks *)
    }
  in
  let system =
    Extractor.Pipeline.build_from_sources ~config ~dbc
      [ "WATCHDOG", watchdog_src ]
  in
  print_endline "Timed model extracted from the watchdog CAPL source:";
  print_endline (Extractor.Pipeline.emit_script system);

  let defs = system.Extractor.Pipeline.defs in
  let watchdog = system.Extractor.Pipeline.composed in

  (* Deadline property 1: the alarm never fires while heartbeats keep
     coming faster than the deadline. The environment below emits a
     heartbeat every 2 tocks. *)
  Csp.Defs.define_proc defs "PUNCTUAL" []
    (Csp.Proc.send "tock" []
       (Csp.Proc.send "tock" []
          (Csp.Proc.send "heartbeat" [ Csp.Value.Int 0 ]
             (Csp.Proc.call ("PUNCTUAL", [])))));
  let healthy =
    Csp.Proc.par
      ( Csp.Proc.call ("PUNCTUAL", []),
        Csp.Eventset.chans [ "tock"; "heartbeat" ],
        watchdog )
  in
  let no_alarm =
    Security.Properties.never defs
      ~alphabet:(Csp.Eventset.chans [ "tock"; "heartbeat"; "alarm" ])
      ~forbidden:(Csp.Eventset.chan "alarm")
  in
  Format.printf "punctual heartbeats => no alarm: %a@.@." Csp.Refine.pp_result
    (Csp.Refine.traces_refines defs ~spec:no_alarm ~impl:healthy);

  (* Deadline property 2: if the engine goes silent, the alarm fires after
     exactly three tocks — no earlier, no later. *)
  Csp.Defs.define_proc defs "SILENT" []
    (Csp.Proc.send "tock" [] (Csp.Proc.call ("SILENT", [])));
  let dead_engine =
    Csp.Proc.par
      ( Csp.Proc.call ("SILENT", []),
        Csp.Eventset.chans [ "tock"; "heartbeat" ],
        watchdog )
  in
  (* spec: exactly three tocks, then the alarm, then time flows again *)
  Csp.Defs.define_proc defs "DEADLINE" []
    (Csp.Proc.send "tock" []
       (Csp.Proc.send "tock" []
          (Csp.Proc.send "tock" []
             (Csp.Proc.send "alarm" [ Csp.Value.Int 1 ]
                (Csp.Proc.run (Csp.Eventset.chans [ "tock" ]))))));
  Format.printf "silent engine => alarm after exactly 30 ms: %a@."
    Csp.Refine.pp_result
    (Csp.Refine.traces_refines defs ~spec:(Csp.Proc.call ("DEADLINE", []))
       ~impl:dead_engine);

  (* And in the failures model: the alarm is not just possible but
     unavoidable (the watchdog cannot refuse it). *)
  Format.printf "alarm is inevitable (failures model): %a@."
    Csp.Refine.pp_result
    (Csp.Refine.failures_refines defs
       ~spec:(Csp.Proc.call ("DEADLINE", []))
       ~impl:dead_engine)
