(* The paper's Section V case study, end to end: the X.1373 over-the-air
   software-update system, its Table III requirements, and the attack
   scenarios.

   Run with: dune exec examples/ota_update.exe *)

let line = String.make 72 '-'

let show_scenario title scenario =
  Format.printf "%s@.%s@.%s@." line title line;
  let checks = Ota.Requirements.run_all scenario in
  List.iter (fun c -> Format.printf "%a@." Ota.Requirements.pp_check c) checks;
  Format.printf "deadlock freedom: %a@.@." Csp.Refine.pp_result
    (Ota.Scenario.deadlock_result scenario)

let () =
  (* 1. The baseline of the paper's Fig. 2: VMG and ECU over a faithful
     network. Every requirement holds. *)
  show_scenario "Secure ECU, reliable network (paper Fig. 2 baseline)"
    (Ota.Scenario.make ());

  (* 2. Same agents, but the network is a Dolev-Yao attacker who owns a
     key of their own — but not the OEM shared key. The MAC check
     protects the update path (R05 still holds), but the unauthenticated
     diagnosis exchange is spoofable: R02's counterexample shows the ECU
     answering an inventory request the VMG never sent. *)
  show_scenario "Secure ECU, Dolev-Yao intruder"
    (Ota.Scenario.make ~medium:Ota.Scenario.Intruder ());

  (* 3. The flawed ECU that skips MAC verification: the intruder forges
     an apply-update message under its own key and the ECU installs it.
     R05's counterexample is the concrete attack trace. *)
  show_scenario "Flawed ECU (no MAC check), Dolev-Yao intruder"
    (Ota.Scenario.make ~check_macs:false ~medium:Ota.Scenario.Intruder ());

  (* 4. A compromised shared key defeats even the checking ECU —
     requirement R05's assumption is load-bearing. *)
  show_scenario "Secure ECU, intruder with the leaked shared key"
    (Ota.Scenario.make ~medium:Ota.Scenario.Intruder_with_shared_key ());

  (* 5. The paper's future-work scope: update server + VMG + ECU with the
     extended X.1373 message set. *)
  let extended = Ota.Scenario.make_extended () in
  Format.printf "%s@.Extended scope (update server, X.1373 full exchange)@.%s@."
    line line;
  Format.printf "deadlock freedom: %a@." Csp.Refine.pp_result
    (Ota.Scenario.deadlock_result extended);
  Format.printf "divergence freedom: %a@." Csp.Refine.pp_result
    (Ota.Scenario.divergence_result extended)
