(* The paper's core contribution, live: translate the CAPL programs of the
   demonstration network (Fig. 2) into the CSPm script of Fig. 3, check
   security properties on the result, and validate the translation by
   conformance against the executing network.

   Run with: dune exec examples/capl_translation.exe *)

let line = String.make 72 '-'

let () =
  (* 1. Build the system through the full pipeline: DBC parse, CAPL lex +
     parse, model extraction, composition. *)
  Format.printf "%s@.Model extraction (paper Fig. 1 workflow)@.%s@." line line;
  let system = Ota.Capl_sources.build_system () in
  List.iter
    (fun (node, w) ->
      Format.printf "note: %s: %a@." node Extractor.Extract.pp_warning w)
    (Extractor.Pipeline.warnings system);

  (* 2. The generated artifact — this is our Fig. 3. *)
  Format.printf "@.Generated CSPm script:@.@.%s@."
    (Extractor.Pipeline.emit_script system);

  (* 3. Feed the script back through the CSPm front end (the FDR hand-off)
     and make sure it elaborates. *)
  let _reloaded = Extractor.Pipeline.reload system in
  Format.printf "Round trip through the CSPm parser: ok@.";

  (* 4. Check the SP02-style integrity property on the extracted model:
     with node-internal timer events hidden, requests and responses
     alternate. *)
  let defs = system.Extractor.Pipeline.defs in
  let spec =
    Security.Properties.alternation ~name:"SP02" defs ~first:"reqSw"
      ~second:"rptSw"
  in
  let internal = Csp.Eventset.chans [ "timer_VMG_retry"; "reqApp"; "rptUpd" ] in
  let impl = Csp.Proc.hide (system.Extractor.Pipeline.composed, internal) in
  Format.printf "@.SP02 (diagnosis alternation) on the extracted model: %a@."
    Csp.Refine.pp_result
    (Csp.Refine.traces_refines defs ~spec ~impl);

  (* 5. Conformance: run the same CAPL sources on the simulated CAN bus
     and check the observed frame trace is a trace of the model. *)
  let sim = Ota.Capl_sources.simulation () in
  let report = Extractor.Conformance.run_and_check system sim in
  Format.printf "@.Conformance of the executing network to the model: %a@."
    Extractor.Conformance.pp_report report;
  Format.printf "Observed bus trace:@.";
  List.iter
    (fun e -> Format.printf "  %a@." Csp.Event.pp e)
    report.Extractor.Conformance.trace;

  (* 6. The flawed firmware: extraction finds the missing tag check. The
     property: an update is only applied (rptUpd) for requests carrying a
     valid tag. *)
  Format.printf "@.%s@.Checking the flawed ECU firmware@.%s@." line line;
  (* Compose each firmware variant with an attacker node that injects a
     badly-tagged update request, and watch whether an update installs. *)
  let atk_dbc = Ota.Capl_sources.dbc in
  let attacker_src =
    {|
variables { message reqApp mEvil; }
on start {
  mEvil.version = 1;
  mEvil.tag = 0;      // wrong tag: attacker does not know the secret
  output(mEvil);
}
|}
  in
  (* Multiple senders share the reqApp identifier here (the VMG and the
     attacker), so compose through the BUS relay. *)
  let bus_config =
    { Extractor.Extract.default_config with bus_medium = true }
  in
  let compromised =
    Extractor.Pipeline.build_from_sources ~config:bus_config ~dbc:atk_dbc
      (("ATTACKER", attacker_src) :: Ota.Capl_sources.sources_flawed)
  in
  let cdefs = compromised.Extractor.Pipeline.defs in
  (* The property: an update result (rptUpd) may only follow an apply
     request carrying the correct tag — checked over the {reqApp, rptUpd}
     projection of the bus traffic. *)
  let tag_spec defs name =
    let open Csp in
    Defs.define_proc defs (name ^ "AFTER") [ "v" ]
      (Proc.prefix "rptUpd" [ Expr.Var "v" ] (Proc.call (name, [])));
    Defs.define_proc defs name []
      (Proc.ext_over
         ( "v",
           Expr.Ty_dom (Ty.Named "ReqApp_version"),
           Proc.ext_over
             ( "t",
               Expr.Ty_dom (Ty.Named "ReqApp_tag"),
               Proc.prefix "reqApp"
                 [ Expr.Var "v"; Expr.Var "t" ]
                 (Proc.ite
                    ( Expr.Bin
                        ( Expr.Eq,
                          Expr.Var "t",
                          Expr.Bin
                            ( Expr.Mod,
                              Expr.Bin (Expr.Add, Expr.Var "v", Expr.int 5),
                              Expr.int 8 ) ),
                      Proc.call (name ^ "AFTER", [ Expr.Var "v" ]),
                      Proc.call (name, []) )) ) ));
    Proc.call (name, [])
  in
  let tx_chans_of system =
    List.concat_map
      (fun (_, m) -> List.map fst m.Extractor.Extract.tx_channels)
      system.Extractor.Pipeline.nodes
  in
  let project system =
    Csp.Proc.hide
      ( system.Extractor.Pipeline.composed,
        Csp.Eventset.chans
          ([ "timer_VMG_retry"; "reqSw"; "rptSw" ] @ tx_chans_of system) )
  in
  Format.printf
    "flawed ECU + attacker node: 'installs only on a valid tag' (expected \
     to FAIL):@.%a@."
    Csp.Refine.pp_result
    (Csp.Refine.traces_refines cdefs ~spec:(tag_spec cdefs "TAGSPEC")
       ~impl:(project compromised));
  let secure =
    Extractor.Pipeline.build_from_sources ~config:bus_config ~dbc:atk_dbc
      (("ATTACKER", attacker_src) :: Ota.Capl_sources.sources)
  in
  let sdefs = secure.Extractor.Pipeline.defs in
  Format.printf
    "secure ECU + attacker node: 'installs only on a valid tag' (expected \
     to hold): %a@."
    Csp.Refine.pp_result
    (Csp.Refine.traces_refines sdefs ~spec:(tag_spec sdefs "TAGSPEC")
       ~impl:(project secure))
