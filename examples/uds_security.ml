(* A second automotive security case study: UDS SecurityAccess (ISO 14229
   service 0x27). A diagnostic tester unlocks protected ECU services with
   a seed/key handshake:

     tester -> ECU : requestSeed
     ECU    -> tester : seed s          (should be unpredictable)
     tester -> ECU : key f(s)           (f is the OEM-secret algorithm)
     ECU    : unlock if the key matches

   The secret algorithm is modelled as a MAC under an OEM key the attacker
   does not hold, so the Dolev-Yao intruder can only replay keys it has
   captured. Three verdicts fall out of refinement checking:

   1. with no captured material, neither ECU variant can be unlocked;
   2. a flawed ECU that issues a CONSTANT seed is unlocked by replaying
      one captured key;
   3. even the random-seed ECU falls to the same replay when the seed
      space is tiny — the checker exhibits the seed-collision run — and
      survives once the collision is excluded. Seed entropy, not the
      handshake shape, carries the security.

   Run with: dune exec examples/uds_security.exe *)

module P = Csp.Proc
module E = Csp.Expr
module V = Csp.Value

let alg_key = Security.Crypto.key "kAlg"

let uds_key s = Security.Crypto.mac alg_key s
let e_mac k v = E.Ctor ("mac", [ k; v ])
let e_alg_key = E.Ctor ("key", [ E.sym "kAlg" ])

(* seed_mode: how the ECU picks seeds *)
type seed_mode =
  | Constant_seed  (* the flaw: always 0 *)
  | Random_seed  (* internal choice over the whole space *)
  | Fresh_seed  (* random, excluding the attacker's captured seed *)

let build ~seed_mode ~captured =
  let defs = Csp.Defs.create () in
  Csp.Defs.declare_nametype defs "Seed" (Csp.Ty.Int_range (0, 3));
  Csp.Defs.declare_datatype defs "KeyName" [ "kAlg", [] ];
  Csp.Defs.declare_datatype defs "Key" [ "key", [ Csp.Ty.Named "KeyName" ] ];
  Csp.Defs.declare_datatype defs "Mac"
    [ "mac", [ Csp.Ty.Named "Key"; Csp.Ty.Named "Seed" ] ];
  Csp.Defs.declare_datatype defs "Agent" [ "tester", []; "ecu", [] ];
  Csp.Defs.declare_datatype defs "Pkt"
    [
      "reqSeed", [];
      "seedP", [ Csp.Ty.Named "Seed" ];
      "keyP", [ Csp.Ty.Named "Mac" ];
      "writeReq", [];
    ];
  Csp.Defs.declare_channel defs "send"
    [ Csp.Ty.Named "Agent"; Csp.Ty.Named "Agent"; Csp.Ty.Named "Pkt" ];
  Csp.Defs.declare_channel defs "recv"
    [ Csp.Ty.Named "Agent"; Csp.Ty.Named "Pkt" ];
  Csp.Defs.declare_channel defs "unlocked" [ Csp.Ty.Named "Seed" ];
  let recv_e p cont = P.prefix_items ("recv", [ P.Out (E.sym "ecu"); P.Out p ], cont) in
  let send_e p cont =
    P.prefix_items ("send", [ P.Out (E.sym "ecu"); P.Out (E.sym "tester"); P.Out p ], cont)
  in
  (* UNLOCKED: the protected service is now reachable *)
  Csp.Defs.define_proc defs "UNLOCKED" []
    (recv_e (E.sym "writeReq") (P.call ("UNLOCKED", [])));
  (* ECU: the seed/key gate *)
  let await_key s_expr =
    P.ext_over
      ( "m",
        E.Ty_dom (Csp.Ty.Named "Mac"),
        recv_e
          (E.Ctor ("keyP", [ E.Var "m" ]))
          (P.ite
             ( E.Bin (E.Eq, E.Var "m", e_mac e_alg_key s_expr),
               P.prefix_items
                 ("unlocked", [ P.Out s_expr ], P.call ("UNLOCKED", [])),
               P.call ("ECU", []) )) )
  in
  let challenge =
    match seed_mode with
    | Constant_seed ->
      send_e (E.Ctor ("seedP", [ E.int 0 ])) (await_key (E.int 0))
    | Random_seed ->
      P.int_over
        ( "s",
          E.Ty_dom (Csp.Ty.Named "Seed"),
          send_e (E.Ctor ("seedP", [ E.Var "s" ])) (await_key (E.Var "s")) )
    | Fresh_seed ->
      P.int_over
        ( "s",
          E.Range (E.int 1, E.int 3),
          send_e (E.Ctor ("seedP", [ E.Var "s" ])) (await_key (E.Var "s")) )
  in
  Csp.Defs.define_proc defs "ECU" [] (recv_e (E.sym "reqSeed") challenge);
  (* the intruder is the network; agents = just the ECU (tester absent:
     we are asking what an attacker can do alone) *)
  let config =
    { Security.Intruder.send_chan = "send"; recv_chan = "recv";
      knowledge = captured }
  in
  let intruder = Security.Intruder.define defs config in
  let system =
    Security.Intruder.compose (P.call ("ECU", []))
      ~medium:(P.call (intruder, [])) config
  in
  defs, system

let check_never_unlocked ~seed_mode ~captured =
  let defs, system = build ~seed_mode ~captured in
  let spec =
    Security.Properties.never defs
      ~alphabet:(Csp.Eventset.chans [ "send"; "recv"; "unlocked" ])
      ~forbidden:(Csp.Eventset.chan "unlocked")
  in
  Csp.Refine.traces_refines defs ~spec ~impl:system

let report name result =
  match result with
  | Csp.Refine.Holds stats ->
    Format.printf "%-52s SECURE (%d states)@." name stats.Csp.Refine.pairs
  | Csp.Refine.Fails cex ->
    Format.printf "%-52s UNLOCKED by the attacker:@." name;
    Format.printf "    %s@." (Csp.Pretty.trace_to_string cex.Csp.Refine.trace)
  | Csp.Refine.Inconclusive (_, hint) ->
    Format.printf "%-52s INCONCLUSIVE (%a)@." name Csp.Refine.pp_resume_hint
      hint

let () =
  print_endline "UDS SecurityAccess (0x27) under a Dolev-Yao attacker";
  print_endline "====================================================\n";
  print_endline "1. Attacker with no captured material:";
  report "   constant-seed ECU"
    (check_never_unlocked ~seed_mode:Constant_seed ~captured:[]);
  report "   random-seed ECU"
    (check_never_unlocked ~seed_mode:Random_seed ~captured:[]);
  print_endline
    "\n2. Attacker who captured one key (for seed 0) in an earlier session:";
  let captured = [ uds_key (V.Int 0) ] in
  report "   constant-seed ECU (replay attack expected)"
    (check_never_unlocked ~seed_mode:Constant_seed ~captured);
  report "   random-seed ECU (seed collision expected!)"
    (check_never_unlocked ~seed_mode:Random_seed ~captured);
  report "   fresh-seed ECU (collision excluded)"
    (check_never_unlocked ~seed_mode:Fresh_seed ~captured);
  print_endline
    "\nThe random-seed counterexample is the point: with a tiny seed space\n\
     the handshake is replayable whenever the seed repeats — seed entropy,\n\
     not the challenge-response shape, carries UDS SecurityAccess."
