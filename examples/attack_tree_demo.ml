(* Attack trees as CSP (paper Section IV-E): build the attack tree for
   tampering with an OTA update, translate it to a CSP process with the
   cited semantics, and use refinement to ask which attacks the system
   under test actually admits.

   Run with: dune exec examples/attack_tree_demo.exe *)

module AT = Security.Attack_tree
module V = Csp.Value

(* Attack goal: get a forged update module installed on the ECU.

   OR ── replay a captured valid update
      └─ AND(ordered) ── obtain the shared key
                      └─ forge the apply-update message
                      └─ deliver it to the ECU *)

let capture_and_replay =
  AT.ordered_and
    [
      AT.action "capture" [ V.sym "reqApp" ];
      AT.action "inject" [ V.sym "reqApp" ];
    ]

let forge_with_key =
  AT.ordered_and
    [
      AT.action "steal_key" [];
      AT.action "forge" [ V.sym "reqApp" ];
      AT.action "inject" [ V.sym "reqApp" ];
    ]

let goal = AT.or_node [ capture_and_replay; forge_with_key ]

let () =
  Format.printf "Attack tree: %a@." AT.pp goal;
  Format.printf "Leaves: %d, distinct attack sequences: %d@.@." (AT.size goal)
    (List.length (AT.sequences goal));
  (* The paper's semantics: the set of action sequences of the SP graph. *)
  List.iter
    (fun seq ->
      Format.printf "  <%a>@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Csp.Event.pp)
        seq)
    (AT.sequences goal);

  (* Translate to CSP (Action -> prefix, '.' -> ';', '||' -> '|||',
     OR -> '[]') and check the equivalence the paper states: the process's
     completed traces are exactly the sequences. *)
  let defs = Csp.Defs.create () in
  Csp.Defs.declare_datatype defs "Msg" [ "reqApp", [] ];
  Csp.Defs.declare_channel defs "capture" [ Csp.Ty.Named "Msg" ];
  Csp.Defs.declare_channel defs "inject" [ Csp.Ty.Named "Msg" ];
  Csp.Defs.declare_channel defs "steal_key" [];
  Csp.Defs.declare_channel defs "forge" [ Csp.Ty.Named "Msg" ];
  let proc = AT.to_proc goal in
  Format.printf "@.As a CSP process: %a@." Csp.Pretty.pp_proc proc;
  let lts = Csp.Lts.compile defs proc in
  Format.printf "LTS: %a@." Csp.Lts.pp_stats lts;

  (* Which attacks can the secured system actually perform? Compose the
     attack process with a defender model: the shared key is never
     stolen, so only the replay branch remains feasible. *)
  let defender =
    (* The defender forbids steal_key by synchronizing on it and never
       offering it (SKIP so that joint termination stays possible). *)
    Csp.Proc.par (proc, Csp.Eventset.chan "steal_key", Csp.Proc.skip)
  in
  let feasible = Csp.Traces.of_lts (Csp.Lts.compile defs defender) in
  let complete =
    List.filter (fun tr -> List.mem Csp.Event.Tick tr) feasible
  in
  Format.printf
    "@.With key theft blocked, %d of %d attack sequences stay feasible:@."
    (List.length complete)
    (List.length (AT.sequences goal));
  List.iter
    (fun tr -> Format.printf "  %a@." Csp.Pretty.pp_trace tr)
    complete
