(* Driver for the Needham-Schroeder public-key model that lives in
   [Security.Ns_protocol]: reproduces Lowe's man-in-the-middle attack on
   the original protocol, verifies Lowe's fix, and then demonstrates the
   budgeted engine by re-running the fixed check under a deliberately
   tiny wall-clock deadline, which ends [Inconclusive] with partial
   statistics instead of an exception.

   Run with: dune exec examples/needham_schroeder.exe *)

let () =
  Format.printf
    "Needham-Schroeder public key, original form (Lowe's attack expected):@.";
  (match Security.Ns_protocol.check ~fixed:false () with
   | Csp.Refine.Fails cex ->
     Format.printf "BROKEN — the man-in-the-middle attack:@.";
     List.iter
       (fun l -> Format.printf "  %a@." Csp.Event.pp_label l)
       cex.Csp.Refine.trace
   | Csp.Refine.Holds _ | Csp.Refine.Inconclusive _ ->
     Format.printf "unexpectedly secure — check the model!@.");
  Format.printf "@.With Lowe's fix (responder identity in message 2):@.";
  (match Security.Ns_protocol.check ~fixed:true () with
   | Csp.Refine.Holds stats ->
     Format.printf "secure: authentication holds (%d states explored)@."
       stats.Csp.Refine.pairs
   | Csp.Refine.Fails cex ->
     Format.printf "unexpected attack: %a@." Csp.Refine.pp_counterexample cex
   | Csp.Refine.Inconclusive (_, hint) ->
     Format.printf "ran out of budget: %a@." Csp.Refine.pp_resume_hint hint);
  Format.printf "@.Same check under a 1 ms wall-clock budget:@.";
  match Security.Ns_protocol.check
          ~config:
            Csp.Check_config.(
              Security.Ns_protocol.default_config |> with_deadline 0.001)
          ~fixed:true () with
  | Csp.Refine.Inconclusive (stats, hint) ->
    Format.printf
      "inconclusive, as expected: %d pairs explored, %a@."
      stats.Csp.Refine.pairs Csp.Refine.pp_resume_hint hint
  | r ->
    Format.printf "finished inside 1 ms (%a) — fast machine!@."
      Csp.Refine.pp_result r
