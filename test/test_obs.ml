(* The observability layer: JSON round-trips, histogram bucketing, span
   nesting, Check_config's builders — and the load-bearing guarantee that
   instrumentation never changes what the checker computes: verdicts,
   counterexamples, and stats are byte-identical whatever the sink and
   whatever the worker count. *)

open Csp

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          "str", Str "line\nbreak \"quoted\" back\\slash";
          "int", Num 42.;
          "neg", Num (-2.5);
          "flags", List [ Bool true; Bool false; Null ];
          "nested", Obj [ "empty_list", List []; "empty_obj", Obj [] ];
        ])
  in
  (match Obs.Json.parse (Obs.Json.to_string v) with
   | Ok v' -> check_bool "round-trip preserves structure" true (v = v')
   | Error msg -> Alcotest.fail ("round-trip failed to parse: " ^ msg));
  (* integral floats print without a fraction part *)
  check_string "integral rendering" "42" Obs.Json.(to_string (Num 42.));
  (* accessors *)
  (match Obs.Json.parse " {\"a\": [1, 2.5, \"\\u0041\"], \"b\": true} " with
   | Ok j ->
     let a = Option.get (Obs.Json.member "a" j) in
     (match a with
      | Obs.Json.List [ one; half; letter ] ->
        check_int "to_int" 1 (Option.get (Obs.Json.to_int one));
        check_bool "to_int rejects fractions" true
          (Obs.Json.to_int half = None);
        Alcotest.(check (float 1e-9)) "to_float" 2.5
          (Option.get (Obs.Json.to_float half));
        check_string "unicode escape" "A" (Option.get (Obs.Json.to_str letter))
      | _ -> Alcotest.fail "unexpected shape for member a");
     check_bool "member miss" true (Obs.Json.member "zzz" j = None)
   | Error msg -> Alcotest.fail ("parse failed: " ^ msg));
  (* malformed inputs are Errors, not exceptions *)
  List.iter
    (fun bad ->
      match Obs.Json.parse bad with
      | Ok _ -> Alcotest.failf "parse accepted %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* a live handle whose output goes nowhere we look *)
let scratch_handle () =
  Obs.create (Obs.Console (Format.make_formatter (fun _ _ _ -> ()) ignore))

let test_histogram_bucketing () =
  let obs = scratch_handle () in
  (* deliberately unsorted bounds: registration must sort them *)
  let h = Obs.histogram ~buckets:[| 10.; 1.; 100. |] obs "h" in
  List.iter (Obs.observe h) [ 0.5; 1.0; 5.0; 1000.0 ];
  check_int "observations" 4 (Obs.histogram_observations h);
  Alcotest.(check (float 1e-6)) "sum" 1006.5 (Obs.histogram_sum h);
  (match Obs.histogram_counts h with
   | [ (b0, c0); (b1, c1); (b2, c2); (b3, c3) ] ->
     Alcotest.(check (float 0.)) "bound 0" 1. b0;
     Alcotest.(check (float 0.)) "bound 1" 10. b1;
     Alcotest.(check (float 0.)) "bound 2" 100. b2;
     check_bool "overflow bound" true (b3 = infinity);
     (* 0.5 and the 1.0 boundary land in le1; 5 in le10; 1000 overflows *)
     check_int "le1" 2 c0;
     check_int "le10" 1 c1;
     check_int "le100" 0 c2;
     check_int "overflow" 1 c3
   | l -> Alcotest.failf "expected 4 buckets, got %d" (List.length l));
  (* the second lookup of a name shares state with the first *)
  let h' = Obs.histogram obs "h" in
  Obs.observe h' 2.0;
  check_int "shared state" 5 (Obs.histogram_observations h)

let test_counters_and_gauges () =
  let obs = scratch_handle () in
  let c = Obs.counter obs "c" in
  Obs.incr c;
  Obs.add c 10;
  check_int "counter accumulates" 11 (Obs.counter_value c);
  check_int "same-name counter shares the cell" 11
    (Obs.counter_value (Obs.counter obs "c"));
  let g = Obs.gauge obs "g" in
  Obs.set g 3.5;
  Alcotest.(check (float 0.)) "gauge holds last value" 3.5 (Obs.gauge_value g);
  (* one name, two kinds: a programming error that must fail loudly *)
  (match Obs.gauge obs "c" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind mismatch must raise Invalid_argument");
  (* snapshot is sorted by name and sees everything registered *)
  (match Obs.metrics obs with
   | [ ("c", Obs.Counter 11); ("g", Obs.Gauge 3.5) ] -> ()
   | ms -> Alcotest.failf "unexpected snapshot of %d metrics" (List.length ms));
  (* silent handles register nothing and updates vanish *)
  let sc = Obs.counter Obs.silent "c" in
  Obs.incr sc;
  check_int "silent counter stays 0" 0 (Obs.counter_value sc);
  check_bool "silent snapshot is empty" true (Obs.metrics Obs.silent = []);
  check_bool "create Silent is the shared handle" true
    (Obs.is_silent (Obs.create Obs.Silent))

let test_span_nesting () =
  let path = Filename.temp_file "test_obs" ".jsonl" in
  let oc = open_out path in
  let obs = Obs.create (Obs.Jsonl oc) in
  Obs.span obs "outer" (fun () -> Obs.span obs "inner" (fun () -> ()));
  (* the duration is recorded even when the body raises *)
  (try Obs.span obs "raises" (fun () -> raise Exit) with Exit -> ());
  Obs.flush obs;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let spans =
    List.filter_map
      (fun line ->
        match Obs.Json.parse line with
        | Error msg -> Alcotest.failf "unparseable trace line: %s" msg
        | Ok j ->
          (match Obs.Json.(member "ev" j, member "name" j, member "depth" j) with
           | Some (Obs.Json.Str "span"), Some (Obs.Json.Str name), Some d ->
             Some (name, Option.get (Obs.Json.to_int d))
           | _ -> None))
      (List.rev !lines)
  in
  (* spans emit at close: the inner one first, one level deeper *)
  match spans with
  | [ ("inner", 1); ("outer", 0); ("raises", 0) ] -> ()
  | _ ->
    Alcotest.failf "unexpected span stream: %s"
      (String.concat "; "
         (List.map (fun (n, d) -> Printf.sprintf "%s@%d" n d) spans))

(* ------------------------------------------------------------------ *)
(* Check_config                                                        *)
(* ------------------------------------------------------------------ *)

let test_check_config_builders () =
  let d = Check_config.default in
  check_int "default max_states" 1_000_000 d.Check_config.max_states;
  check_bool "default max_pairs" true (d.Check_config.max_pairs = None);
  check_bool "default deadline" true (d.Check_config.deadline = None);
  check_int "default workers" 1 d.Check_config.workers;
  check_bool "default obs is silent" true (Obs.is_silent d.Check_config.obs);
  check_bool "default progress" true (d.Check_config.progress = None);
  check_bool "default interner" true (d.Check_config.interner = `Id);
  let c =
    Check_config.(
      default |> with_max_states 7 |> with_max_pairs 9 |> with_deadline 0.5
      |> with_workers 3
      |> with_interner `Structural)
  in
  check_int "with_max_states" 7 c.Check_config.max_states;
  check_bool "with_max_pairs" true (c.Check_config.max_pairs = Some 9);
  check_bool "with_deadline" true (c.Check_config.deadline = Some 0.5);
  check_int "with_workers" 3 c.Check_config.workers;
  check_bool "with_interner" true (c.Check_config.interner = `Structural);
  (* each builder touches only its own field *)
  check_int "orthogonal" 1_000_000
    (Check_config.with_workers 5 d).Check_config.max_states

(* ------------------------------------------------------------------ *)
(* Instrumentation changes nothing                                     *)
(* ------------------------------------------------------------------ *)

let render result =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (match result with
   | Refine.Holds s ->
     Format.fprintf ppf "Holds impl=%d spec=%d pairs=%d" s.Refine.impl_states
       s.Refine.spec_nodes s.Refine.pairs
   | Refine.Fails cex ->
     Format.fprintf ppf "Fails %a" Refine.pp_counterexample cex
   | Refine.Inconclusive (s, hint) ->
     Format.fprintf ppf "Inconclusive impl=%d spec=%d pairs=%d %a"
       s.Refine.impl_states s.Refine.spec_nodes s.Refine.pairs
       Refine.pp_resume_hint hint);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* every sink the engine can run under; handles are fresh per run but the
   discarding channel is shared, so qcheck iterations don't leak fds *)
let devnull = lazy (open_out Filename.null)

let sinks =
  [
    "silent", (fun () -> Obs.silent);
    "console", (fun () -> scratch_handle ());
    "jsonl", (fun () -> Obs.create (Obs.Jsonl (Lazy.force devnull)));
  ]

let obs_identity =
  QCheck.Test.make ~count:40
    ~name:"verdicts byte-identical across sinks and worker counts"
    (QCheck.pair Helpers.arb_proc Helpers.arb_proc)
    (fun (spec, impl) ->
      let defs = Helpers.make_defs () in
      let run sink w =
        let config =
          Check_config.(
            default |> with_max_states 50_000 |> with_workers w
            |> with_obs (sink ()))
        in
        render (Refine.check ~config defs ~spec ~impl)
      in
      let expected = run (fun () -> Obs.silent) 1 in
      List.for_all
        (fun (label, sink) ->
          List.for_all
            (fun w ->
              let got = run sink w in
              if String.equal expected got then true
              else
                QCheck.Test.fail_reportf
                  "sink=%s workers=%d diverged:@.silent/j1: %s@.got:       %s"
                  label w expected got)
            [ 1; 2; 4 ])
        sinks)

(* A chain long enough (2000 states > the 256-dequeue poll cadence) that
   the throttled progress callback must fire, with sane monotone fields —
   and firing must not perturb the verdict. *)
let test_progress_callback () =
  let n = 2000 in
  let defs = Defs.create () in
  Defs.declare_channel defs "a" [ Ty.Int_range (0, n - 1) ];
  Defs.define_proc defs "CHAIN" [ "i" ]
    (Proc.prefix "a" [ Expr.var "i" ]
       (Proc.call
          ( "CHAIN",
            [ Expr.Bin (Expr.Mod, Expr.(var "i" + int 1), Expr.int n) ] )));
  let impl = Proc.call ("CHAIN", [ Expr.int 0 ]) in
  let spec = Proc.run (Eventset.chan "a") in
  let ticks = ref [] in
  (* reductions off: against the all-accepting RUN spec the default
     pipeline collapses the chain to a handful of states, and a search
     that short never reaches a 256-dequeue progress poll *)
  let raw = Check_config.(default |> with_reductions []) in
  let config =
    Check_config.(
      raw
      |> with_progress (fun (p : Search.progress) -> ticks := p :: !ticks))
  in
  let plain = render (Refine.traces_refines ~config:raw defs ~spec ~impl) in
  let observed = render (Refine.traces_refines ~config defs ~spec ~impl) in
  check_string "progress does not perturb the verdict" plain observed;
  let ticks = List.rev !ticks in
  check_bool "callback fired" true (List.length ticks >= 2);
  let pairs = List.map (fun p -> p.Search.pairs) ticks in
  check_bool "pair counts monotone" true
    (List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length pairs - 1) pairs)
       (List.tl pairs));
  List.iter
    (fun (p : Search.progress) ->
      check_bool "explored positive" true (p.Search.explored > 0);
      check_bool "budget fraction in range" true
        (p.Search.budget_frac >= 0. && p.Search.budget_frac <= 1.);
      check_bool "elapsed non-negative" true (p.Search.elapsed_s >= 0.))
    ticks

let suite =
  ( "obs",
    [
      Alcotest.test_case "Json round-trip and accessors" `Quick
        test_json_roundtrip;
      Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
      Alcotest.test_case "counters, gauges, registry" `Quick
        test_counters_and_gauges;
      Alcotest.test_case "span nesting in the JSONL stream" `Quick
        test_span_nesting;
      Alcotest.test_case "Check_config defaults and builders" `Quick
        test_check_config_builders;
      QCheck_alcotest.to_alcotest obs_identity;
      Alcotest.test_case "throttled progress callback" `Quick
        test_progress_callback;
    ] )
