(* Tests for the CSPm front end: lexing, parsing, elaboration, printing
   (round trip), and assertion checking. *)

open Cspm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = List.map fst (Lexer.tokens src)

let test_lexer_symbols () =
  check_int "dense symbols"
    (List.length
       [ Lexer.EXTCHOICE; Lexer.INTCHOICE; Lexer.INTERLEAVE; Lexer.LINTERFACE;
         Lexer.RINTERFACE; Lexer.LCHANSET; Lexer.RCHANSET; Lexer.REFINES_T;
         Lexer.REFINES_F; Lexer.EOF ])
    (List.length (toks "[] |~| ||| [| |] {| |} [T= [F="));
  (match toks "a -> b" with
   | [ Lexer.IDENT "a"; Lexer.ARROW; Lexer.IDENT "b"; Lexer.EOF ] -> ()
   | _ -> Alcotest.fail "arrow lexing");
  match toks "P [[ a <- b ]]" with
  | [ Lexer.IDENT "P"; Lexer.LRENAME; Lexer.IDENT "a"; Lexer.LARROW;
      Lexer.IDENT "b"; Lexer.RRENAME; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "rename lexing"

let test_lexer_comments () =
  (match toks "a -- comment\nb" with
   | [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ] -> ()
   | _ -> Alcotest.fail "line comment");
  (match toks "a {- x {- nested -} y -} b" with
   | [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ] -> ()
   | _ -> Alcotest.fail "nested block comment");
  try
    ignore (toks "{- unterminated");
    Alcotest.fail "expected Lex_error"
  with Lexer.Lex_error _ -> ()

let test_lexer_positions () =
  match Lexer.tokens "a\n  b" with
  | [ (_, p1); (_, p2); _ ] ->
    check_int "line 1" 1 p1.Ast.line;
    check_int "line 2" 2 p2.Ast.line;
    check_int "col 3" 3 p2.Ast.col
  | _ -> Alcotest.fail "token count"

(* A literal wider than the native int must be a positioned lexical
   error, not an uncaught [Failure "int_of_string"]. *)
let test_lexer_int_overflow () =
  (match toks (string_of_int max_int) with
   | [ Lexer.NUM n; Lexer.EOF ] -> check_int "max_int still lexes" max_int n
   | _ -> Alcotest.fail "max_int lexing");
  try
    ignore (Lexer.tokens "P = c!99999999999999999999 -> STOP");
    Alcotest.fail "expected Lex_error"
  with Lexer.Lex_error (msg, pos) ->
    check_bool "message names the literal" true
      (Helpers.contains msg "99999999999999999999");
    check_bool "message says out of range" true (Helpers.contains msg "out of range");
    check_int "error line" 1 pos.Ast.line;
    check_int "error col is the token start" 7 pos.Ast.col

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_precedence () =
  (* ; binds tighter than [], which binds tighter than |||, loosest \ *)
  (match Parser.term "P; Q [] R" with
   | Ast.T_extchoice (Ast.T_seq _, Ast.T_id "R") -> ()
   | t -> Alcotest.failf "seq vs choice: %a" Print.pp_term t);
  (match Parser.term "P [] Q ||| R" with
   | Ast.T_interleave (Ast.T_extchoice _, Ast.T_id "R") -> ()
   | t -> Alcotest.failf "choice vs interleave: %a" Print.pp_term t);
  (match Parser.term "P ||| Q \\ {| a |}" with
   | Ast.T_hide (Ast.T_interleave _, _) -> ()
   | t -> Alcotest.failf "hide loosest: %a" Print.pp_term t);
  match Parser.term "a -> b -> STOP [] c -> STOP" with
  | Ast.T_extchoice (Ast.T_prefix _, Ast.T_prefix _) -> ()
  | t -> Alcotest.failf "prefix vs choice: %a" Print.pp_term t

let test_parse_prefix_fields () =
  match Parser.term "c!1?x:{0..2}.y -> STOP" with
  | Ast.T_prefix ({ Ast.chan = "c"; fields }, Ast.T_stop) ->
    (match fields with
     | [ Ast.F_out (Ast.T_num 1);
         Ast.F_in ("x", Some (Ast.T_range (Ast.T_num 0, Ast.T_num 2)));
         Ast.F_dot (Ast.T_id "y") ] -> ()
     | _ -> Alcotest.fail "field shapes")
  | _ -> Alcotest.fail "prefix shape"

let test_parse_backtracking () =
  (* an identifier that is not a communication parses as an expression *)
  (match Parser.term "x + 1" with
   | Ast.T_bin (Ast.B_add, Ast.T_id "x", Ast.T_num 1) -> ()
   | _ -> Alcotest.fail "expression after failed comm parse");
  match Parser.term "f(1, 2)" with
  | Ast.T_app ("f", [ Ast.T_num 1; Ast.T_num 2 ]) -> ()
  | _ -> Alcotest.fail "application"

let test_parse_declarations () =
  let script =
    Parser.script
      "datatype D = x | y.{0..1}\n\
       nametype N = {1..4}\n\
       channel c, d : D.N\n\
       P(n) = c!x!n -> P(n)\n\
       assert P(1) [T= P(1)\n\
       assert P(1) :[deadlock free [F]]\n\
       assert P(1) :[divergence free]"
  in
  check_int "declaration count" 7 (List.length script.Ast.decls)

let test_parse_replicated () =
  match Parser.term "[] x : {0..3} @ c!x -> STOP" with
  | Ast.T_repl (Ast.R_ext, "x", Ast.T_range _, Ast.T_prefix _) -> ()
  | _ -> Alcotest.fail "replicated external choice"

let test_parse_errors_have_positions () =
  try
    ignore (Parser.script "channel c :");
    Alcotest.fail "expected Parse_error"
  with Parser.Parse_error (_, pos) -> check_bool "line known" true (pos.Ast.line >= 1)

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)
(* ------------------------------------------------------------------ *)

let ota_script =
  {q|
datatype Msg = reqSw | rptSw | reqApp | rptUpd
channel send : Msg
channel rec : Msg
double(x) = x + x
SP02 = send!reqSw -> rec!rptSw -> SP02
VMG = send!reqSw -> rec?r -> VMG
ECU = send?m -> rec!rptSw -> ECU
SYSTEM = VMG [| {| send, rec |} |] ECU
assert SP02 [T= SYSTEM
|q}

let test_elaborate_classification () =
  let loaded = Elaborate.load_string ota_script in
  let defs = loaded.Elaborate.defs in
  check_bool "SP02 is a process" true (Option.is_some (Csp.Defs.proc defs "SP02"));
  check_bool "SYSTEM is a process" true (Option.is_some (Csp.Defs.proc defs "SYSTEM"));
  check_bool "double is a function" true (Option.is_some (Csp.Defs.fenv defs "double"));
  check_bool "double is not a process" true (Option.is_none (Csp.Defs.proc defs "double"))

let test_elaborate_errors () =
  let expect_error src =
    try
      ignore (Elaborate.load_string src);
      Alcotest.failf "expected Elab_error for %s" src
    with Elaborate.Elab_error _ -> ()
  in
  expect_error "P = undeclared!1 -> STOP";
  expect_error "channel c : {0..1}\nP = c!1 -> Q";
  expect_error "channel c : Int\nP = c?x -> STOP";
  expect_error "channel c : {0..1}\nP = c!1 -> STOP\nP = STOP"

let test_check_assertions () =
  let loaded = Elaborate.load_string ota_script in
  let outcomes = Check.run loaded in
  check_int "one assertion" 1 (List.length outcomes);
  check_bool "SP02 holds" true (Check.all_pass outcomes)

let test_counterexample_through_cspm () =
  let bad =
    ota_script ^ "\nBAD = send?m -> rec!rptUpd -> BAD\nassert SP02 [T= VMG [| {| send, rec |} |] BAD"
  in
  let outcomes = Check.run (Elaborate.load_string bad) in
  check_bool "flaw found" false (Check.all_pass outcomes)

(* ------------------------------------------------------------------ *)
(* Budget slicing and scheduling                                       *)
(* ------------------------------------------------------------------ *)

let test_slice_arithmetic () =
  let check_float = Alcotest.(check (float 1e-9)) in
  check_float "even split" 2.5 (Check.slice ~remaining_wall:10.0 ~remaining:4);
  check_float "last assertion gets everything" 9.0
    (Check.slice ~remaining_wall:9.0 ~remaining:1);
  check_float "overspent budget clamps to zero" 0.0
    (Check.slice ~remaining_wall:(-3.0) ~remaining:2);
  check_float "no assertions left passes the wall through" 7.0
    (Check.slice ~remaining_wall:7.0 ~remaining:0)

(* Nine trivial assertions followed by one that actually has to search:
   under the old fixed up-front split the hard one only ever saw a tenth
   of the budget; with rolling slices the time the trivial ones leave
   unused carries forward and the whole script passes under one
   --timeout. *)
let rolling_script =
  let trivial = "assert T [T= T\n" in
  "channel c : {0..9}\n\
   P(n) = c!n -> P((n+1)%10)\n\
   T = c?x -> T\n\
   SYS = P(0) ||| P(2) ||| P(4) ||| P(6)\n"
  ^ String.concat "" (List.init 9 (fun _ -> trivial))
  ^ "assert T [T= SYS\n"

let test_rolling_budget () =
  let loaded = Elaborate.load_string rolling_script in
  let outcomes = Check.run ~config:Csp.Check_config.(default |> with_deadline 60.0) loaded in
  check_int "ten assertions" 10 (List.length outcomes);
  check_bool "all pass under one rolling budget" true (Check.all_pass outcomes)

(* Without a deadline, [run ~workers] schedules whole assertions onto
   idle domains; outcomes must come back in script order with the same
   verdicts as the sequential run. *)
let test_concurrent_run_matches_sequential () =
  let script =
    ota_script
    ^ "\nBAD = send?m -> rec!rptUpd -> BAD\n\
       assert SP02 [T= VMG [| {| send, rec |} |] BAD\n\
       assert SYSTEM :[deadlock free [F]]"
  in
  let verdict o =
    match o.Check.result with
    | Csp.Refine.Holds _ -> "H"
    | Csp.Refine.Fails _ -> "F"
    | Csp.Refine.Inconclusive _ -> "I"
  in
  let loaded = Elaborate.load_string script in
  let seq = Check.run loaded in
  let par = Check.run ~config:Csp.Check_config.(default |> with_workers 2) loaded in
  check_int "same count" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same verdict in script order" (verdict a)
        (verdict b))
    seq par

(* ------------------------------------------------------------------ *)
(* Printing round trip                                                 *)
(* ------------------------------------------------------------------ *)

let test_script_roundtrip () =
  let loaded = Elaborate.load_string ota_script in
  let printed =
    Print.script
      ~assertions:(List.map fst loaded.Elaborate.assertions)
      loaded.Elaborate.defs
  in
  let reloaded = Elaborate.load_string printed in
  check_bool "assertions survive" true
    (List.length reloaded.Elaborate.assertions
     = List.length loaded.Elaborate.assertions);
  check_bool "still checks" true (Check.all_pass (Check.run reloaded))

(* Printing a random process and parsing it back yields a process with
   the same traces. *)
let print_parse_roundtrip =
  QCheck.Test.make ~count:150 ~name:"print/parse round trip preserves traces"
    Helpers.arb_proc (fun p ->
      let defs = Helpers.make_defs () in
      let printed = Print.proc_to_string p in
      let term = Parser.term printed in
      (* reuse the loaded environment only for channels *)
      let loaded =
        Elaborate.load_string
          "channel a : {0..2}\nchannel b : {0..2}\nchannel c : {0..1}\nchannel done_"
      in
      let q = Elaborate.proc_of_term loaded term in
      let t1 = Csp.Traces.of_lts ~depth:3 (Csp.Lts.compile defs p) in
      let t2 =
        Csp.Traces.of_lts ~depth:3 (Csp.Lts.compile loaded.Elaborate.defs q)
      in
      if Csp.Traces.subset t1 t2 && Csp.Traces.subset t2 t1 then true
      else
        QCheck.Test.fail_reportf "printed %s@.got different traces" printed)

let suite =
  ( "cspm",
    [
      Alcotest.test_case "lexer symbols" `Quick test_lexer_symbols;
      Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "int literal overflow" `Quick test_lexer_int_overflow;
      Alcotest.test_case "budget slice arithmetic" `Quick test_slice_arithmetic;
      Alcotest.test_case "rolling timeout budget" `Quick test_rolling_budget;
      Alcotest.test_case "concurrent run matches sequential" `Quick
        test_concurrent_run_matches_sequential;
      Alcotest.test_case "operator precedence" `Quick test_parse_precedence;
      Alcotest.test_case "prefix fields" `Quick test_parse_prefix_fields;
      Alcotest.test_case "expression backtracking" `Quick test_parse_backtracking;
      Alcotest.test_case "declarations" `Quick test_parse_declarations;
      Alcotest.test_case "replicated operators" `Quick test_parse_replicated;
      Alcotest.test_case "parse errors carry positions" `Quick
        test_parse_errors_have_positions;
      Alcotest.test_case "process/function classification" `Quick
        test_elaborate_classification;
      Alcotest.test_case "elaboration errors" `Quick test_elaborate_errors;
      Alcotest.test_case "assertion checking" `Quick test_check_assertions;
      Alcotest.test_case "counterexamples through CSPm" `Quick
        test_counterexample_through_cspm;
      Alcotest.test_case "script round trip" `Quick test_script_roundtrip;
      QCheck_alcotest.to_alcotest print_parse_roundtrip;
    ] )
