(* The streaming trace-containment engine and the corpus pipeline built
   on it: cursor semantics (skip / tick / latch), an exhaustive qcheck
   agreement property against the denotational trace semantics, the
   can-trace/1 codec round-trip, fixed-seed corpus determinism,
   malformed-line containment, and verdict identity across 1/2/4 worker
   domains for both the raw engine and the corpus driver. *)

open Csp
open Helpers

let alphabet = [ "a"; "b"; "c"; "done_" ]

let compile_exn ?(alphabet = alphabet) defs p =
  match Tracecheck.compile ~alphabet defs p with
  | Ok t -> t
  | Error msg -> Alcotest.failf "Tracecheck.compile: %s" msg

let show_verdict = function
  | Tracecheck.Accepted -> "accepted"
  | Tracecheck.Rejected { position; offending; expected } ->
    Format.asprintf "rejected@%d %a {%s}" position Event.pp_label offending
      (String.concat ","
         (List.map (Format.asprintf "%a" Event.pp_label) expected))

let verdict_t = Alcotest.testable (Fmt.of_to_string show_verdict) ( = )

(* ------------------------------------------------------------------ *)
(* Cursor semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_accept_reject () =
  let defs = make_defs () in
  let spec = send "a" 0 (send "b" 1 Proc.stop) in
  let t = compile_exn defs spec in
  let check tr = Tracecheck.check_trace t tr in
  Alcotest.check verdict_t "empty" Tracecheck.Accepted (check []);
  Alcotest.check verdict_t "prefix" Tracecheck.Accepted (check [ vis "a" 0 ]);
  Alcotest.check verdict_t "full" Tracecheck.Accepted
    (check [ vis "a" 0; vis "b" 1 ]);
  (match check [ vis "b" 1 ] with
  | Tracecheck.Rejected { position = 0; offending; expected = [ e ] } ->
    Alcotest.check label "offending" (vis "b" 1) offending;
    Alcotest.check label "expected" (vis "a" 0) e
  | v -> Alcotest.failf "expected rejection at 0, got %s" (show_verdict v));
  (match check [ vis "a" 0; vis "b" 0 ] with
  | Tracecheck.Rejected { position = 1; _ } -> ()
  | v -> Alcotest.failf "expected rejection at 1, got %s" (show_verdict v))

let test_latch () =
  let defs = make_defs () in
  let spec = send "a" 0 Proc.stop in
  let t = compile_exn defs spec in
  (* once rejected, later (even valid-looking) labels change nothing *)
  match Tracecheck.check_trace t [ vis "b" 1; vis "a" 0; vis "a" 0 ] with
  | Tracecheck.Rejected { position = 0; _ } -> ()
  | v -> Alcotest.failf "verdict did not latch: %s" (show_verdict v)

let test_tick () =
  let defs = make_defs () in
  let spec = send "a" 0 Proc.skip in
  let t = compile_exn defs spec in
  Alcotest.check verdict_t "terminates" Tracecheck.Accepted
    (Tracecheck.check_trace t [ vis "a" 0; Event.Tick ]);
  (match Tracecheck.check_trace t [ Event.Tick ] with
  | Tracecheck.Rejected { position = 0; _ } -> ()
  | v -> Alcotest.failf "early tick accepted: %s" (show_verdict v));
  match Tracecheck.check_trace t [ vis "a" 0; Event.Tick; vis "a" 0 ] with
  | Tracecheck.Rejected { position = 2; _ } -> ()
  | v -> Alcotest.failf "label after tick accepted: %s" (show_verdict v)

let test_out_of_alphabet_skipped () =
  let defs = make_defs () in
  let spec = send "a" 0 Proc.stop in
  let t = compile_exn ~alphabet:[ "a" ] defs spec in
  let c = Tracecheck.start t in
  let c = List.fold_left (Tracecheck.step t) c
      [ vis "c" 0; vis "a" 0; vis "b" 2 ]
  in
  Alcotest.check verdict_t "b and c skipped" Tracecheck.Accepted
    (Tracecheck.verdict c);
  Alcotest.(check int) "consumed" 3 (Tracecheck.consumed c);
  Alcotest.(check int) "skipped" 2 (Tracecheck.skipped c)

(* ------------------------------------------------------------------ *)
(* Agreement with the denotational trace semantics                     *)
(* ------------------------------------------------------------------ *)

(* Every candidate label over the standard environment. *)
let candidate_labels =
  [ vis "a" 0; vis "a" 1; vis "a" 2; vis "b" 0; vis "b" 1; vis "b" 2;
    vis "c" 0; vis "c" 1; Event.Vis (ev0 "done_"); Event.Tick ]

(* All label sequences of length <= 3 (1111 of them). *)
let candidate_traces =
  let rec extend traces n =
    if n = 0 then traces
    else
      extend
        (List.concat_map
           (fun tr -> List.map (fun l -> l :: tr) candidate_labels)
           traces
         @ traces)
        (n - 1)
  in
  List.map List.rev (extend [ [] ] 3)

let trace_equal t1 t2 =
  List.length t1 = List.length t2 && List.for_all2 Event.equal_label t1 t2

(* [check_trace] accepts exactly the traces of the denotational
   semantics: for random processes, exhaustively over every candidate
   trace of length <= 3. This is the containment engine's version of
   the operational-vs-denotational differential test. *)
let agreement_test =
  QCheck.Test.make ~count:80 ~name:"check_trace agrees with Traces.of_proc"
    arb_proc (fun p ->
      let defs = make_defs () in
      match Traces.of_proc ~depth:4 defs p with
      | exception Traces.Unguarded _ -> QCheck.assume_fail ()
      | trace_set ->
        let t = compile_exn defs p in
        List.for_all
          (fun tr ->
            let accepted = Tracecheck.check_trace t tr = Tracecheck.Accepted in
            let member = List.exists (trace_equal tr) trace_set in
            if accepted <> member then
              QCheck.Test.fail_reportf
                "disagree on [%s] for %s: checker=%b oracle=%b"
                (String.concat ", "
                   (List.map (Format.asprintf "%a" Event.pp_label) tr))
                (Proc.to_string p) accepted member
            else true)
          candidate_traces)

(* ------------------------------------------------------------------ *)
(* check_streams worker identity                                       *)
(* ------------------------------------------------------------------ *)

let test_workers_identical () =
  let defs = make_defs () in
  let spec = send "a" 0 (send "b" 1 Proc.skip) in
  let t = compile_exn defs spec in
  let streams =
    Array.init 60 (fun i ->
        let body =
          match i mod 3 with
          | 0 -> [ vis "a" 0; vis "b" 1; Event.Tick ]
          | 1 -> [ vis "a" 0; vis "b" 0 ]
          | _ -> [ vis "b" 1 ]
        in
        (Printf.sprintf "s%02d" i, List.to_seq body))
  in
  let render (results, (summary : Tracecheck.summary)) =
    Printf.sprintf "streams=%d accepted=%d rejected=%d events=%d skipped=%d"
      summary.streams summary.accepted summary.rejected summary.events
      summary.skipped_events
    :: (Array.to_list results
       |> List.map (fun (r : Tracecheck.stream_result) ->
              Printf.sprintf "%s %d %d %s" r.stream r.events r.skipped_events
                (show_verdict r.verdict)))
  in
  let run w = Tracecheck.check_streams ~workers:w t streams in
  let _, summary1 = run 1 in
  Alcotest.(check int) "streams" 60 summary1.Tracecheck.streams;
  Alcotest.(check int) "accepted" 20 summary1.Tracecheck.accepted;
  Alcotest.(check int) "rejected" 40 summary1.Tracecheck.rejected;
  let base = render (run 1) in
  List.iter
    (fun w ->
      Alcotest.(check (list string))
        (Printf.sprintf "workers=%d identical" w)
        base (render (run w)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* can-trace/1 codec round-trip                                        *)
(* ------------------------------------------------------------------ *)

let gen_entry : Canbus.Trace_log.entry QCheck.Gen.t =
  let open QCheck.Gen in
  let* time = int_range 0 1_000_000 in
  let* node = oneofl [ "VMG"; "ECU"; "GW" ] in
  let* direction =
    oneofl
      [ Canbus.Trace_log.Tx; Canbus.Trace_log.Rx "ECU";
        Canbus.Trace_log.Fault "corrupt"; Canbus.Trace_log.Fault "drop" ]
  in
  let* extended = bool in
  let* id = int_range 0 (if extended then 0x1FFFFFFF else 0x7FF) in
  let* data = list_size (int_range 0 8) (int_range 0 255) in
  return
    {
      Canbus.Trace_log.time;
      node;
      direction;
      frame = Canbus.Frame.make ~extended ~id data;
    }

let codec_roundtrip_test =
  QCheck.Test.make ~count:300 ~name:"can-trace/1 entry codec round-trips"
    (QCheck.make gen_entry) (fun entry ->
      let line = Obs.Json.to_string (Canbus.Trace_log.entry_to_json entry) in
      match Obs.Json.parse line with
      | Error msg -> QCheck.Test.fail_reportf "emitted unparseable %s: %s"
                       line msg
      | Ok json ->
        (match Canbus.Trace_log.entry_of_json json with
        | Error msg ->
          QCheck.Test.fail_reportf "decode of %s failed: %s" line msg
        | Ok entry' ->
          let line' =
            Obs.Json.to_string (Canbus.Trace_log.entry_to_json entry')
          in
          if line <> line' then
            QCheck.Test.fail_reportf "not byte-identical: %s vs %s" line line'
          else true))

let test_entry_of_json_rejects () =
  let bad s =
    match Obs.Json.parse s with
    | Error _ -> ()
    | Ok json ->
      (match Canbus.Trace_log.entry_of_json json with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid entry %s" s)
  in
  bad {|{"t":-1,"n":"VMG","d":"tx","id":257,"data":[1]}|};
  bad {|{"t":0,"n":"VMG","d":"tx","id":4096,"data":[1]}|};
  bad {|{"t":0,"n":"VMG","d":"tx","id":257,"data":[256]}|};
  bad {|{"t":0,"n":"VMG","d":"sideways","id":257,"data":[]}|};
  bad {|{"n":"VMG","d":"tx","id":257,"data":[]}|}

(* ------------------------------------------------------------------ *)
(* Corpus generator determinism                                        *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_tmp f =
  let path = Filename.temp_file "tracecheck_test" ".ndjson" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_corpus_deterministic () =
  with_tmp @@ fun p1 ->
  with_tmp @@ fun p2 ->
  let gen ~seed path =
    Ota.Corpus.generate ~seed ~streams:6 ~until_ms:100 ~flawed_rate:0.5 ~path
      ()
  in
  let s1 = gen ~seed:7 p1 in
  let s2 = gen ~seed:7 p2 in
  Alcotest.(check int) "streams" 6 s1.Ota.Corpus.streams;
  Alcotest.(check int) "streams again" 6 s2.Ota.Corpus.streams;
  Alcotest.(check bool) "same seed, byte-identical" true
    (read_file p1 = read_file p2);
  let _ = gen ~seed:8 p2 in
  Alcotest.(check bool) "different seed, different bytes" false
    (read_file p1 = read_file p2)

(* ------------------------------------------------------------------ *)
(* Malformed lines: contained, never raised                            *)
(* ------------------------------------------------------------------ *)

let test_parse_line () =
  (match Serve.Trace_io.parse_line "not json at all" with
  | Serve.Trace_io.Malformed { stream = None; _ } -> ()
  | _ -> Alcotest.fail "garbage line not Malformed{stream=None}");
  (match Serve.Trace_io.parse_line {|{"s":"s1","t":"soon"}|} with
  | Serve.Trace_io.Malformed { stream = Some "s1"; _ } -> ()
  | _ -> Alcotest.fail "bad entry did not recover its stream");
  (match Serve.Trace_io.parse_line {|{"s":"s1","meta":{"drop":0.5}}|} with
  | Serve.Trace_io.Meta { stream = "s1"; _ } -> ()
  | _ -> Alcotest.fail "meta line not recognised");
  match
    Serve.Trace_io.parse_line
      {|{"s":"s1","t":10,"n":"VMG","d":"tx","id":257,"data":[1]}|}
  with
  | Serve.Trace_io.Entry { stream = "s1"; entry } ->
    Alcotest.(check int) "id" 257 entry.Canbus.Trace_log.frame.Canbus.Frame.id
  | _ -> Alcotest.fail "entry line not recognised"

(* A hand-built two-stream corpus with one recoverable and one
   unrecoverable corrupt line: the bad stream is poisoned, the good one
   still checked, nothing raises. *)
let test_corrupt_stream_contained () =
  with_tmp @@ fun path ->
  let entry time id =
    {
      Canbus.Trace_log.time;
      node = "VMG";
      direction = Canbus.Trace_log.Tx;
      frame = Canbus.Frame.make ~id [ 1 ];
    }
  in
  Serve.Trace_io.with_writer ~path ~header:Serve.Trace_io.empty_header
    (fun w ->
      Serve.Trace_io.write_entry w ~stream:"good" (entry 10 0);
      Serve.Trace_io.write_entry w ~stream:"bad" (entry 20 1);
      Serve.Trace_io.write_entry w ~stream:"good" (entry 30 2));
  (* append one corrupt line per failure mode, outside the atomic writer *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"s\":\"bad\",\"t\":\"not-a-time\"}\n";
  output_string oc "utter garbage\n";
  close_out oc;
  let defs = make_defs () in
  let spec =
    Proc.prefix_items
      ( "a",
        [ Proc.In ("x", None) ],
        Proc.prefix_items ("a", [ Proc.In ("y", None) ], Proc.stop) )
  in
  let t = compile_exn defs spec in
  let map (e : Canbus.Trace_log.entry) =
    match e.direction with
    | Canbus.Trace_log.Tx -> Some (vis "a" (e.frame.Canbus.Frame.id mod 3))
    | _ -> None
  in
  match
    Serve.Trace_run.check_corpus ~map ~requirements:[ ("SPEC", t) ] ~path ()
  with
  | Error msg -> Alcotest.failf "check_corpus errored: %s" msg
  | Ok report ->
    Alcotest.(check int) "streams" 2 report.Serve.Trace_run.streams;
    Alcotest.(check int) "malformed lines" 2 report.Serve.Trace_run.malformed;
    Alcotest.(check bool) "not passed" false (Serve.Trace_run.passed report);
    (match report.Serve.Trace_run.requirements with
    | [ r ] ->
      Alcotest.(check int) "accepted" 1 r.Serve.Trace_run.accepted;
      Alcotest.(check int) "corrupt" 1 r.Serve.Trace_run.corrupt
    | rs -> Alcotest.failf "expected 1 requirement, got %d" (List.length rs))

(* Rejected streams are attributed to the fault kinds their meta lines
   declared; a stream without a meta (or with an all-zero one) lands in
   the "none" bucket, and a meta line alone never makes a stream exist. *)
let test_rejection_attribution () =
  with_tmp @@ fun path ->
  let entry time id =
    {
      Canbus.Trace_log.time;
      node = "VMG";
      direction = Canbus.Trace_log.Tx;
      frame = Canbus.Frame.make ~id [ 1 ];
    }
  in
  let meta fields = Obs.Json.Obj fields in
  Serve.Trace_io.with_writer ~path ~header:Serve.Trace_io.empty_header
    (fun w ->
      Serve.Trace_io.write_meta w ~stream:"bad1"
        (meta
           [ "drop", Obs.Json.Num 0.2; "corrupt", Obs.Json.Num 0.;
             "babble", Obs.Json.Bool true ]);
      Serve.Trace_io.write_meta w ~stream:"ghost"
        (meta [ "drop", Obs.Json.Num 0.9 ]);
      (* "ok" stays within the spec's two events; the others overrun *)
      Serve.Trace_io.write_entry w ~stream:"ok" (entry 10 0);
      List.iter
        (fun t ->
          Serve.Trace_io.write_entry w ~stream:"bad1" (entry t 1);
          Serve.Trace_io.write_entry w ~stream:"bad2" (entry t 2))
        [ 20; 30; 40 ])
  ;
  let defs = make_defs () in
  let spec =
    Proc.prefix_items
      ( "a",
        [ Proc.In ("x", None) ],
        Proc.prefix_items ("a", [ Proc.In ("y", None) ], Proc.stop) )
  in
  let t = compile_exn defs spec in
  let map (e : Canbus.Trace_log.entry) =
    match e.direction with
    | Canbus.Trace_log.Tx -> Some (vis "a" (e.frame.Canbus.Frame.id mod 3))
    | _ -> None
  in
  match
    Serve.Trace_run.check_corpus ~map ~requirements:[ ("SPEC", t) ] ~path ()
  with
  | Error msg -> Alcotest.failf "check_corpus errored: %s" msg
  | Ok report ->
    Alcotest.(check int)
      "meta alone creates no stream" 3 report.Serve.Trace_run.streams;
    Alcotest.(check int)
      "two rejected" 2 report.Serve.Trace_run.streams_rejected;
    Alcotest.(check (list (pair string int)))
      "attribution buckets"
      [ "babble", 1; "drop", 1; "none", 1 ]
      report.Serve.Trace_run.rejected_by_fault;
    (* the JSON document carries the same buckets, additively *)
    (match
       Obs.Json.member "rejected_by_fault"
         (Serve.Trace_run.json_of_report ~timing:false report)
     with
     | Some (Obs.Json.Obj fields) ->
       Alcotest.(check (list string))
         "json keys" [ "babble"; "drop"; "none" ] (List.map fst fields)
     | _ -> Alcotest.fail "report JSON lacks rejected_by_fault object")

(* ------------------------------------------------------------------ *)
(* Corpus driver: verdicts identical at any worker count               *)
(* ------------------------------------------------------------------ *)

let ota_specs =
  "channel reqSw : {0..3}\n\
   channel rptSw : {0..7}\n\
   channel reqApp : {0..7}.{0..7}\n\
   channel rptUpd : {0..7}\n\
   secret = 5\n\
   mac(v) = (v + secret) % 8\n\
   ANY = reqSw?p -> ANY [] rptSw?v -> ANY [] reqApp?v?t -> ANY\n\
   \      [] rptUpd?v -> ANY\n\
   SPEC_ORDER = reqSw?p -> ANY\n\
   pow2(n) = if n == 0 then 1 else 2 * pow2(n - 1)\n\
   bit(m, v) = (m / pow2(v)) % 2\n\
   grant(m, v) = if bit(m, v) == 1 then m else m + pow2(v)\n\
   AUTH(m) =\n\
   \  reqSw?p -> AUTH(m)\n\
   \  [] rptSw?v -> AUTH(m)\n\
   \  [] reqApp?v?t -> (if t == mac(v) then AUTH(grant(m, v)) else AUTH(m))\n\
   \  [] ([] v : {0..7} @ bit(m, v) == 1 & rptUpd!v -> AUTH(m))\n\
   SPEC_AUTH = AUTH(0)\n"

let test_corpus_workers_identical () =
  with_tmp @@ fun path ->
  let summary =
    Ota.Corpus.generate ~seed:11 ~streams:10 ~until_ms:150 ~flawed_rate:0.5
      ~path ()
  in
  Alcotest.(check int) "streams generated" 10 summary.Ota.Corpus.streams;
  let script = Cspm.Elaborate.load_string ota_specs in
  let map, requirements =
    match
      Serve.Trace_run.prepare ~script ~specs:[] ~dbc:None ~corpus:path ()
    with
    | Ok v -> v
    | Error msg -> Alcotest.failf "prepare: %s" msg
  in
  Alcotest.(check int) "two requirements" 2 (List.length requirements);
  let doc w =
    match Serve.Trace_run.check_corpus ~workers:w ~map ~requirements ~path ()
    with
    | Ok report ->
      Obs.Json.to_string (Serve.Trace_run.json_of_report ~timing:false report)
    | Error msg -> Alcotest.failf "check_corpus workers=%d: %s" w msg
  in
  let base = doc 1 in
  List.iter
    (fun w ->
      Alcotest.(check string)
        (Printf.sprintf "workers=%d byte-identical report" w)
        base (doc w))
    [ 2; 4 ]

let suite =
  ( "tracecheck",
    [
    Alcotest.test_case "accept and reject with positions" `Quick
      test_accept_reject;
    Alcotest.test_case "verdict latches after rejection" `Quick test_latch;
    Alcotest.test_case "tick only at termination" `Quick test_tick;
    Alcotest.test_case "out-of-alphabet events skipped" `Quick
      test_out_of_alphabet_skipped;
    QCheck_alcotest.to_alcotest agreement_test;
    Alcotest.test_case "check_streams identical across workers" `Quick
      test_workers_identical;
    QCheck_alcotest.to_alcotest codec_roundtrip_test;
    Alcotest.test_case "codec rejects invalid entries" `Quick
      test_entry_of_json_rejects;
    Alcotest.test_case "corpus generation is seed-deterministic" `Quick
      test_corpus_deterministic;
    Alcotest.test_case "parse_line classifies corrupt lines" `Quick
      test_parse_line;
    Alcotest.test_case "corrupt line poisons only its stream" `Quick
      test_corrupt_stream_contained;
    Alcotest.test_case "rejections attributed to declared faults" `Quick
      test_rejection_attribution;
    Alcotest.test_case "corpus verdicts identical across workers" `Quick
      test_corpus_workers_identical;
  ] )
