(* The content-addressed LTS cache: warm verdicts byte-identical to cold
   ones for every model, pipeline, and worker count; digests that miss
   only for the definitions an edit can actually reach; warm re-checks
   skipping the compile/normalise/reduce spans entirely; disk
   persistence surviving a fresh process ("daemon restart"); and a
   shared cache staying coherent under concurrent checking domains. *)

open Csp

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let render = function
  | Refine.Holds _ -> "holds"
  | Refine.Fails cex ->
    Format.asprintf "fails %a" Refine.pp_counterexample cex
  | Refine.Inconclusive _ -> "inconclusive"

let all_subsets =
  List.fold_left
    (fun acc p -> acc @ List.map (fun s -> s @ [ p ]) acc)
    [ [] ] Reduce.default_pipeline

(* ------------------------------------------------------------------ *)
(* Warm verdicts are byte-identical to cold ones                       *)
(* ------------------------------------------------------------------ *)

(* One cache is shared across the whole configuration matrix, exactly as
   the daemon shares one across a job stream: later configurations hit
   entries populated by earlier ones (the keys deliberately exclude the
   worker count), and every cached verdict — first-touch or hit — must
   render identically to the cache-free engine's. *)
let cached_equals_uncached =
  QCheck.Test.make ~count:6
    ~name:
      "cached verdicts match uncached ones for every model, pipeline, and \
       worker count"
    (QCheck.pair Helpers.arb_proc Helpers.arb_proc)
    (fun (spec, impl) ->
      let cache = Cache.create () in
      List.for_all
        (fun model ->
          let defs = Helpers.make_defs () in
          let expected =
            render
              (Refine.check
                 ~config:
                   Check_config.(
                     default |> with_max_states 50_000 |> with_reductions [])
                 ~model defs ~spec ~impl)
          in
          List.for_all
            (fun pipeline ->
              List.for_all
                (fun w ->
                  let config =
                    Check_config.(
                      default |> with_max_states 50_000 |> with_workers w
                      |> with_reductions pipeline |> with_cache cache)
                  in
                  List.for_all
                    (fun leg ->
                      let got =
                        render (Refine.check ~config ~model defs ~spec ~impl)
                      in
                      if String.equal expected got then true
                      else
                        QCheck.Test.fail_reportf
                          "%s leg diverged (reductions=%s workers=%d \
                           model=%s):@.uncached: %s@.cached:   \
                           %s@.spec=%s@.impl=%s"
                          leg
                          (Reduce.pipeline_to_string pipeline)
                          w
                          (match model with
                           | Refine.Traces -> "T"
                           | Refine.Failures -> "F"
                           | Refine.Failures_divergences -> "FD")
                          expected got (Proc.to_string spec)
                          (Proc.to_string impl))
                    [ "cold"; "warm" ])
                [ 1; 2; 4 ])
            all_subsets)
        [ Refine.Traces; Refine.Failures; Refine.Failures_divergences ])

(* ------------------------------------------------------------------ *)
(* Digest invalidation is exactly as wide as reachability              *)
(* ------------------------------------------------------------------ *)

(* Two environments differing in one definition's body: terms that can
   reach the edited definition must change digest, terms that cannot
   must keep it — byte for byte, across distinct [Defs.t] values. *)
let edited_defs () =
  let build p_body =
    let defs = Helpers.make_defs () in
    Defs.define_proc defs "P" [] p_body;
    Defs.define_proc defs "Q" [] (Helpers.send "b" 0 Proc.stop);
    Defs.define_proc defs "Top" []
      (Proc.inter (Proc.call ("P", []), Proc.call ("Q", [])));
    defs
  in
  ( build (Helpers.send "a" 0 Proc.stop),
    build (Helpers.send "a" 1 Proc.stop) )

let test_digest_reachability () =
  let defs1, defs2 = edited_defs () in
  let d defs name = Cache.digest_term defs (Proc.call (name, [])) in
  check_string "a term that cannot reach the edit keeps its digest"
    (d defs1 "Q") (d defs2 "Q");
  check_bool "a term naming the edited definition changes digest" true
    (not (String.equal (d defs1 "P") (d defs2 "P")));
  check_bool "a term reaching the edit transitively changes digest" true
    (not (String.equal (d defs1 "Top") (d defs2 "Top")));
  (* the same content in a freshly built environment digests identically —
     keys are content, not [Defs.t] identity *)
  let defs1', _ = edited_defs () in
  check_string "digests are content-addressed, not Defs-identity-addressed"
    (d defs1 "Top") (d defs1' "Top")

(* After an edit, re-checking the untouched component is pure hits and
   the edited component is a fresh miss — the incremental-re-checking
   contract, observed through the stats counters. *)
let test_edit_invalidates_only_affected () =
  let defs1, defs2 = edited_defs () in
  let cache = Cache.create () in
  let config =
    Check_config.(default |> with_max_states 10_000 |> with_cache cache)
  in
  let spec = Proc.run (Eventset.chans [ "a"; "b" ]) in
  let run defs name =
    render (Refine.check ~config defs ~spec ~impl:(Proc.call (name, [])))
  in
  check_string "P holds before the edit" "holds" (run defs1 "P");
  check_string "Q holds before the edit" "holds" (run defs1 "Q");
  let cold = Cache.stats cache in
  check_bool "the cold runs populated the cache" true (cold.Cache.misses > 0);
  (* untouched component: every lookup hits *)
  check_string "Q holds after the edit" "holds" (run defs2 "Q");
  let after_q = Cache.stats cache in
  check_int "re-checking the untouched component misses nothing"
    cold.Cache.misses after_q.Cache.misses;
  check_bool "and it hit the cache" true (after_q.Cache.hits > cold.Cache.hits);
  (* edited component: its graph keys miss (the spec's key still hits) *)
  check_string "P holds after the edit too" "holds" (run defs2 "P");
  let after_p = Cache.stats cache in
  check_bool "re-checking the edited component recompiles" true
    (after_p.Cache.misses > after_q.Cache.misses)

(* ------------------------------------------------------------------ *)
(* A warm re-check skips compile, normalise, and reduce entirely       *)
(* ------------------------------------------------------------------ *)

let spans_of_run f =
  let path = Filename.temp_file "cache_spans" ".jsonl" in
  let oc = open_out path in
  let obs = Obs.create (Obs.Jsonl oc) in
  f obs;
  Obs.flush obs;
  close_out oc;
  let names = ref [] in
  let ic = open_in path in
  (try
     while true do
       match Obs.Json.parse (input_line ic) with
       | Error _ -> ()
       | Ok json ->
         (match Obs.Json.(member "ev" json, member "name" json) with
          | Some (Obs.Json.Str "span"), Some (Obs.Json.Str name) ->
            names := name :: !names
          | _ -> ())
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  !names

let test_warm_run_skips_pipeline_spans () =
  let cache = Cache.create () in
  let defs = Helpers.make_defs () in
  let impl = Helpers.send "a" 0 (Helpers.send "b" 1 Proc.stop) in
  let spec = Proc.run (Eventset.chans [ "a"; "b" ]) in
  let run obs =
    check_string "the check holds" "holds"
      (render
         (Refine.check
            ~config:Check_config.(default |> with_cache cache |> with_obs obs)
            defs ~spec ~impl))
  in
  let has names prefix = List.exists (fun n -> Helpers.contains n prefix) names in
  let cold = spans_of_run run in
  check_bool "the cold run compiled" true (has cold "lts.compile");
  check_bool "the cold run normalised" true (has cold "normalise");
  let warm = spans_of_run run in
  check_bool "the warm run searched" true (has warm "search.");
  check_bool "the warm run did not compile" false (has warm "lts.compile");
  check_bool "the warm run did not normalise" false (has warm "normalise");
  check_bool "the warm run did not reduce" false (has warm "reduce.")

(* ------------------------------------------------------------------ *)
(* Disk persistence: a fresh cache starts warm from the directory      *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let path = Filename.temp_file "ltscache" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let test_persistence_across_caches () =
  let dir = temp_dir () in
  let persist =
    { Cache.dir; write = (fun ~path text -> Serve.Fsio.atomic_write ~path text) }
  in
  let defs = Helpers.make_defs () in
  let impl = Helpers.send "a" 0 (Helpers.send "a" 1 Proc.stop) in
  let spec = Proc.run (Eventset.chan "a") in
  let run cache =
    render
      (Refine.check
         ~config:Check_config.(default |> with_cache cache)
         defs ~spec ~impl)
  in
  let first = Cache.create ~persist () in
  check_string "cold verdict" "holds" (run first);
  check_bool "entries were spilled" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".ltsc")
       (Sys.readdir dir));
  (* a different cache value, as after a daemon restart: memory is empty,
     the directory is not *)
  let second = Cache.create ~persist () in
  check_string "warm verdict from disk" "holds" (run second);
  let s = Cache.stats second in
  check_bool
    (Printf.sprintf "the restarted cache hit the directory (%d hits)"
       s.Cache.hits)
    true (s.Cache.hits > 0);
  (* a corrupted entry is a miss, not a crash *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".ltsc" then (
        let oc = open_out (Filename.concat dir f) in
        output_string oc "not a cache entry";
        close_out oc))
    (Sys.readdir dir);
  let third = Cache.create ~persist () in
  check_string "corrupt entries fall back to recompiling" "holds" (run third);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* LRU bounding                                                        *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  (* a cache bounded below the workload's footprint must evict, keep its
     resident count under the bound, and keep answering correctly *)
  let cache = Cache.create ~max_resident_states:8 () in
  let defs = Helpers.make_defs () in
  let spec = Proc.run (Eventset.chan "a") in
  List.iter
    (fun n ->
      let rec chain i =
        if i = 0 then Proc.stop else Helpers.send "a" (i mod 3) (chain (i - 1))
      in
      check_string "bounded cache still answers" "holds"
        (render
           (Refine.check
              ~config:Check_config.(default |> with_cache cache)
              defs ~spec ~impl:(chain n))))
    [ 3; 4; 5; 6; 3 ];
  let s = Cache.stats cache in
  check_bool "something was evicted" true (s.Cache.evictions > 0);
  check_bool
    (Printf.sprintf "residency respects the bound (%d states)"
       s.Cache.resident_states)
    true (s.Cache.resident_states <= 8)

(* ------------------------------------------------------------------ *)
(* Marshalling round trip                                              *)
(* ------------------------------------------------------------------ *)

let test_reintern_restores_identity () =
  let p =
    Proc.ext
      ( Helpers.send "a" 0 (Proc.call ("X", [])),
        Proc.hide (Helpers.send "b" 1 Proc.skip, Eventset.chan "b") )
  in
  let copy : Proc.t = Marshal.from_string (Marshal.to_string p []) 0 in
  check_bool "marshalling loses physical identity" false (copy == p);
  let back = Cache.reintern_proc copy in
  check_bool "reinterning restores it" true (back == p)

(* ------------------------------------------------------------------ *)
(* One cache, many checking domains                                    *)
(* ------------------------------------------------------------------ *)

let test_concurrent_shared_cache () =
  (* the daemon's shape: concurrent checks race find/add on one cache
     over the same keys. Every verdict must come back correct, and the
     counters must account for every lookup. *)
  let cache = Cache.create () in
  let spec = Proc.run (Eventset.chans [ "a"; "b" ]) in
  let impls =
    [|
      Helpers.send "a" 0 (Helpers.send "b" 1 Proc.stop);
      Helpers.send "b" 0 (Helpers.send "a" 2 Proc.stop);
      Proc.inter (Helpers.send "a" 1 Proc.stop, Helpers.send "b" 2 Proc.stop);
    |]
  in
  let worker () =
    (* each domain builds its own environment — the digests are content,
       so the keys still collide across domains, which is the race *)
    let defs = Helpers.make_defs () in
    Array.to_list
      (Array.init 9 (fun i ->
           render
             (Refine.check
                ~config:Check_config.(default |> with_cache cache)
                defs ~spec
                ~impl:impls.(i mod Array.length impls))))
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter
    (fun d ->
      List.iter
        (fun verdict -> check_string "every racing verdict holds" "holds" verdict)
        (Domain.join d))
    domains;
  let s = Cache.stats cache in
  check_bool "the racing domains shared entries" true (s.Cache.hits > 0);
  check_bool "the cache retained the shared graphs" true
    (s.Cache.resident_entries > 0)

let suite =
  ( "cache",
    [
      QCheck_alcotest.to_alcotest cached_equals_uncached;
      Alcotest.test_case "digests invalidate exactly the reachable edits"
        `Quick test_digest_reachability;
      Alcotest.test_case "an edit misses only the component that reaches it"
        `Quick test_edit_invalidates_only_affected;
      Alcotest.test_case "a warm re-check skips compile/normalise/reduce"
        `Quick test_warm_run_skips_pipeline_spans;
      Alcotest.test_case "a fresh cache starts warm from the spill directory"
        `Quick test_persistence_across_caches;
      Alcotest.test_case "LRU eviction respects the resident-state bound"
        `Quick test_lru_eviction;
      Alcotest.test_case "reinterning restores hash-consing identity" `Quick
        test_reintern_restores_identity;
      Alcotest.test_case "concurrent domains share one cache coherently"
        `Quick test_concurrent_shared_cache;
    ] )
