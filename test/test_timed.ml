(* Tests for the tock-timed translation mode (the paper's Section VII-B
   future-work item, implemented). *)

open Csp

let check_bool = Alcotest.(check bool)

let dbc =
  "BU_: A\n\
   BO_ 1 beat: 1 A\n\
   \ SG_ v : 0|2@1+ (1,0) [0|3] \"\" A\n"

let db = Candb.Dbc_parser.parse dbc

let timed_config =
  { Extractor.Extract.default_config with timed = true; tock_ms = 10 }

let extract src =
  let defs = Defs.create () in
  Candb.To_cspm.declare
    ~config:timed_config.Extractor.Extract.domain db defs;
  let model =
    Extractor.Extract.extract_into ~config:timed_config ~defs ~db ~node:"N"
      (Capl.Parser.program src)
  in
  defs, model

let tock = Event.Vis (Event.event "tock" [])
let ev chan n = Event.Vis (Event.event chan [ Value.Int n ])

let traces defs model depth =
  Traces.of_lts ~depth
    (Lts.compile defs (Extractor.Extract.entry_call model))

let mem traces tr =
  List.exists (fun t -> List.equal Event.equal_label t tr) traces

let periodic_src =
  {|
variables { message beat m; msTimer t; }
on start { setTimer(t, 20); }
on timer t { output(m); setTimer(t, 20); }
|}

let test_tock_declared () =
  let defs, model = extract periodic_src in
  check_bool "tock channel declared" true
    (Option.is_some (Defs.channel_type defs "tock"));
  check_bool "tock in the alphabet" true
    (List.mem "tock"
       (Eventset.channels_mentioned model.Extractor.Extract.alphabet));
  (* no untimed timer channel in timed mode *)
  check_bool "no timer channel" true
    (Option.is_none (Defs.channel_type defs "timer_N_t"))

let test_periodic_timing () =
  let defs, model = extract periodic_src in
  let ts = traces defs model 7 in
  (* 20 ms at 10 ms/tock = 2 tocks before each beat *)
  check_bool "fires after exactly two tocks" true
    (mem ts [ tock; tock; ev "beat" 0 ]);
  check_bool "does not fire early" false (mem ts [ tock; ev "beat" 0 ]);
  check_bool "period repeats" true
    (mem ts [ tock; tock; ev "beat" 0; tock; tock; ev "beat" 0 ]);
  check_bool "time cannot pass the deadline silently" false
    (mem ts [ tock; tock; tock ])

let test_cancel_disarms () =
  let defs, model =
    extract
      {|
variables { message beat m; msTimer t; }
on start { setTimer(t, 10); cancelTimer(t); }
on timer t { output(m); }
|}
  in
  let ts = traces defs model 4 in
  check_bool "tocks pass freely" true (mem ts [ tock; tock; tock ]);
  check_bool "handler never fires" false
    (List.exists (fun tr -> List.exists (fun l -> l = ev "beat" 0) tr) ts)

let test_clamping_warns () =
  let _, model =
    extract
      {|
variables { message beat m; msTimer t; }
on start { setTimer(t, 500); }
on timer t { output(m); }
|}
  in
  check_bool "clamp warning issued" true
    (List.exists
       (fun w ->
         let m = w.Extractor.Extract.what in
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
           in
           go 0
         in
         has "clamps")
       model.Extractor.Extract.warnings)

let test_untimed_unchanged () =
  (* default mode still produces the guarded timer-event branch *)
  let defs = Defs.create () in
  Candb.To_cspm.declare
    ~config:Extractor.Extract.default_config.Extractor.Extract.domain db defs;
  let model =
    Extractor.Extract.extract_into ~defs ~db ~node:"N"
      (Capl.Parser.program periodic_src)
  in
  check_bool "timer channel exists untimed" true
    (Option.is_some (Defs.channel_type defs "timer_N_t"));
  check_bool "tock absent untimed" true
    (Option.is_none (Defs.channel_type defs "tock"));
  ignore model

let suite =
  ( "timed",
    [
      Alcotest.test_case "tock channel and alphabet" `Quick test_tock_declared;
      Alcotest.test_case "periodic timer fires on schedule" `Quick
        test_periodic_timing;
      Alcotest.test_case "cancelTimer disarms" `Quick test_cancel_disarms;
      Alcotest.test_case "durations clamp with a warning" `Quick
        test_clamping_warns;
      Alcotest.test_case "untimed mode unchanged" `Quick test_untimed_unchanged;
    ] )
