(* The pre-check static analysis: diagnostic plumbing (ordering, blocking,
   JSON), every CAPL and CSPm check's positive and negative cases, purity
   (lint never changes refinement verdicts), and robustness properties —
   the analyzers never raise, whatever AST they are fed. *)

open Analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let has code diags = List.exists (fun d -> d.Diag.code = code) diags
let count_code code diags =
  List.length (List.filter (fun d -> d.Diag.code = code) diags)

(* ------------------------------------------------------------------ *)
(* Diag                                                                *)
(* ------------------------------------------------------------------ *)

let test_diag_basics () =
  let d ?file ?pos sev code = Diag.make ?file ?pos sev ~code "m" in
  let unsorted =
    [
      d ~file:"b" Diag.Warning "X002";
      d ~file:"a" ~pos:{ Diag.line = 9; col = 1 } Diag.Info "X003";
      d ~file:"a" ~pos:{ Diag.line = 2; col = 5 } Diag.Error "X001";
      d ~file:"a" ~pos:{ Diag.line = 2; col = 5 } Diag.Error "X001";
    ]
  in
  let sorted = Diag.sort unsorted in
  check_int "dedup removes the exact duplicate" 3 (List.length sorted);
  check_string "file order first" "X001" (List.nth sorted 0).Diag.code;
  check_string "then position order" "X003" (List.nth sorted 1).Diag.code;
  check_bool "errors always block" true
    (Diag.blocking ~deny_warnings:false [ d Diag.Error "E" ]);
  check_bool "warnings block only when denied" false
    (Diag.blocking ~deny_warnings:false [ d Diag.Warning "W" ]);
  check_bool "warnings block when denied" true
    (Diag.blocking ~deny_warnings:true [ d Diag.Warning "W" ]);
  check_bool "infos never block" false
    (Diag.blocking ~deny_warnings:true [ d Diag.Info "I" ]);
  check_int "exit code is stable" 4 Diag.exit_code;
  let rendered =
    Format.asprintf "%a" Diag.pp
      (d ~file:"f.csp" ~pos:{ Diag.line = 3; col = 7 } Diag.Warning "X009")
  in
  check_string "pp format" "f.csp:3:7: warning[X009]: m" rendered

let test_diag_severity_tiebreak () =
  (* identical in every component but severity: both survive dedup, and
     the more severe one leads — so cross-file report order is total *)
  let d sev =
    Diag.make ~file:"n" ~pos:{ Diag.line = 1; col = 1 } sev ~code:"X001" "m"
  in
  let sorted = Diag.sort [ d Diag.Warning; d Diag.Error ] in
  check_int "both survive" 2 (List.length sorted);
  check_bool "error first" true
    ((List.hd sorted).Diag.severity = Diag.Error);
  (* and the order is independent of input order *)
  let flipped = Diag.sort [ d Diag.Error; d Diag.Warning ] in
  check_bool "deterministic across input orders" true (sorted = flipped)

let test_diag_json () =
  let diags =
    [
      Diag.make ~file:"n" ~pos:{ Diag.line = 1; col = 2 } Diag.Error
        ~code:"CAPL001" "boom";
      Diag.make Diag.Info ~code:"CSPM003" "quiet";
    ]
  in
  let doc = Obs.Json.to_string (Diag.json_of_list diags) in
  match Obs.Json.parse doc with
  | Error msg -> Alcotest.fail ("diagnostics JSON does not parse: " ^ msg)
  | Ok j ->
    (match Obs.Json.member "schema" j with
     | Some (Obs.Json.Str s) -> check_string "schema tag" "diagnostics/1" s
     | _ -> Alcotest.fail "missing schema tag");
    (match Obs.Json.member "summary" j with
     | Some summary ->
       let n field =
         match Obs.Json.member field summary with
         | Some (Obs.Json.Num f) -> int_of_float f
         | _ -> -1
       in
       check_int "total" 2 (n "total");
       check_int "errors" 1 (n "errors");
       check_int "infos" 1 (n "infos")
     | None -> Alcotest.fail "missing summary")

(* ------------------------------------------------------------------ *)
(* CAPL lint                                                           *)
(* ------------------------------------------------------------------ *)

let demo_dbc =
  "VERSION \"1\"\n\n\
   BO_ 256 Req: 2 VMG\n\
  \ SG_ cmd : 0|8@1+ (1,0) [0|3] \"\" ECU\n\n\
   BO_ 512 Resp: 2 ECU\n\
  \ SG_ status : 0|8@1+ (1,0) [0|3] \"\" VMG\n"

let demo_db () = Candb.To_capl.msgdb (Candb.Dbc_parser.parse demo_dbc)

let lint_src ?db src =
  Capl_lint.lint ?db ~name:"node" (Capl.Parser.program src)

let lint_srcs ?db named =
  Capl_lint.lint_nodes ?db
    (List.map (fun (n, s) -> n, Capl.Parser.program s) named)

let test_capl_unknown_message () =
  let diags =
    lint_src ~db:(demo_db ())
      "variables { message Bogus mBad; }\non message Ghost { }\n"
  in
  check_int "both selector sites flagged" 2 (count_code "CAPL001" diags);
  check_bool "CAPL001 is an error" true
    (List.exists
       (fun d -> d.Diag.code = "CAPL001" && d.Diag.severity = Diag.Error)
       diags);
  (* without a database the check stays quiet *)
  check_int "no db, no CAPL001" 0
    (count_code "CAPL001"
       (lint_src "variables { message Bogus mBad; }\non message Ghost { }\n"))

let test_capl_message_flow () =
  (* a handler nothing sends to, and an output nothing handles *)
  let diags =
    lint_src "variables { message Req mReq; }\n\
              on start { output(mReq); }\n\
              on message Resp { }\n"
  in
  check_bool "orphan handler flagged" true (has "CAPL002" diags);
  check_bool "orphan output flagged" true (has "CAPL003" diags);
  (* cross-node: one node outputs what the other handles — clean *)
  let diags =
    lint_srcs
      [
        "tx", "variables { message Req mReq; }\non start { output(mReq); }\n";
        "rx", "on message Req { }\n";
      ]
  in
  check_int "cross-node flow is clean" 0
    (count_code "CAPL002" diags + count_code "CAPL003" diags);
  (* a catch-all handler absorbs any output *)
  let diags =
    lint_srcs
      [
        "tx", "variables { message Req mReq; }\non start { output(mReq); }\n";
        "spy", "on message * { }\n";
      ]
  in
  check_int "catch-all suppresses CAPL003" 0 (count_code "CAPL003" diags)

let test_capl_timers () =
  let diags =
    lint_src "variables { timer tick; timer idle; }\n\
              on start { setTimer(tick, 5); }\n\
              on timer idle { }\n"
  in
  check_bool "armed but unhandled" true (has "CAPL004" diags);
  check_bool "handled but never armed" true (has "CAPL005" diags);
  let diags =
    lint_src "variables { timer tick; }\n\
              on start { setTimer(tick, 5); }\n\
              on timer tick { setTimer(tick, 5); }\n"
  in
  check_int "matched timer is clean" 0
    (count_code "CAPL004" diags + count_code "CAPL005" diags)

let test_capl_use_before_init () =
  let diags =
    lint_src "variables { int g; }\non message * { g = g + 1; }\n"
  in
  check_bool "uninitialised global read" true (has "CAPL006" diags);
  let diags =
    lint_src "variables { int g; }\n\
              on start { g = 0; }\n\
              on message * { g = g + 1; }\n"
  in
  check_int "on start assignment initialises" 0 (count_code "CAPL006" diags);
  let diags =
    lint_src "variables { int g = 0; }\non message * { g = g + 1; }\n"
  in
  check_int "initialiser initialises" 0 (count_code "CAPL006" diags)

let test_capl_path_sensitive_init () =
  (* the dataflow CAPL006: an assignment under a condition covers only
     one path, so the read after the join is still suspect... *)
  let diags =
    lint_src "variables { int g; int c = 1; }\n\
              on start { if (c) { g = 1; } g = g + 1; }\n"
  in
  check_bool "one-armed if leaves a path uninitialised" true
    (has "CAPL006" diags);
  (* ...while assigning on both arms initialises on every path *)
  let diags =
    lint_src "variables { int g; int c = 1; }\n\
              on start { if (c) { g = 1; } else { g = 2; } g = g + 1; }\n"
  in
  check_int "both-armed if is clean" 0 (count_code "CAPL006" diags);
  (* interprocedural: a called function's unconditional assignment
     counts through its must-assign summary *)
  let diags =
    lint_src "variables { int g; }\n\
              void setup() { g = 0; }\n\
              on start { setup(); g = g + 1; }\n"
  in
  check_int "call credited via must-assign summary" 0
    (count_code "CAPL006" diags)

let test_capl_interval_narrowing () =
  (* the interval-gated CAPL008: a narrowing store whose value provably
     fits is no longer noise... *)
  let diags = lint_src "on start { int w = 5; byte b; b = w; }\n" in
  check_int "provably fitting narrowing is clean" 0
    (count_code "CAPL008" diags);
  (* ...but a cross-handler reassignment makes the range unknown at the
     store, so the old warning survives *)
  let diags =
    lint_src "variables { int w = 5; byte b = 7; }\n\
              on timer t { w = 30000; }\n\
              on start { b = w; }\n"
  in
  check_bool "cross-handler hazard still warns" true (has "CAPL008" diags)

let test_capl_taint_secret () =
  (* CAPL101: a secret-named global reaching output() unencrypted *)
  let diags =
    lint_src "variables { message Req mReq; int netKey = 42; }\n\
              on start { mReq.cmd = netKey; output(mReq); }\n"
  in
  check_bool "plaintext key leak flagged" true (has "CAPL101" diags);
  (* routing it through a sanitizer-named call clears the taint *)
  let diags =
    lint_src "variables { message Req mReq; int netKey = 42; }\n\
              on start { mReq.cmd = encryptByte(netKey); output(mReq); }\n"
  in
  check_int "encrypted key is clean" 0 (count_code "CAPL101" diags)

let test_capl_taint_verify () =
  (* CAPL102 on the paper's case study: the tag-skipping ECU forwards
     this.version on every path without calling valid(), the conformant
     one guards every use — the flaw the 63 s corpus check rejects
     dynamically is caught here statically. *)
  let parse srcs =
    List.map (fun (n, src) -> n, Capl.Parser.program src) srcs
  in
  let flawed = Capl_lint.lint_nodes (parse Ota.Capl_sources.sources_flawed) in
  check_int "both unverified outputs flagged" 2
    (count_code "CAPL102" flawed);
  check_bool "attributed to the ECU node" true
    (List.for_all
       (fun d -> d.Diag.code <> "CAPL102" || d.Diag.file = Some "ECU")
       flawed);
  let fixed = Capl_lint.lint_nodes (parse Ota.Capl_sources.sources) in
  check_int "conformant firmware draws no taint diagnostics" 0
    (count_code "CAPL101" fixed + count_code "CAPL102" fixed)

let test_capl_dead_code () =
  let diags = lint_src "void f() { return; f(); }\non start { f(); }\n" in
  check_bool "statement after return" true (has "CAPL007" diags);
  let diags =
    lint_src "void f() { while (1) { break; f(); } }\non start { f(); }\n"
  in
  check_bool "statement after break" true (has "CAPL007" diags)

let test_capl_narrowing () =
  let diags = lint_src "variables { byte b = 300; }\non start { b = 1; }\n" in
  check_bool "narrowing initialiser" true (has "CAPL008" diags);
  let diags =
    lint_src "variables { byte b = 7; int w = 70000; }\n\
              on start { b = w; }\n"
  in
  check_bool "narrowing assignment" true (has "CAPL008" diags);
  let diags = lint_src "variables { byte b = 255; }\non start { b = 0; }\n" in
  check_int "fitting literal is clean" 0 (count_code "CAPL008" diags)

let test_capl_unused () =
  let diags =
    lint_src "variables { int used = 1; int unused = 2; }\n\
              on start { used = used + 1; }\n"
  in
  check_int "exactly the unused global" 1 (count_code "CAPL009" diags);
  check_bool "CAPL009 is info" true
    (List.for_all
       (fun d -> d.Diag.code <> "CAPL009" || d.Diag.severity = Diag.Info)
       diags);
  let diags = lint_src "on start { int local; }\n" in
  check_bool "unused local flagged" true (has "CAPL009" diags)

let test_capl_positions_and_file () =
  let diags =
    lint_src "variables {\n  timer tick;\n}\non start { setTimer(tick, 5); }\n"
  in
  (match List.find_opt (fun d -> d.Diag.code = "CAPL004") diags with
   | None -> Alcotest.fail "expected CAPL004"
   | Some d ->
     check_string "node name as file" "node" (Option.get d.Diag.file);
     (* the handler starts on line 4 *)
     check_int "nearest enclosing position" 4
       (Option.get d.Diag.pos).Diag.line)

let test_capl_stock_sources_clean () =
  let db = Candb.To_capl.msgdb (Candb.Dbc_parser.parse Ota.Capl_sources.dbc) in
  let diags =
    Capl_lint.lint_nodes ~db
      (List.map
         (fun (n, src) -> n, Capl.Parser.program src)
         Ota.Capl_sources.sources)
  in
  let blocking =
    List.filter (fun d -> d.Diag.severity <> Diag.Info) diags
  in
  check_int
    (Format.asprintf "OTA sources lint without errors or warnings: %a"
       Diag.pp_list blocking)
    0 (List.length blocking)

(* ------------------------------------------------------------------ *)
(* CSPm analysis                                                       *)
(* ------------------------------------------------------------------ *)

let load = Cspm.Elaborate.load_string

let analyze_src src = Cspm_analyze.analyze_loaded ~file:"s.csp" (load src)

let test_cspm_unguarded () =
  let diags =
    analyze_src
      "channel a : {0..2}\nP = P [] a!1 -> P\nassert P :[deadlock free]\n"
  in
  check_bool "direct unguarded self-call" true (has "CSPM001" diags);
  (* mutual unguarded recursion through another definition *)
  let diags =
    analyze_src
      "channel a : {0..2}\n\
       P = Q\n\
       Q = P [] a!1 -> Q\n\
       assert P :[deadlock free]\n"
  in
  check_int "both cycle members flagged" 2 (count_code "CSPM001" diags);
  (* guarded recursion is clean, including through sequencing *)
  let diags =
    analyze_src
      "channel a : {0..2}\n\
       P = a!1 -> P\n\
       Q = a?x -> SKIP ; Q\n\
       assert P :[deadlock free]\n"
  in
  check_int "guarded recursion is clean" 0 (count_code "CSPM001" diags)

let test_cspm_impossible_sync () =
  let diags =
    analyze_src
      "channel a : {0..1}\n\
       channel b : {0..1}\n\
       P = a!0 -> P\n\
       Q = b!0 -> Q\n\
       SYS = P [| {| a, b |} |] Q\n\
       assert SYS :[deadlock free]\n"
  in
  check_int "one per starved side" 2 (count_code "CSPM002" diags);
  let diags =
    analyze_src
      "channel a : {0..1}\n\
       P = a!0 -> P\n\
       Q = a?x -> Q\n\
       SYS = P [| {| a |} |] Q\n\
       assert SYS :[deadlock free]\n"
  in
  check_int "honest sync is clean" 0 (count_code "CSPM002" diags)

let test_cspm_unreachable () =
  let diags =
    analyze_src
      "channel a : {0..1}\n\
       P = a!0 -> P\n\
       ORPHAN = a!1 -> ORPHAN\n\
       assert P :[deadlock free]\n"
  in
  check_int "orphan flagged once" 1 (count_code "CSPM003" diags);
  check_bool "the root itself is reachable" true
    (List.for_all
       (fun d ->
         d.Diag.code <> "CSPM003"
         || Helpers.contains d.Diag.message "ORPHAN")
       diags);
  (* no assertions: the check stays quiet rather than flagging everything *)
  let diags = analyze_src "channel a : {0..1}\nP = a!0 -> P\n" in
  check_int "no roots, no CSPM003" 0 (count_code "CSPM003" diags)

let test_cspm_dead_channel () =
  let diags =
    analyze_src
      "channel a : {0..1}\n\
       channel ghost : {0..1}\n\
       P = a!0 -> P\n\
       assert P :[deadlock free]\n"
  in
  check_int "dead channel flagged" 1 (count_code "CSPM004" diags);
  (match List.find_opt (fun d -> d.Diag.code = "CSPM004") diags with
   | Some d ->
     check_bool "names the channel" true
       (Helpers.contains d.Diag.message "ghost");
     check_int "position of the declaration" 2
       (Option.get d.Diag.pos).Diag.line
   | None -> Alcotest.fail "expected CSPM004")

let test_cspm_unbounded_data () =
  let diags =
    analyze_src
      "channel a : {0..1}\n\
       P(n) = a!0 -> P(n + 1)\n\
       assert P(0) :[deadlock free]\n"
  in
  check_bool "growing parameter flagged" true (has "CSPM005" diags);
  let diags =
    analyze_src
      "channel a : {0..1}\n\
       P(n) = a!0 -> P((n + 1) % 4)\n\
       assert P(0) :[deadlock free]\n"
  in
  check_int "mod-bounded recursion is clean" 0 (count_code "CSPM005" diags)

(* Purity: running the analysis does not perturb the checker. Verdicts and
   counterexamples must match exactly, analysis or not. *)
let test_cspm_verdicts_unchanged () =
  let src =
    "channel a : {0..1}\n\
     channel ghost : {0..1}\n\
     P = a!0 -> STOP\n\
     SPEC = a!0 -> STOP\n\
     DEAD = a!0 -> a!1 -> STOP\n\
     assert SPEC [T= P\n\
     assert DEAD [T= P\n\
     assert P :[deadlock free]\n"
  in
  let digest loaded =
    List.map
      (fun (o : Cspm.Check.outcome) ->
        let verdict =
          match o.Cspm.Check.result with
          | Csp.Refine.Holds _ -> "holds"
          | Csp.Refine.Fails cex ->
            Format.asprintf "fails %a" Csp.Refine.pp_counterexample cex
          | Csp.Refine.Inconclusive _ -> "inconclusive"
        in
        Format.asprintf "%a => %s" Cspm.Print.pp_assertion
          o.Cspm.Check.assertion verdict)
      (Cspm.Check.run loaded)
  in
  let plain = digest (load src) in
  let linted =
    let loaded = load src in
    let diags = Cspm_analyze.analyze_loaded loaded in
    check_bool "fixture does produce diagnostics" true (diags <> []);
    digest loaded
  in
  Alcotest.(check (list string))
    "verdicts and counterexamples identical" plain linted

let test_obs_instrumentation () =
  let tmp = Filename.temp_file "analysis" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      let obs = Obs.create (Obs.Jsonl oc) in
      let diags =
        Cspm_analyze.analyze_loaded ~obs
          (load "channel a : {0..1}\nP = P\nassert P :[deadlock free]\n")
      in
      Obs.flush obs;
      close_out oc;
      check_bool "found something" true (diags <> []);
      let ic = open_in_bin tmp in
      let stream =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_bool "span recorded" true
        (Helpers.contains stream "\"name\":\"analysis.cspm\"");
      check_int "diag counter matches" (List.length diags)
        (Obs.counter_value (Obs.counter obs "analysis.diags")))

(* ------------------------------------------------------------------ *)
(* Robustness properties                                               *)
(* ------------------------------------------------------------------ *)

(* Any process term: the analyzer returns (possibly empty) diagnostics,
   never raises — even on terms with impossible syncs, empty hides, etc. *)
let cspm_never_raises =
  QCheck.Test.make ~count:200 ~name:"cspm analysis total on random processes"
    Helpers.arb_proc (fun p ->
      let defs = Helpers.make_defs () in
      Csp.Defs.define_proc defs "MAIN" [] p;
      let _ = Cspm_analyze.analyze ~roots:[ "MAIN" ] defs in
      true)

(* Random CAPL programs assembled directly as ASTs, unconstrained by the
   parser: undeclared identifiers, self-assignments, nested dead code,
   bogus selectors. The linter must stay total. *)
let gen_capl_program : Capl.Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let open Capl.Ast in
  let pos = { line = 1; col = 1 } in
  let ident = oneofl [ "x"; "y"; "g"; "mReq"; "tick"; "foo" ] in
  let ty =
    oneofl
      [
        T_int; T_byte; T_word; T_long; T_char; T_timer; T_ms_timer;
        T_message (Msg_name "Req"); T_message (Msg_id 256); T_message Msg_any;
      ]
  in
  let expr =
    sized_size (int_range 0 4)
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [
                 map (fun i -> E_int i) (int_range (-70000) 70000);
                 map (fun v -> E_ident v) ident;
                 return E_this;
               ]
           else
             oneof
               [
                 map2 (fun v e -> E_assign (A_eq, E_ident v, e)) ident
                   (self (n - 1));
                 map2 (fun a b -> E_binop (B_add, a, b)) (self (n / 2))
                   (self (n / 2));
                 map (fun v -> E_member (E_ident v, "cmd")) ident;
                 map2
                   (fun f args -> E_call (f, args))
                   (oneofl
                      [ "output"; "setTimer"; "cancelTimer"; "foo";
                        "helper" ])
                   (list_size (int_range 0 2) (self (n / 2)));
               ])
  in
  let decl =
    map3
      (fun t v init ->
        { var_ty = t; var_name = v; var_dims = []; var_init = init;
          var_pos = pos })
      ty ident (option expr)
  in
  let stmt =
    sized_size (int_range 0 4)
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [
                 map (fun e -> S_expr e) expr;
                 map (fun d -> S_decl [ d ]) decl;
                 return S_break;
                 return S_continue;
                 map (fun e -> S_return e) (option expr);
               ]
           else
             oneof
               [
                 map3
                   (fun c a b -> S_if (c, a, b))
                   expr (self (n / 2)) (option (self (n / 2)));
                 map2 (fun c b -> S_while (c, b)) expr (self (n - 1));
                 map2 (fun b c -> S_do_while (b, c)) (self (n - 1)) expr;
                 map2
                   (fun (i, c) (st, b) -> S_for (i, c, st, b))
                   (pair
                      (option (map (fun e -> S_expr e) expr))
                      (option expr))
                   (pair (option expr) (self (n - 1)));
                 map2
                   (fun e cases -> S_switch (e, cases))
                   expr
                   (list_size (int_range 0 3)
                      (map2
                         (fun l b -> { case_label = l; case_body = b })
                         (option expr)
                         (list_size (int_range 0 2) (self (n / 2)))));
                 map (fun ss -> S_block ss)
                   (list_size (int_range 0 3) (self (n / 2)));
               ])
  in
  let body = list_size (int_range 0 4) stmt in
  let event =
    oneofl
      [
        Ev_start; Ev_prestart; Ev_stop; Ev_key 'k'; Ev_timer "tick";
        Ev_message (Msg_name "Req"); Ev_message (Msg_id 512);
        Ev_message Msg_any;
      ]
  in
  let handler =
    map2 (fun e b -> { event = e; body = b; handler_pos = pos }) event body
  in
  let func =
    map2
      (fun name b ->
        { fn_ret = T_void; fn_name = name; fn_params = [ T_int, "p" ];
          fn_body = b; fn_pos = pos })
      (oneofl [ "foo"; "helper" ])
      body
  in
  map3
    (fun vars handlers funcs ->
      { includes = []; variables = vars; handlers; functions = funcs })
    (list_size (int_range 0 3) decl)
    (list_size (int_range 0 3) handler)
    (list_size (int_range 0 2) func)

let arb_capl_program =
  QCheck.make
    ~print:(fun (p : Capl.Ast.program) ->
      Printf.sprintf "<program: %d vars, %d handlers, %d functions>"
        (List.length p.Capl.Ast.variables)
        (List.length p.Capl.Ast.handlers)
        (List.length p.Capl.Ast.functions))
    gen_capl_program

let capl_never_raises =
  QCheck.Test.make ~count:200 ~name:"capl lint total on random programs"
    arb_capl_program (fun prog ->
      let _ = Capl_lint.lint prog in
      let _ = Capl_lint.lint ~db:(demo_db ()) prog in
      true)

(* The dataflow passes on their own: every solve — CFG fixpoints, the
   interprocedural summary rounds, the cross-handler global round — is
   bounded, so the analyses return on any program the generator can
   assemble (loops, switches with fallthrough, recursive "helper"
   calls) rather than iterating forever or raising. *)
let capl_dataflow_terminates =
  QCheck.Test.make ~count:200
    ~name:"capl dataflow fixpoints terminate on random programs"
    arb_capl_program (fun prog ->
      let _ = Valueflow.check prog in
      let _ = Taint.check prog in
      true)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "Diag ordering, blocking, pp" `Quick test_diag_basics;
      Alcotest.test_case "Diag severity tiebreak" `Quick
        test_diag_severity_tiebreak;
      Alcotest.test_case "Diag JSON document" `Quick test_diag_json;
      Alcotest.test_case "CAPL001 unknown message" `Quick
        test_capl_unknown_message;
      Alcotest.test_case "CAPL002/003 message flow" `Quick
        test_capl_message_flow;
      Alcotest.test_case "CAPL004/005 timers" `Quick test_capl_timers;
      Alcotest.test_case "CAPL006 use before init" `Quick
        test_capl_use_before_init;
      Alcotest.test_case "CAPL006 path-sensitive init" `Quick
        test_capl_path_sensitive_init;
      Alcotest.test_case "CAPL007 dead code" `Quick test_capl_dead_code;
      Alcotest.test_case "CAPL008 narrowing" `Quick test_capl_narrowing;
      Alcotest.test_case "CAPL008 interval gating" `Quick
        test_capl_interval_narrowing;
      Alcotest.test_case "CAPL101 secret leak" `Quick test_capl_taint_secret;
      Alcotest.test_case "CAPL102 unverified payload" `Quick
        test_capl_taint_verify;
      Alcotest.test_case "CAPL009 unused variables" `Quick test_capl_unused;
      Alcotest.test_case "positions and node labels" `Quick
        test_capl_positions_and_file;
      Alcotest.test_case "stock OTA sources lint clean" `Quick
        test_capl_stock_sources_clean;
      Alcotest.test_case "CSPM001 unguarded recursion" `Quick
        test_cspm_unguarded;
      Alcotest.test_case "CSPM002 impossible sync" `Quick
        test_cspm_impossible_sync;
      Alcotest.test_case "CSPM003 unreachable defs" `Quick
        test_cspm_unreachable;
      Alcotest.test_case "CSPM004 dead channels" `Quick test_cspm_dead_channel;
      Alcotest.test_case "CSPM005 unbounded data" `Quick
        test_cspm_unbounded_data;
      Alcotest.test_case "verdicts unchanged by analysis" `Quick
        test_cspm_verdicts_unchanged;
      Alcotest.test_case "obs span and counter" `Quick test_obs_instrumentation;
      QCheck_alcotest.to_alcotest cspm_never_raises;
      QCheck_alcotest.to_alcotest capl_never_raises;
      QCheck_alcotest.to_alcotest capl_dataflow_terminates;
    ] )
