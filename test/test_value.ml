(* Unit tests for Csp.Value: ordering, equality, hashing, printing. *)

open Csp

let v_int = Value.Int 3
let v_sym = Value.sym "reqSw"
let v_ctor = Value.Ctor ("mac", [ Value.sym "k"; Value.Int 1 ])
let v_tuple = Value.Tuple [ Value.Int 1; Value.Bool true ]

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let test_equal () =
  check_bool "int reflexive" true (Value.equal v_int (Value.Int 3));
  check_bool "int differs" false (Value.equal v_int (Value.Int 4));
  check_bool "sym reflexive" true (Value.equal v_sym (Value.sym "reqSw"));
  check_bool "sym differs" false (Value.equal v_sym (Value.sym "rptSw"));
  check_bool "ctor deep" true
    (Value.equal v_ctor (Value.Ctor ("mac", [ Value.sym "k"; Value.Int 1 ])));
  check_bool "ctor arg differs" false
    (Value.equal v_ctor (Value.Ctor ("mac", [ Value.sym "k"; Value.Int 2 ])));
  check_bool "kinds differ" false (Value.equal v_int v_sym);
  check_bool "tuple" true
    (Value.equal v_tuple (Value.Tuple [ Value.Int 1; Value.Bool true ]))

let test_compare_total_order () =
  let values =
    [ v_int; v_sym; v_ctor; v_tuple; Value.Bool false; Value.Int (-5) ]
  in
  (* antisymmetry and consistency with equal *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Value.compare a b in
          let ba = Value.compare b a in
          check_bool "antisymmetric" true (compare ab 0 = compare 0 ba);
          check_bool "equal iff compare 0" (Value.equal a b) (ab = 0))
        values)
    values;
  (* transitivity on a sorted list *)
  let sorted = List.sort Value.compare values in
  let rec adjacent_ok = function
    | a :: (b :: _ as rest) ->
      check_bool "sorted" true (Value.compare a b <= 0);
      adjacent_ok rest
    | _ -> ()
  in
  adjacent_ok sorted

let test_hash_consistent () =
  check_int "equal values, equal hashes" (Value.hash v_ctor)
    (Value.hash (Value.Ctor ("mac", [ Value.sym "k"; Value.Int 1 ])));
  check_int "tuple hash stable" (Value.hash v_tuple)
    (Value.hash (Value.Tuple [ Value.Int 1; Value.Bool true ]))

let test_pp () =
  check_string "int" "3" (Value.to_string v_int);
  check_string "sym" "reqSw" (Value.to_string v_sym);
  check_string "ctor dotted" "mac.k.1" (Value.to_string v_ctor);
  check_string "nested ctor parenthesized" "mac.(key.k).1"
    (Value.to_string
       (Value.Ctor ("mac", [ Value.Ctor ("key", [ Value.sym "k" ]); Value.Int 1 ])));
  check_string "tuple" "(1, true)" (Value.to_string v_tuple);
  check_string "bool" "false" (Value.to_string (Value.Bool false))

let test_accessors () =
  check_int "as_int" 3 (Value.as_int v_int);
  check_bool "as_bool" true (Value.as_bool (Value.Bool true));
  Alcotest.check_raises "as_int on sym"
    (Invalid_argument "Value.as_int: reqSw") (fun () ->
      ignore (Value.as_int v_sym));
  Alcotest.check_raises "as_bool on int"
    (Invalid_argument "Value.as_bool: 3") (fun () ->
      ignore (Value.as_bool v_int))

let suite =
  ( "value",
    [
      Alcotest.test_case "equal" `Quick test_equal;
      Alcotest.test_case "compare is a total order" `Quick
        test_compare_total_order;
      Alcotest.test_case "hash consistent with equal" `Quick
        test_hash_consistent;
      Alcotest.test_case "printing" `Quick test_pp;
      Alcotest.test_case "accessors" `Quick test_accessors;
    ] )
