(* Tests for the fault-injection layer: seeded determinism (byte-identical
   traces across runs), the error-confinement state machine, and the
   bounded retransmission budget. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_reproducible () =
  let stream seed n =
    let r = Canbus.Fault.Rng.make seed in
    List.init n (fun _ -> Canbus.Fault.Rng.int r 1000)
  in
  Alcotest.(check (list int))
    "same seed, same stream" (stream 42 20) (stream 42 20);
  check_bool "different seeds diverge" true (stream 42 20 <> stream 43 20);
  (* split streams are independent of draws on the parent *)
  let r1 = Canbus.Fault.Rng.make 7 in
  let child1 = Canbus.Fault.Rng.split r1 in
  let a = List.init 10 (fun _ -> Canbus.Fault.Rng.int child1 1000) in
  let r2 = Canbus.Fault.Rng.make 7 in
  let child2 = Canbus.Fault.Rng.split r2 in
  let b = List.init 10 (fun _ -> Canbus.Fault.Rng.int child2 1000) in
  Alcotest.(check (list int)) "splitting is deterministic" a b;
  let f = Canbus.Fault.Rng.float r1 in
  check_bool "float in [0,1)" true (f >= 0. && f < 1.)

let test_plan_validation () =
  (try
     ignore (Canbus.Fault.plan ~drop:1.5 ());
     Alcotest.fail "expected probability range error"
   with Invalid_argument _ -> ());
  try
    ignore (Canbus.Fault.plan ~corrupt:(-0.1) ());
    Alcotest.fail "expected probability range error"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Seeded reproducibility on the OTA CAPL simulation                   *)
(* ------------------------------------------------------------------ *)

let lossy_ota_trace ~seed =
  let sim = Ota.Capl_sources.simulation () in
  let plan = Canbus.Fault.plan ~seed ~drop:0.1 () in
  let fault = Canbus.Fault.install (Capl.Simulation.bus sim) plan in
  Capl.Simulation.start sim;
  ignore (Capl.Simulation.run ~until_ms:200 sim);
  ( Format.asprintf "%a" Canbus.Trace_log.pp (Capl.Simulation.log sim),
    Canbus.Fault.stats fault )

let test_seeded_run_reproducible () =
  let t1, s1 = lossy_ota_trace ~seed:42 in
  let t2, s2 = lossy_ota_trace ~seed:42 in
  Alcotest.(check string) "byte-identical trace across runs" t1 t2;
  check_int "same drop count" s1.Canbus.Fault.drops s2.Canbus.Fault.drops;
  check_bool "some frames were dropped" true (s1.Canbus.Fault.drops > 0);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "drops show up in the trace" true (contains t1 "fault:drop");
  (* a different seed exercises a different fault pattern *)
  let t3, _ = lossy_ota_trace ~seed:43 in
  check_bool "different seed, different trace" true (t1 <> t3)

(* ------------------------------------------------------------------ *)
(* Error confinement: TEC growth to bus-off                            *)
(* ------------------------------------------------------------------ *)

let test_bus_off () =
  let s = Canbus.Scheduler.create () in
  let bus = Canbus.Bus.create s in
  let flaky_rx = ref 0 and peer_from_healthy = ref 0 and peer_other = ref 0 in
  let flaky =
    Canbus.Bus.attach bus ~name:"flaky" ~rx:(fun _ -> incr flaky_rx)
  in
  let _healthy =
    Canbus.Bus.attach bus ~name:"healthy" ~rx:(fun _ -> ())
  in
  let _peer =
    Canbus.Bus.attach bus ~name:"peer" ~rx:(fun f ->
        if f.Canbus.Frame.id = 0x200 then incr peer_from_healthy
        else incr peer_other)
  in
  (* every frame the flaky node sends is destroyed on the wire; with a
     retry budget of 1 each attempt costs TEC +16, so the lowered bus-off
     threshold (24) is crossed on the second attempt *)
  let plan = Canbus.Fault.plan ~seed:1 ~drop:1.0 ~only:"flaky" () in
  let fault = Canbus.Fault.install ~max_retries:1 ~tec_busoff:24 bus plan in
  let node_by_name name =
    List.find
      (fun id -> String.equal (Canbus.Bus.node_name bus id) name)
      (Canbus.Bus.node_ids bus)
  in
  let healthy = node_by_name "healthy" in
  for i = 0 to 4 do
    ignore
      (Canbus.Scheduler.at s ((i * 2000) + 1000) (fun () ->
           Canbus.Bus.transmit bus flaky (Canbus.Frame.make ~id:0x100 [ i ])));
    ignore
      (Canbus.Scheduler.at s ((i * 2000) + 2000) (fun () ->
           Canbus.Bus.transmit bus healthy (Canbus.Frame.make ~id:0x200 [ i ])))
  done;
  ignore (Canbus.Scheduler.run s);
  check_bool "flaky node reaches bus-off" true
    (Canbus.Fault.node_state fault flaky = Canbus.Fault.Bus_off);
  let st = Canbus.Fault.stats fault in
  check_bool "post-bus-off transmissions are gated" true
    (st.Canbus.Fault.bus_off_blocked > 0);
  check_bool "retries happened before giving up" true
    (st.Canbus.Fault.retransmissions > 0);
  check_bool "retry budget ran out at least once" true
    (st.Canbus.Fault.abandoned > 0);
  (* the bus itself stays usable for everyone else *)
  check_int "peer hears every healthy frame" 5 !peer_from_healthy;
  check_int "no flaky frame ever arrives" 0 !peer_other;
  (* a bus-off node also stops receiving: it hears at most the healthy
     traffic sent before it died *)
  check_bool "flaky stops receiving after bus-off" true (!flaky_rx < 5);
  (* the one-shot confinement event is in the log *)
  let busoff_entries =
    List.filter
      (fun e ->
        match e.Canbus.Trace_log.direction with
        | Canbus.Trace_log.Fault k -> String.equal k "bus-off"
        | _ -> false)
      (Canbus.Trace_log.faults (Canbus.Bus.log bus))
  in
  check_int "bus-off logged exactly once" 1 (List.length busoff_entries)

let test_uninstall_restores_bus () =
  let s = Canbus.Scheduler.create () in
  let bus = Canbus.Bus.create s in
  let got = ref 0 in
  let n1 = Canbus.Bus.attach bus ~name:"n1" ~rx:(fun _ -> ()) in
  let _n2 = Canbus.Bus.attach bus ~name:"n2" ~rx:(fun _ -> incr got) in
  let fault =
    Canbus.Fault.install bus (Canbus.Fault.plan ~seed:5 ~drop:1.0 ())
  in
  Canbus.Bus.transmit bus n1 (Canbus.Frame.make ~id:1 []);
  ignore (Canbus.Scheduler.run s);
  check_int "dropped while installed" 0 !got;
  Canbus.Fault.uninstall fault;
  Canbus.Bus.transmit bus n1 (Canbus.Frame.make ~id:1 []);
  ignore (Canbus.Scheduler.run s);
  check_int "delivery restored after uninstall" 1 !got

let suite =
  ( "fault",
    [
      Alcotest.test_case "rng reproducible and splittable" `Quick
        test_rng_reproducible;
      Alcotest.test_case "plan validates probabilities" `Quick
        test_plan_validation;
      Alcotest.test_case "seeded runs byte-identical" `Quick
        test_seeded_run_reproducible;
      Alcotest.test_case "error confinement reaches bus-off" `Quick
        test_bus_off;
      Alcotest.test_case "uninstall restores the ideal bus" `Quick
        test_uninstall_restores_bus;
    ] )
