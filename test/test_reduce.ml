(* The staged reduction pipeline: --reductions parsing, staged
   compilation against the one-shot compiler, each graph pass actually
   reducing what it claims to reduce, the reduced engine's verdicts and
   counterexamples staying byte-identical to the raw engine's for every
   pass combination and worker count, and checkpoints recording the
   pipeline they were taken under. *)

open Csp

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pipeline parsing and printing                                       *)
(* ------------------------------------------------------------------ *)

let test_pipeline_strings () =
  check_string "default renders in canonical order" "dead,tau,bisim,por"
    (Reduce.pipeline_to_string Reduce.default_pipeline);
  check_string "the empty pipeline renders as none" "none"
    (Reduce.pipeline_to_string []);
  check_string "fingerprint of the empty pipeline" "none"
    (Reduce.fingerprint []);
  let parse s =
    match Reduce.pipeline_of_string s with
    | Ok p -> Reduce.pipeline_to_string p
    | Error msg -> Alcotest.failf "%S did not parse: %s" s msg
  in
  check_string "none parses to the empty pipeline" "none" (parse "none");
  check_string "the empty string parses like none" "none" (parse "");
  check_string "default parses to the full pipeline" "dead,tau,bisim,por"
    (parse "default");
  check_string "subsets are canonicalised" "tau,bisim" (parse "bisim,tau");
  check_string "duplicates collapse" "por" (parse "por, por");
  (match Reduce.pipeline_of_string "bisim,bogus" with
   | Ok _ -> Alcotest.fail "an unknown pass name was accepted"
   | Error msg ->
     check_bool "the error names the offending pass" true
       (Helpers.contains msg "bogus"));
  List.iter
    (fun (model, expected) ->
      check_string
        (Printf.sprintf "effective passes under %s" expected)
        expected
        (Reduce.pipeline_to_string
           (Reduce.effective ~model Reduce.default_pipeline)))
    [ `Traces, "dead,tau,bisim,por"; `Failures, "tau,bisim"; `Fd, "tau,bisim" ];
  check_string "effective preserves canonical order on subsets" "dead,bisim"
    (Reduce.pipeline_to_string
       (Reduce.effective ~model:`Traces [ Reduce.Bisim; Reduce.Dead_events ]))

(* ------------------------------------------------------------------ *)
(* Staged compilation produces the same reachable behaviour            *)
(* ------------------------------------------------------------------ *)

(* The set of traces (label sequences, taus included) of length <= depth,
   rendered and sorted — a state-identity-free comparison between the two
   compilers. Memoized per (state, remaining depth). *)
let traces_to_depth lts depth =
  let memo = Hashtbl.create 97 in
  let rec suffixes st d =
    if d = 0 then [ "" ]
    else
      match Hashtbl.find_opt memo (st, d) with
      | Some ts -> ts
      | None ->
        let ts =
          ""
          :: List.concat_map
               (fun (l, j) ->
                 let lbl = Format.asprintf "%a" Event.pp_label l in
                 List.map (fun t -> lbl ^ ";" ^ t) (suffixes j (d - 1)))
               (Lts.transitions_of lts st)
        in
        let ts = List.sort_uniq compare ts in
        Hashtbl.add memo (st, d) ts;
        ts
  in
  suffixes lts.Lts.initial depth

let staged_compile_agrees =
  QCheck.Test.make ~count:120
    ~name:"compile_staged explores the same behaviour as Lts.compile"
    Helpers.arb_proc (fun p ->
      let defs = Helpers.make_defs () in
      let raw =
        match Lts.compile_budgeted ~max_states:50_000 defs p with
        | Lts.Complete lts -> lts
        | Lts.Partial _ -> QCheck.Test.fail_reportf "raw compile was partial"
      in
      let staged =
        match Reduce.compile_staged ~max_states:50_000 defs p with
        | Lts.Complete lts -> lts
        | Lts.Partial _ ->
          QCheck.Test.fail_reportf "staged compile was partial"
      in
      let expected = traces_to_depth raw 5 in
      let got = traces_to_depth staged 5 in
      if expected = got then true
      else
        QCheck.Test.fail_reportf
          "trace sets to depth 5 differ on %s:@.raw:    %s@.staged: %s"
          (Proc.to_string p)
          (String.concat " " expected)
          (String.concat " " got))

(* ------------------------------------------------------------------ *)
(* Each pass earns its keep                                            *)
(* ------------------------------------------------------------------ *)

(* A call-free chain of [n] sends on [chan], values cycling through the
   channel's 0..2 domain. *)
let chain chan n =
  let rec go i = if i = n then Proc.stop else Helpers.send chan (i mod 3) (go (i + 1)) in
  go 0

let reduction_stats name = function
  | Refine.Holds stats -> (
    match
      List.find_opt (fun (p, _, _) -> String.equal p name)
        stats.Refine.reductions
    with
    | Some (_, before, after) -> (stats, before, after)
    | None ->
      Alcotest.failf "no %S entry in the reduction stats of %a" name
        Refine.pp_result (Refine.Holds stats))
  | r -> Alcotest.failf "expected Holds, got %a" Refine.pp_result r

let test_dead_and_tau_collapse () =
  (* against an all-accepting spec every event is dead: the default
     pipeline must collapse a 60-state chain to almost nothing, and the
     pass stats must record the shrinkage in the result *)
  let defs = Helpers.make_defs () in
  let impl = chain "a" 60 in
  let spec = Proc.run (Eventset.chan "a") in
  let raw =
    Refine.check
      ~config:Check_config.(default |> with_reductions [])
      defs ~spec ~impl
  in
  let raw_pairs =
    match raw with
    | Refine.Holds s -> s.Refine.pairs
    | r -> Alcotest.failf "raw engine should hold, got %a" Refine.pp_result r
  in
  let reduced = Refine.check defs ~spec ~impl in
  let stats, before, after = reduction_stats "tau" reduced in
  check_bool "tau compression shrank the graph" true (after < before);
  check_bool "the reduced product is far smaller than the raw one" true
    (stats.Refine.pairs < 10 && raw_pairs > 50);
  check_string "all graph passes are on record" "dead,tau,bisim"
    (String.concat ","
       (List.map (fun (p, _, _) -> p) stats.Refine.reductions))

let test_bisim_quotients () =
  (* STOP and STOP ||| STOP are strongly bisimilar but structurally
     different, so the quotient must merge them — and then their
     one-step predecessors too *)
  let defs = Helpers.make_defs () in
  let impl =
    Proc.ext
      ( Helpers.send "a" 0 (Helpers.send "b" 0 Proc.stop),
        Helpers.send "a" 1
          (Helpers.send "b" 0 (Proc.inter (Proc.stop, Proc.stop))) )
  in
  let config =
    Check_config.(default |> with_reductions [ Reduce.Bisim ])
  in
  let result = Refine.check ~config defs ~spec:impl ~impl in
  let _, before, after = reduction_stats "bisim" result in
  check_int "five structural states" 5 before;
  check_int "quotiented to three bisimulation classes" 3 after

let test_por_prunes_interleavings () =
  (* two independent chains: ample sets must explore one component at a
     time instead of the full product grid *)
  let defs = Helpers.make_defs () in
  let impl = Proc.inter (chain "a" 6, chain "b" 6) in
  let spec = Proc.run (Eventset.chans [ "a"; "b" ]) in
  let pairs config =
    match Refine.check ~config defs ~spec ~impl with
    | Refine.Holds s -> s.Refine.pairs
    | r -> Alcotest.failf "expected Holds, got %a" Refine.pp_result r
  in
  let raw = pairs Check_config.(default |> with_reductions []) in
  let por =
    pairs Check_config.(default |> with_reductions [ Reduce.Por ])
  in
  check_int "the raw search explores the full 7x7 grid" 49 raw;
  check_bool
    (Printf.sprintf "ample sets prune the grid (%d < %d)" por raw)
    true (por < raw)

(* ------------------------------------------------------------------ *)
(* Reduced verdicts are byte-identical to raw ones                     *)
(* ------------------------------------------------------------------ *)

(* Verdict plus counterexample, stats excluded: exploration counts
   legitimately differ between engines, everything the user acts on must
   not. *)
let render = function
  | Refine.Holds _ -> "holds"
  | Refine.Fails cex ->
    Format.asprintf "fails %a" Refine.pp_counterexample cex
  | Refine.Inconclusive _ -> "inconclusive"

let all_subsets =
  List.fold_left
    (fun acc p -> acc @ List.map (fun s -> s @ [ p ]) acc)
    [ [] ] Reduce.default_pipeline

let reduced_equals_raw =
  QCheck.Test.make ~count:12
    ~name:
      "every pass combination at every worker count matches the raw engine"
    (QCheck.pair Helpers.arb_proc Helpers.arb_proc)
    (fun (spec, impl) ->
      let defs = Helpers.make_defs () in
      List.for_all
        (fun model ->
          let expected =
            render
              (Refine.check
                 ~config:
                   Check_config.(
                     default |> with_max_states 50_000 |> with_reductions [])
                 ~model defs ~spec ~impl)
          in
          List.for_all
            (fun pipeline ->
              List.for_all
                (fun w ->
                  let config =
                    Check_config.(
                      default |> with_max_states 50_000 |> with_workers w
                      |> with_reductions pipeline)
                  in
                  let got =
                    render (Refine.check ~config ~model defs ~spec ~impl)
                  in
                  if String.equal expected got then true
                  else
                    QCheck.Test.fail_reportf
                      "reductions=%s workers=%d model=%s diverged:@.raw: \
                       %s@.got: %s@.spec=%s@.impl=%s"
                      (Reduce.pipeline_to_string pipeline)
                      w
                      (match model with
                       | Refine.Traces -> "T"
                       | Refine.Failures -> "F"
                       | Refine.Failures_divergences -> "FD")
                      expected got (Proc.to_string spec) (Proc.to_string impl))
                [ 1; 2; 4 ])
            all_subsets)
        [ Refine.Traces; Refine.Failures; Refine.Failures_divergences ])

(* ------------------------------------------------------------------ *)
(* Checkpoints record their pipeline                                   *)
(* ------------------------------------------------------------------ *)

(* A 20-state chain refining itself: no event is dead against this spec,
   no states are bisimilar, so the default pipeline leaves all 21 states
   in place and a 5-pair budget interrupts the reduced search itself. *)
let test_checkpoint_pipeline_mismatch () =
  let defs = Helpers.make_defs () in
  let impl = chain "a" 20 in
  let interrupted config =
    match
      Refine.check
        ~config:(Check_config.with_max_pairs 5 config)
        defs ~spec:impl ~impl
    with
    | Refine.Inconclusive (_, { Refine.checkpoint = Some cp; _ }) -> cp
    | r ->
      Alcotest.failf "the pair budget did not bite: %a" Refine.pp_result r
  in
  let cp = interrupted Check_config.default in
  check_string "the checkpoint records the effective pipeline"
    "dead,tau,bisim,por" cp.Search.pipeline;
  (* resuming under different reductions must be refused loudly *)
  (try
     ignore
       (Refine.resume
          ~config:Check_config.(default |> with_reductions [ Reduce.Bisim ])
          ~checkpoint:cp defs ~spec:impl ~impl);
     Alcotest.fail "a resume under different reductions was accepted"
   with Search.Resume_mismatch msg ->
     check_bool "the refusal names both pipelines" true
       (Helpers.contains msg "dead,tau,bisim,por"
       && Helpers.contains msg "bisim"));
  (* the same pipeline resumes to the verdict *)
  check_string "a matching resume completes" "holds"
    (render (Refine.resume ~checkpoint:cp defs ~spec:impl ~impl));
  (* a raw-engine checkpoint names the raw engine, and a default-config
     resume must follow the recording, not its own pipeline *)
  let cp_raw = interrupted Check_config.(default |> with_reductions []) in
  check_string "raw checkpoints are stamped none" "none"
    cp_raw.Search.pipeline;
  check_string "a raw checkpoint resumes on the raw path" "holds"
    (render (Refine.resume ~checkpoint:cp_raw defs ~spec:impl ~impl))

let suite =
  ( "reduce",
    [
      Alcotest.test_case "--reductions parsing and rendering" `Quick
        test_pipeline_strings;
      QCheck_alcotest.to_alcotest staged_compile_agrees;
      Alcotest.test_case "dead events + tau compression collapse" `Quick
        test_dead_and_tau_collapse;
      Alcotest.test_case "bisimulation quotienting merges equivalent states"
        `Quick test_bisim_quotients;
      Alcotest.test_case "ample sets prune independent interleavings" `Quick
        test_por_prunes_interleavings;
      QCheck_alcotest.to_alcotest reduced_equals_raw;
      Alcotest.test_case "checkpoints record and enforce their pipeline"
        `Quick test_checkpoint_pipeline_mismatch;
    ] )
