(* Tests for the model extractor: each translatable CAPL construct maps to
   the intended CSP structure, warnings fire for approximations, and the
   extracted models verify as expected. *)

open Csp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let dbc =
  "BU_: A B\n\
   BO_ 1 ping: 1 A\n\
   \ SG_ v : 0|2@1+ (1,0) [0|3] \"\" B\n\
   BO_ 2 pong: 1 B\n\
   \ SG_ v : 0|2@1+ (1,0) [0|3] \"\" A\n"

let db = Candb.Dbc_parser.parse dbc

let extract ?config src =
  let defs = Defs.create () in
  let cfg =
    Option.value ~default:Extractor.Extract.default_config config
  in
  Candb.To_cspm.declare ~config:cfg.Extractor.Extract.domain db defs;
  let model =
    Extractor.Extract.extract_into ~config:cfg ~defs ~db ~node:"N"
      (Capl.Parser.program src)
  in
  defs, model

let lts defs model =
  Lts.compile defs (Extractor.Extract.entry_call model)

let traces defs model ~depth =
  Traces.of_lts ~depth (lts defs model)

let has_trace defs model tr =
  let ts = traces defs model ~depth:(List.length tr) in
  List.exists (fun t -> List.equal Event.equal_label t tr) ts

let ev chan args = Event.Vis (Event.event chan (List.map (fun n -> Value.Int n) args))

let test_echo_handler () =
  (* on message ping reply pong with the same value *)
  let defs, model =
    extract
      {|
variables { message pong m; }
on message ping { m.v = this.v; output(m); }
|}
  in
  check_bool "echo trace" true
    (has_trace defs model [ ev "ping" [ 2 ]; ev "pong" [ 2 ] ]);
  check_bool "no spontaneous pong" false
    (has_trace defs model [ ev "pong" [ 0 ] ]);
  Alcotest.(check (list string)) "no warnings" []
    (List.map (fun w -> w.Extractor.Extract.what) model.Extractor.Extract.warnings)

let test_tracked_global_state () =
  (* a counter that saturates the reply *)
  let defs, model =
    extract
      {|
variables { message pong m; int n = 0; }
on message ping { n = n + 1; m.v = n; output(m); }
|}
  in
  check_bool "counter advances across handler runs" true
    (has_trace defs model
       [ ev "ping" [ 0 ]; ev "pong" [ 1 ]; ev "ping" [ 0 ]; ev "pong" [ 2 ] ]);
  check_bool "stale counter value impossible" false
    (has_trace defs model
       [ ev "ping" [ 0 ]; ev "pong" [ 1 ]; ev "ping" [ 0 ]; ev "pong" [ 1 ] ])

let test_conditionals () =
  let defs, model =
    extract
      {|
variables { message pong m; }
on message ping {
  if (this.v > 1) { m.v = 3; output(m); } else { m.v = 0; output(m); }
}
|}
  in
  check_bool "then branch" true
    (has_trace defs model [ ev "ping" [ 2 ]; ev "pong" [ 3 ] ]);
  check_bool "else branch" true
    (has_trace defs model [ ev "ping" [ 1 ]; ev "pong" [ 0 ] ]);
  check_bool "cross branch impossible" false
    (has_trace defs model [ ev "ping" [ 2 ]; ev "pong" [ 0 ] ])

let test_loop_unrolling () =
  (* a static loop emits three frames *)
  let defs, model =
    extract
      {|
variables { message pong m; }
on message ping {
  int i;
  for (i = 0; i < 3; i++) { m.v = i; output(m); }
}
|}
  in
  check_bool "unrolled sequence" true
    (has_trace defs model
       [ ev "ping" [ 0 ]; ev "pong" [ 0 ]; ev "pong" [ 1 ]; ev "pong" [ 2 ] ])

let test_unroll_bound_warning () =
  let _, model =
    extract
      {|
variables { message pong m; int stop = 0; }
on message ping {
  int i;
  for (i = 0; i >= 0; i++) { output(m); }
}
|}
  in
  check_bool "unbounded loop warned" true
    (List.exists
       (fun w ->
         let m = w.Extractor.Extract.what in
         String.length m >= 4 && String.sub m 0 4 = "loop")
       model.Extractor.Extract.warnings)

let test_timers () =
  let defs, model =
    extract
      {|
variables { message ping m; msTimer t; }
on start { setTimer(t, 10); }
on timer t { output(m); setTimer(t, 10); }
|}
  in
  (* the timer channel gates transmission: fire, send, fire, send *)
  let timer = Event.Vis (Event.event "timer_N_t" []) in
  check_bool "timer drives output" true
    (has_trace defs model [ timer; ev "ping" [ 0 ]; timer; ev "ping" [ 0 ] ]);
  check_bool "no output before the timer" false
    (has_trace defs model [ ev "ping" [ 0 ] ]);
  (* cancelTimer disarms *)
  let defs2, model2 =
    extract
      {|
variables { message ping m; msTimer t; }
on start { setTimer(t, 10); cancelTimer(t); }
on timer t { output(m); }
|}
  in
  check_bool "cancelled timer never fires" false
    (has_trace defs2 model2 [ Event.Vis (Event.event "timer_N_t" []) ])

let test_function_inlining () =
  let defs, model =
    extract
      {|
variables { message pong m; }
int bump(int x) { return x + 1; }
on message ping { m.v = bump(this.v); output(m); }
|}
  in
  check_bool "inlined computation" true
    (has_trace defs model [ ev "ping" [ 1 ]; ev "pong" [ 2 ] ])

let test_switch_translation () =
  let defs, model =
    extract
      {|
variables { message pong m; }
on message ping {
  switch (this.v) {
    case 0: m.v = 3; break;
    case 1: m.v = 2; break;
    default: m.v = 0; break;
  }
  output(m);
}
|}
  in
  check_bool "case 0" true (has_trace defs model [ ev "ping" [ 0 ]; ev "pong" [ 3 ] ]);
  check_bool "case 1" true (has_trace defs model [ ev "ping" [ 1 ]; ev "pong" [ 2 ] ]);
  check_bool "default" true (has_trace defs model [ ev "ping" [ 2 ]; ev "pong" [ 0 ] ])

let test_signal_wrapping () =
  (* values outside the signal domain wrap rather than escape it *)
  let defs, model =
    extract
      {|
variables { message pong m; }
on message ping { m.v = this.v + 3; output(m); }
|}
  in
  check_bool "wrapped into the domain" true
    (has_trace defs model [ ev "ping" [ 2 ]; ev "pong" [ 1 ] ])

let test_strict_mode () =
  let config = { Extractor.Extract.default_config with lenient = false } in
  try
    ignore
      (extract ~config
         "variables { message pong m; } on message ping { m.v = this.v & 1; output(m); }");
    Alcotest.fail "expected Unsupported"
  with Extractor.Extract.Unsupported _ -> ()

let test_entry_runs_start_body () =
  let defs, model =
    extract
      {|
variables { message ping m; int seed = 2; }
on start { m.v = seed; output(m); }
on message pong { }
|}
  in
  check_bool "start body emits first" true
    (has_trace defs model [ ev "ping" [ 2 ] ])

let suite =
  ( "extract",
    [
      Alcotest.test_case "message handler translation" `Quick test_echo_handler;
      Alcotest.test_case "tracked globals as parameters" `Quick
        test_tracked_global_state;
      Alcotest.test_case "conditionals" `Quick test_conditionals;
      Alcotest.test_case "static loop unrolling" `Quick test_loop_unrolling;
      Alcotest.test_case "unroll bound warning" `Quick test_unroll_bound_warning;
      Alcotest.test_case "timer abstraction" `Quick test_timers;
      Alcotest.test_case "function inlining" `Quick test_function_inlining;
      Alcotest.test_case "switch translation" `Quick test_switch_translation;
      Alcotest.test_case "signal domain wrapping" `Quick test_signal_wrapping;
      Alcotest.test_case "strict mode raises" `Quick test_strict_mode;
      Alcotest.test_case "on start runs before the loop" `Quick
        test_entry_runs_start_body;
    ] )
