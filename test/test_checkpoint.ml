(* Crash-safe checking: the checkpoint/resume machinery must be invisible
   in the verdicts. Interrupting a search — by pair budget, cancellation
   token, or heap watermark — and resuming from the checkpoint (JSON
   round-tripped, at any worker count) must reproduce the uninterrupted
   run's verdict, counterexample, and structural stats byte for byte; a
   checkpoint replayed against the wrong model must be refused. *)

open Csp

let check_string = Alcotest.(check string)

(* Same canonical rendering as test_search_par: everything but the
   timing/pool fields, which legitimately vary. *)
let render result =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (match result with
   | Refine.Holds s ->
     Format.fprintf ppf "Holds impl=%d spec=%d pairs=%d" s.Refine.impl_states
       s.Refine.spec_nodes s.Refine.pairs
   | Refine.Fails cex ->
     Format.fprintf ppf "Fails %a" Refine.pp_counterexample cex
   | Refine.Inconclusive (s, hint) ->
     Format.fprintf ppf "Inconclusive impl=%d spec=%d pairs=%d %a"
       s.Refine.impl_states s.Refine.spec_nodes s.Refine.pairs
       Refine.pp_resume_hint hint);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let worker_counts = [ 1; 2; 4 ]

(* Serialize + reparse, as every consumer of a checkpoint file does. *)
let roundtrip cp =
  let encoded = Obs.Json.to_string (Search.json_of_checkpoint cp) in
  match Obs.Json.parse encoded with
  | Error msg -> Alcotest.failf "checkpoint does not re-parse: %s" msg
  | Ok json -> (
    match Search.checkpoint_of_json json with
    | Ok cp -> cp
    | Error msg -> Alcotest.failf "checkpoint does not round-trip: %s" msg)

(* ------------------------------------------------------------------ *)
(* A model big enough to be interruptible: the budget/cancel/memory     *)
(* polls fire once per 256 dequeues, so anything smaller than a couple  *)
(* of poll intervals can never observe an interrupt. Three interleaved  *)
(* mod-16 counters give 4096 implementation states.                     *)
(* ------------------------------------------------------------------ *)

let big_model () =
  let defs = Defs.create () in
  List.iter
    (fun c -> Defs.declare_channel defs c [ Ty.Int_range (0, 15) ])
    [ "x"; "y"; "z" ];
  let counter name chan stride =
    for i = 0 to 15 do
      Defs.define_proc defs
        (Printf.sprintf "%s%d" name i)
        []
        (Helpers.send chan i
           (Proc.call (Printf.sprintf "%s%d" name ((i + stride) mod 16), [])))
    done;
    Proc.call (name ^ "0", [])
  in
  let impl =
    Proc.inter
      (counter "P" "x" 1, Proc.inter (counter "Q" "y" 3, counter "R" "z" 5))
  in
  let recv chan k = Proc.prefix_items (chan, [ Proc.In ("v", None) ], k) in
  Defs.define_proc defs "SPEC" []
    (Proc.ext
       ( recv "x" (Proc.call ("SPEC", [])),
         Proc.ext
           ( recv "y" (Proc.call ("SPEC", [])),
             recv "z" (Proc.call ("SPEC", [])) ) ));
  (defs, Proc.call ("SPEC", []), impl)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_codec () =
  (* the digest sits near the top of its 52-bit range — above the 1e15
     cliff where a naive float formatter starts rounding integers *)
  let cp =
    {
      Search.explored = 9728;
      pairs = 11511;
      impl_states = 4096;
      visited_digest = 0xF_FFFF_FFFF_FFFF;
      deadline_left = Some 1.25;
      exhausted = Search.Interrupt;
      pipeline = "dead,tau,bisim,por";
    }
  in
  let cp' = roundtrip cp in
  Alcotest.(check bool) "all fields survive the JSON round trip" true
    (cp = cp');
  let cp_nodl = { cp with Search.deadline_left = None; exhausted = Search.Pairs } in
  Alcotest.(check bool) "no-deadline variant survives" true
    (cp_nodl = roundtrip cp_nodl);
  (match Search.checkpoint_of_json (Obs.Json.Str "nonsense") with
   | Ok _ -> Alcotest.fail "a non-object parsed as a checkpoint"
   | Error _ -> ());
  match
    Obs.Json.parse
      {|{"schema":"bogus/1","explored":1,"pairs":1,"impl_states":1,"visited_digest":1,"deadline_left":null,"exhausted":"pairs"}|}
  with
  | Error msg -> Alcotest.fail msg
  | Ok json -> (
    match Search.checkpoint_of_json json with
    | Ok _ -> Alcotest.fail "a wrong schema tag was accepted"
    | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* qcheck: interrupt at a random point, resume, compare                *)
(* ------------------------------------------------------------------ *)

let interrupt_resume_equals_uninterrupted =
  QCheck.Test.make ~count:60
    ~name:"pair-budget cut + JSON round trip + resume equals uninterrupted"
    QCheck.(triple Helpers.arb_proc Helpers.arb_proc (int_range 1 40))
    (fun (spec, impl, cut) ->
      List.for_all
        (fun model ->
          let defs = Helpers.make_defs () in
          (* reductions stay off throughout this file: the subject is the
             checkpoint machinery, whose pacing and pair counts are those
             of the raw engine (reduced-vs-raw equivalence has its own
             suite in test_reduce) *)
          let config w =
            Check_config.(
              default |> with_max_states 50_000 |> with_workers w
              |> with_reductions [])
          in
          let expected =
            render (Refine.check ~config:(config 1) ~model defs ~spec ~impl)
          in
          let cut_config =
            Check_config.(
              default |> with_max_states 50_000 |> with_max_pairs cut
              |> with_reductions [])
          in
          match Refine.check ~config:cut_config ~model defs ~spec ~impl with
          | Refine.Inconclusive (_, { Refine.checkpoint = Some cp; _ }) ->
            let cp = roundtrip cp in
            List.for_all
              (fun w ->
                let got =
                  render
                    (Refine.resume ~config:(config w) ~model ~checkpoint:cp
                       defs ~spec ~impl)
                in
                if String.equal expected got then true
                else
                  QCheck.Test.fail_reportf
                    "resume at workers=%d diverged:@.full: %s@.resumed: %s" w
                    expected got)
              worker_counts
          | other ->
            (* the cut did not bite (model smaller than the budget, or the
               exhaustion predates any interned pair): the budgeted result
               must simply agree with the unbudgeted one *)
            let got = render other in
            String.equal expected got
            || QCheck.Test.fail_reportf
                 "cut run without checkpoint diverged:@.full: %s@.cut: %s"
                 expected got)
        [ Refine.Traces; Refine.Failures ])

(* ------------------------------------------------------------------ *)
(* Cancellation token                                                  *)
(* ------------------------------------------------------------------ *)

let test_cancel_token_checkpoint_resume () =
  let defs, spec, impl = big_model () in
  let raw = Check_config.(default |> with_reductions []) in
  let expected = render (Refine.check ~config:raw defs ~spec ~impl) in
  let calls = ref 0 in
  let config =
    Check_config.(
      raw
      |> with_cancel (fun () ->
             incr calls;
             !calls >= 2))
  in
  match Refine.check ~config defs ~spec ~impl with
  | Refine.Inconclusive
      (stats, { Refine.exhausted = Refine.Interrupt; checkpoint = Some cp; _ })
    ->
    Alcotest.(check bool) "interrupt stopped the search early" true
      (stats.Refine.pairs < 4096);
    List.iter
      (fun w ->
        let config = Check_config.(raw |> with_workers w) in
        check_string
          (Printf.sprintf "resumed verdict at workers=%d" w)
          expected
          (render (Refine.resume ~config ~checkpoint:(roundtrip cp) defs ~spec ~impl)))
      worker_counts
  | other ->
    Alcotest.failf "expected an interrupt checkpoint, got: %s" (render other)

(* ------------------------------------------------------------------ *)
(* Heap watermark                                                      *)
(* ------------------------------------------------------------------ *)

let test_memory_watermark_checkpoint_resume () =
  let defs, spec, impl = big_model () in
  let raw = Check_config.(default |> with_reductions []) in
  let expected = render (Refine.check ~config:raw defs ~spec ~impl) in
  (* a 1 MB watermark is far below the live heap of a running test
     binary, so the first poll trips it — deterministically *)
  let config = Check_config.(raw |> with_memory_limit 1) in
  match Refine.check ~config defs ~spec ~impl with
  | Refine.Inconclusive
      (_, { Refine.exhausted = Refine.Memory; checkpoint = Some cp; _ }) ->
    (* the resume runs under the stock config on purpose: the checkpoint
       records the raw engine, and that recording — not the resuming
       config's reduction pipeline — must pick the engine *)
    check_string "resumed without the watermark" expected
      (render (Refine.resume ~checkpoint:(roundtrip cp) defs ~spec ~impl))
  | other ->
    Alcotest.failf "expected a memory-watermark stop, got: %s" (render other)

(* ------------------------------------------------------------------ *)
(* Refusing foreign checkpoints                                        *)
(* ------------------------------------------------------------------ *)

let test_resume_mismatch () =
  let defs, spec, impl = big_model () in
  let config =
    Check_config.(default |> with_max_pairs 1000 |> with_reductions [])
  in
  match Refine.check ~config defs ~spec ~impl with
  | Refine.Inconclusive (_, { Refine.checkpoint = Some cp; _ }) ->
    let bad = { cp with Search.visited_digest = cp.Search.visited_digest lxor 1 } in
    (try
       ignore (Refine.resume ~checkpoint:bad defs ~spec ~impl);
       Alcotest.fail "a tampered digest was accepted"
     with Search.Resume_mismatch _ -> ());
    (* a model too small to ever reach the recorded position must refuse
       too, not silently return its own verdict *)
    let defs2 = Helpers.make_defs () in
    let p = Helpers.send "a" 0 Proc.stop in
    (try
       ignore (Refine.resume ~checkpoint:cp defs2 ~spec:p ~impl:p);
       Alcotest.fail "a checkpoint from a different model was accepted"
     with Search.Resume_mismatch _ -> ())
  | other -> Alcotest.failf "pair budget did not bite: %s" (render other)

(* ------------------------------------------------------------------ *)
(* The cspm layer: run_seq + the cspm-checkpoint/1 document            *)
(* ------------------------------------------------------------------ *)

let seq_script =
  "channel a : {0..1}\n\
   channel x : {0..15}\n\
   channel y : {0..15}\n\
   channel z : {0..15}\n\
   TINY = a!0 -> STOP\n\
   P(n) = x!n -> P((n+1)%16)\n\
   Q(n) = y!n -> Q((n+3)%16)\n\
   R(n) = z!n -> R((n+5)%16)\n\
   SYS = P(0) ||| Q(0) ||| R(0)\n\
   BIG = x?v -> BIG [] y?v -> BIG [] z?v -> BIG\n\
   assert TINY [T= TINY\n\
   assert BIG [T= SYS\n"

let test_run_seq_interrupt_and_resume () =
  let loaded = Cspm.Elaborate.load_string seq_script in
  let raw = Check_config.(default |> with_reductions []) in
  let full, stop_full = Cspm.Check.run_seq ~config:raw loaded in
  Alcotest.(check bool) "uninterrupted run_seq completes" true
    (stop_full = None);
  let expected = List.map (fun o -> render o.Cspm.Check.result) full in
  (* TINY finishes under one poll interval and never observes the token;
     the second poll of BIG's search trips it *)
  let calls = ref 0 in
  let config =
    Check_config.(
      raw
      |> with_cancel (fun () ->
             incr calls;
             !calls >= 2))
  in
  let outcomes, stop = Cspm.Check.run_seq ~config loaded in
  match stop with
  | None -> Alcotest.fail "the cancellation token did not stop the sequence"
  | Some s ->
    Alcotest.(check int) "interrupted at the big assertion" 1
      s.Cspm.Check.next_index;
    Alcotest.(check int) "partial outcomes include the interrupted one" 2
      (List.length outcomes);
    (match (List.nth outcomes 1).Cspm.Check.result with
     | Refine.Inconclusive (_, hint) ->
       Alcotest.(check bool) "marked as an interrupt" true
         (hint.Refine.exhausted = Refine.Interrupt)
     | _ -> Alcotest.fail "the interrupted outcome should be inconclusive");
    let cp =
      match s.Cspm.Check.search with
      | Some cp -> cp
      | None -> Alcotest.fail "no engine checkpoint in the stop record"
    in
    (* the full cspm-checkpoint/1 document, round-tripped as the CLI
       writes and reads it *)
    let st =
      {
        Cspm.Check.script_digest = Digest.to_hex (Digest.string seq_script);
        completed = [ Cspm.Check.json_of_outcome 0 (List.hd outcomes) ];
        next_index = 1;
        search = Some cp;
      }
    in
    let encoded = Obs.Json.to_string (Cspm.Check.json_of_resume_state st) in
    let st' =
      match Obs.Json.parse encoded with
      | Error msg -> Alcotest.failf "resume state does not re-parse: %s" msg
      | Ok json -> (
        match Cspm.Check.resume_state_of_json json with
        | Ok st -> st
        | Error msg -> Alcotest.failf "resume state rejected: %s" msg)
    in
    check_string "script digest survives" st.Cspm.Check.script_digest
      st'.Cspm.Check.script_digest;
    let cp' =
      match st'.Cspm.Check.search with
      | Some cp -> cp
      | None -> Alcotest.fail "engine checkpoint lost in the round trip"
    in
    let resumed, stop' =
      Cspm.Check.run_seq ~start:1 ~resume_first:cp' ~config:raw loaded
    in
    Alcotest.(check bool) "resume completes" true (stop' = None);
    let got =
      render (List.hd outcomes).Cspm.Check.result
      :: List.map (fun o -> render o.Cspm.Check.result) resumed
    in
    List.iteri
      (fun i (e, g) -> check_string (Printf.sprintf "assertion %d" i) e g)
      (List.combine expected got)

let test_resume_state_rejects_malformed () =
  let reject name json =
    match Cspm.Check.resume_state_of_json json with
    | Ok _ -> Alcotest.failf "%s was accepted" name
    | Error _ -> ()
  in
  reject "a non-object" (Obs.Json.Str "nope");
  (match
     Obs.Json.parse
       {|{"schema":"bogus/1","script_digest":"d","completed":[],"next_index":0,"search":null}|}
   with
   | Ok json -> reject "a wrong schema tag" json
   | Error msg -> Alcotest.fail msg);
  match
    Obs.Json.parse
      {|{"schema":"cspm-checkpoint/1","script_digest":"d","completed":[],"next_index":2,"search":null}|}
  with
  | Ok json -> reject "a completed/next_index mismatch" json
  | Error msg -> Alcotest.fail msg

let suite =
  ( "checkpoint",
    [
      Alcotest.test_case "checkpoint JSON codec round-trips exactly" `Quick
        test_checkpoint_codec;
      QCheck_alcotest.to_alcotest interrupt_resume_equals_uninterrupted;
      Alcotest.test_case "cancel token: checkpoint then identical resume"
        `Quick test_cancel_token_checkpoint_resume;
      Alcotest.test_case "heap watermark: checkpoint then identical resume"
        `Quick test_memory_watermark_checkpoint_resume;
      Alcotest.test_case "foreign or tampered checkpoints are refused" `Quick
        test_resume_mismatch;
      Alcotest.test_case "run_seq interrupt, document round trip, resume"
        `Quick test_run_seq_interrupt_and_resume;
      Alcotest.test_case "malformed resume documents are rejected" `Quick
        test_resume_state_rejects_malformed;
    ] )
