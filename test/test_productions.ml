(* Tests for FDR-style partial channel productions {| c.v |}. *)

open Csp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ev chan args = Event.event chan (List.map (fun n -> Value.Int n) args)

let test_membership () =
  let s = Eventset.prefixed "c" [ Value.Int 1 ] in
  check_bool "matching prefix" true (Eventset.mem s (ev "c" [ 1; 5 ]));
  check_bool "matching exact" true (Eventset.mem s (ev "c" [ 1 ]));
  check_bool "wrong value" false (Eventset.mem s (ev "c" [ 2; 5 ]));
  check_bool "wrong channel" false (Eventset.mem s (ev "d" [ 1 ]));
  check_bool "prefix longer than event" false
    (Eventset.mem (Eventset.prefixed "c" [ Value.Int 1; Value.Int 2 ]) (ev "c" [ 1 ]))

let test_empty_prefix_is_chan () =
  let s = Eventset.prefixed "c" [] in
  check_bool "degenerates to the channel production" true
    (Eventset.mem s (ev "c" [ 9; 9 ]))

let test_enumerate () =
  let chan_events = function
    | "c" -> [ ev "c" [ 0; 0 ]; ev "c" [ 0; 1 ]; ev "c" [ 1; 0 ] ]
    | _ -> []
  in
  check_int "filters by prefix" 2
    (List.length
       (Eventset.enumerate ~chan_events (Eventset.prefixed "c" [ Value.Int 0 ])))

let test_cspm_syntax () =
  (* hide only the v=1 slice of a channel *)
  let src =
    "channel c : {0..1}.{0..1}\n\
     P = c!0!0 -> c!1!0 -> STOP\n\
     Q = P \\ {| c.1 |}\n\
     SPEC = c!0!0 -> STOP\n\
     assert SPEC [T= Q"
  in
  let outcomes = Cspm.Check.run (Cspm.Elaborate.load_string src) in
  check_bool "partial hide leaves c.0 visible, hides c.1" true
    (Cspm.Check.all_pass outcomes)

let test_cspm_sync_slice () =
  (* two processes synchronize only on the c.1 slice *)
  let src =
    "channel c : {0..1}.{0..1}\n\
     L = c!0!0 -> c!1!1 -> STOP\n\
     R = c!1!1 -> STOP\n\
     SYS = L [| {| c.1 |} |] R\n\
     SPEC = c!0!0 -> c!1!1 -> STOP\n\
     assert SPEC [T= SYS"
  in
  check_bool "sliced synchronization" true
    (Cspm.Check.all_pass (Cspm.Check.run (Cspm.Elaborate.load_string src)))

let test_unknown_channel_rejected () =
  try
    ignore (Cspm.Elaborate.load_string "channel c : {0..1}\nP = STOP \\ {| nope.1 |}");
    Alcotest.fail "expected Elab_error"
  with Cspm.Elaborate.Elab_error _ -> ()

let suite =
  ( "productions",
    [
      Alcotest.test_case "membership" `Quick test_membership;
      Alcotest.test_case "empty prefix" `Quick test_empty_prefix_is_chan;
      Alcotest.test_case "enumeration" `Quick test_enumerate;
      Alcotest.test_case "CSPm partial hiding" `Quick test_cspm_syntax;
      Alcotest.test_case "CSPm sliced synchronization" `Quick
        test_cspm_sync_slice;
      Alcotest.test_case "unknown channel rejected" `Quick
        test_unknown_channel_rejected;
    ] )
