(* The parallel product engine must be observationally identical to the
   sequential one: for any worker count, the verdict, the counterexample
   trace, and the structural stats (state/pair counts, resume hints) all
   match byte for byte. Only the timing fields and the recorded pool size
   may differ. *)

open Csp

let check_string = Alcotest.(check string)

(* Canonical rendering of a result excluding wall-clock timing and the
   [workers]/[par_speedup] fields, which legitimately vary with the pool
   size. *)
let render result =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (match result with
   | Refine.Holds s ->
     Format.fprintf ppf "Holds impl=%d spec=%d pairs=%d" s.Refine.impl_states
       s.Refine.spec_nodes s.Refine.pairs
   | Refine.Fails cex ->
     Format.fprintf ppf "Fails %a" Refine.pp_counterexample cex
   | Refine.Inconclusive (s, hint) ->
     Format.fprintf ppf "Inconclusive impl=%d spec=%d pairs=%d %a"
       s.Refine.impl_states s.Refine.spec_nodes s.Refine.pairs
       Refine.pp_resume_hint hint);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let worker_counts = [ 1; 2; 4 ]

(* qcheck: random ground spec/impl pairs through the traces and failures
   models at workers 1, 2, 4 against the sequential engine. *)
let par_equals_seq =
  QCheck.Test.make ~count:80
    ~name:"parallel refinement verdicts/traces/stats equal sequential"
    (QCheck.pair Helpers.arb_proc Helpers.arb_proc)
    (fun (spec, impl) ->
      List.for_all
        (fun model ->
          let defs = Helpers.make_defs () in
          let run w =
            let config =
              Check_config.(
                default |> with_max_states 50_000 |> with_workers w)
            in
            Refine.check ~config ~model defs ~spec ~impl
          in
          let expected = render (run 1) in
          List.for_all
            (fun w ->
              let got = render (run w) in
              if String.equal expected got then true
              else
                QCheck.Test.fail_reportf
                  "workers=%d diverged:@.seq: %s@.par: %s" w expected got)
            worker_counts)
        [ Refine.Traces; Refine.Failures ])

(* A budgeted run must stop at the same pair with the same resume hint at
   any worker count — the parallel engine commits expansions in exactly
   the sequential frontier order. *)
let test_budgeted_inconclusive () =
  let results =
    List.map
      (fun w ->
        let defs, system = Security.Ns_protocol.build ~fixed:true in
        let spec = Security.Ns_protocol.authentication_spec defs in
        (* raw engine: the quotiented NS product is small enough that a
           100-pair budget might not bite it at all *)
        let config =
          Check_config.(
            default |> with_max_pairs 100 |> with_workers w
            |> with_reductions [])
        in
        w, render (Refine.check ~config defs ~spec ~impl:system))
      worker_counts
  in
  match results with
  | (_, expected) :: rest ->
    Alcotest.(check bool) "budget actually bites" true
      (String.length expected >= 12 && String.sub expected 0 12 = "Inconclusive");
    List.iter
      (fun (w, got) ->
        check_string (Printf.sprintf "workers=%d budgeted prefix" w) expected got)
      rest
  | [] -> assert false

(* The broken Needham-Schroeder protocol: Lowe's attack trace must come
   out identical (the BFS is level-synchronous, so the minimal
   counterexample is unique) whatever the pool size. *)
let test_ns_attack_trace () =
  let expected =
    render (Security.Ns_protocol.check ~fixed:false ())
  in
  List.iter
    (fun w ->
      check_string
        (Printf.sprintf "workers=%d attack trace" w)
        expected
        (render
           (Security.Ns_protocol.check
              ~config:
                (Check_config.with_workers w
                   Security.Ns_protocol.default_config)
              ~fixed:false ())))
    [ 2; 4 ]

(* The recorded stats must say how many workers ran, so benchmark rows
   can be trusted. *)
let test_stats_record_workers () =
  let defs = Helpers.make_defs () in
  let p = Helpers.send "a" 0 (Helpers.send "b" 1 Proc.stop) in
  (match
     Refine.check
       ~config:Check_config.(default |> with_workers 2)
       defs ~spec:p ~impl:p
   with
   | Refine.Holds s -> Alcotest.(check int) "workers recorded" 2 s.Refine.workers
   | _ -> Alcotest.fail "self-refinement should hold");
  match Refine.check defs ~spec:p ~impl:p with
  | Refine.Holds s ->
    Alcotest.(check int) "sequential is 1 worker" 1 s.Refine.workers;
    Alcotest.(check (float 0.0)) "sequential speedup is 1" 1.0
      s.Refine.par_speedup
  | _ -> Alcotest.fail "self-refinement should hold"

(* deterministic/deadlock_free accept a config with workers set too (the
   graph-based checks run sequentially by design but must not reject the
   field). *)
let test_other_checks_accept_workers () =
  let defs = Helpers.make_defs () in
  let p = Proc.ext (Helpers.send "a" 0 Proc.stop, Helpers.send "b" 1 Proc.skip) in
  Defs.define_proc defs "LOOP" [] (Helpers.send "a" 0 (Proc.call ("LOOP", [])));
  List.iter
    (fun w ->
      check_string
        (Printf.sprintf "deterministic workers=%d" w)
        (render (Refine.deterministic defs p))
        (render
           (Refine.deterministic
              ~config:Check_config.(default |> with_workers w)
              defs p));
      check_string
        (Printf.sprintf "deadlock_free workers=%d" w)
        (render (Refine.deadlock_free defs p))
        (render
           (Refine.deadlock_free
              ~config:Check_config.(default |> with_workers w)
              defs p));
      check_string
        (Printf.sprintf "divergence_free workers=%d" w)
        (render (Refine.divergence_free defs p))
        (render
           (Refine.divergence_free
              ~config:Check_config.(default |> with_workers w)
              defs p));
      (* ...and their stats must say so: the recorded pool size is 1
         however many workers the config asked for *)
      match
        Refine.deadlock_free
          ~config:Check_config.(default |> with_workers w)
          defs
          (Proc.call ("LOOP", []))
      with
      | Refine.Holds s ->
        Alcotest.(check int)
          (Printf.sprintf "graph check ran sequentially at workers=%d" w)
          1 s.Refine.workers
      | _ -> Alcotest.fail "a pure loop cannot deadlock")
    [ 2; 4 ]

let suite =
  ( "search_par",
    [
      QCheck_alcotest.to_alcotest par_equals_seq;
      Alcotest.test_case "budgeted prefix identical across pools" `Quick
        test_budgeted_inconclusive;
      Alcotest.test_case "NS attack trace identical across pools" `Quick
        test_ns_attack_trace;
      Alcotest.test_case "stats record the pool size" `Quick
        test_stats_record_workers;
      Alcotest.test_case "graph checks accept ?workers" `Quick
        test_other_checks_accept_workers;
    ] )
