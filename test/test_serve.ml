(* The serve subsystem behind cspm_checkd: atomic file output, the
   cancellation token, the cspm-checkd/1 wire codec, and the supervised
   runner (backpressure, deadline-driven retry resuming from engine
   checkpoints, graceful drain) — all with injected emit/sleep hooks so
   nothing here waits on a real clock or a real signal. *)

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let str k j = Option.bind (Obs.Json.member k j) Obs.Json.to_str
let int k j = Option.bind (Obs.Json.member k j) Obs.Json.to_int
let event_name j = Option.value (str "event" j) ~default:"?"

let req k j =
  match int k j with
  | Some v -> v
  | None -> Alcotest.failf "event has no integer %S field" k

(* ------------------------------------------------------------------ *)
(* Fsio                                                                *)
(* ------------------------------------------------------------------ *)

let in_temp_dir f =
  let dir = Filename.temp_file "serve_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_write () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Serve.Fsio.atomic_write ~path "first";
      check_string "contents land" "first" (read_file path);
      Serve.Fsio.atomic_write ~path "second";
      check_string "overwrite replaces" "second" (read_file path);
      check_int "no temporaries left behind" 1 (Array.length (Sys.readdir dir)))

let test_atomic_write_failure_leaves_target () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Serve.Fsio.atomic_write ~path "precious";
      (try
         Serve.Fsio.with_atomic_out ~path (fun oc ->
             output_string oc "half-writ";
             failwith "disk on fire");
         Alcotest.fail "the writer's exception was swallowed"
       with Failure _ -> ());
      check_string "target untouched by the failed write" "precious"
        (read_file path);
      check_int "failed temporary removed" 1 (Array.length (Sys.readdir dir)))

let test_atomic_write_is_durable () =
  (* the durability contract, counted at the syscall shim: each
     successful write fsyncs the file data before the rename and the
     containing directory after it — two syncs, no fewer *)
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      let before = Serve.Fsio.fsync_count () in
      Serve.Fsio.atomic_write ~path "durable";
      check_int "file fsync + directory fsync" (before + 2)
        (Serve.Fsio.fsync_count ());
      (* a failed write never reaches the rename, so at most the file
         sync may have happened — the directory one must not *)
      let before = Serve.Fsio.fsync_count () in
      (try
         Serve.Fsio.with_atomic_out ~path (fun _ -> failwith "disk on fire")
       with Failure _ -> ());
      check_bool "a failed write does not sync the directory" true
        (Serve.Fsio.fsync_count () <= before + 1))

(* ------------------------------------------------------------------ *)
(* Signals                                                             *)
(* ------------------------------------------------------------------ *)

let test_token () =
  let t = Serve.Signals.create () in
  check_bool "fresh token is untripped" false (Serve.Signals.tripped t);
  check_bool "closure form agrees" false (Serve.Signals.read t ());
  Serve.Signals.trip t;
  Serve.Signals.trip t;
  check_bool "tripped (idempotently)" true (Serve.Signals.tripped t);
  check_bool "closure form agrees after trip" true (Serve.Signals.read t ())

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)
(* ------------------------------------------------------------------ *)

let test_request_parse () =
  (match
     Serve.Protocol.request_of_line
       {|{"schema":"cspm-checkd/1","op":"submit","id":"j1","script":"assert STOP [T= STOP","deadline_s":2.5,"workers":2,"max_states":100,"max_retries":3}|}
   with
   | Ok (Serve.Protocol.Submit j, v) ->
     check_bool "explicit /1 schema parses as v1" true (v = Serve.Protocol.V1);
     check_bool "job records its version" true
       (j.Serve.Protocol.version = Serve.Protocol.V1);
     check_bool "kind defaults to check" true
       (j.Serve.Protocol.kind = Serve.Protocol.Check);
     check_string "id" "j1" j.Serve.Protocol.id;
     (match j.Serve.Protocol.source with
      | Serve.Protocol.Inline s ->
        check_string "inline source" "assert STOP [T= STOP" s
      | Serve.Protocol.Path _ -> Alcotest.fail "expected an inline source");
     check_bool "deadline" true (j.Serve.Protocol.deadline_s = Some 2.5);
     check_int "workers" 2 j.Serve.Protocol.workers;
     check_bool "max_states" true (j.Serve.Protocol.max_states = Some 100);
     check_bool "max_retries" true (j.Serve.Protocol.max_retries = Some 3)
   | Ok _ -> Alcotest.fail "parsed as the wrong request"
   | Error msg -> Alcotest.fail msg);
  (match
     Serve.Protocol.request_of_line {|{"op":"submit","id":"j2","path":"m.csp"}|}
   with
   | Ok (Serve.Protocol.Submit j, v) ->
     check_bool "schema-less kind-less submit stays v1" true
       (v = Serve.Protocol.V1);
     check_bool "path source" true
       (j.Serve.Protocol.source = Serve.Protocol.Path "m.csp");
     check_int "workers default" 1 j.Serve.Protocol.workers;
     check_bool "optional fields default to None" true
       (j.Serve.Protocol.deadline_s = None
       && j.Serve.Protocol.max_states = None
       && j.Serve.Protocol.max_retries = None)
   | Ok _ -> Alcotest.fail "parsed as the wrong request"
   | Error msg -> Alcotest.fail msg);
  check_bool "health" true
    (Serve.Protocol.request_of_line {|{"op":"health"}|}
    = Ok (Serve.Protocol.Health, Serve.Protocol.V1));
  check_bool "drain" true
    (Serve.Protocol.request_of_line {|{"op":"drain"}|}
    = Ok (Serve.Protocol.Drain, Serve.Protocol.V1));
  check_bool "v2 health" true
    (Serve.Protocol.request_of_line
       {|{"schema":"cspm-checkd/2","op":"health"}|}
    = Ok (Serve.Protocol.Health, Serve.Protocol.V2));
  let rejects line =
    match Serve.Protocol.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  rejects "not json at all";
  rejects {|{"op":"submit","script":"x"}|};
  rejects {|{"op":"submit","id":"j","script":"x","path":"y"}|};
  rejects {|{"op":"submit","id":"j"}|};
  rejects {|{"op":"reboot"}|};
  rejects {|{"schema":"other/9","op":"health"}|}

let test_request_parse_v2 () =
  (* an explicit kind implies v2 even without a schema tag *)
  (match
     Serve.Protocol.request_of_line
       {|{"op":"submit","id":"t1","script":"SPEC = STOP","kind":"trace-check","corpus":"fleet.ndjson","specs":["SPEC_A","SPEC_B"],"dbc":"bus.dbc","workers":4}|}
   with
   | Ok (Serve.Protocol.Submit j, v) ->
     check_bool "kind field implies v2" true (v = Serve.Protocol.V2);
     (match j.Serve.Protocol.kind with
      | Serve.Protocol.Trace_check { corpus; specs; dbc } ->
        check_string "corpus" "fleet.ndjson" corpus;
        check_bool "specs" true (specs = [ "SPEC_A"; "SPEC_B" ]);
        check_bool "dbc" true (dbc = Some "bus.dbc")
      | Serve.Protocol.Check -> Alcotest.fail "expected a trace-check job");
     check_int "workers" 4 j.Serve.Protocol.workers
   | Ok _ -> Alcotest.fail "parsed as the wrong request"
   | Error msg -> Alcotest.fail msg);
  (* singular "spec" is sugar for a one-element list *)
  (match
     Serve.Protocol.request_of_line
       {|{"schema":"cspm-checkd/2","op":"submit","id":"t2","path":"m.csp","kind":"trace-check","corpus":"c.ndjson","spec":"SPEC_ONLY"}|}
   with
   | Ok (Serve.Protocol.Submit j, _) ->
     check_bool "singular spec" true
       (j.Serve.Protocol.kind
       = Serve.Protocol.Trace_check
           { corpus = "c.ndjson"; specs = [ "SPEC_ONLY" ]; dbc = None })
   | Ok _ -> Alcotest.fail "parsed as the wrong request"
   | Error msg -> Alcotest.fail msg);
  (* an explicit kind:"check" is a v2 check job *)
  (match
     Serve.Protocol.request_of_line
       {|{"op":"submit","id":"t3","path":"m.csp","kind":"check"}|}
   with
   | Ok (Serve.Protocol.Submit j, v) ->
     check_bool "explicit check kind is v2" true
       (v = Serve.Protocol.V2 && j.Serve.Protocol.kind = Serve.Protocol.Check)
   | Ok _ -> Alcotest.fail "parsed as the wrong request"
   | Error msg -> Alcotest.fail msg);
  let rejects line =
    match Serve.Protocol.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  (* trace-check under an explicit v1 schema *)
  rejects
    {|{"schema":"cspm-checkd/1","op":"submit","id":"t","path":"m.csp","kind":"trace-check","corpus":"c.ndjson"}|};
  (* trace-check without a corpus *)
  rejects {|{"op":"submit","id":"t","path":"m.csp","kind":"trace-check"}|};
  (* both spellings of the spec list *)
  rejects
    {|{"op":"submit","id":"t","path":"m.csp","kind":"trace-check","corpus":"c","spec":"A","specs":["B"]}|};
  (* an unknown kind *)
  rejects {|{"op":"submit","id":"t","path":"m.csp","kind":"fuzz"}|}

let test_events_tagged () =
  (* default tagging is the current schema; ~v:V1 reproduces the v1
     bytes, so a v1 job's event stream is unchanged *)
  List.iter
    (fun (name, j, j1) ->
      check_string (name ^ " schema") "cspm-checkd/2"
        (Option.value (str "schema" j) ~default:"?");
      check_string (name ^ " v1 schema") "cspm-checkd/1"
        (Option.value (str "schema" j1) ~default:"?");
      check_string (name ^ " event tag") name (event_name j))
    [
      ( "accepted",
        Serve.Protocol.accepted ~id:"j" ~queue_depth:1 (),
        Serve.Protocol.accepted ~v:Serve.Protocol.V1 ~id:"j" ~queue_depth:1 ()
      );
      ( "rejected",
        Serve.Protocol.rejected ~id:None ~reason:"r" (),
        Serve.Protocol.rejected ~v:Serve.Protocol.V1 ~id:None ~reason:"r" ()
      );
      ( "started",
        Serve.Protocol.started ~id:"j" ~attempt:1 (),
        Serve.Protocol.started ~v:Serve.Protocol.V1 ~id:"j" ~attempt:1 () );
      ( "retrying",
        Serve.Protocol.retrying ~id:"j" ~attempt:2 ~backoff_s:0.1
          ~resumed:true (),
        Serve.Protocol.retrying ~v:Serve.Protocol.V1 ~id:"j" ~attempt:2
          ~backoff_s:0.1 ~resumed:true () );
      ( "result",
        Serve.Protocol.result ~id:"j" ~attempts:1 ~interrupted:false
          ~report:Obs.Json.Null (),
        Serve.Protocol.result ~v:Serve.Protocol.V1 ~id:"j" ~attempts:1
          ~interrupted:false ~report:Obs.Json.Null () );
      ( "failed",
        Serve.Protocol.failed ~id:"j" ~attempts:1 ~reason:"r" (),
        Serve.Protocol.failed ~v:Serve.Protocol.V1 ~id:"j" ~attempts:1
          ~reason:"r" () );
      ( "health",
        Serve.Protocol.health ~queued:0 ~done_:0 ~failed:0 ~retries:0
          ~draining:false (),
        Serve.Protocol.health ~v:Serve.Protocol.V1 ~queued:0 ~done_:0
          ~failed:0 ~retries:0 ~draining:false () );
      ( "drained",
        Serve.Protocol.drained ~done_:0 ~failed:0 (),
        Serve.Protocol.drained ~v:Serve.Protocol.V1 ~done_:0 ~failed:0 () );
    ];
  (* a trace-check result carries its verdict counts as top-level fields *)
  let r =
    Serve.Protocol.result ~id:"t" ~attempts:1 ~interrupted:false
      ~verdicts:(10, 8, 2) ~report:Obs.Json.Null ()
  in
  check_int "result streams" 10 (req "streams" r);
  check_int "result accepted" 8 (req "accepted" r);
  check_int "result rejected" 2 (req "rejected" r)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let trivial_script = "channel a : {0..1}\nP = a!0 -> STOP\nassert P [T= P\n"

(* Three interleaved mod-16 counters: 4096 states — enough dequeues for
   the engine's 256-commit poll cadence to observe a deadline. *)
let big_script =
  "channel x : {0..15}\n\
   channel y : {0..15}\n\
   channel z : {0..15}\n\
   P(n) = x!n -> P((n+1)%16)\n\
   Q(n) = y!n -> Q((n+3)%16)\n\
   R(n) = z!n -> R((n+5)%16)\n\
   SYS = P(0) ||| Q(0) ||| R(0)\n\
   SPEC = x?v -> SPEC [] y?v -> SPEC [] z?v -> SPEC\n\
   assert SPEC [T= SYS\n"

let job ?deadline_s ?max_retries ?max_states ?(workers = 1) ?reductions
    ?(kind = Serve.Protocol.Check) ?(version = Serve.Protocol.V2)
    ?(lint = false) ?(deny_warnings = false) ~id source =
  {
    Serve.Protocol.id;
    source;
    kind;
    version;
    deadline_s;
    workers;
    max_states;
    max_retries;
    reductions;
    lint = lint || deny_warnings;
    deny_warnings;
  }

(* A runner whose emit appends to a list and whose sleep records the
   backoffs instead of waiting. *)
let make_runner ?(queue_limit = 16) ?(default_retries = 2) () =
  let events = ref [] and sleeps = ref [] in
  let cfg =
    {
      (Serve.Runner.default_config ~emit:(fun j -> events := j :: !events)) with
      Serve.Runner.queue_limit;
      default_retries;
      backoff_base_s = 0.01;
      backoff_max_s = 0.05;
      sleep = (fun s -> sleeps := s :: !sleeps);
    }
  in
  ( Serve.Runner.create cfg,
    (fun () -> List.rev !events),
    fun () -> List.rev !sleeps )

let test_backpressure_and_drain () =
  let t, events, _ = make_runner ~queue_limit:2 () in
  List.iter
    (fun id -> Serve.Runner.submit t (job ~id (Serve.Protocol.Inline trivial_script)))
    [ "j1"; "j2"; "j3" ];
  check_int "queue holds the limit" 2 (Serve.Runner.queue_depth t);
  (match List.map event_name (events ()) with
   | [ "accepted"; "accepted"; "rejected" ] -> ()
   | names -> Alcotest.failf "unexpected events: %s" (String.concat "," names));
  check_string "the third submission bounced off the full queue"
    "queue full"
    (Option.value (str "reason" (List.nth (events ()) 2)) ~default:"?");
  Serve.Runner.drain t;
  let names = List.map event_name (events ()) in
  check_bool "drained is the final event" true
    (List.nth names (List.length names - 1) = "drained");
  let results = List.filter (fun e -> event_name e = "result") (events ()) in
  check_int "both accepted jobs ran" 2 (List.length results);
  let drained = List.nth (events ()) (List.length names - 1) in
  check_int "drained counts done" 2 (req "done" drained);
  check_int "drained counts failed" 0 (req "failed" drained);
  (* after a drain, new submissions bounce *)
  Serve.Runner.submit t (job ~id:"late" (Serve.Protocol.Inline trivial_script));
  let last = List.nth (events ()) (List.length (events ()) - 1) in
  check_string "late submission rejected" "draining"
    (Option.value (str "reason" last) ~default:"?")

(* The daemon-side lint gate: a script with warning-level findings runs
   normally under plain lint (diagnostics ride on the result event) and
   is failed before any attempt under deny_warnings, with the blocking
   report attached — the daemon twin of the CLI's exit-4 path. *)
let test_lint_gate () =
  let warny =
    "channel a : {0..1}\n\
     channel ghost : {0..1}\n\
     P = a!0 -> P\n\
     assert P :[deadlock free]\n"
  in
  let t, events, _ = make_runner () in
  Serve.Runner.submit t
    (job ~id:"lax" ~lint:true (Serve.Protocol.Inline warny));
  Serve.Runner.submit t
    (job ~id:"strict" ~deny_warnings:true (Serve.Protocol.Inline warny));
  Serve.Runner.drain t;
  let result =
    match List.filter (fun e -> event_name e = "result") (events ()) with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected 1 result event, got %d" (List.length rs)
  in
  check_string "the lint-only job still checked" "lax"
    (Option.value (str "id" result) ~default:"?");
  (match Obs.Json.member "diagnostics" result with
   | Some d ->
     check_string "non-blocking findings ride on the result"
       "diagnostics/1"
       (Option.value (str "schema" d) ~default:"?")
   | None -> Alcotest.fail "result event lacks diagnostics");
  let failed =
    match List.filter (fun e -> event_name e = "failed") (events ()) with
    | [ f ] -> f
    | fs -> Alcotest.failf "expected 1 failed event, got %d" (List.length fs)
  in
  check_string "deny-warnings blocks before any attempt"
    "blocking diagnostics"
    (Option.value (str "reason" failed) ~default:"?");
  (match Obs.Json.member "diagnostics" failed with
   | Some d ->
     check_bool "blocking report is attached and non-empty" true
       (match Obs.Json.member "summary" d with
        | Some s -> (
          match Obs.Json.member "warnings" s with
          | Some (Obs.Json.Num n) -> n > 0.
          | _ -> false)
        | None -> false)
   | None -> Alcotest.fail "failed event lacks diagnostics")

let test_load_failure () =
  let t, events, _ = make_runner () in
  Serve.Runner.submit t (job ~id:"bad" (Serve.Protocol.Inline "channel ???\n"));
  Serve.Runner.drain t;
  let failed = List.filter (fun e -> event_name e = "failed") (events ()) in
  check_int "one failed event" 1 (List.length failed);
  check_bool "failure carries a reason" true
    (match str "reason" (List.hd failed) with
     | Some r -> String.length r > 0
     | None -> false);
  let drained = List.hd (List.rev (events ())) in
  check_int "drained counts the failure" 1 (req "failed" drained)

(* The tentpole loop: a deadline far below one poll interval forces the
   first attempt inconclusive; each retry resumes from the previous
   attempt's checkpoint with a doubled budget until the check completes.
   The final verdict must be the uninterrupted one. *)
let test_retry_resumes_to_verdict () =
  (* Reductions stay off on both sides: the test is about the retry
     machinery, which needs a search slow enough for a 1e-5 s deadline
     to interrupt — the default pipeline collapses [big_script]'s
     accept-everything spec to almost nothing. *)
  let expected_pairs =
    match
      Cspm.Check.run
        ~config:Csp.Check_config.(default |> with_reductions [])
        (Cspm.Elaborate.load_string big_script)
    with
    | [ o ] -> (
      match o.Cspm.Check.result with
      | Csp.Refine.Holds s -> s.Csp.Refine.pairs
      | _ -> Alcotest.fail "the reference run should hold")
    | _ -> Alcotest.fail "one assertion expected"
  in
  let t, events, sleeps = make_runner () in
  Serve.Runner.submit t
    (job ~id:"slow" ~deadline_s:1e-5 ~max_retries:30 ~reductions:"none"
       (Serve.Protocol.Inline big_script));
  Serve.Runner.drain t;
  let retrying = List.filter (fun e -> event_name e = "retrying") (events ()) in
  check_bool "the tight deadline forced at least one retry" true
    (List.length retrying >= 1);
  List.iter
    (fun e ->
      check_bool "every retry resumed from a checkpoint" true
        (Obs.Json.member "resumed" e = Some (Obs.Json.Bool true)))
    retrying;
  let result =
    match List.filter (fun e -> event_name e = "result") (events ()) with
    | [ r ] -> r
    | _ -> Alcotest.fail "exactly one result event expected"
  in
  check_bool "the final result is not an interrupted partial" true
    (Obs.Json.member "interrupted" result = None);
  check_int "attempts = retries + 1" (List.length retrying + 1)
    (req "attempts" result);
  check_int "one backoff sleep per retry" (List.length retrying)
    (List.length (sleeps ()));
  List.iter
    (fun s -> check_bool "backoffs are positive and capped" true
        (s > 0. && s <= 0.05 *. 1.5))
    (sleeps ());
  let report =
    match Obs.Json.member "report" result with
    | Some r -> r
    | None -> Alcotest.fail "result carries no report"
  in
  check_string "embedded report keeps its schema" "cspm-check/1"
    (Option.value (str "schema" report) ~default:"?");
  match Obs.Json.member "assertions" report with
  | Some (Obs.Json.List [ a ]) ->
    check_string "resumed job reaches the uninterrupted verdict" "pass"
      (Option.value (str "verdict" a) ~default:"?");
    let stats =
      match Obs.Json.member "stats" a with
      | Some s -> s
      | None -> Alcotest.fail "pass entry carries no stats"
    in
    check_int "pair count identical to the uninterrupted run" expected_pairs
      (req "pairs" stats)
  | _ -> Alcotest.fail "report should carry exactly one assertion entry"

(* Retries exhausted: the deadline-inconclusive outcome stands and is
   reported as the job's (non-interrupted) result. *)
let test_retries_exhausted_reports_inconclusive () =
  let t, events, _ = make_runner () in
  Serve.Runner.submit t
    (job ~id:"hopeless" ~deadline_s:1e-5 ~max_retries:0 ~reductions:"none"
       (Serve.Protocol.Inline big_script));
  Serve.Runner.drain t;
  check_bool "no retry happened" true
    (not (List.exists (fun e -> event_name e = "retrying") (events ())));
  let result =
    match List.filter (fun e -> event_name e = "result") (events ()) with
    | [ r ] -> r
    | _ -> Alcotest.fail "exactly one result event expected"
  in
  check_int "a single attempt" 1 (req "attempts" result);
  match
    Option.bind (Obs.Json.member "report" result)
      (Obs.Json.member "assertions")
  with
  | Some (Obs.Json.List [ a ]) ->
    check_string "the outcome is inconclusive" "inconclusive"
      (Option.value (str "verdict" a) ~default:"?")
  | _ -> Alcotest.fail "report should carry exactly one assertion entry"

let test_health_event () =
  let t, events, _ = make_runner () in
  Serve.Runner.submit t (job ~id:"q1" (Serve.Protocol.Inline trivial_script));
  Serve.Runner.submit t (job ~id:"q2" (Serve.Protocol.Inline trivial_script));
  Serve.Runner.request t Serve.Protocol.Health;
  match List.filter (fun e -> event_name e = "health") (events ()) with
  | [ h ] ->
    check_int "health sees the queue" 2 (req "queued" h);
    check_int "nothing done yet" 0 (req "done" h);
    check_bool "not draining" true
      (Obs.Json.member "draining" h = Some (Obs.Json.Bool false))
  | _ -> Alcotest.fail "exactly one health event expected"

(* SIGTERM between submission and execution: the queue is failed without
   running a single search, and the drain still completes cleanly. *)
let test_cancel_fails_queue () =
  let events = ref [] in
  let cancel = Serve.Signals.create () in
  let cfg =
    {
      (Serve.Runner.default_config ~emit:(fun j -> events := j :: !events)) with
      Serve.Runner.sleep = ignore;
      cancel;
    }
  in
  let t = Serve.Runner.create cfg in
  Serve.Runner.submit t (job ~id:"q1" (Serve.Protocol.Inline trivial_script));
  Serve.Runner.submit t (job ~id:"q2" (Serve.Protocol.Inline trivial_script));
  Serve.Signals.trip cancel;
  Serve.Runner.drain t;
  let evs = List.rev !events in
  check_bool "no job was started" true
    (not (List.exists (fun e -> event_name e = "started") evs));
  let failed = List.filter (fun e -> event_name e = "failed") evs in
  check_int "both queued jobs failed" 2 (List.length failed);
  List.iter
    (fun e ->
      check_string "interrupt reason" "daemon interrupted"
        (Option.value (str "reason" e) ~default:"?"))
    failed;
  let drained = List.hd (List.rev evs) in
  check_string "still drains cleanly" "drained" (event_name drained);
  check_int "drained counts the casualties" 2 (req "failed" drained)

(* The full daemon loop against a scripted stdin: reader domain, request
   dispatch, implicit drain at end of input. *)
let test_serve_loop_end_to_end () =
  let requests =
    [
      Printf.sprintf
        {|{"schema":"cspm-checkd/1","op":"submit","id":"s1","script":%s}|}
        (Obs.Json.to_string (Obs.Json.Str trivial_script));
      {|{"op":"health"}|};
      {|{"op":"nonsense"}|};
    ]
  in
  let path = Filename.temp_file "serve_requests" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serve.Fsio.atomic_write ~path (String.concat "\n" requests ^ "\n");
      let events = ref [] in
      let cfg =
        {
          (Serve.Runner.default_config ~emit:(fun j -> events := j :: !events)) with
          Serve.Runner.sleep = (fun _ -> ());
        }
      in
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Serve.Runner.serve cfg ic);
      let evs = List.rev !events in
      let names = List.map event_name evs in
      List.iter
        (fun expected ->
          check_bool (expected ^ " event present") true
            (List.mem expected names))
        [ "accepted"; "health"; "rejected"; "result"; "drained" ];
      check_string "drained closes the stream" "drained"
        (List.nth names (List.length names - 1));
      let drained = List.hd (List.rev evs) in
      check_int "the submitted job completed" 1 (req "done" drained);
      check_int "nothing failed" 0 (req "failed" drained))

let suite =
  ( "serve",
    [
      Alcotest.test_case "atomic_write lands whole files only" `Quick
        test_atomic_write;
      Alcotest.test_case "a failed atomic write leaves the target" `Quick
        test_atomic_write_failure_leaves_target;
      Alcotest.test_case "atomic writes fsync the file and its directory"
        `Quick test_atomic_write_is_durable;
      Alcotest.test_case "cancellation token semantics" `Quick test_token;
      Alcotest.test_case "request parsing accepts/rejects correctly" `Quick
        test_request_parse;
      Alcotest.test_case "v2 requests: kinds, spec lists, v1 rejections"
        `Quick test_request_parse_v2;
      Alcotest.test_case "every event is schema-tagged" `Quick
        test_events_tagged;
      Alcotest.test_case "bounded queue: backpressure then clean drain"
        `Quick test_backpressure_and_drain;
      Alcotest.test_case "unloadable scripts fail with a reason" `Quick
        test_load_failure;
      Alcotest.test_case "lint gate blocks and attaches diagnostics" `Quick
        test_lint_gate;
      Alcotest.test_case "deadline retry resumes to the full verdict" `Quick
        test_retry_resumes_to_verdict;
      Alcotest.test_case "exhausted retries report inconclusive" `Quick
        test_retries_exhausted_reports_inconclusive;
      Alcotest.test_case "health reports queue and counters" `Quick
        test_health_event;
      Alcotest.test_case "cancellation fails the queue, still drains" `Quick
        test_cancel_fails_queue;
      Alcotest.test_case "serve loop end to end over scripted input" `Quick
        test_serve_loop_end_to_end;
    ] )
