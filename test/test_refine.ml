(* Tests for the refinement checker: verdicts, counterexamples, the
   failures model, and the preorder laws as properties. *)

open Csp
open Helpers

let check_bool = Alcotest.(check bool)
let defs = make_defs ()

let holds = Refine.holds

let traces_ref spec impl = Refine.traces_refines defs ~spec ~impl
let failures_ref spec impl = Refine.failures_refines defs ~spec ~impl

let test_basic_verdicts () =
  let a0 = send "a" 0 Proc.stop in
  let ab = Proc.ext (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  check_bool "P refines P" true (holds (traces_ref a0 a0));
  check_bool "choice refines to branch" true (holds (traces_ref ab a0));
  check_bool "branch does not refine to choice" false (holds (traces_ref a0 ab));
  check_bool "STOP refines everything" true (holds (traces_ref ab Proc.stop))

let test_counterexample_trace () =
  let spec = send "a" 0 Proc.stop in
  let impl = send "a" 0 (send "b" 1 Proc.stop) in
  match traces_ref spec impl with
  | Refine.Fails cex ->
    Alcotest.(check int) "minimal counterexample" 2 (List.length cex.Refine.trace);
    (match cex.Refine.violation with
     | Refine.Trace_violation l ->
       Alcotest.check label "offending event" (vis "b" 1) l
     | _ -> Alcotest.fail "expected a trace violation")
  | Refine.Holds _ | Refine.Inconclusive _ -> Alcotest.fail "expected failure"

let test_tau_does_not_affect_traces () =
  (* spec a!0; impl has internal noise before a!0 *)
  let spec = send "a" 0 Proc.stop in
  let impl = Proc.hide (send "b" 1 (send "a" 0 Proc.stop), Eventset.chan "b") in
  check_bool "hidden prefix ok in traces" true (holds (traces_ref spec impl))

let test_failures_distinguishes_choice () =
  (* classic: traces equal, failures differ *)
  let ext = Proc.ext (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  let int_ = Proc.intc (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  check_bool "traces: int refines ext" true (holds (traces_ref ext int_));
  check_bool "failures: int does not refine ext" false
    (holds (failures_ref ext int_));
  check_bool "failures: ext refines int" true (holds (failures_ref int_ ext));
  (match failures_ref ext int_ with
   | Refine.Fails { Refine.violation = Refine.Refusal_violation _; _ } -> ()
   | _ -> Alcotest.fail "expected a refusal violation")

let test_failures_deadlock_detection () =
  (* spec requires offering a.0 forever; impl may deadlock *)
  let defs = make_defs () in
  Defs.define_proc defs "AS" [] (send "a" 0 (Proc.call ("AS", [])));
  let spec = Proc.call ("AS", []) in
  let impl = Proc.intc (Proc.call ("AS", []), Proc.stop) in
  check_bool "traces ok" true (holds (Refine.traces_refines defs ~spec ~impl));
  check_bool "failures catch refusal" false
    (holds (Refine.failures_refines defs ~spec ~impl))

let test_deadlock_divergence_checks () =
  check_bool "prefix-loop deadlock free" true
    (let defs = make_defs () in
     Defs.define_proc defs "L" [] (send "a" 0 (Proc.call ("L", [])));
     holds (Refine.deadlock_free defs (Proc.call ("L", []))));
  check_bool "STOP deadlocks" false (holds (Refine.deadlock_free defs Proc.stop));
  check_bool "SKIP is deadlock free" true (holds (Refine.deadlock_free defs Proc.skip));
  let defs2 = make_defs () in
  Defs.define_proc defs2 "D" [] (send "a" 0 (Proc.call ("D", [])));
  let diverging = Proc.hide (Proc.call ("D", []), Eventset.chan "a") in
  check_bool "hidden loop diverges" false (holds (Refine.divergence_free defs2 diverging));
  check_bool "visible loop does not" true
    (holds (Refine.divergence_free defs2 (Proc.call ("D", []))))

let infinite_counter () =
  let defs = make_defs () in
  (* an infinite-state process: counter grows without bound *)
  Defs.define_proc defs "N" [ "n" ]
    (Proc.prefix_items
       ("done_", [], Proc.call ("N", [ Expr.(var "n" + int 1) ])));
  defs

let test_state_limit () =
  let defs = infinite_counter () in
  match
    Refine.check ~max_states:100 defs
      ~spec:(Proc.run (Eventset.chan "done_"))
      ~impl:(Proc.call ("N", [ Expr.int 0 ]))
  with
  | Refine.Inconclusive (stats, hint) ->
    check_bool "pair budget exhausted" true (hint.Refine.exhausted = Refine.Pairs);
    check_bool "explored some pairs" true (stats.Refine.pairs > 0);
    check_bool "frontier is non-empty" true (hint.Refine.frontier > 0)
  | r ->
    Alcotest.failf "expected Inconclusive, got %a" Refine.pp_result r

let test_deadline () =
  let defs = infinite_counter () in
  match
    Refine.check ~deadline:0.001 defs
      ~spec:(Proc.run (Eventset.chan "done_"))
      ~impl:(Proc.call ("N", [ Expr.int 0 ]))
  with
  | Refine.Inconclusive (stats, hint) ->
    check_bool "deadline exhausted" true (hint.Refine.exhausted = Refine.Deadline);
    check_bool "non-zero progress" true
      (stats.Refine.pairs > 0 || stats.Refine.spec_nodes > 0)
  | r -> Alcotest.failf "expected Inconclusive, got %a" Refine.pp_result r

let test_deadline_does_not_mask_verdicts () =
  (* A tiny system finishes well inside any deadline; generous budgets
     must not change verdicts. *)
  let a0 = send "a" 0 Proc.stop in
  check_bool "holds under deadline" true
    (holds (Refine.check ~deadline:60.0 defs ~spec:a0 ~impl:a0))

(* Preorder laws, checked on random processes. *)
let reflexive =
  QCheck.Test.make ~count:100 ~name:"trace refinement is reflexive" arb_proc
    (fun p -> holds (Refine.check ~max_states:50_000 defs ~spec:p ~impl:p))

let transitive =
  QCheck.Test.make ~count:60 ~name:"trace refinement is transitive"
    (QCheck.triple arb_proc arb_proc arb_proc) (fun (p, q, r) ->
      let check a b = holds (Refine.check ~max_states:50_000 defs ~spec:a ~impl:b) in
      QCheck.assume (check p q && check q r);
      check p r)

(* Agreement with the denotational definition: spec refines impl iff
   traces(impl) is a subset of traces(spec), up to the explored depth. *)
let agrees_with_trace_subset =
  QCheck.Test.make ~count:100 ~name:"refinement matches trace inclusion"
    (QCheck.pair arb_proc arb_proc) (fun (spec, impl) ->
      let verdict =
        holds (Refine.check ~max_states:50_000 defs ~spec ~impl)
      in
      let ts_spec = Traces.of_lts ~depth:4 (Lts.compile defs spec) in
      let ts_impl = Traces.of_lts ~depth:4 (Lts.compile defs impl) in
      let subset = Traces.subset ts_impl ts_spec in
      (* the checker explores exhaustively, bounded depth only restricts
         the denotational side, so verdict=true must imply subset *)
      if verdict then subset else true)

(* A failing check's counterexample really is a trace of the
   implementation and not of the specification. *)
let counterexample_is_genuine =
  QCheck.Test.make ~count:100 ~name:"counterexamples are genuine"
    (QCheck.pair arb_proc arb_proc) (fun (spec, impl) ->
      match Refine.check ~max_states:50_000 defs ~spec ~impl with
      | Refine.Holds _ | Refine.Inconclusive _ -> true
      | Refine.Fails cex ->
        let depth = List.length cex.Refine.trace in
        let ts_impl = Traces.of_lts ~depth (Lts.compile defs impl) in
        let ts_spec = Traces.of_lts ~depth (Lts.compile defs spec) in
        let mem set tr = List.exists (fun t -> List.equal Event.equal_label t tr) set in
        mem ts_impl cex.Refine.trace && not (mem ts_spec cex.Refine.trace))

let suite =
  ( "refine",
    [
      Alcotest.test_case "basic verdicts" `Quick test_basic_verdicts;
      Alcotest.test_case "minimal counterexamples" `Quick test_counterexample_trace;
      Alcotest.test_case "tau transparency" `Quick test_tau_does_not_affect_traces;
      Alcotest.test_case "failures vs traces" `Quick test_failures_distinguishes_choice;
      Alcotest.test_case "failures find refusals" `Quick test_failures_deadlock_detection;
      Alcotest.test_case "deadlock and divergence" `Quick test_deadlock_divergence_checks;
      Alcotest.test_case "state limits" `Quick test_state_limit;
      Alcotest.test_case "deadline budget" `Quick test_deadline;
      Alcotest.test_case "deadline preserves verdicts" `Quick
        test_deadline_does_not_mask_verdicts;
      QCheck_alcotest.to_alcotest reflexive;
      QCheck_alcotest.to_alcotest transitive;
      QCheck_alcotest.to_alcotest agrees_with_trace_subset;
      QCheck_alcotest.to_alcotest counterexample_is_genuine;
    ] )
