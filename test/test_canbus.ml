(* Tests for the CAN substrate: frames, the discrete-event scheduler,
   arbitration, and node plumbing. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let test_frame_validation () =
  let f = Canbus.Frame.make ~id:0x123 [ 1; 2; 3 ] in
  check_int "dlc" 3 f.Canbus.Frame.dlc;
  check_int "padding read" 0 (Canbus.Frame.data_byte f 5);
  (try
     ignore (Canbus.Frame.make ~id:0x800 []);
     Alcotest.fail "expected id range error"
   with Canbus.Frame.Invalid_frame _ -> ());
  ignore (Canbus.Frame.make ~extended:true ~id:0x800 []);
  (try
     ignore (Canbus.Frame.make ~id:1 [ 300 ]);
     Alcotest.fail "expected byte range error"
   with Canbus.Frame.Invalid_frame _ -> ());
  try
    ignore (Canbus.Frame.make ~id:1 [ 0; 0; 0; 0; 0; 0; 0; 0; 0 ]);
    Alcotest.fail "expected dlc error"
  with Canbus.Frame.Invalid_frame _ -> ()

let test_frame_priority () =
  let hi = Canbus.Frame.make ~id:0x100 [] in
  let lo = Canbus.Frame.make ~id:0x200 [] in
  check_bool "lower id wins" true (Canbus.Frame.compare_priority hi lo < 0)

let test_frame_update () =
  let f = Canbus.Frame.make ~id:1 [ 0xAA ] in
  let f2 = Canbus.Frame.set_data_byte f 2 0x55 in
  check_int "dlc extended" 3 f2.Canbus.Frame.dlc;
  check_int "byte set" 0x55 (Canbus.Frame.data_byte f2 2);
  check_int "original untouched" 1 f.Canbus.Frame.dlc

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_scheduler_ordering () =
  let s = Canbus.Scheduler.create () in
  let log = ref [] in
  ignore (Canbus.Scheduler.at s 30 (fun () -> log := 3 :: !log));
  ignore (Canbus.Scheduler.at s 10 (fun () -> log := 1 :: !log));
  ignore (Canbus.Scheduler.at s 20 (fun () -> log := 2 :: !log));
  (* same time: insertion order *)
  ignore (Canbus.Scheduler.at s 20 (fun () -> log := 4 :: !log));
  let fired = Canbus.Scheduler.run s in
  check_int "all fired" 4 fired;
  Alcotest.(check (list int)) "time then insertion order" [ 1; 2; 4; 3 ]
    (List.rev !log);
  check_int "clock advanced" 30 (Canbus.Scheduler.now s)

let test_scheduler_cancel () =
  let s = Canbus.Scheduler.create () in
  let hit = ref false in
  let h = Canbus.Scheduler.after s 5 (fun () -> hit := true) in
  Canbus.Scheduler.cancel s h;
  check_int "pending reflects cancellation" 0 (Canbus.Scheduler.pending s);
  ignore (Canbus.Scheduler.run s);
  check_bool "cancelled never fires" false !hit

let test_scheduler_past_rejected () =
  let s = Canbus.Scheduler.create () in
  ignore (Canbus.Scheduler.at s 10 (fun () -> ()));
  ignore (Canbus.Scheduler.run s);
  try
    ignore (Canbus.Scheduler.at s 5 (fun () -> ()));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_scheduler_until () =
  let s = Canbus.Scheduler.create () in
  let count = ref 0 in
  ignore (Canbus.Scheduler.at s 10 (fun () -> incr count));
  ignore (Canbus.Scheduler.at s 100 (fun () -> incr count));
  ignore (Canbus.Scheduler.run ~until:50 s);
  check_int "stopped at the bound" 1 !count

let test_scheduler_until_boundary () =
  (* the bound is inclusive: an event exactly at [until] fires, one a
     microsecond later does not *)
  let s = Canbus.Scheduler.create () in
  let fired = ref [] in
  ignore (Canbus.Scheduler.at s 50 (fun () -> fired := "at" :: !fired));
  ignore (Canbus.Scheduler.at s 51 (fun () -> fired := "past" :: !fired));
  check_int "one event fired" 1 (Canbus.Scheduler.run ~until:50 s);
  Alcotest.(check (list string)) "only the boundary event" [ "at" ] !fired;
  check_int "clock at the bound" 50 (Canbus.Scheduler.now s);
  check_int "later event still pending" 1 (Canbus.Scheduler.pending s);
  (* resuming without a bound drains the rest *)
  check_int "remaining event fires" 1 (Canbus.Scheduler.run s);
  Alcotest.(check (list string)) "both in order" [ "past"; "at" ] !fired

let test_scheduler_cancel_after_fire () =
  let s = Canbus.Scheduler.create () in
  let count = ref 0 in
  let h = Canbus.Scheduler.at s 10 (fun () -> incr count) in
  ignore (Canbus.Scheduler.run s);
  check_int "fired once" 1 !count;
  (* cancelling a handle that already fired must be a no-op and must not
     disturb later events *)
  Canbus.Scheduler.cancel s h;
  let h2 = Canbus.Scheduler.at s 20 (fun () -> incr count) in
  check_int "new event unaffected" 1 (Canbus.Scheduler.pending s);
  ignore (Canbus.Scheduler.run s);
  check_int "later event still fires" 2 !count;
  ignore h2

let test_scheduler_cancel_twice () =
  let s = Canbus.Scheduler.create () in
  let hit = ref false in
  let h = Canbus.Scheduler.after s 5 (fun () -> hit := true) in
  Canbus.Scheduler.cancel s h;
  Canbus.Scheduler.cancel s h;
  check_int "still just cancelled" 0 (Canbus.Scheduler.pending s);
  (* a second event must survive the double cancellation *)
  ignore (Canbus.Scheduler.after s 6 (fun () -> ()));
  check_int "peer event pending" 1 (Canbus.Scheduler.pending s);
  check_int "only the live event fires" 1 (Canbus.Scheduler.run s);
  check_bool "cancelled never fires" false !hit

(* ------------------------------------------------------------------ *)
(* Bus arbitration                                                     *)
(* ------------------------------------------------------------------ *)

let test_arbitration_priority () =
  let s = Canbus.Scheduler.create () in
  let bus = Canbus.Bus.create s in
  let n1 = Canbus.Bus.attach bus ~name:"n1" ~rx:(fun _ -> ()) in
  let n2 = Canbus.Bus.attach bus ~name:"n2" ~rx:(fun _ -> ()) in
  (* queue both at the same instant; the lower id must win arbitration *)
  Canbus.Bus.transmit bus n1 (Canbus.Frame.make ~id:0x300 [ 1 ]);
  Canbus.Bus.transmit bus n2 (Canbus.Frame.make ~id:0x100 [ 2 ]);
  ignore (Canbus.Scheduler.run s);
  let tx = Canbus.Trace_log.transmissions (Canbus.Bus.log bus) in
  check_int "both sent" 2 (List.length tx);
  (match tx with
   | [ first; second ] ->
     check_int "high priority first" 0x100
       first.Canbus.Trace_log.frame.Canbus.Frame.id;
     check_int "low priority second" 0x300
       second.Canbus.Trace_log.frame.Canbus.Frame.id;
     check_bool "bus occupancy serializes" true
       (second.Canbus.Trace_log.time > first.Canbus.Trace_log.time)
   | _ -> Alcotest.fail "two transmissions")

let test_delivery_excludes_sender () =
  let s = Canbus.Scheduler.create () in
  let bus = Canbus.Bus.create s in
  let got1 = ref 0 and got2 = ref 0 in
  let n1 = Canbus.Bus.attach bus ~name:"n1" ~rx:(fun _ -> incr got1) in
  let _n2 = Canbus.Bus.attach bus ~name:"n2" ~rx:(fun _ -> incr got2) in
  Canbus.Bus.transmit bus n1 (Canbus.Frame.make ~id:1 []);
  ignore (Canbus.Scheduler.run s);
  check_int "sender does not hear itself" 0 !got1;
  check_int "peer hears it" 1 !got2

let test_node_timers () =
  let s = Canbus.Scheduler.create () in
  let bus = Canbus.Bus.create s in
  let node = Canbus.Node.create bus ~name:"n" in
  let fired = ref [] in
  Canbus.Node.set_timer node ~name:"t" ~us:100 (fun () -> fired := "first" :: !fired);
  (* re-arming replaces the pending timer *)
  Canbus.Node.set_timer node ~name:"t" ~us:200 (fun () -> fired := "second" :: !fired);
  ignore (Canbus.Scheduler.run s);
  Alcotest.(check (list string)) "rearmed timer fires once" [ "second" ] !fired;
  Canbus.Node.set_timer node ~name:"t" ~us:50 (fun () -> fired := "third" :: !fired);
  Canbus.Node.cancel_timer node ~name:"t";
  ignore (Canbus.Scheduler.run s);
  Alcotest.(check (list string)) "cancelled timer silent" [ "second" ] !fired

let test_frame_duration_scales_with_dlc () =
  let s = Canbus.Scheduler.create () in
  let bus = Canbus.Bus.create ~bitrate:500_000 s in
  let n = Canbus.Bus.attach bus ~name:"n" ~rx:(fun _ -> ()) in
  Canbus.Bus.transmit bus n (Canbus.Frame.make ~id:1 [ 0; 0; 0; 0; 0; 0; 0; 0 ]);
  ignore (Canbus.Scheduler.run s);
  (* 44 + 64 bits at 500 kbit/s = 216 us *)
  match Canbus.Trace_log.transmissions (Canbus.Bus.log bus) with
  | [ e ] -> check_int "wire time" 216 e.Canbus.Trace_log.time
  | _ -> Alcotest.fail "one transmission"

let suite =
  ( "canbus",
    [
      Alcotest.test_case "frame validation" `Quick test_frame_validation;
      Alcotest.test_case "frame priority order" `Quick test_frame_priority;
      Alcotest.test_case "functional frame update" `Quick test_frame_update;
      Alcotest.test_case "scheduler ordering" `Quick test_scheduler_ordering;
      Alcotest.test_case "scheduler cancellation" `Quick test_scheduler_cancel;
      Alcotest.test_case "past events rejected" `Quick test_scheduler_past_rejected;
      Alcotest.test_case "run until bound" `Quick test_scheduler_until;
      Alcotest.test_case "until bound is inclusive" `Quick
        test_scheduler_until_boundary;
      Alcotest.test_case "cancel after fire is a no-op" `Quick
        test_scheduler_cancel_after_fire;
      Alcotest.test_case "double cancel is safe" `Quick
        test_scheduler_cancel_twice;
      Alcotest.test_case "arbitration by priority" `Quick test_arbitration_priority;
      Alcotest.test_case "delivery excludes the sender" `Quick
        test_delivery_excludes_sender;
      Alcotest.test_case "node timers" `Quick test_node_timers;
      Alcotest.test_case "frame duration" `Quick test_frame_duration_scales_with_dlc;
    ] )
