(* Algebraic laws of CSP, checked as trace equivalences on random
   processes — the textbook laws (Hoare/Roscoe) the engine must satisfy. *)

open Csp
open Helpers

let defs = make_defs ()

let traces_of p = Traces.of_lts ~depth:4 (Lts.compile ~max_states:50_000 defs p)

let trace_equal p q =
  let tp = traces_of p and tq = traces_of q in
  Traces.subset tp tq && Traces.subset tq tp

let law ?(count = 80) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let pair2 = QCheck.pair arb_proc arb_proc
let triple3 = QCheck.triple arb_proc arb_proc arb_proc

let suite =
  ( "laws",
    [
      law "P [] P = P (idempotence)" arb_proc (fun p ->
          trace_equal (Proc.ext (p, p)) p);
      law "P [] Q = Q [] P (commutativity)" pair2 (fun (p, q) ->
          trace_equal (Proc.ext (p, q)) (Proc.ext (q, p)));
      law "(P [] Q) [] R = P [] (Q [] R) (associativity)" triple3
        (fun (p, q, r) ->
          trace_equal
            (Proc.ext (Proc.ext (p, q), r))
            (Proc.ext (p, Proc.ext (q, r))));
      law "P [] STOP = P (unit)" arb_proc (fun p ->
          trace_equal (Proc.ext (p, Proc.stop)) p);
      law "P |~| Q =T P [] Q (choice agrees in traces)" pair2 (fun (p, q) ->
          trace_equal (Proc.intc (p, q)) (Proc.ext (p, q)));
      law "P ||| Q = Q ||| P (commutativity)" pair2 (fun (p, q) ->
          trace_equal (Proc.inter (p, q)) (Proc.inter (q, p)));
      law "P ||| SKIP = P" arb_proc (fun p ->
          trace_equal (Proc.inter (p, Proc.skip)) p);
      law "P [|A|] Q = Q [|A|] P (commutativity)"
        (QCheck.triple arb_proc arb_proc (QCheck.oneofl [ "a"; "b"; "c" ]))
        (fun (p, q, c) ->
          let s = Eventset.chan c in
          trace_equal (Proc.par (p, s, q)) (Proc.par (q, s, p)));
      law "P [|{}|] Q = P ||| Q (empty interface)" pair2 (fun (p, q) ->
          trace_equal (Proc.par (p, Eventset.empty, q)) (Proc.inter (p, q)));
      law "SKIP; P = P (left unit of sequencing)" arb_proc (fun p ->
          trace_equal (Proc.seq (Proc.skip, p)) p);
      law "STOP; P = STOP (left zero of sequencing)" arb_proc (fun p ->
          trace_equal (Proc.seq (Proc.stop, p)) Proc.stop);
      law "(P; Q); R = P; (Q; R) (associativity of sequencing)" triple3
        (fun (p, q, r) ->
          trace_equal
            (Proc.seq (Proc.seq (p, q), r))
            (Proc.seq (p, Proc.seq (q, r))));
      law "P \\ {} = P (hiding nothing)" arb_proc (fun p ->
          trace_equal (Proc.hide (p, Eventset.empty)) p);
      law "(P \\ A) \\ A = P \\ A (hiding idempotent)"
        (QCheck.pair arb_proc (QCheck.oneofl [ "a"; "b" ]))
        (fun (p, c) ->
          let s = Eventset.chan c in
          trace_equal (Proc.hide (Proc.hide (p, s), s)) (Proc.hide (p, s)));
      law "(P \\ A) \\ B = (P \\ B) \\ A (hiding commutes)" arb_proc
        (fun p ->
          let a = Eventset.chan "a" and b = Eventset.chan "b" in
          trace_equal
            (Proc.hide (Proc.hide (p, a), b))
            (Proc.hide (Proc.hide (p, b), a)));
      law "distribution: (P [] Q) \\ A refines P \\ A in traces" pair2
        (fun (p, q) ->
          let a = Eventset.chan "a" in
          let lhs = Proc.hide (Proc.ext (p, q), a) in
          let rhs = Proc.hide (p, a) in
          Traces.subset (traces_of rhs) (traces_of lhs));
      law "renaming then inverse renaming over fresh channel" arb_proc
        (fun p ->
          (* a -> done_' is not invertible in general (done_ is nullary),
             so use the b channel which shares a's type *)
          trace_equal
            (Proc.rename (Proc.rename (p, [ "a", "b" ]), [ "b", "a" ]))
            (Proc.rename (p, [ "b", "a" ])));
      law "guard true is identity" arb_proc (fun p ->
          trace_equal (Proc.guard (Expr.bool true, p)) p);
      law "guard false is STOP" arb_proc (fun p ->
          trace_equal (Proc.guard (Expr.bool false, p)) Proc.stop);
      law "monotonicity of [] w.r.t. trace refinement" triple3
        (fun (p, q, r) ->
          (* if traces(q) ⊆ traces(p) then traces(q [] r) ⊆ traces(p [] r) *)
          let tp = traces_of p and tq = traces_of q in
          QCheck.assume (Traces.subset tq tp);
          Traces.subset
            (traces_of (Proc.ext (q, r)))
            (traces_of (Proc.ext (p, r))));
    ] )
