(* Shared fixtures for the CSP engine tests: a small standard environment,
   event/process builders, and a QCheck generator of random well-formed
   ground processes used by the differential and round-trip properties. *)

open Csp

(* Channels: a, b, c carry one small int; tick-free [done_] is a bare
   event channel. *)
let make_defs () =
  let defs = Defs.create () in
  Defs.declare_channel defs "a" [ Ty.Int_range (0, 2) ];
  Defs.declare_channel defs "b" [ Ty.Int_range (0, 2) ];
  Defs.declare_channel defs "c" [ Ty.Int_range (0, 1) ];
  Defs.declare_channel defs "done_" [];
  defs

(* Substring containment, for asserting on error-message contents. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let ev chan n = Event.event chan [ Value.Int n ]
let ev0 chan = Event.event chan []

let send chan n p = Proc.send chan [ Value.Int n ] p

(* Labels helper *)
let vis chan n = Event.Vis (ev chan n)

let label = Alcotest.testable Event.pp_label Event.equal_label

let proc_testable = Alcotest.testable Proc.pp Proc.equal

let sorted_initials defs p = Semantics.initials defs p

(* ------------------------------------------------------------------ *)
(* Random ground processes over the standard environment.              *)
(* ------------------------------------------------------------------ *)

let gen_proc : Proc.t QCheck.Gen.t =
  let open QCheck.Gen in
  let chan_gen = oneofl [ "a", 2; "b", 2; "c", 1 ] in
  let leaf =
    oneof
      [
        return Proc.stop;
        return Proc.skip;
        map
          (fun (chan, hi) -> send chan hi Proc.stop)
          chan_gen;
      ]
  in
  let set_gen =
    oneof
      [
        map (fun c -> Eventset.chan c) (oneofl [ "a"; "b"; "c" ]);
        return (Eventset.chans [ "a"; "b" ]);
        return Eventset.empty;
        map (fun n -> Eventset.events [ ev "a" n ]) (int_range 0 2);
      ]
  in
  sized_size (int_range 0 8) @@ fix (fun self n ->
      if n <= 0 then leaf
      else
        frequency
          [
            1, leaf;
            3,
            map2
              (fun (chan, hi) p ->
                let v = hi in
                send chan v p)
              chan_gen (self (n - 1));
            2,
            map
              (fun p -> Proc.prefix_items ("a", [ Proc.In ("x", None) ], p))
              (self (n - 1));
            2, map2 (fun p q -> Proc.ext (p, q)) (self (n / 2)) (self (n / 2));
            2, map2 (fun p q -> Proc.intc (p, q)) (self (n / 2)) (self (n / 2));
            2, map2 (fun p q -> Proc.seq (p, q)) (self (n / 2)) (self (n / 2));
            2,
            map3
              (fun p s q -> Proc.par (p, s, q))
              (self (n / 2)) set_gen (self (n / 2));
            1, map2 (fun p q -> Proc.inter (p, q)) (self (n / 2)) (self (n / 2));
            1, map2 (fun p s -> Proc.hide (p, s)) (self (n - 1)) set_gen;
          ])

(* Sizes are capped at 8 in [gen_proc]: trace-set computations are
   exponential in term size by nature. *)
let arb_proc = QCheck.make ~print:Proc.to_string gen_proc
