(* Tests for the security substrate: symbolic crypto deduction, attack
   trees (with the paper's SP-graph semantics as a property), intruders,
   and property builders. *)

open Csp
module C = Security.Crypto
module AT = Security.Attack_tree

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Crypto deduction                                                    *)
(* ------------------------------------------------------------------ *)

let k = C.key "k"
let k2 = C.key "k2"
let n0 = C.nonce 0

let test_analyze () =
  let knows vs v = List.exists (Value.equal v) (C.analyze vs) in
  check_bool "pairs open" true (knows [ C.pair n0 k ] n0);
  check_bool "senc opens with the key" true (knows [ C.senc k n0; k ] n0);
  check_bool "senc stays closed without it" false (knows [ C.senc k n0 ] n0);
  check_bool "mac reveals nothing" false (knows [ C.mac k n0 ] n0);
  check_bool "signature reveals payload" true (knows [ C.sign k n0 ] n0);
  check_bool "aenc opens with the private key" true
    (knows [ C.aenc (C.pk (Value.sym "a")) n0; C.sk (Value.sym "a") ] n0);
  check_bool "aenc stays closed without it" false
    (knows [ C.aenc (C.pk (Value.sym "a")) n0 ] n0);
  (* layered: senc inside a pair, key arrives separately *)
  check_bool "fixpoint reaches nested terms" true
    (knows [ C.pair (C.senc k (C.pair n0 k2)) k ] k2)

let test_synthesizable () =
  let can kn v = C.derivable ~knowledge:kn v in
  check_bool "public atoms" true (can [] (Value.sym "reqSw"));
  check_bool "keys are secret" false (can [] k);
  check_bool "nonces are secret" false (can [] n0);
  check_bool "mac needs the key" false (can [] (C.mac k (Value.Int 1)));
  check_bool "mac with the key" true (can [ k ] (C.mac k (Value.Int 1)));
  check_bool "aenc needs only the public part" true
    (can [] (C.aenc (C.pk (Value.sym "b")) (Value.sym "hello")));
  check_bool "learned terms replay" true (can [ C.mac k n0 ] (C.mac k n0));
  check_bool "secret atoms listed" true
    (List.exists (Value.equal k) (C.secret_atoms (C.mac k (C.pair n0 (Value.Int 1)))))

(* Monotonicity: more knowledge never derives less. *)
let monotone =
  QCheck.Test.make ~count:100 ~name:"deduction is monotone"
    QCheck.(pair (int_range 0 2) (int_range 0 2))
    (fun (i, j) ->
      let univ = [ k; k2; n0; C.mac k n0; C.senc k (C.nonce 1) ] in
      let base = List.filteri (fun idx _ -> idx <> i) univ in
      let bigger = univ in
      List.for_all
        (fun t ->
          (not (C.derivable ~knowledge:base t))
          || C.derivable ~knowledge:bigger t)
        [ List.nth univ j; C.mac k (C.nonce 1); C.nonce 1 ])

(* ------------------------------------------------------------------ *)
(* Attack trees                                                        *)
(* ------------------------------------------------------------------ *)

let act name = AT.action name []

let test_sequences_structure () =
  let t = AT.Seq [ act "a"; AT.Or [ act "b"; act "c" ] ] in
  check_int "or splits" 2 (List.length (AT.sequences t));
  let p = AT.Par [ act "a"; act "b" ] in
  check_int "par interleaves" 2 (List.length (AT.sequences p));
  check_int "leaves" 2 (AT.size p);
  Alcotest.(check (list string)) "channels" [ "a"; "b" ] (AT.channels p)

(* The paper's equivalence: maximal (tick-terminated) traces of the CSP
   translation are exactly the SP-graph sequences. *)
let arb_tree =
  let open QCheck.Gen in
  let leaf = map (fun c -> act c) (oneofl [ "a"; "b"; "c"; "d" ]) in
  let tree =
    sized_size (int_range 0 6) @@ fix (fun self n ->
        if n <= 0 then leaf
        else
          frequency
            [
              2, leaf;
              2, map (fun l -> AT.Seq l) (list_size (int_range 1 3) (self (n / 2)));
              1, map (fun l -> AT.Par l) (list_size (int_range 1 2) (self (n / 2)));
              2, map (fun l -> AT.Or l) (list_size (int_range 1 3) (self (n / 2)));
            ])
  in
  QCheck.make ~print:(Format.asprintf "%a" AT.pp) tree

let translation_matches_semantics =
  QCheck.Test.make ~count:150
    ~name:"attack-tree CSP translation matches the SP-graph semantics"
    arb_tree (fun tree ->
      let defs = Defs.create () in
      List.iter (fun c -> Defs.declare_channel defs c []) (AT.channels tree);
      let proc = AT.to_proc tree in
      let lts = Lts.compile defs proc in
      let depth = AT.size tree + 1 in
      let traces = Traces.of_lts ~depth lts in
      let complete =
        List.filter_map
          (fun tr ->
            match List.rev tr with
            | Event.Tick :: rev_body ->
              Some
                (List.rev_map
                   (function
                     | Event.Vis e -> e
                     | _ -> Event.event "impossible" [])
                   rev_body)
            | _ -> None)
          traces
      in
      let expected = AT.sequences tree in
      let sort = List.sort (List.compare Event.compare) in
      sort complete = sort expected)

(* ------------------------------------------------------------------ *)
(* Intruders                                                           *)
(* ------------------------------------------------------------------ *)

let intruder_defs () =
  let defs = Defs.create () in
  Defs.declare_datatype defs "Agent" [ "a", []; "b", [] ];
  Defs.declare_datatype defs "Pkt"
    [ "hello", []; "secret", [ Ty.Named "MacT" ] ];
  Defs.declare_datatype defs "MacT"
    [ "mac", [ Ty.Named "KeyT"; Ty.Int_range (0, 0) ] ];
  Defs.declare_datatype defs "KeyT" [ "key", [ Ty.Named "KN" ] ];
  Defs.declare_datatype defs "KN" [ "kA", []; "kB", [] ];
  Defs.declare_channel defs "snd"
    [ Ty.Named "Agent"; Ty.Named "Agent"; Ty.Named "Pkt" ];
  Defs.declare_channel defs "rcv" [ Ty.Named "Agent"; Ty.Named "Pkt" ];
  defs

let config knowledge =
  { Security.Intruder.send_chan = "snd"; recv_chan = "rcv"; knowledge }

let test_packet_universe () =
  let defs = intruder_defs () in
  (* hello + secret.mac.key.{kA,kB}.0 = 3 *)
  check_int "universe" 3
    (List.length (Security.Intruder.packet_universe defs (config [])))

let test_forgeable () =
  let defs = intruder_defs () in
  let forgeable_with kn =
    List.length (Security.Intruder.forgeable defs (config kn))
  in
  check_int "only public packets without keys" 1 (forgeable_with []);
  check_int "a key unlocks its mac" 2 (forgeable_with [ C.key "kA" ])

let test_replay_intruder_behaviour () =
  let defs = intruder_defs () in
  let cfg = config [] in
  let name = Security.Intruder.define defs cfg in
  let mac_pkt =
    Value.Ctor ("secret", [ C.mac (C.key "kA") (Value.Int 0) ])
  in
  (* an agent that sends the mac'd packet once and then stays receptive
     to deliveries (like a real node's receive loop) *)
  let sender =
    Proc.inter
      ( Proc.send "snd" [ Value.sym "a"; Value.sym "b"; mac_pkt ] Proc.stop,
        Proc.run (Eventset.chan "rcv") )
  in
  let system =
    Security.Intruder.compose sender ~medium:(Proc.call (name, [])) cfg
  in
  let lts = Lts.compile defs system in
  let traces = Traces.of_lts ~depth:3 lts in
  let deliver_b = Event.Vis (Event.event "rcv" [ Value.sym "b"; mac_pkt ]) in
  let deliver_a = Event.Vis (Event.event "rcv" [ Value.sym "a"; mac_pkt ]) in
  let snd_ev =
    Event.Vis (Event.event "snd" [ Value.sym "a"; Value.sym "b"; mac_pkt ])
  in
  let mem tr = List.exists (fun t -> List.equal Event.equal_label t tr) traces in
  check_bool "no delivery before hearing" false (mem [ deliver_b ]);
  check_bool "replay after hearing" true (mem [ snd_ev; deliver_b ]);
  check_bool "redirect to another agent" true (mem [ snd_ev; deliver_a ]);
  check_bool "replay twice" true (mem [ snd_ev; deliver_b; deliver_b ])

let test_spy_synthesizes () =
  (* the spy learns a key from an opened packet and forges a new mac;
     model: packets are macs directly, agent a sends mac(kA) content
     under... keep it simple: secret.mac carries the key inside a
     transparent constructor so hearing it teaches the key *)
  let defs = Defs.create () in
  Defs.declare_datatype defs "Agent" [ "a", []; "b", [] ];
  Defs.declare_datatype defs "KeyT" [ "key", [ Ty.Named "KN" ] ];
  Defs.declare_datatype defs "KN" [ "kA", [] ] ;
  Defs.declare_datatype defs "Pkt"
    [ "leak", [ Ty.Named "KeyT" ]; "auth", [ Ty.Named "MacT" ] ];
  Defs.declare_datatype defs "MacT"
    [ "mac", [ Ty.Named "KeyT"; Ty.Int_range (0, 0) ] ];
  Defs.declare_channel defs "snd"
    [ Ty.Named "Agent"; Ty.Named "Agent"; Ty.Named "Pkt" ];
  Defs.declare_channel defs "rcv" [ Ty.Named "Agent"; Ty.Named "Pkt" ];
  let cfg = { Security.Intruder.send_chan = "snd"; recv_chan = "rcv"; knowledge = [] } in
  check_int "one learnable secret" 1
    (List.length (Security.Intruder.learnable_secrets defs cfg));
  let spy = Security.Intruder.define_spy defs cfg in
  let leak_pkt = Value.Ctor ("leak", [ C.key "kA" ]) in
  let forged = Value.Ctor ("auth", [ C.mac (C.key "kA") (Value.Int 0) ]) in
  let sender =
    Proc.inter
      ( Proc.send "snd" [ Value.sym "a"; Value.sym "b"; leak_pkt ] Proc.stop,
        Proc.run (Eventset.chan "rcv") )
  in
  let system =
    Security.Intruder.compose sender ~medium:(Proc.call (spy, [])) cfg
  in
  let lts = Lts.compile defs system in
  let traces = Traces.of_lts ~depth:3 lts in
  let mem tr = List.exists (fun t -> List.equal Event.equal_label t tr) traces in
  let snd_leak =
    Event.Vis (Event.event "snd" [ Value.sym "a"; Value.sym "b"; leak_pkt ])
  in
  let inject_forged = Event.Vis (Event.event "rcv" [ Value.sym "b"; forged ]) in
  check_bool "cannot forge before the leak" false (mem [ inject_forged ]);
  check_bool "forges after learning the key" true (mem [ snd_leak; inject_forged ])

let test_reliable_medium () =
  let defs = intruder_defs () in
  let cfg = config [] in
  let name = Security.Intruder.reliable_medium defs cfg in
  let sender =
    Proc.inter
      ( Proc.send "snd" [ Value.sym "a"; Value.sym "b"; Value.sym "hello" ]
          Proc.stop,
        Proc.run (Eventset.chan "rcv") )
  in
  let system =
    Security.Intruder.compose sender ~medium:(Proc.call (name, [])) cfg
  in
  let lts = Lts.compile defs system in
  let traces = Traces.of_lts ~depth:2 lts in
  let deliver = Event.Vis (Event.event "rcv" [ Value.sym "b"; Value.sym "hello" ]) in
  let snd_ev =
    Event.Vis (Event.event "snd" [ Value.sym "a"; Value.sym "b"; Value.sym "hello" ])
  in
  check_bool "faithful delivery" true
    (List.exists (fun t -> List.equal Event.equal_label t [ snd_ev; deliver ]) traces);
  (* no redirection *)
  let wrong = Event.Vis (Event.event "rcv" [ Value.sym "a"; Value.sym "hello" ]) in
  check_bool "no redirection" false
    (List.exists (fun t -> List.equal Event.equal_label t [ snd_ev; wrong ]) traces)

(* ------------------------------------------------------------------ *)
(* Property builders                                                   *)
(* ------------------------------------------------------------------ *)

let test_request_response () =
  let defs = Defs.create () in
  Defs.declare_channel defs "req" [ Ty.Int_range (0, 1) ];
  Defs.declare_channel defs "rsp" [ Ty.Int_range (0, 1) ];
  let spec = Security.Properties.request_response defs ~req:"req" ~resp:"rsp" in
  Defs.define_proc defs "GOOD" []
    (Proc.prefix_items
       ( "req",
         [ Proc.In ("x", None) ],
         Proc.prefix "rsp" [ Expr.var "x" ] (Proc.call ("GOOD", [])) ));
  check_bool "echo service conforms" true
    (Refine.holds (Refine.traces_refines defs ~spec ~impl:(Proc.call ("GOOD", []))));
  Defs.define_proc defs "BAD" []
    (Proc.prefix_items
       ( "req",
         [ Proc.In ("x", None) ],
         Proc.prefix "rsp"
           [ Expr.Bin (Expr.Mod, Expr.(var "x" + int 1), Expr.int 2) ]
           (Proc.call ("BAD", [])) ));
  check_bool "corrupting service caught" false
    (Refine.holds (Refine.traces_refines defs ~spec ~impl:(Proc.call ("BAD", []))))

let test_never_and_precedes () =
  let defs = Defs.create () in
  Defs.declare_channel defs "x" [];
  Defs.declare_channel defs "y" [];
  Defs.declare_channel defs "leak" [];
  let alphabet = Eventset.chans [ "x"; "y"; "leak" ] in
  let never =
    Security.Properties.never defs ~alphabet ~forbidden:(Eventset.chan "leak")
  in
  let clean = Proc.send "x" [] (Proc.send "y" [] Proc.stop) in
  let leaky = Proc.send "x" [] (Proc.send "leak" [] Proc.stop) in
  check_bool "clean passes" true
    (Refine.holds (Refine.traces_refines defs ~spec:never ~impl:clean));
  check_bool "leak caught" false
    (Refine.holds (Refine.traces_refines defs ~spec:never ~impl:leaky));
  let prec =
    Security.Properties.precedes defs ~alphabet
      ~trigger:(Event.event "x" []) ~guarded:(Event.event "y" [])
  in
  let ordered = Proc.send "x" [] (Proc.send "y" [] Proc.stop) in
  let reversed = Proc.send "y" [] (Proc.send "x" [] Proc.stop) in
  check_bool "ordered passes" true
    (Refine.holds (Refine.traces_refines defs ~spec:prec ~impl:ordered));
  check_bool "reversed caught" false
    (Refine.holds (Refine.traces_refines defs ~spec:prec ~impl:reversed))

(* The fixed Needham-Schroeder system is the stock "large check": a 1 ms
   deadline cannot finish it, so the budgeted engine must degrade to an
   Inconclusive verdict carrying real progress numbers — the acceptance
   shape of the graceful-degradation tentpole. *)
let test_ns_budgeted () =
  match Security.Ns_protocol.check
          ~config:
            Csp.Check_config.(
              Security.Ns_protocol.default_config |> with_deadline 0.001)
          ~fixed:true () with
  | Refine.Inconclusive (stats, hint) ->
    (* the 1 ms may expire while compiling the spec (progress shows up in
       spec_nodes) or during the product walk (impl_states/pairs) — either
       way some exploration must be on record *)
    check_bool "non-zero exploration stats" true
      (stats.Refine.impl_states > 0 || stats.Refine.pairs > 0
      || stats.Refine.spec_nodes > 0);
    check_bool "resume hint has a frontier" true (hint.Refine.frontier > 0)
  | Refine.Holds _ -> Alcotest.fail "1 ms should not complete the NS check"
  | Refine.Fails _ -> Alcotest.fail "the fixed protocol must not fail"

let test_ns_attack_found () =
  (* sanity: without the fix and without a deadline, Lowe's attack appears *)
  match Security.Ns_protocol.check ~fixed:false () with
  | Refine.Fails cex ->
    check_bool "attack trace nonempty" true
      (List.length cex.Refine.trace > 0)
  | Refine.Holds _ | Refine.Inconclusive _ ->
    Alcotest.fail "expected Lowe's man-in-the-middle attack"

let suite =
  ( "security",
    [
      Alcotest.test_case "deduction: analysis" `Quick test_analyze;
      Alcotest.test_case "deduction: synthesis" `Quick test_synthesizable;
      QCheck_alcotest.to_alcotest monotone;
      Alcotest.test_case "attack-tree sequences" `Quick test_sequences_structure;
      QCheck_alcotest.to_alcotest translation_matches_semantics;
      Alcotest.test_case "packet universes" `Quick test_packet_universe;
      Alcotest.test_case "static forgeability" `Quick test_forgeable;
      Alcotest.test_case "replay intruder" `Quick test_replay_intruder_behaviour;
      Alcotest.test_case "lazy spy synthesizes" `Quick test_spy_synthesizes;
      Alcotest.test_case "reliable medium" `Quick test_reliable_medium;
      Alcotest.test_case "request/response property" `Quick test_request_response;
      Alcotest.test_case "never and precedes properties" `Quick
        test_never_and_precedes;
      Alcotest.test_case "needham-schroeder under a 1ms budget" `Quick
        test_ns_budgeted;
      Alcotest.test_case "needham-schroeder attack without the fix" `Quick
        test_ns_attack_found;
    ] )
