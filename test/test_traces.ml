(* The paper's Section IV-A2 trace semantics: unit tests of the trace
   operators, and the differential property that the denotational
   equations agree with traces harvested from the operational semantics —
   on random processes over every operator. *)

open Csp
open Helpers

let defs = make_defs ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tr chan ns = List.map (fun n -> vis chan n) ns

let set_equal s1 s2 = Traces.subset s1 s2 && Traces.subset s2 s1

let test_basic_equations () =
  (* traces(STOP) = {<>} *)
  check_int "STOP" 1 (List.length (Traces.of_proc defs Proc.stop));
  (* traces(SKIP) = {<>, <tick>} *)
  check_int "SKIP" 2 (List.length (Traces.of_proc defs Proc.skip));
  (* traces(e -> STOP) = {<>, <e>} *)
  check_int "prefix" 2 (List.length (Traces.of_proc defs (send "a" 1 Proc.stop)));
  (* traces(P [] Q) = union *)
  let p = Proc.ext (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  check_int "choice" 3 (List.length (Traces.of_proc defs p));
  (* internal and external choice have the same traces *)
  let q = Proc.intc (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  check_bool "int = ext in traces" true
    (set_equal (Traces.of_proc defs p) (Traces.of_proc defs q))

let test_seq_equation () =
  (* (a!0 -> SKIP); b!1 -> STOP : <>, <a.0>, <a.0, b.1> (tick hidden) *)
  let p = Proc.seq (send "a" 0 Proc.skip, send "b" 1 Proc.stop) in
  let ts = Traces.of_proc defs p in
  check_int "seq traces" 3 (List.length ts);
  check_bool "no stray tick" true
    (List.for_all (fun t -> not (List.mem Event.Tick t)) ts)

let test_prefix_order () =
  check_bool "empty is prefix" true (Traces.is_prefix [] (tr "a" [ 0; 1 ]));
  check_bool "proper prefix" true
    (Traces.is_prefix (tr "a" [ 0 ]) (tr "a" [ 0; 1 ]));
  check_bool "not a prefix" false
    (Traces.is_prefix (tr "a" [ 1 ]) (tr "a" [ 0; 1 ]))

let test_hide_operator () =
  let t = [ vis "a" 0; vis "b" 1; Event.Tick ] in
  let hidden = Traces.hide (Eventset.chan "a") t in
  check_int "a removed, tick kept" 2 (List.length hidden)

let test_merge () =
  (* no synchronization: all interleavings *)
  let m = Traces.merge ~sync:(fun _ -> false) (tr "a" [ 0 ]) (tr "b" [ 0 ]) in
  check_int "interleavings" 2 (List.length m);
  (* full synchronization on equal traces *)
  let m2 = Traces.merge ~sync:(fun _ -> true) (tr "a" [ 0 ]) (tr "a" [ 0 ]) in
  check_int "synced" 1 (List.length m2);
  (* synchronization mismatch kills the merge *)
  let m3 = Traces.merge ~sync:(fun _ -> true) (tr "a" [ 0 ]) (tr "a" [ 1 ]) in
  check_int "mismatch" 0 (List.length m3);
  (* tick must synchronize *)
  let m4 =
    Traces.merge ~sync:(fun _ -> false) [ Event.Tick ] [ vis "a" 0; Event.Tick ]
  in
  check_int "tick syncs at the end" 1 (List.length m4)

let test_prefix_closure () =
  let set = [ tr "a" [ 0; 1 ] ] in
  let closed = Traces.prefix_closure set in
  check_int "closure adds prefixes" 3 (List.length closed);
  check_bool "closed set detected" true (Traces.is_prefix_closed closed);
  check_bool "open set detected" false (Traces.is_prefix_closed set)

(* The central differential property: for random ground processes the
   denotational trace set (paper equations) equals the operational one. *)
let denotational_matches_operational =
  QCheck.Test.make ~count:200
    ~name:"paper trace equations = operational traces" arb_proc (fun p ->
      let depth = 4 in
      match Traces.of_proc ~depth defs p with
      | denotational ->
        let lts = Lts.compile ~max_states:20_000 defs p in
        let operational = Traces.of_lts ~depth lts in
        if set_equal denotational operational then true
        else
          QCheck.Test.fail_reportf
            "denotational %a@.operational %a" Traces.pp denotational
            Traces.pp operational
      | exception Traces.Unguarded _ -> QCheck.assume_fail ())

(* Trace sets of processes are always prefix-closed and nonempty. *)
let prefix_closed_prop =
  QCheck.Test.make ~count:200 ~name:"trace sets are prefix-closed" arb_proc
    (fun p ->
      let ts = Traces.of_proc ~depth:4 defs p in
      ts <> [] && Traces.is_prefix_closed ts)

let suite =
  ( "traces",
    [
      Alcotest.test_case "basic equations" `Quick test_basic_equations;
      Alcotest.test_case "sequential composition" `Quick test_seq_equation;
      Alcotest.test_case "prefix order" `Quick test_prefix_order;
      Alcotest.test_case "hiding operator" `Quick test_hide_operator;
      Alcotest.test_case "synchronized merge" `Quick test_merge;
      Alcotest.test_case "prefix closure" `Quick test_prefix_closure;
      QCheck_alcotest.to_alcotest denotational_matches_operational;
      QCheck_alcotest.to_alcotest prefix_closed_prop;
    ] )
