(* Remaining coverage: blackboard pretty-printer, key events through the
   simulation, output(this) echoing, and CSPm parser negatives. *)

open Csp

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let test_pretty_blackboard () =
  let p =
    Proc.ext
      ( Proc.send "a" [ Value.Int 0 ] Proc.stop,
        Proc.intc (Proc.skip, Proc.hide (Proc.stop, Eventset.chan "b")) )
  in
  let rendered = Pretty.proc_to_string p in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length rendered
      && (String.sub rendered i n = sub || go (i + 1))
    in
    n = 0 || go 0
  in
  check_bool "external choice glyph" true (has "□");
  check_bool "internal choice glyph" true (has "⊓");
  check_bool "prefix arrow" true (has "→");
  check_bool "hiding backslash" true (has "\\");
  check_string "trace brackets" "⟨a.0, ✓⟩"
    (Pretty.trace_to_string [ Event.Vis (Event.event "a" [ Value.Int 0 ]); Event.Tick ])

let test_simulation_key_press () =
  let src =
    {|
variables { message Cmd m; int presses = 0; }
on key 'r' { presses++; m.op = presses; output(m); }
|}
  in
  let db =
    Capl.Msgdb.of_messages
      [
        { Capl.Msgdb.msg_name = "Cmd"; msg_id = 0x20; msg_dlc = 1;
          signals =
            [ { Capl.Msgdb.sig_name = "op"; start_bit = 0; length = 8;
                byte_order = Capl.Msgdb.Little_endian; signed = false;
                minimum = 0; maximum = 255 } ] };
      ]
  in
  let sim = Capl.Simulation.of_sources ~db [ "UI", src; "SINK", "variables { int got = 0; } on message Cmd { got = this.op; }" ] in
  Capl.Simulation.start sim;
  Capl.Simulation.press_key sim "UI" 'r';
  Capl.Simulation.press_key sim "UI" 'r';
  ignore (Capl.Simulation.run ~until_ms:100 sim);
  check_int "two frames on the bus" 2
    (List.length (Capl.Simulation.transmissions sim));
  let sink = Capl.Simulation.node sim "SINK" in
  (match Capl.Interp.global sink.Capl.Simulation.interp "got" with
   | Capl.Interp.V_int 2 -> ()
   | v -> Alcotest.failf "sink saw %a" Capl.Interp.pp_value v);
  (* unknown node raises *)
  match Capl.Simulation.press_key sim "NOPE" 'r' with
  | () -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let test_output_this_echo () =
  let db =
    Capl.Msgdb.of_messages
      [ { Capl.Msgdb.msg_name = "Ping"; msg_id = 0x30; msg_dlc = 1; signals = [] } ]
  in
  let sent = ref [] in
  let runtime =
    { Capl.Interp.null_runtime with
      Capl.Interp.rt_output = (fun m -> sent := m :: !sent) }
  in
  let t =
    Capl.Interp.create ~runtime ~db
      (Capl.Parser.program "on message Ping { output(this); }")
  in
  Capl.Interp.on_frame t (Canbus.Frame.make ~id:0x30 [ 0x7F ]);
  match !sent with
  | [ m ] ->
    check_int "echoed id" 0x30 m.Capl.Interp.m_id;
    check_int "echoed payload" 0x7F m.Capl.Interp.m_data.(0)
  | _ -> Alcotest.fail "one echo expected"

let test_cspm_parse_negatives () =
  let rejects src =
    match Cspm.Parser.script src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Cspm.Parser.Parse_error _ -> ()
    | exception Cspm.Lexer.Lex_error _ -> ()
  in
  rejects "channel";
  rejects "datatype D =";
  rejects "P = ";
  rejects "assert P [T=";
  rejects "P = a -> ";
  rejects "P = (a -> STOP";
  rejects "nametype N";
  rejects "P = STOP [[ a <- ]]";
  rejects "assert P :[deadlock]";
  rejects "P = $"

let test_capl_parse_negatives () =
  let rejects src =
    match Capl.Parser.program src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Capl.Parser.Parse_error _ -> ()
    | exception Capl.Lexer.Lex_error _ -> ()
  in
  rejects "on message { }";
  rejects "variables { int }";
  rejects "on start { if (x) }";
  rejects "int f( { }";
  rejects "on start { x = ; }";
  rejects "on key r { }";
  rejects "variables { int a = \"unterminated }"

let test_dbc_negatives () =
  let rejects src =
    match Candb.Dbc_parser.parse src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Candb.Dbc_parser.Parse_error _ -> ()
  in
  rejects "BO_ 1 M: 1 N\n SG_ s : 0|8@2+ (1,0) [0|255] \"\" X\n";
  rejects "BO_ 1 M: 1 N\n SG_ s : 0|8@1+ 1,0 [0|255] \"\" X\n";
  rejects "BO_ nope\n";
  rejects "SG_ orphan : 0|8@1+ (1,0) [0|255] \"\" X\n"

let suite =
  ( "misc",
    [
      Alcotest.test_case "blackboard pretty printer" `Quick
        test_pretty_blackboard;
      Alcotest.test_case "key events through the simulation" `Quick
        test_simulation_key_press;
      Alcotest.test_case "output(this) echoes the frame" `Quick
        test_output_this_echo;
      Alcotest.test_case "CSPm parser negatives" `Quick
        test_cspm_parse_negatives;
      Alcotest.test_case "CAPL parser negatives" `Quick
        test_capl_parse_negatives;
      Alcotest.test_case "DBC parser negatives" `Quick test_dbc_negatives;
    ] )
