(* Tests for the CAPL front end: lexer, parser, semantic checks. *)

open Capl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = List.map fst (Lexer.tokens src)

let test_lexer_literals () =
  (match toks "0x1A3 42 2.5 'x' \"hi\\n\"" with
   | [ Lexer.INT 0x1A3; Lexer.INT 42; Lexer.FLOAT 2.5; Lexer.CHAR 'x';
       Lexer.STRING "hi\n"; Lexer.EOF ] -> ()
   | _ -> Alcotest.fail "literal lexing");
  match toks "a++ --b a<<=2" with
  | [ Lexer.IDENT "a"; Lexer.PLUSPLUS; Lexer.MINUSMINUS; Lexer.IDENT "b";
      Lexer.IDENT "a"; Lexer.SHL_ASSIGN; Lexer.INT 2; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "operator lexing"

(* Literals wider than the native int (or float) must surface as
   positioned lexical errors, not as an uncaught [Failure]. *)
let test_lexer_literal_overflow () =
  (try
     ignore (toks "x = 99999999999999999999;");
     Alcotest.fail "expected Lex_error on decimal overflow"
   with Lexer.Lex_error (msg, pos) ->
     check_bool "decimal message" true (Helpers.contains msg "out of range");
     check_int "decimal line" 1 pos.Ast.line;
     check_int "decimal col is the token start" 5 pos.Ast.col);
  try
    ignore (toks "x = 0xFFFFFFFFFFFFFFFFFF;");
    Alcotest.fail "expected Lex_error on hex overflow"
  with Lexer.Lex_error (msg, pos) ->
    check_bool "hex message" true (Helpers.contains msg "out of range");
    check_bool "hex message names the literal" true
      (Helpers.contains msg "0xFFFFFFFFFFFFFFFFFF");
    check_int "hex col is the token start" 5 pos.Ast.col

let test_lexer_comments_include () =
  (match toks "a // line\n/* block\nmore */ b" with
   | [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ] -> ()
   | _ -> Alcotest.fail "comments");
  match toks "#include \"common.cin\"" with
  | [ Lexer.HASH_INCLUDE "common.cin"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "include"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_program_structure () =
  let prog =
    Parser.program
      {|
includes { #include "shared.cin" }
variables {
  int counter = 0;
  msTimer t1;
  message EngineData msg1;
  byte buf[8];
}
on start { counter = 1; }
on timer t1 { counter++; }
on key 'r' { counter = 0; }
on message EngineData { counter = counter + 1; }
on message 0x1A0 { }
on message * { }
int helper(int a, int b) { return a + b; }
|}
  in
  check_int "includes" 1 (List.length prog.Ast.includes);
  check_int "variables" 4 (List.length prog.Ast.variables);
  check_int "handlers" 6 (List.length prog.Ast.handlers);
  check_int "functions" 1 (List.length prog.Ast.functions);
  (* message selector variety *)
  let selectors =
    List.filter_map
      (fun h ->
        match h.Ast.event with Ast.Ev_message s -> Some s | _ -> None)
      prog.Ast.handlers
  in
  check_int "three message handlers" 3 (List.length selectors);
  check_bool "named" true (List.mem (Ast.Msg_name "EngineData") selectors);
  check_bool "by id" true (List.mem (Ast.Msg_id 0x1A0) selectors);
  check_bool "wildcard" true (List.mem Ast.Msg_any selectors);
  (* array dims *)
  let buf = List.find (fun v -> v.Ast.var_name = "buf") prog.Ast.variables in
  Alcotest.(check (list int)) "dims" [ 8 ] buf.Ast.var_dims

let test_parse_expressions () =
  (match Parser.expr "a = b ? 1 + 2 * 3 : x[4].sig" with
   | Ast.E_assign (Ast.A_eq, Ast.E_ident "a", Ast.E_ternary (_, _, _)) -> ()
   | _ -> Alcotest.fail "assignment of ternary");
  (match Parser.expr "this.byte(0) | mask" with
   | Ast.E_binop (Ast.B_bor, Ast.E_method (Ast.E_this, "byte", [ Ast.E_int 0 ]), _) -> ()
   | _ -> Alcotest.fail "method call and bitor");
  match Parser.expr "a << 2 == 8 && !done" with
  | Ast.E_binop (Ast.B_land, Ast.E_binop (Ast.B_eq, Ast.E_binop (Ast.B_shl, _, _), _), Ast.E_unop (Ast.U_not, _)) -> ()
  | _ -> Alcotest.fail "C precedence"

let test_parse_statements () =
  (match Parser.stmt "for (i = 0; i < 8; i++) total += i;" with
   | Ast.S_for (Some _, Some _, Some _, Ast.S_expr _) -> ()
   | _ -> Alcotest.fail "for");
  (match Parser.stmt "switch (x) { case 1: a = 1; break; default: a = 2; }" with
   | Ast.S_switch (_, [ { Ast.case_label = Some _; _ }; { Ast.case_label = None; _ } ]) -> ()
   | _ -> Alcotest.fail "switch");
  (match Parser.stmt "do { x--; } while (x > 0);" with
   | Ast.S_do_while (_, _) -> ()
   | _ -> Alcotest.fail "do-while");
  match Parser.stmt "if (a) b = 1; else { b = 2; c = 3; }" with
  | Ast.S_if (_, _, Some (Ast.S_block [ _; _ ])) -> ()
  | _ -> Alcotest.fail "if-else"

let test_parse_errors () =
  try
    ignore (Parser.program "on message { }");
    Alcotest.fail "expected Parse_error"
  with Parser.Parse_error (_, _) -> ()

(* ------------------------------------------------------------------ *)
(* Semantic checks                                                     *)
(* ------------------------------------------------------------------ *)

let db =
  Msgdb.of_messages
    [
      { Msgdb.msg_name = "EngineData"; msg_id = 0x1A0; msg_dlc = 8;
        signals =
          [ { Msgdb.sig_name = "speed"; start_bit = 0; length = 16;
              byte_order = Msgdb.Little_endian; signed = false;
              minimum = 0; maximum = 0 } ] };
    ]

let errors_of src = Sem.check ~db (Parser.program src)

let test_sem_clean_program () =
  let errs =
    errors_of
      {|
variables { int n = 0; message EngineData m; msTimer t; }
on start { setTimer(t, 100); }
on timer t { n++; output(m); }
on message EngineData { n = this.speed; }
|}
  in
  Alcotest.(check (list string)) "no errors" []
    (List.map (fun e -> e.Sem.message) errs)

let expect_error src fragment =
  let errs = errors_of src in
  check_bool
    (Printf.sprintf "expected error mentioning %S" fragment)
    true
    (List.exists
       (fun e ->
         let msg = e.Sem.message in
         let rec contains i =
           i + String.length fragment <= String.length msg
           && (String.sub msg i (String.length fragment) = fragment
               || contains (i + 1))
         in
         contains 0)
       errs)

let test_sem_errors () =
  expect_error "on start { undeclared = 1; }" "undeclared";
  expect_error "variables { int x; int x; }" "duplicate";
  expect_error "on start { break; }" "break";
  expect_error "variables { int x; } on start { output(x); }" "message";
  expect_error "variables { int x; } on start { setTimer(x, 5); }" "timer";
  expect_error "int f() { return; }" "without a value";
  expect_error "void f() { this.speed = 1; }" "'this'";
  expect_error "variables { message Bogus m; } on start { }" "unknown message";
  expect_error "on message EngineData { x = this.rpm; }" "no signal";
  expect_error "on start { 1 = 2; }" "non-lvalue"

let suite =
  ( "capl",
    [
      Alcotest.test_case "lexer literals and operators" `Quick test_lexer_literals;
      Alcotest.test_case "literal overflow" `Quick test_lexer_literal_overflow;
      Alcotest.test_case "lexer comments and includes" `Quick
        test_lexer_comments_include;
      Alcotest.test_case "program structure" `Quick test_parse_program_structure;
      Alcotest.test_case "expressions" `Quick test_parse_expressions;
      Alcotest.test_case "statements" `Quick test_parse_statements;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "clean program passes checks" `Quick test_sem_clean_program;
      Alcotest.test_case "semantic error detection" `Quick test_sem_errors;
    ] )
