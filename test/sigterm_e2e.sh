#!/bin/sh
# Crash-safe checking, end to end: SIGTERM mid-search must exit with the
# documented interrupt code (5) leaving a valid cspm-checkpoint/1 file
# and a valid partial cspm-check/1 report; --resume must then complete
# with a report identical to an uninterrupted run's, byte for byte once
# the wall-clock timing fields are stripped — and clean up the now-stale
# checkpoint.
set -e
bin="$1"
fixture="$2"

# dune hands us paths relative to the build directory; make them
# absolute, then do all the work in a throwaway directory so the rule
# leaves no undeclared artifacts behind.
case "$bin" in /*) ;; *) bin="$(pwd)/$bin" ;; esac
case "$fixture" in /*) ;; *) fixture="$(pwd)/$fixture" ;; esac
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

strip_timing() {
  sed -E 's/"wall_s":[0-9.eE+-]+,//g;
          s/"states_per_sec":[0-9.eE+-]+,//g;
          s/,"par_speedup":[0-9.eE+-]+//g' "$1"
}

# Reference: the uninterrupted run. The whole test pins
# --reductions none: it exercises the interrupt machinery, and the raw
# engine is the one whose multi-second search the SIGTERM must land in.
"$bin" --format json --reductions none -o full.json "$fixture"

# Interrupted run: SIGTERM well inside the multi-second search.
"$bin" --format json --reductions none -o part.json --checkpoint-out ck.json "$fixture" &
pid=$!
sleep 0.3
kill -TERM "$pid" 2>/dev/null || true
set +e
wait "$pid"
code=$?
set -e
if [ "$code" -ne 5 ]; then
  echo "interrupted run exited $code, want 5" >&2
  exit 1
fi

grep -q '"schema":"cspm-checkpoint/1"' ck.json
grep -q '"schema":"cspm-check/1"' part.json
grep -q '"verdict":"inconclusive"' part.json
grep -q '"exhausted":"interrupt"' part.json
grep -q '"checkpoint"' part.json

# A resume under different --reductions must be refused up front (the
# checkpoint digest covers the reduction setting): exit 2 and an error
# that names the flag, before any search starts.
set +e
mismatch_err=$("$bin" --format json -o bad.json --resume ck.json "$fixture" 2>&1)
mismatch_code=$?
set -e
if [ "$mismatch_code" -ne 2 ]; then
  echo "mismatched-reductions resume exited $mismatch_code, want 2" >&2
  exit 1
fi
case "$mismatch_err" in
  *--reductions*) ;;
  *) echo "mismatch error does not mention --reductions: $mismatch_err" >&2
     exit 1 ;;
esac

# Resume: must complete (exit 0) and remove the stale checkpoint.
"$bin" --format json --reductions none -o resumed.json --resume ck.json --checkpoint-out ck.json "$fixture"
if [ -f ck.json ]; then
  echo "stale checkpoint survived a completed resume" >&2
  exit 1
fi

strip_timing full.json > full.norm
strip_timing resumed.json > resumed.norm
if ! cmp -s full.norm resumed.norm; then
  echo "resumed report differs from the uninterrupted run:" >&2
  diff full.norm resumed.norm >&2 || true
  exit 1
fi
echo ok
