(* Tests for the DBC parser and its CAPL / CSPm adapters. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let sample =
  {|VERSION "7.1"
NS_ :
   NS_DESC_
BS_:
BU_: VMG ECU GW
BO_ 257 ReqSw: 2 VMG
 SG_ ping : 0|2@1+ (1,0) [0|3] "" ECU
 SG_ seq m1 : 2|6@1+ (1,0) [0|63] "count" ECU,GW
BO_ 513 RptSw: 8 ECU
 SG_ version : 0|8@1+ (1,0) [0|255] "" VMG
 SG_ temp : 8|8@0- (0.5,-40) [-40|87.5] "degC" VMG
CM_ BO_ 257 "software inventory request";
CM_ SG_ 513 version "installed version";
CM_ BU_ GW "gateway node";
VAL_ 257 ping 0 "NONE" 1 "REQ" 2 "RETRY";
BA_DEF_ "GenMsgCycleTime" INT 0 65535;
|}

let db () = Candb.Dbc_parser.parse sample

let test_structure () =
  let d = db () in
  Alcotest.(check (option string)) "version" (Some "7.1") d.Candb.Dbc_ast.version;
  Alcotest.(check (list string)) "nodes" [ "VMG"; "ECU"; "GW" ] d.Candb.Dbc_ast.nodes;
  check_int "messages" 2 (List.length d.Candb.Dbc_ast.messages);
  check_int "comments" 3 (List.length d.Candb.Dbc_ast.comments);
  check_int "value tables" 1 (List.length d.Candb.Dbc_ast.value_tables)

let test_message_fields () =
  let d = db () in
  let m = Option.get (Candb.Dbc_ast.find_message d 257) in
  check_string "name" "ReqSw" m.Candb.Dbc_ast.msg_name;
  check_int "dlc" 2 m.Candb.Dbc_ast.dlc;
  check_string "sender" "VMG" m.Candb.Dbc_ast.sender;
  check_int "signals" 2 (List.length m.Candb.Dbc_ast.signals);
  let seq = List.nth m.Candb.Dbc_ast.signals 1 in
  check_bool "multiplex indicator kept" true
    (seq.Candb.Dbc_ast.multiplexing = Some "m1");
  Alcotest.(check (list string)) "receivers" [ "ECU"; "GW" ]
    seq.Candb.Dbc_ast.receivers

let test_signal_layout () =
  let d = db () in
  let m = Option.get (Candb.Dbc_ast.find_message_by_name d "RptSw") in
  let temp = List.nth m.Candb.Dbc_ast.signals 1 in
  check_bool "motorola" true (temp.Candb.Dbc_ast.byte_order = Candb.Dbc_ast.Big_endian);
  check_bool "signed" true temp.Candb.Dbc_ast.signed;
  check_bool "factor parsed" true (temp.Candb.Dbc_ast.factor = 0.5);
  check_bool "offset parsed" true (temp.Candb.Dbc_ast.offset = -40.0)

let test_parse_errors () =
  try
    ignore (Candb.Dbc_parser.parse "BO_ 1 M: 8 N\n SG_ bad : nonsense\n");
    Alcotest.fail "expected Parse_error"
  with Candb.Dbc_parser.Parse_error (_, line) -> check_int "line" 2 line

let test_to_capl () =
  let mdb = Candb.To_capl.msgdb (db ()) in
  let m = Option.get (Capl.Msgdb.find_by_name mdb "ReqSw") in
  check_int "id" 257 m.Capl.Msgdb.msg_id;
  let ping = Option.get (Capl.Msgdb.find_signal m "ping") in
  check_int "raw max from phys range" 3 ping.Capl.Msgdb.maximum;
  (* scaled physical range converts back to raw bounds *)
  let rpt = Option.get (Capl.Msgdb.find_by_name mdb "RptSw") in
  let temp = Option.get (Capl.Msgdb.find_signal rpt "temp") in
  check_int "raw bounds through factor and offset" 255 temp.Capl.Msgdb.maximum

let test_to_cspm_declarations () =
  let defs = Candb.To_cspm.to_defs (db ()) in
  (* channels per message *)
  check_bool "ReqSw channel" true (Option.is_some (Csp.Defs.channel_type defs "ReqSw"));
  check_bool "RptSw channel" true (Option.is_some (Csp.Defs.channel_type defs "RptSw"));
  (* VAL_-enumerated signal becomes a datatype *)
  (match Csp.Defs.ty_lookup defs "ReqSw_ping" with
   | Some (Csp.Ty.Variants ctors) ->
     Alcotest.(check (list string)) "constructors from VAL_"
       [ "NONE"; "REQ"; "RETRY" ] (List.map fst ctors)
   | _ -> Alcotest.fail "expected a datatype for ping");
  (* plain signal becomes a nametype range *)
  match Csp.Defs.ty_lookup defs "RptSw_version" with
  | Some (Csp.Ty.Alias (Csp.Ty.Int_range (0, 255))) -> ()
  | _ -> Alcotest.fail "expected a nametype for version"

let test_to_cspm_clamping () =
  let config =
    { Candb.To_cspm.default_config with max_domain = 16; use_value_tables = false }
  in
  let defs = Candb.To_cspm.to_defs ~config (db ()) in
  (match Csp.Defs.ty_lookup defs "RptSw_version" with
   | Some (Csp.Ty.Alias (Csp.Ty.Int_range (0, 15))) -> ()
   | _ -> Alcotest.fail "expected the clamped range");
  let abstracted = Candb.To_cspm.abstracted_signals ~config (db ()) in
  check_bool "clamping is reported" true
    (List.mem ("RptSw", "version") abstracted)

let test_value_table_toggle () =
  let config =
    { Candb.To_cspm.default_config with use_value_tables = false }
  in
  let defs = Candb.To_cspm.to_defs ~config (db ()) in
  match Csp.Defs.ty_lookup defs "ReqSw_ping" with
  | Some (Csp.Ty.Alias _) -> ()
  | _ -> Alcotest.fail "value tables disabled: expected a range"

let suite =
  ( "candb",
    [
      Alcotest.test_case "database structure" `Quick test_structure;
      Alcotest.test_case "message fields" `Quick test_message_fields;
      Alcotest.test_case "signal layout" `Quick test_signal_layout;
      Alcotest.test_case "parse errors with line numbers" `Quick test_parse_errors;
      Alcotest.test_case "CAPL adapter" `Quick test_to_capl;
      Alcotest.test_case "CSPm declarations" `Quick test_to_cspm_declarations;
      Alcotest.test_case "domain clamping" `Quick test_to_cspm_clamping;
      Alcotest.test_case "value table toggle" `Quick test_value_table_toggle;
    ] )
