(* Tests for the CAPL interpreter: expression semantics, control flow,
   functions, message objects, timers, and the write() formatter. *)

open Capl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let db =
  Msgdb.of_messages
    [
      { Msgdb.msg_name = "Cmd"; msg_id = 0x10; msg_dlc = 2;
        signals =
          [ { Msgdb.sig_name = "op"; start_bit = 0; length = 4;
              byte_order = Msgdb.Little_endian; signed = false;
              minimum = 0; maximum = 15 };
            { Msgdb.sig_name = "arg"; start_bit = 4; length = 8;
              byte_order = Msgdb.Little_endian; signed = false;
              minimum = 0; maximum = 255 } ] };
    ]

let make ?runtime src = Interp.create ?runtime ~db (Parser.program src)

let get_int t name =
  match Interp.global t name with
  | Interp.V_int n -> n
  | v -> Alcotest.failf "expected int, got %a" Interp.pp_value v

let test_global_init_and_masking () =
  let t = make "variables { int a = 70000; byte b = 260; word w = 70000; long l = 70000; }" in
  (* CAPL int is 16-bit signed *)
  check_int "int wraps" 4464 (get_int t "a");
  check_int "byte masks" 4 (get_int t "b");
  check_int "word masks" 4464 (get_int t "w");
  check_int "long keeps" 70000 (get_int t "l")

let test_handlers_and_functions () =
  let t =
    make
      {|
variables { int n = 0; }
int sq(int x) { return x * x; }
on start { n = sq(4); }
|}
  in
  Interp.fire_start t;
  check_int "function result" 16 (get_int t "n");
  (match Interp.call_function t "sq" [ Interp.V_int 7 ] with
   | Interp.V_int 49 -> ()
   | _ -> Alcotest.fail "direct call");
  try
    ignore (Interp.call_function t "nope" []);
    Alcotest.fail "expected Runtime_error"
  with Interp.Runtime_error _ -> ()

let test_control_flow () =
  let t =
    make
      {|
variables { int total = 0; int evens = 0; }
on start {
  int i;
  for (i = 0; i < 10; i++) {
    if (i % 2 == 0) evens++;
    if (i == 7) break;
    total += i;
  }
  while (total > 20) { total -= 10; }
  do { total++; } while (total < 15);
}
|}
  in
  Interp.fire_start t;
  (* loop sums 0..6 = 21, break at 7; evens among 0..7 = 4; then 21>20 ->
     11; then do-while to 15 *)
  check_int "evens" 4 (get_int t "evens");
  check_int "total" 15 (get_int t "total")

let test_switch_fallthrough () =
  let t =
    make
      {|
variables { int r = 0; }
int classify(int x) {
  switch (x) {
    case 1:
    case 2: return 10;
    case 3: r = 1;   // falls through
    default: return 99;
  }
}
|}
  in
  (match Interp.call_function t "classify" [ Interp.V_int 2 ] with
   | Interp.V_int 10 -> ()
   | v -> Alcotest.failf "case grouping: %a" Interp.pp_value v);
  (match Interp.call_function t "classify" [ Interp.V_int 3 ] with
   | Interp.V_int 99 -> ()
   | _ -> Alcotest.fail "fallthrough to default");
  check_int "side effect of fallthrough" 1 (get_int t "r");
  match Interp.call_function t "classify" [ Interp.V_int 8 ] with
  | Interp.V_int 99 -> ()
  | _ -> Alcotest.fail "default"

let test_arrays () =
  let t =
    make
      {|
variables { int buf[4]; int sum = 0; }
on start {
  int i;
  for (i = 0; i < elCount(buf); i++) buf[i] = i * i;
  for (i = 0; i < 4; i++) sum += buf[i];
}
|}
  in
  Interp.fire_start t;
  check_int "array sum" 14 (get_int t "sum")

let test_message_objects () =
  let sent = ref [] in
  let runtime =
    { Interp.null_runtime with
      Interp.rt_output = (fun m -> sent := m :: !sent) }
  in
  let t =
    make ~runtime
      {|
variables { message Cmd m; }
on start {
  m.op = 3;
  m.arg = 200;
  m.byte(1) = m.byte(1) | 0x40;
  output(m);
}
on message Cmd {
  m.op = this.op + 1;
  output(m);
}
|}
  in
  Interp.fire_start t;
  (match !sent with
   | [ m ] ->
     check_int "id from spec" 0x10 m.Interp.m_id;
     let frame = Interp.frame_of_msg m in
     check_int "op encoded" 3
       (Msgdb.decode_signal
          (Option.get (Msgdb.find_signal (Option.get (Msgdb.find_by_id db 0x10)) "op"))
          [| Canbus.Frame.data_byte frame 0; Canbus.Frame.data_byte frame 1 |]);
     check_bool "byte() or-mask applied" true
       (Canbus.Frame.data_byte frame 1 land 0x40 <> 0)
   | _ -> Alcotest.fail "one frame expected");
  (* dispatch a received frame: this.op = 5 -> replies with op = 6 *)
  let data = [| 0; 0 |] in
  Msgdb.encode_signal
    (Option.get (Msgdb.find_signal (Option.get (Msgdb.find_by_id db 0x10)) "op"))
    data 5;
  Interp.on_frame t (Canbus.Frame.make ~id:0x10 (Array.to_list data));
  match !sent with
  | m :: _ ->
    let frame = Interp.frame_of_msg m in
    let op =
      Msgdb.decode_signal
        (Option.get (Msgdb.find_signal (Option.get (Msgdb.find_by_id db 0x10)) "op"))
        [| Canbus.Frame.data_byte frame 0; Canbus.Frame.data_byte frame 1 |]
    in
    check_int "handler read this.op" 6 op
  | [] -> Alcotest.fail "reply expected"

let test_timers () =
  let armed = ref [] in
  let cancelled = ref [] in
  let runtime =
    { Interp.null_runtime with
      Interp.rt_set_timer = (fun ~name ~us -> armed := (name, us) :: !armed);
      rt_cancel_timer = (fun ~name -> cancelled := name :: !cancelled) }
  in
  let t =
    make ~runtime
      {|
variables { msTimer fast; timer slow; int fired = 0; }
on start { setTimer(fast, 50); setTimer(slow, 2); cancelTimer(fast); }
on timer fast { fired++; }
|}
  in
  Interp.fire_start t;
  check_bool "ms timer scaled" true (List.mem ("fast", 50_000) !armed);
  check_bool "s timer scaled" true (List.mem ("slow", 2_000_000) !armed);
  Alcotest.(check (list string)) "cancelled" [ "fast" ] !cancelled;
  Interp.fire_timer t "fast";
  check_int "timer handler ran" 1 (get_int t "fired")

let test_write_formatting () =
  let lines = ref [] in
  let runtime =
    { Interp.null_runtime with Interp.rt_write = (fun s -> lines := s :: !lines) }
  in
  let t =
    make ~runtime
      {|
on start { write("n=%d hex=%x chr=%c pct=%% s=%s", 42, 255, 65, "ok"); }
|}
  in
  Interp.fire_start t;
  match !lines with
  | [ line ] -> check_string "formatted" "n=42 hex=ff chr=A pct=% s=ok" line
  | _ -> Alcotest.fail "one line"

let test_runtime_errors () =
  let t = make "variables { int a = 0; } int f(int x) { return x / a; }" in
  (try
     ignore (Interp.call_function t "f" [ Interp.V_int 1 ]);
     Alcotest.fail "expected division error"
   with Interp.Runtime_error _ -> ());
  let t2 = make "int g() { return g(); }" in
  try
    ignore (Interp.call_function t2 "g" []);
    Alcotest.fail "expected depth error"
  with Interp.Runtime_error _ -> ()

let test_deterministic_random () =
  let t = make "variables { int a = 0; int b = 0; } on start { a = random(100); b = random(100); }" in
  Interp.fire_start t;
  let a1 = get_int t "a" and b1 = get_int t "b" in
  let t2 = make "variables { int a = 0; int b = 0; } on start { a = random(100); b = random(100); }" in
  Interp.fire_start t2;
  check_int "same seed, same sequence" a1 (get_int t2 "a");
  check_int "same seed, same sequence (2)" b1 (get_int t2 "b");
  check_bool "in range" true (a1 >= 0 && a1 < 100)

let suite =
  ( "interp",
    [
      Alcotest.test_case "global initialization and masking" `Quick
        test_global_init_and_masking;
      Alcotest.test_case "handlers and functions" `Quick test_handlers_and_functions;
      Alcotest.test_case "control flow" `Quick test_control_flow;
      Alcotest.test_case "switch with fallthrough" `Quick test_switch_fallthrough;
      Alcotest.test_case "arrays" `Quick test_arrays;
      Alcotest.test_case "message objects" `Quick test_message_objects;
      Alcotest.test_case "timers" `Quick test_timers;
      Alcotest.test_case "write formatting" `Quick test_write_formatting;
      Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
      Alcotest.test_case "deterministic random" `Quick test_deterministic_random;
    ] )
