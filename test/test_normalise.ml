(* Tests for specification normalization (tau-closure subset construction
   and minimal acceptance sets). *)

open Csp
open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let defs = make_defs ()

let test_deterministic_spec () =
  let p = send "a" 0 (send "b" 1 Proc.stop) in
  let n = Normalise.normalise (Lts.compile defs p) in
  check_int "three nodes" 3 (Normalise.num_nodes n);
  check_bool "a.0 leads on" true
    (Option.is_some (Normalise.after n (Normalise.initial n) (vis "a" 0)));
  check_bool "b.1 not initially" true
    (Option.is_none (Normalise.after n (Normalise.initial n) (vis "b" 1)))

let test_internal_choice_merges () =
  (* a!0 -> STOP |~| a!0 -> b!1 -> STOP : after <a.0>, one node holding
     both continuations *)
  let p = Proc.intc (send "a" 0 Proc.stop, send "a" 0 (send "b" 1 Proc.stop)) in
  let n = Normalise.normalise (Lts.compile defs p) in
  let after_a = Normalise.after n (Normalise.initial n) (vis "a" 0) in
  (match after_a with
   | None -> Alcotest.fail "a.0 must be possible"
   | Some node ->
     check_int "merged node has two members" 2
       (List.length (Normalise.members n node));
     check_bool "b.1 available from the merged node" true
       (Option.is_some (Normalise.after n node (vis "b" 1))))

let test_acceptances () =
  (* The initial node of the internal choice has two minimal acceptances:
     {a.0} from each stable branch (deduplicated), reflecting that the
     process may refuse nothing more. *)
  let p = Proc.intc (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  let n = Normalise.normalise (Lts.compile defs p) in
  let accs = Normalise.acceptances n (Normalise.initial n) in
  check_int "two minimal acceptances" 2 (List.length accs);
  (* external choice instead: one acceptance offering both events *)
  let q = Proc.ext (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  let n2 = Normalise.normalise (Lts.compile defs q) in
  let accs2 = Normalise.acceptances n2 (Normalise.initial n2) in
  check_int "one acceptance" 1 (List.length accs2);
  check_int "offering both" 2 (List.length (List.hd accs2))

let test_minimality () =
  (* STOP |~| a!0 -> STOP : acceptances {} and {a.0}; {} dominates {a.0},
     leaving only the empty acceptance. *)
  let p = Proc.intc (Proc.stop, send "a" 0 Proc.stop) in
  let n = Normalise.normalise (Lts.compile defs p) in
  let accs = Normalise.acceptances n (Normalise.initial n) in
  check_int "dominated acceptance removed" 1 (List.length accs);
  check_int "empty acceptance" 0 (List.length (List.hd accs))

let test_can_terminate () =
  let n = Normalise.normalise (Lts.compile defs Proc.skip) in
  check_bool "skip terminates" true (Normalise.can_terminate n (Normalise.initial n));
  let n2 = Normalise.normalise (Lts.compile defs Proc.stop) in
  check_bool "stop does not" false (Normalise.can_terminate n2 (Normalise.initial n2))

(* Determinism: every node has at most one successor per label. *)
let normalised_is_deterministic =
  QCheck.Test.make ~count:150 ~name:"normal form is deterministic" arb_proc
    (fun p ->
      let n = Normalise.normalise (Lts.compile ~max_states:20_000 defs p) in
      let ok = ref true in
      for i = 0 to Normalise.num_nodes n - 1 do
        let labels = List.map fst (Normalise.afters n i) in
        let sorted = List.sort_uniq Event.compare_label labels in
        if List.length sorted <> List.length labels then ok := false
      done;
      !ok)

let suite =
  ( "normalise",
    [
      Alcotest.test_case "deterministic specs" `Quick test_deterministic_spec;
      Alcotest.test_case "nondeterminism merges" `Quick test_internal_choice_merges;
      Alcotest.test_case "acceptance sets" `Quick test_acceptances;
      Alcotest.test_case "acceptance minimality" `Quick test_minimality;
      Alcotest.test_case "termination flag" `Quick test_can_terminate;
      QCheck_alcotest.to_alcotest normalised_is_deterministic;
    ] )
