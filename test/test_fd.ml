(* Tests for failures-divergences refinement — the FD in "FDR". *)

open Csp
open Helpers

let defs = make_defs ()
let check_bool = Alcotest.(check bool)

let holds = Refine.holds
let fd_config = Check_config.(default |> with_max_states 50_000)

(* a diverging process: internal chatter hidden forever *)
let diverging defs =
  Defs.define_proc defs "DIV" [] (send "a" 0 (Proc.call ("DIV", [])));
  Proc.hide (Proc.call ("DIV", []), Eventset.chan "a")

let test_divergence_is_caught () =
  let defs = make_defs () in
  let div = diverging defs in
  (* traces and failures are blind to the divergence: the hidden loop has
     only the empty trace and no stable state *)
  check_bool "traces blind" true
    (holds (Refine.traces_refines defs ~spec:Proc.stop ~impl:div));
  check_bool "failures blind" true
    (holds (Refine.failures_refines defs ~spec:Proc.stop ~impl:div));
  (match Refine.fd_refines defs ~spec:Proc.stop ~impl:div with
   | Refine.Fails { Refine.violation = Refine.Divergence; _ } -> ()
   | _ -> Alcotest.fail "FD must catch the divergence");
  (* a divergence-free implementation passes *)
  check_bool "STOP FD-refines STOP" true
    (holds (Refine.fd_refines defs ~spec:Proc.stop ~impl:Proc.stop))

let test_divergent_spec_permits_anything () =
  let defs = make_defs () in
  let div_spec = diverging defs in
  (* below a divergent specification point, any behaviour is allowed *)
  let wild = Proc.ext (send "a" 0 Proc.stop, send "b" 1 Proc.skip) in
  check_bool "divergent spec refined by anything" true
    (holds (Refine.fd_refines defs ~spec:div_spec ~impl:wild));
  check_bool "even by another divergence" true
    (holds (Refine.fd_refines defs ~spec:div_spec ~impl:div_spec))

let test_fd_includes_failures () =
  (* the classic failures counterexample is also an FD counterexample *)
  let ext = Proc.ext (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  let int_ = Proc.intc (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  check_bool "refusal caught in FD" false
    (holds (Refine.fd_refines defs ~spec:ext ~impl:int_));
  check_bool "and the converse holds" true
    (holds (Refine.fd_refines defs ~spec:int_ ~impl:ext))

let test_fd_trace_violations () =
  let spec = send "a" 0 Proc.stop in
  let impl = send "a" 0 (send "b" 1 Proc.stop) in
  match Refine.fd_refines defs ~spec ~impl with
  | Refine.Fails { Refine.violation = Refine.Trace_violation _; trace; _ } ->
    Alcotest.(check int) "minimal trace" 2 (List.length trace)
  | _ -> Alcotest.fail "expected a trace violation"

let test_cspm_fd_assertion () =
  let src =
    "channel a : {0..1}\n\
     SPEC = a!0 -> SPEC\n\
     GOOD = a!0 -> GOOD\n\
     BAD = (a!0 -> BAD) \\ {| a |}\n\
     assert SPEC [FD= GOOD\n\
     assert SPEC [FD= BAD"
  in
  let outcomes = Cspm.Check.run (Cspm.Elaborate.load_string src) in
  match outcomes with
  | [ g; b ] ->
    check_bool "good passes" true (Refine.holds g.Cspm.Check.result);
    check_bool "diverging fails" false (Refine.holds b.Cspm.Check.result)
  | _ -> Alcotest.fail "two outcomes expected"

(* FD refinement is strictly stronger than failures refinement. *)
let fd_implies_failures =
  QCheck.Test.make ~count:80 ~name:"FD refinement implies failures refinement"
    (QCheck.pair arb_proc arb_proc) (fun (spec, impl) ->
      let fd =
        holds (Refine.fd_refines ~config:fd_config defs ~spec ~impl)
      in
      let f =
        holds (Refine.failures_refines ~config:fd_config defs ~spec ~impl)
      in
      (* only when the spec is divergence-free does FD imply F; the random
         generator never diverges on its own (hiding of finite processes
         only), so check directly *)
      if fd then f else true)

let fd_reflexive =
  QCheck.Test.make ~count:80 ~name:"FD refinement is reflexive" arb_proc
    (fun p -> holds (Refine.fd_refines ~config:fd_config defs ~spec:p ~impl:p))

let suite =
  ( "fd",
    [
      Alcotest.test_case "divergence caught only by FD" `Quick
        test_divergence_is_caught;
      Alcotest.test_case "divergent spec permits anything" `Quick
        test_divergent_spec_permits_anything;
      Alcotest.test_case "FD includes failures" `Quick test_fd_includes_failures;
      Alcotest.test_case "FD trace violations" `Quick test_fd_trace_violations;
      Alcotest.test_case "CSPm [FD= assertion" `Quick test_cspm_fd_assertion;
      QCheck_alcotest.to_alcotest fd_implies_failures;
      QCheck_alcotest.to_alcotest fd_reflexive;
    ] )
