(* The translation-soundness property, tested on randomly generated CAPL
   programs: whatever frame trace the executing network produces, the
   extracted CSP model must accept. This exercises the extractor, the
   interpreter, the bus, the DBC adapters and the conformance replayer in
   one loop — an end-to-end differential test of the paper's core claim. *)

let dbc =
  "BU_: A B\n\
   BO_ 1 ping: 1 A\n\
   \ SG_ v : 0|3@1+ (1,0) [0|7] \"\" B\n\
   BO_ 2 pong: 1 B\n\
   \ SG_ v : 0|3@1+ (1,0) [0|7] \"\" A\n\
   BO_ 3 beat: 1 A\n\
   \ SG_ v : 0|3@1+ (1,0) [0|7] \"\" B\n"

(* A random "responder" body for [on message ping] in node B: straight-line
   code over this.v, a tracked global, and outputs. *)
type stmt_tpl =
  | Out_const of int
  | Out_this_plus of int
  | Out_global
  | Global_incr
  | Global_set_this
  | If_this_lt of int * stmt_tpl list * stmt_tpl list

let rec render_stmt buf = function
  | Out_const n ->
    Buffer.add_string buf (Printf.sprintf "  m.v = %d; output(m);\n" n)
  | Out_this_plus n ->
    Buffer.add_string buf
      (Printf.sprintf "  m.v = this.v + %d; output(m);\n" n)
  | Out_global -> Buffer.add_string buf "  m.v = g; output(m);\n"
  | Global_incr -> Buffer.add_string buf "  g = g + 1;\n"
  | Global_set_this -> Buffer.add_string buf "  g = this.v;\n"
  | If_this_lt (n, a, b) ->
    Buffer.add_string buf (Printf.sprintf "  if (this.v < %d) {\n" n);
    List.iter (render_stmt buf) a;
    Buffer.add_string buf "  } else {\n";
    List.iter (render_stmt buf) b;
    Buffer.add_string buf "  }\n"

let render_responder stmts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "variables { message pong m; int g = 0; }\n";
  Buffer.add_string buf "on message ping {\n";
  List.iter (render_stmt buf) stmts;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* The driver node sends a few pings with random payloads. *)
let render_driver payloads =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "variables { message ping p; msTimer t; int step = 0; }\n";
  Buffer.add_string buf "on start { setTimer(t, 10); }\n";
  Buffer.add_string buf "on timer t {\n";
  List.iteri
    (fun i v ->
      Buffer.add_string buf
        (Printf.sprintf "  if (step == %d) { p.v = %d; output(p); }\n" i v))
    payloads;
  Buffer.add_string buf
    (Printf.sprintf "  step = step + 1;\n  if (step < %d) setTimer(t, 10);\n"
       (List.length payloads));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let gen_stmts : stmt_tpl list QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Out_const n) (int_range 0 7);
        map (fun n -> Out_this_plus n) (int_range 0 7);
        return Out_global;
        return Global_incr;
        return Global_set_this;
      ]
  in
  let stmt =
    fix
      (fun self depth ->
        if depth <= 0 then leaf
        else
          frequency
            [
              3, leaf;
              1,
              map3
                (fun n a b -> If_this_lt (n, a, b))
                (int_range 1 7)
                (list_size (int_range 1 2) (self (depth - 1)))
                (list_size (int_range 1 2) (self (depth - 1)));
            ])
      1
  in
  list_size (int_range 1 4) stmt

let arb =
  QCheck.make
    ~print:(fun (stmts, payloads) ->
      render_responder stmts ^ "\n-- payloads: "
      ^ String.concat "," (List.map string_of_int payloads))
    QCheck.Gen.(pair gen_stmts (list_size (int_range 1 3) (int_range 0 7)))

let conformance_prop =
  QCheck.Test.make ~count:60
    ~name:"random CAPL responders: execution conforms to the extracted model"
    arb
    (fun (stmts, payloads) ->
      let sources =
        [ "A", render_driver payloads; "B", render_responder stmts ]
      in
      match
        Extractor.Pipeline.build_from_sources ~dbc sources
      with
      | exception _ -> QCheck.assume_fail ()
      | system ->
        let db = Candb.To_capl.msgdb (Candb.Dbc_parser.parse dbc) in
        let sim = Capl.Simulation.of_sources ~db sources in
        let report = Extractor.Conformance.run_and_check system sim in
        if report.Extractor.Conformance.accepted then true
        else
          QCheck.Test.fail_reportf "trace rejected: %a"
            Extractor.Conformance.pp_report report)

(* A deliberately broken variant: if the interpreter and extractor were
   fed different programs, conformance must notice. *)
let detects_mismatch () =
  let honest = [ Out_this_plus 0 ] in
  let twisted = [ Out_this_plus 1 ] in
  let sources_model = [ "A", render_driver [ 3 ]; "B", render_responder honest ] in
  let sources_run = [ "A", render_driver [ 3 ]; "B", render_responder twisted ] in
  let system = Extractor.Pipeline.build_from_sources ~dbc sources_model in
  let db = Candb.To_capl.msgdb (Candb.Dbc_parser.parse dbc) in
  let sim = Capl.Simulation.of_sources ~db sources_run in
  let report = Extractor.Conformance.run_and_check system sim in
  Alcotest.(check bool) "mismatch detected" false
    report.Extractor.Conformance.accepted

let suite =
  ( "conformance-prop",
    [
      QCheck_alcotest.to_alcotest conformance_prop;
      Alcotest.test_case "detects model/implementation mismatch" `Quick
        detects_mismatch;
    ] )
