(* Unit and property tests for the expression language. *)

open Csp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let eval ?(env = Expr.empty_env) e = Expr.eval Expr.no_funcs env e
let eval_int ?env e = Value.as_int (eval ?env e)
let eval_b ?(env = Expr.empty_env) e = Expr.eval_bool Expr.no_funcs env e

let test_arith () =
  check_int "add" 7 (eval_int Expr.(int 3 + int 4));
  check_int "sub" (-1) (eval_int Expr.(int 3 - int 4));
  check_int "mul" 12 (eval_int (Expr.Bin (Expr.Mul, Expr.int 3, Expr.int 4)));
  check_int "div" 3 (eval_int (Expr.Bin (Expr.Div, Expr.int 13, Expr.int 4)));
  check_int "euclidean mod of negative" 2
    (eval_int (Expr.Bin (Expr.Mod, Expr.int (-3), Expr.int 5)));
  check_int "neg" (-3) (eval_int (Expr.Neg (Expr.int 3)))

let test_division_by_zero () =
  (try
     ignore (eval (Expr.Bin (Expr.Div, Expr.int 1, Expr.int 0)));
     Alcotest.fail "expected Eval_error"
   with Expr.Eval_error _ -> ());
  try
    ignore (eval (Expr.Bin (Expr.Mod, Expr.int 1, Expr.int 0)));
    Alcotest.fail "expected Eval_error"
  with Expr.Eval_error _ -> ()

let test_comparisons () =
  check_bool "eq values" true (eval_b Expr.(sym "a" = sym "a"));
  check_bool "neq" true
    (eval_b (Expr.Bin (Expr.Neq, Expr.sym "a", Expr.sym "b")));
  check_bool "lt" true (eval_b Expr.(int 1 < int 2));
  check_bool "le" true (eval_b (Expr.Bin (Expr.Le, Expr.int 2, Expr.int 2)));
  check_bool "structural eq on ctors" true
    (eval_b
       (Expr.Bin
          ( Expr.Eq,
            Expr.Ctor ("mac", [ Expr.sym "k"; Expr.int 1 ]),
            Expr.Ctor ("mac", [ Expr.sym "k"; Expr.int 1 ]) )))

let test_bool_ops () =
  check_bool "and" false Expr.(eval_b (bool true && bool false));
  check_bool "or" true
    (eval_b (Expr.Bin (Expr.Or, Expr.bool false, Expr.bool true)));
  check_bool "not" true (eval_b (Expr.Not (Expr.bool false)))

let test_env_and_subst () =
  let env = Expr.bind "x" (Value.Int 5) Expr.empty_env in
  check_int "variable" 5 (eval_int ~env (Expr.var "x"));
  (try
     ignore (eval (Expr.var "y"));
     Alcotest.fail "expected unbound error"
   with Expr.Eval_error _ -> ());
  let e = Expr.(var "x" + var "y") in
  let resolved =
    Expr.subst (fun n -> if n = "x" then Some (Value.Int 1) else None) e
  in
  Alcotest.(check (list string)) "remaining free var" [ "y" ]
    (Expr.free_vars resolved)

let test_sets () =
  let s = Expr.Set [ Expr.int 3; Expr.int 1; Expr.int 3 ] in
  let vs = Expr.eval_set Expr.no_funcs Expr.empty_env s in
  check_int "dedup sorted" 2 (List.length vs);
  let r = Expr.Range (Expr.int 2, Expr.int 4) in
  check_int "range" 3
    (List.length (Expr.eval_set Expr.no_funcs Expr.empty_env r));
  check_bool "member" true (eval_b (Expr.Mem (Expr.int 3, s)));
  check_bool "not member" false (eval_b (Expr.Mem (Expr.int 2, s)));
  (* scalar/set position confusion *)
  try
    ignore (eval s);
    Alcotest.fail "expected Eval_error"
  with Expr.Eval_error _ -> ()

let test_if () =
  check_int "then" 1 (eval_int (Expr.If (Expr.bool true, Expr.int 1, Expr.int 2)));
  check_int "else" 2 (eval_int (Expr.If (Expr.bool false, Expr.int 1, Expr.int 2)))

let test_functions () =
  let fenv name =
    match name with
    | "double" -> Some ([ "x" ], Expr.(var "x" + var "x"))
    | "fact" ->
      Some
        ( [ "n" ],
          Expr.If
            ( Expr.(var "n" < int 1),
              Expr.int 1,
              Expr.Bin
                ( Expr.Mul,
                  Expr.var "n",
                  Expr.App ("fact", [ Expr.(var "n" - int 1) ]) ) ) )
    | "loop" -> Some ([], Expr.App ("loop", []))
    | _ -> None
  in
  check_int "application" 10
    (Value.as_int (Expr.eval fenv Expr.empty_env (Expr.App ("double", [ Expr.int 5 ]))));
  check_int "recursion" 120
    (Value.as_int (Expr.eval fenv Expr.empty_env (Expr.App ("fact", [ Expr.int 5 ]))));
  (try
     ignore (Expr.eval fenv Expr.empty_env (Expr.App ("loop", [])));
     Alcotest.fail "expected depth guard"
   with Expr.Eval_error _ -> ());
  try
    ignore (Expr.eval fenv Expr.empty_env (Expr.App ("double", [])));
    Alcotest.fail "expected arity error"
  with Expr.Eval_error _ -> ()

let test_ty_dom () =
  let tys : Ty.lookup = function
    | "Small" -> Some (Ty.Alias (Ty.Int_range (0, 2)))
    | _ -> None
  in
  let vs =
    Expr.eval_set ~tys Expr.no_funcs Expr.empty_env
      (Expr.Ty_dom (Ty.Named "Small"))
  in
  check_int "type domain" 3 (List.length vs)

(* Substitution then evaluation agrees with evaluation under an
   environment. *)
let subst_eval_agree =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then
            oneof
              [ map (fun i -> Expr.Lit (Value.Int i)) (int_range (-5) 5);
                return (Expr.Var "x") ]
          else
            frequency
              [
                1, map (fun i -> Expr.Lit (Value.Int i)) (int_range (-5) 5);
                2, return (Expr.Var "x");
                2, map2 (fun a b -> Expr.(a + b)) (self (n / 2)) (self (n / 2));
                2, map2 (fun a b -> Expr.(a - b)) (self (n / 2)) (self (n / 2));
                1, map (fun a -> Expr.Neg a) (self (n - 1));
                1,
                map2
                  (fun a b ->
                    Expr.If (Expr.(a < b), a, b))
                  (self (n / 2)) (self (n / 2));
              ]))
  in
  let arb = QCheck.make ~print:Expr.to_string gen in
  QCheck.Test.make ~count:300 ~name:"subst then eval = eval under env" arb
    (fun e ->
      let v = Value.Int 3 in
      let env = Expr.bind "x" v Expr.empty_env in
      let direct = Expr.eval Expr.no_funcs env e in
      let substituted =
        Expr.eval Expr.no_funcs Expr.empty_env
          (Expr.subst (fun n -> if n = "x" then Some v else None) e)
      in
      Value.equal direct substituted)

let suite =
  ( "expr",
    [
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "division by zero" `Quick test_division_by_zero;
      Alcotest.test_case "comparisons" `Quick test_comparisons;
      Alcotest.test_case "boolean operators" `Quick test_bool_ops;
      Alcotest.test_case "environments and substitution" `Quick
        test_env_and_subst;
      Alcotest.test_case "sets" `Quick test_sets;
      Alcotest.test_case "conditionals" `Quick test_if;
      Alcotest.test_case "user functions" `Quick test_functions;
      Alcotest.test_case "type domains" `Quick test_ty_dom;
      QCheck_alcotest.to_alcotest subst_eval_agree;
    ] )
