(* Hash-consing invariants, and the structural-equality oracle: the
   id-based interner must be observationally identical to a deep
   structural-equality build of every stock check. *)

open Csp
module AT = Security.Attack_tree

let check_string = Alcotest.(check string)

(* every oracle run is parameterised only by the interner choice *)
let cfg interner = Check_config.(default |> with_interner interner)

(* ------------------------------------------------------------------ *)
(* qcheck: equal/hash agree with structural equality                   *)
(* ------------------------------------------------------------------ *)

(* A deep copy through the smart constructors: by the hash-consing
   invariant the copy must come back physically equal. *)
let rec rebuild p =
  match Proc.view p with
  | Proc.Stop -> Proc.stop
  | Proc.Skip -> Proc.skip
  | Proc.Omega -> Proc.omega
  | Proc.Prefix (c, items, k) -> Proc.prefix_items (c, items, rebuild k)
  | Proc.Ext (a, b) -> Proc.ext (rebuild a, rebuild b)
  | Proc.Int (a, b) -> Proc.intc (rebuild a, rebuild b)
  | Proc.Seq (a, b) -> Proc.seq (rebuild a, rebuild b)
  | Proc.Par (a, s, b) -> Proc.par (rebuild a, s, rebuild b)
  | Proc.APar (a, sa, sb, b) -> Proc.apar (rebuild a, sa, sb, rebuild b)
  | Proc.Inter (a, b) -> Proc.inter (rebuild a, rebuild b)
  | Proc.Interrupt (a, b) -> Proc.interrupt (rebuild a, rebuild b)
  | Proc.Timeout (a, b) -> Proc.timeout (rebuild a, rebuild b)
  | Proc.Hide (a, s) -> Proc.hide (rebuild a, s)
  | Proc.Rename (a, m) -> Proc.rename (rebuild a, m)
  | Proc.If (c, a, b) -> Proc.ite (c, rebuild a, rebuild b)
  | Proc.Guard (c, a) -> Proc.guard (c, rebuild a)
  | Proc.Call (n, args) -> Proc.call (n, args)
  | Proc.Ext_over (x, s, a) -> Proc.ext_over (x, s, rebuild a)
  | Proc.Int_over (x, s, a) -> Proc.int_over (x, s, rebuild a)
  | Proc.Inter_over (x, s, a) -> Proc.inter_over (x, s, rebuild a)
  | Proc.Run s -> Proc.run s
  | Proc.Chaos s -> Proc.chaos s

let equal_is_structural =
  QCheck.Test.make ~count:500
    ~name:"Proc.equal and Proc.compare agree with structural equality"
    (QCheck.pair Helpers.arb_proc Helpers.arb_proc)
    (fun (p, q) ->
      Proc.equal p q = Proc.structural_equal p q
      && Proc.compare p q = 0 = Proc.equal p q)

let rebuild_interns_to_same_node =
  QCheck.Test.make ~count:500
    ~name:"a deep rebuild is physically the same term, with the same hash"
    Helpers.arb_proc (fun p ->
      let q = rebuild p in
      p == q && Proc.hash p = Proc.hash q && Proc.id p = Proc.id q
      && Proc.structural_hash p = Proc.structural_hash q)

let noop_subst_is_identity =
  QCheck.Test.make ~count:500
    ~name:"a substitution that binds nothing preserves identity"
    Helpers.arb_proc (fun p -> Proc.subst (fun _ -> None) p == p)

(* ------------------------------------------------------------------ *)
(* Oracle: `Id vs `Structural interning, byte-identical verdicts       *)
(* ------------------------------------------------------------------ *)

(* Canonical rendering of a result, excluding the timing fields (wall_s,
   states_per_sec) that legitimately vary between runs. Everything else —
   verdict, counterexample trace, violating state, structural stats,
   resume hints — must match byte for byte. *)
let render result =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (match result with
   | Refine.Holds s ->
     Format.fprintf ppf "Holds impl=%d spec=%d pairs=%d" s.Refine.impl_states
       s.Refine.spec_nodes s.Refine.pairs
   | Refine.Fails cex -> Format.fprintf ppf "Fails %a" Refine.pp_counterexample cex
   | Refine.Inconclusive (s, hint) ->
     Format.fprintf ppf "Inconclusive impl=%d spec=%d pairs=%d %a"
       s.Refine.impl_states s.Refine.spec_nodes s.Refine.pairs
       Refine.pp_resume_hint hint);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let agree name runs =
  List.iter
    (fun (label, run) ->
      check_string
        (Printf.sprintf "%s/%s: id and structural verdicts identical" name label)
        (render (run `Structural))
        (render (run `Id)))
    runs

let test_requirements_oracle () =
  let s = Ota.Scenario.make () in
  agree "requirements"
    [
      "R01", (fun interner -> Ota.Requirements.r01 ~config:(cfg interner) s);
      "SP02", (fun interner -> Ota.Requirements.r02 ~config:(cfg interner) s);
      "SP02-delivered", (fun interner -> Ota.Requirements.r02_delivered ~config:(cfg interner) s);
      "SP02-liveness", (fun interner -> Ota.Requirements.r02_liveness ~config:(cfg interner) s);
      "R03", (fun interner -> Ota.Requirements.r03 ~config:(cfg interner) s);
      "R04", (fun interner -> Ota.Requirements.r04 ~config:(cfg interner) s);
      "R05v1", (fun interner -> Ota.Requirements.r05 ~config:(cfg interner) s ~version:1);
    ]

let test_requirements_oracle_intruder () =
  (* the intruder scenario makes R05 fail — the Fails side of the suite *)
  let s = Ota.Scenario.make ~check_macs:false ~medium:Ota.Scenario.Intruder () in
  agree "requirements-intruder"
    [
      "R05v1", (fun interner -> Ota.Requirements.r05 ~config:(cfg interner) s ~version:1);
      "SP02", (fun interner -> Ota.Requirements.r02 ~config:(cfg interner) s);
    ]

let test_ns_oracle () =
  agree "needham-schroeder"
    [
      (* the broken protocol fails quickly with Lowe's attack trace *)
      "broken", (fun interner ->
        Security.Ns_protocol.check
          ~config:(Check_config.with_interner interner
                     Security.Ns_protocol.default_config)
          ~fixed:false ());
      (* a pair-budgeted run of the fixed protocol: Inconclusive, but the
         explored prefix and resume hint must still be identical *)
      ( "fixed-budgeted",
        fun interner ->
          let defs, system = Security.Ns_protocol.build ~fixed:true in
          let spec = Security.Ns_protocol.authentication_spec defs in
          Refine.check
            ~config:Check_config.(cfg interner |> with_max_pairs 500)
            defs ~spec ~impl:system );
    ]

let test_attack_tree_oracle () =
  let tree =
    AT.or_node
      [
        AT.ordered_and [ AT.action "capture" []; AT.action "inject" [] ];
        AT.ordered_and [ AT.action "steal_key" []; AT.action "forge" [] ];
      ]
  in
  let make_defs () =
    let defs = Defs.create () in
    List.iter (fun c -> Defs.declare_channel defs c []) (AT.channels tree);
    defs
  in
  let proc = AT.to_proc tree in
  (* the replay branch alone is a trace refinement of the full tree; the
     full tree is not a refinement of the replay branch *)
  let replay_only =
    AT.to_proc (AT.ordered_and [ AT.action "capture" []; AT.action "inject" [] ])
  in
  agree "attack-tree"
    [
      ( "replay-refines-tree",
        fun interner ->
          Refine.traces_refines ~config:(cfg interner) (make_defs ())
            ~spec:proc ~impl:replay_only );
      ( "tree-exceeds-replay",
        fun interner ->
          Refine.traces_refines ~config:(cfg interner) (make_defs ())
            ~spec:replay_only ~impl:proc );
      ( "self-failures",
        fun interner ->
          Refine.failures_refines ~config:(cfg interner) (make_defs ())
            ~spec:proc ~impl:proc );
    ]

let suite =
  ( "hashcons",
    [
      QCheck_alcotest.to_alcotest equal_is_structural;
      QCheck_alcotest.to_alcotest rebuild_interns_to_same_node;
      QCheck_alcotest.to_alcotest noop_subst_is_identity;
      Alcotest.test_case "oracle: secure-update requirements" `Quick
        test_requirements_oracle;
      Alcotest.test_case "oracle: intruder scenario" `Quick
        test_requirements_oracle_intruder;
      Alcotest.test_case "oracle: Needham-Schroeder" `Quick test_ns_oracle;
      Alcotest.test_case "oracle: attack trees" `Quick test_attack_tree_oracle;
    ] )
