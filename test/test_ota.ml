(* Case-study regression tests: the requirement matrix of the paper's
   Table III across the security scenarios, with expected verdicts. *)

let check_bool = Alcotest.(check bool)

let verdicts scenario =
  List.map
    (fun c -> c.Ota.Requirements.id, Csp.Refine.holds c.Ota.Requirements.result)
    (Ota.Requirements.run_all scenario)

let expect scenario expected =
  let actual = verdicts scenario in
  List.iter
    (fun (id, want) ->
      match List.assoc_opt id actual with
      | Some got ->
        check_bool (Printf.sprintf "%s verdict" id) want got
      | None -> Alcotest.failf "missing check %s" id)
    expected

let test_baseline () =
  let s = Ota.Scenario.make () in
  expect s
    [ "R01", true; "R02", true; "R03", true; "R04", true;
      "R05v0", true; "R05v1", true ];
  check_bool "deadlock free" true
    (Csp.Refine.holds (Ota.Scenario.deadlock_result s));
  check_bool "divergence free" true
    (Csp.Refine.holds (Ota.Scenario.divergence_result s))

let test_intruder_mac_protected () =
  let s = Ota.Scenario.make ~medium:Ota.Scenario.Intruder () in
  (* the diagnosis exchange is spoofable (R02 fails: no nonces), but the
     MAC protects the update path *)
  expect s
    [ "R01", true; "R02", false; "R05v0", true; "R05v1", true ]

let test_flawed_ecu_attacked () =
  let s =
    Ota.Scenario.make ~check_macs:false ~medium:Ota.Scenario.Intruder ()
  in
  expect s [ "R05v0", false; "R05v1", false ]

let test_leaked_key () =
  let s = Ota.Scenario.make ~medium:Ota.Scenario.Intruder_with_shared_key () in
  expect s [ "R05v0", false; "R05v1", false ]

let test_attack_trace_shape () =
  let s =
    Ota.Scenario.make ~check_macs:false ~medium:Ota.Scenario.Intruder ()
  in
  match Ota.Requirements.r05 s ~version:1 with
  | Csp.Refine.Fails cex ->
    (* the counterexample ends with the forged installation *)
    (match List.rev cex.Csp.Refine.trace with
     | Csp.Event.Vis { Csp.Event.chan = "installed"; args = [ Csp.Value.Int 1 ] } :: _ -> ()
     | _ -> Alcotest.fail "expected installed.1 at the end of the attack");
    (* and the VMG never sent a valid request in it *)
    check_bool "no legitimate request in the trace" true
      (List.for_all
         (fun l ->
           match l with
           | Csp.Event.Vis { Csp.Event.chan = "send"; args = [ src; _; _ ] } ->
             not (Csp.Value.equal src Ota.Messages.vmg)
           | _ -> true)
         cex.Csp.Refine.trace)
  | Csp.Refine.Holds _ | Csp.Refine.Inconclusive _ ->
    Alcotest.fail "expected the forgery attack"

let test_liveness_split () =
  (* availability (paper Section IV-A1): holds on the reliable medium,
     broken by a dropping intruder — the safety/liveness split *)
  let reliable = Ota.Scenario.make () in
  check_bool "available on the reliable medium" true
    (Csp.Refine.holds (Ota.Requirements.r02_liveness reliable));
  let intruded = Ota.Scenario.make ~medium:Ota.Scenario.Intruder () in
  check_bool "drop attack breaks availability" false
    (Csp.Refine.holds (Ota.Requirements.r02_liveness intruded))

let test_lossy_network () =
  (* tentpole part 3: SP02 survives injected packet loss when observed at
     the delivery point, while the send-point variant breaks (a retry is
     two consecutive reqSw sends) — the expected contrast *)
  let s = Ota.Scenario.make ~medium:Ota.Scenario.Lossy () in
  check_bool "SP02 at the ECU survives packet loss" true
    (Csp.Refine.holds (Ota.Requirements.r02_delivered s));
  check_bool "send-point SP02 is broken by retries" false
    (Csp.Refine.holds (Ota.Requirements.r02 s));
  (* the reliable baseline satisfies both formulations *)
  let baseline = Ota.Scenario.make () in
  check_bool "delivered-form SP02 holds on the baseline" true
    (Csp.Refine.holds (Ota.Requirements.r02_delivered baseline))

let test_extended_scope () =
  let s = Ota.Scenario.make_extended () in
  check_bool "server scope deadlock free" true
    (Csp.Refine.holds (Ota.Scenario.deadlock_result s));
  check_bool "server scope divergence free" true
    (Csp.Refine.holds (Ota.Scenario.divergence_result s))

let test_demo_sources_are_wellformed () =
  let db = Candb.To_capl.msgdb (Candb.Dbc_parser.parse Ota.Capl_sources.dbc) in
  List.iter
    (fun (name, src) ->
      let errs = Capl.Sem.check ~db (Capl.Parser.program src) in
      Alcotest.(check (list string))
        (name ^ " has no semantic errors") []
        (List.map (fun e -> Format.asprintf "%a" Capl.Sem.pp_error e) errs))
    (Ota.Capl_sources.sources @ [ "ECU2", Ota.Capl_sources.ecu_nocheck ])

let test_checksum_matches_model_mac () =
  (* the CAPL checksum and the spec-level MAC agree on validity *)
  List.iter
    (fun v ->
      let tag = Ota.Capl_sources.checksum v in
      check_bool "checksum deterministic" true (tag = Ota.Capl_sources.checksum v);
      check_bool "checksum in tag domain" true (tag >= 0 && tag < 8))
    [ 0; 1; 2; 7 ]

let suite =
  ( "ota",
    [
      Alcotest.test_case "baseline requirement matrix" `Quick test_baseline;
      Alcotest.test_case "intruder with MACs intact" `Quick
        test_intruder_mac_protected;
      Alcotest.test_case "flawed ECU is attacked" `Quick test_flawed_ecu_attacked;
      Alcotest.test_case "leaked shared key" `Quick test_leaked_key;
      Alcotest.test_case "attack trace shape" `Quick test_attack_trace_shape;
      Alcotest.test_case "availability vs drop attacks" `Quick
        test_liveness_split;
      Alcotest.test_case "lossy network with retrying VMG" `Quick
        test_lossy_network;
      Alcotest.test_case "extended server scope" `Quick test_extended_scope;
      Alcotest.test_case "demo CAPL sources well-formed" `Quick
        test_demo_sources_are_wellformed;
      Alcotest.test_case "checksum sanity" `Quick test_checksum_matches_model_mac;
    ] )
