(* Tests for the end-to-end pipeline (Fig. 1) and the translation
   conformance check. *)

open Csp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_build_and_emit () =
  let system = Ota.Capl_sources.build_system () in
  check_int "two nodes" 2 (List.length system.Extractor.Pipeline.nodes);
  let script = Extractor.Pipeline.emit_script system in
  check_bool "channels emitted" true
    (let has sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length script
         && (String.sub script i n = sub || go (i + 1))
       in
       go 0
     in
     has "channel reqSw" && has "ECU_INIT" && has "SYSTEM =")

let test_reload_checks () =
  let system = Ota.Capl_sources.build_system () in
  (* add an assertion to the reloaded script: deadlock-free SYSTEM *)
  let loaded = Extractor.Pipeline.reload system in
  let term = Cspm.Parser.term "SYSTEM" in
  let sys = Cspm.Elaborate.proc_of_term loaded term in
  (* the reloaded model must agree with the in-memory one (the campaign
     ends quiescent, which trace-wise is a deadlock, so the verdict is
     "false" on both sides) *)
  let direct =
    Refine.holds
      (Refine.deadlock_free system.Extractor.Pipeline.defs
         system.Extractor.Pipeline.composed)
  in
  let reloaded =
    Refine.holds (Refine.deadlock_free loaded.Cspm.Elaborate.defs sys)
  in
  check_bool "reloaded verdict matches in-memory verdict" direct reloaded;
  (* and both models have the same bounded trace sets *)
  let t1 =
    Traces.of_lts ~depth:4
      (Lts.compile system.Extractor.Pipeline.defs
         system.Extractor.Pipeline.composed)
  in
  let t2 = Traces.of_lts ~depth:4 (Lts.compile loaded.Cspm.Elaborate.defs sys) in
  check_bool "same traces after the round trip" true
    (Traces.subset t1 t2 && Traces.subset t2 t1)

let test_parse_error_wrapping () =
  (try
     ignore
       (Extractor.Pipeline.build_from_sources ~dbc:"BO_ oops"
          [ "N", "on start { }" ]);
     Alcotest.fail "expected Pipeline_error"
   with Extractor.Pipeline.Pipeline_error _ -> ());
  try
    ignore
      (Extractor.Pipeline.build_from_sources ~dbc:Ota.Capl_sources.dbc
         [ "N", "on message { }" ]);
    Alcotest.fail "expected Pipeline_error"
  with Extractor.Pipeline.Pipeline_error _ -> ()

let test_compose () =
  let p1 = Proc.stop and p2 = Proc.skip in
  (match Proc.view (Extractor.Pipeline.compose []) with
   | Proc.Skip -> ()
   | _ -> Alcotest.fail "empty composition is SKIP");
  (match Proc.view (Extractor.Pipeline.compose [ p1, Eventset.empty ]) with
   | Proc.Stop -> ()
   | _ -> Alcotest.fail "singleton composition is the process itself");
  match
    Proc.view
      (Extractor.Pipeline.compose
         [ p1, Eventset.chan "a"; p2, Eventset.chan "b" ])
  with
  | Proc.APar (_, _, _, _) -> ()
  | _ -> Alcotest.fail "pairs compose with alphabetized parallel"

let test_bus_medium_mode () =
  let config = { Extractor.Extract.default_config with bus_medium = true } in
  let system =
    Extractor.Pipeline.build_from_sources ~config ~dbc:Ota.Capl_sources.dbc
      Ota.Capl_sources.sources
  in
  let defs = system.Extractor.Pipeline.defs in
  check_bool "BUS process defined" true (Option.is_some (Defs.proc defs "BUS"));
  check_bool "tx channel declared" true
    (Option.is_some (Defs.channel_type defs "tx_ECU_rptSw"));
  (* behaviour is preserved through the relay: the diagnosis exchange
     still happens *)
  let spec =
    Security.Properties.alternation ~name:"ALT" defs ~first:"reqSw"
      ~second:"rptSw"
  in
  let hide =
    Eventset.chans
      ("timer_VMG_retry" :: "reqApp" :: "rptUpd"
       :: List.concat_map
            (fun (_, m) -> List.map fst m.Extractor.Extract.tx_channels)
            system.Extractor.Pipeline.nodes)
  in
  check_bool "alternation still holds over the bus" true
    (Refine.holds
       (Refine.traces_refines defs ~spec
          ~impl:(Proc.hide (system.Extractor.Pipeline.composed, hide))))

let test_conformance_accepts_real_run () =
  let system = Ota.Capl_sources.build_system () in
  let sim = Ota.Capl_sources.simulation () in
  let report = Extractor.Conformance.run_and_check system sim in
  check_bool "trace accepted" true report.Extractor.Conformance.accepted;
  check_bool "trace nonempty" true (report.Extractor.Conformance.trace <> [])

let test_conformance_rejects_foreign_trace () =
  let system = Ota.Capl_sources.build_system () in
  (* an rptUpd with no preceding exchange is not a model trace *)
  let bogus = [ Canbus.Frame.make ~id:514 [ 1 ] ] in
  let report = Extractor.Conformance.trace_accepted system bogus in
  check_bool "rejected" false report.Extractor.Conformance.accepted;
  Alcotest.(check (option int)) "at the first event" (Some 0)
    report.Extractor.Conformance.rejected_at

let test_conformance_unknown_ids () =
  let system = Ota.Capl_sources.build_system () in
  let unknown = [ Canbus.Frame.make ~id:0x7FF [] ] in
  check_bool "skipped when tolerated" true
    (Extractor.Conformance.trace_accepted system unknown).Extractor.Conformance.accepted;
  check_bool "rejected when strict" false
    (Extractor.Conformance.trace_accepted ~unknown_ok:false system unknown)
      .Extractor.Conformance.accepted

let test_conformance_flawed_firmware_too () =
  (* the flawed ECU still conforms to the model extracted from it — the
     flaw is in the firmware, not in the translation *)
  let system = Ota.Capl_sources.build_system ~flawed:true () in
  let sim = Ota.Capl_sources.simulation ~flawed:true () in
  let report = Extractor.Conformance.run_and_check system sim in
  check_bool "accepted" true report.Extractor.Conformance.accepted

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "build and emit" `Quick test_build_and_emit;
      Alcotest.test_case "reload and check" `Quick test_reload_checks;
      Alcotest.test_case "parse errors wrapped" `Quick test_parse_error_wrapping;
      Alcotest.test_case "composition" `Quick test_compose;
      Alcotest.test_case "bus-medium mode" `Quick test_bus_medium_mode;
      Alcotest.test_case "conformance: real run accepted" `Quick
        test_conformance_accepts_real_run;
      Alcotest.test_case "conformance: foreign trace rejected" `Quick
        test_conformance_rejects_foreign_trace;
      Alcotest.test_case "conformance: unknown ids" `Quick
        test_conformance_unknown_ids;
      Alcotest.test_case "conformance: flawed firmware conforms" `Quick
        test_conformance_flawed_firmware_too;
    ] )
