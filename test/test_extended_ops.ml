(* Tests for the extended operators (interrupt, sliding choice), the
   determinism check, and DOT export. *)

open Csp
open Helpers

let defs = make_defs ()
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let trans p = Semantics.transitions defs p

let traces_of p = Traces.of_lts ~depth:4 (Lts.compile defs p)

let mem traces tr =
  List.exists (fun t -> List.equal Event.equal_label t tr) traces

let test_interrupt_semantics () =
  let p = Proc.interrupt (send "a" 0 (send "a" 1 Proc.stop), send "b" 0 Proc.skip) in
  let ts = traces_of p in
  check_bool "P runs normally" true (mem ts [ vis "a" 0; vis "a" 1 ]);
  check_bool "interrupt at the start" true (mem ts [ vis "b" 0; Event.Tick ]);
  check_bool "interrupt mid-P" true (mem ts [ vis "a" 0; vis "b" 0; Event.Tick ]);
  check_bool "P does not resume after the interrupt" false
    (mem ts [ vis "b" 0; vis "a" 0 ])

let test_interrupt_tick () =
  (* P terminating ends the whole construct *)
  match trans (Proc.interrupt (Proc.skip, send "b" 0 Proc.stop)) with
  | ts ->
    check_bool "tick available" true
      (List.exists (fun (l, _) -> l = Event.Tick) ts);
    check_bool "interrupt still available" true
      (List.exists (fun (l, _) -> l = vis "b" 0) ts)

let test_timeout_semantics () =
  let p = Proc.timeout (send "a" 0 Proc.stop, send "b" 0 Proc.stop) in
  let ts = traces_of p in
  check_bool "P may act" true (mem ts [ vis "a" 0 ]);
  check_bool "Q may take over" true (mem ts [ vis "b" 0 ]);
  check_bool "P's event commits" false (mem ts [ vis "a" 0; vis "b" 0 ]);
  (* the withdrawal is silent: a tau to Q exists *)
  check_bool "tau withdrawal" true
    (List.exists (fun (l, _) -> l = Event.Tau) (trans p))

let test_timeout_is_not_external_choice () =
  (* in failures, P [> Q may refuse P's initial events; P [] Q may not *)
  let p = send "a" 0 Proc.stop and q = send "b" 0 Proc.stop in
  let slide = Proc.timeout (p, q) in
  let ext = Proc.ext (p, q) in
  check_bool "same traces" true
    (let t1 = traces_of slide and t2 = traces_of ext in
     Traces.subset t1 t2 && Traces.subset t2 t1);
  check_bool "ext refines slide in failures" true
    (Refine.holds (Refine.failures_refines defs ~spec:slide ~impl:ext));
  check_bool "slide does not refine ext in failures" false
    (Refine.holds (Refine.failures_refines defs ~spec:ext ~impl:slide))

let test_cspm_roundtrip_new_ops () =
  let src = "channel a : {0..2}\nchannel b : {0..2}\nP = (a!0 -> STOP) /\\ (b!0 -> STOP)\nQ = (a!0 -> STOP) [> (b!1 -> STOP)" in
  let loaded = Cspm.Elaborate.load_string src in
  let p = Option.get (Defs.proc loaded.Cspm.Elaborate.defs "P") in
  (match Proc.view (snd p) with
   | Proc.Interrupt (_, _) -> ()
   | _ -> Alcotest.fail "expected Interrupt");
  let q = Option.get (Defs.proc loaded.Cspm.Elaborate.defs "Q") in
  (match Proc.view (snd q) with
   | Proc.Timeout (_, _) -> ()
   | _ -> Alcotest.fail "expected Timeout");
  (* print and reload *)
  let printed = Cspm.Print.script loaded.Cspm.Elaborate.defs in
  let reloaded = Cspm.Elaborate.load_string printed in
  check_bool "round trip" true
    (Option.is_some (Defs.proc reloaded.Cspm.Elaborate.defs "P"))

let test_deterministic_check () =
  let det = Proc.ext (send "a" 0 Proc.stop, send "b" 0 Proc.stop) in
  check_bool "external choice is deterministic" true
    (Refine.holds (Refine.deterministic defs det));
  let nondet = Proc.intc (send "a" 0 Proc.stop, send "a" 0 (send "b" 0 Proc.stop)) in
  check_bool "internal choice over a shared initial is not" false
    (Refine.holds (Refine.deterministic defs nondet));
  (* the classic: a -> STOP |~| a -> b -> STOP accepts and refuses b
     after <a> *)
  match Refine.deterministic defs nondet with
  | Refine.Fails { Refine.violation = Refine.Refusal_violation _; _ } -> ()
  | _ -> Alcotest.fail "expected a refusal-style counterexample"

let test_deterministic_assertion () =
  let src =
    "channel a : {0..1}\n\
     DET = a!0 -> DET\n\
     NONDET = (a!0 -> NONDET) |~| (a!0 -> STOP)\n\
     assert DET :[deterministic]\n\
     assert NONDET :[deterministic]"
  in
  let outcomes = Cspm.Check.run (Cspm.Elaborate.load_string src) in
  (match outcomes with
   | [ d; n ] ->
     check_bool "DET passes" true (Refine.holds d.Cspm.Check.result);
     check_bool "NONDET fails" false (Refine.holds n.Cspm.Check.result)
   | _ -> Alcotest.fail "two outcomes expected")

let test_to_dot () =
  let lts = Lts.compile defs (send "a" 0 (Proc.intc (Proc.stop, Proc.skip))) in
  let dot = Lts.to_dot lts in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length dot && (String.sub dot i n = sub || go (i + 1))
    in
    go 0
  in
  check_bool "digraph wrapper" true (has "digraph lts");
  check_bool "event edge" true (has "label=\"a.0\"");
  check_bool "tau edge dashed" true (has "style=dashed");
  check_bool "initial doubled" true (has "peripheries=2");
  (* node lines are exactly the ones carrying a tooltip *)
  let count_sub sub =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length dot then acc
      else if String.sub dot i n = sub then go (i + n) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check_int "one node per state" (Lts.num_states lts) (count_sub "tooltip=")

(* traces(P /\ Q): the paper-style denotational equation, differentially *)
let interrupt_denotational =
  QCheck.Test.make ~count:100 ~name:"interrupt matches denotational traces"
    (QCheck.pair arb_proc arb_proc) (fun (p, q) ->
      let direct = Traces.of_proc ~depth:3 defs (Proc.interrupt (p, q)) in
      let lts = Traces.of_lts ~depth:3 (Lts.compile defs (Proc.interrupt (p, q))) in
      Traces.subset direct lts && Traces.subset lts direct)

let timeout_trace_law =
  QCheck.Test.make ~count:100 ~name:"P [> Q has the traces of P [] Q"
    (QCheck.pair arb_proc arb_proc) (fun (p, q) ->
      let t1 = traces_of (Proc.timeout (p, q)) in
      let t2 = traces_of (Proc.ext (p, q)) in
      Traces.subset t1 t2 && Traces.subset t2 t1)

let suite =
  ( "extended-ops",
    [
      Alcotest.test_case "interrupt semantics" `Quick test_interrupt_semantics;
      Alcotest.test_case "interrupt and termination" `Quick test_interrupt_tick;
      Alcotest.test_case "sliding choice semantics" `Quick test_timeout_semantics;
      Alcotest.test_case "sliding choice vs external choice" `Quick
        test_timeout_is_not_external_choice;
      Alcotest.test_case "CSPm round trip for /\\ and [>" `Quick
        test_cspm_roundtrip_new_ops;
      Alcotest.test_case "determinism check" `Quick test_deterministic_check;
      Alcotest.test_case "determinism assertion" `Quick
        test_deterministic_assertion;
      Alcotest.test_case "DOT export" `Quick test_to_dot;
      QCheck_alcotest.to_alcotest interrupt_denotational;
      QCheck_alcotest.to_alcotest timeout_trace_law;
    ] )
