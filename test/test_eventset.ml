(* Unit tests for symbolic event sets. *)

open Csp

let e c args = Event.event c (List.map (fun n -> Value.Int n) args)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_membership () =
  let s = Eventset.chans [ "send"; "rec" ] in
  check_bool "channel production" true (Eventset.mem s (e "send" [ 1 ]));
  check_bool "other channel" false (Eventset.mem s (e "other" []));
  let ex = Eventset.events [ e "send" [ 1 ]; e "send" [ 2 ] ] in
  check_bool "explicit member" true (Eventset.mem ex (e "send" [ 2 ]));
  check_bool "explicit non-member" false (Eventset.mem ex (e "send" [ 3 ]))

let test_union_diff () =
  let s =
    Eventset.union (Eventset.chan "a") (Eventset.events [ e "b" [ 0 ] ])
  in
  check_bool "union left" true (Eventset.mem s (e "a" [ 9 ]));
  check_bool "union right" true (Eventset.mem s (e "b" [ 0 ]));
  check_bool "union miss" false (Eventset.mem s (e "b" [ 1 ]));
  let d = Eventset.diff (Eventset.chan "a") (Eventset.events [ e "a" [ 1 ] ]) in
  check_bool "diff keeps" true (Eventset.mem d (e "a" [ 0 ]));
  check_bool "diff removes" false (Eventset.mem d (e "a" [ 1 ]))

let test_empty () =
  check_bool "empty" false (Eventset.mem Eventset.empty (e "a" []));
  check_bool "syntactic emptiness" true
    (Eventset.is_empty_syntactically (Eventset.union Eventset.empty Eventset.empty));
  check_bool "chans [] is empty" true
    (Eventset.is_empty_syntactically (Eventset.chans []))

let test_channels_mentioned () =
  let s =
    Eventset.union
      (Eventset.chans [ "b"; "a" ])
      (Eventset.events [ e "c" [ 1 ] ])
  in
  Alcotest.(check (list string)) "sorted channels" [ "a"; "b"; "c" ]
    (Eventset.channels_mentioned s)

let test_enumerate () =
  let chan_events = function
    | "a" -> [ e "a" [ 0 ]; e "a" [ 1 ] ]
    | "b" -> [ e "b" [ 0 ] ]
    | _ -> []
  in
  let s = Eventset.union (Eventset.chans [ "a"; "b" ]) (Eventset.events [ e "a" [ 0 ] ]) in
  check_int "enumerate dedups" 3 (List.length (Eventset.enumerate ~chan_events s));
  let d = Eventset.diff (Eventset.chan "a") (Eventset.events [ e "a" [ 0 ] ]) in
  check_int "enumerate diff" 1 (List.length (Eventset.enumerate ~chan_events d))

let suite =
  ( "eventset",
    [
      Alcotest.test_case "membership" `Quick test_membership;
      Alcotest.test_case "union and difference" `Quick test_union_diff;
      Alcotest.test_case "emptiness" `Quick test_empty;
      Alcotest.test_case "channels mentioned" `Quick test_channels_mentioned;
      Alcotest.test_case "enumeration" `Quick test_enumerate;
    ] )
