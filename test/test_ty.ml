(* Unit tests for Csp.Ty: domain enumeration, membership, limits. *)

open Csp

let no_lookup : Ty.lookup = fun _ -> None

let lookup : Ty.lookup = function
  | "Msg" -> Some (Ty.Variants [ "reqSw", []; "rptSw", [ Ty.Int_range (0, 2) ] ])
  | "Ver" -> Some (Ty.Alias (Ty.Int_range (1, 3)))
  | "Rec" -> Some (Ty.Variants [ "node", [ Ty.Named "Rec" ] ])
  | _ -> None

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_int_range () =
  let dom = Ty.domain no_lookup (Ty.Int_range (2, 5)) in
  check_int "size" 4 (List.length dom);
  check_bool "first" true (Value.equal (List.hd dom) (Value.Int 2));
  check_int "empty range" 0 (List.length (Ty.domain no_lookup (Ty.Int_range (5, 2))))

let test_bool () =
  check_int "bool domain" 2 (List.length (Ty.domain no_lookup Ty.Bool))

let test_datatype () =
  let dom = Ty.domain lookup (Ty.Named "Msg") in
  (* reqSw + rptSw.{0,1,2} *)
  check_int "constructors expand" 4 (List.length dom);
  check_bool "contains reqSw" true
    (List.exists (Value.equal (Value.sym "reqSw")) dom);
  check_bool "contains rptSw.2" true
    (List.exists (Value.equal (Value.Ctor ("rptSw", [ Value.Int 2 ]))) dom)

let test_nametype_alias () =
  let dom = Ty.domain lookup (Ty.Named "Ver") in
  check_int "alias expands" 3 (List.length dom);
  check_bool "alias values are ints" true
    (List.for_all (function Value.Int _ -> true | _ -> false) dom)

let test_tuple () =
  let dom = Ty.domain lookup (Ty.Tuple [ Ty.Bool; Ty.Int_range (0, 1) ]) in
  check_int "product" 4 (List.length dom)

let test_unknown_and_recursive () =
  (try
     ignore (Ty.domain lookup (Ty.Named "Nope"));
     Alcotest.fail "expected Unknown_type"
   with Ty.Unknown_type _ -> ());
  try
    ignore (Ty.domain lookup (Ty.Named "Rec"));
    Alcotest.fail "expected Unknown_type for recursive datatype"
  with Ty.Unknown_type _ -> ()

let test_limit () =
  try
    ignore (Ty.domain ~limit:10 no_lookup (Ty.Int_range (0, 100)));
    Alcotest.fail "expected Domain_too_large"
  with Ty.Domain_too_large _ -> ()

let test_contains () =
  check_bool "in range" true
    (Ty.contains no_lookup (Ty.Int_range (0, 5)) (Value.Int 3));
  check_bool "out of range" false
    (Ty.contains no_lookup (Ty.Int_range (0, 5)) (Value.Int 9));
  check_bool "wrong kind" false
    (Ty.contains no_lookup (Ty.Int_range (0, 5)) (Value.Bool true));
  check_bool "ctor in datatype" true
    (Ty.contains lookup (Ty.Named "Msg") (Value.Ctor ("rptSw", [ Value.Int 1 ])));
  check_bool "ctor arg out of range" false
    (Ty.contains lookup (Ty.Named "Msg") (Value.Ctor ("rptSw", [ Value.Int 7 ])));
  check_bool "unknown ctor" false
    (Ty.contains lookup (Ty.Named "Msg") (Value.sym "other"));
  check_bool "alias membership" true
    (Ty.contains lookup (Ty.Named "Ver") (Value.Int 2));
  check_bool "alias non-membership" false
    (Ty.contains lookup (Ty.Named "Ver") (Value.Int 0))

let test_contains_agrees_with_domain =
  QCheck.Test.make ~count:200 ~name:"contains agrees with domain membership"
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let ty = Ty.Int_range (lo, hi) in
      let dom = Ty.domain no_lookup ty in
      List.for_all
        (fun v ->
          Ty.contains no_lookup ty (Value.Int v)
          = List.exists (Value.equal (Value.Int v)) dom)
        [ lo - 1; lo; (lo + hi) / 2; hi; hi + 1 ])

let suite =
  ( "ty",
    [
      Alcotest.test_case "int ranges" `Quick test_int_range;
      Alcotest.test_case "bool" `Quick test_bool;
      Alcotest.test_case "datatypes" `Quick test_datatype;
      Alcotest.test_case "nametype aliases" `Quick test_nametype_alias;
      Alcotest.test_case "tuples" `Quick test_tuple;
      Alcotest.test_case "unknown and recursive types" `Quick
        test_unknown_and_recursive;
      Alcotest.test_case "domain size limit" `Quick test_limit;
      Alcotest.test_case "contains" `Quick test_contains;
      QCheck_alcotest.to_alcotest test_contains_agrees_with_domain;
    ] )
