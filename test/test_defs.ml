(* Tests for the definition environment itself. *)

open Csp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_duplicates_rejected () =
  let defs = Defs.create () in
  Defs.declare_channel defs "c" [ Ty.Bool ];
  Defs.declare_datatype defs "D" [ "x", [] ];
  Defs.declare_nametype defs "N" (Ty.Int_range (0, 1));
  Defs.define_proc defs "P" [] Proc.stop;
  Defs.define_fun defs "f" [ "a" ] (Expr.var "a");
  let dup f = try f (); false with Defs.Duplicate _ -> true in
  check_bool "channel" true (dup (fun () -> Defs.declare_channel defs "c" []));
  check_bool "type vs datatype" true
    (dup (fun () -> Defs.declare_nametype defs "D" Ty.Bool));
  check_bool "constructor clash" true
    (dup (fun () -> Defs.declare_datatype defs "E" [ "x", [] ]));
  check_bool "process" true (dup (fun () -> Defs.define_proc defs "P" [] Proc.skip));
  check_bool "function" true (dup (fun () -> Defs.define_fun defs "f" [] (Expr.int 0)))

let test_copy_isolation () =
  let defs = Defs.create () in
  Defs.declare_channel defs "c" [ Ty.Bool ];
  let copy = Defs.copy defs in
  Defs.define_proc copy "ONLY_IN_COPY" [] Proc.stop;
  check_bool "copy sees it" true (Option.is_some (Defs.proc copy "ONLY_IN_COPY"));
  check_bool "original does not" true
    (Option.is_none (Defs.proc defs "ONLY_IN_COPY"));
  check_bool "ids differ" true (Defs.id defs <> Defs.id copy)

let test_lookup_surfaces () =
  let defs = Defs.create () in
  Defs.declare_channel defs "c" [ Ty.Int_range (0, 2); Ty.Bool ];
  Defs.declare_datatype defs "Msg" [ "a", []; "b", [ Ty.Bool ] ];
  check_int "channels listed" 1 (List.length (Defs.channels defs));
  check_int "chan_events is the product" 6 (List.length (Defs.chan_events defs "c"));
  check_int "field domain" 3 (List.length (Defs.field_domain defs ~chan:"c" 0));
  (match Defs.find_ctor defs "b" with
   | Some ("Msg", [ Ty.Bool ]) -> ()
   | _ -> Alcotest.fail "constructor lookup");
  check_int "alphabet spans all channels" 6 (List.length (Defs.alphabet defs));
  (try
     ignore (Defs.chan_events defs "nope");
     Alcotest.fail "expected Unknown_channel"
   with Defs.Unknown_channel _ -> ());
  try
    ignore (Defs.field_domain defs ~chan:"c" 5);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_events_of_symbolic_sets () =
  let defs = Defs.create () in
  Defs.declare_channel defs "c" [ Ty.Int_range (0, 3) ];
  Defs.declare_channel defs "d" [] ;
  let set =
    Eventset.diff
      (Eventset.union (Eventset.chan "c") (Eventset.chan "d"))
      (Eventset.events [ Event.event "c" [ Value.Int 0 ] ])
  in
  check_int "enumerated through the environment" 4
    (List.length (Defs.events_of defs set))

let test_domain_limit_respected () =
  let defs = Defs.create ~domain_limit:4 () in
  Defs.declare_channel defs "big" [ Ty.Int_range (0, 100) ];
  try
    ignore (Defs.chan_events defs "big");
    Alcotest.fail "expected Domain_too_large"
  with Ty.Domain_too_large _ -> ()

let suite =
  ( "defs",
    [
      Alcotest.test_case "duplicates rejected" `Quick test_duplicates_rejected;
      Alcotest.test_case "copies are isolated" `Quick test_copy_isolation;
      Alcotest.test_case "lookups" `Quick test_lookup_surfaces;
      Alcotest.test_case "symbolic set enumeration" `Quick
        test_events_of_symbolic_sets;
      Alcotest.test_case "domain limits" `Quick test_domain_limit_respected;
    ] )
