(* Signal packing/unpacking tests, including Motorola byte order and a
   round-trip property. *)

open Capl

let check_int = Alcotest.(check int)

let sig_ ?(order = Msgdb.Little_endian) ?(signed = false) start len =
  {
    Msgdb.sig_name = "s";
    start_bit = start;
    length = len;
    byte_order = order;
    signed;
    minimum = 0;
    maximum = 0;
  }

let test_little_endian_basic () =
  let s = sig_ 0 8 in
  let data = Array.make 8 0 in
  Msgdb.encode_signal s data 0xAB;
  check_int "byte 0" 0xAB data.(0);
  check_int "decode" 0xAB (Msgdb.decode_signal s data)

let test_little_endian_cross_byte () =
  let s = sig_ 4 8 in
  let data = Array.make 8 0 in
  Msgdb.encode_signal s data 0xFF;
  check_int "low nibble of byte 0" 0xF0 data.(0);
  check_int "high nibble into byte 1" 0x0F data.(1);
  check_int "round trip" 0xFF (Msgdb.decode_signal s data)

let test_big_endian () =
  (* Motorola: MSB at start bit 7, 16-bit signal spans bytes 0-1 *)
  let s = sig_ ~order:Msgdb.Big_endian 7 16 in
  let data = Array.make 8 0 in
  Msgdb.encode_signal s data 0x1234;
  check_int "MSB byte first" 0x12 data.(0);
  check_int "LSB byte second" 0x34 data.(1);
  check_int "round trip" 0x1234 (Msgdb.decode_signal s data)

let test_signed_decode () =
  let s = sig_ ~signed:true 0 8 in
  let data = Array.make 8 0 in
  Msgdb.encode_signal s data (-2);
  check_int "two's complement stored" 0xFE data.(0);
  check_int "sign-extended decode" (-2) (Msgdb.decode_signal s data)

let test_errors () =
  let data = Array.make 2 0 in
  (try
     ignore (Msgdb.decode_signal (sig_ 8 16) data);
     Alcotest.fail "expected overrun error"
   with Msgdb.Signal_error _ -> ());
  try
    ignore (Msgdb.decode_signal (sig_ 0 63) (Array.make 8 0));
    Alcotest.fail "expected length error"
  with Msgdb.Signal_error _ -> ()

let test_adjacent_signals_no_clobber () =
  let a = { (sig_ 0 4) with Msgdb.sig_name = "a" } in
  let b = { (sig_ 4 4) with Msgdb.sig_name = "b" } in
  let data = Array.make 1 0 in
  Msgdb.encode_signal a data 0x5;
  Msgdb.encode_signal b data 0xA;
  check_int "a preserved" 0x5 (Msgdb.decode_signal a data);
  check_int "b preserved" 0xA (Msgdb.decode_signal b data);
  (* overwriting clears old bits *)
  Msgdb.encode_signal a data 0x0;
  check_int "a cleared" 0x0 (Msgdb.decode_signal a data);
  check_int "b untouched" 0xA (Msgdb.decode_signal b data)

let roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode round trip"
    QCheck.(
      quad (int_range 0 40) (int_range 1 16) bool
        (pair bool (int_range 0 65535)))
    (fun (start, len, big, (signed, v)) ->
      let order = if big then Msgdb.Big_endian else Msgdb.Little_endian in
      (* keep Motorola start bits inside the frame: the sawtooth walk from
         a low bit index can leave an 8-byte frame, which is an error we
         test separately *)
      let s = sig_ ~order ~signed start len in
      let data = Array.make 8 0 in
      let masked = v land ((1 lsl len) - 1) in
      let expected =
        if signed && masked land (1 lsl (len - 1)) <> 0 then
          masked - (1 lsl len)
        else masked
      in
      match Msgdb.encode_signal s data v with
      | () -> Msgdb.decode_signal s data = expected
      | exception Msgdb.Signal_error _ -> QCheck.assume_fail ())

let suite =
  ( "msgdb",
    [
      Alcotest.test_case "little endian byte" `Quick test_little_endian_basic;
      Alcotest.test_case "little endian across bytes" `Quick
        test_little_endian_cross_byte;
      Alcotest.test_case "big endian (Motorola)" `Quick test_big_endian;
      Alcotest.test_case "signed signals" `Quick test_signed_decode;
      Alcotest.test_case "error cases" `Quick test_errors;
      Alcotest.test_case "adjacent signals" `Quick test_adjacent_signals_no_clobber;
      QCheck_alcotest.to_alcotest roundtrip;
    ] )
