(* Aggregated test runner: one Alcotest suite per module. *)

let () =
  Alcotest.run "ecu_csp"
    [
      Test_value.suite;
      Test_ty.suite;
      Test_expr.suite;
      Test_eventset.suite;
      Test_defs.suite;
      Test_proc.suite;
      Test_semantics.suite;
      Test_lts.suite;
      Test_traces.suite;
      Test_normalise.suite;
      Test_refine.suite;
      Test_cspm.suite;
      Test_capl.suite;
      Test_interp.suite;
      Test_msgdb.suite;
      Test_canbus.suite;
      Test_fault.suite;
      Test_candb.suite;
      Test_template.suite;
      Test_extract.suite;
      Test_pipeline.suite;
      Test_security.suite;
      Test_ota.suite;
      Test_laws.suite;
      Test_conformance_prop.suite;
      Test_extended_ops.suite;
      Test_timed.suite;
      Test_fd.suite;
      Test_productions.suite;
      Test_misc.suite;
      Test_hashcons.suite;
      Test_search_par.suite;
      Test_obs.suite;
      Test_analysis.suite;
      Test_checkpoint.suite;
      Test_serve.suite;
      Test_reduce.suite;
      Test_cache.suite;
      Test_tracecheck.suite;
    ]
