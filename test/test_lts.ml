(* Tests for explicit LTS compilation and graph analyses. *)

open Csp
open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let defs = make_defs ()

let cycle () =
  (* A = a!0 -> b!0 -> A : two states, two transitions *)
  let defs = make_defs () in
  Defs.define_proc defs "A" [] (send "a" 0 (send "b" 0 (Proc.call ("A", []))));
  defs, Proc.call ("A", [])

let test_compile_cycle () =
  let defs, p = cycle () in
  let lts = Lts.compile defs p in
  check_int "states" 2 (Lts.num_states lts);
  check_int "transitions" 2 (Lts.num_transitions lts);
  check_int "initial" 0 lts.Lts.initial

let test_state_limit () =
  let defs, p = cycle () in
  try
    ignore (Lts.compile ~max_states:1 defs p);
    Alcotest.fail "expected State_limit"
  with Lts.State_limit 1 -> ()

let test_deadlocks () =
  let lts = Lts.compile defs (send "a" 0 Proc.stop) in
  check_int "one deadlock state" 1 (List.length (Lts.deadlocks lts));
  (* terminated processes do not count as deadlocked *)
  let lts2 = Lts.compile defs (send "a" 0 Proc.skip) in
  check_int "termination is not deadlock" 0 (List.length (Lts.deadlocks lts2))

let test_tau_closure () =
  let p = Proc.intc (send "a" 0 Proc.stop, Proc.intc (Proc.stop, Proc.skip)) in
  let lts = Lts.compile defs p in
  let closure = Lts.tau_closure lts [ lts.Lts.initial ] in
  (* initial + 2 first-level + 2 second-level = 5 states reachable by tau *)
  check_int "closure size" 5 (List.length closure)

let test_path_to () =
  let p = send "a" 0 (send "b" 1 Proc.stop) in
  let lts = Lts.compile defs p in
  match Lts.trace_path_to lts (fun i -> Lts.transitions_of lts i = []) with
  | Some (trace, _) ->
    check_int "path length" 2 (List.length trace);
    Alcotest.check label "first" (vis "a" 0) (Event.Vis (List.hd trace))
  | None -> Alcotest.fail "expected a path to the deadlock"

let test_divergences () =
  (* P = (a!0 -> P) \ {a} diverges *)
  let defs = make_defs () in
  Defs.define_proc defs "P" [] (send "a" 0 (Proc.call ("P", [])));
  let hidden = Proc.hide (Proc.call ("P", []), Eventset.chan "a") in
  let lts = Lts.compile defs hidden in
  check_bool "tau cycle found" true (Lts.divergences lts <> []);
  let sound = Lts.compile defs (Proc.call ("P", [])) in
  check_int "visible loop does not diverge" 0 (List.length (Lts.divergences sound))

let test_initials_stability () =
  let p = Proc.ext (send "a" 0 Proc.stop, Proc.intc (Proc.stop, Proc.stop)) in
  let lts = Lts.compile defs p in
  check_bool "unstable initial" false (Lts.is_stable lts lts.Lts.initial);
  check_bool "initials include a.0" true
    (List.exists (Event.equal_label (vis "a" 0)) (Lts.initials lts lts.Lts.initial))

let suite =
  ( "lts",
    [
      Alcotest.test_case "compiling recursive processes" `Quick test_compile_cycle;
      Alcotest.test_case "state limit" `Quick test_state_limit;
      Alcotest.test_case "deadlock detection" `Quick test_deadlocks;
      Alcotest.test_case "tau closure" `Quick test_tau_closure;
      Alcotest.test_case "shortest path search" `Quick test_path_to;
      Alcotest.test_case "divergence detection" `Quick test_divergences;
      Alcotest.test_case "initials and stability" `Quick test_initials_stability;
    ] )
