(* Unit tests for the operational semantics: one or more cases per firing
   rule — effectively one per operator row of the paper's Table I, plus
   the extended operators. *)

open Csp
open Helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let defs = make_defs ()

let trans p = Semantics.transitions defs p
let labels p = List.map fst (trans p)

(* nested-term checks go through Proc.view (terms are hash-consed records) *)
let is_prefix_on c p =
  match Proc.view p with
  | Proc.Prefix (c', _, _) -> String.equal c c'
  | _ -> false

let test_stop_skip () =
  check_int "STOP has no transitions" 0 (List.length (trans Proc.stop));
  (match trans Proc.skip with
   | [ (Event.Tick, t) ] when Proc.equal t Proc.omega -> ()
   | _ -> Alcotest.fail "SKIP must tick to Omega");
  check_int "Omega has no transitions" 0 (List.length (trans Proc.omega))

let test_prefix_output () =
  match trans (send "a" 1 Proc.skip) with
  | [ (Event.Vis e, t) ] when Proc.equal t Proc.skip ->
    Alcotest.check label "event" (vis "a" 1) (Event.Vis e)
  | _ -> Alcotest.fail "output prefix must offer exactly its event"

let test_prefix_input_expansion () =
  let p = Proc.prefix_items ("a", [ Proc.In ("x", None) ], Proc.stop) in
  check_int "input expands over the domain" 3 (List.length (trans p));
  (* restricted input *)
  let q =
    Proc.prefix_items
      ("a", [ Proc.In ("x", Some (Expr.Set [ Expr.int 0; Expr.int 2 ])) ], Proc.stop)
  in
  check_int "restriction filters" 2 (List.length (trans q))

let test_prefix_binding_flows () =
  (* c?x -> b!x : the bound value must appear in the continuation *)
  let p =
    Proc.prefix_items
      ("c", [ Proc.In ("x", None) ], Proc.prefix "b" [ Expr.var "x" ] Proc.stop)
  in
  List.iter
    (fun (l, target) ->
      match l, Proc.view target with
      | Event.Vis { Event.args = [ Value.Int v ]; _ },
        Proc.Prefix ("b", [ Proc.Out (Expr.Lit (Value.Int w)) ], _) ->
        check_int "value propagated" v w
      | _ -> Alcotest.fail "unexpected transition shape")
    (trans p)

let test_prefix_arity_mismatch () =
  try
    ignore (trans (Proc.prefix_items ("a", [], Proc.stop)));
    Alcotest.fail "expected Ill_formed"
  with Semantics.Ill_formed _ -> ()

let test_external_choice () =
  let p = Proc.ext (send "a" 0 Proc.stop, send "b" 1 Proc.stop) in
  check_int "both branches offered" 2 (List.length (trans p));
  (* tau on the left keeps the choice *)
  let q = Proc.ext (Proc.intc (send "a" 0 Proc.stop, send "a" 1 Proc.stop), send "b" 1 Proc.stop) in
  let taus =
    List.filter (fun (l, _) -> l = Event.Tau) (trans q)
  in
  check_int "internal choice produces taus" 2 (List.length taus);
  List.iter
    (fun (_, t) ->
      match Proc.view t with
      | Proc.Ext (_, q) when is_prefix_on "b" q -> ()
      | _ -> Alcotest.failf "tau must preserve the choice: %a" Proc.pp t)
    taus

let test_internal_choice () =
  let p = Proc.intc (Proc.stop, Proc.skip) in
  check_int "two taus" 2 (List.length (trans p));
  check_bool "all tau" true (List.for_all (fun (l, _) -> l = Event.Tau) (trans p))

let test_sequential_composition () =
  (* SKIP; P starts P via tau *)
  (match trans (Proc.seq (Proc.skip, send "a" 0 Proc.stop)) with
   | [ (Event.Tau, t) ] when is_prefix_on "a" t -> ()
   | _ -> Alcotest.fail "SKIP; P must tau to P");
  (* a!0 -> SKIP ; b!1 -> STOP keeps the sequence *)
  match trans (Proc.seq (send "a" 0 Proc.skip, send "b" 1 Proc.stop)) with
  | [ (Event.Vis _, t) ]
    when (match Proc.view t with
          | Proc.Seq (l, _) -> Proc.equal l Proc.skip
          | _ -> false) ->
    ()
  | _ -> Alcotest.fail "left events continue the sequence"

let test_parallel_sync () =
  let sync = Eventset.chan "a" in
  (* both must agree on a *)
  let p = Proc.par (send "a" 1 Proc.stop, sync, Proc.prefix_items ("a", [ Proc.In ("x", None) ], Proc.stop)) in
  (match trans p with
   | [ (Event.Vis e, _) ] -> Alcotest.check label "synced" (vis "a" 1) (Event.Vis e)
   | ts -> Alcotest.failf "expected one synchronized event, got %d" (List.length ts));
  (* mismatched values block *)
  let q = Proc.par (send "a" 1 Proc.stop, sync, send "a" 2 Proc.stop) in
  check_int "value mismatch blocks" 0 (List.length (trans q));
  (* events outside the interface interleave *)
  let r = Proc.par (send "b" 0 Proc.stop, sync, send "b" 1 Proc.stop) in
  check_int "free events interleave" 2 (List.length (trans r))

let test_parallel_termination () =
  (* tick requires both sides *)
  let p = Proc.par (Proc.skip, Eventset.empty, Proc.skip) in
  (match trans p with
   | [ (Event.Tick, t) ] when Proc.equal t Proc.omega -> ()
   | _ -> Alcotest.fail "joint termination expected");
  let q = Proc.par (Proc.skip, Eventset.empty, send "a" 0 Proc.skip) in
  check_bool "no early tick" true
    (List.for_all (fun (l, _) -> l <> Event.Tick) (trans q))

let test_alphabetized_parallel () =
  let p =
    Proc.apar
      ( send "a" 0 (send "b" 0 Proc.stop),
        Eventset.chans [ "a"; "b" ],
        Eventset.chan "b",
        Proc.prefix_items ("b", [ Proc.In ("x", None) ], Proc.stop) )
  in
  (* a is left-only: free; b is shared: must sync *)
  (match trans p with
   | [ (Event.Vis e, p') ] ->
     Alcotest.check label "a first" (vis "a" 0) (Event.Vis e);
     (match trans p' with
      | [ (Event.Vis e', _) ] -> Alcotest.check label "b synced" (vis "b" 0) (Event.Vis e')
      | _ -> Alcotest.fail "b must sync")
   | _ -> Alcotest.fail "expected only the a event");
  (* events outside a side's alphabet are blocked *)
  let q =
    Proc.apar (send "b" 0 Proc.stop, Eventset.chan "a", Eventset.chan "b", Proc.stop)
  in
  check_int "out-of-alphabet blocked" 0 (List.length (trans q))

let test_interleaving () =
  let p = Proc.inter (send "a" 0 Proc.stop, send "a" 0 Proc.stop) in
  (* both can fire independently; transitions dedup to the two orders *)
  check_int "interleave" 2 (List.length (trans p));
  check_bool "no sync on events" true
    (List.for_all (fun (l, _) -> Event.is_visible l) (trans p))

let test_hiding () =
  let p = Proc.hide (send "a" 0 (send "b" 1 Proc.stop), Eventset.chan "a") in
  (match trans p with
   | [ (Event.Tau, t) ]
     when (match Proc.view t with
           | Proc.Hide (inner, _) -> is_prefix_on "b" inner
           | _ -> false) ->
     ()
   | _ -> Alcotest.fail "hidden event becomes tau");
  (* tick is never hidden *)
  let q = Proc.hide (Proc.skip, Eventset.chans [ "a"; "b"; "c"; "done_" ]) in
  match trans q with
  | [ (Event.Tick, t) ] when Proc.equal t Proc.omega -> ()
  | _ -> Alcotest.fail "tick passes through hiding"

let test_renaming () =
  let p = Proc.rename (send "a" 1 Proc.stop, [ "a", "b" ]) in
  match trans p with
  | [ (Event.Vis e, _) ] -> Alcotest.check label "renamed" (vis "b" 1) (Event.Vis e)
  | _ -> Alcotest.fail "renaming must relabel"

let test_guard_and_if () =
  check_int "false guard blocks" 0
    (List.length (trans (Proc.guard (Expr.bool false, Proc.skip))));
  (match trans (Proc.guard (Expr.bool true, Proc.skip)) with
   | [ (Event.Tick, _) ] -> ()
   | _ -> Alcotest.fail "true guard is transparent");
  match trans (Proc.ite (Expr.(int 1 < int 2), send "a" 0 Proc.stop, Proc.skip)) with
  | [ (Event.Vis _, _) ] -> ()
  | _ -> Alcotest.fail "if evaluates its condition"

let test_calls_and_recursion () =
  let defs = make_defs () in
  Defs.define_proc defs "LOOP" [ "n" ]
    (Proc.prefix_items
       ( "a",
         [ Proc.Out (Expr.var "n") ],
         Proc.call ("LOOP", [ Expr.Bin (Expr.Mod, Expr.(var "n" + int 1), Expr.int 3) ]) ));
  (match Semantics.transitions defs (Proc.call ("LOOP", [ Expr.int 0 ])) with
   | [ (Event.Vis e, t) ]
     when Proc.equal t (Proc.call ("LOOP", [ Expr.Lit (Value.Int 1) ])) ->
     Alcotest.check label "parameter evaluated" (vis "a" 0) (Event.Vis e)
   | _ -> Alcotest.fail "call must unfold with evaluated arguments");
  (* unguarded recursion is detected *)
  Defs.define_proc defs "BAD" [] (Proc.call ("BAD", []));
  (try
     ignore (Semantics.transitions defs (Proc.call ("BAD", [])));
     Alcotest.fail "expected Unguarded"
   with Semantics.Unguarded _ -> ());
  (* unknown process *)
  try
    ignore (Semantics.transitions defs (Proc.call ("NOPE", [])));
    Alcotest.fail "expected Ill_formed"
  with Semantics.Ill_formed _ -> ()

let test_run_chaos () =
  let p = Proc.run (Eventset.chan "c") in
  check_int "RUN offers the whole alphabet" 2 (List.length (trans p));
  check_bool "RUN self-loops" true
    (List.for_all (fun (_, t) -> Proc.equal t p) (trans p));
  let q = Proc.chaos (Eventset.chan "c") in
  check_int "CHAOS adds a tau to STOP" 3 (List.length (trans q));
  check_bool "CHAOS can deadlock" true
    (List.exists (fun (l, t) -> l = Event.Tau && Proc.equal t Proc.stop) (trans q))

let test_initials_stability () =
  let p = Proc.ext (send "a" 0 Proc.stop, Proc.intc (Proc.stop, Proc.stop)) in
  check_bool "int makes it unstable" false (Semantics.is_stable defs p);
  check_bool "prefix is stable" true (Semantics.is_stable defs (send "a" 0 Proc.stop));
  check_int "initials dedup" 1
    (List.length (sorted_initials defs (Proc.ext (send "a" 0 Proc.stop, send "a" 0 Proc.skip))))

let test_cached_equivalence () =
  let step = Semantics.make_cached defs in
  let p = Proc.par (send "a" 1 Proc.skip, Eventset.chan "a", Proc.prefix_items ("a", [ Proc.In ("x", None) ], Proc.skip)) in
  let t1 = step p in
  let t2 = step p in
  check_bool "cached result identical" true (t1 == t2);
  check_int "matches uncached" (List.length (trans p)) (List.length t1)

let suite =
  ( "semantics",
    [
      Alcotest.test_case "STOP, SKIP, Omega" `Quick test_stop_skip;
      Alcotest.test_case "output prefix" `Quick test_prefix_output;
      Alcotest.test_case "input expansion" `Quick test_prefix_input_expansion;
      Alcotest.test_case "input binding flows" `Quick test_prefix_binding_flows;
      Alcotest.test_case "prefix arity checking" `Quick test_prefix_arity_mismatch;
      Alcotest.test_case "external choice" `Quick test_external_choice;
      Alcotest.test_case "internal choice" `Quick test_internal_choice;
      Alcotest.test_case "sequential composition" `Quick test_sequential_composition;
      Alcotest.test_case "generalized parallel" `Quick test_parallel_sync;
      Alcotest.test_case "distributed termination" `Quick test_parallel_termination;
      Alcotest.test_case "alphabetized parallel" `Quick test_alphabetized_parallel;
      Alcotest.test_case "interleaving" `Quick test_interleaving;
      Alcotest.test_case "hiding" `Quick test_hiding;
      Alcotest.test_case "renaming" `Quick test_renaming;
      Alcotest.test_case "guards and conditionals" `Quick test_guard_and_if;
      Alcotest.test_case "calls and recursion" `Quick test_calls_and_recursion;
      Alcotest.test_case "RUN and CHAOS" `Quick test_run_chaos;
      Alcotest.test_case "initials and stability" `Quick test_initials_stability;
      Alcotest.test_case "memoized transitions" `Quick test_cached_equivalence;
    ] )
