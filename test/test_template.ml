(* Tests for the StringTemplate-style engine. *)

open Extractor

let check_string = Alcotest.(check string)

let test_scalars () =
  let t = Template.parse "channel $name$ : $ty$" in
  check_string "substitution" "channel send : Msg"
    (Template.render t
       [ "name", Template.Scalar "send"; "ty", Template.Scalar "Msg" ]);
  Alcotest.(check (list string)) "attributes" [ "name"; "ty" ]
    (Template.attributes t)

let test_lists_and_separators () =
  let t = Template.parse "datatype Msg = $ctors; separator=\" | \"$" in
  check_string "joined" "datatype Msg = reqSw | rptSw"
    (Template.render t [ "ctors", Template.List [ "reqSw"; "rptSw" ] ])

let test_escape () =
  let t = Template.parse "cost: $$$amount$" in
  check_string "dollar escape" "cost: $5"
    (Template.render t [ "amount", Template.Scalar "5" ])

let test_errors () =
  let expect_error f =
    try
      ignore (f ());
      Alcotest.fail "expected Template_error"
    with Template.Template_error _ -> ()
  in
  expect_error (fun () -> Template.parse "$unterminated");
  expect_error (fun () -> Template.render (Template.parse "$x$") []);
  expect_error (fun () ->
      Template.render (Template.parse "$x$") [ "x", Template.List [] ]);
  expect_error (fun () ->
      Template.render
        (Template.parse "$x; separator=\",\"$")
        [ "x", Template.Scalar "v" ]);
  expect_error (fun () -> Template.parse "$x; frobnicate=\"y\"$")

let test_groups () =
  let g =
    Template.group
      [ "chan", "channel $n$"; "proc", "$n$ = STOP" ]
  in
  check_string "lookup and render" "channel c"
    (Template.render_in g "chan" [ "n", Template.Scalar "c" ]);
  check_string "second member" "P = STOP"
    (Template.render_in g "proc" [ "n", Template.Scalar "P" ]);
  try
    ignore (Template.lookup g "missing");
    Alcotest.fail "expected Template_error"
  with Template.Template_error _ -> ()

let suite =
  ( "template",
    [
      Alcotest.test_case "scalar substitution" `Quick test_scalars;
      Alcotest.test_case "list separators" `Quick test_lists_and_separators;
      Alcotest.test_case "dollar escaping" `Quick test_escape;
      Alcotest.test_case "error handling" `Quick test_errors;
      Alcotest.test_case "template groups" `Quick test_groups;
    ] )
