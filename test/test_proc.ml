(* Unit tests for process terms: substitution, free variables,
   const-folding, replicated-choice expansion. *)

open Csp

let check_bool = Alcotest.(check bool)
let check_proc msg expected actual = Alcotest.check Helpers.proc_testable msg expected actual

let test_free_vars () =
  let p =
    Proc.prefix_items
      ( "a",
        [ Proc.Out (Expr.var "x") ],
        Proc.prefix_items ("b", [ Proc.In ("y", None) ], Proc.prefix "a" [ Expr.var "y" ] Proc.stop) )
  in
  Alcotest.(check (list string)) "x free, y bound" [ "x" ] (Proc.free_vars p);
  let q = Proc.ext_over ("z", Expr.Range (Expr.int 0, Expr.var "n"), Proc.prefix "a" [ Expr.var "z" ] Proc.stop) in
  Alcotest.(check (list string)) "set expr free, binder bound" [ "n" ]
    (Proc.free_vars q)

let test_subst_shadowing () =
  (* substitution must not cross the binder for the same name *)
  let p =
    Proc.ext
      ( Proc.prefix "a" [ Expr.var "x" ] Proc.stop,
        Proc.prefix_items ("b", [ Proc.In ("x", None) ], Proc.prefix "a" [ Expr.var "x" ] Proc.stop) )
  in
  let resolved = Proc.subst (fun n -> if n = "x" then Some (Value.Int 1) else None) p in
  let expected =
    Proc.ext
      ( Proc.prefix_items ("a", [ Proc.Out (Expr.Lit (Value.Int 1)) ], Proc.stop),
        Proc.prefix_items
          ( "b",
            [ Proc.In ("x", None) ],
            Proc.prefix_items ("a", [ Proc.Out (Expr.var "x") ], Proc.stop) ) )
  in
  check_proc "outer x substituted, bound x untouched" expected resolved

let test_subst_prefix_scope () =
  (* within one communication, earlier binders scope over later fields *)
  let defs = Defs.create () in
  Defs.declare_channel defs "p" [ Ty.Int_range (0, 1); Ty.Int_range (0, 1) ];
  let proc =
    Proc.prefix_items
      ( "p",
        [ Proc.In ("x", None); Proc.In ("y", Some (Expr.Set [ Expr.var "x" ])) ],
        Proc.stop )
  in
  (* substituting x from outside must not touch the restriction *)
  let r = Proc.subst (fun n -> if n = "x" then Some (Value.Int 0) else None) proc in
  check_proc "inner x untouched" proc r

let test_const_fold () =
  let fold = Proc.const_fold Expr.no_funcs in
  check_proc "if true" (Proc.send "a" [ Value.Int 1 ] Proc.stop)
    (fold (Proc.ite (Expr.bool true, Proc.send "a" [ Value.Int 1 ] Proc.stop, Proc.skip)));
  check_proc "if false" Proc.skip
    (fold (Proc.ite (Expr.bool false, Proc.stop, Proc.skip)));
  check_proc "guard false" Proc.stop (fold (Proc.guard (Expr.bool false, Proc.skip)));
  check_proc "guard true" Proc.skip (fold (Proc.guard (Expr.bool true, Proc.skip)));
  check_proc "closed arithmetic folds"
    (Proc.send "a" [ Value.Int 2 ] Proc.stop)
    (fold (Proc.prefix "a" [ Expr.(int 1 + int 1) ] Proc.stop));
  (* expressions under binders stay *)
  let p = Proc.prefix_items ("a", [ Proc.In ("x", None) ], Proc.prefix "b" [ Expr.(var "x" + int 1) ] Proc.stop) in
  check_proc "open expr kept" p (fold p)

let test_replicated_expansion () =
  let fold = Proc.const_fold Expr.no_funcs in
  let body = Proc.prefix "a" [ Expr.var "i" ] Proc.stop in
  let expanded = fold (Proc.ext_over ("i", Expr.Range (Expr.int 0, Expr.int 1), body)) in
  check_proc "ext over {0,1}"
    (Proc.ext (Proc.send "a" [ Value.Int 0 ] Proc.stop, Proc.send "a" [ Value.Int 1 ] Proc.stop))
    expanded;
  check_proc "ext over empty = STOP" Proc.stop
    (fold (Proc.ext_over ("i", Expr.Set [], body)));
  check_proc "interleave over empty = SKIP" Proc.skip
    (fold (Proc.inter_over ("i", Expr.Set [], body)));
  check_proc "int over empty = STOP" Proc.stop
    (fold (Proc.int_over ("i", Expr.Set [], body)))

let test_size_and_pp () =
  let p = Proc.ext (Proc.stop, Proc.seq (Proc.skip, Proc.skip)) in
  Alcotest.(check int) "size" 5 (Proc.size p);
  check_bool "pp mentions []" true
    (String.length (Proc.to_string p) > 0)

let suite =
  ( "proc",
    [
      Alcotest.test_case "free variables" `Quick test_free_vars;
      Alcotest.test_case "substitution avoids capture" `Quick
        test_subst_shadowing;
      Alcotest.test_case "prefix binder scope" `Quick test_subst_prefix_scope;
      Alcotest.test_case "const folding" `Quick test_const_fold;
      Alcotest.test_case "replicated choice expansion" `Quick
        test_replicated_expansion;
      Alcotest.test_case "size and printing" `Quick test_size_and_pp;
    ] )
