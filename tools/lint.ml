(* Source lint, the formatting gate `dune runtest` enforces in lieu of
   ocamlformat (not available in every build environment): no tab
   characters, no trailing whitespace, and a final newline in every
   OCaml source file under the directories given on the command line. *)

let failures = ref 0

let complain path line msg =
  incr failures;
  Printf.eprintf "%s:%d: %s\n" path line msg

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Bare [int_of_string]/[float_of_string] raise [Failure] on malformed or
   overflowing input; library code must use the [_opt] forms and turn
   [None] into a positioned error. Enforced under lib/ only — tests,
   tools, and benches parse input they control. *)
let banned_conversions = [ "int_of_string"; "float_of_string" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let lint_conversions path contents =
  let n = String.length contents in
  let line_of pos =
    let l = ref 1 in
    String.iteri (fun j c -> if j < pos && c = '\n' then incr l) contents;
    !l
  in
  List.iter
    (fun name ->
      let ln = String.length name in
      let rec scan from =
        if from < n then
          match String.index_from_opt contents from name.[0] with
          | None -> ()
          | Some i ->
            if
              i + ln <= n
              && String.sub contents i ln = name
              && (i = 0 || not (is_ident_char contents.[i - 1]))
              && not (i + ln + 4 <= n && String.sub contents (i + ln) 4 = "_opt")
            then
              complain path (line_of i)
                (Printf.sprintf "bare %s (use %s_opt and report a positioned \
                                 error)" name name);
            scan (i + 1)
      in
      scan 0)
    banned_conversions

(* Observability discipline: [lib/obs] owns the clock ({!Obs.now}) and the
   sinks; the rest of the library must neither read wall time directly nor
   print to stdout, or the zero-cost-when-silent and byte-identical-output
   guarantees silently rot. The check is textual, so even a doc-comment
   mention trips it — link {!Obs.now} instead. *)
let banned_effects = [ "Unix.gettimeofday"; "Printf.printf" ]

let under_obs path =
  List.mem "obs" (String.split_on_char '/' path)

let lint_effects path contents =
  let n = String.length contents in
  let line_of pos =
    let l = ref 1 in
    String.iteri (fun j c -> if j < pos && c = '\n' then incr l) contents;
    !l
  in
  List.iter
    (fun name ->
      let ln = String.length name in
      let rec scan from =
        if from < n then
          match String.index_from_opt contents from name.[0] with
          | None -> ()
          | Some i ->
            if
              i + ln <= n
              && String.sub contents i ln = name
              && (i = 0 || not (is_ident_char contents.[i - 1]))
              && (i + ln = n || not (is_ident_char contents.[i + ln]))
            then
              complain path (line_of i)
                (Printf.sprintf
                   "%s outside lib/obs (route clocks and output through Obs)"
                   name);
            scan (i + 1)
      in
      scan 0)
    banned_effects

(* Interruption discipline: [lib/serve] owns signal handling (the
   cancellation token plumbing) and the only legitimate blocking sleeps
   (retry backoff, the daemon's idle poll). Anywhere else under lib/, an
   installed handler would fight the CLIs' graceful-degradation handlers
   and a sleep would stall a search domain. Textual, like the effects
   lint: even a doc-comment mention trips it — link {!Serve.Signals}
   instead. *)
let banned_interruption =
  [ "Sys.signal"; "Sys.set_signal"; "Unix.sleep"; "Unix.sleepf" ]

let under_serve path =
  List.mem "serve" (String.split_on_char '/' path)

let lint_interruption path contents =
  let n = String.length contents in
  let line_of pos =
    let l = ref 1 in
    String.iteri (fun j c -> if j < pos && c = '\n' then incr l) contents;
    !l
  in
  List.iter
    (fun name ->
      let ln = String.length name in
      let rec scan from =
        if from < n then
          match String.index_from_opt contents from name.[0] with
          | None -> ()
          | Some i ->
            if
              i + ln <= n
              && String.sub contents i ln = name
              && (i = 0 || not (is_ident_char contents.[i - 1]))
              && (i + ln = n || not (is_ident_char contents.[i + ln]))
            then
              complain path (line_of i)
                (Printf.sprintf
                   "%s outside lib/serve (route signals and sleeps through \
                    Serve)"
                   name);
            scan (i + 1)
      in
      scan 0)
    banned_interruption

(* Digest discipline: [lib/csp/cache.ml] owns every cache key and
   fingerprint, so the producer and consumer of a digest can never drift
   apart (a key computed one way and looked up another is a silent 0%
   hit rate, not an error). Anywhere else under lib/, [Digest] is a
   sign a key is being minted outside the cache module — route it
   through [Csp.Cache]. Textual, like the other discipline lints. *)
let under_cache path = Filename.basename path = "cache.ml"
                       || Filename.basename path = "cache.mli"

let lint_digest path contents =
  let n = String.length contents in
  let line_of pos =
    let l = ref 1 in
    String.iteri (fun j c -> if j < pos && c = '\n' then incr l) contents;
    !l
  in
  let name = "Digest." in
  let ln = String.length name in
  let rec scan from =
    if from < n then
      match String.index_from_opt contents from name.[0] with
      | None -> ()
      | Some i ->
        if
          i + ln <= n
          && String.sub contents i ln = name
          && (i = 0 || not (is_ident_char contents.[i - 1]))
        then
          complain path (line_of i)
            "Digest outside lib/csp/cache (mint cache keys and fingerprints \
             through Csp.Cache)";
        scan (i + 1)
  in
  scan 0

(* Durable-output discipline: [lib/serve] owns file writing — [Fsio] for
   the atomic + durable primitive, [Trace_io] for the NDJSON corpus
   codec on top of it. An [open_out] anywhere else under lib/ is a
   torn-write and fsync bug waiting to happen (and for NDJSON, a second
   ad-hoc codec); route it through [Serve.Fsio], or [Serve.Trace_io] for
   can-trace/1 data. Reading is not confined — parsers legitimately open
   their own inputs. Textual, like the other discipline lints. *)
let banned_writers = [ "open_out"; "open_out_bin"; "open_out_gen" ]

let lint_writers path contents =
  let n = String.length contents in
  let line_of pos =
    let l = ref 1 in
    String.iteri (fun j c -> if j < pos && c = '\n' then incr l) contents;
    !l
  in
  List.iter
    (fun name ->
      let ln = String.length name in
      let rec scan from =
        if from < n then
          match String.index_from_opt contents from name.[0] with
          | None -> ()
          | Some i ->
            if
              i + ln <= n
              && String.sub contents i ln = name
              && (i = 0 || not (is_ident_char contents.[i - 1]))
              && (i + ln = n || not (is_ident_char contents.[i + ln]))
            then
              complain path (line_of i)
                (Printf.sprintf
                   "%s outside lib/serve (write through Serve.Fsio; NDJSON \
                    corpora through Serve.Trace_io)"
                   name);
            scan (i + 1)
      in
      scan 0)
    banned_writers

(* Library code must not kill the process or trip the always-on assertion
   machinery: raise [Invalid_argument]/a domain exception and let the CLI
   decide the exit code. [exit] is only flagged in call position (next
   non-space char is a digit or an opening parenthesis) so record fields
   named [exit] and prose mentions stay legal; the qualified form is
   always a call. *)
let lint_termination path contents =
  let n = String.length contents in
  let line_of pos =
    let l = ref 1 in
    String.iteri (fun j c -> if j < pos && c = '\n' then incr l) contents;
    !l
  in
  let scan_literal name msg =
    let ln = String.length name in
    let rec scan from =
      if from < n then
        match String.index_from_opt contents from name.[0] with
        | None -> ()
        | Some i ->
          if
            i + ln <= n
            && String.sub contents i ln = name
            && (i = 0 || not (is_ident_char contents.[i - 1]))
            && (i + ln = n || not (is_ident_char contents.[i + ln]))
          then complain path (line_of i) msg;
          scan (i + 1)
    in
    scan 0
  in
  scan_literal "Stdlib.exit"
    "Stdlib.exit under lib/ (raise and let the CLI choose the exit code)";
  scan_literal ("assert" ^ " false")
    "assertion of false under lib/ (use invalid_arg with a message)";
  (* bare [exit] in call position *)
  let rec scan from =
    if from < n then
      match String.index_from_opt contents from 'e' with
      | None -> ()
      | Some i ->
        (if
           i + 4 <= n
           && String.sub contents i 4 = "exit"
           && (i = 0
               || (not (is_ident_char contents.[i - 1]))
                  && contents.[i - 1] <> '.')
         then
           let rec next_visible j =
             if j >= n then None
             else if contents.[j] = ' ' || contents.[j] = '\n' then
               next_visible (j + 1)
             else Some contents.[j]
           in
           match next_visible (i + 4) with
           | Some ('0' .. '9' | '(') ->
             complain path (line_of i)
               "exit under lib/ (raise and let the CLI choose the exit code)"
           | _ -> ());
        scan (i + 1)
  in
  scan 0

(* Structural-identity discipline: [Proc.t] and [Expr.t] are hash-consed
   (resp. interned), so the polymorphic operations are wrong on them —
   [Stdlib.compare]/[Hashtbl.hash] see unique ids and cached hash fields,
   making equal terms compare unequal across interners, and they walk the
   whole DAG as a tree. Under lib/csp, a line that reaches for a generic
   operation while naming [Proc.]/[Expr.], or a comparator-functor body
   whose [type t] is [Proc.t]/[Expr.t], must use the modules' own
   [compare]/[equal]/[hash]. The defining modules are exempt: they are
   the one place the representation may be inspected. *)
let under_csp path = List.mem "csp" (String.split_on_char '/' path)

let defines_identity path =
  match Filename.basename path with
  | "proc.ml" | "proc.mli" | "expr.ml" | "expr.mli" -> true
  | _ -> false

let poly_ops =
  [
    "Stdlib.compare";
    "Hashtbl.hash";
    "List.sort compare";
    "sort_uniq compare";
    "stable_sort compare";
  ]

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

let lint_poly_compare path contents =
  let window = ref 0 in
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      if contains line "= Proc.t" || contains line "= Expr.t" then
        window := 6;
      let hazard =
        List.exists (contains line) poly_ops
        || (!window > 0
            && (contains line "= compare" || contains line "= (=)"))
      in
      if
        hazard
        && (!window > 0 || contains line "Proc." || contains line "Expr.")
      then
        complain path lno
          "polymorphic compare/hash on hash-consed terms (use \
           Proc.compare/equal/hash or the Expr equivalents)";
      if !window > 0 then decr window)
    (String.split_on_char '\n' contents)

(* Every implementation under lib/ carries an interface: the .mli is where
   invariants live and what keeps internal helpers out of the dependency
   surface. Pure-AST modules (basename ending in "ast.ml") are exempt —
   their whole point is an exposed concrete type. *)
let lint_interface path =
  let base = Filename.basename path in
  let exempt =
    let suffix = "ast.ml" in
    String.length base >= String.length suffix
    && String.sub base
         (String.length base - String.length suffix)
         (String.length suffix)
       = suffix
  in
  if (not exempt) && not (Sys.file_exists (path ^ "i")) then
    complain path 1 "missing interface file (.mli) for library module"

let lint_file ~strict path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  (* dune drops interface stubs for executables next to the sources *)
  if not (starts_with "(* Auto-generated by Dune *)" contents) then begin
    if n > 0 && contents.[n - 1] <> '\n' then
      complain path 1 "no newline at end of file";
    let line = ref 1 in
    String.iteri
      (fun i c ->
        if c = '\t' then complain path !line "tab character";
        if c = '\n' then begin
          if i > 0 && contents.[i - 1] = ' ' then
            complain path !line "trailing whitespace";
          incr line
        end)
      contents;
    if strict then begin
      lint_conversions path contents;
      lint_termination path contents;
      if Filename.check_suffix path ".ml" then lint_interface path;
      if not (under_obs path) then lint_effects path contents;
      if not (under_serve path) then begin
        lint_interruption path contents;
        lint_writers path contents
      end;
      if not (under_cache path) then lint_digest path contents;
      if under_csp path && not (defines_identity path) then
        lint_poly_compare path contents
    end
  end

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec walk ~strict path =
  if Sys.is_directory path then
    Array.iter
      (fun entry ->
        if entry <> "_build" && entry.[0] <> '.' then
          walk ~strict (Filename.concat path entry))
      (Sys.readdir path)
  else if is_source path then lint_file ~strict path

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then walk ~strict:(Filename.basename arg = "lib") arg)
    Sys.argv;
  if !failures > 0 then begin
    Printf.eprintf "lint: %d problem(s)\n" !failures;
    exit 1
  end;
  print_endline "lint: ok"
