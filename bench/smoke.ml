(* Smoke bench: a seconds-scale end-to-end pass over the robustness
   features, wired into `dune runtest`. It is a health check, not a
   measurement — it exercises fault injection on the demo network and the
   budgeted refinement engine with a deliberately tiny budget, and fails
   loudly if either regresses. *)

let fail fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

let check_fault_injection () =
  let sim = Ota.Capl_sources.simulation () in
  let plan = Canbus.Fault.plan ~seed:42 ~drop:0.1 () in
  let fault = Canbus.Fault.install (Capl.Simulation.bus sim) plan in
  Capl.Simulation.start sim;
  ignore (Capl.Simulation.run ~until_ms:200 sim);
  let stats = Canbus.Fault.stats fault in
  if stats.Canbus.Fault.drops = 0 then
    fail "fault smoke: a 10%% drop plan injected nothing";
  let log = Capl.Simulation.log sim in
  if Canbus.Trace_log.faults log = [] then
    fail "fault smoke: no Fault entries reached the trace log";
  Format.printf "fault injection: %d drops, %d retransmissions, %d log entries@."
    stats.Canbus.Fault.drops stats.Canbus.Fault.retransmissions
    (Canbus.Trace_log.length log)

let check_budgeted_engine () =
  (* a tiny wall-clock budget on the stock large check must degrade to an
     inconclusive verdict with real progress, never an exception *)
  match Security.Ns_protocol.check ~deadline:0.001 ~fixed:true () with
  | Csp.Refine.Inconclusive (stats, hint) ->
    if
      stats.Csp.Refine.impl_states = 0
      && stats.Csp.Refine.spec_nodes = 0
      && stats.Csp.Refine.pairs = 0
    then fail "budget smoke: inconclusive verdict carries no progress";
    Format.printf "budgeted engine: INCONCLUSIVE after %a@."
      Csp.Refine.pp_resume_hint hint
  | Csp.Refine.Holds _ ->
    fail "budget smoke: 1 ms unexpectedly completed the NS check"
  | Csp.Refine.Fails _ -> fail "budget smoke: fixed NS must not fail"

let check_engine_agreement () =
  (* the unified engine under hash-consed ids must agree with the deep
     structural-equality oracle on the stock checks, including the
     exploration counts (timing aside, the searches are the same search) *)
  let digest result =
    match result with
    | Csp.Refine.Holds s ->
      Printf.sprintf "holds/%d/%d/%d" s.Csp.Refine.impl_states
        s.Csp.Refine.spec_nodes s.Csp.Refine.pairs
    | Csp.Refine.Fails cex ->
      Format.asprintf "fails/%a" Csp.Refine.pp_counterexample cex
    | Csp.Refine.Inconclusive (s, _) ->
      Printf.sprintf "inconclusive/%d/%d/%d" s.Csp.Refine.impl_states
        s.Csp.Refine.spec_nodes s.Csp.Refine.pairs
  in
  let s = Ota.Scenario.make () in
  let checks =
    [
      "SP02", (fun interner -> Ota.Requirements.r02 ~interner s);
      "R05v1", (fun interner -> Ota.Requirements.r05 ~interner s ~version:1);
      ( "NS-broken",
        fun interner -> Security.Ns_protocol.check ~interner ~fixed:false () );
    ]
  in
  List.iter
    (fun (name, run) ->
      let id = digest (run `Id) and structural = digest (run `Structural) in
      if not (String.equal id structural) then
        fail "engine smoke: %s disagrees across interners:\n  id: %s\n  st: %s"
          name id structural;
      let head =
        match String.index_opt id '\n' with
        | Some i -> String.sub id 0 i
        | None -> id
      in
      Format.printf "engine agreement: %s -> %s@." name head)
    checks

let check_parallel_agreement () =
  (* the domain-pool engine must be the same search: identical verdicts,
     counterexamples, and exploration counts at -j 2 as sequentially *)
  let digest result =
    match result with
    | Csp.Refine.Holds s ->
      Printf.sprintf "holds/%d/%d/%d" s.Csp.Refine.impl_states
        s.Csp.Refine.spec_nodes s.Csp.Refine.pairs
    | Csp.Refine.Fails cex ->
      Format.asprintf "fails/%a" Csp.Refine.pp_counterexample cex
    | Csp.Refine.Inconclusive (s, _) ->
      Printf.sprintf "inconclusive/%d/%d/%d" s.Csp.Refine.impl_states
        s.Csp.Refine.spec_nodes s.Csp.Refine.pairs
  in
  let s = Ota.Scenario.make () in
  let checks =
    [
      "SP02", (fun workers -> Ota.Requirements.r02 ~workers s);
      "R05v1", (fun workers -> Ota.Requirements.r05 ~workers s ~version:1);
      ( "NS-broken",
        fun workers -> Security.Ns_protocol.check ~workers ~fixed:false () );
    ]
  in
  List.iter
    (fun (name, run) ->
      let seq = digest (run 1) and par = digest (run 2) in
      if not (String.equal seq par) then
        fail "engine smoke: %s disagrees at -j 2:\n  j1: %s\n  j2: %s" name seq
          par;
      Format.printf "parallel agreement: %s -> ok at -j 2@." name)
    checks

let () =
  check_fault_injection ();
  check_budgeted_engine ();
  check_engine_agreement ();
  check_parallel_agreement ();
  print_endline "smoke: ok"
