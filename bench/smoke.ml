(* Smoke bench: a seconds-scale end-to-end pass over the robustness
   features, wired into `dune runtest`. It is a health check, not a
   measurement — it exercises fault injection on the demo network, the
   budgeted refinement engine with a deliberately tiny budget, the JSON
   output schema, and the observability stream, and fails loudly if any
   of them regresses. *)

let fail fmt = Format.kasprintf (fun m -> prerr_endline m; exit 1) fmt

let check_fault_injection () =
  let sim = Ota.Capl_sources.simulation () in
  let plan = Canbus.Fault.plan ~seed:42 ~drop:0.1 () in
  let fault = Canbus.Fault.install (Capl.Simulation.bus sim) plan in
  Capl.Simulation.start sim;
  ignore (Capl.Simulation.run ~until_ms:200 sim);
  let stats = Canbus.Fault.stats fault in
  if stats.Canbus.Fault.drops = 0 then
    fail "fault smoke: a 10%% drop plan injected nothing";
  let log = Capl.Simulation.log sim in
  if Canbus.Trace_log.faults log = [] then
    fail "fault smoke: no Fault entries reached the trace log";
  Format.printf "fault injection: %d drops, %d retransmissions, %d log entries@."
    stats.Canbus.Fault.drops stats.Canbus.Fault.retransmissions
    (Canbus.Trace_log.length log)

let check_budgeted_engine () =
  (* a tiny wall-clock budget on the stock large check must degrade to an
     inconclusive verdict with real progress, never an exception *)
  let config =
    Csp.Check_config.with_deadline 0.001 Security.Ns_protocol.default_config
  in
  match Security.Ns_protocol.check ~config ~fixed:true () with
  | Csp.Refine.Inconclusive (stats, hint) ->
    if
      stats.Csp.Refine.impl_states = 0
      && stats.Csp.Refine.spec_nodes = 0
      && stats.Csp.Refine.pairs = 0
    then fail "budget smoke: inconclusive verdict carries no progress";
    Format.printf "budgeted engine: INCONCLUSIVE after %a@."
      Csp.Refine.pp_resume_hint hint
  | Csp.Refine.Holds _ ->
    fail "budget smoke: 1 ms unexpectedly completed the NS check"
  | Csp.Refine.Fails _ -> fail "budget smoke: fixed NS must not fail"

let check_reduction_speedup () =
  (* the default reduction pipeline must never make the stock NS check
     slower than the raw engine it replaces — the tentpole's one-line
     contract. The raw run takes seconds and the reduced one tens of
     milliseconds, so a plain comparison has miles of margin. *)
  let time config =
    let t0 = Obs.now () in
    (match Security.Ns_protocol.check ~config ~fixed:true () with
     | Csp.Refine.Holds _ -> ()
     | Csp.Refine.Fails _ -> fail "reduction smoke: fixed NS must not fail"
     | Csp.Refine.Inconclusive _ ->
       fail "reduction smoke: unbudgeted NS came back inconclusive");
    Obs.now () -. t0
  in
  let raw =
    time
      Csp.Check_config.(
        Security.Ns_protocol.default_config |> with_reductions [])
  in
  let reduced = time Security.Ns_protocol.default_config in
  if reduced > raw then
    fail
      "reduction smoke: the default pipeline made NS slower (%.0f ms \
       reduced vs %.0f ms raw)"
      (reduced *. 1e3) (raw *. 1e3);
  Format.printf "reductions: NS %.0f ms raw -> %.0f ms reduced@."
    (raw *. 1e3) (reduced *. 1e3)

let digest result =
  match result with
  | Csp.Refine.Holds s ->
    Printf.sprintf "holds/%d/%d/%d" s.Csp.Refine.impl_states
      s.Csp.Refine.spec_nodes s.Csp.Refine.pairs
  | Csp.Refine.Fails cex ->
    Format.asprintf "fails/%a" Csp.Refine.pp_counterexample cex
  | Csp.Refine.Inconclusive (s, _) ->
    Printf.sprintf "inconclusive/%d/%d/%d" s.Csp.Refine.impl_states
      s.Csp.Refine.spec_nodes s.Csp.Refine.pairs

let check_engine_agreement () =
  (* the unified engine under hash-consed ids must agree with the deep
     structural-equality oracle on the stock checks, including the
     exploration counts (timing aside, the searches are the same search) *)
  let s = Ota.Scenario.make () in
  let cfg interner = Csp.Check_config.(default |> with_interner interner) in
  let ns_cfg interner =
    Csp.Check_config.with_interner interner Security.Ns_protocol.default_config
  in
  let checks =
    [
      "SP02", (fun i -> Ota.Requirements.r02 ~config:(cfg i) s);
      "R05v1", (fun i -> Ota.Requirements.r05 ~config:(cfg i) s ~version:1);
      ( "NS-broken",
        fun i -> Security.Ns_protocol.check ~config:(ns_cfg i) ~fixed:false ()
      );
    ]
  in
  List.iter
    (fun (name, run) ->
      let id = digest (run `Id) and structural = digest (run `Structural) in
      if not (String.equal id structural) then
        fail "engine smoke: %s disagrees across interners:\n  id: %s\n  st: %s"
          name id structural;
      let head =
        match String.index_opt id '\n' with
        | Some i -> String.sub id 0 i
        | None -> id
      in
      Format.printf "engine agreement: %s -> %s@." name head)
    checks

let check_parallel_agreement () =
  (* the domain-pool engine must be the same search: identical verdicts,
     counterexamples, and exploration counts at -j 2 as sequentially *)
  let s = Ota.Scenario.make () in
  let cfg workers = Csp.Check_config.(default |> with_workers workers) in
  let ns_cfg workers =
    Csp.Check_config.with_workers workers Security.Ns_protocol.default_config
  in
  let checks =
    [
      "SP02", (fun w -> Ota.Requirements.r02 ~config:(cfg w) s);
      "R05v1", (fun w -> Ota.Requirements.r05 ~config:(cfg w) s ~version:1);
      ( "NS-broken",
        fun w -> Security.Ns_protocol.check ~config:(ns_cfg w) ~fixed:false ()
      );
    ]
  in
  List.iter
    (fun (name, run) ->
      let seq = digest (run 1) and par = digest (run 2) in
      if not (String.equal seq par) then
        fail "engine smoke: %s disagrees at -j 2:\n  j1: %s\n  j2: %s" name seq
          par;
      Format.printf "parallel agreement: %s -> ok at -j 2@." name)
    checks

let check_cache_warm_speedup () =
  (* the LTS cache's one-line contract: re-checking an unchanged model
     against a warm cache skips compile/normalise/reduce and lands on a
     stored graph, so it must be far faster than the cold run — and the
     verdict digest must be identical, cold, warm, and cache-free. The
     cold NS run spends ~100 ms in the pipeline and the warm one only
     searches a 3-state product, so a 5x floor has miles of margin. *)
  (* the model is built once, outside the timed region: elaboration cost
     is identical on both legs and is not what the cache removes *)
  let defs, impl = Security.Ns_protocol.build ~fixed:true in
  let spec = Security.Ns_protocol.authentication_spec defs in
  let uncached =
    digest
      (Csp.Refine.traces_refines ~config:Security.Ns_protocol.default_config
         defs ~spec ~impl)
  in
  let cache = Csp.Cache.create () in
  let config =
    Csp.Check_config.with_cache cache Security.Ns_protocol.default_config
  in
  let time () =
    let t0 = Obs.now () in
    let d = digest (Csp.Refine.traces_refines ~config defs ~spec ~impl) in
    d, Obs.now () -. t0
  in
  let cold_digest, cold = time () in
  let warm_digest, warm = time () in
  if not (String.equal uncached cold_digest && String.equal uncached warm_digest)
  then
    fail "cache smoke: verdicts diverged:\n  off:  %s\n  cold: %s\n  warm: %s"
      uncached cold_digest warm_digest;
  let s = Csp.Cache.stats cache in
  if s.Csp.Cache.hits = 0 then
    fail "cache smoke: the warm re-check never hit the cache";
  if warm *. 5. > cold then
    fail "cache smoke: warm re-check is not 5x faster (%.1f ms cold, %.1f ms \
          warm)"
      (cold *. 1e3) (warm *. 1e3);
  Format.printf "cache: NS %.1f ms cold -> %.1f ms warm (%d hits)@."
    (cold *. 1e3) (warm *. 1e3) s.Csp.Cache.hits

(* A small CSPm script with one passing, one failing, and (under a 1-pair
   budget elsewhere) potentially inconclusive assertion — enough to
   exercise every verdict arm of the JSON schema. *)
let json_script =
  "channel a : {0..1}\n\
   SPEC = a!0 -> SPEC\n\
   IMPL = a!0 -> IMPL\n\
   WILD = a!0 -> a!1 -> WILD\n\
   assert SPEC [T= IMPL\n\
   assert SPEC [T= WILD"

let check_json_output () =
  (* the machine-readable document must parse back and agree with the
     pretty-printer's counts — the schema is a contract, not a dump *)
  let outcomes = Cspm.Check.run (Cspm.Elaborate.load_string json_script) in
  let doc = Obs.Json.to_string (Cspm.Check.json_of_outcomes outcomes) in
  let json =
    match Obs.Json.parse doc with
    | Ok j -> j
    | Error msg -> fail "json smoke: emitted document does not parse: %s" msg
  in
  let member name j =
    match Obs.Json.member name j with
    | Some v -> v
    | None -> fail "json smoke: missing member %S" name
  in
  let to_int j =
    match Obs.Json.to_int j with
    | Some n -> n
    | None -> fail "json smoke: expected an integer"
  in
  (match Obs.Json.to_str (member "schema" json) with
   | Some "cspm-check/1" -> ()
   | _ -> fail "json smoke: schema tag is not cspm-check/1");
  let summary = member "summary" json in
  let total = to_int (member "total" summary) in
  let passed = to_int (member "passed" summary) in
  let failed = to_int (member "failed" summary) in
  let inconclusive = to_int (member "inconclusive" summary) in
  let count p = List.length (List.filter p outcomes) in
  let pretty_failed =
    count (fun o ->
        match o.Cspm.Check.result with Csp.Refine.Fails _ -> true | _ -> false)
  in
  let pretty_inconclusive =
    count (fun o -> Csp.Refine.inconclusive o.Cspm.Check.result)
  in
  if total <> List.length outcomes then
    fail "json smoke: summary.total %d <> %d outcomes" total
      (List.length outcomes);
  if failed <> pretty_failed || inconclusive <> pretty_inconclusive then
    fail "json smoke: summary (%d failed, %d inconclusive) disagrees with \
          pretty counts (%d, %d)"
      failed inconclusive pretty_failed pretty_inconclusive;
  if passed + failed + inconclusive <> total then
    fail "json smoke: summary does not partition the assertions";
  (match Obs.Json.member "assertions" json with
   | Some (Obs.Json.List l) when List.length l = total -> ()
   | _ -> fail "json smoke: assertions array missing or wrong length");
  Format.printf "json output: %d assertions, %d failed — schema ok@." total
    failed

(* A script with known lint findings: the diagnostics/1 document behind
   `cspm_check --lint --format json` must parse back, carry its schema
   tag, and have a summary that partitions the diagnostics — and the CAPL
   lint must produce the same document shape. *)
let check_lint_schema () =
  let member name j =
    match Obs.Json.member name j with
    | Some v -> v
    | None -> fail "lint smoke: missing member %S" name
  in
  let to_int j =
    match Obs.Json.to_int j with
    | Some n -> n
    | None -> fail "lint smoke: expected an integer"
  in
  let validate label diags =
    let doc = Obs.Json.to_string (Analysis.Diag.json_of_list diags) in
    let json =
      match Obs.Json.parse doc with
      | Ok j -> j
      | Error msg -> fail "lint smoke: %s document does not parse: %s" label msg
    in
    (match Obs.Json.to_str (member "schema" json) with
     | Some "diagnostics/1" -> ()
     | _ -> fail "lint smoke: %s schema tag is not diagnostics/1" label);
    let listed =
      match member "diagnostics" json with
      | Obs.Json.List l -> l
      | _ -> fail "lint smoke: %s diagnostics is not an array" label
    in
    if List.length listed <> List.length diags then
      fail "lint smoke: %s array length %d <> %d diagnostics" label
        (List.length listed) (List.length diags);
    List.iter
      (fun d ->
        List.iter
          (fun field ->
            match Obs.Json.member field d with
            | Some (Obs.Json.Str _) -> ()
            | _ ->
              fail "lint smoke: %s diagnostic lacks string field %S" label
                field)
          [ "code"; "severity"; "message" ])
      listed;
    let summary = member "summary" json in
    let total = to_int (member "total" summary) in
    let parts =
      to_int (member "errors" summary)
      + to_int (member "warnings" summary)
      + to_int (member "infos" summary)
    in
    if total <> List.length diags || parts <> total then
      fail "lint smoke: %s summary does not partition (%d of %d)" label parts
        total;
    total
  in
  let cspm_diags =
    Analysis.Cspm_analyze.analyze_loaded ~file:"smoke.csp"
      (Cspm.Elaborate.load_string
         "channel a : {0..1}\n\
          channel ghost : {0..1}\n\
          P = P [] a!0 -> P\n\
          assert P :[deadlock free]\n")
  in
  if cspm_diags = [] then fail "lint smoke: CSPm fixture produced nothing";
  let cspm_total = validate "cspm" cspm_diags in
  let capl_diags =
    Analysis.Capl_lint.lint
      ~db:(Candb.To_capl.msgdb (Candb.Dbc_parser.parse Ota.Capl_sources.dbc))
      ~name:"smoke"
      (Capl.Parser.program
         "variables { message Bogus m; timer tick; }\n\
          on start { setTimer(tick, 5); }\n")
  in
  if capl_diags = [] then fail "lint smoke: CAPL fixture produced nothing";
  let capl_total = validate "capl" capl_diags in
  Format.printf "lint schema: %d cspm + %d capl diagnostics — schema ok@."
    cspm_total capl_total

let check_dataflow_lint () =
  (* The interprocedural dataflow lint must catch the tag-skipping ECU
     (CAPL102 on the flawed firmware), stay silent on the conformant
     one, and cost static-analysis money, not model-checking money. *)
  let parse srcs =
    List.map (fun (name, src) -> name, Capl.Parser.program src) srcs
  in
  let flawed = parse Ota.Capl_sources.sources_flawed
  and fixed = parse Ota.Capl_sources.sources in
  let t0 = Obs.now () in
  let flawed_diags = Analysis.Capl_lint.lint_nodes flawed in
  let fixed_diags = Analysis.Capl_lint.lint_nodes fixed in
  let wall_ms = (Obs.now () -. t0) *. 1e3 in
  let with_code code ds =
    List.filter (fun d -> d.Analysis.Diag.code = code) ds
  in
  if with_code "CAPL102" flawed_diags = [] then
    fail "dataflow smoke: the tag-skipping ECU drew no CAPL102";
  let taint =
    with_code "CAPL101" fixed_diags @ with_code "CAPL102" fixed_diags
  in
  if taint <> [] then
    fail "dataflow smoke: conformant firmware drew %d taint diagnostic(s)"
      (List.length taint);
  if wall_ms >= 50. then
    fail "dataflow smoke: linting both firmwares took %.1f ms (budget 50)"
      wall_ms;
  Format.printf
    "dataflow lint: flawed firmware flagged, fixed clean, %.1f ms@." wall_ms

let check_trace_stream () =
  (* the observability stream must (a) not change the verdict and (b) be
     line-by-line parseable JSON containing the pipeline spans *)
  let silent = digest (Security.Ns_protocol.check ~fixed:false ()) in
  let path = Filename.temp_file "smoke_trace" ".jsonl" in
  let oc = open_out path in
  let obs = Obs.create (Obs.Jsonl oc) in
  let config = Csp.Check_config.with_obs obs Security.Ns_protocol.default_config in
  let traced = digest (Security.Ns_protocol.check ~config ~fixed:false ()) in
  Obs.flush obs;
  close_out oc;
  if not (String.equal silent traced) then
    fail "trace smoke: verdict changed under the JSONL sink:\n  %s\n  %s"
      silent traced;
  let ic = open_in path in
  let spans = ref [] and lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match Obs.Json.parse line with
       | Error msg -> fail "trace smoke: line %d is not JSON: %s" !lines msg
       | Ok json ->
         (match Obs.Json.(member "ev" json, member "name" json) with
          | Some (Obs.Json.Str "span"), Some (Obs.Json.Str name) ->
            spans := name :: !spans
          | _ -> ())
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  if !lines = 0 then fail "trace smoke: the JSONL stream is empty";
  List.iter
    (fun required ->
      if not (List.mem required !spans) then
        fail "trace smoke: no %S span in the stream" required)
    [ "lts.compile"; "normalise"; "search.product" ];
  Format.printf "trace stream: %d lines, %d spans — parseable@." !lines
    (List.length !spans)

(* Three interleaved mod-16 counters: 4096 implementation states, so the
   engine's 256-commit poll cadence fires many times — interruptible by
   cancellation token or a micro-deadline, unlike the tiny NS model. *)
let counter_script =
  "channel x : {0..15}\n\
   channel y : {0..15}\n\
   channel z : {0..15}\n\
   P(n) = x!n -> P((n+1)%16)\n\
   Q(n) = y!n -> Q((n+3)%16)\n\
   R(n) = z!n -> R((n+5)%16)\n\
   SYS = P(0) ||| Q(0) ||| R(0)\n\
   SPEC = x?v -> SPEC [] y?v -> SPEC [] z?v -> SPEC\n\
   assert SPEC [T= SYS\n"

let check_checkpoint_resume () =
  (* interrupt mid-search via the cancellation token, round-trip the
     checkpoint through its wire format, resume: the verdict must be the
     uninterrupted one *)
  let loaded = Cspm.Elaborate.load_string counter_script in
  (* reductions off throughout this leg: the subject is the interrupt
     machinery, and the default pipeline collapses counter_script's
     accept-everything spec below the poll cadence *)
  let raw = Csp.Check_config.(default |> with_reductions []) in
  let baseline =
    List.map
      (fun o -> digest o.Cspm.Check.result)
      (Cspm.Check.run ~config:raw loaded)
  in
  let polls = ref 0 in
  let config =
    Csp.Check_config.(
      raw
      |> with_cancel (fun () ->
             incr polls;
             !polls >= 2))
  in
  let _, stop = Cspm.Check.run_seq ~config loaded in
  match stop with
  | None -> fail "checkpoint smoke: the cancellation token never bit"
  | Some s ->
    let cp =
      match s.Cspm.Check.search with
      | Some cp -> cp
      | None -> fail "checkpoint smoke: interrupt left no engine checkpoint"
    in
    let cp =
      let encoded = Obs.Json.to_string (Csp.Search.json_of_checkpoint cp) in
      match Obs.Json.parse encoded with
      | Error msg -> fail "checkpoint smoke: does not re-parse: %s" msg
      | Ok json -> (
        match Csp.Search.checkpoint_of_json json with
        | Ok cp -> cp
        | Error msg -> fail "checkpoint smoke: does not round-trip: %s" msg)
    in
    let resumed, stop' =
      Cspm.Check.run_seq ~start:s.Cspm.Check.next_index ~resume_first:cp
        ~config:raw loaded
    in
    if stop' <> None then fail "checkpoint smoke: the resume was interrupted";
    let final = List.map (fun o -> digest o.Cspm.Check.result) resumed in
    if final <> baseline then
      fail "checkpoint smoke: resumed verdicts diverged:\n  base: %s\n  res:  %s"
        (String.concat "; " baseline) (String.concat "; " final);
    Format.printf "checkpoint resume: interrupted then resumed -> %s@."
      (String.concat "; " final)

(* One accept-everything requirement over the demo network's channels:
   enough to drive the trace-check path end to end without depending on
   the fault draw. *)
let trace_spec_script =
  "channel reqSw : {0..3}\n\
   channel rptSw : {0..7}\n\
   channel reqApp : {0..7}.{0..7}\n\
   channel rptUpd : {0..7}\n\
   SPEC_ANY = reqSw?p -> SPEC_ANY [] rptSw?v -> SPEC_ANY\n\
   \  [] reqApp?v?t -> SPEC_ANY [] rptUpd?v -> SPEC_ANY\n"

let check_tracecheck_throughput () =
  (* the streaming engine's floor: single-domain trace containment on
     the NS authentication spec must clear 100k events/s — a step is one
     hashtable probe, so missing this means the engine regressed by
     orders of magnitude, not that the host is slow *)
  let defs, _impl = Security.Ns_protocol.build ~fixed:true in
  let spec = Security.Ns_protocol.authentication_spec defs in
  let checker =
    match Csp.Tracecheck.compile defs spec with
    | Ok c -> c
    | Error msg -> fail "tracecheck smoke: compile failed: %s" msg
  in
  (* synthesize valid streams by walking the spec's own normal form, so
     every verdict must come back Accepted *)
  let norm = Csp.Normalise.normalise (Csp.Lts.compile defs spec) in
  let stream i len =
    let labels = ref [] in
    let node = ref (Csp.Normalise.initial norm) in
    (try
       for k = 0 to len - 1 do
         let vis =
           List.filter
             (fun (l, _) ->
               match l with Csp.Event.Vis _ -> true | _ -> false)
             (Csp.Normalise.afters norm !node)
         in
         match vis with
         | [] -> raise Exit
         | choices ->
           let l, next = List.nth choices ((i + k) mod List.length choices) in
           labels := l :: !labels;
           node := next
       done
     with Exit -> ());
    Array.of_list (List.rev !labels)
  in
  let streams =
    Array.init 200 (fun i ->
        Printf.sprintf "t%03d" i, Array.to_seq (stream i 1000))
  in
  let _, summary = Csp.Tracecheck.check_streams checker streams in
  if summary.Csp.Tracecheck.rejected > 0 then
    fail "tracecheck smoke: %d synthesized spec traces were rejected"
      summary.Csp.Tracecheck.rejected;
  if summary.Csp.Tracecheck.events < 10_000 then
    fail "tracecheck smoke: synthesizer produced only %d events"
      summary.Csp.Tracecheck.events;
  if summary.Csp.Tracecheck.events_per_sec < 100_000. then
    fail "tracecheck smoke: %.0f events/s is below the 100k floor"
      summary.Csp.Tracecheck.events_per_sec;
  Format.printf "tracecheck engine: %d events, %d streams, %.2fM events/s@."
    summary.Csp.Tracecheck.events summary.Csp.Tracecheck.streams
    (summary.Csp.Tracecheck.events_per_sec /. 1e6)

let check_trace_schemas () =
  (* can-trace/1 and trace-check/1 are contracts: a generated corpus must
     read back with its header intact and zero malformed lines, and the
     report document must carry its schema tag, its counts, and be
     byte-stable across runs (timing fields aside) *)
  let path = Filename.temp_file "smoke_corpus" ".ndjson" in
  ignore (Ota.Corpus.generate ~seed:5 ~streams:8 ~until_ms:150 ~path ());
  (match Serve.Trace_io.read_header ~path with
   | Ok h when h.Serve.Trace_io.generator = Some Ota.Corpus.generator_name ->
     ()
   | Ok _ -> fail "trace schema smoke: corpus header lost its generator"
   | Error msg -> fail "trace schema smoke: corpus header: %s" msg);
  let loaded = Cspm.Elaborate.load_string trace_spec_script in
  let map, requirements =
    match
      Serve.Trace_run.prepare ~script:loaded ~specs:[] ~dbc:None ~corpus:path
        ()
    with
    | Ok v -> v
    | Error msg -> fail "trace schema smoke: prepare: %s" msg
  in
  let run () =
    match Serve.Trace_run.check_corpus ~map ~requirements ~path () with
    | Ok r -> r
    | Error msg -> fail "trace schema smoke: check_corpus: %s" msg
  in
  let report = run () in
  if report.Serve.Trace_run.malformed > 0 then
    fail "trace schema smoke: %d malformed lines in a fresh corpus"
      report.Serve.Trace_run.malformed;
  if not (Serve.Trace_run.passed report) then
    fail "trace schema smoke: SPEC_ANY rejected a generated stream";
  let doc = Obs.Json.to_string (Serve.Trace_run.json_of_report report) in
  let json =
    match Obs.Json.parse doc with
    | Ok j -> j
    | Error msg -> fail "trace schema smoke: report does not parse: %s" msg
  in
  (match Obs.Json.to_str (Option.get (Obs.Json.member "schema" json)) with
   | Some "trace-check/1" -> ()
   | _ -> fail "trace schema smoke: schema tag is not trace-check/1");
  List.iter
    (fun field ->
      match Option.bind (Obs.Json.member field json) Obs.Json.to_int with
      | Some _ -> ()
      | None -> fail "trace schema smoke: report lacks integer field %S" field)
    [
      "streams"; "streams_accepted"; "streams_rejected"; "entries"; "events";
      "skipped"; "faults"; "malformed";
    ];
  (match Obs.Json.member "requirements" json with
   | Some (Obs.Json.List l) when List.length l = List.length requirements -> ()
   | _ -> fail "trace schema smoke: requirements array missing or wrong size");
  let stable r = Obs.Json.to_string (Serve.Trace_run.json_of_report ~timing:false r) in
  if not (String.equal (stable report) (stable (run ()))) then
    fail "trace schema smoke: two identical runs produced different documents";
  Sys.remove path;
  Format.printf
    "trace schemas: %d entries -> %d events, report stable — schema ok@."
    report.Serve.Trace_run.entries report.Serve.Trace_run.events

let check_daemon () =
  (* the supervised runner end to end: a passing job, a failing job, and
     a job whose first deadline is far below one poll interval — it must
     retry with backoff, resume from its checkpoint, and still reach the
     uninterrupted verdict; the drain must be clean *)
  let events = ref [] in
  let cfg =
    {
      (Serve.Runner.default_config ~emit:(fun j -> events := j :: !events)) with
      Serve.Runner.backoff_base_s = 0.005;
      backoff_max_s = 0.02;
    }
  in
  let t = Serve.Runner.create cfg in
  let job ?deadline_s ?max_retries ?reductions id script =
    {
      Serve.Protocol.id;
      source = Serve.Protocol.Inline script;
      kind = Serve.Protocol.Check;
      version = Serve.Protocol.V2;
      deadline_s;
      workers = 1;
      max_states = None;
      max_retries;
      reductions;
      lint = false;
      deny_warnings = false;
    }
  in
  Serve.Runner.submit t
    (job "ok" "channel a : {0..1}\nP = a!0 -> P\nassert P [T= P\n");
  Serve.Runner.submit t (job "bad" json_script);
  Serve.Runner.submit t
    (job ~deadline_s:1e-5 ~max_retries:30 ~reductions:"none" "slow"
       counter_script);
  (* a trace-check job rides the same queue: generate a tiny corpus and
     let the kind dispatch route it through Trace_run *)
  let corpus_path = Filename.temp_file "smoke_corpus" ".ndjson" in
  ignore
    (Ota.Corpus.generate ~seed:5 ~streams:6 ~until_ms:150 ~path:corpus_path ());
  Serve.Runner.submit t
    {
      (job "trace" trace_spec_script) with
      Serve.Protocol.kind =
        Serve.Protocol.Trace_check
          { corpus = corpus_path; specs = []; dbc = None };
    };
  Serve.Runner.drain t;
  Sys.remove corpus_path;
  let evs = List.rev !events in
  let name j =
    match Obs.Json.member "event" j with
    | Some (Obs.Json.Str s) -> s
    | _ -> "?"
  in
  let str k j =
    match Obs.Json.member k j with Some (Obs.Json.Str s) -> Some s | _ -> None
  in
  let verdicts id =
    match
      List.find_opt (fun e -> name e = "result" && str "id" e = Some id) evs
    with
    | None -> fail "daemon smoke: no result event for job %S" id
    | Some r -> (
      match
        Option.bind (Obs.Json.member "report" r) (Obs.Json.member "assertions")
      with
      | Some (Obs.Json.List l) ->
        List.map (fun a -> Option.value (str "verdict" a) ~default:"?") l
      | _ -> fail "daemon smoke: job %S has no assertions array" id)
  in
  if verdicts "ok" <> [ "pass" ] then
    fail "daemon smoke: job ok should pass, got %s"
      (String.concat "," (verdicts "ok"));
  if verdicts "bad" <> [ "pass"; "fail" ] then
    fail "daemon smoke: job bad should go pass,fail, got %s"
      (String.concat "," (verdicts "bad"));
  if verdicts "slow" <> [ "pass" ] then
    fail "daemon smoke: the resumed job should reach pass, got %s"
      (String.concat "," (verdicts "slow"));
  (* the trace-check result carries stream verdict counts, not assertions *)
  (match
     List.find_opt (fun e -> name e = "result" && str "id" e = Some "trace") evs
   with
   | None -> fail "daemon smoke: no result event for the trace-check job"
   | Some r ->
     let count k =
       match Obs.Json.member k r with
       | Some (Obs.Json.Num f) -> int_of_float f
       | _ -> fail "daemon smoke: trace-check result lacks %S" k
     in
     if count "streams" <> 6 || count "accepted" <> 6 || count "rejected" <> 0
     then
       fail "daemon smoke: trace-check verdicts %d/%d/%d, want 6/6/0"
         (count "streams") (count "accepted") (count "rejected");
     (match
        Option.bind (Obs.Json.member "report" r) (Obs.Json.member "schema")
      with
      | Some (Obs.Json.Str "trace-check/1") -> ()
      | _ -> fail "daemon smoke: trace-check report is not trace-check/1"));
  let retries =
    List.filter
      (fun e -> name e = "retrying" && str "id" e = Some "slow")
      evs
  in
  if retries = [] then
    fail "daemon smoke: the micro-deadline job never retried";
  List.iter
    (fun e ->
      if Obs.Json.member "resumed" e <> Some (Obs.Json.Bool true) then
        fail "daemon smoke: a retry restarted instead of resuming")
    retries;
  (match List.rev evs with
   | last :: _ when name last = "drained" ->
     let count k =
       match Obs.Json.member k last with
       | Some (Obs.Json.Num f) -> int_of_float f
       | _ -> -1
     in
     if count "done" <> 4 || count "failed" <> 0 then
       fail "daemon smoke: drain counted %d done / %d failed, want 4/0"
         (count "done") (count "failed")
   | _ -> fail "daemon smoke: the last event is not drained");
  Format.printf "daemon: 4 jobs (%d resumed retries) -> clean drain@."
    (List.length retries)

let () =
  check_fault_injection ();
  check_budgeted_engine ();
  check_reduction_speedup ();
  check_cache_warm_speedup ();
  check_engine_agreement ();
  check_parallel_agreement ();
  check_json_output ();
  check_lint_schema ();
  check_dataflow_lint ();
  check_trace_stream ();
  check_checkpoint_resume ();
  check_tracecheck_throughput ();
  check_trace_schemas ();
  check_daemon ();
  print_endline "smoke: ok"
