(* Machine-readable perf trajectory: runs the stock refinement workloads
   and writes BENCH_csp.json (check name -> total wall time, search-span
   wall time, impl states, pairs, states/s over the search span) so
   speedups and regressions are comparable across PRs.

   Usage: dune exec bench/report.exe [-- OUTPUT.json]
   The workloads are the scalability series of bench/main.ml (domain
   scaling k = 2..32, interleaved-ECU scaling n = 2..12) and the
   Needham-Schroeder authentication check — the checks whose before/after
   numbers EXPERIMENTS.md tracks — plus an ablate/reductions family that
   re-runs NS under each single reduction pass. The two largest checks
   are re-run on 2 and 4 worker domains (rows suffixed /j2, /j4), whose
   "speedup_vs_j1" compares their wall time to the sequential row; the
   non-search rows (the CSPm lint, the live-JSONL rerun) carry
   "ratio_vs_check" instead — their wall time relative to the check they
   ride alongside, which is the number that actually means something for
   them. The "_meta" entry records how many cores the host actually had,
   since speedup on a single-core box measures only the pool's
   overhead. *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  r, Unix.gettimeofday () -. t0

(* What a row's wall time is measured against. A parallel rerun races its
   own sequential baseline; a non-search row (lint, obs overhead) is only
   meaningful relative to the check it accompanies; a plain sequential
   check stands alone and carries no comparison at all. *)
type comparison =
  | Standalone
  | Speedup_vs_j1 of float  (** sequential row's wall / this wall *)
  | Ratio_vs_check of float  (** companion check's wall / this wall *)

type row = {
  name : string;
  wall_s : float;  (** total row wall: compile + reduction + search *)
  search_wall_s : float;  (** the search.product span alone *)
  impl_states : int;
  pairs : int;
  states_per_sec : float;
  verdict : string;
  workers : int;
  par_speedup : float;  (** engine-estimated, from aggregate worker busy time *)
  comparison : comparison;
  extras : (string * float) list;
      (** row-family-specific numbers (the tracecheck rows carry
          events/s and streams/s here) rendered as extra JSON fields *)
}

(* states_per_sec comes from the engine, which measures the search span
   alone. Dividing by the total row wall instead would fold compile and
   reduction time into the rate and make it incomparable across
   reduction configs: a pass that spends 100 ms shrinking the graph to a
   few dozen states would report a "slower" engine than the raw run it
   beats. wall_s (the whole row) and search_wall_s (the span) are both
   recorded so either denominator can be recovered. *)
let row_of_result name result t ~comparison =
  let impl_states, pairs, workers, par_speedup, search_wall_s, per_sec =
    match (result : Csp.Refine.result) with
    | Csp.Refine.Holds stats | Csp.Refine.Inconclusive (stats, _) ->
      ( stats.Csp.Refine.impl_states,
        stats.Csp.Refine.pairs,
        stats.Csp.Refine.workers,
        stats.Csp.Refine.par_speedup,
        stats.Csp.Refine.wall_s,
        stats.Csp.Refine.states_per_sec )
    | Csp.Refine.Fails _ -> 0, 0, 1, 1., 0., 0.
  in
  let verdict =
    match result with
    | Csp.Refine.Holds _ -> "holds"
    | Csp.Refine.Fails _ -> "fails"
    | Csp.Refine.Inconclusive _ -> "inconclusive"
  in
  {
    name;
    wall_s = t;
    search_wall_s;
    impl_states;
    pairs;
    states_per_sec = per_sec;
    verdict;
    workers;
    par_speedup;
    comparison;
    extras = [];
  }

(* The same two synthetic systems as bench/main.ml S1. *)
let echo_system k =
  let defs = Csp.Defs.create () in
  Csp.Defs.declare_channel defs "req" [ Csp.Ty.Int_range (0, k - 1) ];
  Csp.Defs.declare_channel defs "rsp" [ Csp.Ty.Int_range (0, k - 1) ];
  Csp.Defs.define_proc defs "ECU" []
    (Csp.Proc.prefix_items
       ( "req",
         [ Csp.Proc.In ("x", None) ],
         Csp.Proc.prefix "rsp" [ Csp.Expr.var "x" ] (Csp.Proc.call ("ECU", []))
       ));
  Csp.Defs.define_proc defs "VMG" [ "i" ]
    (Csp.Proc.prefix "req" [ Csp.Expr.var "i" ]
       (Csp.Proc.prefix_items
          ( "rsp",
            [ Csp.Proc.In ("y", None) ],
            Csp.Proc.call
              ( "VMG",
                [
                  Csp.Expr.Bin
                    ( Csp.Expr.Mod,
                      Csp.Expr.(var "i" + int 1),
                      Csp.Expr.int k );
                ] ) )));
  let spec =
    Security.Properties.request_response ~name:"SPEC" defs ~req:"req"
      ~resp:"rsp"
  in
  let impl =
    Csp.Proc.par
      ( Csp.Proc.call ("VMG", [ Csp.Expr.int 0 ]),
        Csp.Eventset.chans [ "req"; "rsp" ],
        Csp.Proc.call ("ECU", []) )
  in
  defs, spec, impl

let multi_ecu_system n =
  let defs = Csp.Defs.create () in
  let parts =
    List.init n (fun i ->
        let req = Printf.sprintf "req%d" i
        and rsp = Printf.sprintf "rsp%d" i in
        Csp.Defs.declare_channel defs req [ Csp.Ty.Int_range (0, 1) ];
        Csp.Defs.declare_channel defs rsp [ Csp.Ty.Int_range (0, 1) ];
        let ecu = Printf.sprintf "ECU%d" i in
        Csp.Defs.define_proc defs ecu []
          (Csp.Proc.prefix_items
             ( req,
               [ Csp.Proc.In ("x", None) ],
               Csp.Proc.prefix rsp [ Csp.Expr.var "x" ]
                 (Csp.Proc.call (ecu, [])) ));
        let vmg = Printf.sprintf "VMG%d" i in
        Csp.Defs.define_proc defs vmg []
          (Csp.Proc.send req [ Csp.Value.Int 0 ]
             (Csp.Proc.prefix_items
                (rsp, [ Csp.Proc.In ("y", None) ], Csp.Proc.call (vmg, []))));
        let spec_name = Printf.sprintf "SPEC%d" i in
        ignore
          (Security.Properties.request_response ~name:spec_name defs ~req
             ~resp:rsp);
        ( Csp.Proc.par
            ( Csp.Proc.call (vmg, []),
              Csp.Eventset.chans [ req; rsp ],
              Csp.Proc.call (ecu, []) ),
          Csp.Proc.call (spec_name, []) ))
  in
  let impl =
    match parts with
    | [] -> Csp.Proc.skip
    | (p0, _) :: rest ->
      List.fold_left (fun acc (p, _) -> Csp.Proc.inter (acc, p)) p0 rest
  in
  let spec =
    match parts with
    | [] -> Csp.Proc.skip
    | (_, s0) :: rest ->
      List.fold_left (fun acc (_, s) -> Csp.Proc.inter (acc, s)) s0 rest
  in
  defs, spec, impl

let parallel_workloads = [ 2; 4 ]

(* The trace-containment engine rows. Two families: [tracecheck/stream]
   measures the raw engine on in-memory streams synthesized by walking
   the NS authentication spec's own normal form (pure cursor stepping —
   no I/O, no parsing), and [tracecheck/ota-corpus] measures the full
   corpus driver (NDJSON parse + frame mapping + cursors) on a generated
   adversarial OTA corpus. Both run at j1 and j2; the numbers that
   matter are in "events_per_sec"/"streams_per_sec", not states/s. *)
let ota_trace_specs =
  "channel reqSw : {0..3}\n\
   channel rptSw : {0..7}\n\
   channel reqApp : {0..7}.{0..7}\n\
   channel rptUpd : {0..7}\n\
   secret = 5\n\
   mac(v) = (v + secret) % 8\n\
   ANY = reqSw?p -> ANY [] rptSw?v -> ANY [] reqApp?v?t -> ANY\n\
   \      [] rptUpd?v -> ANY\n\
   SPEC_ORDER = reqSw?p -> ANY\n\
   SPEC_WELLFORMED =\n\
   \  reqSw!1 -> SPEC_WELLFORMED\n\
   \  [] rptSw?v -> SPEC_WELLFORMED\n\
   \  [] ([] v : {0..7} @ reqApp!v!mac(v) -> SPEC_WELLFORMED)\n\
   \  [] rptUpd?v -> SPEC_WELLFORMED\n\
   pow2(n) = if n == 0 then 1 else 2 * pow2(n - 1)\n\
   bit(m, v) = (m / pow2(v)) % 2\n\
   grant(m, v) = if bit(m, v) == 1 then m else m + pow2(v)\n\
   AUTH(m) =\n\
   \  reqSw?p -> AUTH(m)\n\
   \  [] rptSw?v -> AUTH(m)\n\
   \  [] reqApp?v?t -> (if t == mac(v) then AUTH(grant(m, v)) else AUTH(m))\n\
   \  [] ([] v : {0..7} @ bit(m, v) == 1 & rptUpd!v -> AUTH(m))\n\
   SPEC_AUTH = AUTH(0)\n"

let tracecheck_rows rows =
  let record name wall ~events ~streams ~accepted ~events_per_sec ~workers
      ~comparison =
    let row =
      {
        name;
        wall_s = wall;
        search_wall_s = 0.;
        impl_states = 0;
        pairs = 0;
        states_per_sec = 0.;
        verdict = Printf.sprintf "%d/%d streams accepted" accepted streams;
        workers;
        par_speedup = 1.;
        comparison;
        extras =
          [
            "events", float_of_int events;
            "events_per_sec", events_per_sec;
            ( "streams_per_sec",
              if wall > 0. then float_of_int streams /. wall else 0. );
          ];
      }
    in
    Format.printf "%-27s %9.2f ms %9d events %7d streams %12.0f ev/s  %s@."
      row.name (wall *. 1e3) events streams events_per_sec row.verdict;
    rows := row :: !rows;
    row
  in
  (* engine-only rows: valid NS-spec streams, pre-materialized so the
     timed region is pure cursor stepping *)
  let defs, _impl = Security.Ns_protocol.build ~fixed:true in
  let spec = Security.Ns_protocol.authentication_spec defs in
  let checker =
    match Csp.Tracecheck.compile defs spec with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  let norm = Csp.Normalise.normalise (Csp.Lts.compile defs spec) in
  let synth i len =
    let labels = ref [] in
    let node = ref (Csp.Normalise.initial norm) in
    (try
       for k = 0 to len - 1 do
         let vis =
           List.filter
             (fun (l, _) ->
               match l with Csp.Event.Vis _ -> true | _ -> false)
             (Csp.Normalise.afters norm !node)
         in
         match vis with
         | [] -> raise Exit
         | choices ->
           let l, next = List.nth choices ((i + k) mod List.length choices) in
           labels := l :: !labels;
           node := next
       done
     with Exit -> ());
    Array.of_list (List.rev !labels)
  in
  let bodies = Array.init 1000 (fun i -> synth i 1000) in
  let stream_base = ref None in
  List.iter
    (fun j ->
      let streams =
        Array.mapi
          (fun i body -> Printf.sprintf "t%04d" i, Array.to_seq body)
          bodies
      in
      Gc.compact ();
      let (_, summary), t =
        wall (fun () -> Csp.Tracecheck.check_streams ~workers:j checker streams)
      in
      let comparison =
        match !stream_base with
        | None -> Standalone
        | Some base -> Speedup_vs_j1 (if t > 0. then base /. t else 0.)
      in
      let row =
        record
          (Printf.sprintf "tracecheck/stream/j%d" j)
          t
          ~events:summary.Csp.Tracecheck.events
          ~streams:summary.Csp.Tracecheck.streams
          ~accepted:summary.Csp.Tracecheck.accepted
          ~events_per_sec:summary.Csp.Tracecheck.events_per_sec ~workers:j
          ~comparison
      in
      if !stream_base = None then stream_base := Some row.wall_s)
    [ 1; 2 ];
  (* full-driver rows: parse + map + cursors over a generated corpus *)
  let corpus = Filename.temp_file "bench_corpus" ".ndjson" in
  ignore
    (Ota.Corpus.generate ~seed:42 ~streams:400 ~until_ms:400 ~flawed_rate:0.25
       ~path:corpus ());
  let loaded = Cspm.Elaborate.load_string ota_trace_specs in
  let map, requirements =
    match
      Serve.Trace_run.prepare ~script:loaded ~specs:[] ~dbc:None ~corpus ()
    with
    | Ok v -> v
    | Error msg -> failwith msg
  in
  let corpus_base = ref None in
  List.iter
    (fun j ->
      Gc.compact ();
      let result, t =
        wall (fun () ->
            Serve.Trace_run.check_corpus ~workers:j ~map ~requirements
              ~path:corpus ())
      in
      let report =
        match result with Ok r -> r | Error msg -> failwith msg
      in
      let comparison =
        match !corpus_base with
        | None -> Standalone
        | Some base -> Speedup_vs_j1 (if t > 0. then base /. t else 0.)
      in
      let row =
        record
          (Printf.sprintf "tracecheck/ota-corpus/j%d" j)
          t ~events:report.Serve.Trace_run.events
          ~streams:report.Serve.Trace_run.streams
          ~accepted:report.Serve.Trace_run.streams_accepted
          ~events_per_sec:report.Serve.Trace_run.events_per_sec ~workers:j
          ~comparison
      in
      if !corpus_base = None then corpus_base := Some row.wall_s)
    [ 1; 2 ];
  Sys.remove corpus

let run_rows () =
  let rows = ref [] in
  let record name f =
    (* return the heap to a known state before timing: without this a row
       that follows a large check (n12 leaves a multi-GB major heap) pays
       its predecessor's sweep and compaction inside the timed region *)
    Gc.compact ();
    let result, t = wall f in
    let row = row_of_result name result t ~comparison:Standalone in
    Format.printf "%-27s %9.2f ms %9d states %9d pairs %12.0f st/s  %s@."
      row.name (row.wall_s *. 1e3) row.impl_states row.pairs
      row.states_per_sec row.verdict;
    rows := row :: !rows;
    row
  in
  (* the /jN reruns of a sequential row: same check on a worker pool,
     speedup measured against the just-recorded j1 wall time *)
  let record_parallel base_row f =
    List.iter
      (fun j ->
        let name = Printf.sprintf "%s/j%d" base_row.name j in
        Gc.compact ();
        let result, t = wall (fun () -> f j) in
        let speedup = if t > 0. then base_row.wall_s /. t else 0. in
        let row =
          { (row_of_result name result t
               ~comparison:(Speedup_vs_j1 speedup))
            with workers = j }
        in
        Format.printf
          "%-27s %9.2f ms %9d states %9d pairs %12.0f st/s  %s (%.2fx vs j1)@."
          row.name (row.wall_s *. 1e3) row.impl_states row.pairs
          row.states_per_sec row.verdict speedup;
        rows := row :: !rows)
      parallel_workloads
  in
  (* The NS family runs first: a check's first terms in a long-lived
     process pay the weak intern table's cleanup for whatever ran before
     it, so the case-study row would otherwise bill n12's multi-second
     sweep to a sub-100ms check. Front-running it matches how cspm_check
     runs it in practice — one check per process. *)
  let ns_base =
    record "ns/authentication-fixed" (fun () ->
        Security.Ns_protocol.check ~fixed:true ())
  in
  (* Reduction ablation: the stock NS check under no reductions, each
     single pass, and the full default pipeline — the walk EXPERIMENTS.md
     steps through. The "none" row is the seed engine's number. *)
  List.iter
    (fun setting ->
      match Csp.Reduce.pipeline_of_string setting with
      | Error msg -> failwith msg
      | Ok pipeline ->
        ignore
          (record
             (Printf.sprintf "ablate/reductions/%s" setting)
             (fun () ->
               Security.Ns_protocol.check
                 ~config:
                   (Csp.Check_config.with_reductions pipeline
                      Security.Ns_protocol.default_config)
                 ~fixed:true ())))
    [ "none"; "dead"; "tau"; "bisim"; "por"; "default" ];
  (* The pre-check static analysis on the same model: the point of the row
     is the ratio — the lint must cost a vanishing fraction of the search
     it runs in front of. *)
  (let defs, _impl = Security.Ns_protocol.build ~fixed:true in
   let diags, t = wall (fun () -> Analysis.Cspm_analyze.analyze defs) in
   let ratio = if t > 0. then ns_base.wall_s /. t else 0. in
   let row =
     {
       name = "analysis/ns-cspm-lint";
       wall_s = t;
       search_wall_s = 0.;
       impl_states = 0;
       pairs = 0;
       states_per_sec = 0.;
       verdict = Printf.sprintf "%d diagnostics" (List.length diags);
       workers = 1;
       par_speedup = 1.;
       comparison = Ratio_vs_check ratio;
       extras = [];
     }
   in
   Format.printf "%-27s %9.2f ms  %s (%.0fx cheaper than the check)@."
     row.name (row.wall_s *. 1e3) row.verdict ratio;
   rows := row :: !rows);
  (* The implementation-level counterpart: the interprocedural CAPL
     dataflow lint (CFG construction, definite-assignment and interval
     fixpoints, and the taint pass) over the OTA case study's flawed
     firmware — the static check that catches the tag-skipping ECU the
     corpus check needs a fleet of traces to reject. *)
  (let nodes =
     List.map
       (fun (name, src) -> name, Capl.Parser.program src)
       Ota.Capl_sources.sources_flawed
   in
   let diags, t =
     wall (fun () ->
         Analysis.Valueflow.check_nodes nodes
         @ Analysis.Taint.check_nodes nodes)
   in
   let ratio = if t > 0. then ns_base.wall_s /. t else 0. in
   let row =
     {
       name = "analysis/ns-capl-dataflow";
       wall_s = t;
       search_wall_s = 0.;
       impl_states = 0;
       pairs = 0;
       states_per_sec = 0.;
       verdict = Printf.sprintf "%d diagnostics" (List.length diags);
       workers = 1;
       par_speedup = 1.;
       comparison = Ratio_vs_check ratio;
       extras = [];
     }
   in
   Format.printf "%-27s %9.2f ms  %s (%.0fx cheaper than the check)@."
     row.name (row.wall_s *. 1e3) row.verdict ratio;
   rows := row :: !rows);
  (* Instrumentation overhead: the same NS check with a live JSONL sink,
     measured immediately after the silent row (before the /jN reruns —
     domain thrash on a small host poisons whatever follows it). Its wall
     time against the silent row bounds the cost of the observability
     layer, and the span stream it writes is parsed back here — the
     consumer side of `cspm_check --trace-out`. *)
  let trace_path = Filename.temp_file "bench_trace" ".jsonl" in
  let oc = open_out trace_path in
  let obs = Obs.create (Obs.Jsonl oc) in
  Gc.compact ();
  let result, t =
    wall (fun () ->
        Security.Ns_protocol.check
          ~config:
            (Csp.Check_config.with_obs obs Security.Ns_protocol.default_config)
          ~fixed:true ())
  in
  Obs.flush obs;
  close_out oc;
  let speedup = if t > 0. then ns_base.wall_s /. t else 0. in
  let row =
    row_of_result "ns/authentication-fixed/obs-jsonl" result t
      ~comparison:(Ratio_vs_check speedup)
  in
  Format.printf
    "%-27s %9.2f ms %9d states %9d pairs %12.0f st/s  %s (%.2fx vs silent)@."
    row.name (row.wall_s *. 1e3) row.impl_states row.pairs row.states_per_sec
    row.verdict speedup;
  (* read the trace back: sum each span name's duration, as a tool
     consuming --trace-out output would *)
  let spans = Hashtbl.create 8 in
  let ic = open_in trace_path in
  (try
     while true do
       match Obs.Json.parse (input_line ic) with
       | Error _ -> ()
       | Ok json ->
         (match
            Obs.Json.(member "ev" json, member "name" json, member "dur_s" json)
          with
          | Some (Obs.Json.Str "span"), Some (Obs.Json.Str name), Some d ->
            let dur = Option.value (Obs.Json.to_float d) ~default:0. in
            let prev = Option.value (Hashtbl.find_opt spans name) ~default:0. in
            Hashtbl.replace spans name (prev +. dur)
          | _ -> ())
     done
   with End_of_file -> close_in ic);
  Sys.remove trace_path;
  List.iter
    (fun name ->
      match Hashtbl.find_opt spans name with
      | Some d -> Format.printf "    span %-16s %9.2f ms@." name (d *. 1e3)
      | None -> Format.printf "    span %-16s (absent)@." name)
    [ "lts.compile"; "normalise"; "search.product" ];
  rows := row :: !rows;
  record_parallel ns_base (fun j ->
      Security.Ns_protocol.check
        ~config:
          (Csp.Check_config.with_workers j Security.Ns_protocol.default_config)
        ~fixed:true ());
  List.iter
    (fun k ->
      let defs, spec, impl = echo_system k in
      ignore
        (record
           (Printf.sprintf "scale/domain/k%02d" k)
           (fun () -> Csp.Refine.traces_refines defs ~spec ~impl)))
    [ 2; 4; 8; 16; 32 ];
  List.iter
    (fun n ->
      let defs, spec, impl = multi_ecu_system n in
      let base =
        record
          (Printf.sprintf "scale/ecus/n%d" n)
          (fun () -> Csp.Refine.traces_refines defs ~spec ~impl)
      in
      if n = 5 then
        record_parallel base (fun j ->
            let defs, spec, impl = multi_ecu_system n in
            Csp.Refine.traces_refines
              ~config:Csp.Check_config.(default |> with_workers j)
              defs ~spec ~impl))
    (* n8..n12 were out of reach for the raw engine (the monolithic
       compile re-combines the whole interleaving per state); the staged
       pipeline makes them routine *)
    [ 2; 3; 4; 5; 8; 10; 12 ];
  tracecheck_rows rows;
  List.rev !rows

let json_of_rows rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"_meta\": { \"cores\": %d, \"parallel_rows_at\": [2, 4] },\n"
       (Domain.recommended_domain_count ()));
  List.iteri
    (fun i row ->
      let comparison =
        match row.comparison with
        | Standalone -> ""
        | Speedup_vs_j1 s -> Printf.sprintf ", \"speedup_vs_j1\": %.3f" s
        | Ratio_vs_check r -> Printf.sprintf ", \"ratio_vs_check\": %.3f" r
      in
      let comparison =
        comparison
        ^ String.concat ""
            (List.map
               (fun (k, v) -> Printf.sprintf ", %S: %.1f" k v)
               row.extras)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  %S: { \"wall_s\": %.6f, \"search_wall_s\": %.6f, \
            \"impl_states\": %d, \"pairs\": %d, \"states_per_sec\": %.0f, \
            \"verdict\": %S, \"workers\": %d, \"par_speedup\": %.3f%s }%s\n"
           row.name row.wall_s row.search_wall_s row.impl_states row.pairs
           row.states_per_sec row.verdict row.workers row.par_speedup
           comparison
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_csp.json" in
  let rows = run_rows () in
  let oc = open_out out in
  output_string oc (json_of_rows rows);
  close_out oc;
  Format.printf "@.wrote %s (%d checks)@." out (List.length rows)
