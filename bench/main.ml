(* Benchmark harness: regenerates every table and figure of the paper
   (DESIGN.md experiment index T1-T3, F1-F3) and adds the scalability and
   attack-analysis series (S1, S2) plus ablations of the engine's design
   choices. Each section prints the regenerated artifact, then reports
   Bechamel timings for the operation that produces it. *)

open Bechamel

let line = String.make 74 '='
let section id title =
  Format.printf "@.%s@.%s  %s@.%s@." line id title line

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let instance = Toolkit.Instance.monotonic_clock
let ols =
  Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]

let run_benchs name tests =
  let grouped = Test.make_grouped ~name tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raws = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raws in
  let rows =
    Hashtbl.fold
      (fun key ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | _ -> nan
        in
        (key, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "%-58s %14s@." "benchmark" "time/run";
  List.iter
    (fun (key, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Format.printf "%-58s %14s@." key human)
    rows

let bench name f = Test.make ~name (Staged.stage f)

let wall f =
  let t0 = Sys.time () in
  let r = f () in
  r, Sys.time () -. t0

(* ------------------------------------------------------------------ *)
(* T1 - Table I: CSPm notation / operator semantics                    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "T1" "Table I: CSPm notation (per-operator engine round trip)";
  let defs = Csp.Defs.create () in
  Csp.Defs.declare_channel defs "a" [ Csp.Ty.Int_range (0, 3) ];
  Csp.Defs.declare_channel defs "b" [ Csp.Ty.Int_range (0, 3) ];
  let p0 = Csp.Proc.send "a" [ Csp.Value.Int 0 ] Csp.Proc.stop in
  let q0 = Csp.Proc.send "b" [ Csp.Value.Int 1 ] Csp.Proc.stop in
  let rows =
    [
      "Prefix", "P1 -> P2", p0;
      ( "Input", "?x",
        Csp.Proc.prefix_items ("a", [ Csp.Proc.In ("x", None) ], Csp.Proc.stop) );
      "Output", "!x", Csp.Proc.send "a" [ Csp.Value.Int 0 ] Csp.Proc.skip;
      "Sequential composition", "P1; P2", Csp.Proc.seq (p0, q0);
      "External choice", "P1 [] P2", Csp.Proc.ext (p0, q0);
      "Internal choice", "P1 |~| P2", Csp.Proc.intc (p0, q0);
      ( "Alphabetised parallel", "P [A||B] Q",
        Csp.Proc.apar (p0, Csp.Eventset.chan "a", Csp.Eventset.chan "b", q0) );
      "Interleaving", "P1 ||| P2", Csp.Proc.inter (p0, q0);
    ]
  in
  Format.printf "%-24s %-12s %-34s %s@." "Basic operator" "Notation"
    "CSPm (printed)" "transitions";
  List.iter
    (fun (name, notation, proc) ->
      let printed = Cspm.Print.proc_to_string proc in
      let printed =
        if String.length printed > 32 then String.sub printed 0 29 ^ "..."
        else printed
      in
      let n = List.length (Csp.Semantics.transitions defs proc) in
      Format.printf "%-24s %-12s %-34s %d@." name notation printed n)
    rows;
  let all_roundtrip =
    List.for_all
      (fun (_, _, proc) ->
        let printed = Cspm.Print.proc_to_string proc in
        match Cspm.Parser.term printed with
        | _ -> true
        | exception _ -> false)
      rows
  in
  Format.printf "@.all printed forms re-parse: %b@.@." all_roundtrip;
  run_benchs "table1"
    (List.map
       (fun (name, _, proc) ->
         bench
           (String.map (fun c -> if c = ' ' then '_' else c) name)
           (fun () -> Csp.Semantics.transitions defs proc))
       rows)

(* ------------------------------------------------------------------ *)
(* T2 - Table II: X.1373 message types on the simulated bus            *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "T2" "Table II: message types exchanged on the simulated CAN bus";
  let sim = Ota.Capl_sources.simulation () in
  Capl.Simulation.start sim;
  ignore (Capl.Simulation.run ~until_ms:1000 sim);
  let tx = Capl.Simulation.transmissions sim in
  let row id name from to_ desc =
    let count =
      List.length (List.filter (fun (_, f) -> f.Canbus.Frame.id = id) tx)
    in
    Format.printf "%-8s %-8s %-5s %-5s %-44s %d@." name
      (Printf.sprintf "0x%03X" id) from to_ desc count
  in
  Format.printf "%-8s %-8s %-5s %-5s %-44s %s@." "Id" "CAN id" "From" "To"
    "Description" "observed";
  row 0x101 "reqSw" "VMG" "ECU" "Request diagnose software status";
  row 0x201 "rptSw" "ECU" "VMG" "Result of software diagnosis";
  row 0x102 "reqApp" "VMG" "ECU" "Request apply update module";
  row 0x202 "rptUpd" "ECU" "VMG" "Result of applying update module";
  Format.printf "@.";
  run_benchs "table2"
    [
      bench "simulate_update_campaign" (fun () ->
          let sim = Ota.Capl_sources.simulation () in
          Capl.Simulation.start sim;
          Capl.Simulation.run ~until_ms:1000 sim);
    ]

(* ------------------------------------------------------------------ *)
(* T3 - Table III: requirements R01-R05 as refinement checks           *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "T3" "Table III: secure-update requirements as refinement checks";
  let s = Ota.Scenario.make () in
  let checks = Ota.Requirements.run_all s in
  Format.printf "%-7s %-62s %s@." "ID" "Requirement" "verdict";
  List.iter
    (fun c ->
      Format.printf "%-7s %-62s %s@." c.Ota.Requirements.id
        c.Ota.Requirements.description
        (if Csp.Refine.holds c.Ota.Requirements.result then "PASS" else "FAIL"))
    checks;
  Format.printf "@.";
  run_benchs "table3"
    [
      bench "R01" (fun () -> Ota.Requirements.r01 s);
      bench "R02_SP02" (fun () -> Ota.Requirements.r02 s);
      bench "R03" (fun () -> Ota.Requirements.r03 s);
      bench "R04" (fun () -> Ota.Requirements.r04 s);
      bench "R05" (fun () -> Ota.Requirements.r05 s ~version:1);
    ]

(* ------------------------------------------------------------------ *)
(* F1 - Fig. 1: the workflow / toolchain pipeline                      *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "F1" "Fig. 1: end-to-end workflow (CAPL -> CSPm -> check)";
  let stage fmt = Format.printf fmt in
  let t_total = Sys.time () in
  let db, t1 = wall (fun () -> Candb.Dbc_parser.parse Ota.Capl_sources.dbc) in
  stage "1. parse CAN database           %6.2f ms (%d messages)@." (t1 *. 1e3)
    (List.length db.Candb.Dbc_ast.messages);
  let progs, t2 =
    wall (fun () ->
        List.map
          (fun (n, s) -> n, Capl.Parser.program s)
          Ota.Capl_sources.sources)
  in
  stage "2. lex + parse CAPL             %6.2f ms (%d nodes)@." (t2 *. 1e3)
    (List.length progs);
  let system, t3 = wall (fun () -> Extractor.Pipeline.build ~db progs) in
  stage "3. extract implementation model %6.2f ms (%d warnings)@." (t3 *. 1e3)
    (List.length (Extractor.Pipeline.warnings system));
  let script, t4 = wall (fun () -> Extractor.Pipeline.emit_script system) in
  stage "4. emit CSPm script             %6.2f ms (%d bytes)@." (t4 *. 1e3)
    (String.length script);
  let _loaded, t5 = wall (fun () -> Cspm.Elaborate.load_string script) in
  stage "5. reload through CSPm parser   %6.2f ms@." (t5 *. 1e3);
  let defs = system.Extractor.Pipeline.defs in
  let spec =
    Security.Properties.alternation ~name:"SP02_f1" defs ~first:"reqSw"
      ~second:"rptSw"
  in
  let impl =
    Csp.Proc.hide
      ( system.Extractor.Pipeline.composed,
        Csp.Eventset.chans [ "timer_VMG_retry"; "reqApp"; "rptUpd" ] )
  in
  let verdict, t6 =
    wall (fun () -> Csp.Refine.traces_refines defs ~spec ~impl)
  in
  stage "6. refinement check (SP02)      %6.2f ms (%s)@." (t6 *. 1e3)
    (if Csp.Refine.holds verdict then "holds" else "fails");
  stage "total                           %6.2f ms@.@."
    ((Sys.time () -. t_total) *. 1e3);
  run_benchs "fig1"
    [
      bench "full_pipeline" (fun () ->
          let system =
            Extractor.Pipeline.build_from_sources ~dbc:Ota.Capl_sources.dbc
              Ota.Capl_sources.sources
          in
          Extractor.Pipeline.emit_script system);
    ]

(* ------------------------------------------------------------------ *)
(* F2 - Fig. 2: the demonstration system's scope and state space       *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "F2" "Fig. 2: demonstration system (VMG + ECU), state spaces";
  let report name defs proc =
    let lts = Csp.Lts.compile defs proc in
    let deadlocks = List.length (Csp.Lts.deadlocks lts) in
    Format.printf "%-42s %6d states %6d transitions %2d quiescent@." name
      (Csp.Lts.num_states lts)
      (Csp.Lts.num_transitions lts)
      deadlocks
  in
  let system = Ota.Capl_sources.build_system () in
  report "extracted VMG || ECU" system.Extractor.Pipeline.defs
    system.Extractor.Pipeline.composed;
  let s0 = Ota.Scenario.make () in
  report "spec-level system, reliable medium" s0.Ota.Scenario.defs
    s0.Ota.Scenario.system;
  let s1 = Ota.Scenario.make ~medium:Ota.Scenario.Intruder () in
  report "spec-level system, Dolev-Yao intruder" s1.Ota.Scenario.defs
    s1.Ota.Scenario.system;
  let se = Ota.Scenario.make_extended () in
  report "extended scope (update server)" se.Ota.Scenario.defs
    se.Ota.Scenario.system;
  Format.printf "@.";
  run_benchs "fig2"
    [
      bench "compile_extracted_system" (fun () ->
          Csp.Lts.compile system.Extractor.Pipeline.defs
            system.Extractor.Pipeline.composed);
      bench "compile_with_intruder" (fun () ->
          Csp.Lts.compile s1.Ota.Scenario.defs s1.Ota.Scenario.system);
    ]

(* ------------------------------------------------------------------ *)
(* F3 - Fig. 3: the generated CSPm script                              *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "F3" "Fig. 3: ECU implementation model generated from CAPL";
  let system = Ota.Capl_sources.build_system () in
  Format.printf "%s@." (Extractor.Pipeline.emit_script system);
  run_benchs "fig3"
    [
      bench "extract_and_emit" (fun () ->
          Extractor.Pipeline.emit_script (Ota.Capl_sources.build_system ()));
      bench "reload_emitted_script" (fun () ->
          Extractor.Pipeline.reload system);
    ]

(* ------------------------------------------------------------------ *)
(* S1 - scalability: domain size and node count                        *)
(* ------------------------------------------------------------------ *)

let echo_system k =
  (* VMG cycles through k request values; ECU echoes *)
  let defs = Csp.Defs.create () in
  Csp.Defs.declare_channel defs "req" [ Csp.Ty.Int_range (0, k - 1) ];
  Csp.Defs.declare_channel defs "rsp" [ Csp.Ty.Int_range (0, k - 1) ];
  Csp.Defs.define_proc defs "ECU" []
    (Csp.Proc.prefix_items
       ( "req",
         [ Csp.Proc.In ("x", None) ],
         Csp.Proc.prefix "rsp" [ Csp.Expr.var "x" ] (Csp.Proc.call ("ECU", []))
       ));
  Csp.Defs.define_proc defs "VMG" [ "i" ]
    (Csp.Proc.prefix "req" [ Csp.Expr.var "i" ]
       (Csp.Proc.prefix_items
          ( "rsp",
            [ Csp.Proc.In ("y", None) ],
            Csp.Proc.call
              ( "VMG",
                [
                  Csp.Expr.Bin
                    ( Csp.Expr.Mod,
                      Csp.Expr.(var "i" + int 1),
                      Csp.Expr.int k );
                ] ) )));
  let spec =
    Security.Properties.request_response ~name:"SPEC" defs ~req:"req"
      ~resp:"rsp"
  in
  let impl =
    Csp.Proc.par
      ( Csp.Proc.call ("VMG", [ Csp.Expr.int 0 ]),
        Csp.Eventset.chans [ "req"; "rsp" ],
        Csp.Proc.call ("ECU", []) )
  in
  defs, spec, impl

let multi_ecu_system n =
  (* n independent request/response pairs, interleaved *)
  let defs = Csp.Defs.create () in
  let parts =
    List.init n (fun i ->
        let req = Printf.sprintf "req%d" i
        and rsp = Printf.sprintf "rsp%d" i in
        Csp.Defs.declare_channel defs req [ Csp.Ty.Int_range (0, 1) ];
        Csp.Defs.declare_channel defs rsp [ Csp.Ty.Int_range (0, 1) ];
        let ecu = Printf.sprintf "ECU%d" i in
        Csp.Defs.define_proc defs ecu []
          (Csp.Proc.prefix_items
             ( req,
               [ Csp.Proc.In ("x", None) ],
               Csp.Proc.prefix rsp [ Csp.Expr.var "x" ]
                 (Csp.Proc.call (ecu, [])) ));
        let vmg = Printf.sprintf "VMG%d" i in
        Csp.Defs.define_proc defs vmg []
          (Csp.Proc.send req [ Csp.Value.Int 0 ]
             (Csp.Proc.prefix_items
                ([ rsp ] |> List.hd, [ Csp.Proc.In ("y", None) ],
                 Csp.Proc.call (vmg, []))));
        let spec_name = Printf.sprintf "SPEC%d" i in
        ignore
          (Security.Properties.request_response ~name:spec_name defs ~req
             ~resp:rsp);
        ( Csp.Proc.par
            ( Csp.Proc.call (vmg, []),
              Csp.Eventset.chans [ req; rsp ],
              Csp.Proc.call (ecu, []) ),
          Csp.Proc.call (spec_name, []) ))
  in
  let impl =
    match parts with
    | [] -> Csp.Proc.skip
    | (p0, _) :: rest ->
      List.fold_left (fun acc (p, _) -> Csp.Proc.inter (acc, p)) p0 rest
  in
  let spec =
    match parts with
    | [] -> Csp.Proc.skip
    | (_, s0) :: rest ->
      List.fold_left (fun acc (_, s) -> Csp.Proc.inter (acc, s)) s0 rest
  in
  defs, spec, impl

let scale () =
  section "S1" "Scalability: refinement cost vs data domain and node count";
  Format.printf "domain scaling (request/response over {0..k-1}):@.";
  Format.printf "%8s %10s %12s %12s@." "k" "pairs" "time" "verdict";
  List.iter
    (fun k ->
      let defs, spec, impl = echo_system k in
      let result, t =
        wall (fun () -> Csp.Refine.traces_refines defs ~spec ~impl)
      in
      let pairs =
        match result with
        | Csp.Refine.Holds stats | Csp.Refine.Inconclusive (stats, _) ->
          stats.Csp.Refine.pairs
        | Csp.Refine.Fails _ -> -1
      in
      Format.printf "%8d %10d %9.2f ms %12s@." k pairs (t *. 1e3)
        (if Csp.Refine.holds result then "holds" else "fails"))
    [ 2; 4; 8; 16; 32; 64 ];
  Format.printf "@.node scaling (n interleaved VMG/ECU pairs):@.";
  Format.printf "%8s %10s %12s@." "n" "pairs" "time";
  List.iter
    (fun n ->
      let defs, spec, impl = multi_ecu_system n in
      let result, t =
        wall (fun () -> Csp.Refine.traces_refines defs ~spec ~impl)
      in
      let pairs =
        match result with
        | Csp.Refine.Holds stats | Csp.Refine.Inconclusive (stats, _) ->
          stats.Csp.Refine.pairs
        | Csp.Refine.Fails _ -> -1
      in
      Format.printf "%8d %10d %9.2f ms@." n pairs (t *. 1e3))
    [ 1; 2; 3; 4; 5; 6 ];
  Format.printf "@.";
  let defs8, spec8, impl8 = echo_system 8 in
  let defs4n, spec4n, impl4n = multi_ecu_system 4 in
  run_benchs "scale"
    [
      bench "domain_k8" (fun () ->
          Csp.Refine.traces_refines defs8 ~spec:spec8 ~impl:impl8);
      bench "ecus_n4" (fun () ->
          Csp.Refine.traces_refines defs4n ~spec:spec4n ~impl:impl4n);
    ]

(* ------------------------------------------------------------------ *)
(* S2 - attack analysis: time to counterexample                        *)
(* ------------------------------------------------------------------ *)

let attack () =
  section "S2" "Attack analysis: R05 authenticity under the Dolev-Yao intruder";
  let run name scenario version expected =
    let result, t = wall (fun () -> Ota.Requirements.r05 scenario ~version) in
    let verdict = if Csp.Refine.holds result then "holds" else "ATTACK" in
    Format.printf "%-46s %9.2f ms  %-7s (expected %s)@." name (t *. 1e3)
      verdict expected;
    match result with
    | Csp.Refine.Fails cex ->
      Format.printf "    trace: %s@."
        (Csp.Pretty.trace_to_string cex.Csp.Refine.trace)
    | Csp.Refine.Holds _ | Csp.Refine.Inconclusive _ -> ()
  in
  run "secure ECU vs intruder"
    (Ota.Scenario.make ~medium:Ota.Scenario.Intruder ())
    1 "holds";
  run "flawed ECU (no MAC check) vs intruder"
    (Ota.Scenario.make ~check_macs:false ~medium:Ota.Scenario.Intruder ())
    1 "ATTACK";
  run "secure ECU vs intruder with leaked key"
    (Ota.Scenario.make ~medium:Ota.Scenario.Intruder_with_shared_key ())
    0 "ATTACK";
  Format.printf "@.";
  let secure = Ota.Scenario.make ~medium:Ota.Scenario.Intruder () in
  let flawed =
    Ota.Scenario.make ~check_macs:false ~medium:Ota.Scenario.Intruder ()
  in
  run_benchs "attack"
    [
      bench "verify_secure" (fun () -> Ota.Requirements.r05 secure ~version:1);
      bench "find_forgery" (fun () -> Ota.Requirements.r05 flawed ~version:1);
    ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                     *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "A"
    "Ablations: transition memoization; spec normalization; hash-consing";
  let s = Ota.Scenario.make ~medium:Ota.Scenario.Intruder () in
  let defs = s.Ota.Scenario.defs in
  let system = s.Ota.Scenario.system in
  let lts = Csp.Lts.compile defs system in
  let states = Array.to_list lts.Csp.Lts.states in
  Format.printf "workload: %d states of the intruder system@.@."
    (List.length states);
  run_benchs "ablate"
    [
      bench "transitions_uncached_2_sweeps" (fun () ->
          List.iter
            (fun p -> ignore (Csp.Semantics.transitions defs p))
            states;
          List.iter
            (fun p -> ignore (Csp.Semantics.transitions defs p))
            states);
      bench "transitions_memoized_2_sweeps" (fun () ->
          let step = Csp.Semantics.make_cached defs in
          List.iter (fun p -> ignore (step p)) states;
          List.iter (fun p -> ignore (step p)) states);
      bench "normalise_run_spec" (fun () ->
          let spec_lts =
            Csp.Lts.compile defs
              (Csp.Proc.run (Csp.Eventset.chans [ "send"; "recv" ]))
          in
          Csp.Normalise.normalise spec_lts);
      (* interning ablation: O(1) hash-consed ids vs the deep structural
         hashing the ids replace, on a full product check *)
      bench "hashcons_id_interning" (fun () ->
          Ota.Requirements.r05
            ~config:Csp.Check_config.(default |> with_interner `Id)
            s ~version:1);
      bench "hashcons_structural_interning" (fun () ->
          Ota.Requirements.r05
            ~config:Csp.Check_config.(default |> with_interner `Structural)
            s ~version:1);
    ]

let () =
  Format.printf
    "ecu_csp benchmark harness - regenerating the paper's tables and \
     figures@.";
  table1 ();
  table2 ();
  table3 ();
  fig1 ();
  fig2 ();
  fig3 ();
  scale ();
  attack ();
  ablations ();
  Format.printf "@.done.@."
