(* capl2cspm — the model extractor CLI (paper Fig. 1).

   Translates CAPL node programs (plus their CAN database) into a CSPm
   script: channels and nametypes from the database, one recursive process
   per node, and the composed SYSTEM. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let node_name_of_path path =
  Filename.remove_extension (Filename.basename path)

type format = Pretty | Json

let run dbc_path capl_paths output max_domain global_max max_unroll strict
    quiet lint deny_warnings format =
  let lint = lint || deny_warnings in
  match
    ( read_file dbc_path,
      List.map (fun p -> node_name_of_path p, read_file p) capl_paths )
  with
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | dbc, sources ->
  match Extractor.Pipeline.parse_sources ~dbc sources with
  | exception Extractor.Pipeline.Pipeline_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | db, programs ->
    (* Lint before extraction: defects in the CAPL sources should surface
       as positioned diagnostics, not as a strict-mode abort or a puzzling
       generated model. *)
    let diags =
      if lint then Some (Extractor.Pipeline.lint_programs ~db programs)
      else None
    in
    let blocked =
      match diags with
      | Some ds ->
        (match format, ds with
         | Json, _ ->
           print_string (Obs.Json.to_string (Analysis.Diag.json_of_list ds));
           print_newline ()
         | Pretty, _ :: _ ->
           Format.eprintf "@[<v>%a@]@." Analysis.Diag.pp_list ds
         | Pretty, [] -> ());
        Analysis.Diag.blocking ~deny_warnings ds
      | None -> false
    in
    if blocked then begin
      if format = Pretty then
        Format.eprintf "extraction aborted: blocking diagnostics@.";
      Analysis.Diag.exit_code
    end
    else begin
      let config =
        {
          Extractor.Extract.default_config with
          domain =
            {
              Extractor.Extract.default_config.Extractor.Extract.domain with
              Candb.To_cspm.max_domain;
            };
          global_max;
          max_unroll;
          lenient = not strict;
        }
      in
      match Extractor.Pipeline.build ~config ~db programs with
      | exception Extractor.Extract.Unsupported w ->
        Format.eprintf "unsupported construct: %a@."
          Extractor.Extract.pp_warning w;
        1
      | system ->
        if not quiet then
          List.iter
            (fun (node, w) ->
              Format.eprintf "warning: %s: %a@." node
                Extractor.Extract.pp_warning w)
            (Extractor.Pipeline.warnings system);
        let script = Extractor.Pipeline.emit_script system in
        (match output with
         | None -> print_string script
         | Some path ->
           (* temp + rename: an interrupt mid-write can never leave a
              half-translated script that happens to parse *)
           Serve.Fsio.atomic_write ~path script;
           if not quiet then Printf.eprintf "wrote %s\n" path);
        0
    end

let run dbc_path capl_paths output max_domain global_max max_unroll strict
    quiet lint deny_warnings format =
  (* A pathologically deep CAPL program or signal domain exhausts stack
     or heap before any budget applies; surface it as a clean load error
     instead of a raw uncaught exception. *)
  try
    run dbc_path capl_paths output max_domain global_max max_unroll strict
      quiet lint deny_warnings format
  with
  | Stack_overflow ->
    Printf.eprintf
      "error: stack overflow — the sources nest too deeply to translate; \
       simplify them or raise the system stack limit\n";
    2
  | Out_of_memory ->
    Printf.eprintf
      "error: out of memory while translating — clamp the model with \
       --max-domain/--global-max/--max-unroll\n";
    2

open Cmdliner

let dbc_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "dbc" ] ~docv:"FILE" ~doc:"CAN database (.dbc) file.")

let capl_args =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"CAPL" ~doc:"CAPL source files (one node each).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Output CSPm script (stdout if omitted).")

let max_domain_arg =
  Arg.(
    value & opt int 256
    & info [ "max-domain" ] ~docv:"N"
        ~doc:"Clamp any signal domain to at most $(docv) values.")

let global_max_arg =
  Arg.(
    value & opt int 7
    & info [ "global-max" ] ~docv:"N"
        ~doc:"Tracked globals live in 0..$(docv); arithmetic wraps.")

let max_unroll_arg =
  Arg.(
    value & opt int 16
    & info [ "max-unroll" ] ~docv:"N" ~doc:"Static loop-unroll bound.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Fail on untranslatable constructs instead of approximating.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress warnings.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Lint the CAPL sources against the CAN database before \
           extraction: unknown messages, handlers nothing sends to, \
           outputs nothing handles, orphaned timers, use-before-init \
           globals (definite-assignment dataflow), unreachable \
           statements, narrowing assignments (interval-gated), unused \
           variables, and interprocedural taint flows — secrets \
           reaching the bus unencrypted (CAPL101) and received \
           payloads reaching a bus write or protected sink without \
           verification on every path (CAPL102). Diagnostics carry \
           stable CAPL codes and source positions; the generated model \
           is unaffected.")

let deny_warnings_arg =
  Arg.(
    value & flag
    & info [ "deny-warnings" ]
        ~doc:
          "Implies $(b,--lint); treat warning diagnostics as blocking: \
           if the lint reports any error or warning, print the \
           diagnostics and exit with status 4 without extracting.")

let format_arg =
  Arg.(
    value
    & opt (enum [ "pretty", Pretty; "json", Json ]) Pretty
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Diagnostic format for $(b,--lint): $(b,pretty) (one line per \
           diagnostic on stderr, the default) or $(b,json) (one \
           machine-readable document on stdout, schema diagnostics/1).")

let cmd =
  let doc = "translate CAPL ECU applications into a CSPm model" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reproduces the model-extractor of 'Enabling Security Checking of \
         Automotive ECUs with Formal CSP Models' (DSN-W 2019): CAPL node \
         programs and their CAN database become a machine-readable CSPm \
         script for refinement checking (see $(b,cspm_check)).";
      `S Manpage.s_exit_status;
      `P "0 — extraction succeeded.";
      `P "1 — an input could not be read, parsed, or translated.";
      `P
        "2 — translation exhausted a machine resource (stack overflow \
         or out of memory) before producing a model.";
      `P
        "4 — the $(b,--lint) analysis reported blocking diagnostics \
         (an error, or any warning under $(b,--deny-warnings)); \
         nothing was extracted.";
    ]
  in
  Cmd.v
    (Cmd.info "capl2cspm" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ dbc_arg $ capl_args $ output_arg $ max_domain_arg
      $ global_max_arg $ max_unroll_arg $ strict_arg $ quiet_arg
      $ lint_arg $ deny_warnings_arg $ format_arg)

let () = exit (Cmd.eval' cmd)
