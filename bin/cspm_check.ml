(* cspm_check — a miniature FDR: load a CSPm script and run its assert
   declarations (trace/failures refinement, deadlock and divergence
   freedom), printing counterexample traces for failures. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let run path max_states list_only dot =
  match Cspm.Elaborate.load_string (read_file path) with
  | exception Cspm.Parser.Parse_error (msg, pos) ->
    Format.eprintf "%s:%a: syntax error: %s@." path Cspm.Ast.pp_pos pos msg;
    2
  | exception Cspm.Lexer.Lex_error (msg, pos) ->
    Format.eprintf "%s:%a: lexical error: %s@." path Cspm.Ast.pp_pos pos msg;
    2
  | exception Cspm.Elaborate.Elab_error (msg, pos) ->
    (match pos with
     | Some pos -> Format.eprintf "%s:%a: %s@." path Cspm.Ast.pp_pos pos msg
     | None -> Format.eprintf "%s: %s@." path msg);
    2
  | loaded ->
    if Option.is_some dot then begin
      let name = Option.get dot in
      match Csp.Defs.proc loaded.Cspm.Elaborate.defs name with
      | None ->
        Format.eprintf "%s: no process named %s@." path name;
        2
      | Some (_ :: _, _) ->
        Format.eprintf "%s: %s takes parameters; --dot needs a closed process@."
          path name;
        2
      | Some ([], _) ->
        let lts =
          Csp.Lts.compile ~max_states loaded.Cspm.Elaborate.defs
            (Csp.Proc.Call (name, []))
        in
        print_string (Csp.Lts.to_dot lts);
        0
    end
    else if list_only then begin
      List.iter
        (fun (a, _) -> Format.printf "%a@." Cspm.Print.pp_assertion a)
        loaded.Cspm.Elaborate.assertions;
      0
    end
    else begin
      let outcomes = Cspm.Check.run ~max_states loaded in
      Format.printf "@[<v>%a@]@." Cspm.Check.pp_outcomes outcomes;
      let failures =
        List.length
          (List.filter
             (fun o -> not (Csp.Refine.holds o.Cspm.Check.result))
             outcomes)
      in
      Format.printf "%d assertion(s), %d failure(s)@." (List.length outcomes)
        failures;
      if failures = 0 then 0 else 1
    end

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCRIPT" ~doc:"CSPm script to check.")

let max_states_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-states" ] ~docv:"N"
        ~doc:"State bound for compilation and product exploration.")

let list_arg =
  Arg.(
    value & flag
    & info [ "l"; "list" ] ~doc:"List the assertions without running them.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"PROCESS"
        ~doc:
          "Instead of checking, print the named process's state graph in \
           Graphviz format (FDR's visualisation role).")

let cmd =
  let doc = "run the assert declarations of a CSPm script" in
  Cmd.v
    (Cmd.info "cspm_check" ~version:"1.0.0" ~doc)
    Term.(const run $ file_arg $ max_states_arg $ list_arg $ dot_arg)

let () = exit (Cmd.eval' cmd)
