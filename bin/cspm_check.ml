(* cspm_check — a miniature FDR: load a CSPm script and run its assert
   declarations (trace/failures refinement, deadlock and divergence
   freedom), printing counterexample traces for failures. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type format = Pretty | Json

(* The live progress line: one line on stderr, rewritten in place at the
   engine's progress cadence (once per 256 dequeues), so tiny checks
   print nothing. stdout stays clean for --format json. *)
let progress_line (p : Csp.Search.progress) =
  Printf.eprintf "\r  %d pairs · %.0f states/sec · frontier %d · %.1f%% of budget%!"
    p.Csp.Search.pairs p.Csp.Search.rate p.Csp.Search.frontier
    (100. *. p.Csp.Search.budget_frac)

let json_verdict j =
  match Obs.Json.member "verdict" j with
  | Some (Obs.Json.Str s) -> s
  | _ -> ""

let splice_diags diags doc =
  match diags, doc with
  | Some (_ :: _ as ds), Obs.Json.Obj fields ->
    Obs.Json.Obj (fields @ [ "diagnostics", Analysis.Diag.json_of_list ds ])
  | _ -> doc

(* Exit codes: 0 all assertions hold, 1 at least one definite failure,
   2 load/usage error (including a stack overflow or out-of-memory while
   loading or translating the model), 3 no failures but at least one
   inconclusive (budget exhausted — rerun with a larger
   --timeout/--max-states), 4 blocking lint diagnostics under
   --lint/--deny-warnings, 5 interrupted by SIGINT/SIGTERM — the partial
   report is still valid, and with --checkpoint-out the run can be
   continued by --resume. A definite failure outranks an interrupt
   outranks a plain inconclusive. *)
let run path max_states timeout jobs list_only dot format progress trace_out
    lint deny_warnings checkpoint_out resume_file memory_limit reductions
    output use_cache cache_dir =
  match Csp.Reduce.pipeline_of_string reductions with
  | Error msg ->
    Format.eprintf "--reductions: %s@." msg;
    2
  | Ok pipeline ->
  let lint = lint || deny_warnings in
  let workers =
    if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs
  in
  let token = Serve.Signals.create () in
  Serve.Signals.install_termination token;
  (* The trace stream goes to a hidden temp file renamed into place on
     close, so an interrupt can never leave a truncated JSONL artifact. *)
  let trace_tmp =
    Option.map
      (fun path ->
        let temp_dir = Filename.dirname path in
        let tmp, oc =
          Filename.open_temp_file ~temp_dir
            ("." ^ Filename.basename path ^ ".")
            ".tmp"
        in
        (path, tmp, oc))
      trace_out
  in
  let obs =
    match trace_tmp with
    | Some (_, _, oc) -> Obs.create (Obs.Jsonl oc)
    | None -> Obs.silent
  in
  let emit_report text =
    match output with
    | Some path -> Serve.Fsio.atomic_write ~path text
    | None -> print_string text
  in
  (* One cache per invocation: within a run it deduplicates spec/impl
     compilation across assertions; with --cache-dir it also persists
     graphs so the next invocation starts warm. *)
  let cache =
    if use_cache || Option.is_some cache_dir then
      let persist =
        Option.map
          (fun dir ->
            (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
             with Unix.Unix_error _ -> ());
            {
              Csp.Cache.dir;
              write = (fun ~path text -> Serve.Fsio.atomic_write ~path text);
            })
          cache_dir
      in
      Some (Csp.Cache.create ~obs ?persist ())
    else None
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.flush obs;
      Option.iter
        (fun (path, tmp, oc) ->
          close_out_noerr oc;
          try Sys.rename tmp path with Sys_error _ -> ())
        trace_tmp)
    (fun () ->
      match read_file path with
      | exception Sys_error msg ->
        Format.eprintf "%s@." msg;
        2
      | source ->
      match Cspm.Elaborate.load_string ~obs source with
      | exception Cspm.Parser.Parse_error (msg, pos) ->
        Format.eprintf "%s:%a: syntax error: %s@." path Cspm.Ast.pp_pos pos msg;
        2
      | exception Cspm.Lexer.Lex_error (msg, pos) ->
        Format.eprintf "%s:%a: lexical error: %s@." path Cspm.Ast.pp_pos pos
          msg;
        2
      | exception Cspm.Elaborate.Elab_error (msg, pos) ->
        (match pos with
         | Some pos -> Format.eprintf "%s:%a: %s@." path Cspm.Ast.pp_pos pos msg
         | None -> Format.eprintf "%s: %s@." path msg);
        2
      | loaded ->
        if Option.is_some dot then begin
          let name = Option.get dot in
          match Csp.Defs.proc loaded.Cspm.Elaborate.defs name with
          | None ->
            Format.eprintf "%s: no process named %s@." path name;
            2
          | Some (_ :: _, _) ->
            Format.eprintf
              "%s: %s takes parameters; --dot needs a closed process@." path
              name;
            2
          | Some ([], _) ->
            let lts =
              Csp.Lts.compile ~max_states loaded.Cspm.Elaborate.defs
                (Csp.Proc.call (name, []))
            in
            print_string (Csp.Lts.to_dot lts);
            0
        end
        else if list_only then begin
          List.iter
            (fun (a, _) -> Format.printf "%a@." Cspm.Print.pp_assertion a)
            loaded.Cspm.Elaborate.assertions;
          0
        end
        else begin
          (* The static pass runs (and prints) before any refinement so a
             defective model fails fast instead of burning the search
             budget. Blocking diagnostics abort with their own exit code. *)
          let diags =
            if lint then
              Some (Analysis.Cspm_analyze.analyze_loaded ~obs ~file:path loaded)
            else None
          in
          (match format, diags with
           | Pretty, Some (_ :: _ as ds) ->
             Format.printf "@[<v>%a@]@." Analysis.Diag.pp_list ds
           | _ -> ());
          match diags with
          | Some ds when Analysis.Diag.blocking ~deny_warnings ds ->
            (match format with
             | Json ->
               print_string
                 (Obs.Json.to_string (Analysis.Diag.json_of_list ds));
               print_newline ()
             | Pretty ->
               Format.printf "refinement not run: blocking diagnostics@.");
            Analysis.Diag.exit_code
          | _ ->
          let ticked = ref false in
          let config =
            let open Csp.Check_config in
            let c =
              default |> with_max_states max_states |> with_workers workers
              |> with_obs obs
              |> with_cancel (Serve.Signals.read token)
              |> with_reductions pipeline
            in
            let c =
              match timeout with Some t -> with_deadline t c | None -> c
            in
            let c =
              match memory_limit with
              | Some mb -> with_memory_limit mb c
              | None -> c
            in
            let c =
              match cache with Some k -> with_cache k c | None -> c
            in
            if progress then
              with_progress
                (fun p ->
                  ticked := true;
                  progress_line p)
                c
            else c
          in
          (* The digest covers the reduction setting as well as the script
             text: a checkpoint records a visit order, and the visit order
             of a reduced search means nothing to a differently-reduced
             one, so a mismatched --resume must fail loudly up front. *)
          let script_digest =
            Csp.Cache.script_digest
              (source ^ "\x00reductions="
              ^ Csp.Reduce.pipeline_to_string pipeline)
          in
          let resume_state =
            match resume_file with
            | None -> Ok None
            | Some file -> (
              match read_file file with
              | exception Sys_error msg -> Error msg
              | text -> (
                match Obs.Json.parse text with
                | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
                | Ok json -> (
                  match Cspm.Check.resume_state_of_json json with
                  | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
                  | Ok st ->
                    if
                      not
                        (String.equal st.Cspm.Check.script_digest
                           script_digest)
                    then
                      Error
                        (Printf.sprintf
                           "%s: checkpoint was taken against a different \
                            script or --reductions setting"
                           file)
                    else Ok (Some st))))
          in
          match resume_state with
          | Error msg ->
            Format.eprintf "%s@." msg;
            2
          | Ok resume_state ->
            if Option.is_some checkpoint_out || Option.is_some resume_file
            then begin
              (* The crash-safe sequential path: assertions run in script
                 order so an interrupt has a well-defined "next assertion"
                 to record, and a resumed run knows exactly what is left. *)
              let start, resume_first, completed =
                match resume_state with
                | Some st ->
                  ( st.Cspm.Check.next_index,
                    st.Cspm.Check.search,
                    st.Cspm.Check.completed )
                | None -> (0, None, [])
              in
              let outcomes, stop =
                Cspm.Check.run_seq ~start ?resume_first ~config loaded
              in
              if !ticked then Printf.eprintf "\n%!";
              let rendered_new =
                List.mapi
                  (fun i o -> Cspm.Check.json_of_outcome (start + i) o)
                  outcomes
              in
              let rendered = completed @ rendered_new in
              (* checkpoint before report: if writing the report is what
                 dies next, the checkpoint already exists *)
              (match stop, checkpoint_out with
               | Some s, Some ck_path ->
                 let settled = s.Cspm.Check.next_index - start in
                 let st =
                   {
                     Cspm.Check.script_digest;
                     completed =
                       completed
                       @ List.filteri (fun i _ -> i < settled) rendered_new;
                     next_index = s.Cspm.Check.next_index;
                     search = s.Cspm.Check.search;
                   }
                 in
                 Serve.Fsio.atomic_write ~path:ck_path
                   (Obs.Json.to_string (Cspm.Check.json_of_resume_state st)
                    ^ "\n");
                 Format.eprintf "interrupted: checkpoint written to %s@."
                   ck_path
               | Some _, None ->
                 Format.eprintf
                   "interrupted (no --checkpoint-out, so nothing to resume \
                    from)@."
               | None, Some ck_path ->
                 (* the run finished: a stale checkpoint would resume into
                    the past, so clear it *)
                 if Sys.file_exists ck_path then Sys.remove ck_path
               | None, None -> ());
              let count v =
                List.length
                  (List.filter
                     (fun j -> String.equal (json_verdict j) v)
                     rendered)
              in
              let failures = count "fail" in
              let inconclusive = count "inconclusive" in
              (match format with
               | Json ->
                 let doc =
                   splice_diags diags
                     (Cspm.Check.report_of_json_outcomes
                        ?cache:(Option.map Csp.Cache.stats cache)
                        rendered)
                 in
                 emit_report (Obs.Json.to_string doc ^ "\n")
               | Pretty ->
                 let buf = Buffer.create 256 in
                 let bppf = Format.formatter_of_buffer buf in
                 List.iter
                   (fun j ->
                     let a =
                       match Obs.Json.member "assertion" j with
                       | Some (Obs.Json.Str s) -> s
                       | _ -> "?"
                     in
                     Format.fprintf bppf "[%s] %s (from checkpoint)@."
                       (String.uppercase_ascii (json_verdict j))
                       a)
                   completed;
                 Format.fprintf bppf "@[<v>%a@]@." Cspm.Check.pp_outcomes
                   outcomes;
                 Format.fprintf bppf
                   "%d assertion(s), %d failure(s), %d inconclusive@."
                   (List.length rendered) failures inconclusive;
                 Format.pp_print_flush bppf ();
                 emit_report (Buffer.contents buf));
              if failures > 0 then 1
              else if Option.is_some stop then 5
              else if inconclusive > 0 then 3
              else 0
            end
            else begin
              let outcomes = Cspm.Check.run ~config loaded in
              (* finish the carriage-return progress line before reporting *)
              if !ticked then Printf.eprintf "\n%!";
              let count p = List.length (List.filter p outcomes) in
              let failures =
                count (fun o ->
                    match o.Cspm.Check.result with
                    | Csp.Refine.Fails _ -> true
                    | _ -> false)
              in
              let inconclusive =
                count (fun o -> Csp.Refine.inconclusive o.Cspm.Check.result)
              in
              let interrupted =
                List.exists
                  (fun o ->
                    match o.Cspm.Check.result with
                    | Csp.Refine.Inconclusive (_, hint) ->
                      hint.Csp.Refine.exhausted = Csp.Refine.Interrupt
                    | _ -> false)
                  outcomes
              in
              (match format with
               | Json ->
                 let doc =
                   splice_diags diags
                     (Cspm.Check.json_of_outcomes
                        ?cache:(Option.map Csp.Cache.stats cache)
                        outcomes)
                 in
                 emit_report (Obs.Json.to_string doc ^ "\n")
               | Pretty ->
                 emit_report
                   (Format.asprintf
                      "@[<v>%a@]@.%d assertion(s), %d failure(s), %d \
                       inconclusive@."
                      Cspm.Check.pp_outcomes outcomes (List.length outcomes)
                      failures inconclusive));
              if failures > 0 then 1
              else if interrupted then 5
              else if inconclusive > 0 then 3
              else 0
            end
        end)

let run path max_states timeout jobs list_only dot format progress trace_out
    lint deny_warnings checkpoint_out resume_file memory_limit reductions
    output use_cache cache_dir =
  (* The two non-budgeted resource exhaustions a pathological model can
     trigger land here rather than as raw uncaught exceptions. *)
  try
    run path max_states timeout jobs list_only dot format progress trace_out
      lint deny_warnings checkpoint_out resume_file memory_limit reductions
      output use_cache cache_dir
  with
  | Stack_overflow ->
    Format.eprintf
      "%s: stack overflow — the model recurses too deeply; simplify the \
       process structure or raise the system stack limit@."
      path;
    2
  | Out_of_memory ->
    Format.eprintf
      "%s: out of memory — bound the search with --max-states or degrade \
       gracefully with --memory-limit@."
      path;
    2

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCRIPT" ~doc:"CSPm script to check.")

let max_states_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-states" ] ~docv:"N"
        ~doc:"State bound for compilation and product exploration.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget for the whole run. Each assertion's slice is \
           recomputed as remaining budget over remaining assertions, so \
           time a fast assertion leaves unused rolls forward to later \
           ones. Checks that exhaust their slice report INCONCLUSIVE \
           with a resume hint instead of an answer; if any assertion is \
           inconclusive and none definitely fails, the exit code is 3.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of OCaml domains (cores) for refinement checking; 0 \
           means the runtime's recommended count. Verdicts, \
           counterexamples, and state/pair counts are identical to a \
           single-core run.")

let list_arg =
  Arg.(
    value & flag
    & info [ "l"; "list" ] ~doc:"List the assertions without running them.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"PROCESS"
        ~doc:
          "Instead of checking, print the named process's state graph in \
           Graphviz format (FDR's visualisation role).")

let format_arg =
  Arg.(
    value
    & opt (enum [ "pretty", Pretty; "json", Json ]) Pretty
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,pretty) (human-readable, the default) or \
           $(b,json) (one machine-readable document on stdout, schema \
           cspm-check/1: per-assertion verdict, counterexample trace, \
           stats, and resume hint, plus a summary object). Exit codes \
           are the same in both formats.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Render a live progress line on stderr (pairs explored, \
           states/sec, frontier depth, % of the pair budget) while each \
           assertion's product search runs. Updates are throttled to the \
           engine's polling cadence, so fast checks print nothing.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the pre-check static analysis before any refinement: \
           unguarded recursion, impossible synchronisation sets, \
           processes unreachable from assertions, dead channels, and \
           unbounded-data recursion. Diagnostics (stable CSPM0xx codes \
           with source positions) print before the first check; with \
           $(b,--format) $(b,json) they appear as a $(b,diagnostics) \
           field of the output document. Verdicts and counterexamples \
           are unaffected.")

let deny_warnings_arg =
  Arg.(
    value & flag
    & info [ "deny-warnings" ]
        ~doc:
          "Implies $(b,--lint); treat warning diagnostics as blocking: \
           if the analysis reports any error or warning, print the \
           diagnostics and exit with status 4 without running any \
           assertion.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the observability stream (parse/elaborate/compile/\
           normalise/search spans, then a final metric snapshot) to \
           $(docv) as JSON Lines. The file is written to a temporary \
           name and renamed into place on completion, so an interrupted \
           run never leaves a truncated stream. Does not affect verdicts \
           or timing of the checks themselves.")

let checkpoint_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-out" ] ~docv:"FILE"
        ~doc:
          "Run assertions sequentially and, if the run is interrupted by \
           SIGINT/SIGTERM, write a resumable checkpoint (schema \
           cspm-checkpoint/1) to $(docv): the outcomes already settled, \
           the assertion that was cut short, and the engine's \
           commit-boundary snapshot of its product search. The write is \
           atomic (temp file + rename). If the run completes, a stale \
           $(docv) from an earlier interrupt is removed.")

let resume_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Continue an interrupted run from the checkpoint in $(docv). \
           The script must be byte-identical to the one the checkpoint \
           was taken against (a digest is checked), and budgets must \
           match the interrupted run. Settled outcomes are reported from \
           the checkpoint; the interrupted assertion is fast-forwarded \
           to the exact point it was cut and continues from there. Final \
           verdicts, counterexamples, and state/pair counts are \
           byte-identical to an uninterrupted run.")

let memory_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "memory-limit" ] ~docv:"MB"
        ~doc:
          "Heap watermark in MiB, polled at the engine's cadence: if the \
           OCaml heap crosses it, the running check returns INCONCLUSIVE \
           (exhausted: memory) while the process is still healthy enough \
           to write its report and checkpoint — instead of being killed \
           by the OOM killer mid-write.")

let reductions_arg =
  Arg.(
    value & opt string "default"
    & info [ "reductions" ] ~docv:"LIST"
        ~doc:
          "Staged state-space reductions applied before/during the \
           product search: $(b,default) (all of them), $(b,none) (the \
           raw engine), or a comma-separated subset of $(b,dead) \
           (relabel events the specification ignores everywhere to tau; \
           traces checks only), $(b,tau) (tau-chain/SCC compression), \
           $(b,bisim) (strong-bisimulation quotient), $(b,por) \
           (ample-set partial-order reduction of independent \
           interleavings, applied during the search; traces checks \
           only). Passes that do not apply to an assertion's model are \
           skipped. Verdicts and counterexample traces are identical \
           under every setting — counterexamples are re-derived by the \
           raw engine — only speed and the reported reduction stats \
           change. A checkpoint can only be resumed under the \
           $(b,--reductions) setting it was taken with.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:
          "Write the report (either format) to $(docv) atomically (temp \
           file + rename) instead of stdout.")

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Cache compiled/normalised/reduced LTSs, keyed by a content \
           digest of each assertion's elaborated terms plus everything \
           that affects the graphs (declarations, reachable definitions, \
           state budget, reduction pipeline, refinement model). Within a \
           run, assertions sharing a specification or implementation \
           compile it once. Verdicts, counterexamples, and \
           per-assertion stats are byte-identical with or without the \
           cache; with $(b,--format) $(b,json) the report gains a \
           top-level $(b,cache) object with hit/miss/eviction counts.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Implies $(b,--cache); additionally persist cache entries to \
           $(docv) (created if missing) and reuse them across \
           invocations, so re-checking an edited script only recompiles \
           the components whose definitions changed. Entries are written \
           atomically and validated on load; stale or foreign files are \
           ignored.")

let cmd =
  let doc = "run the assert declarations of a CSPm script" in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 — every assertion holds.";
      `P "1 — at least one assertion definitely fails.";
      `P
        "2 — the script could not be loaded (syntax or semantic error, \
         stack overflow, or out of memory).";
      `P
        "3 — no assertion fails, but at least one is inconclusive \
         because a state, pair, $(b,--timeout), or $(b,--memory-limit) \
         budget was exhausted.";
      `P
        "4 — the $(b,--lint) analysis reported blocking diagnostics \
         (an error, or any warning under $(b,--deny-warnings)); no \
         assertion was run.";
      `P
        "5 — interrupted by SIGINT/SIGTERM: the report covers what was \
         checked, and with $(b,--checkpoint-out) the run can be \
         continued with $(b,--resume). A definite failure still exits \
         1; an interrupt outranks a plain inconclusive 3.";
    ]
  in
  Cmd.v
    (Cmd.info "cspm_check" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ file_arg $ max_states_arg $ timeout_arg $ jobs_arg
      $ list_arg $ dot_arg $ format_arg $ progress_arg $ trace_out_arg
      $ lint_arg $ deny_warnings_arg $ checkpoint_out_arg $ resume_arg
      $ memory_limit_arg $ reductions_arg $ output_arg $ cache_arg
      $ cache_dir_arg)

let () = exit (Cmd.eval' cmd)
