(* cspm_check — a miniature FDR: load a CSPm script and run its assert
   declarations (trace/failures refinement, deadlock and divergence
   freedom), printing counterexample traces for failures. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type format = Pretty | Json

(* The live progress line: one line on stderr, rewritten in place at the
   engine's progress cadence (once per 256 dequeues), so tiny checks
   print nothing. stdout stays clean for --format json. *)
let progress_line (p : Csp.Search.progress) =
  Printf.eprintf "\r  %d pairs · %.0f states/sec · frontier %d · %.1f%% of budget%!"
    p.Csp.Search.pairs p.Csp.Search.rate p.Csp.Search.frontier
    (100. *. p.Csp.Search.budget_frac)

(* Exit codes: 0 all assertions hold, 1 at least one definite failure,
   2 load/usage error, 3 no failures but at least one inconclusive
   (budget exhausted — rerun with a larger --timeout/--max-states),
   4 blocking lint diagnostics under --lint/--deny-warnings. *)
let run path max_states timeout jobs list_only dot format progress trace_out
    lint deny_warnings =
  let lint = lint || deny_warnings in
  let workers =
    if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs
  in
  let trace_oc = Option.map open_out trace_out in
  let obs =
    match trace_oc with
    | Some oc -> Obs.create (Obs.Jsonl oc)
    | None -> Obs.silent
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.flush obs;
      Option.iter close_out_noerr trace_oc)
    (fun () ->
      match Cspm.Elaborate.load_string ~obs (read_file path) with
      | exception Sys_error msg ->
        Format.eprintf "%s@." msg;
        2
      | exception Cspm.Parser.Parse_error (msg, pos) ->
        Format.eprintf "%s:%a: syntax error: %s@." path Cspm.Ast.pp_pos pos msg;
        2
      | exception Cspm.Lexer.Lex_error (msg, pos) ->
        Format.eprintf "%s:%a: lexical error: %s@." path Cspm.Ast.pp_pos pos
          msg;
        2
      | exception Cspm.Elaborate.Elab_error (msg, pos) ->
        (match pos with
         | Some pos -> Format.eprintf "%s:%a: %s@." path Cspm.Ast.pp_pos pos msg
         | None -> Format.eprintf "%s: %s@." path msg);
        2
      | loaded ->
        if Option.is_some dot then begin
          let name = Option.get dot in
          match Csp.Defs.proc loaded.Cspm.Elaborate.defs name with
          | None ->
            Format.eprintf "%s: no process named %s@." path name;
            2
          | Some (_ :: _, _) ->
            Format.eprintf
              "%s: %s takes parameters; --dot needs a closed process@." path
              name;
            2
          | Some ([], _) ->
            let lts =
              Csp.Lts.compile ~max_states loaded.Cspm.Elaborate.defs
                (Csp.Proc.call (name, []))
            in
            print_string (Csp.Lts.to_dot lts);
            0
        end
        else if list_only then begin
          List.iter
            (fun (a, _) -> Format.printf "%a@." Cspm.Print.pp_assertion a)
            loaded.Cspm.Elaborate.assertions;
          0
        end
        else begin
          (* The static pass runs (and prints) before any refinement so a
             defective model fails fast instead of burning the search
             budget. Blocking diagnostics abort with their own exit code. *)
          let diags =
            if lint then
              Some (Analysis.Cspm_analyze.analyze_loaded ~obs ~file:path loaded)
            else None
          in
          (match format, diags with
           | Pretty, Some (_ :: _ as ds) ->
             Format.printf "@[<v>%a@]@." Analysis.Diag.pp_list ds
           | _ -> ());
          match diags with
          | Some ds when Analysis.Diag.blocking ~deny_warnings ds ->
            (match format with
             | Json ->
               print_string
                 (Obs.Json.to_string (Analysis.Diag.json_of_list ds));
               print_newline ()
             | Pretty ->
               Format.printf "refinement not run: blocking diagnostics@.");
            Analysis.Diag.exit_code
          | _ ->
          let ticked = ref false in
          let config =
            let open Csp.Check_config in
            let c =
              default |> with_max_states max_states |> with_workers workers
              |> with_obs obs
            in
            let c =
              match timeout with Some t -> with_deadline t c | None -> c
            in
            if progress then
              with_progress
                (fun p ->
                  ticked := true;
                  progress_line p)
                c
            else c
          in
          let outcomes = Cspm.Check.run ~config loaded in
          (* finish the carriage-return progress line before reporting *)
          if !ticked then Printf.eprintf "\n%!";
          let count p = List.length (List.filter p outcomes) in
          let failures =
            count (fun o ->
                match o.Cspm.Check.result with
                | Csp.Refine.Fails _ -> true
                | _ -> false)
          in
          let inconclusive =
            count (fun o -> Csp.Refine.inconclusive o.Cspm.Check.result)
          in
          (match format with
           | Json ->
             let doc = Cspm.Check.json_of_outcomes outcomes in
             let doc =
               match diags, doc with
               | Some ds, Obs.Json.Obj fields ->
                 Obs.Json.Obj
                   (fields @ [ "diagnostics", Analysis.Diag.json_of_list ds ])
               | _ -> doc
             in
             print_string (Obs.Json.to_string doc);
             print_newline ()
           | Pretty ->
             Format.printf "@[<v>%a@]@." Cspm.Check.pp_outcomes outcomes;
             Format.printf "%d assertion(s), %d failure(s), %d inconclusive@."
               (List.length outcomes) failures inconclusive);
          if failures > 0 then 1 else if inconclusive > 0 then 3 else 0
        end)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCRIPT" ~doc:"CSPm script to check.")

let max_states_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-states" ] ~docv:"N"
        ~doc:"State bound for compilation and product exploration.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget for the whole run. Each assertion's slice is \
           recomputed as remaining budget over remaining assertions, so \
           time a fast assertion leaves unused rolls forward to later \
           ones. Checks that exhaust their slice report INCONCLUSIVE \
           with a resume hint instead of an answer; if any assertion is \
           inconclusive and none definitely fails, the exit code is 3.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of OCaml domains (cores) for refinement checking; 0 \
           means the runtime's recommended count. Verdicts, \
           counterexamples, and state/pair counts are identical to a \
           single-core run.")

let list_arg =
  Arg.(
    value & flag
    & info [ "l"; "list" ] ~doc:"List the assertions without running them.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"PROCESS"
        ~doc:
          "Instead of checking, print the named process's state graph in \
           Graphviz format (FDR's visualisation role).")

let format_arg =
  Arg.(
    value
    & opt (enum [ "pretty", Pretty; "json", Json ]) Pretty
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,pretty) (human-readable, the default) or \
           $(b,json) (one machine-readable document on stdout, schema \
           cspm-check/1: per-assertion verdict, counterexample trace, \
           stats, and resume hint, plus a summary object). Exit codes \
           are the same in both formats.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Render a live progress line on stderr (pairs explored, \
           states/sec, frontier depth, % of the pair budget) while each \
           assertion's product search runs. Updates are throttled to the \
           engine's polling cadence, so fast checks print nothing.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the pre-check static analysis before any refinement: \
           unguarded recursion, impossible synchronisation sets, \
           processes unreachable from assertions, dead channels, and \
           unbounded-data recursion. Diagnostics (stable CSPM0xx codes \
           with source positions) print before the first check; with \
           $(b,--format) $(b,json) they appear as a $(b,diagnostics) \
           field of the output document. Verdicts and counterexamples \
           are unaffected.")

let deny_warnings_arg =
  Arg.(
    value & flag
    & info [ "deny-warnings" ]
        ~doc:
          "Implies $(b,--lint); treat warning diagnostics as blocking: \
           if the analysis reports any error or warning, print the \
           diagnostics and exit with status 4 without running any \
           assertion.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the observability stream (parse/elaborate/compile/\
           normalise/search spans, then a final metric snapshot) to \
           $(docv) as JSON Lines. Does not affect verdicts or timing \
           of the checks themselves.")

let cmd =
  let doc = "run the assert declarations of a CSPm script" in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 — every assertion holds.";
      `P "1 — at least one assertion definitely fails.";
      `P "2 — the script could not be loaded (syntax or semantic error).";
      `P
        "3 — no assertion fails, but at least one is inconclusive \
         because a state, pair, or $(b,--timeout) budget was exhausted.";
      `P
        "4 — the $(b,--lint) analysis reported blocking diagnostics \
         (an error, or any warning under $(b,--deny-warnings)); no \
         assertion was run.";
    ]
  in
  Cmd.v
    (Cmd.info "cspm_check" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ file_arg $ max_states_arg $ timeout_arg $ jobs_arg
      $ list_arg $ dot_arg $ format_arg $ progress_arg $ trace_out_arg
      $ lint_arg $ deny_warnings_arg)

let () = exit (Cmd.eval' cmd)
