(* cspm_check — a miniature FDR: load a CSPm script and run its assert
   declarations (trace/failures refinement, deadlock and divergence
   freedom), printing counterexample traces for failures. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes: 0 all assertions hold, 1 at least one definite failure,
   2 load/usage error, 3 no failures but at least one inconclusive
   (budget exhausted — rerun with a larger --timeout/--max-states). *)
let run path max_states timeout jobs list_only dot =
  let workers =
    if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs
  in
  match Cspm.Elaborate.load_string (read_file path) with
  | exception Sys_error msg ->
    Format.eprintf "%s@." msg;
    2
  | exception Cspm.Parser.Parse_error (msg, pos) ->
    Format.eprintf "%s:%a: syntax error: %s@." path Cspm.Ast.pp_pos pos msg;
    2
  | exception Cspm.Lexer.Lex_error (msg, pos) ->
    Format.eprintf "%s:%a: lexical error: %s@." path Cspm.Ast.pp_pos pos msg;
    2
  | exception Cspm.Elaborate.Elab_error (msg, pos) ->
    (match pos with
     | Some pos -> Format.eprintf "%s:%a: %s@." path Cspm.Ast.pp_pos pos msg
     | None -> Format.eprintf "%s: %s@." path msg);
    2
  | loaded ->
    if Option.is_some dot then begin
      let name = Option.get dot in
      match Csp.Defs.proc loaded.Cspm.Elaborate.defs name with
      | None ->
        Format.eprintf "%s: no process named %s@." path name;
        2
      | Some (_ :: _, _) ->
        Format.eprintf "%s: %s takes parameters; --dot needs a closed process@."
          path name;
        2
      | Some ([], _) ->
        let lts =
          Csp.Lts.compile ~max_states loaded.Cspm.Elaborate.defs
            (Csp.Proc.call (name, []))
        in
        print_string (Csp.Lts.to_dot lts);
        0
    end
    else if list_only then begin
      List.iter
        (fun (a, _) -> Format.printf "%a@." Cspm.Print.pp_assertion a)
        loaded.Cspm.Elaborate.assertions;
      0
    end
    else begin
      let outcomes =
        Cspm.Check.run ~max_states ?deadline:timeout ~workers loaded
      in
      Format.printf "@[<v>%a@]@." Cspm.Check.pp_outcomes outcomes;
      let count p = List.length (List.filter p outcomes) in
      let failures =
        count (fun o ->
            match o.Cspm.Check.result with
            | Csp.Refine.Fails _ -> true
            | _ -> false)
      in
      let inconclusive =
        count (fun o -> Csp.Refine.inconclusive o.Cspm.Check.result)
      in
      Format.printf "%d assertion(s), %d failure(s), %d inconclusive@."
        (List.length outcomes) failures inconclusive;
      if failures > 0 then 1 else if inconclusive > 0 then 3 else 0
    end

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCRIPT" ~doc:"CSPm script to check.")

let max_states_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-states" ] ~docv:"N"
        ~doc:"State bound for compilation and product exploration.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget for the whole run. Each assertion's slice is \
           recomputed as remaining budget over remaining assertions, so \
           time a fast assertion leaves unused rolls forward to later \
           ones. Checks that exhaust their slice report INCONCLUSIVE \
           with a resume hint instead of an answer; if any assertion is \
           inconclusive and none definitely fails, the exit code is 3.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of OCaml domains (cores) for refinement checking; 0 \
           means the runtime's recommended count. Verdicts, \
           counterexamples, and state/pair counts are identical to a \
           single-core run.")

let list_arg =
  Arg.(
    value & flag
    & info [ "l"; "list" ] ~doc:"List the assertions without running them.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"PROCESS"
        ~doc:
          "Instead of checking, print the named process's state graph in \
           Graphviz format (FDR's visualisation role).")

let cmd =
  let doc = "run the assert declarations of a CSPm script" in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 — every assertion holds.";
      `P "1 — at least one assertion definitely fails.";
      `P "2 — the script could not be loaded (syntax or semantic error).";
      `P
        "3 — no assertion fails, but at least one is inconclusive \
         because a state, pair, or $(b,--timeout) budget was exhausted.";
    ]
  in
  Cmd.v
    (Cmd.info "cspm_check" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ file_arg $ max_states_arg $ timeout_arg $ jobs_arg
      $ list_arg $ dot_arg)

let () = exit (Cmd.eval' cmd)
