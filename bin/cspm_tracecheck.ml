(* cspm_tracecheck — fleet-scale offline trace checking.

   Two subcommands close the scenario-factory loop: [generate] runs the
   OTA demonstration network under seeded fault plans and mass-produces
   a can-trace/1 NDJSON corpus; [check] streams a corpus through the
   trace-containment engine — the spec script's processes compiled once
   to normal form, one O(1) cursor per (stream, requirement) — and
   prints per-requirement verdict counts as text or the stable
   trace-check/1 JSON document. *)

let load_script path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | source -> (
    match Cspm.Elaborate.load_string source with
    | loaded -> Ok loaded
    | exception Cspm.Parser.Parse_error (msg, pos) ->
      Error (Format.asprintf "%a: syntax error: %s" Cspm.Ast.pp_pos pos msg)
    | exception Cspm.Lexer.Lex_error (msg, pos) ->
      Error (Format.asprintf "%a: lexical error: %s" Cspm.Ast.pp_pos pos msg)
    | exception Cspm.Elaborate.Elab_error (msg, pos) ->
      Error
        (match pos with
        | Some pos -> Format.asprintf "%a: %s" Cspm.Ast.pp_pos pos msg
        | None -> msg))
  | exception Sys_error msg -> Error msg

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Ok text
  | exception Sys_error msg -> Error msg

let run_check script corpus specs dbc workers max_states format sample_limit
    trace_out =
  let trace_oc = Option.map open_out trace_out in
  let obs =
    match trace_oc with
    | Some oc -> Obs.create (Obs.Jsonl oc)
    | None -> Obs.silent
  in
  let finish code =
    Obs.flush obs;
    Option.iter close_out_noerr trace_oc;
    code
  in
  let fail msg =
    prerr_endline ("cspm_tracecheck: " ^ msg);
    finish 2
  in
  let config =
    let open Csp.Check_config in
    let c = default |> with_obs obs in
    match max_states with Some n -> with_max_states n c | None -> c
  in
  let ( let* ) v k = match v with Error m -> `Exit (fail m) | Ok v -> k v in
  match
    let* loaded = load_script script in
    let* dbc_text =
      match dbc with None -> Ok None | Some p -> Result.map Option.some (read_file p)
    in
    let* map, requirements =
      Serve.Trace_run.prepare ~config ~script:loaded ~specs ~dbc:dbc_text
        ~corpus ()
    in
    let* report =
      Serve.Trace_run.check_corpus ~workers ~obs ~sample_limit ~map
        ~requirements ~path:corpus ()
    in
    (match format with
     | `Json ->
       print_string (Obs.Json.to_string (Serve.Trace_run.json_of_report report));
       print_newline ()
     | `Pretty -> Format.printf "%a@." Serve.Trace_run.pp_report report);
    `Exit (finish (if Serve.Trace_run.passed report then 0 else 1))
  with
  | `Exit code -> code

let run_generate out streams seed until_ms flawed_rate no_dbc =
  match
    Ota.Corpus.generate ~seed ~streams ~until_ms ~flawed_rate
      ~embed_dbc:(not no_dbc) ~path:out ()
  with
  | s ->
    Printf.printf
      "wrote %s: %d streams, %d entries (%d fault entries, %d flawed \
       streams), seed %d\n"
      out s.Ota.Corpus.streams s.Ota.Corpus.entries s.Ota.Corpus.faults
      s.Ota.Corpus.flawed seed;
    0
  | exception Sys_error msg ->
    prerr_endline ("cspm_tracecheck: " ^ msg);
    2

open Cmdliner

(* generate *)

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the can-trace/1 corpus to $(docv) (atomic + durable).")

let streams_arg =
  Arg.(
    value & opt int 1000
    & info [ "streams" ] ~docv:"N"
        ~doc:"Number of independent simulation runs (corpus streams).")

let gen_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Master seed. Every fault plan derives from it by PRNG splits, \
           so equal seeds give byte-identical corpora.")

let until_ms_arg =
  Arg.(
    value & opt int 400
    & info [ "until-ms" ] ~docv:"MS"
        ~doc:"Simulated milliseconds per stream.")

let flawed_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "flawed-rate" ] ~docv:"P"
        ~doc:
          "Probability a stream runs the flawed ECU (no tag \
           verification) — the planted R05 violation.")

let no_dbc_arg =
  Arg.(
    value & flag
    & info [ "no-dbc" ]
        ~doc:
          "Do not embed the CAN database in the corpus header (checking \
           will then need an explicit $(b,--dbc)).")

let generate_cmd =
  let doc = "mass-produce an adversarial OTA trace corpus" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the paper's demonstration network (VMG + target ECU) once \
         per stream under a seeded random fault plan — frame drops, bit \
         corruption, delay, duplication, babbling-idiot interference — \
         and streams every trace-log entry to a can-trace/1 NDJSON \
         corpus. Each stream opens with a $(b,meta) line recording its \
         plan; the CAN database is embedded in the header so the corpus \
         is self-contained.";
    ]
  in
  Cmd.v
    (Cmd.info "generate" ~doc ~man)
    Term.(
      const run_generate $ out_arg $ streams_arg $ gen_seed_arg
      $ until_ms_arg $ flawed_rate_arg $ no_dbc_arg)

(* check *)

let script_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCRIPT" ~doc:"CSPm script defining the specs.")

let corpus_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "corpus" ] ~docv:"FILE" ~doc:"can-trace/1 NDJSON corpus.")

let spec_arg =
  Arg.(
    value & opt_all string []
    & info [ "spec" ] ~docv:"NAME"
        ~doc:
          "Nullary process to check trace containment against \
           (repeatable). Default: every definition named SPEC*.")

let dbc_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "dbc" ] ~docv:"FILE"
        ~doc:
          "CAN database mapping frames to spec events. Default: the \
           database embedded in the corpus header.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "workers" ] ~docv:"N"
        ~doc:
          "Parsing/mapping domains. Verdicts are identical at any \
           $(docv); only throughput changes.")

let max_states_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-states" ] ~docv:"N"
        ~doc:"State budget for compiling each spec's normal form.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("pretty", `Pretty); ("json", `Json) ]) `Pretty
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,pretty) text or the stable $(b,json) \
           trace-check/1 document.")

let sample_limit_arg =
  Arg.(
    value & opt int 5
    & info [ "sample-limit" ] ~docv:"N"
        ~doc:"Rejection examples retained per requirement.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the observability stream (tracecheck.* counters, \
           events/s histogram, spans) to $(docv) as JSON Lines.")

let check_cmd =
  let doc = "check a trace corpus against CSPm specs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles each spec once to its normal form (through the \
         content-addressed LTS cache when warm), maps every logged \
         frame to a spec event via the extractor's channel alphabet, \
         and advances one O(1) cursor per (stream, requirement) — no \
         state-space search, constant memory per stream, parallel \
         across domains. A corrupt corpus line costs only its own \
         stream.";
      `S Manpage.s_exit_status;
      `P "0 — every stream accepted by every requirement.";
      `P "1 — some stream rejected, corrupt, or malformed.";
      `P "2 — the script, database, or corpus could not be loaded.";
    ]
  in
  Cmd.v
    (Cmd.info "check" ~doc ~man)
    Term.(
      const run_check $ script_arg $ corpus_arg $ spec_arg $ dbc_arg
      $ workers_arg $ max_states_arg $ format_arg $ sample_limit_arg
      $ trace_out_arg)

let cmd =
  let doc = "streaming trace containment for CAN trace corpora" in
  Cmd.group (Cmd.info "cspm_tracecheck" ~version:"1.0.0" ~doc)
    [ generate_cmd; check_cmd ]

let () = exit (Cmd.eval' cmd)
