(* cspm_checkd — a supervised CSPm checking service over stdio NDJSON.

   One request object per stdin line (schema cspm-checkd/1: submit /
   health / drain), one event object per stdout line. Job results embed
   the same cspm-check/1 report cspm_check --format json prints, so
   clients parse one vocabulary. Jobs queue up to a bound (beyond it
   submissions are rejected — that is the backpressure), run one at a
   time, and a job whose attempt exhausts its wall budget is retried
   with exponential backoff and jitter, resuming from the interrupted
   attempt's engine checkpoint rather than restarting. SIGINT/SIGTERM
   drain gracefully: the running search stops at its next poll, reports
   a valid partial result, and the daemon emits its final drained event
   before exiting. *)

let ensure_dir dir =
  try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  with Unix.Unix_error _ -> ()

let run queue_limit retries backoff_s backoff_max_s deadline_cap seed
    trace_out use_cache cache_dir state_dir =
  let token = Serve.Signals.create () in
  Serve.Signals.install_termination token;
  let trace_oc = Option.map open_out trace_out in
  let obs =
    match trace_oc with
    | Some oc -> Obs.create (Obs.Jsonl oc)
    | None -> Obs.silent
  in
  let emit json =
    print_string (Obs.Json.to_string json);
    print_newline ();
    flush stdout
  in
  (* One cache for the daemon's lifetime, shared by every job: a stream
     of near-duplicate models (the edit–re-check loop) only recompiles
     the components each edit actually changed. *)
  let cache =
    if use_cache || Option.is_some cache_dir then
      let persist =
        Option.map
          (fun dir ->
            ensure_dir dir;
            {
              Csp.Cache.dir;
              write = (fun ~path text -> Serve.Fsio.atomic_write ~path text);
            })
          cache_dir
      in
      Some (Csp.Cache.create ~obs ?persist ())
    else None
  in
  Option.iter ensure_dir state_dir;
  let cfg =
    {
      (Serve.Runner.default_config ~emit) with
      Serve.Runner.queue_limit;
      default_retries = retries;
      backoff_base_s = backoff_s;
      backoff_max_s;
      max_deadline_factor = deadline_cap;
      seed;
      obs;
      cancel = token;
      cache;
      state_dir;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.flush obs;
      Option.iter close_out_noerr trace_oc)
    (fun () ->
      match Serve.Runner.serve cfg stdin with
      | () -> 0
      | exception Stack_overflow ->
        prerr_endline "cspm_checkd: stack overflow";
        2
      | exception Out_of_memory ->
        prerr_endline "cspm_checkd: out of memory";
        2)

open Cmdliner

let queue_limit_arg =
  Arg.(
    value & opt int 16
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:
          "Bounded job queue: submissions arriving while $(docv) jobs \
           are already waiting are rejected (event $(b,rejected), reason \
           \"queue full\") — the client's backpressure signal.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Default retry budget for jobs that do not set max_retries: a \
           job attempt that exhausts its wall budget is retried up to \
           $(docv) times, each attempt resuming from the previous one's \
           checkpoint with a doubled deadline.")

let backoff_arg =
  Arg.(
    value & opt float 0.05
    & info [ "backoff" ] ~docv:"SECS"
        ~doc:
          "Base backoff before the first retry; doubles each retry and \
           is jittered by a uniform factor in [0.5, 1.5).")

let backoff_max_arg =
  Arg.(
    value & opt float 2.0
    & info [ "backoff-max" ] ~docv:"SECS"
        ~doc:"Ceiling on the (pre-jitter) backoff.")

let seed_arg =
  Arg.(
    value & opt int 0x5eed
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Seed for the jitter PRNG — fix it to make retry schedules \
           reproducible.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the observability stream (per-job spans plus the \
           serve.* queue/health gauges and retry counters) to $(docv) \
           as JSON Lines.")

let deadline_cap_arg =
  Arg.(
    value & opt float 8.0
    & info [ "deadline-cap" ] ~docv:"FACTOR"
        ~doc:
          "Ceiling on the per-attempt wall budget: retries double a \
           job's deadline_s but never past deadline_s × $(docv), so a \
           pathological model cannot hold the runner for exponentially \
           longer than the client asked.")

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Share one content-addressed LTS cache across all jobs: \
           compiled, normalised, and reduced graphs are keyed by digests \
           of each assertion's elaborated terms (plus budgets, model, \
           and reduction pipeline), so a job stream of near-duplicate \
           models — the edit-one-handler re-check loop — only \
           recompiles what changed. Bounded by resident states with LRU \
           eviction; hit/miss/eviction counts appear in $(b,health) \
           events and in every result's embedded report as a \
           $(b,cache) object. Verdicts are byte-identical either way.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Implies $(b,--cache); persist cache entries to $(docv) \
           (created if missing) so a restarted daemon starts warm. \
           Entries are written atomically and durably, and validated on \
           load.")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Spill each job's retry checkpoint to $(docv) (created if \
           missing) as a cspm-checkpoint/1 document before every \
           backoff, refreshed if shutdown interrupts the job, and \
           removed when the job reaches a terminal verdict — a daemon \
           crash mid-retry leaves a resume handle usable with \
           $(b,cspm_check --resume).")

let cmd =
  let doc = "supervised CSPm checking jobs over stdio NDJSON" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Requests (one JSON object per stdin line, schema \
         cspm-checkd/1): $(b,submit) with an id and an inline \
         $(b,script) or a $(b,path), plus optional $(b,deadline_s), \
         $(b,workers), $(b,max_states), $(b,max_retries); $(b,health); \
         $(b,drain).";
      `P
        "Events (one JSON object per stdout line): $(b,accepted), \
         $(b,rejected), $(b,started), $(b,retrying), $(b,result) with \
         the embedded cspm-check/1 report, $(b,failed), $(b,health), \
         and a final $(b,drained). End of input is an implicit drain; \
         SIGINT/SIGTERM interrupt the running job at its next poll and \
         drain.";
      `S Manpage.s_exit_status;
      `P "0 — drained cleanly (even if individual jobs failed).";
      `P "2 — the daemon itself ran out of stack or memory.";
    ]
  in
  Cmd.v
    (Cmd.info "cspm_checkd" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ queue_limit_arg $ retries_arg $ backoff_arg
      $ backoff_max_arg $ deadline_cap_arg $ seed_arg $ trace_out_arg
      $ cache_arg $ cache_dir_arg $ state_dir_arg)

let () = exit (Cmd.eval' cmd)
