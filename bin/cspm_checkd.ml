(* cspm_checkd — a supervised CSPm checking service over stdio NDJSON.

   One request object per stdin line (schema cspm-checkd/1: submit /
   health / drain), one event object per stdout line. Job results embed
   the same cspm-check/1 report cspm_check --format json prints, so
   clients parse one vocabulary. Jobs queue up to a bound (beyond it
   submissions are rejected — that is the backpressure), run one at a
   time, and a job whose attempt exhausts its wall budget is retried
   with exponential backoff and jitter, resuming from the interrupted
   attempt's engine checkpoint rather than restarting. SIGINT/SIGTERM
   drain gracefully: the running search stops at its next poll, reports
   a valid partial result, and the daemon emits its final drained event
   before exiting. *)

let run queue_limit retries backoff_s backoff_max_s seed trace_out =
  let token = Serve.Signals.create () in
  Serve.Signals.install_termination token;
  let trace_oc = Option.map open_out trace_out in
  let obs =
    match trace_oc with
    | Some oc -> Obs.create (Obs.Jsonl oc)
    | None -> Obs.silent
  in
  let emit json =
    print_string (Obs.Json.to_string json);
    print_newline ();
    flush stdout
  in
  let cfg =
    {
      (Serve.Runner.default_config ~emit) with
      Serve.Runner.queue_limit;
      default_retries = retries;
      backoff_base_s = backoff_s;
      backoff_max_s;
      seed;
      obs;
      cancel = token;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.flush obs;
      Option.iter close_out_noerr trace_oc)
    (fun () ->
      match Serve.Runner.serve cfg stdin with
      | () -> 0
      | exception Stack_overflow ->
        prerr_endline "cspm_checkd: stack overflow";
        2
      | exception Out_of_memory ->
        prerr_endline "cspm_checkd: out of memory";
        2)

open Cmdliner

let queue_limit_arg =
  Arg.(
    value & opt int 16
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:
          "Bounded job queue: submissions arriving while $(docv) jobs \
           are already waiting are rejected (event $(b,rejected), reason \
           \"queue full\") — the client's backpressure signal.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Default retry budget for jobs that do not set max_retries: a \
           job attempt that exhausts its wall budget is retried up to \
           $(docv) times, each attempt resuming from the previous one's \
           checkpoint with a doubled deadline.")

let backoff_arg =
  Arg.(
    value & opt float 0.05
    & info [ "backoff" ] ~docv:"SECS"
        ~doc:
          "Base backoff before the first retry; doubles each retry and \
           is jittered by a uniform factor in [0.5, 1.5).")

let backoff_max_arg =
  Arg.(
    value & opt float 2.0
    & info [ "backoff-max" ] ~docv:"SECS"
        ~doc:"Ceiling on the (pre-jitter) backoff.")

let seed_arg =
  Arg.(
    value & opt int 0x5eed
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Seed for the jitter PRNG — fix it to make retry schedules \
           reproducible.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the observability stream (per-job spans plus the \
           serve.* queue/health gauges and retry counters) to $(docv) \
           as JSON Lines.")

let cmd =
  let doc = "supervised CSPm checking jobs over stdio NDJSON" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Requests (one JSON object per stdin line, schema \
         cspm-checkd/1): $(b,submit) with an id and an inline \
         $(b,script) or a $(b,path), plus optional $(b,deadline_s), \
         $(b,workers), $(b,max_states), $(b,max_retries); $(b,health); \
         $(b,drain).";
      `P
        "Events (one JSON object per stdout line): $(b,accepted), \
         $(b,rejected), $(b,started), $(b,retrying), $(b,result) with \
         the embedded cspm-check/1 report, $(b,failed), $(b,health), \
         and a final $(b,drained). End of input is an implicit drain; \
         SIGINT/SIGTERM interrupt the running job at its next poll and \
         drain.";
      `S Manpage.s_exit_status;
      `P "0 — drained cleanly (even if individual jobs failed).";
      `P "2 — the daemon itself ran out of stack or memory.";
    ]
  in
  Cmd.v
    (Cmd.info "cspm_checkd" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ queue_limit_arg $ retries_arg $ backoff_arg
      $ backoff_max_arg $ seed_arg $ trace_out_arg)

let () = exit (Cmd.eval' cmd)
