type error = {
  where : string;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "[%s] %s" e.where e.message

exception Semantic_error of error list

let builtins =
  [ "output"; "setTimer"; "cancelTimer"; "write"; "elCount"; "abs"; "random";
    "getValue"; "putValue"; "timeNow" ]

let is_timer_ty = function
  | Ast.T_timer | Ast.T_ms_timer -> true
  | _ -> false

let is_message_ty = function
  | Ast.T_message _ -> true
  | _ -> false

type ctx = {
  db : Msgdb.t option;
  globals : (string * Ast.ty) list;
  functions : (string * Ast.func) list;
  mutable errors : error list;
  mutable where : string;
  mutable in_handler : bool;
  mutable this_msg : string option;  (* named message type of the handler *)
  mutable loop_depth : int;
  mutable fn_ret : Ast.ty option;  (* None when inside a handler *)
}

let err ctx fmt =
  Format.kasprintf
    (fun message -> ctx.errors <- { where = ctx.where; message } :: ctx.errors)
    fmt

let rec is_lvalue = function
  | Ast.E_ident _ | Ast.E_this -> true
  | Ast.E_member (e, _) -> is_lvalue e
  | Ast.E_index (e, _) -> is_lvalue e
  | Ast.E_method (e, ("byte" | "word" | "dword"), _) -> is_lvalue e
  | _ -> false

(* Scope stack: innermost first; each scope is (name, ty) assoc. *)
let lookup scopes name =
  List.find_map (fun scope -> List.assoc_opt name scope) scopes

let message_members = [ "id"; "dlc"; "dir"; "time"; "can" ]

let check ?db (prog : Ast.program) =
  let globals =
    List.map (fun v -> v.Ast.var_name, v.Ast.var_ty) prog.Ast.variables
  in
  let functions = List.map (fun f -> f.Ast.fn_name, f) prog.Ast.functions in
  let ctx =
    {
      db;
      globals;
      functions;
      errors = [];
      where = "globals";
      in_handler = false;
      this_msg = None;
      loop_depth = 0;
      fn_ret = None;
    }
  in
  (* Duplicate globals / functions. *)
  let dup names kind =
    let sorted = List.sort String.compare names in
    let rec go = function
      | a :: b :: rest ->
        if String.equal a b then err ctx "duplicate %s %s" kind a;
        go (if String.equal a b then rest else b :: rest)
      | _ -> ()
    in
    go sorted
  in
  dup (List.map fst globals) "global variable";
  dup (List.map fst functions) "function";
  List.iter
    (fun (name, _) ->
      if List.mem name builtins then
        err ctx "function %s shadows a built-in" name)
    functions;
  (* Message selectors against the database. *)
  (match db with
   | None -> ()
   | Some db ->
     List.iter
       (fun v ->
         match v.Ast.var_ty with
         | Ast.T_message (Ast.Msg_name n) ->
           if Option.is_none (Msgdb.find_by_name db n) then
             err ctx "unknown message type %s for variable %s" n
               v.Ast.var_name
         | _ -> ())
       prog.Ast.variables;
     List.iter
       (fun h ->
         match h.Ast.event with
         | Ast.Ev_message (Ast.Msg_name n) ->
           if Option.is_none (Msgdb.find_by_name db n) then begin
             ctx.where <- Ast.event_name h.Ast.event;
             err ctx "unknown message name %s" n;
             ctx.where <- "globals"
           end
         | _ -> ())
       prog.Ast.handlers);
  (* Expression/statement traversal. *)
  let rec expr scopes (e : Ast.expr) =
    match e with
    | Ast.E_int _ | Ast.E_float _ | Ast.E_char _ | Ast.E_string _ -> ()
    | Ast.E_this ->
      if not ctx.in_handler then err ctx "'this' used outside a handler"
    | Ast.E_ident name ->
      if
        Option.is_none (lookup scopes name)
        && not (List.mem_assoc name ctx.functions)
      then err ctx "undeclared identifier %s" name
    | Ast.E_member (base, member) ->
      expr scopes base;
      check_member scopes base member
    | Ast.E_index (base, idx) ->
      expr scopes base;
      expr scopes idx
    | Ast.E_call (name, args) ->
      List.iter (expr scopes) args;
      check_call scopes name args
    | Ast.E_method (base, _, args) ->
      expr scopes base;
      List.iter (expr scopes) args
    | Ast.E_unop (_, e1) -> expr scopes e1
    | Ast.E_binop (_, e1, e2) ->
      expr scopes e1;
      expr scopes e2
    | Ast.E_assign (_, lhs, rhs) ->
      if not (is_lvalue lhs) then err ctx "assignment to a non-lvalue";
      expr scopes lhs;
      expr scopes rhs
    | Ast.E_incr (_, _, e1) ->
      if not (is_lvalue e1) then err ctx "increment of a non-lvalue";
      expr scopes e1
    | Ast.E_ternary (c, a, b) ->
      expr scopes c;
      expr scopes a;
      expr scopes b
  and check_member scopes base member =
    (* When the base has a known message type, the member must be a frame
       field or a declared signal. *)
    let base_msg_ty =
      match base with
      | Ast.E_ident name ->
        (match lookup scopes name with
         | Some (Ast.T_message sel) -> Some sel
         | _ -> None)
      | Ast.E_this ->
        Option.map (fun n -> Ast.Msg_name n) ctx.this_msg
      | _ -> None
    in
    match base_msg_ty, ctx.db with
    | Some (Ast.Msg_name msg_name), Some db ->
      if not (List.mem member message_members) then begin
        match Msgdb.find_by_name db msg_name with
        | Some spec ->
          if Option.is_none (Msgdb.find_signal spec member) then
            err ctx "message %s has no signal %s" msg_name member
        | None -> ()
      end
    | _ -> ()
  and check_call scopes name args =
    match name with
    | "output" ->
      (match args with
       | [ Ast.E_this ] -> ()
       | [ Ast.E_ident v ] ->
         (match lookup scopes v with
          | Some ty when is_message_ty ty -> ()
          | Some _ -> err ctx "output() needs a message variable, got %s" v
          | None -> ())
       | _ -> err ctx "output() takes exactly one message variable")
    | "setTimer" ->
      (match args with
       | [ Ast.E_ident t; _ ] ->
         (match lookup scopes t with
          | Some ty when is_timer_ty ty -> ()
          | Some _ -> err ctx "setTimer() needs a timer variable, got %s" t
          | None -> ())
       | _ -> err ctx "setTimer() takes a timer variable and a duration")
    | "cancelTimer" ->
      (match args with
       | [ Ast.E_ident t ] ->
         (match lookup scopes t with
          | Some ty when is_timer_ty ty -> ()
          | Some _ -> err ctx "cancelTimer() needs a timer variable, got %s" t
          | None -> ())
       | _ -> err ctx "cancelTimer() takes exactly one timer variable")
    | "write" ->
      (match args with
       | Ast.E_string _ :: _ -> ()
       | _ -> err ctx "write() needs a format string first")
    | _ ->
      if not (List.mem name builtins) then begin
        match List.assoc_opt name ctx.functions with
        | Some f ->
          if List.length f.Ast.fn_params <> List.length args then
            err ctx "function %s expects %d arguments, got %d" name
              (List.length f.Ast.fn_params) (List.length args)
        | None -> err ctx "call to undeclared function %s" name
      end
  and stmt scopes (s : Ast.stmt) : (string * Ast.ty) list =
    (* returns additional bindings introduced in the current scope *)
    match s with
    | Ast.S_expr e ->
      expr scopes e;
      []
    | Ast.S_decl decls ->
      List.iter
        (fun d -> Option.iter (expr scopes) d.Ast.var_init)
        decls;
      List.map (fun d -> d.Ast.var_name, d.Ast.var_ty) decls
    | Ast.S_if (c, a, b) ->
      expr scopes c;
      block scopes [ a ];
      Option.iter (fun s -> block scopes [ s ]) b;
      []
    | Ast.S_while (c, body) ->
      expr scopes c;
      in_loop (fun () -> block scopes [ body ]);
      []
    | Ast.S_do_while (body, c) ->
      in_loop (fun () -> block scopes [ body ]);
      expr scopes c;
      []
    | Ast.S_for (init, cond, update, body) ->
      let intro = match init with Some s -> stmt scopes s | None -> [] in
      let scopes' = intro :: scopes in
      Option.iter (expr scopes') cond;
      Option.iter (expr scopes') update;
      in_loop (fun () -> block scopes' [ body ]);
      []
    | Ast.S_switch (e, cases) ->
      expr scopes e;
      in_loop (fun () ->
          List.iter (fun c -> block scopes c.Ast.case_body) cases);
      let defaults =
        List.length (List.filter (fun c -> c.Ast.case_label = None) cases)
      in
      if defaults > 1 then err ctx "switch has %d default cases" defaults;
      []
    | Ast.S_break ->
      if ctx.loop_depth = 0 then err ctx "break outside a loop or switch";
      []
    | Ast.S_continue ->
      if ctx.loop_depth = 0 then err ctx "continue outside a loop";
      []
    | Ast.S_return e ->
      (match ctx.fn_ret, e with
       | None, Some _ ->
         (* CAPL allows bare return in handlers but not a value *)
         err ctx "return with a value inside a handler"
       | Some Ast.T_void, Some _ -> err ctx "void function returns a value"
       | Some ret, None when ret <> Ast.T_void ->
         err ctx "non-void function returns without a value"
       | _ -> ());
      Option.iter (expr scopes) e;
      []
    | Ast.S_block body ->
      block scopes body;
      []
  and block scopes stmts =
    let _final_scope =
      List.fold_left
        (fun scope s ->
          let intro = stmt (scope :: scopes) s in
          intro @ scope)
        [] stmts
    in
    ()
  and in_loop f =
    ctx.loop_depth <- ctx.loop_depth + 1;
    f ();
    ctx.loop_depth <- ctx.loop_depth - 1
  in
  (* Global initializers. *)
  List.iter
    (fun v -> Option.iter (expr [ globals ]) v.Ast.var_init)
    prog.Ast.variables;
  (* Handlers. *)
  List.iter
    (fun h ->
      ctx.where <- Ast.event_name h.Ast.event;
      ctx.in_handler <- true;
      ctx.this_msg <-
        (match h.Ast.event with
         | Ast.Ev_message (Ast.Msg_name n) -> Some n
         | _ -> None);
      ctx.fn_ret <- None;
      block [ globals ] h.Ast.body;
      ctx.in_handler <- false;
      ctx.this_msg <- None)
    prog.Ast.handlers;
  (* Functions. *)
  List.iter
    (fun f ->
      ctx.where <- f.Ast.fn_name;
      ctx.in_handler <- false;
      ctx.fn_ret <- Some f.Ast.fn_ret;
      let params = List.map (fun (ty, n) -> n, ty) f.Ast.fn_params in
      block [ params; globals ] f.Ast.fn_body;
      ctx.fn_ret <- None)
    prog.Ast.functions;
  List.rev ctx.errors

let check_exn ?db prog =
  match check ?db prog with
  | [] -> ()
  | errors -> raise (Semantic_error errors)
