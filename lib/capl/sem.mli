(** Static checks over a parsed CAPL program.

    Catches the errors the CANoe compiler would reject: duplicate globals
    and functions, undeclared identifiers, [this] outside a handler,
    [output]/[setTimer]/[cancelTimer] applied to non-message/non-timer
    operands, assignments to non-lvalues, [break]/[continue] outside loops
    or switches, unknown message names (against the message database), and
    unknown signals in member accesses where the message type is known. *)

type error = {
  where : string;  (** handler or function the error is in, or "globals" *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val check : ?db:Msgdb.t -> Ast.program -> error list
(** Empty list means the program is well-formed. When [db] is supplied,
    message selectors and signal names are validated against it. *)

exception Semantic_error of error list

val check_exn : ?db:Msgdb.t -> Ast.program -> unit
(** @raise Semantic_error if {!check} reports anything. *)
