(** C-style lexer for CAPL: identifiers, decimal/hex integers, floats,
    character and string literals, [//] and [/* */] comments, and the full
    C operator set. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | CHAR of char
  | STRING of string
  (* keywords *)
  | KW_includes | KW_variables | KW_on | KW_message | KW_timer | KW_msTimer
  | KW_key | KW_this
  | KW_int | KW_long | KW_int64 | KW_byte | KW_word | KW_dword | KW_qword
  | KW_char | KW_float | KW_double | KW_void
  | KW_if | KW_else | KW_while | KW_do | KW_for | KW_switch | KW_case
  | KW_default | KW_break | KW_continue | KW_return
  (* punctuation and operators *)
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | DOT | QUESTION
  | ASSIGN | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | PERCENT_ASSIGN | AMP_ASSIGN | PIPE_ASSIGN | CARET_ASSIGN
  | SHL_ASSIGN | SHR_ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS | MINUSMINUS
  | SHL | SHR
  | AMP | PIPE | CARET | TILDE
  | AMPAMP | PIPEPIPE | BANG
  | EQ | NEQ | LT | LE | GT | GE
  | HASH_INCLUDE of string  (** [#include "file"] inside [includes] *)
  | EOF

exception Lex_error of string * Ast.pos

val tokens : string -> (token * Ast.pos) list
(** @raise Lex_error on unexpected characters or unterminated literals. *)

val token_to_string : token -> string
