type byte_order =
  | Little_endian
  | Big_endian

type signal = {
  sig_name : string;
  start_bit : int;
  length : int;
  byte_order : byte_order;
  signed : bool;
  minimum : int;
  maximum : int;
}

type message_spec = {
  msg_name : string;
  msg_id : int;
  msg_dlc : int;
  signals : signal list;
}

type t = { messages : message_spec list }

let empty = { messages = [] }
let of_messages messages = { messages }
let messages t = t.messages

let find_by_name t name =
  List.find_opt (fun m -> String.equal m.msg_name name) t.messages

let find_by_id t id = List.find_opt (fun m -> m.msg_id = id) t.messages

let find_signal spec name =
  List.find_opt (fun s -> String.equal s.sig_name name) spec.signals

exception Signal_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Signal_error s)) fmt

(* Bit positions of a signal, most significant first, as absolute bit
   indices (byte_index * 8 + bit_in_byte, bit 0 = LSB of the byte). *)
let bit_positions s =
  match s.byte_order with
  | Little_endian ->
    (* LSB at start_bit, ascending *)
    List.init s.length (fun i -> s.start_bit + (s.length - 1 - i))
  | Big_endian ->
    (* MSB at start_bit; walk downward within a byte, then to bit 7 of the
       next byte (the DBC "sawtooth"). *)
    let rec walk pos remaining acc =
      if remaining = 0 then List.rev acc
      else
        let next = if pos mod 8 = 0 then pos + 15 else pos - 1 in
        walk next (remaining - 1) (pos :: acc)
    in
    walk s.start_bit s.length []

let check_range data positions name =
  List.iter
    (fun pos ->
      let byte = pos / 8 in
      if byte < 0 || byte >= Array.length data then
        fail "signal %s overruns the frame data (bit %d)" name pos)
    positions

(* OCaml's native int is 63-bit; longer signals would overflow shifts. *)
let check_length s =
  if s.length < 1 || s.length > 62 then
    fail "signal %s has unsupported bit length %d" s.sig_name s.length

let decode_signal s data =
  check_length s;
  let positions = bit_positions s in
  check_range data positions s.sig_name;
  let raw =
    List.fold_left
      (fun acc pos ->
        let byte = pos / 8 in
        let bit = pos mod 8 in
        (acc lsl 1) lor ((data.(byte) lsr bit) land 1))
      0 positions
  in
  if s.signed && s.length > 0 && raw land (1 lsl (s.length - 1)) <> 0 then
    raw - (1 lsl s.length)
  else raw

let encode_signal s data value =
  check_length s;
  let positions = bit_positions s in
  check_range data positions s.sig_name;
  let masked = value land ((1 lsl s.length) - 1) in
  List.iteri
    (fun i pos ->
      let byte = pos / 8 in
      let bit = pos mod 8 in
      let v = (masked lsr (s.length - 1 - i)) land 1 in
      if v = 1 then data.(byte) <- data.(byte) lor (1 lsl bit)
      else data.(byte) <- data.(byte) land lnot (1 lsl bit))
    positions
