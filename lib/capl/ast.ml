(** Abstract syntax of the CAPL subset.

    CAPL (Vector's Communication Access Programming Language) is a C-like,
    event-driven language: a program has optional [includes] and
    [variables] sections, a set of event procedures ([on message], [on
    timer], [on key], [on start], ...) and user-defined functions. There is
    no [main]. This AST covers the constructs the paper's grammar handled
    ([on message], [output]) plus the "future work" constructs: functions,
    data structures, control flow, timers and message-member access. *)

type pos = {
  line : int;
  col : int;
}

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

type ty =
  | T_int
  | T_long
  | T_int64
  | T_byte
  | T_word
  | T_dword
  | T_qword
  | T_char
  | T_float
  | T_double
  | T_void
  | T_message of msg_selector
  | T_timer  (** second-resolution timer *)
  | T_ms_timer

and msg_selector =
  | Msg_name of string  (** [on message EngineData] *)
  | Msg_id of int  (** [on message 0x123] *)
  | Msg_any  (** [on message *] *)

type unop =
  | U_neg
  | U_not
  | U_bnot

type binop =
  | B_add | B_sub | B_mul | B_div | B_mod
  | B_shl | B_shr
  | B_band | B_bor | B_bxor
  | B_land | B_lor
  | B_eq | B_neq | B_lt | B_le | B_gt | B_ge

type assign_op =
  | A_eq
  | A_add | A_sub | A_mul | A_div | A_mod
  | A_band | A_bor | A_bxor | A_shl | A_shr

type expr =
  | E_int of int
  | E_float of float
  | E_char of char
  | E_string of string
  | E_ident of string
  | E_this  (** the message/timer that triggered the current handler *)
  | E_member of expr * string  (** [m.signal], [m.id], [m.dlc], [m.time] *)
  | E_index of expr * expr
  | E_call of string * expr list
  | E_method of expr * string * expr list  (** [m.byte(0)] *)
  | E_unop of unop * expr
  | E_binop of binop * expr * expr
  | E_assign of assign_op * expr * expr
  | E_incr of bool * bool * expr
      (** [E_incr (is_increment, is_prefix, lvalue)] *)
  | E_ternary of expr * expr * expr

type var_decl = {
  var_ty : ty;
  var_name : string;
  var_dims : int list;  (** array dimensions, outermost first *)
  var_init : expr option;
  var_pos : pos;
}

type stmt =
  | S_expr of expr
  | S_decl of var_decl list
  | S_if of expr * stmt * stmt option
  | S_while of expr * stmt
  | S_do_while of stmt * expr
  | S_for of stmt option * expr option * expr option * stmt
  | S_switch of expr * switch_case list
  | S_break
  | S_continue
  | S_return of expr option
  | S_block of stmt list

and switch_case = {
  case_label : expr option;  (** [None] is [default:] *)
  case_body : stmt list;
}

type event =
  | Ev_start  (** [on start] *)
  | Ev_prestart  (** [on preStart] *)
  | Ev_stop  (** [on stopMeasurement] *)
  | Ev_key of char
  | Ev_timer of string
  | Ev_message of msg_selector

type handler = {
  event : event;
  body : stmt list;
  handler_pos : pos;
}

type func = {
  fn_ret : ty;
  fn_name : string;
  fn_params : (ty * string) list;
  fn_body : stmt list;
  fn_pos : pos;
}

type program = {
  includes : string list;
  variables : var_decl list;
  handlers : handler list;
  functions : func list;
}

let event_name = function
  | Ev_start -> "start"
  | Ev_prestart -> "preStart"
  | Ev_stop -> "stopMeasurement"
  | Ev_key c -> Printf.sprintf "key '%c'" c
  | Ev_timer t -> "timer " ^ t
  | Ev_message (Msg_name n) -> "message " ^ n
  | Ev_message (Msg_id id) -> Printf.sprintf "message 0x%X" id
  | Ev_message Msg_any -> "message *"

let ty_name = function
  | T_int -> "int"
  | T_long -> "long"
  | T_int64 -> "int64"
  | T_byte -> "byte"
  | T_word -> "word"
  | T_dword -> "dword"
  | T_qword -> "qword"
  | T_char -> "char"
  | T_float -> "float"
  | T_double -> "double"
  | T_void -> "void"
  | T_message (Msg_name n) -> "message " ^ n
  | T_message (Msg_id id) -> Printf.sprintf "message 0x%X" id
  | T_message Msg_any -> "message *"
  | T_timer -> "timer"
  | T_ms_timer -> "msTimer"
