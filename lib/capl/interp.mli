(** Tree-walking interpreter for CAPL programs.

    This is the reproduction's stand-in for CANoe's CAPL execution engine:
    event procedures fire on simulated events (start, received frames,
    timers, key presses), [output] transmits frames through the supplied
    runtime, and [setTimer]/[cancelTimer] arm the runtime's timers. The
    runtime is abstract so the interpreter can run against the CAN bus
    simulator ({!Runtime}), or against a test harness. *)

(** CAPL runtime values. *)
type value =
  | V_int of int
  | V_float of float
  | V_string of string
  | V_msg of msg_obj
  | V_array of cell array

and cell = {
  cell_ty : Ast.ty;
  mutable cell_v : value;
}

and msg_obj = {
  mutable m_id : int;
  mutable m_dlc : int;
  m_data : int array;  (** always 8 bytes *)
  m_spec : Msgdb.message_spec option;
}

(** Environment callbacks the interpreter drives. *)
type runtime = {
  rt_output : msg_obj -> unit;
  rt_set_timer : name:string -> us:int -> unit;
  rt_cancel_timer : name:string -> unit;
  rt_write : string -> unit;
  rt_now_us : unit -> int;
}

val null_runtime : runtime
(** Discards output and writes; timers are no-ops; time is always 0. *)

exception Runtime_error of string

type t

val create : ?runtime:runtime -> ?db:Msgdb.t -> Ast.program -> t
(** Initializes global variables (including message and timer objects).
    @raise Runtime_error if an initializer fails. *)

val program : t -> Ast.program
val set_runtime : t -> runtime -> unit

(** {1 Event injection} *)

val fire_start : t -> unit
val fire_prestart : t -> unit
val fire_stop : t -> unit
val fire_key : t -> char -> unit

val fire_timer : t -> string -> unit
(** Run the [on timer] handler for the named timer variable (no-op if the
    program has none). *)

val on_frame : t -> Canbus.Frame.t -> unit
(** Dispatch a received frame to every matching [on message] handler
    (exact name match, id match, then [*] handlers), binding [this]. *)

(** {1 Introspection (tests, conformance checking)} *)

val call_function : t -> string -> value list -> value
(** Call a user-defined function directly.
    @raise Runtime_error on unknown names or arity mismatch. *)

val global : t -> string -> value
(** Current value of a global variable.
    @raise Runtime_error if undeclared. *)

val set_global : t -> string -> value -> unit

val frame_of_msg : msg_obj -> Canbus.Frame.t
val msg_of_frame : ?db:Msgdb.t -> Canbus.Frame.t -> msg_obj

val truthy : value -> bool
val pp_value : Format.formatter -> value -> unit
