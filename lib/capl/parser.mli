(** Recursive-descent parser for CAPL.

    Produces an {!Ast.program} from source text: optional [includes] and
    [variables] sections, event procedures and user functions, with full
    C expression/statement syntax inside bodies. *)

exception Parse_error of string * Ast.pos

val program : string -> Ast.program
(** @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)

val expr : string -> Ast.expr
(** Parse a single expression (for tests). *)

val stmt : string -> Ast.stmt
(** Parse a single statement (for tests). *)
