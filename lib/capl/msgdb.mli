(** Message/signal metadata: the CAPL-facing view of a CAN database.

    CAPL programs name messages ([on message EngineData]) and access signal
    fields ([this.EngineSpeed]); both need the id/DLC/signal layout that a
    [.dbc] database defines. [Candb.To_capl] builds one of these from a
    parsed DBC file; tests build them directly. *)

type byte_order =
  | Little_endian  (** Intel: start bit is the LSB position *)
  | Big_endian  (** Motorola: start bit is the MSB position *)

type signal = {
  sig_name : string;
  start_bit : int;
  length : int;  (** in bits, 1..64 *)
  byte_order : byte_order;
  signed : bool;
  minimum : int;
  maximum : int;  (** raw-value bounds; [0, 0] means unconstrained *)
}

type message_spec = {
  msg_name : string;
  msg_id : int;
  msg_dlc : int;
  signals : signal list;
}

type t

val empty : t
val of_messages : message_spec list -> t
val messages : t -> message_spec list
val find_by_name : t -> string -> message_spec option
val find_by_id : t -> int -> message_spec option
val find_signal : message_spec -> string -> signal option

exception Signal_error of string

val decode_signal : signal -> int array -> int
(** Extract the raw signal value from frame data bytes (sign-extended if
    the signal is signed).
    @raise Signal_error if the signal overruns the data. *)

val encode_signal : signal -> int array -> int -> unit
(** Pack a raw value into the data bytes in place, truncating to the
    signal's bit length.
    @raise Signal_error if the signal overruns the data. *)
