type value =
  | V_int of int
  | V_float of float
  | V_string of string
  | V_msg of msg_obj
  | V_array of cell array

and cell = {
  cell_ty : Ast.ty;
  mutable cell_v : value;
}

and msg_obj = {
  mutable m_id : int;
  mutable m_dlc : int;
  m_data : int array;
  m_spec : Msgdb.message_spec option;
}

type runtime = {
  rt_output : msg_obj -> unit;
  rt_set_timer : name:string -> us:int -> unit;
  rt_cancel_timer : name:string -> unit;
  rt_write : string -> unit;
  rt_now_us : unit -> int;
}

let null_runtime =
  {
    rt_output = (fun _ -> ());
    rt_set_timer = (fun ~name:_ ~us:_ -> ());
    rt_cancel_timer = (fun ~name:_ -> ());
    rt_write = (fun _ -> ());
    rt_now_us = (fun () -> 0);
  }

exception Runtime_error of string

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Control-flow signals inside statement execution. *)
exception Brk
exception Cont
exception Ret of value

type t = {
  prog : Ast.program;
  db : Msgdb.t;
  mutable rt : runtime;
  globals : (string, cell) Hashtbl.t;
  mutable rng : int;  (* deterministic LCG state *)
  mutable depth : int;  (* call depth guard *)
}

let program t = t.prog
let set_runtime t rt = t.rt <- rt

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let truthy = function
  | V_int n -> n <> 0
  | V_float f -> f <> 0.0
  | V_string s -> s <> ""
  | V_msg _ | V_array _ -> true

let as_int = function
  | V_int n -> n
  | V_float f -> int_of_float f
  | V_string _ -> err "string used as integer"
  | V_msg _ -> err "message object used as integer"
  | V_array _ -> err "array used as integer"

let as_float = function
  | V_int n -> float_of_int n
  | V_float f -> f
  | V_string _ | V_msg _ | V_array _ -> err "value used as float"

(* Truncate an integer to the width/signedness of a CAPL type; mirrors the
   CANoe compiler's storage semantics. *)
let mask_for ty v =
  let wrap_signed bits n =
    let m = 1 lsl bits in
    let x = ((n mod m) + m) mod m in
    if x >= m / 2 then x - m else x
  in
  match ty with
  | Ast.T_byte -> v land 0xFF
  | Ast.T_word -> v land 0xFFFF
  | Ast.T_dword -> v land 0xFFFFFFFF
  | Ast.T_char -> wrap_signed 8 v
  | Ast.T_int -> wrap_signed 16 v  (* CAPL int is 16-bit *)
  | Ast.T_long -> wrap_signed 32 v
  | Ast.T_int64 | Ast.T_qword -> v
  | Ast.T_float | Ast.T_double | Ast.T_void | Ast.T_message _ | Ast.T_timer
  | Ast.T_ms_timer ->
    v

let coerce ty value =
  match ty, value with
  | (Ast.T_float | Ast.T_double), V_int n -> V_float (float_of_int n)
  | (Ast.T_float | Ast.T_double), V_float _ -> value
  | _, V_int n -> V_int (mask_for ty n)
  | _, V_float f -> V_int (mask_for ty (int_of_float f))
  | _, _ -> value

let rec pp_value ppf = function
  | V_int n -> Format.pp_print_int ppf n
  | V_float f -> Format.pp_print_float ppf f
  | V_string s -> Format.fprintf ppf "%S" s
  | V_msg m -> Format.fprintf ppf "<message 0x%X dlc=%d>" m.m_id m.m_dlc
  | V_array cells ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf c -> pp_value ppf c.cell_v))
      (Array.to_list cells)

(* ------------------------------------------------------------------ *)
(* Message objects                                                     *)
(* ------------------------------------------------------------------ *)

let fresh_msg ?spec ?(id = 0) ?(dlc = 8) () =
  let id, dlc =
    match spec with
    | Some (s : Msgdb.message_spec) -> s.Msgdb.msg_id, s.Msgdb.msg_dlc
    | None -> id, dlc
  in
  { m_id = id; m_dlc = dlc; m_data = Array.make 8 0; m_spec = spec }

let frame_of_msg m =
  Canbus.Frame.make ~id:m.m_id
    (Array.to_list (Array.sub m.m_data 0 (min 8 (max 0 m.m_dlc))))

let msg_of_frame ?(db = Msgdb.empty) (f : Canbus.Frame.t) =
  let spec = Msgdb.find_by_id db f.Canbus.Frame.id in
  let m = fresh_msg ?spec ~id:f.Canbus.Frame.id ~dlc:f.Canbus.Frame.dlc () in
  m.m_id <- f.Canbus.Frame.id;
  m.m_dlc <- f.Canbus.Frame.dlc;
  for i = 0 to f.Canbus.Frame.dlc - 1 do
    m.m_data.(i) <- Canbus.Frame.data_byte f i
  done;
  m

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

type frame_ctx = {
  scopes : (string, cell) Hashtbl.t list;  (* innermost first *)
  this : msg_obj option;
}

let lookup_cell t ctx name =
  let rec go = function
    | [] -> Hashtbl.find_opt t.globals name
    | scope :: rest ->
      (match Hashtbl.find_opt scope name with
       | Some c -> Some c
       | None -> go rest)
  in
  go ctx.scopes

let default_value t (ty : Ast.ty) dims =
  let scalar () =
    match ty with
    | Ast.T_float | Ast.T_double -> V_float 0.0
    | Ast.T_message sel ->
      let spec =
        match sel with
        | Ast.Msg_name n -> Msgdb.find_by_name t.db n
        | Ast.Msg_id _ | Ast.Msg_any -> None
      in
      let id = match sel with Ast.Msg_id id -> id | _ -> 0 in
      V_msg (fresh_msg ?spec ~id ())
    | _ -> V_int 0
  in
  let rec build = function
    | [] -> scalar ()
    | d :: rest ->
      V_array (Array.init d (fun _ -> { cell_ty = ty; cell_v = build rest }))
  in
  build dims

(* ------------------------------------------------------------------ *)
(* Mini printf for write()                                             *)
(* ------------------------------------------------------------------ *)

let format_write fmt args =
  let buf = Buffer.create 64 in
  let args = ref args in
  let next () =
    match !args with
    | [] -> err "write(): not enough arguments for format %S" fmt
    | a :: rest ->
      args := rest;
      a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
       | '%' -> Buffer.add_char buf '%'
       | 'd' | 'i' -> Buffer.add_string buf (string_of_int (as_int (next ())))
       | 'x' | 'X' -> Buffer.add_string buf (Printf.sprintf "%x" (as_int (next ())))
       | 'c' -> Buffer.add_char buf (Char.chr (as_int (next ()) land 0xFF))
       | 'f' | 'g' ->
         Buffer.add_string buf (Printf.sprintf "%g" (as_float (next ())))
       | 's' ->
         (match next () with
          | V_string s -> Buffer.add_string buf s
          | v -> Buffer.add_string buf (Format.asprintf "%a" pp_value v))
       | c -> err "write(): unsupported format specifier %%%c" c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let max_call_depth = 256

let rec eval t ctx (e : Ast.expr) : value =
  match e with
  | Ast.E_int n -> V_int n
  | Ast.E_float f -> V_float f
  | Ast.E_char c -> V_int (Char.code c)
  | Ast.E_string s -> V_string s
  | Ast.E_this ->
    (match ctx.this with
     | Some m -> V_msg m
     | None -> err "'this' is not bound in this context")
  | Ast.E_ident name ->
    (match lookup_cell t ctx name with
     | Some c -> c.cell_v
     | None -> err "undeclared identifier %s" name)
  | Ast.E_member (base, member) -> read_member t ctx base member
  | Ast.E_index (base, idx) ->
    let cells = as_array (eval t ctx base) in
    let i = as_int (eval t ctx idx) in
    if i < 0 || i >= Array.length cells then
      err "array index %d out of bounds" i;
    cells.(i).cell_v
  | Ast.E_call (name, args) -> call t ctx name args
  | Ast.E_method (base, member, args) -> eval_method t ctx base member args
  | Ast.E_unop (op, e1) ->
    let v = eval t ctx e1 in
    (match op, v with
     | Ast.U_neg, V_int n -> V_int (-n)
     | Ast.U_neg, V_float f -> V_float (-.f)
     | Ast.U_not, v -> V_int (if truthy v then 0 else 1)
     | Ast.U_bnot, v -> V_int (lnot (as_int v))
     | Ast.U_neg, _ -> err "cannot negate this value")
  | Ast.E_binop (op, e1, e2) -> binop t ctx op e1 e2
  | Ast.E_assign (op, lhs, rhs) ->
    let rhs_v = eval t ctx rhs in
    assign t ctx op lhs rhs_v
  | Ast.E_incr (up, prefix, lv) ->
    let old = eval t ctx lv in
    let delta = if up then 1 else -1 in
    let updated = V_int (as_int old + delta) in
    let stored = assign t ctx Ast.A_eq lv updated in
    if prefix then stored else old
  | Ast.E_ternary (c, a, b) ->
    if truthy (eval t ctx c) then eval t ctx a else eval t ctx b

and as_array = function
  | V_array cells -> cells
  | V_string s ->
    (* char arrays and strings interconvert in CAPL *)
    Array.init (String.length s) (fun i ->
        { cell_ty = Ast.T_char; cell_v = V_int (Char.code s.[i]) })
  | _ -> err "value is not an array"

and binop t ctx op e1 e2 =
  match op with
  | Ast.B_land ->
    V_int (if truthy (eval t ctx e1) && truthy (eval t ctx e2) then 1 else 0)
  | Ast.B_lor ->
    V_int (if truthy (eval t ctx e1) || truthy (eval t ctx e2) then 1 else 0)
  | _ ->
    let v1 = eval t ctx e1 in
    let v2 = eval t ctx e2 in
    let float_op f =
      let a = as_float v1 and b = as_float v2 in
      V_float (f a b)
    in
    let is_float =
      match v1, v2 with
      | (V_float _, _) | (_, V_float _) -> true
      | _ -> false
    in
    (match op with
     | Ast.B_add when is_float -> float_op ( +. )
     | Ast.B_sub when is_float -> float_op ( -. )
     | Ast.B_mul when is_float -> float_op ( *. )
     | Ast.B_div when is_float -> float_op ( /. )
     | Ast.B_add -> V_int (as_int v1 + as_int v2)
     | Ast.B_sub -> V_int (as_int v1 - as_int v2)
     | Ast.B_mul -> V_int (as_int v1 * as_int v2)
     | Ast.B_div ->
       let b = as_int v2 in
       if b = 0 then err "division by zero";
       V_int (as_int v1 / b)
     | Ast.B_mod ->
       let b = as_int v2 in
       if b = 0 then err "modulo by zero";
       V_int (as_int v1 mod b)
     | Ast.B_shl -> V_int (as_int v1 lsl as_int v2)
     | Ast.B_shr -> V_int (as_int v1 asr as_int v2)
     | Ast.B_band -> V_int (as_int v1 land as_int v2)
     | Ast.B_bor -> V_int (as_int v1 lor as_int v2)
     | Ast.B_bxor -> V_int (as_int v1 lxor as_int v2)
     | Ast.B_eq | Ast.B_neq | Ast.B_lt | Ast.B_le | Ast.B_gt | Ast.B_ge ->
       let r =
         match v1, v2 with
         | V_string a, V_string b -> String.compare a b
         | _ -> Float.compare (as_float v1) (as_float v2)
       in
       let holds =
         match op with
         | Ast.B_eq -> r = 0
         | Ast.B_neq -> r <> 0
         | Ast.B_lt -> r < 0
         | Ast.B_le -> r <= 0
         | Ast.B_gt -> r > 0
         | Ast.B_ge -> r >= 0
         | _ -> invalid_arg "Interp.eval: non-comparison operator"
       in
       V_int (if holds then 1 else 0)
     | Ast.B_land | Ast.B_lor ->
       invalid_arg "Interp.eval: logical operator reached the strict path")

and read_member t ctx base member =
  match eval t ctx base with
  | V_msg m ->
    (match member with
     | "id" -> V_int m.m_id
     | "dlc" -> V_int m.m_dlc
     | "dir" -> V_int 0
     | "can" -> V_int 1
     | "time" -> V_int (t.rt.rt_now_us () / 10)  (* CANoe time units: 10us *)
     | signal ->
       (match m.m_spec with
        | None -> err "message has no known type; cannot read signal %s" signal
        | Some spec ->
          (match Msgdb.find_signal spec signal with
           | None ->
             err "message %s has no signal %s" spec.Msgdb.msg_name signal
           | Some s -> V_int (Msgdb.decode_signal s m.m_data))))
  | _ -> err "member access on a non-message value"

and eval_method t ctx base member args =
  match eval t ctx base with
  | V_msg m ->
    let arg_ints = List.map (fun a -> as_int (eval t ctx a)) args in
    (match member, arg_ints with
     | "byte", [ i ] ->
       if i < 0 || i > 7 then err "byte index %d out of range" i;
       V_int m.m_data.(i)
     | "word", [ i ] ->
       if i < 0 || i > 6 then err "word index %d out of range" i;
       V_int (m.m_data.(i) lor (m.m_data.(i + 1) lsl 8))
     | "dword", [ i ] ->
       if i < 0 || i > 4 then err "dword index %d out of range" i;
       V_int
         (m.m_data.(i)
          lor (m.m_data.(i + 1) lsl 8)
          lor (m.m_data.(i + 2) lsl 16)
          lor (m.m_data.(i + 3) lsl 24))
     | _ -> err "unknown message method %s/%d" member (List.length arg_ints))
  | _ -> err "method call on a non-message value"

and assign t ctx op lhs rhs_v =
  let combined old =
    match op with
    | Ast.A_eq -> rhs_v
    | Ast.A_add ->
      (match old, rhs_v with
       | V_float _, _ | _, V_float _ -> V_float (as_float old +. as_float rhs_v)
       | _ -> V_int (as_int old + as_int rhs_v))
    | Ast.A_sub -> V_int (as_int old - as_int rhs_v)
    | Ast.A_mul -> V_int (as_int old * as_int rhs_v)
    | Ast.A_div ->
      let b = as_int rhs_v in
      if b = 0 then err "division by zero";
      V_int (as_int old / b)
    | Ast.A_mod ->
      let b = as_int rhs_v in
      if b = 0 then err "modulo by zero";
      V_int (as_int old mod b)
    | Ast.A_band -> V_int (as_int old land as_int rhs_v)
    | Ast.A_bor -> V_int (as_int old lor as_int rhs_v)
    | Ast.A_bxor -> V_int (as_int old lxor as_int rhs_v)
    | Ast.A_shl -> V_int (as_int old lsl as_int rhs_v)
    | Ast.A_shr -> V_int (as_int old asr as_int rhs_v)
  in
  match lhs with
  | Ast.E_ident name ->
    (match lookup_cell t ctx name with
     | None -> err "undeclared identifier %s" name
     | Some cell ->
       let v = coerce cell.cell_ty (combined cell.cell_v) in
       cell.cell_v <- v;
       v)
  | Ast.E_index (base, idx) ->
    let cells = as_array (eval t ctx base) in
    let i = as_int (eval t ctx idx) in
    if i < 0 || i >= Array.length cells then
      err "array index %d out of bounds" i;
    let cell = cells.(i) in
    let v = coerce cell.cell_ty (combined cell.cell_v) in
    cell.cell_v <- v;
    v
  | Ast.E_member (base, member) ->
    (match eval t ctx base with
     | V_msg m ->
       (match member with
        | "id" ->
          let v = as_int (combined (V_int m.m_id)) in
          m.m_id <- v land 0x1FFFFFFF;
          V_int m.m_id
        | "dlc" ->
          let v = as_int (combined (V_int m.m_dlc)) in
          if v < 0 || v > 8 then err "dlc %d out of range" v;
          m.m_dlc <- v;
          V_int v
        | signal ->
          (match m.m_spec with
           | None ->
             err "message has no known type; cannot write signal %s" signal
           | Some spec ->
             (match Msgdb.find_signal spec signal with
              | None ->
                err "message %s has no signal %s" spec.Msgdb.msg_name signal
              | Some s ->
                let old = V_int (Msgdb.decode_signal s m.m_data) in
                let v = as_int (combined old) in
                Msgdb.encode_signal s m.m_data v;
                V_int v)))
     | _ -> err "member assignment on a non-message value")
  | Ast.E_method (base, "byte", [ idx ]) ->
    (match eval t ctx base with
     | V_msg m ->
       let i = as_int (eval t ctx idx) in
       if i < 0 || i > 7 then err "byte index %d out of range" i;
       let v = as_int (combined (V_int m.m_data.(i))) land 0xFF in
       m.m_data.(i) <- v;
       if i >= m.m_dlc then m.m_dlc <- i + 1;
       V_int v
     | _ -> err "byte() assignment on a non-message value")
  | Ast.E_this -> err "cannot assign to 'this' itself"
  | _ -> err "assignment to a non-lvalue"

and call t ctx name args =
  match name with
  | "output" ->
    (match List.map (eval t ctx) args with
     | [ V_msg m ] ->
       t.rt.rt_output m;
       V_int 0
     | _ -> err "output() takes exactly one message")
  | "setTimer" ->
    (match args with
     | [ Ast.E_ident tname; dur ] ->
       let cell =
         match lookup_cell t ctx tname with
         | Some c -> c
         | None -> err "undeclared timer %s" tname
       in
       let d = as_int (eval t ctx dur) in
       let us =
         match cell.cell_ty with
         | Ast.T_ms_timer -> d * 1_000
         | Ast.T_timer -> d * 1_000_000
         | _ -> err "%s is not a timer" tname
       in
       t.rt.rt_set_timer ~name:tname ~us;
       V_int 0
     | _ -> err "setTimer() takes a timer variable and a duration")
  | "cancelTimer" ->
    (match args with
     | [ Ast.E_ident tname ] ->
       t.rt.rt_cancel_timer ~name:tname;
       V_int 0
     | _ -> err "cancelTimer() takes a timer variable")
  | "write" ->
    (match args with
     | Ast.E_string fmt :: rest ->
       let values = List.map (eval t ctx) rest in
       t.rt.rt_write (format_write fmt values);
       V_int 0
     | _ -> err "write() needs a literal format string")
  | "elCount" ->
    (match List.map (eval t ctx) args with
     | [ V_array cells ] -> V_int (Array.length cells)
     | [ V_string s ] -> V_int (String.length s)
     | _ -> err "elCount() takes an array")
  | "abs" ->
    (match List.map (eval t ctx) args with
     | [ V_int n ] -> V_int (abs n)
     | [ V_float f ] -> V_float (Float.abs f)
     | _ -> err "abs() takes one number")
  | "random" ->
    (match List.map (eval t ctx) args with
     | [ V_int n ] when n > 0 ->
       (* deterministic LCG so simulations are reproducible *)
       t.rng <- ((t.rng * 1103515245) + 12345) land 0x3FFFFFFF;
       V_int (t.rng mod n)
     | _ -> err "random() takes a positive bound")
  | "timeNow" -> V_int (t.rt.rt_now_us () / 10)
  | "getValue" | "putValue" -> err "%s: system variables are not simulated" name
  | _ ->
    (match
       List.find_opt (fun f -> String.equal f.Ast.fn_name name)
         t.prog.Ast.functions
     with
     | None -> err "call to unknown function %s" name
     | Some f ->
       if List.length f.Ast.fn_params <> List.length args then
         err "function %s expects %d arguments" name
           (List.length f.Ast.fn_params);
       if t.depth >= max_call_depth then err "call depth exceeded in %s" name;
       let values = List.map (eval t ctx) args in
       let scope = Hashtbl.create 8 in
       List.iter2
         (fun (ty, pname) v ->
           Hashtbl.replace scope pname { cell_ty = ty; cell_v = coerce ty v })
         f.Ast.fn_params values;
       let fctx = { scopes = [ scope ]; this = ctx.this } in
       t.depth <- t.depth + 1;
       let result =
         match exec_block t fctx f.Ast.fn_body with
         | () -> V_int 0
         | exception Ret v -> v
       in
       t.depth <- t.depth - 1;
       result)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec t ctx (s : Ast.stmt) : unit =
  match s with
  | Ast.S_expr e -> ignore (eval t ctx e)
  | Ast.S_decl decls ->
    let scope =
      match ctx.scopes with
      | scope :: _ -> scope
      | [] -> err "declaration outside a scope"
    in
    List.iter
      (fun d ->
        let init =
          match d.Ast.var_init with
          | Some e -> coerce d.Ast.var_ty (eval t ctx e)
          | None -> default_value t d.Ast.var_ty d.Ast.var_dims
        in
        Hashtbl.replace scope d.Ast.var_name
          { cell_ty = d.Ast.var_ty; cell_v = init })
      decls
  | Ast.S_if (c, a, b) ->
    if truthy (eval t ctx c) then exec_in_scope t ctx a
    else Option.iter (exec_in_scope t ctx) b
  | Ast.S_while (c, body) ->
    (try
       while truthy (eval t ctx c) do
         try exec_in_scope t ctx body with Cont -> ()
       done
     with Brk -> ())
  | Ast.S_do_while (body, c) ->
    (try
       let continue_ = ref true in
       while !continue_ do
         (try exec_in_scope t ctx body with Cont -> ());
         continue_ := truthy (eval t ctx c)
       done
     with Brk -> ())
  | Ast.S_for (init, cond, update, body) ->
    let scope = Hashtbl.create 4 in
    let ctx' = { ctx with scopes = scope :: ctx.scopes } in
    Option.iter (exec t ctx') init;
    (try
       let continue_ () =
         match cond with
         | None -> true
         | Some c -> truthy (eval t ctx' c)
       in
       while continue_ () do
         (try exec_in_scope t ctx' body with Cont -> ());
         Option.iter (fun u -> ignore (eval t ctx' u)) update
       done
     with Brk -> ())
  | Ast.S_switch (e, cases) ->
    let v = eval t ctx e in
    let scrutinee = as_int v in
    let matches c =
      match c.Ast.case_label with
      | None -> false
      | Some label -> as_int (eval t ctx label) = scrutinee
    in
    let rec find_start = function
      | [] ->
        (* fall back to default *)
        let rec find_default = function
          | [] -> []
          | c :: rest ->
            if c.Ast.case_label = None then c :: rest else find_default rest
        in
        find_default cases
      | c :: rest -> if matches c then c :: rest else find_start rest
    in
    let selected = find_start cases in
    (try
       List.iter
         (fun c -> List.iter (exec_in_scope t ctx) c.Ast.case_body)
         selected
     with Brk -> ())
  | Ast.S_break -> raise Brk
  | Ast.S_continue -> raise Cont
  | Ast.S_return e ->
    let v =
      match e with
      | None -> V_int 0
      | Some e -> eval t ctx e
    in
    raise (Ret v)
  | Ast.S_block body -> exec_block t ctx body

and exec_in_scope t ctx s =
  match s with
  | Ast.S_block body -> exec_block t ctx body
  | _ -> exec t ctx s

and exec_block t ctx body =
  let scope = Hashtbl.create 4 in
  let ctx' = { ctx with scopes = scope :: ctx.scopes } in
  List.iter (exec t ctx') body

(* ------------------------------------------------------------------ *)
(* Construction and event dispatch                                     *)
(* ------------------------------------------------------------------ *)

let create ?(runtime = null_runtime) ?(db = Msgdb.empty) prog =
  let t =
    {
      prog;
      db;
      rt = runtime;
      globals = Hashtbl.create 32;
      rng = 0x5EED;
      depth = 0;
    }
  in
  (* Global initializers may refer to earlier globals. *)
  List.iter
    (fun d ->
      let ctx = { scopes = []; this = None } in
      let init =
        match d.Ast.var_init with
        | Some e -> coerce d.Ast.var_ty (eval t ctx e)
        | None -> default_value t d.Ast.var_ty d.Ast.var_dims
      in
      Hashtbl.replace t.globals d.Ast.var_name
        { cell_ty = d.Ast.var_ty; cell_v = init })
    prog.Ast.variables;
  t

let run_handler t ?this body =
  let ctx = { scopes = []; this } in
  try exec_block t ctx body with
  | Ret _ -> ()
  | Brk -> err "break escaped a handler"
  | Cont -> err "continue escaped a handler"

let fire_event t pred ?this () =
  List.iter
    (fun h -> if pred h.Ast.event then run_handler t ?this h.Ast.body)
    t.prog.Ast.handlers

let fire_start t = fire_event t (fun e -> e = Ast.Ev_start) ()
let fire_prestart t = fire_event t (fun e -> e = Ast.Ev_prestart) ()
let fire_stop t = fire_event t (fun e -> e = Ast.Ev_stop) ()
let fire_key t c = fire_event t (fun e -> e = Ast.Ev_key c) ()

let fire_timer t name =
  fire_event t (fun e -> e = Ast.Ev_timer name) ()

let on_frame t frame =
  let m = msg_of_frame ~db:t.db frame in
  let id = frame.Canbus.Frame.id in
  let name =
    Option.map (fun s -> s.Msgdb.msg_name) (Msgdb.find_by_id t.db id)
  in
  let matches = function
    | Ast.Ev_message (Ast.Msg_name n) -> Some n = name
    | Ast.Ev_message (Ast.Msg_id i) -> i = id
    | Ast.Ev_message Ast.Msg_any -> true
    | _ -> false
  in
  fire_event t matches ~this:m ()

let call_function t name values =
  let f =
    match
      List.find_opt (fun f -> String.equal f.Ast.fn_name name)
        t.prog.Ast.functions
    with
    | Some f -> f
    | None -> err "unknown function %s" name
  in
  if List.length f.Ast.fn_params <> List.length values then
    err "function %s expects %d arguments" name (List.length f.Ast.fn_params);
  let scope = Hashtbl.create 8 in
  List.iter2
    (fun (ty, pname) v ->
      Hashtbl.replace scope pname { cell_ty = ty; cell_v = coerce ty v })
    f.Ast.fn_params values;
  let ctx = { scopes = [ scope ]; this = None } in
  match exec_block t ctx f.Ast.fn_body with
  | () -> V_int 0
  | exception Ret v -> v

let global t name =
  match Hashtbl.find_opt t.globals name with
  | Some c -> c.cell_v
  | None -> err "no global named %s" name

let set_global t name v =
  match Hashtbl.find_opt t.globals name with
  | Some c -> c.cell_v <- coerce c.cell_ty v
  | None -> err "no global named %s" name
