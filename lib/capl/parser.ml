exception Parse_error of string * Ast.pos

type state = {
  toks : (Lexer.token * Ast.pos) array;
  mutable cursor : int;
}

let current st = fst st.toks.(st.cursor)
let current_pos st = snd st.toks.(st.cursor)

let fail st msg =
  raise
    (Parse_error
       ( Printf.sprintf "%s (found %s)" msg
           (Lexer.token_to_string (current st)),
         current_pos st ))

let advance st = if current st <> Lexer.EOF then st.cursor <- st.cursor + 1

let eat st tok =
  if current st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Lexer.token_to_string tok))

let eat_ident st =
  match current st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let msg_selector st : Ast.msg_selector =
  match current st with
  | Lexer.IDENT name ->
    advance st;
    Ast.Msg_name name
  | Lexer.INT id ->
    advance st;
    Ast.Msg_id id
  | Lexer.STAR ->
    advance st;
    Ast.Msg_any
  | _ -> fail st "expected a message name, identifier or *"

let base_type st : Ast.ty option =
  match current st with
  | Lexer.KW_int -> advance st; Some Ast.T_int
  | Lexer.KW_long -> advance st; Some Ast.T_long
  | Lexer.KW_int64 -> advance st; Some Ast.T_int64
  | Lexer.KW_byte -> advance st; Some Ast.T_byte
  | Lexer.KW_word -> advance st; Some Ast.T_word
  | Lexer.KW_dword -> advance st; Some Ast.T_dword
  | Lexer.KW_qword -> advance st; Some Ast.T_qword
  | Lexer.KW_char -> advance st; Some Ast.T_char
  | Lexer.KW_float -> advance st; Some Ast.T_float
  | Lexer.KW_double -> advance st; Some Ast.T_double
  | Lexer.KW_void -> advance st; Some Ast.T_void
  | Lexer.KW_message ->
    advance st;
    Some (Ast.T_message (msg_selector st))
  | Lexer.KW_timer -> advance st; Some Ast.T_timer
  | Lexer.KW_msTimer -> advance st; Some Ast.T_ms_timer
  | _ -> None

let starts_type st =
  match current st with
  | Lexer.KW_int | Lexer.KW_long | Lexer.KW_int64 | Lexer.KW_byte
  | Lexer.KW_word | Lexer.KW_dword | Lexer.KW_qword | Lexer.KW_char
  | Lexer.KW_float | Lexer.KW_double | Lexer.KW_void | Lexer.KW_message
  | Lexer.KW_timer | Lexer.KW_msTimer ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions (C precedence)                                          *)
(* ------------------------------------------------------------------ *)

let rec expression st = assignment st

and assignment st =
  let left = ternary st in
  let op =
    match current st with
    | Lexer.ASSIGN -> Some Ast.A_eq
    | Lexer.PLUS_ASSIGN -> Some Ast.A_add
    | Lexer.MINUS_ASSIGN -> Some Ast.A_sub
    | Lexer.STAR_ASSIGN -> Some Ast.A_mul
    | Lexer.SLASH_ASSIGN -> Some Ast.A_div
    | Lexer.PERCENT_ASSIGN -> Some Ast.A_mod
    | Lexer.AMP_ASSIGN -> Some Ast.A_band
    | Lexer.PIPE_ASSIGN -> Some Ast.A_bor
    | Lexer.CARET_ASSIGN -> Some Ast.A_bxor
    | Lexer.SHL_ASSIGN -> Some Ast.A_shl
    | Lexer.SHR_ASSIGN -> Some Ast.A_shr
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    let right = assignment st in
    Ast.E_assign (op, left, right)
  | None -> left

and ternary st =
  let cond = logical_or st in
  match current st with
  | Lexer.QUESTION ->
    advance st;
    let a = assignment st in
    eat st Lexer.COLON;
    let b = assignment st in
    Ast.E_ternary (cond, a, b)
  | _ -> cond

and logical_or st =
  let rec loop left =
    match current st with
    | Lexer.PIPEPIPE ->
      advance st;
      loop (Ast.E_binop (Ast.B_lor, left, logical_and st))
    | _ -> left
  in
  loop (logical_and st)

and logical_and st =
  let rec loop left =
    match current st with
    | Lexer.AMPAMP ->
      advance st;
      loop (Ast.E_binop (Ast.B_land, left, bit_or st))
    | _ -> left
  in
  loop (bit_or st)

and bit_or st =
  let rec loop left =
    match current st with
    | Lexer.PIPE ->
      advance st;
      loop (Ast.E_binop (Ast.B_bor, left, bit_xor st))
    | _ -> left
  in
  loop (bit_xor st)

and bit_xor st =
  let rec loop left =
    match current st with
    | Lexer.CARET ->
      advance st;
      loop (Ast.E_binop (Ast.B_bxor, left, bit_and st))
    | _ -> left
  in
  loop (bit_and st)

and bit_and st =
  let rec loop left =
    match current st with
    | Lexer.AMP ->
      advance st;
      loop (Ast.E_binop (Ast.B_band, left, equality st))
    | _ -> left
  in
  loop (equality st)

and equality st =
  let rec loop left =
    match current st with
    | Lexer.EQ ->
      advance st;
      loop (Ast.E_binop (Ast.B_eq, left, relational st))
    | Lexer.NEQ ->
      advance st;
      loop (Ast.E_binop (Ast.B_neq, left, relational st))
    | _ -> left
  in
  loop (relational st)

and relational st =
  let rec loop left =
    match current st with
    | Lexer.LT -> advance st; loop (Ast.E_binop (Ast.B_lt, left, shift st))
    | Lexer.LE -> advance st; loop (Ast.E_binop (Ast.B_le, left, shift st))
    | Lexer.GT -> advance st; loop (Ast.E_binop (Ast.B_gt, left, shift st))
    | Lexer.GE -> advance st; loop (Ast.E_binop (Ast.B_ge, left, shift st))
    | _ -> left
  in
  loop (shift st)

and shift st =
  let rec loop left =
    match current st with
    | Lexer.SHL -> advance st; loop (Ast.E_binop (Ast.B_shl, left, additive st))
    | Lexer.SHR -> advance st; loop (Ast.E_binop (Ast.B_shr, left, additive st))
    | _ -> left
  in
  loop (additive st)

and additive st =
  let rec loop left =
    match current st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.E_binop (Ast.B_add, left, multiplicative st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.E_binop (Ast.B_sub, left, multiplicative st))
    | _ -> left
  in
  loop (multiplicative st)

and multiplicative st =
  let rec loop left =
    match current st with
    | Lexer.STAR -> advance st; loop (Ast.E_binop (Ast.B_mul, left, unary st))
    | Lexer.SLASH -> advance st; loop (Ast.E_binop (Ast.B_div, left, unary st))
    | Lexer.PERCENT ->
      advance st;
      loop (Ast.E_binop (Ast.B_mod, left, unary st))
    | _ -> left
  in
  loop (unary st)

and unary st =
  match current st with
  | Lexer.MINUS ->
    advance st;
    Ast.E_unop (Ast.U_neg, unary st)
  | Lexer.BANG ->
    advance st;
    Ast.E_unop (Ast.U_not, unary st)
  | Lexer.TILDE ->
    advance st;
    Ast.E_unop (Ast.U_bnot, unary st)
  | Lexer.PLUSPLUS ->
    advance st;
    Ast.E_incr (true, true, unary st)
  | Lexer.MINUSMINUS ->
    advance st;
    Ast.E_incr (false, true, unary st)
  | _ -> postfix st

and postfix st =
  let rec loop left =
    match current st with
    | Lexer.DOT ->
      advance st;
      let member =
        match current st with
        | Lexer.IDENT m ->
          advance st;
          m
        (* members may collide with keywords, e.g. [m.byte(0)] *)
        | Lexer.KW_byte -> advance st; "byte"
        | Lexer.KW_word -> advance st; "word"
        | Lexer.KW_dword -> advance st; "dword"
        | _ -> fail st "expected member name after '.'"
      in
      (match current st with
       | Lexer.LPAREN ->
         advance st;
         let args = arguments st in
         eat st Lexer.RPAREN;
         loop (Ast.E_method (left, member, args))
       | _ -> loop (Ast.E_member (left, member)))
    | Lexer.LBRACKET ->
      advance st;
      let index = expression st in
      eat st Lexer.RBRACKET;
      loop (Ast.E_index (left, index))
    | Lexer.PLUSPLUS ->
      advance st;
      loop (Ast.E_incr (true, false, left))
    | Lexer.MINUSMINUS ->
      advance st;
      loop (Ast.E_incr (false, false, left))
    | _ -> left
  in
  loop (primary st)

and arguments st =
  match current st with
  | Lexer.RPAREN -> []
  | _ ->
    let rec more acc =
      let e = assignment st in
      match current st with
      | Lexer.COMMA ->
        advance st;
        more (e :: acc)
      | _ -> List.rev (e :: acc)
    in
    more []

and primary st =
  match current st with
  | Lexer.INT n -> advance st; Ast.E_int n
  | Lexer.FLOAT f -> advance st; Ast.E_float f
  | Lexer.CHAR c -> advance st; Ast.E_char c
  | Lexer.STRING s -> advance st; Ast.E_string s
  | Lexer.KW_this -> advance st; Ast.E_this
  | Lexer.IDENT name ->
    advance st;
    (match current st with
     | Lexer.LPAREN ->
       advance st;
       let args = arguments st in
       eat st Lexer.RPAREN;
       Ast.E_call (name, args)
     | _ -> Ast.E_ident name)
  | Lexer.LPAREN ->
    advance st;
    let e = expression st in
    eat st Lexer.RPAREN;
    e
  | _ -> fail st "expected an expression"

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let declarators st ty : Ast.var_decl list =
  let one () =
    let pos = current_pos st in
    let name = eat_ident st in
    let rec dims acc =
      match current st with
      | Lexer.LBRACKET ->
        advance st;
        let d =
          match current st with
          | Lexer.INT n ->
            advance st;
            n
          | _ -> fail st "expected array size"
        in
        eat st Lexer.RBRACKET;
        dims (d :: acc)
      | _ -> List.rev acc
    in
    let dims = dims [] in
    let init =
      match current st with
      | Lexer.ASSIGN ->
        advance st;
        Some (assignment st)
      | _ -> None
    in
    { Ast.var_ty = ty; var_name = name; var_dims = dims; var_init = init;
      var_pos = pos }
  in
  let rec more acc =
    let d = one () in
    match current st with
    | Lexer.COMMA ->
      advance st;
      more (d :: acc)
    | _ -> List.rev (d :: acc)
  in
  let ds = more [] in
  eat st Lexer.SEMI;
  ds

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec statement st : Ast.stmt =
  match current st with
  | Lexer.LBRACE ->
    advance st;
    let body = statements_until_rbrace st in
    Ast.S_block body
  | Lexer.KW_if ->
    advance st;
    eat st Lexer.LPAREN;
    let cond = expression st in
    eat st Lexer.RPAREN;
    let then_branch = statement st in
    (match current st with
     | Lexer.KW_else ->
       advance st;
       let else_branch = statement st in
       Ast.S_if (cond, then_branch, Some else_branch)
     | _ -> Ast.S_if (cond, then_branch, None))
  | Lexer.KW_while ->
    advance st;
    eat st Lexer.LPAREN;
    let cond = expression st in
    eat st Lexer.RPAREN;
    Ast.S_while (cond, statement st)
  | Lexer.KW_do ->
    advance st;
    let body = statement st in
    eat st Lexer.KW_while;
    eat st Lexer.LPAREN;
    let cond = expression st in
    eat st Lexer.RPAREN;
    eat st Lexer.SEMI;
    Ast.S_do_while (body, cond)
  | Lexer.KW_for ->
    advance st;
    eat st Lexer.LPAREN;
    let init =
      match current st with
      | Lexer.SEMI ->
        advance st;
        None
      | _ when starts_type st ->
        let ty = Option.get (base_type st) in
        Some (Ast.S_decl (declarators st ty))
      | _ ->
        let e = expression st in
        eat st Lexer.SEMI;
        Some (Ast.S_expr e)
    in
    let cond =
      match current st with
      | Lexer.SEMI -> None
      | _ -> Some (expression st)
    in
    eat st Lexer.SEMI;
    let update =
      match current st with
      | Lexer.RPAREN -> None
      | _ -> Some (expression st)
    in
    eat st Lexer.RPAREN;
    Ast.S_for (init, cond, update, statement st)
  | Lexer.KW_switch ->
    advance st;
    eat st Lexer.LPAREN;
    let scrutinee = expression st in
    eat st Lexer.RPAREN;
    eat st Lexer.LBRACE;
    let rec cases acc =
      match current st with
      | Lexer.RBRACE ->
        advance st;
        List.rev acc
      | Lexer.KW_case ->
        advance st;
        let label = expression st in
        eat st Lexer.COLON;
        let body = case_body st in
        cases ({ Ast.case_label = Some label; case_body = body } :: acc)
      | Lexer.KW_default ->
        advance st;
        eat st Lexer.COLON;
        let body = case_body st in
        cases ({ Ast.case_label = None; case_body = body } :: acc)
      | _ -> fail st "expected case, default or }"
    in
    Ast.S_switch (scrutinee, cases [])
  | Lexer.KW_break ->
    advance st;
    eat st Lexer.SEMI;
    Ast.S_break
  | Lexer.KW_continue ->
    advance st;
    eat st Lexer.SEMI;
    Ast.S_continue
  | Lexer.KW_return ->
    advance st;
    (match current st with
     | Lexer.SEMI ->
       advance st;
       Ast.S_return None
     | _ ->
       let e = expression st in
       eat st Lexer.SEMI;
       Ast.S_return (Some e))
  | _ when starts_type st ->
    let ty = Option.get (base_type st) in
    Ast.S_decl (declarators st ty)
  | _ ->
    let e = expression st in
    eat st Lexer.SEMI;
    Ast.S_expr e

and statements_until_rbrace st =
  let rec loop acc =
    match current st with
    | Lexer.RBRACE ->
      advance st;
      List.rev acc
    | Lexer.EOF -> fail st "unexpected end of input inside a block"
    | _ -> loop (statement st :: acc)
  in
  loop []

and case_body st =
  let rec loop acc =
    match current st with
    | Lexer.KW_case | Lexer.KW_default | Lexer.RBRACE -> List.rev acc
    | _ -> loop (statement st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let event st : Ast.event =
  match current st with
  | Lexer.IDENT "start" ->
    advance st;
    Ast.Ev_start
  | Lexer.IDENT "preStart" ->
    advance st;
    Ast.Ev_prestart
  | Lexer.IDENT "stopMeasurement" ->
    advance st;
    Ast.Ev_stop
  | Lexer.KW_key ->
    advance st;
    (match current st with
     | Lexer.CHAR c ->
       advance st;
       Ast.Ev_key c
     | _ -> fail st "expected a character literal after 'on key'")
  | Lexer.KW_timer ->
    advance st;
    Ast.Ev_timer (eat_ident st)
  | Lexer.KW_msTimer ->
    advance st;
    Ast.Ev_timer (eat_ident st)
  | Lexer.KW_message ->
    advance st;
    Ast.Ev_message (msg_selector st)
  | _ -> fail st "expected an event kind after 'on'"

let program src =
  let st = { toks = Array.of_list (Lexer.tokens src); cursor = 0 } in
  let includes = ref [] in
  let variables = ref [] in
  let handlers = ref [] in
  let functions = ref [] in
  let rec loop () =
    match current st with
    | Lexer.EOF -> ()
    | Lexer.KW_includes ->
      advance st;
      eat st Lexer.LBRACE;
      let rec files () =
        match current st with
        | Lexer.HASH_INCLUDE f ->
          advance st;
          includes := f :: !includes;
          files ()
        | Lexer.RBRACE -> advance st
        | _ -> fail st "expected #include or } in includes section"
      in
      files ();
      loop ()
    | Lexer.KW_variables ->
      advance st;
      eat st Lexer.LBRACE;
      let rec vars () =
        match current st with
        | Lexer.RBRACE -> advance st
        | _ when starts_type st ->
          let ty = Option.get (base_type st) in
          variables := !variables @ declarators st ty;
          vars ()
        | _ -> fail st "expected a declaration or } in variables section"
      in
      vars ();
      loop ()
    | Lexer.KW_on ->
      let pos = current_pos st in
      advance st;
      let ev = event st in
      eat st Lexer.LBRACE;
      let body = statements_until_rbrace st in
      handlers := { Ast.event = ev; body; handler_pos = pos } :: !handlers;
      loop ()
    | _ when starts_type st ->
      let pos = current_pos st in
      let ret = Option.get (base_type st) in
      let name = eat_ident st in
      eat st Lexer.LPAREN;
      let params =
        match current st with
        | Lexer.RPAREN -> []
        | _ ->
          let rec more acc =
            let ty =
              match base_type st with
              | Some ty -> ty
              | None -> fail st "expected a parameter type"
            in
            let pname = eat_ident st in
            match current st with
            | Lexer.COMMA ->
              advance st;
              more ((ty, pname) :: acc)
            | _ -> List.rev ((ty, pname) :: acc)
          in
          more []
      in
      eat st Lexer.RPAREN;
      eat st Lexer.LBRACE;
      let body = statements_until_rbrace st in
      functions :=
        { Ast.fn_ret = ret; fn_name = name; fn_params = params;
          fn_body = body; fn_pos = pos }
        :: !functions;
      loop ()
    | _ -> fail st "expected includes, variables, 'on <event>' or a function"
  in
  loop ();
  {
    Ast.includes = List.rev !includes;
    variables = !variables;
    handlers = List.rev !handlers;
    functions = List.rev !functions;
  }

let expr src =
  let st = { toks = Array.of_list (Lexer.tokens src); cursor = 0 } in
  let e = expression st in
  (match current st with
   | Lexer.EOF -> ()
   | _ -> fail st "trailing input after expression");
  e

let stmt src =
  let st = { toks = Array.of_list (Lexer.tokens src); cursor = 0 } in
  let s = statement st in
  (match current st with
   | Lexer.EOF -> ()
   | _ -> fail st "trailing input after statement");
  s
