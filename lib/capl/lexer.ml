type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | CHAR of char
  | STRING of string
  | KW_includes | KW_variables | KW_on | KW_message | KW_timer | KW_msTimer
  | KW_key | KW_this
  | KW_int | KW_long | KW_int64 | KW_byte | KW_word | KW_dword | KW_qword
  | KW_char | KW_float | KW_double | KW_void
  | KW_if | KW_else | KW_while | KW_do | KW_for | KW_switch | KW_case
  | KW_default | KW_break | KW_continue | KW_return
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | DOT | QUESTION
  | ASSIGN | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | PERCENT_ASSIGN | AMP_ASSIGN | PIPE_ASSIGN | CARET_ASSIGN
  | SHL_ASSIGN | SHR_ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS | MINUSMINUS
  | SHL | SHR
  | AMP | PIPE | CARET | TILDE
  | AMPAMP | PIPEPIPE | BANG
  | EQ | NEQ | LT | LE | GT | GE
  | HASH_INCLUDE of string
  | EOF

exception Lex_error of string * Ast.pos

let keyword = function
  | "includes" -> Some KW_includes
  | "variables" -> Some KW_variables
  | "on" -> Some KW_on
  | "message" -> Some KW_message
  | "timer" -> Some KW_timer
  | "msTimer" -> Some KW_msTimer
  | "key" -> Some KW_key
  | "this" -> Some KW_this
  | "int" -> Some KW_int
  | "long" -> Some KW_long
  | "int64" -> Some KW_int64
  | "byte" -> Some KW_byte
  | "word" -> Some KW_word
  | "dword" -> Some KW_dword
  | "qword" -> Some KW_qword
  | "char" -> Some KW_char
  | "float" -> Some KW_float
  | "double" -> Some KW_double
  | "void" -> Some KW_void
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "while" -> Some KW_while
  | "do" -> Some KW_do
  | "for" -> Some KW_for
  | "switch" -> Some KW_switch
  | "case" -> Some KW_case
  | "default" -> Some KW_default
  | "break" -> Some KW_break
  | "continue" -> Some KW_continue
  | "return" -> Some KW_return
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokens src =
  let n = String.length src in
  let line = ref 1 in
  let col = ref 1 in
  let i = ref 0 in
  let pos () = { Ast.line = !line; Ast.col = !col } in
  let fail msg = raise (Lex_error (msg, pos ())) in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    (match src.[!i] with
     | '\n' ->
       incr line;
       col := 1
     | _ -> incr col);
    incr i
  in
  let advance_n k =
    for _ = 1 to k do
      advance ()
    done
  in
  let read_escape () =
    (* after the backslash *)
    match peek 0 with
    | Some 'n' -> advance (); '\n'
    | Some 't' -> advance (); '\t'
    | Some 'r' -> advance (); '\r'
    | Some '0' -> advance (); '\000'
    | Some '\\' -> advance (); '\\'
    | Some '\'' -> advance (); '\''
    | Some '"' -> advance (); '"'
    | Some c -> advance (); c
    | None -> fail "unterminated escape"
  in
  let acc = ref [] in
  let emit tok p = acc := (tok, p) :: !acc in
  let rec loop () =
    if !i >= n then emit EOF (pos ())
    else begin
      let c = src.[!i] in
      let p = pos () in
      (match c with
       | ' ' | '\t' | '\r' | '\n' -> advance ()
       | '/' when peek 1 = Some '/' ->
         while !i < n && src.[!i] <> '\n' do
           advance ()
         done
       | '/' when peek 1 = Some '*' ->
         advance_n 2;
         let rec skip () =
           if !i >= n then raise (Lex_error ("unterminated comment", p))
           else if peek 0 = Some '*' && peek 1 = Some '/' then advance_n 2
           else begin
             advance ();
             skip ()
           end
         in
         skip ()
       | '#' ->
         (* #include "file" *)
         advance ();
         let start = !i in
         while !i < n && is_ident_char src.[!i] do
           advance ()
         done;
         let word = String.sub src start (!i - start) in
         if word <> "include" then fail ("unknown directive #" ^ word);
         while !i < n && (src.[!i] = ' ' || src.[!i] = '\t') do
           advance ()
         done;
         let close =
           match peek 0 with
           | Some '"' -> '"'
           | Some '<' -> '>'
           | _ -> fail "expected a file name after #include"
         in
         advance ();
         let fstart = !i in
         while !i < n && src.[!i] <> close && src.[!i] <> '\n' do
           advance ()
         done;
         if !i >= n || src.[!i] <> close then fail "unterminated include path";
         let file = String.sub src fstart (!i - fstart) in
         advance ();
         emit (HASH_INCLUDE file) p
       | '\'' ->
         advance ();
         let ch =
           match peek 0 with
           | Some '\\' ->
             advance ();
             read_escape ()
           | Some c ->
             advance ();
             c
           | None -> fail "unterminated character literal"
         in
         (match peek 0 with
          | Some '\'' -> advance ()
          | _ -> fail "unterminated character literal");
         emit (CHAR ch) p
       | '"' ->
         advance ();
         let buf = Buffer.create 16 in
         let rec read () =
           match peek 0 with
           | None -> fail "unterminated string literal"
           | Some '"' -> advance ()
           | Some '\\' ->
             advance ();
             Buffer.add_char buf (read_escape ());
             read ()
           | Some c ->
             advance ();
             Buffer.add_char buf c;
             read ()
         in
         read ();
         emit (STRING (Buffer.contents buf)) p
       | '{' -> advance (); emit LBRACE p
       | '}' -> advance (); emit RBRACE p
       | '(' -> advance (); emit LPAREN p
       | ')' -> advance (); emit RPAREN p
       | '[' -> advance (); emit LBRACKET p
       | ']' -> advance (); emit RBRACKET p
       | ';' -> advance (); emit SEMI p
       | ',' -> advance (); emit COMMA p
       | ':' -> advance (); emit COLON p
       | '.' -> advance (); emit DOT p
       | '?' -> advance (); emit QUESTION p
       | '~' -> advance (); emit TILDE p
       | '+' when peek 1 = Some '+' -> advance_n 2; emit PLUSPLUS p
       | '+' when peek 1 = Some '=' -> advance_n 2; emit PLUS_ASSIGN p
       | '+' -> advance (); emit PLUS p
       | '-' when peek 1 = Some '-' -> advance_n 2; emit MINUSMINUS p
       | '-' when peek 1 = Some '=' -> advance_n 2; emit MINUS_ASSIGN p
       | '-' -> advance (); emit MINUS p
       | '*' when peek 1 = Some '=' -> advance_n 2; emit STAR_ASSIGN p
       | '*' -> advance (); emit STAR p
       | '/' when peek 1 = Some '=' -> advance_n 2; emit SLASH_ASSIGN p
       | '/' -> advance (); emit SLASH p
       | '%' when peek 1 = Some '=' -> advance_n 2; emit PERCENT_ASSIGN p
       | '%' -> advance (); emit PERCENT p
       | '<' when peek 1 = Some '<' && peek 2 = Some '=' ->
         advance_n 3;
         emit SHL_ASSIGN p
       | '<' when peek 1 = Some '<' -> advance_n 2; emit SHL p
       | '<' when peek 1 = Some '=' -> advance_n 2; emit LE p
       | '<' -> advance (); emit LT p
       | '>' when peek 1 = Some '>' && peek 2 = Some '=' ->
         advance_n 3;
         emit SHR_ASSIGN p
       | '>' when peek 1 = Some '>' -> advance_n 2; emit SHR p
       | '>' when peek 1 = Some '=' -> advance_n 2; emit GE p
       | '>' -> advance (); emit GT p
       | '=' when peek 1 = Some '=' -> advance_n 2; emit EQ p
       | '=' -> advance (); emit ASSIGN p
       | '!' when peek 1 = Some '=' -> advance_n 2; emit NEQ p
       | '!' -> advance (); emit BANG p
       | '&' when peek 1 = Some '&' -> advance_n 2; emit AMPAMP p
       | '&' when peek 1 = Some '=' -> advance_n 2; emit AMP_ASSIGN p
       | '&' -> advance (); emit AMP p
       | '|' when peek 1 = Some '|' -> advance_n 2; emit PIPEPIPE p
       | '|' when peek 1 = Some '=' -> advance_n 2; emit PIPE_ASSIGN p
       | '|' -> advance (); emit PIPE p
       | '^' when peek 1 = Some '=' -> advance_n 2; emit CARET_ASSIGN p
       | '^' -> advance (); emit CARET p
       | '0' when peek 1 = Some 'x' || peek 1 = Some 'X' ->
         advance_n 2;
         let start = !i in
         while !i < n && is_hex src.[!i] do
           advance ()
         done;
         if !i = start then fail "empty hex literal";
         let text = "0x" ^ String.sub src start (!i - start) in
         (match int_of_string_opt text with
          | Some v -> emit (INT v) p
          | None ->
            raise
              (Lex_error
                 (Printf.sprintf "integer literal %s out of range" text, p)))
       | c when is_digit c ->
         let start = !i in
         while !i < n && is_digit src.[!i] do
           advance ()
         done;
         if
           peek 0 = Some '.'
           && match peek 1 with Some d when is_digit d -> true | _ -> false
         then begin
           advance ();
           while !i < n && is_digit src.[!i] do
             advance ()
           done;
           let text = String.sub src start (!i - start) in
           match float_of_string_opt text with
           | Some v -> emit (FLOAT v) p
           | None ->
             raise
               (Lex_error
                  (Printf.sprintf "float literal %s out of range" text, p))
         end
         else begin
           let text = String.sub src start (!i - start) in
           match int_of_string_opt text with
           | Some v -> emit (INT v) p
           | None ->
             raise
               (Lex_error
                  (Printf.sprintf "integer literal %s out of range" text, p))
         end
       | c when is_ident_start c ->
         let start = !i in
         while !i < n && is_ident_char src.[!i] do
           advance ()
         done;
         let name = String.sub src start (!i - start) in
         (match keyword name with
          | Some kw -> emit kw p
          | None -> emit (IDENT name) p)
       | c -> fail (Printf.sprintf "unexpected character %C" c));
      if
        match !acc with
        | (EOF, _) :: _ -> false
        | _ -> true
      then loop ()
    end
  in
  loop ();
  (match !acc with
   | (EOF, _) :: _ -> ()
   | _ -> emit EOF (pos ()));
  List.rev !acc

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | CHAR c -> Printf.sprintf "%C" c
  | STRING s -> Printf.sprintf "%S" s
  | KW_includes -> "includes"
  | KW_variables -> "variables"
  | KW_on -> "on"
  | KW_message -> "message"
  | KW_timer -> "timer"
  | KW_msTimer -> "msTimer"
  | KW_key -> "key"
  | KW_this -> "this"
  | KW_int -> "int"
  | KW_long -> "long"
  | KW_int64 -> "int64"
  | KW_byte -> "byte"
  | KW_word -> "word"
  | KW_dword -> "dword"
  | KW_qword -> "qword"
  | KW_char -> "char"
  | KW_float -> "float"
  | KW_double -> "double"
  | KW_void -> "void"
  | KW_if -> "if"
  | KW_else -> "else"
  | KW_while -> "while"
  | KW_do -> "do"
  | KW_for -> "for"
  | KW_switch -> "switch"
  | KW_case -> "case"
  | KW_default -> "default"
  | KW_break -> "break"
  | KW_continue -> "continue"
  | KW_return -> "return"
  | LBRACE -> "{" | RBRACE -> "}"
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | COLON -> ":" | DOT -> "." | QUESTION -> "?"
  | ASSIGN -> "=" | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*=" | SLASH_ASSIGN -> "/=" | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&=" | PIPE_ASSIGN -> "|=" | CARET_ASSIGN -> "^="
  | SHL_ASSIGN -> "<<=" | SHR_ASSIGN -> ">>="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | SHL -> "<<" | SHR -> ">>"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | AMPAMP -> "&&" | PIPEPIPE -> "||" | BANG -> "!"
  | EQ -> "==" | NEQ -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | HASH_INCLUDE f -> Printf.sprintf "#include %S" f
  | EOF -> "<eof>"
