type node = {
  node_name : string;
  interp : Interp.t;
  bus_node : Canbus.Node.t;
  written : string Queue.t;
}

type t = {
  bus : Canbus.Bus.t;
  sched : Canbus.Scheduler.t;
  node_list : node list;
}

exception Setup_error of string

let create ?bitrate ?(db = Msgdb.empty) programs =
  (* Check every program before wiring anything up. *)
  let all_errors =
    List.concat_map
      (fun (name, prog) ->
        List.map
          (fun e -> Format.asprintf "%s: %a" name Sem.pp_error e)
          (Sem.check ~db prog))
      programs
  in
  if all_errors <> [] then
    raise (Setup_error (String.concat "\n" all_errors));
  let sched = Canbus.Scheduler.create () in
  let bus = Canbus.Bus.create ?bitrate sched in
  let node_list =
    List.map
      (fun (name, prog) ->
        let bus_node = Canbus.Node.create bus ~name in
        let written = Queue.create () in
        let interp = Interp.create ~db prog in
        let runtime =
          {
            Interp.rt_output =
              (fun m -> Canbus.Node.send bus_node (Interp.frame_of_msg m));
            rt_set_timer =
              (fun ~name:timer ~us ->
                Canbus.Node.set_timer bus_node ~name:timer ~us (fun () ->
                    Interp.fire_timer interp timer));
            rt_cancel_timer =
              (fun ~name:timer -> Canbus.Node.cancel_timer bus_node ~name:timer);
            rt_write = (fun line -> Queue.add line written);
            rt_now_us = (fun () -> Canbus.Scheduler.now sched);
          }
        in
        Interp.set_runtime interp runtime;
        Canbus.Node.on_frame bus_node (fun frame ->
            Interp.on_frame interp frame);
        { node_name = name; interp; bus_node; written })
      programs
  in
  { bus; sched; node_list }

let of_sources ?bitrate ?db sources =
  create ?bitrate ?db
    (List.map (fun (name, src) -> name, Parser.program src) sources)

let bus t = t.bus
let scheduler t = t.sched
let log t = Canbus.Bus.log t.bus
let nodes t = t.node_list

let node t name =
  match List.find_opt (fun n -> String.equal n.node_name name) t.node_list with
  | Some n -> n
  | None -> raise Not_found

let start t =
  List.iter (fun n -> Interp.fire_prestart n.interp) t.node_list;
  List.iter (fun n -> Interp.fire_start n.interp) t.node_list

let run ?until_ms ?max_events t =
  let until = Option.map (fun ms -> ms * 1000) until_ms in
  Canbus.Scheduler.run ?until ?max_events t.sched

let press_key t name c = Interp.fire_key (node t name).interp c

let transmissions t =
  List.map
    (fun e -> e.Canbus.Trace_log.node, e.Canbus.Trace_log.frame)
    (Canbus.Trace_log.transmissions (log t))
