(** The CANoe-equivalent simulation harness: CAPL programs attached as
    nodes of a simulated CAN bus.

    This closes the substitution described in DESIGN.md — where the paper
    ran its demonstration network inside Vector CANoe, we run the same CAPL
    sources here: each program becomes a bus node whose [on message] /
    [on timer] / [on start] procedures fire from the discrete-event
    scheduler, and [output] transmits real frames through arbitration. *)

type node = {
  node_name : string;
  interp : Interp.t;
  bus_node : Canbus.Node.t;
  written : string Queue.t;  (** lines produced by [write] *)
}

type t

exception Setup_error of string

val create :
  ?bitrate:int -> ?db:Msgdb.t -> (string * Ast.program) list -> t
(** [create nodes] builds a bus and attaches one node per (name, program).
    Programs are checked with {!Sem.check} first.
    @raise Setup_error on semantic errors (message includes them all). *)

val of_sources : ?bitrate:int -> ?db:Msgdb.t -> (string * string) list -> t
(** Like {!create} but parsing CAPL source text.
    @raise Parser.Parse_error or {!Lexer.Lex_error} on syntax errors. *)

val bus : t -> Canbus.Bus.t
val scheduler : t -> Canbus.Scheduler.t
val log : t -> Canbus.Trace_log.t
val nodes : t -> node list
val node : t -> string -> node
(** @raise Not_found if no node has that name. *)

val start : t -> unit
(** Fire [on preStart] then [on start] in every node (in creation order). *)

val run : ?until_ms:int -> ?max_events:int -> t -> int
(** {!start} must have been called; runs the scheduler and returns the
    number of events fired. *)

val press_key : t -> string -> char -> unit
(** Inject a key press into the named node's program. *)

val transmissions : t -> (string * Canbus.Frame.t) list
(** Chronological (sender, frame) pairs observed on the bus. *)
