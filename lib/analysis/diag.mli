(** Positioned diagnostics: the shared currency of the pre-check static
    analyses ({!Capl_lint} over CAPL programs, {!Cspm_analyze} over
    elaborated CSPm environments).

    Every finding carries a stable code ([CAPL001], [CSPM002], ...) so
    golden tests, editors, and suppression lists can key on it; the
    human-readable message may be reworded freely, the code and its
    meaning may not. Output is sorted by (file, position, code,
    severity, message), so a diagnostic report is deterministic for a
    given input — including across files, since the file name leads the
    key. *)

type severity =
  | Error  (** a defect the downstream stage would reject or miscompile *)
  | Warning  (** almost certainly a modelling mistake *)
  | Info  (** hygiene: unused declarations and the like *)

(** Line/column of the offending construct (1-based line, 0-or-1-based
    column as the front end reports it); mirrors [Capl.Ast.pos] and
    [Cspm.Ast.pos], which are distinct types with the same shape. *)
type pos = {
  line : int;
  col : int;
}

type t = {
  code : string;  (** stable, e.g. ["CAPL004"] *)
  severity : severity;
  file : string option;  (** source label: script path or node name *)
  pos : pos option;
  message : string;
}

val make :
  ?file:string -> ?pos:pos -> severity -> code:string -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"] — used by both renderers. *)

val compare : t -> t -> int
(** Report order: file, position, code, severity (most severe first),
    message. Severity participates so two findings identical in every
    other component are still distinct to {!sort}'s dedup. *)

val sort : t list -> t list
(** Sort by {!compare} and drop exact duplicates. *)

val count : severity -> t list -> int

val blocking : deny_warnings:bool -> t list -> bool
(** Whether this report should stop the pipeline: any [Error], or any
    [Warning] when [deny_warnings] is set ([Info] never blocks). The
    CLIs map a blocking report to exit code 4. *)

val exit_code : int
(** The conventional process exit status for a blocking report: 4
    (0-3 are taken by verdict/usage codes, see [cspm_check]). *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity[CODE]: message], omitting absent parts. *)

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line, followed by a one-line summary. Prints
    nothing at all for an empty report. *)

val to_json : t -> Obs.Json.t
(** [{"code", "severity", "message"}] plus ["file"], ["line"], ["col"]
    when known. *)

val json_of_list : t list -> Obs.Json.t
(** The machine-readable report behind [--lint --format json]. Stable
    schema ["diagnostics/1"]:

    {v
    { "schema": "diagnostics/1",
      "diagnostics": [ { "code": "CAPL004", "severity": "warning",
                         "file": "node_a", "line": 12, "col": 3,
                         "message": "..." }, ... ],
      "summary": { "total", "errors", "warnings", "infos" } }
    v}

    New fields may be added over time; existing fields keep their names
    and meanings. *)
