(** Static analysis over an elaborated CSPm environment — the model-level
    half of the pre-check analyses. All checks are O(AST): they run in
    microseconds where the refinement engine takes seconds, and they
    catch the two classic ways a model wastes an FDR run — divergent
    recursion that hangs compilation, and a parallel composition that
    deadlocks by construction.

    Checks and their stable codes:

    - [CSPM001] (warning): unguarded recursion — a process can reach a
      call back to itself without passing any event prefix; LTS
      compilation of such a process may diverge;
    - [CSPM002] (warning): impossible synchronisation — a parallel
      composition's synchronisation set contains a channel one operand
      can never communicate on, so every event of that channel is
      permanently blocked (a compile-time deadlock);
    - [CSPM003] (info): a process definition unreachable from any
      assertion root;
    - [CSPM004] (warning): a channel declared but never communicated on
      by any process;
    - [CSPM005] (warning): unbounded-data recursion heuristic — a
      recursive call grows one of its own parameters with [+]/[-]/[*]
      and no [%] bound in sight, a likely state-space explosion.

    The channel analysis is an over-approximation (renamings count both
    names, hidden events still count as offered, calls to undefined
    processes count as "may offer anything"), so [CSPM002] findings are
    high-precision: a flagged synchronisation really is impossible. *)

val analyze :
  ?obs:Obs.t ->
  ?file:string ->
  ?roots:string list ->
  ?pos_of:(string -> Diag.pos option) ->
  Csp.Defs.t ->
  Diag.t list
(** Analyze every process definition of [defs]. [roots] seeds the
    reachability check (empty or absent: [CSPM003] is skipped);
    [pos_of] resolves a definition or channel name to its source
    position; [file] labels every diagnostic. Sorted per {!Diag.sort}.
    [obs] records an [analysis.cspm] span and bumps the
    [analysis.diags] counter. Never raises. *)

val roots_of_loaded : Cspm.Elaborate.t -> string list
(** The process names mentioned by the script's [assert] declarations
    (sorted, deduplicated) — the reachability roots for {!analyze}. *)

val analyze_loaded :
  ?obs:Obs.t -> ?file:string -> Cspm.Elaborate.t -> Diag.t list
(** {!analyze} of a loaded script: roots from its assertions, positions
    from its recorded declaration positions. *)
