(** Static lint over parsed CAPL programs — the implementation-level half
    of the pre-check analyses, run before model extraction so modelling
    mistakes surface as positioned diagnostics instead of confusing
    counterexample traces.

    Checks and their stable codes:

    - [CAPL001] (error): a message-typed variable or [on message] handler
      names a message with no specification in the CAN database (only
      when a non-empty {!Capl.Msgdb.t} is supplied);
    - [CAPL002] (warning): an [on message] handler for a message no node
      in the linted set ever outputs — the handler can never fire;
    - [CAPL003] (warning): an [output] of a message no node handles (and
      there is no [on message *] catch-all) — the frame vanishes;
    - [CAPL004] (warning): [setTimer] arms a timer with no matching
      [on timer] handler in the same node;
    - [CAPL005] (warning): an [on timer] handler whose timer nothing in
      the node ever arms — the handler can never fire;
    - [CAPL006] (warning): a global without an initialiser is read on
      some CFG path before every path assigns it (definite-assignment
      dataflow, see {!Valueflow});
    - [CAPL007] (warning): statements after [return]/[break]/[continue]
      in the same block are unreachable;
    - [CAPL008] (warning): a narrowing initialiser or assignment (e.g.
      [int]→[byte]) whose value range may actually truncate (interval
      propagation, see {!Valueflow});
    - [CAPL009] (info): a variable (global or local) that is never used;
    - [CAPL101] (warning): a secret-named value may reach the bus
      unencrypted (taint dataflow, see {!Taint});
    - [CAPL102] (warning): a received payload reaches a bus write or
      protected sink without a verification guard on every path
      (see {!Taint}).

    Message-flow checks ([CAPL002]/[CAPL003]) are cross-node: lint the
    whole node set of a system together with {!lint_nodes} so a message
    output by one node and handled by another is not flagged.

    [CAPL006], [CAPL008], [CAPL101] and [CAPL102] run on the
    interprocedural dataflow framework under [dataflow/]: {!Cfg} builds
    a control-flow graph per handler and function, {!Dataflow.solve}
    computes a bounded worklist fixpoint over a caller-supplied
    join-semilattice, and {!Callgraph} resolves [E_call] targets so
    per-function summaries can be substituted at call sites. The
    remaining codes stay on the original syntactic walk. *)

val lint_nodes :
  ?db:Capl.Msgdb.t ->
  ?obs:Obs.t ->
  (string * Capl.Ast.program) list ->
  Diag.t list
(** Lint a set of named node programs as one closed system. Diagnostics
    carry the node name as their [file] and the nearest enclosing
    declaration/handler/function position. Sorted per {!Diag.sort}.
    [obs] records [analysis.capl_lint], [analysis.dataflow] and
    [analysis.taint] spans and bumps the [analysis.diags] counter.
    Never raises on any well-typed AST. *)

val lint :
  ?db:Capl.Msgdb.t ->
  ?obs:Obs.t ->
  ?name:string ->
  Capl.Ast.program ->
  Diag.t list
(** Single-node convenience for {!lint_nodes}; [name] defaults to
    ["<capl>"]. *)
