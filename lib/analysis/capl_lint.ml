module A = Capl.Ast

let d_pos (p : A.pos) : Diag.pos = { Diag.line = p.A.line; col = p.A.col }

(* ------------------------------------------------------------------ *)
(* Message selectors, normalised for cross-node matching               *)
(* ------------------------------------------------------------------ *)

(* Selectors resolve through the database when one is available, so
   [on message 0x101] in one node matches [output] of the same message
   declared by name in another. *)
type msg_key =
  | K_name of string
  | K_id of int
  | K_any

let key_of_selector db sel =
  match sel with
  | A.Msg_any -> K_any
  | A.Msg_name n ->
    (match Option.bind db (fun db -> Capl.Msgdb.find_by_name db n) with
     | Some spec -> K_id spec.Capl.Msgdb.msg_id
     | None -> K_name n)
  | A.Msg_id id -> K_id id

let selector_label = function
  | A.Msg_any -> "*"
  | A.Msg_name n -> n
  | A.Msg_id id -> Printf.sprintf "0x%X" id

let key_matches a b =
  match a, b with
  | K_any, _ | _, K_any -> true
  | K_name n, K_name m -> String.equal n m
  | K_id i, K_id j -> i = j
  | K_name _, K_id _ | K_id _, K_name _ -> false

(* ------------------------------------------------------------------ *)
(* Per-node walk                                                       *)
(* ------------------------------------------------------------------ *)

type node_facts = {
  node : string;
  mutable outputs : (msg_key * A.msg_selector * Diag.pos) list;
  mutable msg_handlers : (msg_key * A.msg_selector * Diag.pos) list;
  mutable timers_set : (string * Diag.pos) list;
  mutable timer_handlers : (string * Diag.pos) list;
  mutable diags : Diag.t list;
}

let is_start = function
  | A.Ev_start | A.Ev_prestart -> true
  | _ -> false

let walk_node db (node, (prog : A.program)) =
  let facts =
    {
      node;
      outputs = [];
      msg_handlers = [];
      timers_set = [];
      timer_handlers = [];
      diags = [];
    }
  in
  let diag ?pos severity code message =
    facts.diags <-
      Diag.make ~file:node ?pos severity ~code message :: facts.diags
  in
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (v : A.var_decl) -> Hashtbl.replace globals v.A.var_name v)
    prog.A.variables;
  let global_used = Hashtbl.create 16 in
  let global_ty x =
    Option.map (fun (v : A.var_decl) -> v.A.var_ty) (Hashtbl.find_opt globals x)
  in

  (* One body (handler or function): [pos] is the nearest enclosing
     position every body-level diagnostic inherits (CAPL statements carry
     no positions of their own). The initialisation and narrowing checks
     that used to live in this walk are now {!Valueflow}'s dataflow
     analyses; this walk only gathers usage facts and flags unreachable
     statements. *)
  let walk_body ~pos ~params body =
    let locals = Hashtbl.create 8 in
    let local_used = Hashtbl.create 8 in
    List.iter (fun (ty, p) -> Hashtbl.replace locals p ty) params;
    List.iter (fun (_, p) -> Hashtbl.replace local_used p ()) params;
    let ty_of x =
      match Hashtbl.find_opt locals x with
      | Some ty -> Some ty
      | None -> global_ty x
    in
    let use x =
      if Hashtbl.mem locals x then Hashtbl.replace local_used x ()
      else if Hashtbl.mem globals x then Hashtbl.replace global_used x ()
    in
    let assign x = use x in
    let rec expr e =
      match e with
      | A.E_int _ | A.E_float _ | A.E_char _ | A.E_string _ | A.E_this -> ()
      | A.E_ident x -> use x
      | A.E_member (b, _) -> expr b
      | A.E_index (b, i) ->
        expr b;
        expr i
      | A.E_call (fn, args) ->
        (match fn, args with
         | "output", A.E_ident v :: _ ->
           (match ty_of v with
            | Some (A.T_message sel) ->
              facts.outputs <-
                (key_of_selector db sel, sel, pos) :: facts.outputs
            | _ -> ())
         | ("setTimer" | "setTimerCyclic"), A.E_ident t :: _ ->
           facts.timers_set <- (t, pos) :: facts.timers_set
         | _ -> ());
        List.iter expr args
      | A.E_method (b, _, args) ->
        expr b;
        List.iter expr args
      | A.E_unop (_, a) -> expr a
      | A.E_binop (_, a, b) ->
        expr a;
        expr b
      | A.E_assign (op, lhs, rhs) ->
        expr rhs;
        (match lhs with
         | A.E_ident x ->
           if op <> A.A_eq then use x;
           assign x
         | lhs -> expr lhs)
      | A.E_incr (_, _, lv) ->
        (match lv with
         | A.E_ident x ->
           use x;
           assign x
         | lv -> expr lv)
      | A.E_ternary (c, a, b) ->
        expr c;
        expr a;
        expr b
    in
    let rec stmts ss =
      let rec scan = function
        | [] -> ()
        | s :: rest ->
          stmt s;
          (match s, rest with
           | (A.S_return _ | A.S_break | A.S_continue), _ :: _ ->
             let what =
               match s with
               | A.S_return _ -> "return"
               | A.S_break -> "break"
               | _ -> "continue"
             in
             diag ~pos Diag.Warning "CAPL007"
               (Printf.sprintf
                  "unreachable statement(s) after '%s' in the same block"
                  what)
           | _ -> ());
          scan rest
      in
      scan ss
    and stmt s =
      match s with
      | A.S_expr e -> expr e
      | A.S_decl vars ->
        List.iter
          (fun (v : A.var_decl) ->
            Hashtbl.replace locals v.A.var_name v.A.var_ty;
            Option.iter expr v.A.var_init)
          vars
      | A.S_if (c, t, f) ->
        expr c;
        stmt t;
        Option.iter stmt f
      | A.S_while (c, b) ->
        expr c;
        stmt b
      | A.S_do_while (b, c) ->
        stmt b;
        expr c
      | A.S_for (init, cond, step, b) ->
        Option.iter stmt init;
        Option.iter expr cond;
        stmt b;
        Option.iter expr step
      | A.S_switch (e, cases) ->
        expr e;
        List.iter
          (fun (c : A.switch_case) ->
            Option.iter expr c.A.case_label;
            stmts c.A.case_body)
          cases
      | A.S_break | A.S_continue -> ()
      | A.S_return e -> Option.iter expr e
      | A.S_block ss -> stmts ss
    in
    stmts body;
    (* CAPL009 for this body's locals (parameters are exempt). *)
    Hashtbl.iter
      (fun x _ ->
        if not (Hashtbl.mem local_used x) then
          diag ~pos Diag.Info "CAPL009"
            (Printf.sprintf "local variable '%s' is never used" x))
      locals
  in

  (* Handlers: start handlers first (kept for stable fact order), then
     the event handlers, then functions. *)
  let handlers_started, handlers_rest =
    List.partition (fun (h : A.handler) -> is_start h.A.event) prog.A.handlers
  in
  List.iter
    (fun (h : A.handler) ->
      walk_body ~pos:(d_pos h.A.handler_pos) ~params:[] h.A.body)
    handlers_started;
  List.iter
    (fun (h : A.handler) ->
      let pos = d_pos h.A.handler_pos in
      (match h.A.event with
       | A.Ev_message sel ->
         facts.msg_handlers <-
           (key_of_selector db sel, sel, pos) :: facts.msg_handlers
       | A.Ev_timer t ->
         facts.timer_handlers <- (t, pos) :: facts.timer_handlers;
         Hashtbl.replace global_used t ()
       | _ -> ());
      walk_body ~pos ~params:[] h.A.body)
    handlers_rest;
  List.iter
    (fun (f : A.func) ->
      walk_body ~pos:(d_pos f.A.fn_pos) ~params:f.A.fn_params f.A.fn_body)
    prog.A.functions;

  (* CAPL001: message-typed declarations and handlers must exist in the
     database (when one is available). *)
  (match db with
   | None -> ()
   | Some db ->
     let known sel =
       match sel with
       | A.Msg_any -> true
       | A.Msg_name n -> Option.is_some (Capl.Msgdb.find_by_name db n)
       | A.Msg_id id -> Option.is_some (Capl.Msgdb.find_by_id db id)
     in
     List.iter
       (fun (v : A.var_decl) ->
         match v.A.var_ty with
         | A.T_message sel when not (known sel) ->
           diag ~pos:(d_pos v.A.var_pos) Diag.Error "CAPL001"
             (Printf.sprintf
                "message '%s' has no specification in the CAN database"
                (selector_label sel))
         | _ -> ())
       prog.A.variables;
     List.iter
       (fun (h : A.handler) ->
         match h.A.event with
         | A.Ev_message sel when not (known sel) ->
           diag ~pos:(d_pos h.A.handler_pos) Diag.Error "CAPL001"
             (Printf.sprintf
                "'on message %s': message has no specification in the CAN \
                 database"
                (selector_label sel))
         | _ -> ())
       prog.A.handlers);

  (* CAPL004/CAPL005: timers armed vs handled, within this node. *)
  let timer_has_handler t =
    List.exists (fun (name, _) -> String.equal name t) facts.timer_handlers
  in
  let timer_is_set t =
    List.exists (fun (name, _) -> String.equal name t) facts.timers_set
  in
  List.iter
    (fun (t, pos) ->
      if not (timer_has_handler t) then
        diag ~pos Diag.Warning "CAPL004"
          (Printf.sprintf
             "setTimer arms '%s' but there is no 'on timer %s' handler" t t))
    (List.sort_uniq compare facts.timers_set);
  List.iter
    (fun (t, pos) ->
      if not (timer_is_set t) then
        diag ~pos Diag.Warning "CAPL005"
          (Printf.sprintf
             "'on timer %s' can never fire: nothing in this node arms '%s'" t
             t))
    facts.timer_handlers;

  (* CAPL009 for globals. *)
  List.iter
    (fun (v : A.var_decl) ->
      if not (Hashtbl.mem global_used v.A.var_name) then
        diag ~pos:(d_pos v.A.var_pos) Diag.Info "CAPL009"
          (Printf.sprintf "global variable '%s' is never used" v.A.var_name))
    prog.A.variables;
  facts

(* ------------------------------------------------------------------ *)
(* Cross-node message flow                                             *)
(* ------------------------------------------------------------------ *)

let message_flow (all : node_facts list) =
  let outputs = List.concat_map (fun f -> f.outputs) all in
  let handlers = List.concat_map (fun f -> f.msg_handlers) all in
  let catch_all =
    List.exists (fun (k, _, _) -> k = K_any) handlers
  in
  let diags = ref [] in
  let diag facts ?pos severity code message =
    diags :=
      Diag.make ~file:facts.node ?pos severity ~code message :: !diags
  in
  List.iter
    (fun facts ->
      List.iter
        (fun (key, sel, pos) ->
          if
            key <> K_any
            && not (List.exists (fun (k, _, _) -> key_matches key k) outputs)
          then
            diag facts ~pos Diag.Warning "CAPL002"
              (Printf.sprintf
                 "'on message %s': no node outputs this message, so the \
                  handler can never fire"
                 (selector_label sel)))
        facts.msg_handlers;
      List.iter
        (fun (key, sel, pos) ->
          if
            (not catch_all)
            && not (List.exists (fun (k, _, _) -> key_matches key k) handlers)
          then
            diag facts ~pos Diag.Warning "CAPL003"
              (Printf.sprintf
                 "output of '%s': no node handles this message, so the \
                  frame is never received"
                 (selector_label sel)))
        facts.outputs)
    all;
  !diags

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let lint_nodes ?db ?(obs = Obs.silent) nodes =
  Obs.span obs "analysis.capl_lint" (fun () ->
      let db =
        match db with
        | Some db when Capl.Msgdb.messages db <> [] -> Some db
        | _ -> None
      in
      let facts = List.map (walk_node db) nodes in
      let diags =
        List.concat_map (fun f -> f.diags) facts
        @ message_flow facts
        @ Valueflow.check_nodes ~obs nodes
        @ Taint.check_nodes ~obs nodes
      in
      let diags = Diag.sort diags in
      Obs.add (Obs.counter obs "analysis.diags") (List.length diags);
      diags)

let lint ?db ?obs ?(name = "<capl>") prog =
  lint_nodes ?db ?obs [ name, prog ]
