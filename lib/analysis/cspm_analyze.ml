module P = Csp.Proc
module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Nullability: can a term terminate without performing any event?      *)
(* Needed to decide whether [Seq (a, b)] exposes [b]'s calls            *)
(* immediately. Over-approximate (choice arms use "or").                *)
(* ------------------------------------------------------------------ *)

let nullable_map defs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (n, _) -> Hashtbl.replace tbl n false) (Csp.Defs.procs defs);
  let rec nul p =
    match P.view p with
    | P.Skip | P.Omega -> true
    | P.Stop | P.Prefix _ | P.Run _ | P.Chaos _ -> false
    | P.Ext (a, b) | P.Int (a, b) | P.Timeout (a, b) | P.Interrupt (a, b)
    | P.If (_, a, b) ->
      nul a || nul b
    | P.Seq (a, b) | P.Par (a, _, b) | P.APar (a, _, _, b) | P.Inter (a, b)
      ->
      nul a && nul b
    | P.Hide (a, _) | P.Rename (a, _) | P.Guard (_, a)
    | P.Ext_over (_, _, a) | P.Int_over (_, _, a) | P.Inter_over (_, _, a)
      ->
      nul a
    | P.Call (n, _) ->
      (* unknown callee: assume it may terminate silently *)
      Option.value (Hashtbl.find_opt tbl n) ~default:true
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, (_, body)) ->
        let now = nul body in
        if now && not (Hashtbl.find tbl n) then begin
          Hashtbl.replace tbl n true;
          changed := true
        end)
      (Csp.Defs.procs defs)
  done;
  fun n -> Option.value (Hashtbl.find_opt tbl n) ~default:true

(* Calls reachable before any event prefix. *)
let immediate_calls nullable p =
  let rec ic p =
    match P.view p with
    | P.Stop | P.Skip | P.Omega | P.Run _ | P.Chaos _ | P.Prefix _ ->
      SS.empty
    | P.Ext (a, b) | P.Int (a, b) | P.Timeout (a, b) | P.Interrupt (a, b)
    | P.If (_, a, b) | P.Par (a, _, b) | P.APar (a, _, _, b) | P.Inter (a, b)
      ->
      SS.union (ic a) (ic b)
    | P.Seq (a, b) ->
      let base = ic a in
      let rec nul p =
        match P.view p with
        | P.Skip | P.Omega -> true
        | P.Stop | P.Prefix _ | P.Run _ | P.Chaos _ -> false
        | P.Ext (x, y) | P.Int (x, y) | P.Timeout (x, y)
        | P.Interrupt (x, y) | P.If (_, x, y) ->
          nul x || nul y
        | P.Seq (x, y) | P.Par (x, _, y) | P.APar (x, _, _, y)
        | P.Inter (x, y) ->
          nul x && nul y
        | P.Hide (x, _) | P.Rename (x, _) | P.Guard (_, x)
        | P.Ext_over (_, _, x) | P.Int_over (_, _, x)
        | P.Inter_over (_, _, x) ->
          nul x
        | P.Call (n, _) -> nullable n
      in
      if nul a then SS.union base (ic b) else base
    | P.Hide (a, _) | P.Rename (a, _) | P.Guard (_, a)
    | P.Ext_over (_, _, a) | P.Int_over (_, _, a) | P.Inter_over (_, _, a)
      ->
      ic a
    | P.Call (n, _) -> SS.singleton n
  in
  ic p

(* Every named call anywhere in a term (for assertion reachability). *)
let rec all_calls p =
  match P.view p with
  | P.Stop | P.Skip | P.Omega | P.Run _ | P.Chaos _ -> SS.empty
  | P.Prefix (_, _, k) -> all_calls k
  | P.Ext (a, b) | P.Int (a, b) | P.Seq (a, b) | P.Par (a, _, b)
  | P.APar (a, _, _, b) | P.Inter (a, b) | P.Interrupt (a, b)
  | P.Timeout (a, b) | P.If (_, a, b) ->
    SS.union (all_calls a) (all_calls b)
  | P.Hide (a, _) | P.Rename (a, _) | P.Guard (_, a)
  | P.Ext_over (_, _, a) | P.Int_over (_, _, a) | P.Inter_over (_, _, a) ->
    all_calls a
  | P.Call (n, _) -> SS.singleton n

(* ------------------------------------------------------------------ *)
(* Channel offers: which channels may a term ever communicate on?       *)
(* [top = true] means "anything" (a call to an undefined process).      *)
(* Over-approximate: hidden events still count, renamings count both    *)
(* the source and the target channel.                                   *)
(* ------------------------------------------------------------------ *)

type offers = {
  chans : SS.t;
  top : bool;
}

let off_empty = { chans = SS.empty; top = false }
let off_union a b = { chans = SS.union a.chans b.chans; top = a.top || b.top }

let offers_of_term lookup p =
  let rec off p =
    match P.view p with
    | P.Stop | P.Skip | P.Omega -> off_empty
    | P.Prefix (c, _, k) ->
      let rest = off k in
      { rest with chans = SS.add c rest.chans }
    | P.Run s | P.Chaos s ->
      { chans = SS.of_list (Csp.Eventset.channels_mentioned s); top = false }
    | P.Ext (a, b) | P.Int (a, b) | P.Seq (a, b) | P.Par (a, _, b)
    | P.APar (a, _, _, b) | P.Inter (a, b) | P.Interrupt (a, b)
    | P.Timeout (a, b) | P.If (_, a, b) ->
      off_union (off a) (off b)
    | P.Hide (a, _) | P.Guard (_, a) | P.Ext_over (_, _, a)
    | P.Int_over (_, _, a) | P.Inter_over (_, _, a) ->
      off a
    | P.Rename (a, pairs) ->
      let base = off a in
      let renamed =
        List.filter_map
          (fun (from_c, to_c) ->
            if base.top || SS.mem from_c base.chans then Some to_c else None)
          pairs
      in
      { base with chans = SS.union base.chans (SS.of_list renamed) }
    | P.Call (n, _) -> lookup n
  in
  off p

let offers_map defs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (n, _) -> Hashtbl.replace tbl n off_empty)
    (Csp.Defs.procs defs);
  let lookup n =
    Option.value (Hashtbl.find_opt tbl n) ~default:{ off_empty with top = true }
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, (_, body)) ->
        let prev = Hashtbl.find tbl n in
        let now = off_union prev (offers_of_term lookup body) in
        if now.top <> prev.top || not (SS.equal now.chans prev.chans) then begin
          Hashtbl.replace tbl n now;
          changed := true
        end)
      (Csp.Defs.procs defs)
  done;
  lookup

(* ------------------------------------------------------------------ *)
(* Channels mentioned anywhere (prefix or event set) in a term          *)
(* ------------------------------------------------------------------ *)

let rec mentioned p =
  let of_set s = SS.of_list (Csp.Eventset.channels_mentioned s) in
  match P.view p with
  | P.Stop | P.Skip | P.Omega -> SS.empty
  | P.Prefix (c, _, k) -> SS.add c (mentioned k)
  | P.Run s | P.Chaos s -> of_set s
  | P.Ext (a, b) | P.Int (a, b) | P.Seq (a, b) | P.Inter (a, b)
  | P.Interrupt (a, b) | P.Timeout (a, b) | P.If (_, a, b) ->
    SS.union (mentioned a) (mentioned b)
  | P.Par (a, s, b) ->
    SS.union (of_set s) (SS.union (mentioned a) (mentioned b))
  | P.APar (a, sa, sb, b) ->
    SS.union
      (SS.union (of_set sa) (of_set sb))
      (SS.union (mentioned a) (mentioned b))
  | P.Hide (a, s) -> SS.union (of_set s) (mentioned a)
  | P.Rename (a, pairs) ->
    List.fold_left
      (fun acc (f, t) -> SS.add f (SS.add t acc))
      (mentioned a) pairs
  | P.Guard (_, a) | P.Ext_over (_, _, a) | P.Int_over (_, _, a)
  | P.Inter_over (_, _, a) ->
    mentioned a
  | P.Call (_, _) -> SS.empty

(* ------------------------------------------------------------------ *)
(* Unbounded-data heuristic helpers                                     *)
(* ------------------------------------------------------------------ *)

let rec expr_contains pred (e : Csp.Expr.t) =
  pred e
  ||
  match e with
  | Csp.Expr.Lit _ | Csp.Expr.Var _ | Csp.Expr.Ty_dom _ -> false
  | Csp.Expr.Neg a | Csp.Expr.Not a -> expr_contains pred a
  | Csp.Expr.Bin (_, a, b) | Csp.Expr.Mem (a, b)
  | Csp.Expr.Range (a, b) ->
    expr_contains pred a || expr_contains pred b
  | Csp.Expr.If (a, b, c) ->
    expr_contains pred a || expr_contains pred b || expr_contains pred c
  | Csp.Expr.Tuple es | Csp.Expr.Ctor (_, es) | Csp.Expr.Set es
  | Csp.Expr.App (_, es) ->
    List.exists (expr_contains pred) es

let grows_unboundedly ~params arg =
  let has_param =
    List.exists (fun v -> List.mem v params) (Csp.Expr.free_vars arg)
  in
  let arith = function
    | Csp.Expr.Bin ((Csp.Expr.Add | Csp.Expr.Sub | Csp.Expr.Mul), _, _) ->
      true
    | _ -> false
  in
  let bounded = function
    (* a mod, or any function application (whose body we do not inspect),
       counts as a bound — stay quiet *)
    | Csp.Expr.Bin (Csp.Expr.Mod, _, _) | Csp.Expr.App _ -> true
    | _ -> false
  in
  has_param && expr_contains arith arg && not (expr_contains bounded arg)

let rec self_growing_calls ~name ~params p =
  match P.view p with
  | P.Stop | P.Skip | P.Omega | P.Run _ | P.Chaos _ -> []
  | P.Prefix (_, _, k) -> self_growing_calls ~name ~params k
  | P.Ext (a, b) | P.Int (a, b) | P.Seq (a, b) | P.Par (a, _, b)
  | P.APar (a, _, _, b) | P.Inter (a, b) | P.Interrupt (a, b)
  | P.Timeout (a, b) | P.If (_, a, b) ->
    self_growing_calls ~name ~params a @ self_growing_calls ~name ~params b
  | P.Hide (a, _) | P.Rename (a, _) | P.Guard (_, a)
  | P.Ext_over (_, _, a) | P.Int_over (_, _, a) | P.Inter_over (_, _, a) ->
    self_growing_calls ~name ~params a
  | P.Call (n, args) when String.equal n name ->
    List.filter (grows_unboundedly ~params) args
  | P.Call (_, _) -> []

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let analyze ?(obs = Obs.silent) ?file ?(roots = []) ?pos_of defs =
  Obs.span obs "analysis.cspm" (fun () ->
      let pos_of n = Option.bind pos_of (fun f -> f n) in
      let diags = ref [] in
      let diag ?pos severity code message =
        diags := Diag.make ?file ?pos severity ~code message :: !diags
      in
      let procs = Csp.Defs.procs defs in
      let nullable = nullable_map defs in

      (* CSPM001: unguarded recursion. *)
      let ic_of =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (n, (_, body)) ->
            Hashtbl.replace tbl n (immediate_calls nullable body))
          procs;
        fun n -> Option.value (Hashtbl.find_opt tbl n) ~default:SS.empty
      in
      List.iter
        (fun (n, _) ->
          (* closure of the unguarded-call relation starting from [n] *)
          let rec grow seen frontier =
            if SS.is_empty frontier then seen
            else
              let seen = SS.union seen frontier in
              let next =
                SS.fold
                  (fun m acc -> SS.union acc (ic_of m))
                  frontier SS.empty
              in
              grow seen (SS.diff next seen)
          in
          let reachable = grow SS.empty (ic_of n) in
          if SS.mem n reachable then
            diag ?pos:(pos_of n) Diag.Warning "CSPM001"
              (Printf.sprintf
                 "unguarded recursion: '%s' can call itself again without \
                  performing any event, so compiling it may diverge"
                 n))
        procs;

      (* CSPM002: impossible synchronisation. *)
      let offers = offers_map defs in
      let check_side ~def ~side ~sync_chan o =
        if (not o.top) && not (SS.mem sync_chan o.chans) then
          diag ?pos:(pos_of def) Diag.Warning "CSPM002"
            (Printf.sprintf
               "in '%s', a parallel composition synchronises on channel \
                '%s' but its %s operand never communicates on it — every \
                '%s' event is permanently blocked"
               def sync_chan side sync_chan)
      in
      let rec scan_par def p =
        (match P.view p with
         | P.Par (a, s, b) ->
           List.iter
             (fun c ->
               check_side ~def ~side:"left" ~sync_chan:c
                 (offers_of_term offers a);
               check_side ~def ~side:"right" ~sync_chan:c
                 (offers_of_term offers b))
             (Csp.Eventset.channels_mentioned s)
         | P.APar (a, sa, sb, b) ->
           let ca = SS.of_list (Csp.Eventset.channels_mentioned sa) in
           let cb = SS.of_list (Csp.Eventset.channels_mentioned sb) in
           SS.iter
             (fun c ->
               check_side ~def ~side:"left" ~sync_chan:c
                 (offers_of_term offers a);
               check_side ~def ~side:"right" ~sync_chan:c
                 (offers_of_term offers b))
             (SS.inter ca cb)
         | _ -> ());
        match P.view p with
        | P.Stop | P.Skip | P.Omega | P.Run _ | P.Chaos _ | P.Call _ -> ()
        | P.Prefix (_, _, k) -> scan_par def k
        | P.Ext (a, b) | P.Int (a, b) | P.Seq (a, b) | P.Par (a, _, b)
        | P.APar (a, _, _, b) | P.Inter (a, b) | P.Interrupt (a, b)
        | P.Timeout (a, b) | P.If (_, a, b) ->
          scan_par def a;
          scan_par def b
        | P.Hide (a, _) | P.Rename (a, _) | P.Guard (_, a)
        | P.Ext_over (_, _, a) | P.Int_over (_, _, a)
        | P.Inter_over (_, _, a) ->
          scan_par def a
      in
      List.iter (fun (n, (_, body)) -> scan_par n body) procs;

      (* CSPM003: definitions unreachable from the assertion roots. *)
      let proc_names = SS.of_list (List.map fst procs) in
      let roots = List.filter (fun n -> SS.mem n proc_names) roots in
      if roots <> [] then begin
        let body_of n =
          match Csp.Defs.proc defs n with
          | Some (_, body) -> all_calls body
          | None -> SS.empty
        in
        let rec grow seen frontier =
          if SS.is_empty frontier then seen
          else
            let seen = SS.union seen frontier in
            let next =
              SS.fold (fun m acc -> SS.union acc (body_of m)) frontier
                SS.empty
            in
            grow seen (SS.diff next seen)
        in
        let reachable = grow SS.empty (SS.of_list roots) in
        List.iter
          (fun (n, _) ->
            if not (SS.mem n reachable) then
              diag ?pos:(pos_of n) Diag.Info "CSPM003"
                (Printf.sprintf
                   "process '%s' is not reachable from any assertion" n))
          procs
      end;

      (* CSPM004: channels declared but never communicated. *)
      let used =
        List.fold_left
          (fun acc (_, (_, body)) -> SS.union acc (mentioned body))
          SS.empty procs
      in
      List.iter
        (fun (c, _) ->
          if not (SS.mem c used) then
            diag ?pos:(pos_of c) Diag.Warning "CSPM004"
              (Printf.sprintf
                 "channel '%s' is declared but never communicated on" c))
        (Csp.Defs.channels defs);

      (* CSPM005: unbounded-data recursion heuristic. *)
      List.iter
        (fun (n, (params, body)) ->
          match self_growing_calls ~name:n ~params body with
          | [] -> ()
          | arg :: _ ->
            diag ?pos:(pos_of n) Diag.Warning "CSPM005"
              (Printf.sprintf
                 "recursive call of '%s' passes '%s', which grows a \
                  parameter with no 'mod' bound in sight — the state space \
                  may be unbounded"
                 n
                 (Csp.Expr.to_string arg)))
        procs;

      let diags = Diag.sort !diags in
      Obs.add (Obs.counter obs "analysis.diags") (List.length diags);
      diags)

(* ------------------------------------------------------------------ *)
(* Script-level entry points                                           *)
(* ------------------------------------------------------------------ *)

let rec term_ids acc (t : Cspm.Ast.term) =
  match t with
  | Cspm.Ast.T_num _ | Cspm.Ast.T_bool _ | Cspm.Ast.T_stop
  | Cspm.Ast.T_skip ->
    acc
  | Cspm.Ast.T_id n -> SS.add n acc
  | Cspm.Ast.T_app (n, args) -> List.fold_left term_ids (SS.add n acc) args
  | Cspm.Ast.T_dot (a, b)
  | Cspm.Ast.T_range (a, b)
  | Cspm.Ast.T_bin (_, a, b)
  | Cspm.Ast.T_extchoice (a, b)
  | Cspm.Ast.T_intchoice (a, b)
  | Cspm.Ast.T_seq (a, b)
  | Cspm.Ast.T_interleave (a, b)
  | Cspm.Ast.T_interrupt (a, b)
  | Cspm.Ast.T_slide (a, b)
  | Cspm.Ast.T_hide (a, b)
  | Cspm.Ast.T_guard (a, b) ->
    term_ids (term_ids acc a) b
  | Cspm.Ast.T_tuple ts | Cspm.Ast.T_set ts | Cspm.Ast.T_chanset ts ->
    List.fold_left term_ids acc ts
  | Cspm.Ast.T_neg a | Cspm.Ast.T_not a -> term_ids acc a
  | Cspm.Ast.T_if (a, b, c) -> term_ids (term_ids (term_ids acc a) b) c
  | Cspm.Ast.T_prefix (comm, k) ->
    let acc =
      List.fold_left
        (fun acc field ->
          match field with
          | Cspm.Ast.F_out t | Cspm.Ast.F_dot t -> term_ids acc t
          | Cspm.Ast.F_in (_, Some t) -> term_ids acc t
          | Cspm.Ast.F_in (_, None) -> acc)
        acc comm.Cspm.Ast.fields
    in
    term_ids acc k
  | Cspm.Ast.T_par (a, s, b) -> term_ids (term_ids (term_ids acc a) s) b
  | Cspm.Ast.T_apar (a, sa, sb, b) ->
    term_ids (term_ids (term_ids (term_ids acc a) sa) sb) b
  | Cspm.Ast.T_rename (a, _) -> term_ids acc a
  | Cspm.Ast.T_repl (_, _, s, body) -> term_ids (term_ids acc s) body

let roots_of_loaded (loaded : Cspm.Elaborate.t) =
  let of_assertion acc (a, _) =
    match (a : Cspm.Ast.assertion) with
    | Cspm.Ast.A_refines (l, _, r) -> term_ids (term_ids acc l) r
    | Cspm.Ast.A_deadlock_free t
    | Cspm.Ast.A_divergence_free t
    | Cspm.Ast.A_deterministic t ->
      term_ids acc t
  in
  let ids =
    List.fold_left of_assertion SS.empty loaded.Cspm.Elaborate.assertions
  in
  SS.elements
    (SS.filter
       (fun n -> Option.is_some (Csp.Defs.proc loaded.Cspm.Elaborate.defs n))
       ids)

let analyze_loaded ?obs ?file (loaded : Cspm.Elaborate.t) =
  let pos_of n =
    Option.map
      (fun (p : Cspm.Ast.pos) ->
        { Diag.line = p.Cspm.Ast.line; col = p.Cspm.Ast.col })
      (List.assoc_opt n loaded.Cspm.Elaborate.positions)
  in
  analyze ?obs ?file
    ~roots:(roots_of_loaded loaded)
    ~pos_of loaded.Cspm.Elaborate.defs
