(** Generic forward worklist fixpoint over {!Cfg}.

    Unreachable blocks are [None] in the solution, so lattices need no
    bottom element — only [join], [widen] and [equal]. Termination is
    enforced unconditionally: after a block's input has changed more
    than a fixed number of times, [widen] replaces [join] (finite
    lattices simply pass [join] for both), and a global step budget
    proportional to the CFG size bounds the loop even against a
    non-monotone transfer — a cut-off fixpoint is under-approximate,
    never divergent, and [solve] never raises. *)

type 'a lattice = {
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
  widen : 'a -> 'a -> 'a;  (** must eventually stabilise a growing chain *)
}

val solve :
  lattice:'a lattice ->
  transfer:(Cfg.instr -> 'a -> 'a) ->
  entry:'a ->
  Cfg.t ->
  'a option array
(** [solve ~lattice ~transfer ~entry cfg] returns the least fixpoint's
    block {e input} states, indexed by block id; [None] marks a block
    unreachable from [entry]. The state flowing out of the body is the
    entry of [cfg.exit_id]. *)

val fold_reachable :
  transfer:(Cfg.instr -> 'a -> 'a) ->
  Cfg.t ->
  'a option array ->
  f:('acc -> Cfg.instr -> 'a -> 'acc) ->
  'acc ->
  'acc
(** Replay every reachable block from its solved input state, calling
    [f acc instr state_before] on each instruction in execution order.
    This is how clients emit diagnostics exactly once per program point
    (emitting during the fixpoint would duplicate them per visit). *)

(** Functorised face of the same engine, for clients whose transfer
    needs no runtime environment. *)
module type TRANSFER = sig
  type state

  val lattice : state lattice
  val transfer : Cfg.instr -> state -> state
end

module Forward (T : TRANSFER) : sig
  val solve : entry:T.state -> Cfg.t -> T.state option array

  val fold_reachable :
    Cfg.t ->
    T.state option array ->
    f:('acc -> Cfg.instr -> T.state -> 'acc) ->
    'acc ->
    'acc
end
