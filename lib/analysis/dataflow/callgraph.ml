(* Context-insensitive call resolution for CAPL programs. [E_call]
   targets fall into three bins: functions defined in the program
   (interprocedural clients consult or compute a summary), the CAPL
   builtins the extractor models (a fixed summary table below), and
   everything else — unknown builtins, which conservatively contribute
   bottom (no return dataflow, no global effects) exactly as the
   extraction semantics treats them. *)

module A = Capl.Ast

type target =
  | Defined of A.func
  | Builtin of string
  | Unknown of string

(* The builtins lib/capl/sem.ml gives semantics to. *)
let builtins =
  [
    "output";
    "setTimer";
    "cancelTimer";
    "write";
    "elCount";
    "abs";
    "random";
    "getValue";
    "putValue";
    "timeNow";
  ]

let is_builtin name = List.mem name builtins

(* Bus-write sink: the one builtin that puts caller data on the wire. *)
let is_bus_write name = String.equal name "output"

(* Builtins whose return value is derived from their arguments — the
   taint pass propagates through these; every other builtin returns
   environment data and contributes bottom. *)
let propagates name = List.mem name [ "abs"; "elCount" ]

let resolve (prog : A.program) name : target =
  match
    List.find_opt
      (fun (f : A.func) -> String.equal f.A.fn_name name)
      prog.A.functions
  with
  | Some f -> Defined f
  | None -> if is_builtin name then Builtin name else Unknown name

(* Call-site collection, used to order summary computation and exposed
   for tests: every [E_call] callee name in a body, left to right. *)
let calls_in_body (body : A.stmt list) : string list =
  let acc = ref [] in
  let rec expr (e : A.expr) =
    match e with
    | A.E_int _ | A.E_float _ | A.E_char _ | A.E_string _ | A.E_ident _
    | A.E_this ->
      ()
    | A.E_member (b, _) -> expr b
    | A.E_index (b, i) ->
      expr b;
      expr i
    | A.E_call (name, args) ->
      acc := name :: !acc;
      List.iter expr args
    | A.E_method (b, _, args) ->
      expr b;
      List.iter expr args
    | A.E_unop (_, a) -> expr a
    | A.E_binop (_, a, b) ->
      expr a;
      expr b
    | A.E_assign (_, l, r) ->
      expr l;
      expr r
    | A.E_incr (_, _, a) -> expr a
    | A.E_ternary (c, a, b) ->
      expr c;
      expr a;
      expr b
  in
  let rec stmt (s : A.stmt) =
    match s with
    | A.S_expr e -> expr e
    | A.S_decl vs ->
      List.iter
        (fun (v : A.var_decl) -> Option.iter expr v.A.var_init)
        vs
    | A.S_if (c, t, f) ->
      expr c;
      stmt t;
      Option.iter stmt f
    | A.S_while (c, b) ->
      expr c;
      stmt b
    | A.S_do_while (b, c) ->
      stmt b;
      expr c
    | A.S_for (i, c, st, b) ->
      Option.iter stmt i;
      Option.iter expr c;
      Option.iter expr st;
      stmt b
    | A.S_switch (e, cases) ->
      expr e;
      List.iter
        (fun (c : A.switch_case) ->
          Option.iter expr c.A.case_label;
          List.iter stmt c.A.case_body)
        cases
    | A.S_break | A.S_continue -> ()
    | A.S_return e -> Option.iter expr e
    | A.S_block ss -> List.iter stmt ss
  in
  List.iter stmt body;
  List.rev !acc

let of_program (prog : A.program) : (string * string list) list =
  List.map
    (fun (f : A.func) ->
      ( f.A.fn_name,
        List.sort_uniq String.compare (calls_in_body f.A.fn_body) ))
    prog.A.functions
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
