(** Control-flow graphs over CAPL bodies — the shared substrate of the
    dataflow analyses.

    [build] desugars one handler or function body (if/while/do-while/for/
    switch, break/continue/return, fallthrough between cases) into basic
    blocks of straight-line instructions linked by untyped successor
    edges. Conditions sit in the block that evaluates them; both
    outcomes are successors, so clients are path-insensitive in the
    branch {e direction} while still seeing every side effect.
    Unreachable statements get predecessor-less blocks a fixpoint seeded
    at [entry] never visits. [build] never raises on any well-typed
    AST. *)

type instr =
  | I_expr of Capl.Ast.expr  (** evaluated for effect *)
  | I_decl of Capl.Ast.var_decl  (** local declaration, initialiser included *)
  | I_branch of Capl.Ast.expr  (** condition; both outcomes are successors *)
  | I_switch of Capl.Ast.expr  (** scrutinee; every case is a successor *)
  | I_case of Capl.Ast.expr  (** case label, evaluated entering the case *)
  | I_return of Capl.Ast.expr option

type block = {
  instrs : instr list;  (** in execution order *)
  succs : int list;  (** successor block ids *)
}

type t = {
  blocks : block array;  (** indexed by block id *)
  entry : int;
  exit_id : int;  (** every [return] and the final fallthrough land here *)
}

val build : Capl.Ast.stmt list -> t

val size : t -> int
(** Number of blocks. *)
