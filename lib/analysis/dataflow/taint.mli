(** Interprocedural security taint over CAPL programs.

    Sources are configurable name markers: reads of secret-named
    variables taint with [Secret], and the triggering message's payload
    ([this], [this.field]) taints with [Payload] inside message
    handlers. Taint propagates through assignments, arithmetic,
    member/array access and calls (message objects at object
    granularity); sanitizer-marker calls ([encrypt]/[mac]/...) return
    clean, verify-marker calls ([valid]/[verify]/...) set a
    must-verified bit that both guards sinks and launders subsequent
    stores. Sinks are the [output] builtin (bus write) and calls
    matching the flash/apply markers (protected operations).

    Findings — both {!Diag.Warning}s, so [--deny-warnings] blocks them:
    - [CAPL101]: a secret reaches the bus unsanitised.
    - [CAPL102]: received payload reaches a sink on at least one CFG
      path with no verify call before it.

    Functions are summarised once against symbolic entry taint and
    substituted at call sites (context-insensitive interprocedural;
    recursion iterates summaries to a capped fixpoint). Handlers
    exchange taint through globals via a capped outer fixpoint, so a
    payload stored by one handler and sent by another is caught. All
    fixpoints are bounded; the analysis never raises and always
    terminates. *)

type config = {
  secret_markers : string list;
  sanitizer_markers : string list;
  verify_markers : string list;
  sink_markers : string list;
}
(** Case-insensitive substring markers matched against identifier and
    callee names. *)

val default_config : config
(** secret: [secret key password pin token cred]; sanitizers:
    [encrypt mac sign hash cipher]; verifiers: [valid verify check
    auth]; protected sinks: [flash apply install program]. *)

val check_nodes :
  ?config:config ->
  ?obs:Obs.t ->
  (string * Capl.Ast.program) list ->
  Diag.t list
(** Run the taint pass per node (span ["analysis.taint"]); diagnostics
    carry the node name as their file and the enclosing handler's
    position. Sorted and deduplicated. *)

val check :
  ?config:config -> ?obs:Obs.t -> ?name:string -> Capl.Ast.program ->
  Diag.t list
(** Single-program convenience wrapper over {!check_nodes}. *)
