(* Generic forward worklist fixpoint over {!Cfg}. The lattice and the
   transfer function are values, not functor arguments, so clients can
   close transfer functions over per-run environments (function
   summaries, diagnostic sinks) without module gymnastics; a thin
   [Forward] functor wraps the same engine for clients with a static
   transfer.

   Unreachable blocks are represented by [None] rather than by a
   bottom element, so lattices only need [join]/[widen]/[equal] — the
   engine never asks for a least element. Termination is enforced twice
   over: after [widen_after] visits to a block the client's [widen] is
   used in place of [join] (clients with finite lattices just pass
   [join] again), and a global step budget proportional to the CFG size
   cuts any fixpoint that still refuses to settle — the result is then
   merely under-approximate, never divergent. *)

type 'a lattice = {
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
  widen : 'a -> 'a -> 'a;
}

let widen_after = 8

let solve (type a) ~(lattice : a lattice)
    ~(transfer : Cfg.instr -> a -> a) ~(entry : a) (cfg : Cfg.t) :
    a option array =
  let nb = Array.length cfg.Cfg.blocks in
  let input : a option array = Array.make nb None in
  input.(cfg.Cfg.entry) <- Some entry;
  let changes = Array.make nb 0 in
  let max_steps = (64 * nb) + 1024 in
  let steps = ref 0 in
  let out b st =
    List.fold_left
      (fun st i -> transfer i st)
      st cfg.Cfg.blocks.(b).Cfg.instrs
  in
  let queue = Queue.create () in
  let queued = Array.make nb false in
  let push b =
    if not queued.(b) then begin
      queued.(b) <- true;
      Queue.add b queue
    end
  in
  push cfg.Cfg.entry;
  while (not (Queue.is_empty queue)) && !steps <= max_steps do
    incr steps;
    let b = Queue.take queue in
    queued.(b) <- false;
    match input.(b) with
    | None -> ()
    | Some st ->
      let o = out b st in
      List.iter
        (fun s ->
          let updated =
            match input.(s) with
            | None -> Some o
            | Some old ->
              let j = lattice.join old o in
              let j =
                if changes.(s) > widen_after then lattice.widen old j else j
              in
              if lattice.equal old j then None else Some j
          in
          match updated with
          | None -> ()
          | Some st' ->
            input.(s) <- Some st';
            changes.(s) <- changes.(s) + 1;
            push s)
        cfg.Cfg.blocks.(b).Cfg.succs
  done;
  input

let fold_reachable ~(transfer : Cfg.instr -> 'a -> 'a) (cfg : Cfg.t)
    (input : 'a option array) ~(f : 'acc -> Cfg.instr -> 'a -> 'acc)
    (acc : 'acc) : 'acc =
  let acc = ref acc in
  Array.iteri
    (fun b st ->
      match st with
      | None -> ()
      | Some st ->
        let (_ : 'a) =
          List.fold_left
            (fun st i ->
              acc := f !acc i st;
              transfer i st)
            st cfg.Cfg.blocks.(b).Cfg.instrs
        in
        ())
    input;
  !acc

module type TRANSFER = sig
  type state

  val lattice : state lattice
  val transfer : Cfg.instr -> state -> state
end

module Forward (T : TRANSFER) = struct
  let solve ~entry cfg =
    solve ~lattice:T.lattice ~transfer:T.transfer ~entry cfg

  let fold_reachable cfg input ~f acc =
    fold_reachable ~transfer:T.transfer cfg input ~f acc
end
