(* Interprocedural security taint over CAPL: who can see key material,
   and does received data get checked before it is acted on.

   Sources: reads of variables whose names match the secret markers
   ([Secret]), and the triggering message's payload ([this],
   [this.field]) in message handlers ([Payload]). Taint flows through
   assignments, arithmetic, member/array access, methods, and calls;
   message objects are tracked at object granularity (a write to
   [m.field] weak-updates [m]). Two sink families: the [output] builtin
   (bus write) and calls whose names match the flash/apply markers
   (protected operations). Findings:

   - CAPL101 — a [Secret] reaches the bus without passing a
     sanitizer-marker call ([encrypt]/[mac]/...).
   - CAPL102 — a [Payload] reaches a sink on some path where no
     verify-marker call ([valid]/[verify]/...) has executed. The
     [verified] bit is a must-property (joins with AND), so one
     unchecked path through a handler is enough to warn; conversely,
     assignments made under a standing verification are "laundered" —
     the stored value stops being a suspect payload.

   Functions are analysed once against symbolic entry taint ([Param i]
   for parameters, [Global g] for globals) and summarised (return
   taint, weak global writes, interior sinks, whether the function
   always verifies); call sites substitute actual taint for the
   symbolic kinds, so the analysis is context-insensitive but still
   interprocedural, and recursion just iterates summaries to a capped
   fixpoint. Handlers communicate through globals: their exit taints
   are joined and re-run to a capped outer fixpoint, which is what
   catches a payload stored by one handler and transmitted by
   another. *)

module A = Capl.Ast

type kind =
  | Secret of string  (** origin: the secret-named variable *)
  | Payload of string  (** origin: ["this"] or ["this.field"] *)
  | Param of int  (** symbolic, in function summaries only *)
  | Global of string  (** symbolic, in function summaries only *)

let kind_rank = function
  | Secret _ -> 0
  | Payload _ -> 1
  | Param _ -> 2
  | Global _ -> 3

let kind_compare a b =
  match a, b with
  | Secret x, Secret y | Payload x, Payload y | Global x, Global y ->
    String.compare x y
  | Param i, Param j -> Int.compare i j
  | _ -> Int.compare (kind_rank a) (kind_rank b)

module KSet = Set.Make (struct
  type t = kind

  let compare = kind_compare
end)

module SMap = Map.Make (String)

type config = {
  secret_markers : string list;
  sanitizer_markers : string list;
  verify_markers : string list;
  sink_markers : string list;
}

let default_config =
  {
    secret_markers = [ "secret"; "key"; "password"; "pin"; "token"; "cred" ];
    sanitizer_markers = [ "encrypt"; "mac"; "sign"; "hash"; "cipher" ];
    verify_markers = [ "valid"; "verify"; "check"; "auth" ];
    sink_markers = [ "flash"; "apply"; "install"; "program" ];
  }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else at (i + 1)
  in
  nn > 0 && at 0

let matches markers name =
  let n = String.lowercase_ascii name in
  List.exists (fun m -> contains n m) markers

(* ------------------------------------------------------------------ *)
(* The lattice                                                         *)
(* ------------------------------------------------------------------ *)

type state = {
  vars : KSet.t SMap.t;  (** absent = untainted *)
  verified : bool;  (** must-property: true on every path to here *)
}

let lookup x st =
  match SMap.find_opt x st.vars with
  | Some s -> s
  | None -> KSet.empty

let state_equal a b =
  Bool.equal a.verified b.verified && SMap.equal KSet.equal a.vars b.vars

let state_join a b =
  {
    vars = SMap.union (fun _ x y -> Some (KSet.union x y)) a.vars b.vars;
    verified = a.verified && b.verified;
  }

(* Finite lattice (kinds are drawn from the program's identifiers), so
   widening is just the join. *)
let lattice : state Dataflow.lattice =
  { equal = state_equal; join = state_join; widen = state_join }

let launder st t =
  if st.verified then
    KSet.filter
      (function
        | Payload _ -> false
        | _ -> true)
      t
  else t

(* ------------------------------------------------------------------ *)
(* Function summaries                                                  *)
(* ------------------------------------------------------------------ *)

type sink_hit = {
  sink_desc : string;
  sink_bus : bool;  (** [output] vs a protected (flash-style) call *)
  sink_taint : KSet.t;
  sink_verified : bool;
}

let sink_compare a b =
  let c = String.compare a.sink_desc b.sink_desc in
  if c <> 0 then c
  else
    let c = Bool.compare a.sink_bus b.sink_bus in
    if c <> 0 then c
    else
      let c = Bool.compare a.sink_verified b.sink_verified in
      if c <> 0 then c else KSet.compare a.sink_taint b.sink_taint

type summary = {
  ret : KSet.t;  (** symbolic over [Param]/[Global] *)
  writes : KSet.t SMap.t;  (** weak global writes, symbolic *)
  sinks : sink_hit list;  (** interior sinks, symbolic, sorted *)
  verifies : bool;  (** every path through the body verifies *)
}

let empty_summary =
  { ret = KSet.empty; writes = SMap.empty; sinks = []; verifies = false }

let summary_equal a b =
  KSet.equal a.ret b.ret
  && SMap.equal KSet.equal a.writes b.writes
  && Bool.equal a.verifies b.verifies
  && List.length a.sinks = List.length b.sinks
  && List.for_all2 (fun x y -> sink_compare x y = 0) a.sinks b.sinks

(* ------------------------------------------------------------------ *)
(* Transfer                                                            *)
(* ------------------------------------------------------------------ *)

type ctx = {
  config : config;
  prog : A.program;
  summaries : (string, summary) Hashtbl.t;
  this_payload : bool;  (** in a message handler: [this] is attacker data *)
  record_sink : (sink_hit -> unit) option;  (** set during replay only *)
  record_ret : (KSet.t -> unit) option;  (** set during function replay *)
}

let rec eval ctx st (e : A.expr) : KSet.t * state =
  match e with
  | A.E_int _ | A.E_float _ | A.E_char _ | A.E_string _ -> KSet.empty, st
  | A.E_ident x ->
    let t = lookup x st in
    let t =
      if matches ctx.config.secret_markers x then KSet.add (Secret x) t else t
    in
    t, st
  | A.E_this ->
    ( (if ctx.this_payload then KSet.singleton (Payload "this")
       else KSet.empty),
      st )
  | A.E_member (A.E_this, f) ->
    ( (if ctx.this_payload then KSet.singleton (Payload ("this." ^ f))
       else KSet.empty),
      st )
  | A.E_member (b, _) -> eval ctx st b
  | A.E_index (b, i) ->
    let tb, st = eval ctx st b in
    let ti, st = eval ctx st i in
    KSet.union tb ti, st
  | A.E_method (b, _, args) ->
    let tb, st = eval ctx st b in
    let ts, st = eval_list ctx st args in
    List.fold_left KSet.union tb ts, st
  | A.E_unop (_, a) -> eval ctx st a
  | A.E_binop (_, a, b) ->
    let ta, st = eval ctx st a in
    let tb, st = eval ctx st b in
    KSet.union ta tb, st
  | A.E_ternary (c, a, b) ->
    let _, st = eval ctx st c in
    let ta, st = eval ctx st a in
    let tb, st = eval ctx st b in
    KSet.union ta tb, st
  | A.E_incr (_, _, lv) ->
    (match lv with
     | A.E_ident x -> lookup x st, st
     | lv -> eval ctx st lv)
  | A.E_assign (op, lhs, rhs) ->
    let tr, st = eval ctx st rhs in
    let tr = launder st tr in
    (match lhs with
     | A.E_ident x ->
       let t = if op = A.A_eq then tr else KSet.union tr (lookup x st) in
       t, { st with vars = SMap.add x t st.vars }
     | A.E_member (A.E_this, _) -> tr, st
     | A.E_member (base, _) | A.E_index (base, _) ->
       (* writing a field/element taints the whole object (weak) *)
       let st =
         match base with
         | A.E_ident x ->
           { st with vars = SMap.add x (KSet.union tr (lookup x st)) st.vars }
         | _ ->
           let _, st = eval ctx st base in
           st
       in
       let st =
         match lhs with
         | A.E_index (_, i) ->
           let _, st = eval ctx st i in
           st
         | _ -> st
       in
       tr, st
     | lhs ->
       let _, st = eval ctx st lhs in
       tr, st)
  | A.E_call (fn, args) -> eval_call ctx st fn args

and eval_list ctx st args =
  let st = ref st in
  let ts =
    List.map
      (fun a ->
        let t, st' = eval ctx !st a in
        st := st';
        t)
      args
  in
  ts, !st

and eval_call ctx st fn args =
  let ts, st = eval_list ctx st args in
  let joined_args = List.fold_left KSet.union KSet.empty ts in
  let record hit =
    match ctx.record_sink with
    | Some f -> f hit
    | None -> ()
  in
  if Callgraph.is_bus_write fn then
    record
      {
        sink_desc =
          (match args with
           | A.E_ident v :: _ -> Printf.sprintf "output of '%s'" v
           | _ -> "output");
        sink_bus = true;
        sink_taint = joined_args;
        sink_verified = st.verified;
      }
  else if matches ctx.config.sink_markers fn then
    record
      {
        sink_desc = Printf.sprintf "call to '%s'" fn;
        sink_bus = false;
        sink_taint = joined_args;
        sink_verified = st.verified;
      };
  let ret, st =
    if matches ctx.config.sanitizer_markers fn then KSet.empty, st
    else
      match Callgraph.resolve ctx.prog fn with
      | Callgraph.Builtin b ->
        (if Callgraph.propagates b then joined_args else KSet.empty), st
      | Callgraph.Unknown _ -> KSet.empty, st
      | Callgraph.Defined f ->
        let summ =
          match Hashtbl.find_opt ctx.summaries f.A.fn_name with
          | Some s -> s
          | None -> empty_summary
        in
        let subst t =
          KSet.fold
            (fun k acc ->
              match k with
              | Param i ->
                (match List.nth_opt ts i with
                 | Some t -> KSet.union t acc
                 | None -> acc)
              | Global g ->
                let t = lookup g st in
                let t =
                  if matches ctx.config.secret_markers g then
                    KSet.add (Secret g) t
                  else t
                in
                KSet.union t acc
              | k -> KSet.add k acc)
            t KSet.empty
        in
        (* the callee's interior sinks fire here, in caller context *)
        List.iter
          (fun h ->
            record
              {
                h with
                sink_desc =
                  Printf.sprintf "%s (via call to '%s')" h.sink_desc
                    f.A.fn_name;
                sink_taint = launder st (subst h.sink_taint);
                sink_verified = h.sink_verified || st.verified;
              })
          summ.sinks;
        let st =
          SMap.fold
            (fun g t st ->
              let t = launder st (subst t) in
              { st with vars = SMap.add g (KSet.union t (lookup g st)) st.vars })
            summ.writes st
        in
        launder st (subst summ.ret), st
  in
  let callee_verifies =
    match Callgraph.resolve ctx.prog fn with
    | Callgraph.Defined f ->
      (match Hashtbl.find_opt ctx.summaries f.A.fn_name with
       | Some s -> s.verifies
       | None -> false)
    | _ -> false
  in
  let st =
    if matches ctx.config.verify_markers fn || callee_verifies then
      { st with verified = true }
    else st
  in
  ret, st

let transfer ctx (i : Cfg.instr) st =
  match i with
  | Cfg.I_expr e | Cfg.I_branch e | Cfg.I_switch e | Cfg.I_case e ->
    let _, st = eval ctx st e in
    st
  | Cfg.I_decl v ->
    (match v.A.var_init with
     | None -> { st with vars = SMap.add v.A.var_name KSet.empty st.vars }
     | Some e ->
       let t, st = eval ctx st e in
       let t = launder st t in
       { st with vars = SMap.add v.A.var_name t st.vars })
  | Cfg.I_return e ->
    (match e with
     | None -> st
     | Some e ->
       let t, st = eval ctx st e in
       (match ctx.record_ret with
        | Some f -> f (launder st t)
        | None -> ());
       st)

(* ------------------------------------------------------------------ *)
(* Summary computation                                                 *)
(* ------------------------------------------------------------------ *)

let global_names prog =
  List.map (fun (v : A.var_decl) -> v.A.var_name) prog.A.variables

let analyze_function config prog summaries (f : A.func) cfg : summary =
  let ctx =
    {
      config;
      prog;
      summaries;
      this_payload = false;
      record_sink = None;
      record_ret = None;
    }
  in
  let entry =
    let vars =
      List.fold_left
        (fun m g -> SMap.add g (KSet.singleton (Global g)) m)
        SMap.empty (global_names prog)
    in
    let vars =
      List.fold_left
        (fun (i, m) (_, p) -> i + 1, SMap.add p (KSet.singleton (Param i)) m)
        (0, vars) f.A.fn_params
      |> snd
    in
    { vars; verified = false }
  in
  let input = Dataflow.solve ~lattice ~transfer:(transfer ctx) ~entry cfg in
  let sinks = ref [] in
  let ret = ref KSet.empty in
  let replay_ctx =
    {
      ctx with
      record_sink = Some (fun h -> sinks := h :: !sinks);
      record_ret = Some (fun t -> ret := KSet.union t !ret);
    }
  in
  Dataflow.fold_reachable
    ~transfer:(transfer replay_ctx)
    cfg input
    ~f:(fun () _ _ -> ())
    ();
  let writes, verifies =
    match input.(cfg.Cfg.exit_id) with
    | None -> SMap.empty, false
    | Some exit_st ->
      let globals = global_names prog in
      ( SMap.filter
          (fun g t ->
            List.mem g globals
            && not (KSet.equal t (KSet.singleton (Global g))))
          exit_st.vars,
        exit_st.verified )
  in
  {
    ret = !ret;
    writes;
    sinks = List.sort_uniq sink_compare !sinks;
    verifies;
  }

let compute_summaries config (prog : A.program) =
  let summaries = Hashtbl.create 8 in
  List.iter
    (fun (f : A.func) -> Hashtbl.replace summaries f.A.fn_name empty_summary)
    prog.A.functions;
  let cfgs =
    List.map (fun (f : A.func) -> f, Cfg.build f.A.fn_body) prog.A.functions
  in
  let max_rounds = 8 + (2 * List.length prog.A.functions) in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    List.iter
      (fun ((f : A.func), cfg) ->
        let s = analyze_function config prog summaries f cfg in
        let old = Hashtbl.find summaries f.A.fn_name in
        if not (summary_equal old s) then begin
          Hashtbl.replace summaries f.A.fn_name s;
          changed := true
        end)
      cfgs
  done;
  summaries

(* ------------------------------------------------------------------ *)
(* Whole-node analysis                                                 *)
(* ------------------------------------------------------------------ *)

let d_pos (p : A.pos) : Diag.pos = { Diag.line = p.A.line; col = p.A.col }

let emit_hit node pos hit acc =
  let origins keep =
    KSet.fold
      (fun k acc ->
        match keep k with
        | Some o -> o :: acc
        | None -> acc)
      hit.sink_taint []
    |> List.sort_uniq String.compare
  in
  let secrets =
    origins (function
      | Secret s -> Some s
      | _ -> None)
  in
  let payloads =
    origins (function
      | Payload p -> Some p
      | _ -> None)
  in
  let acc =
    if hit.sink_bus && secrets <> [] then
      Diag.make ~file:node ~pos Diag.Warning ~code:"CAPL101"
        (Printf.sprintf "%s may leak secret %s onto the bus unencrypted"
           hit.sink_desc
           (String.concat ", " (List.map (Printf.sprintf "'%s'") secrets)))
      :: acc
    else acc
  in
  if payloads <> [] && not hit.sink_verified then
    Diag.make ~file:node ~pos Diag.Warning ~code:"CAPL102"
      (Printf.sprintf
         "%s carries received payload (%s) not verified on every path"
         hit.sink_desc
         (String.concat ", " payloads))
    :: acc
  else acc

let check_node config (node, (prog : A.program)) : Diag.t list =
  let summaries = compute_summaries config prog in
  let base_ctx =
    {
      config;
      prog;
      summaries;
      this_payload = false;
      record_sink = None;
      record_ret = None;
    }
  in
  let handler_ctx (h : A.handler) =
    let this_payload =
      match h.A.event with
      | A.Ev_message _ -> true
      | _ -> false
    in
    { base_ctx with this_payload }
  in
  let handler_cfgs =
    List.map (fun (h : A.handler) -> h, Cfg.build h.A.body) prog.A.handlers
  in
  (* globals start with their initialisers' taint *)
  let initial_global_taint =
    List.fold_left
      (fun m (v : A.var_decl) ->
        match v.A.var_init with
        | None -> m
        | Some e ->
          let t, _ =
            eval base_ctx { vars = SMap.empty; verified = false } e
          in
          if KSet.is_empty t then m else SMap.add v.A.var_name t m)
      SMap.empty prog.A.variables
  in
  let global_taint = ref initial_global_taint in
  let entry_state () =
    {
      vars =
        List.fold_left
          (fun m g ->
            match SMap.find_opt g !global_taint with
            | Some t -> SMap.add g t m
            | None -> m)
          SMap.empty (global_names prog);
      verified = false;
    }
  in
  let solve_handler (h, cfg) =
    let ctx = handler_ctx h in
    ctx, Dataflow.solve ~lattice ~transfer:(transfer ctx) ~entry:(entry_state ()) cfg
  in
  (* outer fixpoint: handlers exchange taint through globals *)
  let gnames = global_names prog in
  let max_rounds = 8 + (2 * List.length prog.A.handlers) in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    List.iter
      (fun (h, cfg) ->
        let ctx, input = solve_handler (h, cfg) in
        (* join every reachable block's OUT state into the global map:
           a handler that stores a payload and then loops still
           publishes the store *)
        Array.iteri
          (fun b st ->
            match st with
            | None -> ()
            | Some st ->
              let out =
                List.fold_left
                  (fun st i -> transfer ctx i st)
                  st cfg.Cfg.blocks.(b).Cfg.instrs
              in
              List.iter
                (fun g ->
                  let t = lookup g out in
                  if not (KSet.is_empty t) then begin
                    let old =
                      match SMap.find_opt g !global_taint with
                      | Some t -> t
                      | None -> KSet.empty
                    in
                    let joined = KSet.union old t in
                    if not (KSet.equal old joined) then begin
                      global_taint := SMap.add g joined !global_taint;
                      changed := true
                    end
                  end)
                gnames)
          input)
      handler_cfgs
  done;
  (* final pass: replay each handler against the stable global taint and
     collect sink hits as diagnostics *)
  let diags = ref [] in
  List.iter
    (fun ((h : A.handler), cfg) ->
      let ctx, input = solve_handler (h, cfg) in
      let pos = d_pos h.A.handler_pos in
      let replay_ctx =
        {
          ctx with
          record_sink = Some (fun hit -> diags := emit_hit node pos hit !diags);
        }
      in
      Dataflow.fold_reachable
        ~transfer:(transfer replay_ctx)
        cfg input
        ~f:(fun () _ _ -> ())
        ())
    handler_cfgs;
  !diags

let check_nodes ?(config = default_config) ?(obs = Obs.silent) nodes =
  Obs.span obs "analysis.taint" (fun () ->
      Diag.sort (List.concat_map (check_node config) nodes))

let check ?config ?obs ?(name = "<capl>") prog =
  check_nodes ?config ?obs [ name, prog ]
