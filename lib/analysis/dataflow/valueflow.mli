(** Definite assignment and value-range propagation over CAPL — the
    dataflow implementations of two diagnostics that used to be
    syntactic guesses, with unchanged codes, messages and positions:

    - [CAPL006] (uninitialised global read) on a must-assigned
      analysis: a suspect global counts as set only when every CFG path
      to the read assigns it, and calls are credited through
      interprocedural must-assign summaries. Start handlers establish
      the baseline for every other handler, as before; the check stays
      off inside functions (their call order is unknowable).
    - [CAPL008] (narrowing assignment) gated by interval propagation:
      the old type-width heuristic still nominates candidates, and a
      warning survives only when the value range is unknown or actually
      out of range — [int w = 5; byte b; b = w] is no longer flagged,
      [int w = 70000; b = w] still is. Stores clamp to the declared
      type's storage range, mirroring the extraction semantics'
      masking.

    All fixpoints are bounded; the pass never raises and always
    terminates. *)

val check_nodes :
  ?obs:Obs.t -> (string * Capl.Ast.program) list -> Diag.t list
(** Run both analyses per node (span ["analysis.dataflow"]). Sorted and
    deduplicated. *)

val check : ?obs:Obs.t -> ?name:string -> Capl.Ast.program -> Diag.t list
(** Single-program convenience wrapper over {!check_nodes}. *)
