(* Definite assignment and value-range propagation over CAPL — the
   dataflow re-implementation of the two lints that used to be
   syntactic guesses:

   - CAPL006 (uninitialised global read) on a real must-assigned
     analysis: a global with no initialiser counts as set only when
     {e every} CFG path to the read assigns it — the old walker marked
     a global initialised the moment any branch assigned it, so
     [if (c) g = 1; use(g);] slipped through. Function calls are
     credited through interprocedural must-assign summaries (least
     fixpoint from the empty set), which the old pass never did.

   - CAPL008 (narrowing assignment) gated by interval propagation: the
     old type-width heuristic still decides what {e could} truncate,
     and the interval analysis then proves what {e cannot} — a warning
     is emitted only when the old check fires and the value range is
     unknown or genuinely out of range. [int w = 5; byte b; b = w] is
     no longer flagged; [int w = 70000; b = w] still is. Stores clamp
     to the declared type's storage range (byte wraps into [0,255],
     int into [-32768,32767], ...), mirroring the extraction
     semantics' masking, so a clamped range is sound whatever the
     wrapped value. Globals keep their initialiser's range only when
     no body ever reassigns them; anything reassigned anywhere decays
     to its storage range, which is exactly the width the old check
     assumed.

   Diagnostic codes, messages and positions are unchanged from the
   syntactic versions (body-level findings inherit the enclosing
   handler/function position). *)

module A = Capl.Ast
module SSet = Set.Make (String)
module SMap = Map.Make (String)

let d_pos (p : A.pos) : Diag.pos = { Diag.line = p.A.line; col = p.A.col }

(* ------------------------------------------------------------------ *)
(* Width arithmetic (the old syntactic candidate check)                *)
(* ------------------------------------------------------------------ *)

let width_of_ty = function
  | A.T_char | A.T_byte -> Some 8
  | A.T_int | A.T_word -> Some 16
  | A.T_long | A.T_dword -> Some 32
  | A.T_int64 | A.T_qword -> Some 64
  | A.T_float | A.T_double | A.T_void | A.T_message _ | A.T_timer
  | A.T_ms_timer ->
    None

(* Smallest power-of-two width whose signed-or-unsigned range holds [n]:
   255 fits a byte, -200 does not. *)
let literal_width n =
  let fits w =
    let open Int64 in
    let n = of_int n in
    (compare n (neg (shift_left 1L (w - 1))) >= 0)
    && compare n (shift_left 1L w) < 0
  in
  if fits 8 then 8 else if fits 16 then 16 else if fits 32 then 32 else 64

(* Conservative width inference: [None] means "unknown, stay quiet". *)
let rec expr_width ty_of e =
  match e with
  | A.E_int n -> Some (literal_width n)
  | A.E_char _ -> Some 8
  | A.E_ident x -> Option.bind (ty_of x) width_of_ty
  | A.E_binop
      ( ( A.B_add | A.B_sub | A.B_mul | A.B_div | A.B_mod | A.B_band
        | A.B_bor | A.B_bxor ),
        a,
        b ) ->
    (match expr_width ty_of a, expr_width ty_of b with
     | Some x, Some y -> Some (max x y)
     | _ -> None)
  | A.E_binop ((A.B_shl | A.B_shr), a, _) -> expr_width ty_of a
  | A.E_binop
      ( ( A.B_land | A.B_lor | A.B_eq | A.B_neq | A.B_lt | A.B_le | A.B_gt
        | A.B_ge ),
        _,
        _ ) ->
    Some 8
  | A.E_unop (A.U_neg, a) | A.E_unop (A.U_bnot, a) -> expr_width ty_of a
  | A.E_unop (A.U_not, _) -> Some 8
  | A.E_ternary (_, a, b) ->
    (match expr_width ty_of a, expr_width ty_of b with
     | Some x, Some y -> Some (max x y)
     | _ -> None)
  | _ -> None

let describe_width e w =
  match e with
  | A.E_int n -> Printf.sprintf "literal %d (%d bits)" n w
  | A.E_ident x -> Printf.sprintf "'%s' (%d bits)" x w
  | _ -> Printf.sprintf "a %d-bit expression" w

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

(* What a declared scalar type can hold after the extraction semantics'
   masking; [None] = untracked storage. *)
let storage_range = function
  | A.T_byte -> Some (0, 255)
  | A.T_word -> Some (0, 65535)
  | A.T_dword -> Some (0, 4294967295)
  | A.T_char -> Some (-128, 127)
  | A.T_int -> Some (-32768, 32767)
  | A.T_long -> Some (-2147483648, 2147483647)
  | A.T_int64 | A.T_qword | A.T_float | A.T_double | A.T_void
  | A.T_message _ | A.T_timer | A.T_ms_timer ->
    None

(* Bounds are kept well inside the native int range so interval
   arithmetic can never overflow; anything wider degrades to unknown. *)
let big = 1 lsl 40

let norm (lo, hi) = if lo > hi || lo < -big || hi > big then None else Some (lo, hi)

let iv_fits w (lo, hi) =
  w >= 63
  ||
  let open Int64 in
  let lo = of_int lo and hi = of_int hi in
  (compare lo (neg (shift_left 1L (w - 1))) >= 0)
  && compare hi (shift_left 1L w) < 0

(* ------------------------------------------------------------------ *)
(* The lattice                                                         *)
(* ------------------------------------------------------------------ *)

type state = {
  assigned : SSet.t;  (** definitely-assigned names (must: joins meet) *)
  ranges : (int * int) SMap.t;  (** known value ranges; absent = unknown *)
}

let iv_equal (a1, a2) (b1, b2) = a1 = b1 && a2 = b2

let state_equal a b =
  SSet.equal a.assigned b.assigned && SMap.equal iv_equal a.ranges b.ranges

let state_join a b =
  {
    assigned = SSet.inter a.assigned b.assigned;
    ranges =
      SMap.merge
        (fun _ x y ->
          match x, y with
          | Some (l1, h1), Some (l2, h2) -> Some (min l1 l2, max h1 h2)
          | _ -> None)
        a.ranges b.ranges;
  }

(* Ranges that are still moving around a loop get dropped to unknown,
   which stabilises any chain; the must-set only ever shrinks. *)
let state_widen old j =
  {
    assigned = j.assigned;
    ranges =
      SMap.merge
        (fun _ o n ->
          match o, n with
          | Some oi, Some ni when iv_equal oi ni -> Some oi
          | _ -> None)
        old.ranges j.ranges;
  }

let lattice : state Dataflow.lattice =
  { equal = state_equal; join = state_join; widen = state_widen }

(* ------------------------------------------------------------------ *)
(* Transfer: interval evaluation with assignment effects               *)
(* ------------------------------------------------------------------ *)

type env = {
  ty_of : string -> A.ty option;
  is_global : string -> bool;
  prog : A.program;
  must_assigns : (string, SSet.t) Hashtbl.t;
}

let clamp_store env x iv_opt st =
  match Option.bind (env.ty_of x) storage_range with
  | None -> { st with ranges = SMap.remove x st.ranges }
  | Some (slo, shi) ->
    let iv =
      match iv_opt with
      | Some (lo, hi) when lo >= slo && hi <= shi -> lo, hi
      | _ -> slo, shi
    in
    { st with ranges = SMap.add x iv st.ranges }

let combine op ia ib =
  match op, ia, ib with
  | A.B_add, Some (l1, h1), Some (l2, h2) -> norm (l1 + l2, h1 + h2)
  | A.B_sub, Some (l1, h1), Some (l2, h2) -> norm (l1 - h2, h1 - l2)
  | A.B_mul, Some (l1, h1), Some (l2, h2)
    when max (abs l1) (abs h1) <= 0x4000_0000
         && max (abs l2) (abs h2) <= 0x4000_0000 ->
    let ps = [ l1 * l2; l1 * h2; h1 * l2; h1 * h2 ] in
    norm (List.fold_left min max_int ps, List.fold_left max min_int ps)
  | A.B_div, Some (l1, h1), Some (l2, h2) when l2 = h2 && l2 <> 0 ->
    norm (min (l1 / l2) (h1 / l2), max (l1 / l2) (h1 / l2))
  | A.B_mod, Some (l1, _), Some (l2, h2) when l2 = h2 && l2 > 0 ->
    if l1 >= 0 then Some (0, l2 - 1) else Some (-(l2 - 1), l2 - 1)
  | A.B_band, Some (l1, h1), Some (l2, h2) ->
    if l1 >= 0 && l2 >= 0 then Some (0, min h1 h2)
    else if l2 = h2 && l2 >= 0 then Some (0, l2)
    else if l1 = h1 && l1 >= 0 then Some (0, l1)
    else None
  | (A.B_bor | A.B_bxor), Some (l1, h1), Some (l2, h2)
    when l1 >= 0 && l2 >= 0 ->
    let rec ceil_pow2 v acc = if acc > v then acc else ceil_pow2 v (acc * 2) in
    Some (0, ceil_pow2 (max h1 h2) 1 - 1)
  | A.B_shl, Some (l1, h1), Some (l2, h2)
    when l2 = h2 && l2 >= 0 && l2 <= 20 && l1 >= 0 ->
    norm (l1 lsl l2, h1 lsl l2)
  | A.B_shr, Some (l1, h1), Some (l2, h2)
    when l2 = h2 && l2 >= 0 && l2 <= 62 && l1 >= 0 ->
    Some (l1 asr l2, h1 asr l2)
  | (A.B_land | A.B_lor | A.B_eq | A.B_neq | A.B_lt | A.B_le | A.B_gt
    | A.B_ge),
    _,
    _ ->
    Some (0, 1)
  | _ -> None

(* Evaluate for interval and effect. Both arms of a ternary are applied
   in sequence (flat, like the walker this replaces) — conservative for
   ranges, matching for the must-set. *)
let rec veval env st (e : A.expr) : (int * int) option * state =
  match e with
  | A.E_int n -> norm (n, n), st
  | A.E_char c -> Some (Char.code c, Char.code c), st
  | A.E_float _ | A.E_string _ | A.E_this -> None, st
  | A.E_ident x ->
    ( (match SMap.find_opt x st.ranges with
       | Some iv -> Some iv
       | None -> Option.bind (env.ty_of x) storage_range),
      st )
  | A.E_member (b, _) ->
    let _, st = veval env st b in
    None, st
  | A.E_index (b, i) ->
    let _, st = veval env st b in
    let _, st = veval env st i in
    None, st
  | A.E_method (b, _, args) ->
    let _, st = veval env st b in
    let st =
      List.fold_left (fun st a -> snd (veval env st a)) st args
    in
    None, st
  | A.E_call (fn, args) ->
    let st =
      List.fold_left (fun st a -> snd (veval env st a)) st args
    in
    let st =
      match Callgraph.resolve env.prog fn with
      | Callgraph.Defined f ->
        (match Hashtbl.find_opt env.must_assigns f.A.fn_name with
         | Some s -> { st with assigned = SSet.union st.assigned s }
         | None -> st)
      | Callgraph.Builtin _ | Callgraph.Unknown _ -> st
    in
    None, st
  | A.E_unop (A.U_neg, a) ->
    let ia, st = veval env st a in
    Option.bind ia (fun (lo, hi) -> norm (-hi, -lo)), st
  | A.E_unop (A.U_not, a) ->
    let _, st = veval env st a in
    Some (0, 1), st
  | A.E_unop (A.U_bnot, a) ->
    let _, st = veval env st a in
    None, st
  | A.E_binop (op, a, b) ->
    let ia, st = veval env st a in
    let ib, st = veval env st b in
    combine op ia ib, st
  | A.E_ternary (c, a, b) ->
    let _, st = veval env st c in
    let ia, st = veval env st a in
    let ib, st = veval env st b in
    ( (match ia, ib with
       | Some (l1, h1), Some (l2, h2) -> Some (min l1 l2, max h1 h2)
       | _ -> None),
      st )
  | A.E_incr (inc, _, lv) ->
    (match lv with
     | A.E_ident x ->
       let cur =
         match SMap.find_opt x st.ranges with
         | Some iv -> Some iv
         | None -> Option.bind (env.ty_of x) storage_range
       in
       let next =
         Option.bind cur (fun (lo, hi) ->
             norm (if inc then (lo + 1, hi + 1) else (lo - 1, hi - 1)))
       in
       let st = clamp_store env x next st in
       None, { st with assigned = SSet.add x st.assigned }
     | lv ->
       let _, st = veval env st lv in
       None, st)
  | A.E_assign (op, lhs, rhs) ->
    let ivr, st = veval env st rhs in
    (match lhs with
     | A.E_ident x ->
       let stored = if op = A.A_eq then ivr else None in
       let st = clamp_store env x stored st in
       let st = { st with assigned = SSet.add x st.assigned } in
       SMap.find_opt x st.ranges, st
     | A.E_member (b, _) ->
       let _, st = veval env st b in
       None, st
     | A.E_index (b, i) ->
       let _, st = veval env st b in
       let _, st = veval env st i in
       None, st
     | lhs ->
       let _, st = veval env st lhs in
       None, st)

let transfer env (i : Cfg.instr) st =
  match i with
  | Cfg.I_expr e | Cfg.I_branch e | Cfg.I_switch e | Cfg.I_case e ->
    snd (veval env st e)
  | Cfg.I_decl v ->
    (match v.A.var_init with
     | None -> { st with ranges = SMap.remove v.A.var_name st.ranges }
     | Some e ->
       let iv, st = veval env st e in
       clamp_store env v.A.var_name iv st)
  | Cfg.I_return e ->
    (match e with
     | None -> st
     | Some e -> snd (veval env st e))

(* ------------------------------------------------------------------ *)
(* Replay: diagnostics                                                 *)
(* ------------------------------------------------------------------ *)

(* Walk one instruction's reads and assignment sites in the old
   walker's order (rhs before lhs), flagging suspect global reads and
   gating narrowing candidates through the solved state. *)
let replay_instr ~is_local ~flag_read ~check_narrow ~check_decl st
    (i : Cfg.instr) =
  let rec reads e =
    match e with
    | A.E_int _ | A.E_float _ | A.E_char _ | A.E_string _ | A.E_this -> ()
    | A.E_ident x -> if not (is_local x) then flag_read st x
    | A.E_member (b, _) -> reads b
    | A.E_index (b, i) ->
      reads b;
      reads i
    | A.E_call (_, args) -> List.iter reads args
    | A.E_method (b, _, args) ->
      reads b;
      List.iter reads args
    | A.E_unop (_, a) -> reads a
    | A.E_binop (_, a, b) ->
      reads a;
      reads b
    | A.E_assign (op, lhs, rhs) ->
      reads rhs;
      (match lhs with
       | A.E_ident x ->
         if op <> A.A_eq && not (is_local x) then flag_read st x;
         if op = A.A_eq then check_narrow st x rhs
       | lhs -> reads lhs)
    | A.E_incr (_, _, lv) ->
      (match lv with
       | A.E_ident x -> if not (is_local x) then flag_read st x
       | lv -> reads lv)
    | A.E_ternary (c, a, b) ->
      reads c;
      reads a;
      reads b
  in
  match i with
  | Cfg.I_expr e | Cfg.I_branch e | Cfg.I_switch e | Cfg.I_case e -> reads e
  | Cfg.I_decl v ->
    Option.iter reads v.A.var_init;
    check_decl st v
  | Cfg.I_return e -> Option.iter reads e

(* ------------------------------------------------------------------ *)
(* Per-node driver                                                     *)
(* ------------------------------------------------------------------ *)

let local_decls body =
  let acc = ref [] in
  let decl (v : A.var_decl) = acc := (v.A.var_name, v.A.var_ty) :: !acc in
  let rec stmt s =
    match s with
    | A.S_expr _ | A.S_break | A.S_continue | A.S_return _ -> ()
    | A.S_decl vs -> List.iter decl vs
    | A.S_if (_, t, f) ->
      stmt t;
      Option.iter stmt f
    | A.S_while (_, b) -> stmt b
    | A.S_do_while (b, _) -> stmt b
    | A.S_for (i, _, _, b) ->
      Option.iter stmt i;
      stmt b
    | A.S_switch (_, cases) ->
      List.iter
        (fun (c : A.switch_case) -> List.iter stmt c.A.case_body)
        cases
    | A.S_block ss -> List.iter stmt ss
  in
  List.iter stmt body;
  !acc

(* Names assigned (directly) anywhere in the program's bodies — the
   globals NOT in this set keep their initialiser's range at every
   body entry; everything else decays to its storage range. *)
let assigned_anywhere (prog : A.program) =
  let acc = ref SSet.empty in
  let target e =
    match e with
    | A.E_ident x -> acc := SSet.add x !acc
    | _ -> ()
  in
  let rec expr e =
    match e with
    | A.E_int _ | A.E_float _ | A.E_char _ | A.E_string _ | A.E_ident _
    | A.E_this ->
      ()
    | A.E_member (b, _) -> expr b
    | A.E_index (b, i) ->
      expr b;
      expr i
    | A.E_call (_, args) -> List.iter expr args
    | A.E_method (b, _, args) ->
      expr b;
      List.iter expr args
    | A.E_unop (_, a) -> expr a
    | A.E_binop (_, a, b) ->
      expr a;
      expr b
    | A.E_assign (_, lhs, rhs) ->
      target lhs;
      expr rhs;
      (match lhs with
       | A.E_ident _ -> ()
       | lhs -> expr lhs)
    | A.E_incr (_, _, lv) ->
      target lv;
      (match lv with
       | A.E_ident _ -> ()
       | lv -> expr lv)
    | A.E_ternary (c, a, b) ->
      expr c;
      expr a;
      expr b
  in
  let rec stmt s =
    match s with
    | A.S_expr e -> expr e
    | A.S_decl vs ->
      List.iter (fun (v : A.var_decl) -> Option.iter expr v.A.var_init) vs
    | A.S_if (c, t, f) ->
      expr c;
      stmt t;
      Option.iter stmt f
    | A.S_while (c, b) ->
      expr c;
      stmt b
    | A.S_do_while (b, c) ->
      stmt b;
      expr c
    | A.S_for (i, c, st', b) ->
      Option.iter stmt i;
      Option.iter expr c;
      Option.iter expr st';
      stmt b
    | A.S_switch (e, cases) ->
      expr e;
      List.iter
        (fun (c : A.switch_case) ->
          Option.iter expr c.A.case_label;
          List.iter stmt c.A.case_body)
        cases
    | A.S_break | A.S_continue -> ()
    | A.S_return e -> Option.iter expr e
    | A.S_block ss -> List.iter stmt ss
  in
  List.iter (fun (h : A.handler) -> List.iter stmt h.A.body) prog.A.handlers;
  List.iter (fun (f : A.func) -> List.iter stmt f.A.fn_body) prog.A.functions;
  !acc

let init_tracked (v : A.var_decl) =
  v.A.var_dims = []
  && (match v.A.var_ty with
      | A.T_message _ | A.T_timer | A.T_ms_timer | A.T_void | A.T_float
      | A.T_double ->
        false
      | _ -> true)

let is_start = function
  | A.Ev_start | A.Ev_prestart -> true
  | _ -> false

let check_node (node, (prog : A.program)) : Diag.t list =
  let diags = ref [] in
  let diag ?pos severity code message =
    diags := Diag.make ~file:node ?pos severity ~code message :: !diags
  in
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (v : A.var_decl) -> Hashtbl.replace globals v.A.var_name v)
    prog.A.variables;
  let global_ty x =
    Option.map
      (fun (v : A.var_decl) -> v.A.var_ty)
      (Hashtbl.find_opt globals x)
  in
  let is_global x = Hashtbl.mem globals x in
  let suspect x =
    match Hashtbl.find_opt globals x with
    | Some v -> init_tracked v && Option.is_none v.A.var_init
    | None -> false
  in
  let must_assigns = Hashtbl.create 8 in
  let base_env = { ty_of = global_ty; is_global; prog; must_assigns } in
  (* Globals never reassigned keep their (clamped) initialiser range. *)
  let reassigned = assigned_anywhere prog in
  let const_ranges =
    List.fold_left
      (fun m (v : A.var_decl) ->
        match v.A.var_init with
        | Some e when not (SSet.mem v.A.var_name reassigned) ->
          let iv, _ =
            veval base_env { assigned = SSet.empty; ranges = SMap.empty } e
          in
          let st =
            clamp_store base_env v.A.var_name iv
              { assigned = SSet.empty; ranges = m }
          in
          st.ranges
        | _ -> m)
      SMap.empty prog.A.variables
  in
  (* Global initialisers: the old narrowing check, interval-gated. *)
  List.iter
    (fun (v : A.var_decl) ->
      match v.A.var_init, width_of_ty v.A.var_ty with
      | Some init, Some w ->
        (match expr_width global_ty init with
         | Some wi when wi > w ->
           let iv, _ =
             veval base_env
               { assigned = SSet.empty; ranges = SMap.empty }
               init
           in
           let proven_fit =
             match iv with
             | Some iv -> iv_fits w iv
             | None -> false
           in
           if not proven_fit then
             diag ~pos:(d_pos v.A.var_pos) Diag.Warning "CAPL008"
               (Printf.sprintf
                  "initialiser of '%s' may truncate: %s into %s (%d bits)"
                  v.A.var_name
                  (describe_width init wi)
                  (A.ty_name v.A.var_ty) w)
         | _ -> ())
      | _ -> ())
    prog.A.variables;
  (* One body: solve, then replay for diagnostics; returns the set of
     globals every path through the body assigns. *)
  let flagged_uninit = Hashtbl.create 4 in
  let process_body ~pos ~check_init ~entry_assigned ~params body =
    let locals = Hashtbl.create 8 in
    List.iter (fun (ty, p) -> Hashtbl.replace locals p ty) params;
    List.iter
      (fun (x, ty) -> Hashtbl.replace locals x ty)
      (local_decls body);
    let ty_of x =
      match Hashtbl.find_opt locals x with
      | Some ty -> Some ty
      | None -> global_ty x
    in
    let is_local x = Hashtbl.mem locals x in
    let env = { base_env with ty_of } in
    let cfg = Cfg.build body in
    let entry = { assigned = entry_assigned; ranges = const_ranges } in
    let input = Dataflow.solve ~lattice ~transfer:(transfer env) ~entry cfg in
    let flag_read st x =
      if
        check_init && suspect x
        && (not (SSet.mem x st.assigned))
        && not (Hashtbl.mem flagged_uninit x)
      then begin
        Hashtbl.replace flagged_uninit x ();
        diag ~pos Diag.Warning "CAPL006"
          (Printf.sprintf
             "global '%s' may be read before it is initialised (no \
              initialiser, and no 'on start' handler assigns it first)"
             x)
      end
    in
    let check_narrow st x rhs =
      match Option.bind (ty_of x) width_of_ty with
      | Some w ->
        (match expr_width ty_of rhs with
         | Some wi when wi > w ->
           let iv, _ = veval env st rhs in
           let proven_fit =
             match iv with
             | Some iv -> iv_fits w iv
             | None -> false
           in
           if not proven_fit then
             diag ~pos Diag.Warning "CAPL008"
               (Printf.sprintf "assignment to '%s' may truncate: %s into %s"
                  x
                  (describe_width rhs wi)
                  (match ty_of x with
                   | Some ty -> Printf.sprintf "%s (%d bits)" (A.ty_name ty) w
                   | None -> Printf.sprintf "%d bits" w))
         | _ -> ())
      | None -> ()
    in
    let check_decl st (v : A.var_decl) =
      match v.A.var_init, width_of_ty v.A.var_ty with
      | Some init, Some w ->
        (match expr_width ty_of init with
         | Some wi when wi > w ->
           let iv, _ = veval env st init in
           let proven_fit =
             match iv with
             | Some iv -> iv_fits w iv
             | None -> false
           in
           if not proven_fit then
             diag ~pos:(d_pos v.A.var_pos) Diag.Warning "CAPL008"
               (Printf.sprintf
                  "initialiser of '%s' may truncate: %s into %s (%d bits)"
                  v.A.var_name
                  (describe_width init wi)
                  (A.ty_name v.A.var_ty) w)
         | _ -> ())
      | _ -> ()
    in
    Dataflow.fold_reachable ~transfer:(transfer env) cfg input
      ~f:(fun () i st ->
        replay_instr ~is_local ~flag_read ~check_narrow ~check_decl st i)
      ();
    match input.(cfg.Cfg.exit_id) with
    | None -> entry_assigned
    | Some st ->
      SSet.filter (fun x -> is_global x && not (is_local x)) st.assigned
  in
  (* Interprocedural must-assign summaries: least fixpoint from the
     empty set (the old pass never credited calls, so starting empty is
     strictly no worse). *)
  let fn_cfgs =
    List.map (fun (f : A.func) -> f, Cfg.build f.A.fn_body) prog.A.functions
  in
  List.iter
    (fun (f : A.func) -> Hashtbl.replace must_assigns f.A.fn_name SSet.empty)
    prog.A.functions;
  let max_rounds = 8 + (2 * List.length prog.A.functions) in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    List.iter
      (fun ((f : A.func), cfg) ->
        let locals = Hashtbl.create 8 in
        List.iter (fun (ty, p) -> Hashtbl.replace locals p ty) f.A.fn_params;
        List.iter
          (fun (x, ty) -> Hashtbl.replace locals x ty)
          (local_decls f.A.fn_body);
        let ty_of x =
          match Hashtbl.find_opt locals x with
          | Some ty -> Some ty
          | None -> global_ty x
        in
        let env = { base_env with ty_of } in
        let entry = { assigned = SSet.empty; ranges = const_ranges } in
        let input =
          Dataflow.solve ~lattice ~transfer:(transfer env) ~entry cfg
        in
        let s =
          match input.(cfg.Cfg.exit_id) with
          | None -> SSet.empty
          | Some st ->
            SSet.filter
              (fun x -> is_global x && not (Hashtbl.mem locals x))
              st.assigned
        in
        let old = Hashtbl.find must_assigns f.A.fn_name in
        if not (SSet.equal old s) then begin
          Hashtbl.replace must_assigns f.A.fn_name s;
          changed := true
        end)
      fn_cfgs
  done;
  (* Start handlers first, in order: what they definitely assign is the
     baseline every later handler starts from. *)
  let handlers_started, handlers_rest =
    List.partition (fun (h : A.handler) -> is_start h.A.event) prog.A.handlers
  in
  let baseline = ref SSet.empty in
  List.iter
    (fun (h : A.handler) ->
      let exit_assigned =
        process_body
          ~pos:(d_pos h.A.handler_pos)
          ~check_init:true ~entry_assigned:!baseline ~params:[] h.A.body
      in
      baseline := SSet.union !baseline exit_assigned)
    handlers_started;
  List.iter
    (fun (h : A.handler) ->
      ignore
        (process_body
           ~pos:(d_pos h.A.handler_pos)
           ~check_init:true ~entry_assigned:!baseline ~params:[] h.A.body))
    handlers_rest;
  (* Functions: narrowing checks only (their call order is unknowable,
     so CAPL006 stays off, as before). *)
  List.iter
    (fun (f : A.func) ->
      ignore
        (process_body
           ~pos:(d_pos f.A.fn_pos)
           ~check_init:false ~entry_assigned:SSet.empty
           ~params:f.A.fn_params f.A.fn_body))
    prog.A.functions;
  !diags

let check_nodes ?(obs = Obs.silent) nodes =
  Obs.span obs "analysis.dataflow" (fun () ->
      Diag.sort (List.concat_map check_node nodes))

let check ?obs ?(name = "<capl>") prog = check_nodes ?obs [ name, prog ]
