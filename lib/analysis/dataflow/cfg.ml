(* Control-flow graphs over CAPL bodies — the substrate every dataflow
   client shares. One CFG per handler or function body: structured
   control flow (if/while/do-while/for/switch with break, continue,
   return and fallthrough) is desugared into basic blocks of straight-
   line instructions linked by untyped successor edges.

   Conditions appear as [I_branch]/[I_switch] instructions in the block
   that evaluates them; both outcomes are successors, so the analyses
   built on top are path-insensitive in the branch direction (they see
   the condition's side effects, not its truth value). Statements that
   can never be reached (code after an unconditional [break], say) are
   still given blocks — with no predecessors, so a fixpoint seeded at
   [entry] simply never visits them. *)

module A = Capl.Ast

type instr =
  | I_expr of A.expr  (** evaluated for effect *)
  | I_decl of A.var_decl  (** local declaration, initialiser included *)
  | I_branch of A.expr  (** condition; both outcomes are successors *)
  | I_switch of A.expr  (** scrutinee; every case is a successor *)
  | I_case of A.expr  (** case label, evaluated on entry to the case *)
  | I_return of A.expr option

type block = {
  instrs : instr list;
  succs : int list;
}

type t = {
  blocks : block array;
  entry : int;
  exit_id : int;
}

let build (body : A.stmt list) : t =
  let n = ref 0 in
  let instrs_tbl : (int, instr list) Hashtbl.t = Hashtbl.create 16 in
  let succs_tbl : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let new_block () =
    let id = !n in
    incr n;
    Hashtbl.replace instrs_tbl id [];
    Hashtbl.replace succs_tbl id [];
    id
  in
  let add id i =
    Hashtbl.replace instrs_tbl id (i :: Hashtbl.find instrs_tbl id)
  in
  let link a b =
    let ss = Hashtbl.find succs_tbl a in
    if not (List.mem b ss) then Hashtbl.replace succs_tbl a (b :: ss)
  in
  let entry = new_block () in
  let exit_id = new_block () in
  (* [cur = None]: the previous statement left no fallthrough (return/
     break/continue); any further statement in the block is unreachable
     and gets a fresh predecessor-less block. *)
  let rec stmts cur ~brk ~cont ss =
    List.fold_left (fun cur s -> stmt cur ~brk ~cont s) cur ss
  and stmt cur ~brk ~cont s =
    let cur =
      match cur with
      | Some c -> c
      | None -> new_block ()
    in
    match s with
    | A.S_expr e ->
      add cur (I_expr e);
      Some cur
    | A.S_decl vs ->
      List.iter (fun v -> add cur (I_decl v)) vs;
      Some cur
    | A.S_if (c, t, f) ->
      add cur (I_branch c);
      let join = new_block () in
      let tb = new_block () in
      link cur tb;
      (match stmt (Some tb) ~brk ~cont t with
       | Some e -> link e join
       | None -> ());
      (match f with
       | None -> link cur join
       | Some f ->
         let fb = new_block () in
         link cur fb;
         (match stmt (Some fb) ~brk ~cont f with
          | Some e -> link e join
          | None -> ()));
      Some join
    | A.S_while (c, b) ->
      let head = new_block () in
      link cur head;
      add head (I_branch c);
      let bb = new_block () and after = new_block () in
      link head bb;
      link head after;
      (match stmt (Some bb) ~brk:(Some after) ~cont:(Some head) b with
       | Some e -> link e head
       | None -> ());
      Some after
    | A.S_do_while (b, c) ->
      let bb = new_block () and cond = new_block () and after = new_block () in
      link cur bb;
      (match stmt (Some bb) ~brk:(Some after) ~cont:(Some cond) b with
       | Some e -> link e cond
       | None -> ());
      add cond (I_branch c);
      link cond bb;
      link cond after;
      Some after
    | A.S_for (init, c, step, b) ->
      let cur =
        match init with
        | None -> Some cur
        | Some i -> stmt (Some cur) ~brk ~cont i
      in
      let cur =
        match cur with
        | Some c -> c
        | None -> new_block ()
      in
      let head = new_block () in
      link cur head;
      (match c with
       | Some c -> add head (I_branch c)
       | None -> ());
      let bb = new_block () and stepb = new_block () and after = new_block () in
      link head bb;
      (* a condition-less [for (;;)] only exits via break *)
      if Option.is_some c then link head after;
      (match step with
       | Some e -> add stepb (I_expr e)
       | None -> ());
      link stepb head;
      (match stmt (Some bb) ~brk:(Some after) ~cont:(Some stepb) b with
       | Some e -> link e stepb
       | None -> ());
      Some after
    | A.S_switch (e, cases) ->
      add cur (I_switch e);
      let after = new_block () in
      let case_blocks = List.map (fun _ -> new_block ()) cases in
      let has_default =
        List.exists
          (fun (c : A.switch_case) -> Option.is_none c.A.case_label)
          cases
      in
      List.iter (fun b -> link cur b) case_blocks;
      if not has_default then link cur after;
      let rec walk = function
        | [] -> ()
        | ((c : A.switch_case), b) :: rest ->
          (match c.A.case_label with
           | Some l -> add b (I_case l)
           | None -> ());
          let e = stmts (Some b) ~brk:(Some after) ~cont c.A.case_body in
          (match e, rest with
           | Some e, (_, nb) :: _ -> link e nb (* fallthrough *)
           | Some e, [] -> link e after
           | None, _ -> ());
          walk rest
      in
      walk (List.combine cases case_blocks);
      Some after
    | A.S_break ->
      link cur (Option.value brk ~default:exit_id);
      None
    | A.S_continue ->
      link cur (Option.value cont ~default:exit_id);
      None
    | A.S_return e ->
      add cur (I_return e);
      link cur exit_id;
      None
    | A.S_block ss -> stmts (Some cur) ~brk ~cont ss
  in
  (match stmts (Some entry) ~brk:None ~cont:None body with
   | Some e -> link e exit_id
   | None -> ());
  let blocks =
    Array.init !n (fun i ->
        {
          instrs = List.rev (Hashtbl.find instrs_tbl i);
          succs = List.rev (Hashtbl.find succs_tbl i);
        })
  in
  { blocks; entry; exit_id }

let size t = Array.length t.blocks
