(** Context-insensitive call resolution for CAPL programs.

    [E_call] targets resolve to program-defined functions, to the fixed
    set of builtins the extraction semantics models, or to [Unknown] —
    which interprocedural clients treat as bottom (no return dataflow,
    no global effects), matching how extraction ignores them. *)

type target =
  | Defined of Capl.Ast.func
  | Builtin of string
  | Unknown of string

val resolve : Capl.Ast.program -> string -> target

val builtins : string list
(** The builtin names [lib/capl/sem.ml] gives semantics to. *)

val is_builtin : string -> bool

val is_bus_write : string -> bool
(** [true] exactly for [output] — the builtin that puts caller data on
    the CAN bus; the taint pass's primary sink. *)

val propagates : string -> bool
(** Builtins whose return value derives from their arguments (taint
    flows through); all others return environment data (bottom). *)

val calls_in_body : Capl.Ast.stmt list -> string list
(** Every callee name in a body, in source order, duplicates kept. *)

val of_program : Capl.Ast.program -> (string * string list) list
(** The call graph over defined functions: for each function (sorted by
    name), the sorted, deduplicated callee names — defined or not. *)
