type severity =
  | Error
  | Warning
  | Info

type pos = {
  line : int;
  col : int;
}

type t = {
  code : string;
  severity : severity;
  file : string option;
  pos : pos option;
  message : string;
}

let make ?file ?pos severity ~code message =
  { code; severity; file; pos; message }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* The order reads like a compiler's output, top to bottom through the
   source; severity only breaks ties between otherwise-identical
   findings (most severe first), so two diagnostics differing in
   nothing but severity both survive {!sort}'s dedup. *)
let severity_rank = function
  | Error -> 0
  | Warning -> 1
  | Info -> 2

let compare a b =
  let cmp_file =
    Option.compare String.compare a.file b.file
  in
  if cmp_file <> 0 then cmp_file
  else
    let cmp_pos =
      Option.compare
        (fun (p : pos) (q : pos) ->
          if p.line <> q.line then Int.compare p.line q.line
          else Int.compare p.col q.col)
        a.pos b.pos
    in
    if cmp_pos <> 0 then cmp_pos
    else
      let cmp_code = String.compare a.code b.code in
      if cmp_code <> 0 then cmp_code
      else
        let cmp_sev =
          Int.compare (severity_rank a.severity) (severity_rank b.severity)
        in
        if cmp_sev <> 0 then cmp_sev
        else String.compare a.message b.message

let sort diags =
  let sorted = List.sort compare diags in
  let rec dedup = function
    | a :: b :: rest when compare a b = 0 -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let count sev diags =
  List.length (List.filter (fun d -> d.severity = sev) diags)

let blocking ~deny_warnings diags =
  List.exists
    (fun d ->
      match d.severity with
      | Error -> true
      | Warning -> deny_warnings
      | Info -> false)
    diags

let exit_code = 4

let pp ppf d =
  (match d.file, d.pos with
   | Some f, Some p -> Format.fprintf ppf "%s:%d:%d: " f p.line p.col
   | Some f, None -> Format.fprintf ppf "%s: " f
   | None, Some p -> Format.fprintf ppf "%d:%d: " p.line p.col
   | None, None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_label d.severity) d.code d.message

let pp_list ppf diags =
  match diags with
  | [] -> ()
  | _ ->
    List.iter (fun d -> Format.fprintf ppf "%a@," pp d) diags;
    Format.fprintf ppf "%d diagnostic(s): %d error(s), %d warning(s), %d \
                        info"
      (List.length diags) (count Error diags) (count Warning diags)
      (count Info diags)

let to_json d =
  let base = [ "code", Obs.Json.Str d.code;
               "severity", Obs.Json.Str (severity_label d.severity) ] in
  let file =
    match d.file with Some f -> [ "file", Obs.Json.Str f ] | None -> []
  in
  let pos =
    match d.pos with
    | Some p ->
      [ "line", Obs.Json.Num (float_of_int p.line);
        "col", Obs.Json.Num (float_of_int p.col) ]
    | None -> []
  in
  Obs.Json.Obj (base @ file @ pos @ [ "message", Obs.Json.Str d.message ])

let json_of_list diags =
  Obs.Json.Obj
    [
      "schema", Obs.Json.Str "diagnostics/1";
      "diagnostics", Obs.Json.List (List.map to_json diags);
      ( "summary",
        Obs.Json.Obj
          [
            "total", Obs.Json.Num (float_of_int (List.length diags));
            "errors", Obs.Json.Num (float_of_int (count Error diags));
            "warnings", Obs.Json.Num (float_of_int (count Warning diags));
            "infos", Obs.Json.Num (float_of_int (count Info diags));
          ] );
    ]
