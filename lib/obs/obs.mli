(** Observability for the checker: nested wall-clock spans, a metrics
    registry (counters, gauges, fixed-bucket histograms), and pluggable
    sinks.

    A handle is cheap to thread everywhere ({!Csp.Check_config} carries
    one). The default handle is {!silent}: every operation on it is a
    single branch and allocates nothing, so instrumentation can live on
    the engine's hot paths without costing anything when nobody is
    watching. With a {!Console} sink, spans and the final metric snapshot
    are pretty-printed; with a {!Jsonl} sink, every span close and the
    snapshot become one JSON object per line — the machine-readable trace
    [cspm_check --trace-out] writes and [bench/report] consumes.

    Counters and histograms are atomic, so worker domains may bump them
    concurrently. Span open/close bookkeeping is mutex-guarded; spans
    opened concurrently from several domains are recorded safely but
    their reported nesting depth reflects global open order, not
    per-domain structure. *)

(** Minimal JSON values: enough to emit the JSONL trace and to parse it
    back in benches and tests. No dependency beyond the stdlib. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering (no trailing newline); strings are escaped per
      RFC 8259, integral floats print without a fraction part. *)

  val to_buffer : Buffer.t -> t -> unit

  val parse : string -> (t, string) result
  (** Parse one JSON value (surrounding whitespace allowed); [Error]
      carries a byte offset and reason. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on missing fields or non-objects. *)

  val to_float : t -> float option
  val to_int : t -> int option
  val to_str : t -> string option
end

type sink =
  | Silent  (** drop everything; the zero-cost default *)
  | Console of Format.formatter
      (** spans at close (indented by depth) and a metric table at
          {!flush} *)
  | Jsonl of out_channel
      (** one JSON object per line: [{"ev":"span",...}] at each span
          close, [{"ev":"counter"|"gauge"|"histogram",...}] at {!flush} *)

type t

val silent : t
(** The shared inert handle: [is_silent silent = true], and every
    operation on it (and on handles derived from it) is a no-op. *)

val create : sink -> t
(** A fresh handle with its own metric registry. [create Silent] is
    equivalent to {!silent}. *)

val is_silent : t -> bool

val now : unit -> float
(** Wall-clock seconds (the one clock the whole checker reads; lint bans
    direct clock syscalls elsewhere under [lib/]). *)

(** {1 Metrics}

    A metric handle is looked up (or registered) by name once, outside
    the hot loop; updates through the handle are branch-plus-atomic. Two
    lookups of the same name on the same handle share state. *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram

val default_buckets : float array
(** Log-spaced duration buckets in seconds: 1us to 10s. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** Fixed upper-bound bucket boundaries (must be sorted ascending; an
    implicit overflow bucket catches the rest). [buckets] is only
    consulted on first registration of [name]. *)

val observe : histogram -> float -> unit

val histogram_counts : histogram -> (float * int) list
(** One [(upper_bound, count)] per bucket, the final pair carrying
    [infinity]; counts are per-bucket, not cumulative. *)

val histogram_sum : histogram -> float
val histogram_observations : histogram -> int

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (float * int) list;
      sum : float;
      observations : int;
    }

val metrics : t -> (string * metric) list
(** Snapshot of every registered metric, sorted by name. Empty for
    {!silent}. *)

(** {1 Spans} *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] and records its wall-clock duration,
    emitting at close. The duration is recorded (and emitted) even when
    [f] raises. On {!silent} this is exactly [f ()]. *)

val event : t -> string -> (string * Json.t) list -> unit
(** Emit an ad-hoc event line (JSONL) or note (console) immediately. *)

val flush : t -> unit
(** Emit the metric snapshot to the sink and flush the underlying
    channel/formatter. Never closes the channel (the creator owns it). *)
