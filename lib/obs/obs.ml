(* Observability: spans, metrics, sinks. The silent handle must cost one
   branch per operation on the engine's hot paths, so every mutable piece
   hangs off an [active] flag checked first. Counters and histograms are
   atomic (worker domains update them concurrently); span bookkeeping and
   sink writes share one mutex. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let add_num buf f =
    (* Integral values print as integers up to 2^53, the last float whose
       integer neighbourhood is exact — checkpoint digests are 52-bit and
       must survive the round trip bit-for-bit. *)
    if Float.is_integer f && Float.abs f < 9007199254740992. then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.9g" f)

  let rec to_buffer buf v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s -> add_escaped buf s
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        vs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    to_buffer buf v;
    Buffer.contents buf

  exception Bad of int * string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some '"' -> Buffer.add_char buf '"'; advance ()
           | Some '\\' -> Buffer.add_char buf '\\'; advance ()
           | Some '/' -> Buffer.add_char buf '/'; advance ()
           | Some 'b' -> Buffer.add_char buf '\b'; advance ()
           | Some 'f' -> Buffer.add_char buf '\012'; advance ()
           | Some 'n' -> Buffer.add_char buf '\n'; advance ()
           | Some 'r' -> Buffer.add_char buf '\r'; advance ()
           | Some 't' -> Buffer.add_char buf '\t'; advance ()
           | Some 'u' ->
             advance ();
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some code ->
                pos := !pos + 4;
                (* encode the BMP code point as UTF-8 *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end)
           | _ -> fail "bad escape");
          go ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (at, msg) -> Error (Printf.sprintf "%s at byte %d" msg at)

  let member k v =
    match v with Obj fields -> List.assoc_opt k fields | _ -> None

  let to_float v = match v with Num f -> Some f | _ -> None

  let to_int v =
    match v with
    | Num f when Float.is_integer f -> Some (int_of_float f)
    | _ -> None

  let to_str v = match v with Str s -> Some s | _ -> None
end

type sink =
  | Silent
  | Console of Format.formatter
  | Jsonl of out_channel

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Metric cells                                                        *)
(* ------------------------------------------------------------------ *)

type counter = { c_active : bool; cell : int Atomic.t }

type gauge = { g_active : bool; level : float Atomic.t }

type hist_state = {
  bounds : float array;  (* sorted upper bounds; overflow bucket implicit *)
  counts : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  (* sum is kept in microunits to stay atomic without a lock; precise
     enough for the duration/size scales observed here *)
  sum_micro : int Atomic.t;
  observations : int Atomic.t;
}

type histogram = { h_active : bool; h : hist_state }

type cell =
  | C of int Atomic.t
  | G of float Atomic.t
  | H of hist_state

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (float * int) list;
      sum : float;
      observations : int;
    }

type t = {
  sink : sink;
  registry : (string, cell) Hashtbl.t;
  mutex : Mutex.t;
  mutable depth : int;  (* open spans; approximate across domains *)
  t0 : float;  (* handle creation time: span timestamps are relative *)
}

let make sink =
  {
    sink;
    registry = Hashtbl.create 32;
    mutex = Mutex.create ();
    depth = 0;
    t0 = now ();
  }

let silent = make Silent
let create sink = match sink with Silent -> silent | _ -> make sink
let is_silent t = match t.sink with Silent -> true | _ -> false

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let dummy_counter = { c_active = false; cell = Atomic.make 0 }
let dummy_gauge = { g_active = false; level = Atomic.make 0. }

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]

let dummy_histogram =
  {
    h_active = false;
    h =
      {
        bounds = default_buckets;
        counts = Array.init (Array.length default_buckets + 1) (fun _ -> Atomic.make 0);
        sum_micro = Atomic.make 0;
        observations = Atomic.make 0;
      };
  }

(* Register-or-find under the mutex; mismatched kinds for one name are a
   programming error worth failing loudly on. *)
let register t name build check =
  locked t (fun () ->
      match Hashtbl.find_opt t.registry name with
      | Some cell -> check cell
      | None ->
        let cell = build () in
        Hashtbl.replace t.registry name cell;
        check cell)

let counter t name =
  if is_silent t then dummy_counter
  else
    register t name
      (fun () -> C (Atomic.make 0))
      (fun cell ->
        match cell with
        | C cell -> { c_active = true; cell }
        | _ -> invalid_arg ("Obs.counter: " ^ name ^ " is not a counter"))

let incr c = if c.c_active then ignore (Atomic.fetch_and_add c.cell 1)
let add c n = if c.c_active then ignore (Atomic.fetch_and_add c.cell n)
let counter_value c = Atomic.get c.cell

let gauge t name =
  if is_silent t then dummy_gauge
  else
    register t name
      (fun () -> G (Atomic.make 0.))
      (fun cell ->
        match cell with
        | G level -> { g_active = true; level }
        | _ -> invalid_arg ("Obs.gauge: " ^ name ^ " is not a gauge"))

let set g v = if g.g_active then Atomic.set g.level v
let gauge_value g = Atomic.get g.level

let histogram ?(buckets = default_buckets) t name =
  if is_silent t then dummy_histogram
  else
    register t name
      (fun () ->
        let bounds = Array.copy buckets in
        Array.sort compare bounds;
        H
          {
            bounds;
            counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            sum_micro = Atomic.make 0;
            observations = Atomic.make 0;
          })
      (fun cell ->
        match cell with
        | H h -> { h_active = true; h }
        | _ -> invalid_arg ("Obs.histogram: " ^ name ^ " is not a histogram"))

let bucket_index bounds v =
  (* first bucket whose upper bound admits v; linear scan — bucket counts
     are small and fixed *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe hg v =
  if hg.h_active then begin
    let h = hg.h in
    ignore (Atomic.fetch_and_add h.counts.(bucket_index h.bounds v) 1);
    ignore (Atomic.fetch_and_add h.sum_micro (int_of_float (v *. 1e6)));
    ignore (Atomic.fetch_and_add h.observations 1)
  end

let hist_snapshot h =
  let buckets =
    List.init
      (Array.length h.counts)
      (fun i ->
        let bound =
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        in
        bound, Atomic.get h.counts.(i))
  in
  ( buckets,
    float_of_int (Atomic.get h.sum_micro) /. 1e6,
    Atomic.get h.observations )

let histogram_counts hg =
  let buckets, _, _ = hist_snapshot hg.h in
  buckets

let histogram_sum hg =
  let _, sum, _ = hist_snapshot hg.h in
  sum

let histogram_observations hg = Atomic.get hg.h.observations

let metrics t =
  if is_silent t then []
  else
    locked t (fun () ->
        Hashtbl.fold
          (fun name cell acc ->
            let m =
              match cell with
              | C c -> Counter (Atomic.get c)
              | G g -> Gauge (Atomic.get g)
              | H h ->
                let buckets, sum, observations = hist_snapshot h in
                Histogram { buckets; sum; observations }
            in
            (name, m) :: acc)
          t.registry [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let emit_json t obj =
  match t.sink with
  | Jsonl oc ->
    locked t (fun () ->
        output_string oc (Json.to_string (Json.Obj obj));
        output_char oc '\n')
  | _ -> ()

let event t name fields =
  match t.sink with
  | Silent -> ()
  | Jsonl _ ->
    emit_json t (("ev", Json.Str "event") :: ("name", Json.Str name) :: fields)
  | Console ppf ->
    locked t (fun () ->
        Format.fprintf ppf "[obs] %s%a@." name
          (fun ppf fields ->
            List.iter
              (fun (k, v) -> Format.fprintf ppf " %s=%s" k (Json.to_string v))
              fields)
          fields)

let span t name f =
  match t.sink with
  | Silent -> f ()
  | sink ->
    let start = now () in
    let depth = locked t (fun () ->
        let d = t.depth in
        t.depth <- d + 1;
        d)
    in
    Fun.protect
      ~finally:(fun () ->
        let dur = now () -. start in
        match sink with
        | Silent -> ()
        | Jsonl _ ->
          locked t (fun () -> t.depth <- t.depth - 1);
          emit_json t
            [
              "ev", Json.Str "span";
              "name", Json.Str name;
              "depth", Json.Num (float_of_int depth);
              "start_s", Json.Num (start -. t.t0);
              "dur_s", Json.Num dur;
            ]
        | Console ppf ->
          locked t (fun () ->
              t.depth <- t.depth - 1;
              Format.fprintf ppf "[obs] %s%s: %.3f ms@."
                (String.make (2 * depth) ' ')
                name (dur *. 1e3)))
      f

let flush t =
  match t.sink with
  | Silent -> ()
  | Jsonl oc ->
    List.iter
      (fun (name, m) ->
        match m with
        | Counter v ->
          emit_json t
            [
              "ev", Json.Str "counter";
              "name", Json.Str name;
              "value", Json.Num (float_of_int v);
            ]
        | Gauge v ->
          emit_json t
            [ "ev", Json.Str "gauge"; "name", Json.Str name; "value", Json.Num v ]
        | Histogram { buckets; sum; observations } ->
          emit_json t
            [
              "ev", Json.Str "histogram";
              "name", Json.Str name;
              "sum", Json.Num sum;
              "observations", Json.Num (float_of_int observations);
              ( "buckets",
                Json.List
                  (List.map
                     (fun (bound, count) ->
                       Json.Obj
                         [
                           ( "le",
                             if Float.is_integer bound || bound = infinity then
                               Json.Str
                                 (if bound = infinity then "inf"
                                  else Printf.sprintf "%.0f" bound)
                             else Json.Str (Printf.sprintf "%g" bound) );
                           "count", Json.Num (float_of_int count);
                         ])
                     buckets) );
            ])
      (metrics t);
    locked t (fun () -> Stdlib.flush oc)
  | Console ppf ->
    let ms = metrics t in
    locked t (fun () ->
        if ms <> [] then begin
          Format.fprintf ppf "[obs] metrics:@.";
          List.iter
            (fun (name, m) ->
              match m with
              | Counter v -> Format.fprintf ppf "[obs]   %-32s %d@." name v
              | Gauge v -> Format.fprintf ppf "[obs]   %-32s %g@." name v
              | Histogram { sum; observations; buckets } ->
                Format.fprintf ppf "[obs]   %-32s n=%d sum=%g %s@." name
                  observations sum
                  (String.concat " "
                     (List.filter_map
                        (fun (bound, count) ->
                          if count = 0 then None
                          else
                            Some
                              (Printf.sprintf "le%s:%d"
                                 (if bound = infinity then "+inf"
                                  else Printf.sprintf "%g" bound)
                                 count))
                        buckets)))
            ms
        end;
        Format.pp_print_flush ppf ())
