(** Attack trees as series-parallel (SP) graphs, with the paper's
    Section IV-E semantics and the translation into CSP processes that the
    paper cites from Cheah et al.

    An SP graph denotes a set of action sequences:
    - a single action {m \xrightarrow{a}} denotes [{<a>}];
    - parallel composition {m G_1 \parallel G_2} denotes all interleavings
      of the operands' sequences;
    - sequential composition {m G_1 \cdot G_2} denotes their
      concatenations;
    - a set of graphs (OR over alternative attacks) denotes the union.

    The CSP translation maps actions to event prefixes, [Seq] to [;],
    [Par] to [|||] and [Or] to external choice; its maximal traces are
    exactly the SP-graph sequences — a property the test suite checks. *)

type t =
  | Action of Csp.Event.t
  | Seq of t list  (** {m G_1 \cdot G_2 \cdots} — attack steps in order *)
  | Par of t list  (** steps that may interleave *)
  | Or of t list  (** alternative attacks *)

val action : string -> Csp.Value.t list -> t
val sequences : t -> Csp.Event.t list list
(** The paper's {m (G)} — all action sequences, sorted, deduplicated. *)

val to_proc : t -> Csp.Proc.t
(** CSP process whose complete traces are {!sequences} (each followed by
    successful termination). *)

val events : t -> Csp.Event.t list
(** All actions mentioned (the attack alphabet), sorted, deduplicated. *)

val channels : t -> string list

val size : t -> int
(** Number of action leaves. *)

val pp : Format.formatter -> t -> unit

val and_node : t list -> t
(** Attack-tree vocabulary: an AND node whose children may run in any
    order ([Par]). *)

val ordered_and : t list -> t
(** AND node with a required order ([Seq]). *)

val or_node : t list -> t
