(** Symbolic cryptography over {!Csp.Value} terms, in the style of the
    Dolev-Yao model the paper adopts (Section IV-E, citing Ryan &
    Schneider): keys, pairing, symmetric/asymmetric encryption, MACs and
    signatures are free constructors; an attacker can open or build a term
    only according to the deduction rules below.

    Deduction rules implemented by {!analyze} / {!synthesizable}:
    - ordinary constructors (pairs, protocol message shapes) are
      {e transparent}: components of a known term are known, and a term is
      synthesizable from synthesizable components;
    - symmetric encryption [senc(k, m)]: [m] is learned iff [k] is known;
    - asymmetric encryption [aenc(pk(x), m)]: [m] is learned iff the
      private key [sk(x)] is known; anyone can encrypt (public keys are
      public);
    - MAC [mac(k, m)]: opaque — reveals nothing (the MAC'd message
      normally travels alongside in clear); synthesizable iff [k] and [m]
      are, so an attacker without the key can only {e replay} MACs;
    - signatures [sig(k, m)]: reveal [m] but require [k] to build;
    - the secret atoms are [key], [sk] and [nonce] terms: they are never
      synthesizable unless known. *)

val key : string -> Csp.Value.t
(** [key "kecu"] is a symmetric-key constant. *)

val pk : Csp.Value.t -> Csp.Value.t
(** Public key of an agent (public). *)

val sk : Csp.Value.t -> Csp.Value.t
(** Private key of an agent (secret atom). *)

val pair : Csp.Value.t -> Csp.Value.t -> Csp.Value.t
val senc : Csp.Value.t -> Csp.Value.t -> Csp.Value.t
(** [senc k m]. *)

val aenc : Csp.Value.t -> Csp.Value.t -> Csp.Value.t
(** [aenc (pk x) m]. *)

val mac : Csp.Value.t -> Csp.Value.t -> Csp.Value.t
(** [mac k m]. *)

val sign : Csp.Value.t -> Csp.Value.t -> Csp.Value.t
val nonce : int -> Csp.Value.t

val analyze : Csp.Value.t list -> Csp.Value.t list
(** Closure of a knowledge set under the opening rules (fixpoint; sorted,
    deduplicated). *)

val synthesizable : knowledge:Csp.Value.t list -> Csp.Value.t -> bool
(** Can the term be built from the (already analyzed) knowledge? Atoms
    (ints, bools, plain symbols) are public and always synthesizable;
    keys, private keys and nonces must be known explicitly. *)

val derivable : knowledge:Csp.Value.t list -> Csp.Value.t -> bool
(** [synthesizable ~knowledge:(analyze knowledge)] — the full Dolev-Yao
    "can the attacker produce this" test. *)

val is_secret_atom : Csp.Value.t -> bool
(** [key], [sk] and [nonce] terms. *)

val secret_atoms : Csp.Value.t -> Csp.Value.t list
(** The secret atoms occurring syntactically in a term (sorted,
    deduplicated) — what an attacker must possess to synthesize it. *)
