(** Dolev-Yao network intruder, in the Ryan–Schneider style the paper
    cites: the attacker {e is} the medium.

    Agents send [send.src.dst.packet] and receive [recv.dst.packet]; the
    medium decides what is delivered. Two media are provided:

    - {!reliable_medium}: a one-place buffer that faithfully relays every
      packet — the no-attacker baseline;
    - {!define} (the intruder): a parallel composition of one cell per
      packet in the finite packet universe. A cell always overhears its
      packet; it can deliver (inject) the packet to {e any} destination
      once the packet is {e known} — known initially iff the packet is
      derivable from the intruder's starting knowledge under the
      {!Crypto} deduction rules (so MACs with unknown keys can only be
      replayed after being overheard), or from the moment it is first
      overheard. Delivery may also simply never happen: dropping and
      reordering come for free.

    The state space is [O(2^|packets|)] in the worst case; keep packet
    universes small (the OTA case study uses about a dozen packets). *)

type config = {
  send_chan : string;
      (** declared with fields [src, dst, payload] (payload last) *)
  recv_chan : string;  (** declared with fields [dst, payload] *)
  knowledge : Csp.Value.t list;  (** initial intruder knowledge *)
}

exception Bad_config of string

val packet_universe : Csp.Defs.t -> config -> Csp.Value.t list
(** The payload domain (from the last field of [send_chan]).
    @raise Bad_config if the channels are undeclared or field counts are
    wrong. *)

val forgeable : Csp.Defs.t -> config -> Csp.Value.t list
(** Packets derivable from the initial knowledge alone. *)

val define : ?name:string -> Csp.Defs.t -> config -> string
(** Define the intruder process (default name [INTRUDER]) and its cell in
    [defs]; returns the process name.
    @raise Bad_config / {!Csp.Defs.Duplicate}. *)

val reliable_medium : ?name:string -> Csp.Defs.t -> config -> string
(** Define the faithful one-place medium (default name [MEDIUM]). *)

val lossy_medium :
  ?name:string -> ?timeout_chan:string -> Csp.Defs.t -> config -> string
(** Define a lossy one-place medium (default name [LOSSY]): after
    accepting a packet it internally chooses between faithful delivery on
    [recv_chan] and dropping the packet, which it signals on
    [timeout_chan] (default ["timeout"]; must already be declared with no
    fields). Synchronize sender timers on [timeout_chan] to model
    timeout-and-retry protocols over an unreliable network. *)

val learnable_secrets : Csp.Defs.t -> config -> Csp.Value.t list
(** Secret atoms ({!Crypto.is_secret_atom}) that occur in the packet
    universe but are not derivable from the initial knowledge — what the
    lazy spy can hope to learn. *)

exception Too_many_secrets of int

val define_spy : ?name:string -> Csp.Defs.t -> config -> string
(** The {e lazy spy} (Roscoe's construction): a stronger intruder than
    {!define} that also {e synthesizes new packets from learned secrets}.
    It is the parallel composition (synchronized on [send_chan]) of

    - the replay cells of {!define}, and
    - a forger process parameterized by one boolean per learnable secret:
      overhearing a packet sets the flags for every secret the packet
      reveals under the {!Crypto} rules (given the initial knowledge —
      cross-packet layered encryption is approximated packet-locally); a
      packet can be injected once every secret atom it contains is known.

    This is the intruder that finds Lowe's attack on Needham-Schroeder
    (re-encrypting a learned nonce to a new recipient), which pure replay
    cannot.
    @raise Too_many_secrets if more than 16 secrets are learnable. *)

val alphabet : config -> Csp.Eventset.t
(** [{| send, recv |}] — what agents synchronize with the medium on. *)

val compose : Csp.Proc.t -> medium:Csp.Proc.t -> config -> Csp.Proc.t
(** [compose agents ~medium config] is
    [agents [| {| send, recv |} |] medium]. *)
