(** Builders for security-property specification models — the abstract CSP
    processes of Section V-B that implementation models are checked
    against by trace refinement.

    Each builder defines a named process in the environment and returns
    the call; check with
    [Csp.Refine.traces_refines defs ~spec ~impl:(restricted system)].
    Builders that quantify over "all other events" take the relevant
    alphabet explicitly, since trace refinement only constrains the events
    the specification mentions. *)

val request_response :
  ?name:string ->
  Csp.Defs.t ->
  req:string ->
  resp:string ->
  Csp.Proc.t
(** The paper's SP02 integrity property generalized over payloads:
    [SP = req?x -> resp!x -> SP] — every request is answered by a response
    carrying the same data, in strict alternation. The two channels must
    be declared with identical field types. Default [name] is ["SP02"]. *)

val alternation :
  ?name:string -> Csp.Defs.t -> first:string -> second:string -> Csp.Proc.t
(** Like {!request_response} but ignoring payloads: events on [first] and
    [second] strictly alternate ([first] first). *)

val never : Csp.Defs.t -> alphabet:Csp.Eventset.t -> forbidden:Csp.Eventset.t -> Csp.Proc.t
(** Secrecy-style property: within [alphabet], events of [forbidden]
    never occur — [RUN(alphabet \ forbidden)]. Check the {e whole} system
    alphabet or hide the rest first. *)

val precedes :
  ?name:string ->
  Csp.Defs.t ->
  alphabet:Csp.Eventset.t ->
  trigger:Csp.Event.t ->
  guarded:Csp.Event.t ->
  Csp.Proc.t
(** Non-injective authentication / precedence: no [guarded] event occurs
    before the first [trigger]; afterwards anything goes. Events are
    enumerated from [alphabet], which must be finite in [defs]. Default
    [name] is ["PRECEDES"]. *)
