type t =
  | Action of Csp.Event.t
  | Seq of t list
  | Par of t list
  | Or of t list

let action chan args = Action (Csp.Event.event chan args)

let compare_seq = List.compare Csp.Event.compare

(* All interleavings of two sequences. *)
let rec interleave s1 s2 =
  match s1, s2 with
  | [], s | s, [] -> [ s ]
  | a :: r1, b :: r2 ->
    List.map (fun s -> a :: s) (interleave r1 s2)
    @ List.map (fun s -> b :: s) (interleave s1 r2)

let rec sequences t =
  let result =
    match t with
    | Action a -> [ [ a ] ]
    | Seq parts ->
      List.fold_left
        (fun acc part ->
          let tails = sequences part in
          List.concat_map (fun s -> List.map (fun tl -> s @ tl) tails) acc)
        [ [] ] parts
    | Par parts ->
      List.fold_left
        (fun acc part ->
          let others = sequences part in
          List.concat_map
            (fun s1 -> List.concat_map (fun s2 -> interleave s1 s2) others)
            acc)
        [ [] ] parts
    | Or parts -> List.concat_map sequences parts
  in
  List.sort_uniq compare_seq result

let rec to_proc t =
  match t with
  | Action a ->
    Csp.Proc.prefix_items
      ( a.Csp.Event.chan,
        List.map (fun v -> Csp.Proc.Out (Csp.Expr.Lit v)) a.Csp.Event.args,
        Csp.Proc.skip )
  | Seq parts ->
    (match parts with
     | [] -> Csp.Proc.skip
     | first :: rest ->
       List.fold_left
         (fun acc p -> Csp.Proc.seq (acc, to_proc p))
         (to_proc first) rest)
  | Par parts ->
    (match parts with
     | [] -> Csp.Proc.skip
     | first :: rest ->
       List.fold_left
         (fun acc p -> Csp.Proc.inter (acc, to_proc p))
         (to_proc first) rest)
  | Or parts ->
    (match parts with
     | [] -> Csp.Proc.stop
     | first :: rest ->
       List.fold_left
         (fun acc p -> Csp.Proc.ext (acc, to_proc p))
         (to_proc first) rest)

let events t =
  let rec go acc = function
    | Action a -> a :: acc
    | Seq parts | Par parts | Or parts -> List.fold_left go acc parts
  in
  List.sort_uniq Csp.Event.compare (go [] t)

let channels t =
  List.sort_uniq String.compare
    (List.map (fun e -> e.Csp.Event.chan) (events t))

let size t =
  let rec go acc = function
    | Action _ -> acc + 1
    | Seq parts | Par parts | Or parts -> List.fold_left go acc parts
  in
  go 0 t

let rec pp ppf = function
  | Action a -> Csp.Event.pp ppf a
  | Seq parts -> pp_parts ppf "." parts
  | Par parts -> pp_parts ppf "||" parts
  | Or parts -> pp_parts ppf "OR" parts

and pp_parts ppf op parts =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " %s " op)
       pp)
    parts

let and_node children = Par children
let ordered_and children = Seq children
let or_node children = Or children
