(* The Needham-Schroeder public-key protocol (the paper's motivating
   historical example, Section II-B): trusted for 18 years until CSP model
   checking exposed Lowe's man-in-the-middle attack — modelled with the
   lazy-spy intruder, together with Lowe's fix.

   Protocol (public-key core):
     1. A -> B : {na, A}pk(B)
     2. B -> A : {na, nb}pk(A)        (Lowe's fix adds B's identity)
     3. A -> B : {nb}pk(B)

   Property: when B commits to a session apparently with A, A really ran
   the protocol with B. *)

module P = Csp.Proc
module E = Csp.Expr
module V = Csp.Value

let agent_a = V.sym "a"
let agent_b = V.sym "b"
let agent_i = V.sym "i"

let e_pk x = E.Ctor ("pk", [ x ])
let e_aenc k m = E.Ctor ("aenc", [ k; m ])

(* Build the protocol model; [fixed] switches message 2 to Lowe's variant
   carrying the responder's identity. *)
let build ~fixed =
  let defs = Csp.Defs.create () in
  let nonce_field = Csp.Ty.Int_range (0, 2) in
  Csp.Defs.declare_datatype defs "AgentId" [ "a", []; "b", []; "i", [] ];
  Csp.Defs.declare_datatype defs "Nonce" [ "nonce", [ nonce_field ] ];
  Csp.Defs.declare_datatype defs "PKey" [ "pk", [ Csp.Ty.Named "AgentId" ] ];
  Csp.Defs.declare_datatype defs "Body"
    [
      "msg1", [ Csp.Ty.Named "Nonce"; Csp.Ty.Named "AgentId" ];
      ( "msg2",
        if fixed then
          [ Csp.Ty.Named "Nonce"; Csp.Ty.Named "Nonce"; Csp.Ty.Named "AgentId" ]
        else [ Csp.Ty.Named "Nonce"; Csp.Ty.Named "Nonce" ] );
      "msg3", [ Csp.Ty.Named "Nonce" ];
    ];
  Csp.Defs.declare_datatype defs "Packet"
    [ "aenc", [ Csp.Ty.Named "PKey"; Csp.Ty.Named "Body" ] ];
  Csp.Defs.declare_channel defs "send"
    [ Csp.Ty.Named "AgentId"; Csp.Ty.Named "AgentId"; Csp.Ty.Named "Packet" ];
  Csp.Defs.declare_channel defs "recv"
    [ Csp.Ty.Named "AgentId"; Csp.Ty.Named "Packet" ];
  Csp.Defs.declare_channel defs "running"
    [ Csp.Ty.Named "AgentId"; Csp.Ty.Named "AgentId" ];
  Csp.Defs.declare_channel defs "commit"
    [ Csp.Ty.Named "AgentId"; Csp.Ty.Named "AgentId" ];
  let nonces = E.Ty_dom (Csp.Ty.Named "Nonce") in
  (* INITIATOR(self, peer, na) *)
  let msg2_pattern =
    if fixed then
      E.Ctor ("msg2", [ E.Var "na"; E.Var "nb"; E.Var "peer" ])
    else E.Ctor ("msg2", [ E.Var "na"; E.Var "nb" ])
  in
  Csp.Defs.define_proc defs "INITIATOR" [ "self"; "peer"; "na" ]
    (P.prefix "running" [ E.Var "self"; E.Var "peer" ]
       (P.prefix "send"
          [
            E.Var "self";
            E.Var "peer";
            e_aenc (e_pk (E.Var "peer"))
              (E.Ctor ("msg1", [ E.Var "na"; E.Var "self" ]));
          ]
          (P.ext_over
             ( "nb",
               nonces,
               P.prefix "recv"
                 [ E.Var "self"; e_aenc (e_pk (E.Var "self")) msg2_pattern ]
                 (P.prefix "send"
                    [
                      E.Var "self";
                      E.Var "peer";
                      e_aenc (e_pk (E.Var "peer"))
                        (E.Ctor ("msg3", [ E.Var "nb" ]));
                    ]
                    P.skip) ))));
  (* RESPONDER(self, nb) *)
  let msg2_reply =
    if fixed then
      E.Ctor ("msg2", [ E.Var "n"; E.Var "nb"; E.Var "self" ])
    else E.Ctor ("msg2", [ E.Var "n"; E.Var "nb" ])
  in
  Csp.Defs.define_proc defs "RESPONDER" [ "self"; "nb" ]
    (P.ext_over
       ( "n",
         nonces,
         P.ext_over
           ( "x",
             E.Ty_dom (Csp.Ty.Named "AgentId"),
             P.prefix "recv"
               [
                 E.Var "self";
                 e_aenc (e_pk (E.Var "self"))
                   (E.Ctor ("msg1", [ E.Var "n"; E.Var "x" ]));
               ]
               (P.prefix "send"
                  [
                    E.Var "self"; E.Var "x";
                    e_aenc (e_pk (E.Var "x")) msg2_reply;
                  ]
                  (P.prefix "recv"
                     [
                       E.Var "self";
                       e_aenc (e_pk (E.Var "self"))
                         (E.Ctor ("msg3", [ E.Var "nb" ]));
                     ]
                     (P.prefix "commit" [ E.Var "self"; E.Var "x" ] P.skip)))
           ) ));
  (* A initiates with either the honest B or the (compromised) agent I —
     running a session with a dishonest party is not itself a flaw. *)
  let initiator_any =
    P.ext_over
      ( "peerchoice",
        E.Set [ E.Lit agent_b; E.Lit agent_i ],
        P.call
          ( "INITIATOR",
            [ E.Lit agent_a; E.Var "peerchoice"; E.Lit (V.Ctor ("nonce", [ V.Int 0 ])) ] ) )
  in
  let responder = P.call ("RESPONDER", [ E.Lit agent_b; E.Lit (V.Ctor ("nonce", [ V.Int 1 ])) ]) in
  let agents = P.inter (initiator_any, responder) in
  (* The lazy spy: owns i's private key and a nonce of its own; learns the
     honest nonces only by opening packets encrypted to pk(i). *)
  let config =
    {
      Intruder.send_chan = "send";
      recv_chan = "recv";
      knowledge = [ Crypto.sk agent_i; V.Ctor ("nonce", [ V.Int 2 ]) ];
    }
  in
  let spy = Intruder.define_spy defs config in
  let system = Intruder.compose agents ~medium:(P.call (spy, [])) config in
  defs, system

let authentication_spec defs =
  let alphabet = Csp.Eventset.chans [ "send"; "recv"; "running"; "commit" ] in
  Properties.precedes defs ~alphabet
    ~trigger:(Csp.Event.event "running" [ agent_a; agent_b ])
    ~guarded:(Csp.Event.event "commit" [ agent_b; agent_a ])

(* A bigger default state budget than [Check_config.default]'s: the NS
   product space is the stock large check. Applied only when the caller
   does not supply a config of their own. *)
let default_config =
  Csp.Check_config.(default |> with_max_states 2_000_000)

let check ?(config = default_config) ~fixed () =
  let defs, system = build ~fixed in
  let spec = authentication_spec defs in
  Csp.Refine.traces_refines ~config defs ~spec ~impl:system
