module P = Csp.Proc
module E = Csp.Expr

let request_response ?(name = "SP02") defs ~req ~resp =
  let req_tys = Csp.Defs.channel_type defs req in
  let resp_tys = Csp.Defs.channel_type defs resp in
  (match req_tys, resp_tys with
   | Some t1, Some t2
     when List.length t1 = List.length t2 && List.for_all2 Csp.Ty.equal t1 t2
     ->
     ()
   | Some _, Some _ ->
     invalid_arg "request_response: channels have different field types"
   | None, _ -> invalid_arg ("request_response: undeclared channel " ^ req)
   | _, None -> invalid_arg ("request_response: undeclared channel " ^ resp));
  let arity = List.length (Option.get req_tys) in
  let vars = List.init arity (fun i -> Printf.sprintf "x%d" i) in
  let body =
    P.prefix_items
      ( req,
        List.map (fun x -> P.In (x, None)) vars,
        P.prefix_items
          ( resp,
            List.map (fun x -> P.Out (E.Var x)) vars,
            P.call (name, []) ) )
  in
  Csp.Defs.define_proc defs name [] body;
  P.call (name, [])

let alternation ?(name = "ALTERNATION") defs ~first ~second =
  let arity chan =
    match Csp.Defs.channel_type defs chan with
    | Some tys -> List.length tys
    | None -> invalid_arg ("alternation: undeclared channel " ^ chan)
  in
  let inputs chan prefix =
    List.init (arity chan) (fun i ->
        P.In (Printf.sprintf "%s%d" prefix i, None))
  in
  let body =
    P.prefix_items
      ( first,
        inputs first "a",
        P.prefix_items (second, inputs second "b", P.call (name, [])) )
  in
  Csp.Defs.define_proc defs name [] body;
  P.call (name, [])

let never _defs ~alphabet ~forbidden =
  P.run (Csp.Eventset.diff alphabet forbidden)

let precedes ?(name = "PRECEDES") defs ~alphabet ~trigger ~guarded =
  let events = Csp.Defs.events_of defs alphabet in
  let before =
    (* any event except [guarded]; [trigger] unlocks everything *)
    List.filter_map
      (fun e ->
        if Csp.Event.equal e guarded then None
        else if Csp.Event.equal e trigger then
          Some (P.send e.Csp.Event.chan e.Csp.Event.args (P.run alphabet))
        else Some (P.send e.Csp.Event.chan e.Csp.Event.args (P.call (name, []))))
      events
  in
  let body = P.ext_all before in
  Csp.Defs.define_proc defs name [] body;
  P.call (name, [])
