module P = Csp.Proc
module E = Csp.Expr

type config = {
  send_chan : string;
  recv_chan : string;
  knowledge : Csp.Value.t list;
}

exception Bad_config of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_config s)) fmt

let payload_type defs config =
  match Csp.Defs.channel_type defs config.send_chan with
  | None -> fail "channel %s is not declared" config.send_chan
  | Some [] -> fail "channel %s has no payload field" config.send_chan
  | Some tys ->
    (match Csp.Defs.channel_type defs config.recv_chan with
     | None -> fail "channel %s is not declared" config.recv_chan
     | Some recv_tys ->
       if List.length recv_tys <> List.length tys - 1 then
         fail "channel %s should have one field fewer than %s"
           config.recv_chan config.send_chan;
       List.nth tys (List.length tys - 1))

let packet_universe defs config =
  Csp.Defs.domain defs (payload_type defs config)

let forgeable defs config =
  let knowledge = Crypto.analyze config.knowledge in
  List.filter
    (fun p -> Crypto.synthesizable ~knowledge p)
    (packet_universe defs config)

let cell_name name = name ^ "_CELL"

let define ?(name = "INTRUDER") defs config =
  let packets = packet_universe defs config in
  let forgeable_now = forgeable defs config in
  (* CELL(p, known) =
       send?src?dst!p -> CELL(p, true)
       [] known & recv?dst!p -> CELL(p, known) *)
  let cell = cell_name name in
  let body =
    P.ext
      ( P.prefix_items
          ( config.send_chan,
            [ P.In ("src", None); P.In ("dst", None); P.Out (E.Var "p") ],
            P.call (cell, [ E.Var "p"; E.bool true ]) ),
        P.guard
          ( E.Var "known",
            P.prefix_items
              ( config.recv_chan,
                [ P.In ("dst", None); P.Out (E.Var "p") ],
                P.call (cell, [ E.Var "p"; E.Var "known" ]) ) ) )
  in
  Csp.Defs.define_proc defs cell [ "p"; "known" ] body;
  let intruder =
    match packets with
    | [] -> P.stop
    | first :: rest ->
      let cell_for p =
        let known = List.exists (Csp.Value.equal p) forgeable_now in
        P.call (cell, [ E.Lit p; E.bool known ])
      in
      List.fold_left
        (fun acc p -> P.inter (acc, cell_for p))
        (cell_for first) rest
  in
  Csp.Defs.define_proc defs name [] intruder;
  name

exception Too_many_secrets of int

let learnable_secrets defs config =
  let universe = packet_universe defs config in
  let initial = Crypto.analyze config.knowledge in
  let all_secrets =
    List.sort_uniq Csp.Value.compare
      (List.concat_map Crypto.secret_atoms universe)
  in
  List.filter (fun s -> not (List.exists (Csp.Value.equal s) initial))
    all_secrets

(* What secrets does overhearing [p] reveal, under the initial knowledge?
   (Packet-local approximation of layered encryption across packets.) *)
let revealed_by initial_knowledge p =
  let opened = Crypto.analyze (p :: initial_knowledge) in
  List.filter Crypto.is_secret_atom opened

let define_spy ?(name = "INTRUDER_SPY") defs config =
  let universe = packet_universe defs config in
  let initial = Crypto.analyze config.knowledge in
  let secrets = learnable_secrets defs config in
  if List.length secrets > 16 then
    raise (Too_many_secrets (List.length secrets));
  let params = List.mapi (fun i _ -> Printf.sprintf "s%d" i) secrets in
  let forge_name = name ^ "_FORGE" in
  (* Hearing branches: partition the universe by the set of secrets a
     packet reveals; one branch per non-empty class (restricted input),
     plus one catch-all for packets that reveal nothing. *)
  let reveal_class p =
    List.filter_map
      (fun (s, param) ->
        if List.exists (Csp.Value.equal s) (revealed_by initial p) then
          Some param
        else None)
      (List.combine secrets params)
  in
  let classes =
    List.fold_left
      (fun acc p ->
        let cls = reveal_class p in
        match List.assoc_opt cls acc with
        | Some ps -> (cls, p :: ps) :: List.remove_assoc cls acc
        | None -> (cls, [ p ]) :: acc)
      [] universe
  in
  let continue_with learned =
    P.call
      ( forge_name,
        List.map
          (fun param ->
            if List.mem param learned then E.bool true else E.Var param)
          params )
  in
  let hear_branch (learned, packets) =
    P.prefix_items
      ( config.send_chan,
        [
          P.In ("src", None);
          P.In ("dst", None);
          P.In ("p", Some (E.Set (List.map (fun p -> E.Lit p) packets)));
        ],
        continue_with learned )
  in
  (* Injection branches: a packet is injectable once each of its secret
     atoms is either initially known or has its flag set. *)
  let inject_branch p =
    let needed =
      List.filter
        (fun s -> not (List.exists (Csp.Value.equal s) initial))
        (Crypto.secret_atoms p)
    in
    if
      List.exists
        (fun s -> not (List.exists (Csp.Value.equal s) secrets))
        needed
    then None  (* needs a secret nothing can teach: never injectable *)
    else begin
      let guard =
        List.fold_left
          (fun acc s ->
            let idx =
              Option.get
                (List.find_index (fun s' -> Csp.Value.equal s s') secrets)
            in
            E.Bin (E.And, acc, E.Var (List.nth params idx)))
          (E.bool true) needed
      in
      Some
        (P.guard
           ( guard,
             P.prefix_items
               ( config.recv_chan,
                 [ P.In ("dst", None); P.Out (E.Lit p) ],
                 continue_with [] ) ))
    end
  in
  let branches =
    List.map hear_branch classes
    @ List.filter_map inject_branch universe
  in
  let body = P.ext_all branches in
  Csp.Defs.define_proc defs forge_name params body;
  (* Replay cells synchronized with the forger on overhearing. *)
  let cells_name = name ^ "_CELLS" in
  let cell = cell_name name in
  let cell_body =
    P.ext
      ( P.prefix_items
          ( config.send_chan,
            [ P.In ("src", None); P.In ("dst", None); P.Out (E.Var "p") ],
            P.call (cell, [ E.Var "p"; E.bool true ]) ),
        P.guard
          ( E.Var "known",
            P.prefix_items
              ( config.recv_chan,
                [ P.In ("dst", None); P.Out (E.Var "p") ],
                P.call (cell, [ E.Var "p"; E.Var "known" ]) ) ) )
  in
  Csp.Defs.define_proc defs cell [ "p"; "known" ] cell_body;
  let forgeable_now =
    List.filter (fun p -> Crypto.synthesizable ~knowledge:initial p) universe
  in
  let cells =
    match universe with
    | [] -> P.stop
    | _ ->
      let cell_for p =
        let known = List.exists (Csp.Value.equal p) forgeable_now in
        P.call (cell, [ E.Lit p; E.bool known ])
      in
      P.inter_all (List.map cell_for universe)
  in
  Csp.Defs.define_proc defs cells_name [] cells;
  let spy =
    P.par
      ( P.call (cells_name, []),
        Csp.Eventset.chan config.send_chan,
        P.call (forge_name, List.map (fun _ -> E.bool false) params) )
  in
  Csp.Defs.define_proc defs name [] spy;
  name

let reliable_medium ?(name = "MEDIUM") defs config =
  (* sanity-check the channels *)
  let _ = payload_type defs config in
  let body =
    P.prefix_items
      ( config.send_chan,
        [ P.In ("src", None); P.In ("dst", None); P.In ("p", None) ],
        P.prefix_items
          ( config.recv_chan,
            [ P.Out (E.Var "dst"); P.Out (E.Var "p") ],
            P.call (name, []) ) )
  in
  Csp.Defs.define_proc defs name [] body;
  name

let lossy_medium ?(name = "LOSSY") ?(timeout_chan = "timeout") defs config =
  (* sanity-check the channels *)
  let _ = payload_type defs config in
  (* One-place buffer that internally chooses between faithful delivery
     and losing the packet; the loss is signalled on [timeout_chan] so
     that sender-side timers can synchronize with it. *)
  let body =
    P.prefix_items
      ( config.send_chan,
        [ P.In ("src", None); P.In ("dst", None); P.In ("p", None) ],
        P.intc
          ( P.prefix_items
              ( config.recv_chan,
                [ P.Out (E.Var "dst"); P.Out (E.Var "p") ],
                P.call (name, []) ),
            P.prefix_items (timeout_chan, [], P.call (name, [])) ) )
  in
  Csp.Defs.define_proc defs name [] body;
  name

let alphabet config = Csp.Eventset.chans [ config.send_chan; config.recv_chan ]

let compose agents ~medium config = P.par (agents, alphabet config, medium)
