(** The Needham-Schroeder public-key protocol with a lazy-spy intruder —
    the paper's motivating historical example. [~fixed:false] is the
    original (broken) protocol exhibiting Lowe's man-in-the-middle attack;
    [~fixed:true] adds the responder identity to message 2 (Lowe's fix).

    Beyond its historical role, the fixed variant is this library's
    stock "large check": its product space is big enough to exercise the
    budgeted refinement engine ({!Csp.Refine.check} with [?deadline]). *)

val agent_a : Csp.Value.t
val agent_b : Csp.Value.t
val agent_i : Csp.Value.t
(** The compromised agent whose secrets the spy owns. *)

val build : fixed:bool -> Csp.Defs.t * Csp.Proc.t
(** The protocol system: initiator ||| responder, composed with the lazy
    spy as the medium. *)

val authentication_spec : Csp.Defs.t -> Csp.Proc.t
(** "B commits to a session with A only after A really ran the protocol
    with B" as a trace specification. *)

val check :
  ?interner:Csp.Search.interner ->
  ?max_states:int -> ?deadline:float -> ?workers:int ->
  fixed:bool -> unit -> Csp.Refine.result
(** Build and check authentication (default [max_states] = [2_000_000]).
    [deadline] (seconds) makes the check budgeted: exhausting it returns
    [Inconclusive] rather than running to completion. [workers] sizes the
    refinement engine's domain pool; the verdict and counts are identical
    at any worker count. *)
