(** The Needham-Schroeder public-key protocol with a lazy-spy intruder —
    the paper's motivating historical example. [~fixed:false] is the
    original (broken) protocol exhibiting Lowe's man-in-the-middle attack;
    [~fixed:true] adds the responder identity to message 2 (Lowe's fix).

    Beyond its historical role, the fixed variant is this library's
    stock "large check": its product space is big enough to exercise the
    budgeted refinement engine ({!Csp.Refine.check} with [?deadline]). *)

val agent_a : Csp.Value.t
val agent_b : Csp.Value.t
val agent_i : Csp.Value.t
(** The compromised agent whose secrets the spy owns. *)

val build : fixed:bool -> Csp.Defs.t * Csp.Proc.t
(** The protocol system: initiator ||| responder, composed with the lazy
    spy as the medium. *)

val authentication_spec : Csp.Defs.t -> Csp.Proc.t
(** "B commits to a session with A only after A really ran the protocol
    with B" as a trace specification. *)

val default_config : Csp.Check_config.t
(** {!Csp.Check_config.default} with [max_states] raised to [2_000_000]
    — the NS product space is the stock large check. *)

val check :
  ?config:Csp.Check_config.t -> fixed:bool -> unit -> Csp.Refine.result
(** Build and check authentication. Budgets, the interner, the worker
    pool, and observability all come from [config] (default
    {!default_config}); a [config.deadline] makes the check budgeted —
    exhausting it returns [Inconclusive] rather than running to
    completion. The verdict and counts are identical at any worker count
    and under any obs sink. *)
