module V = Csp.Value

let key name = V.Ctor ("key", [ V.sym name ])
let pk agent = V.Ctor ("pk", [ agent ])
let sk agent = V.Ctor ("sk", [ agent ])
let pair a b = V.Ctor ("pair", [ a; b ])
let senc k m = V.Ctor ("senc", [ k; m ])
let aenc k m = V.Ctor ("aenc", [ k; m ])
let mac k m = V.Ctor ("mac", [ k; m ])
let sign k m = V.Ctor ("sig", [ k; m ])
let nonce n = V.Ctor ("nonce", [ V.Int n ])

let mem v set = List.exists (V.equal v) set

(* Secret atoms: knowing them cannot be faked. *)
let is_secret_atom = function
  | V.Ctor (("key" | "sk" | "nonce"), _) -> true
  | _ -> false

(* One round of the opening rules. Constructors without a restricted rule
   are transparent (free pairing-like data). *)
let open_once knowledge =
  List.concat_map
    (fun term ->
      match term with
      | V.Ctor ("senc", [ k; m ]) -> if mem k knowledge then [ m ] else []
      | V.Ctor ("aenc", [ V.Ctor ("pk", [ x ]); m ]) ->
        if mem (sk x) knowledge then [ m ] else []
      | V.Ctor ("sig", [ _; m ]) -> [ m ]
      | V.Ctor (("mac" | "aenc" | "key" | "pk" | "sk" | "nonce"), _) -> []
      | V.Ctor (_, args) -> args  (* transparent constructors *)
      | V.Tuple items -> items
      | V.Int _ | V.Bool _ -> [])
    knowledge

let analyze knowledge =
  let rec fix current =
    let opened = open_once current in
    let fresh = List.filter (fun v -> not (mem v current)) opened in
    if fresh = [] then current else fix (fresh @ current)
  in
  List.sort_uniq V.compare (fix knowledge)

let rec synthesizable ~knowledge term =
  if mem term knowledge then true
  else
    match term with
    | V.Ctor _ when is_secret_atom term -> false
    | V.Ctor (_, args) -> List.for_all (synthesizable ~knowledge) args
    | V.Tuple items -> List.for_all (synthesizable ~knowledge) items
    | V.Int _ | V.Bool _ -> true

let derivable ~knowledge term = synthesizable ~knowledge:(analyze knowledge) term

let secret_atoms term =
  let rec go acc t =
    if is_secret_atom t then t :: acc
    else
      match t with
      | V.Ctor (_, args) -> List.fold_left go acc args
      | V.Tuple items -> List.fold_left go acc items
      | V.Int _ | V.Bool _ -> acc
  in
  List.sort_uniq V.compare (go [] term)
