let with_atomic_out ~path f =
  let temp_dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir ~mode:[ Open_binary ]
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  match
    f oc;
    close_out oc
  with
  | () -> Sys.rename tmp path
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let atomic_write ~path contents =
  with_atomic_out ~path (fun oc -> output_string oc contents)
