(* Counts every fsync this module issues, so tests can assert the write
   path is durable (one for the file's data, one for the directory entry)
   without strace. *)
let fsyncs = Atomic.make 0

let fsync_count () = Atomic.get fsyncs

let fsync_fd fd =
  Unix.fsync fd;
  Atomic.incr fsyncs

(* Directories are opened read-only just to reach their fd; failure to
   open or sync one (some filesystems refuse) downgrades durability but
   must not fail the write that already happened. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try fsync_fd fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let with_atomic_out ~path f =
  let temp_dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir ~mode:[ Open_binary ]
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  match
    f oc;
    (* Durability, not just atomicity: the rename orders the directory
       entry ahead of nothing unless the file's blocks are on disk first,
       and the new entry itself lives in the page cache until the parent
       directory is synced — without both fsyncs a power cut after the
       rename can resurrect the old file or leave no file at all. *)
    flush oc;
    fsync_fd (Unix.descr_of_out_channel oc);
    close_out oc
  with
  | () ->
    Sys.rename tmp path;
    fsync_dir temp_dir
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let atomic_write ~path contents =
  with_atomic_out ~path (fun oc -> output_string oc contents)
