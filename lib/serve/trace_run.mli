(** The trace-check job driver: stream a [can-trace/1] corpus through
    per-(stream × requirement) {!Csp.Tracecheck} cursors and report
    per-requirement verdict counts as a ["trace-check/1"] document.

    The corpus is read once in batches: JSON parsing and
    frame-to-event mapping fan out across [workers] domains, cursor
    advancement replays each batch sequentially in file order — so
    verdicts are identical at any worker count, and memory is O(streams
    × requirements), never O(corpus).

    Corrupt lines follow the {!Trace_io} policy: a malformed line whose
    stream is recoverable poisons that stream (frozen cursors, reported
    as [corrupt] per requirement, positioned at the bad line); one whose
    stream is lost only increments [malformed]. Neither raises. *)

type rejection = {
  stream : string;
  position : int;  (** 0-based event index within the stream *)
  line : int;  (** corpus line number of the offending entry *)
  offending : string;  (** rendered event *)
  expected : string list;
      (** what the spec allowed; empty = spec had terminated *)
}

type requirement_report = {
  name : string;
  accepted : int;
  rejected : int;
  corrupt : int;  (** streams poisoned by a malformed line *)
  samples : rejection list;  (** first [sample_limit] rejections *)
}

type report = {
  corpus : string;
  header : Trace_io.header;
  streams : int;
  streams_accepted : int;
      (** streams clean and accepted by {e every} requirement *)
  streams_rejected : int;
      (** the rest — rejected by some requirement or corrupt *)
  entries : int;  (** trace-log entries read *)
  events : int;  (** entries mapped to spec events and fed to cursors *)
  skipped : int;  (** entries contributing no event (Rx, faults, unknown ids) *)
  faults : int;  (** entries recording injected faults *)
  malformed : int;  (** corrupt NDJSON lines *)
  wall_s : float;
  events_per_sec : float;
  requirements : requirement_report list;
  rejected_by_fault : (string * int) list;
      (** how many rejected/corrupt streams declared each fault kind in
          their meta line (a stream with several kinds counts under each;
          ["none"] collects streams whose generator declared nothing).
          Sorted by kind; empty when every stream passed. *)
}

val passed : report -> bool
(** No rejected or corrupt streams and no malformed lines. *)

val report_schema : string
(** ["trace-check/1"]. *)

val json_of_report : ?timing:bool -> report -> Obs.Json.t
(** The stable ["trace-check/1"] document. [timing:false] (default
    [true]) omits the wall-clock fields — the byte-comparable form.
    [rejected_by_fault] is rendered as an object keyed by fault kind —
    an additive extension; prior consumers are unaffected. *)

val pp_report : Format.formatter -> report -> unit

val check_corpus :
  ?workers:int ->
  ?obs:Obs.t ->
  ?batch:int ->
  ?sample_limit:int ->
  map:(Canbus.Trace_log.entry -> Csp.Event.label option) ->
  requirements:(string * Csp.Tracecheck.t) list ->
  path:string ->
  unit ->
  (report, string) result
(** Check the whole corpus. [map] turns a log entry into the observation
    it contributes ([None] = not an observation — skipped);
    [requirements] pairs each spec name with its compiled checker.
    [Error] only for an unreadable file or a missing/foreign header.
    [obs] receives the [tracecheck.events]/[tracecheck.streams] counters,
    an events-per-second histogram observation and a
    [tracecheck.corpus] span. *)

val prepare :
  ?config:Csp.Check_config.t ->
  script:Cspm.Elaborate.t ->
  specs:string list ->
  dbc:string option ->
  corpus:string ->
  unit ->
  ( (Canbus.Trace_log.entry -> Csp.Event.label option)
    * (string * Csp.Tracecheck.t) list,
    string )
  result
(** Resolve a trace-check job into {!check_corpus} inputs: build the
    event mapper from the CAN database ([dbc] source text, or the one
    embedded in the corpus header) and compile one checker per spec
    name — [specs = []] selects every nullary [SPEC*] definition.
    [config] supplies the compile budget, cache, and obs handle. *)
