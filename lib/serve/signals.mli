(** Cancellation tokens and termination-signal plumbing.

    The search engine polls a [unit -> bool] token once per 256 dequeues;
    this module provides the token (a single atomic flag, safe to trip
    from a signal handler or another domain) and the one place in the
    codebase allowed to install handlers for SIGINT/SIGTERM. The lint in
    [tools/lint.ml] bans signal installation and sleeping elsewhere under
    [lib/] so that interruption policy stays in this subsystem. *)

type token

val create : unit -> token
(** A fresh, untripped token. *)

val trip : token -> unit
(** Trip the token; idempotent, async-signal-safe, domain-safe. *)

val tripped : token -> bool

val read : token -> unit -> bool
(** The closure form expected by [Csp.Check_config.with_cancel]:
    [read t] is a function that returns [tripped t]. *)

val install_termination : token -> unit
(** Install handlers for SIGINT and SIGTERM that trip [t]. Each handler
    restores that signal's default behaviour as its first act, so a
    second signal of the same kind kills the process outright — graceful
    degradation must never make a hung process unkillable. *)
