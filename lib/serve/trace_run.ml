(* Drive the streaming trace checker over an on-disk corpus.

   The corpus is read once, in batches. Within a batch, JSON parsing and
   frame-to-event mapping (the dominant cost — the cursor step itself is
   one hashtable probe) fan out across domains; cursor advancement then
   replays the batch sequentially in file order. Verdicts are therefore
   byte-identical at any worker count, and memory stays constant per
   stream: one cursor per (stream, requirement) plus a handful of
   counters, never the corpus itself. *)

type rejection = {
  stream : string;
  position : int;
  line : int;
  offending : string;
  expected : string list;
}

type requirement_report = {
  name : string;
  accepted : int;
  rejected : int;
  corrupt : int;
  samples : rejection list;
}

type report = {
  corpus : string;
  header : Trace_io.header;
  streams : int;
  streams_accepted : int;
  streams_rejected : int;
  entries : int;
  events : int;
  skipped : int;
  faults : int;
  malformed : int;
  wall_s : float;
  events_per_sec : float;
  requirements : requirement_report list;
  rejected_by_fault : (string * int) list;
}

let passed r =
  r.malformed = 0
  && List.for_all (fun q -> q.rejected = 0 && q.corrupt = 0) r.requirements

let report_schema = "trace-check/1"

let json_of_report ?(timing = true) r =
  let open Obs.Json in
  let num n = Num (float_of_int n) in
  Obj
    ([
       ("schema", Str report_schema);
       ("corpus", Str r.corpus);
       ("streams", num r.streams);
       ("streams_accepted", num r.streams_accepted);
       ("streams_rejected", num r.streams_rejected);
       ("entries", num r.entries);
       ("events", num r.events);
       ("skipped", num r.skipped);
       ("faults", num r.faults);
       ("malformed", num r.malformed);
     ]
    @ (if timing then
         [
           ("wall_s", Num r.wall_s);
           ("events_per_sec", Num (Float.round r.events_per_sec));
         ]
       else [])
    @ [
        ( "requirements",
          List
            (List.map
               (fun q ->
                 Obj
                   [
                     ("spec", Str q.name);
                     ("accepted", num q.accepted);
                     ("rejected", num q.rejected);
                     ("corrupt", num q.corrupt);
                     ( "rejections",
                       List
                         (List.map
                            (fun s ->
                              Obj
                                [
                                  ("stream", Str s.stream);
                                  ("position", num s.position);
                                  ("line", num s.line);
                                  ("offending", Str s.offending);
                                  ( "expected",
                                    List
                                      (List.map (fun e -> Str e) s.expected)
                                  );
                                ])
                            q.samples) );
                   ])
               r.requirements) );
        ( "rejected_by_fault",
          Obj (List.map (fun (k, n) -> k, num n) r.rejected_by_fault) );
        ("verdict", Str (if passed r then "pass" else "fail"));
      ])

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>corpus %s: %d streams (%d accepted, %d rejected), %d entries \
     (%d events, %d skipped, %d faults, %d malformed), %.2fs (%.0f \
     events/s)@,"
    r.corpus r.streams r.streams_accepted r.streams_rejected r.entries
    r.events r.skipped r.faults r.malformed r.wall_s r.events_per_sec;
  List.iter
    (fun q ->
      Format.fprintf ppf "  %-24s accepted %d  rejected %d  corrupt %d@,"
        q.name q.accepted q.rejected q.corrupt;
      List.iter
        (fun s ->
          Format.fprintf ppf
            "    %s: event %d (line %d) %s not allowed (expected: %s)@,"
            s.stream s.position s.line s.offending
            (match s.expected with
             | [] -> "nothing — spec terminated"
             | es when List.length es > 8 ->
               String.concat ", " (List.filteri (fun i _ -> i < 8) es)
               ^ Printf.sprintf ", … %d more" (List.length es - 8)
             | es -> String.concat ", " es))
        q.samples)
    r.requirements;
  (match r.rejected_by_fault with
   | [] -> ()
   | by ->
     Format.fprintf ppf "  rejected streams by declared fault: %s@,"
       (String.concat ", "
          (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) by)));
  Format.fprintf ppf "verdict: %s@]" (if passed r then "pass" else "fail")

(* One pre-parsed corpus line: everything the sequential cursor stage
   needs, computed in parallel. *)
type parsed =
  | P_entry of { stream : string; label : Csp.Event.label option; fault : bool }
  | P_meta of { stream : string option; kinds : string list }
  | P_bad of { stream : string option; reason : string }

(* The fault kinds a generator declared for a stream: the meta object's
   fields with a positive number or [true] — e.g. the {!Ota.Corpus}
   plan's [drop]/[corrupt]/[delay]/[duplicate] probabilities, its
   [babble] flag, and the [flawed]-ECU marker. *)
let kinds_of_meta = function
  | Obs.Json.Obj fields ->
    List.filter_map
      (fun (k, v) ->
        match v with
        | Obs.Json.Num n when n > 0. -> Some k
        | Obs.Json.Bool true -> Some k
        | _ -> None)
      fields
    |> List.sort_uniq String.compare
  | _ -> []

let parse_raw map raw =
  match Trace_io.parse_line raw with
  | Trace_io.Meta { stream; meta } ->
    P_meta { stream = Some stream; kinds = kinds_of_meta meta }
  | Trace_io.Malformed { stream; reason } -> P_bad { stream; reason }
  | Trace_io.Entry { stream; entry } ->
    P_entry
      {
        stream;
        label = map entry;
        fault =
          (match entry.Canbus.Trace_log.direction with
           | Canbus.Trace_log.Fault _ -> true
           | _ -> false);
      }

(* Per-stream checking state: O(1) per stream — one cursor per
   requirement plus counters. A corrupt line poisons its stream (the
   trace after a lost line is not the trace that was recorded); the
   cursors freeze and the stream reports [corrupt] for every
   requirement. *)
type stream_state = {
  mutable s_entries : int;
  mutable corrupt_at : (int * string) option;
  cursors : Csp.Tracecheck.cursor array;
  reject_line : int array;  (* corpus line of each cursor's rejection *)
}

type totals = {
  mutable entries : int;
  mutable events : int;
  mutable skipped : int;
  mutable faults : int;
  mutable malformed : int;
}

let check_corpus ?(workers = 1) ?(obs = Obs.silent) ?(batch = 8192)
    ?(sample_limit = 5) ~map ~requirements ~path () =
  Obs.span obs "tracecheck.corpus" (fun () ->
      let reqs = Array.of_list requirements in
      let nreq = Array.length reqs in
      let checkers = Array.map snd reqs in
      let states : (string, stream_state) Hashtbl.t = Hashtbl.create 1024 in
      let order = ref [] in
      let totals =
        { entries = 0; events = 0; skipped = 0; faults = 0; malformed = 0 }
      in
      let t0 = Obs.now () in
      let state_of stream =
        match Hashtbl.find_opt states stream with
        | Some st -> st
        | None ->
          let st =
            {
              s_entries = 0;
              corrupt_at = None;
              cursors =
                Array.map (fun c -> Csp.Tracecheck.start c) checkers;
              reject_line = Array.make nreq 0;
            }
          in
          Hashtbl.replace states stream st;
          order := stream :: !order;
          st
      in
      (* Declared fault kinds per stream, kept apart from [states]: a
         meta line alone must not make a stream exist (or count). *)
      let metas : (string, string list) Hashtbl.t = Hashtbl.create 64 in
      let advance line_no = function
        | P_meta { stream = None; _ } -> ()
        | P_meta { stream = Some stream; kinds } ->
          let prior =
            Option.value ~default:[] (Hashtbl.find_opt metas stream)
          in
          Hashtbl.replace metas stream
            (List.sort_uniq String.compare (kinds @ prior))
        | P_bad { stream; reason } ->
          totals.malformed <- totals.malformed + 1;
          (match stream with
           | None -> ()
           | Some stream ->
             let st = state_of stream in
             if st.corrupt_at = None then
               st.corrupt_at <- Some (line_no, reason))
        | P_entry { stream; label; fault } ->
          let st = state_of stream in
          totals.entries <- totals.entries + 1;
          st.s_entries <- st.s_entries + 1;
          if fault then totals.faults <- totals.faults + 1;
          if st.corrupt_at = None then (
            match label with
            | None -> totals.skipped <- totals.skipped + 1
            | Some label ->
              totals.events <- totals.events + 1;
              for r = 0 to nreq - 1 do
                let before = st.cursors.(r) in
                if Csp.Tracecheck.verdict before = Csp.Tracecheck.Accepted
                then begin
                  let after = Csp.Tracecheck.step checkers.(r) before label in
                  st.cursors.(r) <- after;
                  if Csp.Tracecheck.verdict after <> Csp.Tracecheck.Accepted
                  then st.reject_line.(r) <- line_no
                end
              done)
          else totals.skipped <- totals.skipped + 1
      in
      (* Parse a slice of the batch on each domain; replay in order. *)
      let parse_batch lines n =
        let out = Array.make n (P_meta { stream = None; kinds = [] }) in
        let chunks = max 1 (min workers n) in
        let per = (n + chunks - 1) / chunks in
        let fill c =
          let lo = c * per and hi = min n ((c + 1) * per) in
          for i = lo to hi - 1 do
            out.(i) <- parse_raw map lines.(i)
          done
        in
        if chunks = 1 then fill 0
        else begin
          let domains =
            List.init (chunks - 1) (fun c ->
                Domain.spawn (fun () -> fill (c + 1)))
          in
          fill 0;
          List.iter Domain.join domains
        end;
        out
      in
      let run ic =
        let lines = Array.make batch "" in
        let rec loop line_no =
          let n = ref 0 in
          (try
             while !n < batch do
               lines.(!n) <- input_line ic;
               incr n
             done
           with End_of_file -> ());
          if !n > 0 then begin
            let parsed = parse_batch lines !n in
            Array.iteri (fun i p -> advance (line_no + i) p) parsed;
            if !n = batch then loop (line_no + !n)
          end
        in
        loop 2
      in
      match open_in_bin path with
      | exception Sys_error msg -> Error msg
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match input_line ic with
            | exception End_of_file -> Error "empty corpus (no header line)"
            | first -> (
              match Trace_io.header_of_line first with
              | Error _ as e -> e
              | Ok header ->
                run ic;
                let wall_s = Obs.now () -. t0 in
                let streams = List.rev !order in
                let accepted = Array.make nreq 0
                and rejected = Array.make nreq 0
                and corrupt = Array.make nreq 0
                and samples = Array.make nreq [] in
                let streams_accepted = ref 0 in
                (* Attribution: each rejected/corrupt stream counts once
                   under every fault kind its meta declared ("none" when
                   the generator declared nothing) — so the report says
                   which injected faults the specs actually caught. *)
                let by_fault : (string, int) Hashtbl.t =
                  Hashtbl.create 16
                in
                let attribute stream =
                  let kinds =
                    match Hashtbl.find_opt metas stream with
                    | Some (_ :: _ as ks) -> ks
                    | Some [] | None -> [ "none" ]
                  in
                  List.iter
                    (fun k ->
                      Hashtbl.replace by_fault k
                        (1
                        + Option.value ~default:0
                            (Hashtbl.find_opt by_fault k)))
                    kinds
                in
                List.iter
                  (fun stream ->
                    let st = Hashtbl.find states stream in
                    let clean = ref (st.corrupt_at = None) in
                    for r = 0 to nreq - 1 do
                      match st.corrupt_at with
                      | Some _ -> corrupt.(r) <- corrupt.(r) + 1
                      | None -> (
                        match Csp.Tracecheck.verdict st.cursors.(r) with
                        | Csp.Tracecheck.Accepted ->
                          accepted.(r) <- accepted.(r) + 1
                        | Csp.Tracecheck.Rejected
                            { position; offending; expected } ->
                          clean := false;
                          rejected.(r) <- rejected.(r) + 1;
                          if List.length samples.(r) < sample_limit then
                            samples.(r) <-
                              {
                                stream;
                                position;
                                line = st.reject_line.(r);
                                offending =
                                  Csp.Event.label_to_string offending;
                                expected =
                                  List.map Csp.Event.label_to_string
                                    expected;
                              }
                              :: samples.(r))
                    done;
                    if !clean then incr streams_accepted
                    else attribute stream)
                  streams;
                let requirements =
                  List.mapi
                    (fun r (name, _) ->
                      {
                        name;
                        accepted = accepted.(r);
                        rejected = rejected.(r);
                        corrupt = corrupt.(r);
                        samples = List.rev samples.(r);
                      })
                    requirements
                in
                let events_per_sec =
                  if wall_s > 0. then float_of_int totals.events /. wall_s
                  else 0.
                in
                if not (Obs.is_silent obs) then begin
                  Obs.add (Obs.counter obs "tracecheck.events") totals.events;
                  Obs.add
                    (Obs.counter obs "tracecheck.streams")
                    (List.length streams);
                  Obs.observe
                    (Obs.histogram obs "tracecheck.events_per_sec"
                       ~buckets:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 |])
                    events_per_sec
                end;
                Ok
                  {
                    corpus = path;
                    header;
                    streams = List.length streams;
                    streams_accepted = !streams_accepted;
                    streams_rejected =
                      List.length streams - !streams_accepted;
                    entries = totals.entries;
                    events = totals.events;
                    skipped = totals.skipped;
                    faults = totals.faults;
                    malformed = totals.malformed;
                    wall_s;
                    events_per_sec;
                    requirements;
                    rejected_by_fault =
                      List.sort
                        (fun (a, _) (b, _) -> String.compare a b)
                        (Hashtbl.fold
                           (fun k n acc -> (k, n) :: acc)
                           by_fault []);
                  })))

(* Resolve a trace-check job's pieces: the event mapper from the CAN
   database (explicit source text, or the one embedded in the corpus
   header) and one compiled checker per named specification. *)
let prepare ?(config = Csp.Check_config.default) ~(script : Cspm.Elaborate.t)
    ~specs ~dbc ~corpus () =
  let ( let* ) = Result.bind in
  let* dbc_text =
    match dbc with
    | Some text -> Ok text
    | None -> (
      let* header = Trace_io.read_header ~path:corpus in
      match header.Trace_io.dbc with
      | Some text -> Ok text
      | None ->
        Error
          "no CAN database: the corpus header embeds none and no \"dbc\" \
           was given")
  in
  let* db =
    match Candb.Dbc_parser.parse dbc_text with
    | db -> Ok db
    | exception Candb.Dbc_parser.Parse_error (msg, line) ->
      Error (Printf.sprintf "dbc line %d: %s" line msg)
  in
  let mapper = Extractor.Trace_rv.make db in
  let defs = script.Cspm.Elaborate.defs in
  let* names =
    match specs with
    | _ :: _ -> Ok specs
    | [] -> (
      match
        List.filter_map
          (fun (name, (params, _)) ->
            if params = [] && String.length name >= 4
               && String.sub name 0 4 = "SPEC"
            then Some name
            else None)
          (Csp.Defs.procs defs)
        |> List.sort String.compare
      with
      | [] ->
        Error
          "no specs: name them in the request or define nullary SPEC* \
           processes"
      | names -> Ok names)
  in
  let* requirements =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        match Csp.Defs.proc defs name with
        | None -> Error (Printf.sprintf "unknown process %S" name)
        | Some (_ :: _, _) ->
          Error
            (Printf.sprintf "%S takes parameters; specs must be nullary"
               name)
        | Some ([], _) -> (
          match
            Csp.Tracecheck.compile ~config
              ~alphabet:(Extractor.Trace_rv.channels mapper)
              defs
              (Csp.Proc.call (name, []))
          with
          | Ok checker -> Ok ((name, checker) :: acc)
          | Error reason ->
            Error (Printf.sprintf "spec %s: %s" name reason)))
      (Ok []) names
    |> Result.map List.rev
  in
  Ok (Extractor.Trace_rv.label_of_entry mapper, requirements)
