let schema = Canbus.Trace_log.schema

type header = {
  generator : string option;
  seed : int option;
  dbc : string option;
}

let empty_header = { generator = None; seed = None; dbc = None }

let header_to_json h =
  let open Obs.Json in
  Obj
    (("schema", Str schema)
    :: ((match h.generator with
         | Some g -> [ ("generator", Str g) ]
         | None -> [])
       @ (match h.seed with
          | Some s -> [ ("seed", Num (float_of_int s)) ]
          | None -> [])
       @ match h.dbc with Some d -> [ ("dbc", Str d) ] | None -> []))

let header_of_line line =
  let open Obs.Json in
  match parse line with
  | Error msg -> Error ("corpus header is not JSON: " ^ msg)
  | Ok json -> (
    let str k = Option.bind (member k json) to_str in
    match str "schema" with
    | Some s when String.equal s schema ->
      Ok
        {
          generator = str "generator";
          seed = Option.bind (member "seed" json) to_int;
          dbc = str "dbc";
        }
    | Some s ->
      Error (Printf.sprintf "unsupported corpus schema %S (want %S)" s schema)
    | None -> Error "corpus header has no \"schema\"")

type line =
  | Meta of { stream : string; meta : Obs.Json.t }
  | Entry of { stream : string; entry : Canbus.Trace_log.entry }
  | Malformed of { stream : string option; reason : string }

(* Classify one post-header line. Corrupt input comes back as
   [Malformed] — attributed to its stream when the ["s"] field is still
   recoverable — never as an exception: one truncated line must cost one
   stream, not the batch (the [Cache] corrupt-file-degrades-to-miss
   policy, applied to corpora). *)
let parse_line raw =
  let open Obs.Json in
  match parse raw with
  | Error msg -> Malformed { stream = None; reason = "not JSON: " ^ msg }
  | Ok json -> (
    let stream = Option.bind (member "s" json) to_str in
    match stream with
    | None -> Malformed { stream = None; reason = "line has no stream \"s\"" }
    | Some stream -> (
      match member "meta" json with
      | Some meta -> Meta { stream; meta }
      | None -> (
        match Canbus.Trace_log.entry_of_json json with
        | Ok entry -> Entry { stream; entry }
        | Error reason -> Malformed { stream = Some stream; reason })))

(* {1 Writing} *)

type writer = { oc : out_channel }

let write_json w json =
  output_string w.oc (Obs.Json.to_string json);
  output_char w.oc '\n'

let write_meta w ~stream meta =
  write_json w (Obs.Json.Obj [ ("s", Obs.Json.Str stream); ("meta", meta) ])

let write_entry w ~stream entry =
  match Canbus.Trace_log.entry_to_json entry with
  | Obs.Json.Obj fields ->
    write_json w (Obs.Json.Obj (("s", Obs.Json.Str stream) :: fields))
  | json -> write_json w json

let with_writer ~path ~header f =
  let result = ref None in
  Fsio.with_atomic_out ~path (fun oc ->
      let w = { oc } in
      write_json w (header_to_json header);
      result := Some (f w));
  match !result with
  | Some r -> r
  | None -> invalid_arg "Trace_io.with_writer: writer did not run"

(* {1 Reading} *)

let with_in path f =
  match open_in_bin path with
  | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)
  | exception Sys_error msg -> Error msg

let read_header ~path =
  with_in path (fun ic ->
      match input_line ic with
      | exception End_of_file -> Error "empty corpus (no header line)"
      | first -> header_of_line first)

let fold ~path ~init f =
  with_in path (fun ic ->
      match input_line ic with
      | exception End_of_file -> Error "empty corpus (no header line)"
      | first -> (
        match header_of_line first with
        | Error _ as e -> e
        | Ok header ->
          let rec loop line_no acc =
            match input_line ic with
            | exception End_of_file -> Ok (acc, header)
            | raw -> loop (line_no + 1) (f acc ~line_no (parse_line raw))
          in
          loop 2 init))

let read ~path ~f =
  Result.map snd
    (fold ~path ~init:() (fun () ~line_no line -> f ~line_no line))
