(** [can-trace/1] corpus files: NDJSON trace logs on disk.

    A corpus is one header line followed by one JSON object per line:

    {v
    {"schema":"can-trace/1","generator":"ota-fault","seed":7,"dbc":"..."}
    {"s":"s00000","meta":{"drop":0.12,...}}
    {"s":"s00000","t":150,"n":"VMG","d":"tx","id":257,"data":[1]}
    ...
    v}

    Every post-header line carries ["s"], the stream it belongs to;
    entry lines are the {!Canbus.Trace_log} codec with ["s"] prepended,
    [meta] lines attach generator metadata (e.g. the fault plan) to a
    stream. Streams may interleave arbitrarily — the checker keeps one
    cursor per stream, so corpora are written in whatever order the
    generator produces entries.

    Files are written through {!Fsio} (atomic + durable); reading never
    raises on corrupt input — a bad line is reported as {!Malformed} and
    costs at most its own stream, mirroring the cache's
    corrupt-file-degrades-to-miss policy. Only a missing or foreign
    {e header} fails the whole corpus: there is no way to interpret the
    rest of the file without it. *)

val schema : string
(** ["can-trace/1"] (equal to [Canbus.Trace_log.schema]). *)

type header = {
  generator : string option;
  seed : int option;
  dbc : string option;  (** embedded CAN database source (.dbc text) *)
}

val empty_header : header
val header_to_json : header -> Obs.Json.t
val header_of_line : string -> (header, string) result

type line =
  | Meta of { stream : string; meta : Obs.Json.t }
  | Entry of { stream : string; entry : Canbus.Trace_log.entry }
  | Malformed of { stream : string option; reason : string }
      (** corrupt line; [stream] when the ["s"] field was recoverable *)

val parse_line : string -> line
(** Classify one post-header line. Total — never raises. *)

(** {1 Writing} *)

type writer

val with_writer : path:string -> header:header -> (writer -> 'a) -> 'a
(** Write a corpus through {!Fsio.with_atomic_out}: the header goes out
    first, then whatever the callback emits; the file appears atomically
    on clean return and not at all if the callback raises. *)

val write_meta : writer -> stream:string -> Obs.Json.t -> unit
val write_entry : writer -> stream:string -> Canbus.Trace_log.entry -> unit

(** {1 Reading} *)

val read_header : path:string -> (header, string) result
(** Read and parse only the header line. *)

val read :
  path:string -> f:(line_no:int -> line -> unit) -> (header, string) result
(** Stream the corpus through [f] (line numbers are 1-based file lines;
    the first data line is 2). [Error] only for an unreadable file or a
    missing/foreign header. *)

val fold :
  path:string ->
  init:'a ->
  ('a -> line_no:int -> line -> 'a) ->
  ('a * header, string) result
