(** The ["cspm-checkd/1"] wire protocol.

    The daemon speaks newline-delimited JSON over stdio: one request
    object per line on stdin, one event object per line on stdout. Every
    object carries ["schema": "cspm-checkd/1"]; job results embed the
    existing ["cspm-check/1"] report document unchanged, so a client that
    already parses [cspm_check --format json] output parses daemon
    results too.

    Requests:
    {v
    { "op": "submit", "id": "job-1",
      "script": "<inline CSPm source>" | "path": "model.csp",
      "deadline_s": 5.0,     // optional per-attempt wall budget
      "workers": 2,          // optional, default 1
      "max_states": 100000,  // optional
      "max_retries": 3,      // optional, default from the runner
      "reductions": "none" } // optional --reductions-style pass list,
                             // default "default"
    { "op": "health" }
    { "op": "drain" }
    v}

    Events: [accepted], [rejected] (backpressure or a malformed
    request), [started], [retrying], [result] (with the embedded report,
    and ["interrupted": true] when the job was cut short by daemon
    shutdown), [failed] (the script would not load), [health], and
    [drained] (always the last line before the daemon exits). *)

val schema : string
(** ["cspm-checkd/1"]. *)

type script_source =
  | Inline of string  (** CSPm source carried in the request itself *)
  | Path of string  (** load from the daemon's filesystem *)

type job = {
  id : string;
  source : script_source;
  deadline_s : float option;
      (** wall budget per attempt; the runner doubles it on every retry
          so a too-tight first guess still converges *)
  workers : int;
  max_states : int option;
  max_retries : int option;  (** [None] = the runner's default *)
  reductions : string option;
      (** [--reductions]-style pass list ([None] = ["default"]); an
          unparseable value fails the job with a [failed] event before
          any attempt runs. Retries resume under the same setting, so
          checkpoints always match. *)
}

type request = Submit of job | Health | Drain

val request_of_line : string -> (request, string) result
(** Parse one stdin line. Unknown ops, missing required fields, and a
    wrong ["schema"] (when present) are [Error] with a reason suitable
    for a [rejected] event. *)

(** {2 Events} — each returns the complete single-line JSON object. *)

val accepted : id:string -> queue_depth:int -> Obs.Json.t
val rejected : id:string option -> reason:string -> Obs.Json.t
val started : id:string -> attempt:int -> Obs.Json.t

val retrying :
  id:string -> attempt:int -> backoff_s:float -> resumed:bool -> Obs.Json.t
(** [resumed] is [true] when the next attempt continues from the
    previous attempt's engine checkpoint rather than restarting. *)

val result :
  id:string -> attempts:int -> interrupted:bool -> report:Obs.Json.t ->
  Obs.Json.t

val failed : id:string -> attempts:int -> reason:string -> Obs.Json.t

val health :
  ?cache:Obs.Json.t ->
  queued:int -> done_:int -> failed:int -> retries:int -> draining:bool ->
  unit -> Obs.Json.t
(** [cache] is the runner's LTS-cache stats object (hits, misses,
    evictions, resident states/entries); present when the daemon runs
    with [--cache]. *)

val drained : done_:int -> failed:int -> Obs.Json.t
