(** The ["cspm-checkd/2"] wire protocol (accepting ["cspm-checkd/1"]).

    The daemon speaks newline-delimited JSON over stdio: one request
    object per line on stdin, one event object per line on stdout.

    Version 2 turns the single implicit job shape into a tagged
    job-kind union: ["kind": "check"] (the v1 behaviour — refinement
    checking of a CSPm script) or ["kind": "trace-check"] (streaming
    trace containment of a recorded [can-trace/1] corpus against the
    script's specs). Version 1 requests remain valid: a submit with no
    ["schema"] and no ["kind"] is a v1 check job, and every event about
    it is tagged ["cspm-checkd/1"], so existing clients see exactly the
    bytes they always did. A ["kind"] field on a schema-less request
    implies v2; ["kind": "trace-check"] under an explicit v1 schema is
    rejected.

    Requests:
    {v
    { "op": "submit", "id": "job-1",
      "kind": "check" | "trace-check",  // optional, default "check"
      "script": "<inline CSPm source>" | "path": "model.csp",
      // trace-check only:
      "corpus": "fleet.ndjson",     // can-trace/1 NDJSON file
      "specs": ["SPEC_AUTH", ...] | "spec": "SPEC_AUTH",
                                    // optional; default: every nullary
                                    // definition named SPEC*
      "dbc": "bus.dbc",             // optional; default: the corpus
                                    // header's embedded database
      // both kinds:
      "deadline_s": 5.0,     // optional per-attempt wall budget (check)
      "workers": 2,          // optional, default 1
      "max_states": 100000,  // optional
      "max_retries": 3,      // optional (check only)
      "reductions": "none",  // optional (check only)
      "lint": true,          // optional (check only): run the static
                             // analyses first; findings ride on the
                             // result/failed event as "diagnostics"
      "deny_warnings": true } // optional (check only): implies "lint";
                             // blocking findings fail the job before
                             // any checking runs
    { "op": "health" }
    { "op": "drain" }
    v}

    Events: [accepted], [rejected] (backpressure or a malformed
    request), [started], [retrying], [result] (with the embedded report
    — ["cspm-check/1"] for check jobs, ["trace-check/1"] for trace-check
    jobs, which also carry top-level stream/verdict counts), [failed],
    [health], and [drained] (always the last line before the daemon
    exits). Job-scoped events carry the schema version the job was
    submitted under; connection-scoped events ([health], [drained],
    rejects of unparseable requests) are tagged with the version of the
    request when known, v2 otherwise. *)

val schema : string
(** ["cspm-checkd/2"]. *)

val schema_v1 : string
(** ["cspm-checkd/1"]. *)

type version = V1 | V2

val schema_of_version : version -> string

type script_source =
  | Inline of string  (** CSPm source carried in the request itself *)
  | Path of string  (** load from the daemon's filesystem *)

type kind =
  | Check  (** refinement-check the script's assertions (v1 behaviour) *)
  | Trace_check of {
      corpus : string;  (** path to a [can-trace/1] NDJSON corpus *)
      specs : string list;
          (** nullary process names to check containment against; empty
              = every definition named [SPEC*] *)
      dbc : string option;
          (** path to the CAN database mapping frames to events; [None]
              = the database embedded in the corpus header *)
    }

type job = {
  id : string;
  source : script_source;
  kind : kind;
  version : version;
      (** the schema version the job was submitted under — its events
          echo it back *)
  deadline_s : float option;
      (** wall budget per attempt; the runner doubles it on every retry
          so a too-tight first guess still converges (check jobs) *)
  workers : int;
      (** check: product-search domains; trace-check: parsing domains *)
  max_states : int option;
  max_retries : int option;  (** [None] = the runner's default *)
  reductions : string option;
      (** [--reductions]-style pass list ([None] = ["default"]); an
          unparseable value fails the job with a [failed] event before
          any attempt runs. Retries resume under the same setting, so
          checkpoints always match. Check jobs only. *)
  lint : bool;
      (** run the static analyses over the loaded script before
          checking; set whenever [deny_warnings] is. Check jobs only. *)
  deny_warnings : bool;
      (** treat warning diagnostics as blocking, mirroring the CLI's
          [--deny-warnings]: a blocking report fails the job (with the
          diagnostics attached) before any attempt runs *)
}

type request = Submit of job | Health | Drain

val request_of_line : string -> (request * version, string) result
(** Parse one stdin line; the returned version is what replies to this
    request should be tagged with. Unknown ops, missing required
    fields, and a wrong ["schema"] (when present) are [Error] with a
    reason suitable for a [rejected] event. *)

(** {2 Events} — each returns the complete single-line JSON object.
    [v] defaults to {!V2}. *)

val accepted : ?v:version -> id:string -> queue_depth:int -> unit -> Obs.Json.t
val rejected : ?v:version -> id:string option -> reason:string -> unit -> Obs.Json.t
val started : ?v:version -> id:string -> attempt:int -> unit -> Obs.Json.t

val retrying :
  ?v:version ->
  id:string -> attempt:int -> backoff_s:float -> resumed:bool -> unit ->
  Obs.Json.t
(** [resumed] is [true] when the next attempt continues from the
    previous attempt's engine checkpoint rather than restarting. *)

val result :
  ?v:version ->
  ?verdicts:int * int * int ->
  ?diagnostics:Obs.Json.t ->
  id:string -> attempts:int -> interrupted:bool -> report:Obs.Json.t ->
  unit -> Obs.Json.t
(** [verdicts] is [(streams, accepted, rejected)] — the stream counts a
    trace-check job surfaces at the top level of its result event.
    [diagnostics] is the ["diagnostics/1"] document of a lint-enabled
    job whose findings did not block. *)

val failed :
  ?v:version ->
  ?diagnostics:Obs.Json.t ->
  id:string -> attempts:int -> reason:string -> unit ->
  Obs.Json.t
(** [diagnostics] carries the blocking ["diagnostics/1"] report when a
    lint gate failed the job. *)

val health :
  ?v:version ->
  ?cache:Obs.Json.t ->
  queued:int -> done_:int -> failed:int -> retries:int -> draining:bool ->
  unit -> Obs.Json.t
(** [cache] is the runner's LTS-cache stats object (hits, misses,
    evictions, resident states/entries); present when the daemon runs
    with [--cache]. *)

val drained : ?v:version -> done_:int -> failed:int -> unit -> Obs.Json.t
