type config = {
  queue_limit : int;
  default_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  seed : int;
  max_deadline_factor : float;
  sleep : float -> unit;
  emit : Obs.Json.t -> unit;
  obs : Obs.t;
  cancel : Signals.token;
  cache : Csp.Cache.t option;
  state_dir : string option;
}

let default_config ~emit =
  {
    queue_limit = 16;
    default_retries = 2;
    backoff_base_s = 0.05;
    backoff_max_s = 2.0;
    seed = 0x5eed;
    max_deadline_factor = 8.0;
    sleep = Unix.sleepf;
    emit;
    obs = Obs.silent;
    cancel = Signals.create ();
    cache = None;
    state_dir = None;
  }

type t = {
  cfg : config;
  queue : Protocol.job Queue.t;
  mutable draining : bool;
  mutable jobs_done : int;
  mutable jobs_failed : int;
  mutable retries : int;
  rng : Random.State.t;
  g_queue : Obs.gauge;
  g_done : Obs.gauge;
  g_failed : Obs.gauge;
  c_retries : Obs.counter;
}

let create cfg =
  {
    cfg;
    queue = Queue.create ();
    draining = false;
    jobs_done = 0;
    jobs_failed = 0;
    retries = 0;
    rng = Random.State.make [| cfg.seed |];
    g_queue = Obs.gauge cfg.obs "serve.queue_depth";
    g_done = Obs.gauge cfg.obs "serve.jobs_done";
    g_failed = Obs.gauge cfg.obs "serve.jobs_failed";
    c_retries = Obs.counter cfg.obs "serve.retries";
  }

let queue_depth t = Queue.length t.queue
let draining t = t.draining

let note_done t =
  t.jobs_done <- t.jobs_done + 1;
  Obs.set t.g_done (float_of_int t.jobs_done)

let note_failed t =
  t.jobs_failed <- t.jobs_failed + 1;
  Obs.set t.g_failed (float_of_int t.jobs_failed)

let submit t (job : Protocol.job) =
  let v = job.Protocol.version in
  if t.draining then
    t.cfg.emit
      (Protocol.rejected ~v ~id:(Some job.Protocol.id) ~reason:"draining" ())
  else if Queue.length t.queue >= t.cfg.queue_limit then
    t.cfg.emit
      (Protocol.rejected ~v ~id:(Some job.Protocol.id) ~reason:"queue full" ())
  else begin
    Queue.add job t.queue;
    Obs.set t.g_queue (float_of_int (Queue.length t.queue));
    t.cfg.emit
      (Protocol.accepted ~v ~id:job.Protocol.id
         ~queue_depth:(Queue.length t.queue) ())
  end

let cache_stats_json cfg =
  Option.map
    (fun c -> Csp.Cache.json_of_stats (Csp.Cache.stats c))
    cfg.cache

let emit_health ?v t =
  t.cfg.emit
    (Protocol.health ?v ?cache:(cache_stats_json t.cfg)
       ~queued:(Queue.length t.queue) ~done_:t.jobs_done
       ~failed:t.jobs_failed ~retries:t.retries ~draining:t.draining ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_job (job : Protocol.job) =
  match
    let source =
      match job.Protocol.source with
      | Protocol.Inline src -> src
      | Protocol.Path p -> read_file p
    in
    (source, Cspm.Elaborate.load_string source)
  with
  | source, loaded -> Ok (source, loaded)
  | exception Sys_error msg -> Error msg
  | exception Cspm.Parser.Parse_error (msg, pos) ->
    Error (Format.asprintf "%a: syntax error: %s" Cspm.Ast.pp_pos pos msg)
  | exception Cspm.Lexer.Lex_error (msg, pos) ->
    Error (Format.asprintf "%a: lexical error: %s" Cspm.Ast.pp_pos pos msg)
  | exception Cspm.Elaborate.Elab_error (msg, pos) ->
    Error
      (match pos with
      | Some pos -> Format.asprintf "%a: %s" Cspm.Ast.pp_pos pos msg
      | None -> msg)
  | exception Stack_overflow -> Error "stack overflow while loading script"
  | exception Out_of_memory -> Error "out of memory while loading script"

(* Exercise the wire codec on every retry: a checkpoint that cannot
   survive its own JSON round trip must fail here, in the daemon, not in
   a client's hands. *)
let roundtrip_checkpoint cp =
  let encoded = Obs.Json.to_string (Csp.Search.json_of_checkpoint cp) in
  match Obs.Json.parse encoded with
  | Error msg -> invalid_arg ("checkpoint does not re-parse: " ^ msg)
  | Ok json -> (
    match Csp.Search.checkpoint_of_json json with
    | Ok cp -> cp
    | Error msg -> invalid_arg ("checkpoint does not round-trip: " ^ msg))

let backoff t attempt =
  let base =
    t.cfg.backoff_base_s *. (2. ** float_of_int (attempt - 1))
  in
  let capped = Float.min base t.cfg.backoff_max_s in
  (* jitter in [0.5x, 1.5x): desynchronises a fleet of retrying daemons *)
  capped *. (0.5 +. Random.State.float t.rng 1.0)

(* An attempt "timed out" when an outcome ran out of wall clock or hit
   the memory watermark — both are curable by another attempt with a
   doubled budget. State/pair exhaustion is a model-size problem retries
   cannot fix, so those outcomes stand. *)
let timed_out (o : Cspm.Check.outcome) =
  match o.Cspm.Check.result with
  | Csp.Refine.Inconclusive (_, hint) -> (
    match hint.Csp.Refine.exhausted with
    | Csp.Refine.Deadline | Csp.Refine.Memory -> true
    | _ -> false)
  | _ -> false

let checkpoint_of (o : Cspm.Check.outcome) =
  match o.Cspm.Check.result with
  | Csp.Refine.Inconclusive (_, hint) -> hint.Csp.Refine.checkpoint
  | _ -> None

let rec first_timeout i = function
  | [] -> None
  | o :: rest -> if timed_out o then Some (i, o) else first_timeout (i + 1) rest

let take n xs = List.filteri (fun i _ -> i < n) xs

(* Where a job's retry checkpoint is spilled between attempts. The file
   is a full cspm-checkpoint/1 document, so if the daemon dies mid-retry
   the client can hand it straight to [cspm_check --resume]. *)
let checkpoint_path cfg (job : Protocol.job) =
  Option.map
    (fun dir -> Filename.concat dir (job.Protocol.id ^ ".ck.json"))
    cfg.state_dir

let remove_checkpoint cfg job =
  match checkpoint_path cfg job with
  | Some path when Sys.file_exists path ->
    (try Sys.remove path with Sys_error _ -> ())
  | Some _ | None -> ()

let spill_checkpoint cfg job st =
  match checkpoint_path cfg job with
  | Some path ->
    (try
       Fsio.atomic_write ~path
         (Obs.Json.to_string (Cspm.Check.json_of_resume_state st) ^ "\n")
     with Sys_error _ -> ())
  | None -> ()

let run_check_job t (job : Protocol.job) =
  let cfg = t.cfg in
  let v = job.Protocol.version in
  let retries =
    Option.value job.Protocol.max_retries ~default:cfg.default_retries
  in
  let reductions =
    Csp.Reduce.pipeline_of_string
      (Option.value job.Protocol.reductions ~default:"default")
  in
  match load_job job, reductions with
  | Error reason, _ | _, Error reason ->
    cfg.emit (Protocol.failed ~v ~id:job.Protocol.id ~attempts:1 ~reason ());
    note_failed t
  | Ok (source, loaded), Ok reductions -> (
    (* The lint gate mirrors the CLI's --lint/--deny-warnings: blocking
       findings fail the job before any search attempt spends budget,
       with the full report attached for the client. Non-blocking
       findings ride along on the result event instead. *)
    let lint_report =
      if job.Protocol.lint then
        Some (Analysis.Cspm_analyze.analyze_loaded ~obs:cfg.obs loaded)
      else None
    in
    match lint_report with
    | Some ds
      when Analysis.Diag.blocking
             ~deny_warnings:job.Protocol.deny_warnings ds ->
      cfg.emit
        (Protocol.failed ~v
           ~diagnostics:(Analysis.Diag.json_of_list ds)
           ~id:job.Protocol.id ~attempts:1 ~reason:"blocking diagnostics"
           ());
      note_failed t
    | lint_report ->
    let diagnostics = Option.map Analysis.Diag.json_of_list lint_report in
    let script_digest =
      Csp.Cache.script_digest
        (source ^ "\x00reductions="
        ^ Csp.Reduce.pipeline_to_string reductions)
    in
    let report_of outcomes =
      Cspm.Check.report_of_json_outcomes
        ?cache:(Option.map Csp.Cache.stats cfg.cache)
        outcomes
    in
    let render start outcomes =
      List.mapi (fun i o -> Cspm.Check.json_of_outcome (start + i) o) outcomes
    in
    (* [completed]: rendered outcomes settled by earlier attempts, in
       script order; each retry re-runs only from the first timed-out
       assertion onward. *)
    let rec attempt k ~start ~completed ~resume ~deadline_s =
      cfg.emit (Protocol.started ~v ~id:job.Protocol.id ~attempt:k ());
      let config =
        let open Csp.Check_config in
        let c =
          default
          |> with_workers (max 1 job.Protocol.workers)
          |> with_obs cfg.obs
          |> with_cancel (Signals.read cfg.cancel)
          |> with_reductions reductions
        in
        let c =
          match job.Protocol.max_states with
          | Some n -> with_max_states n c
          | None -> c
        in
        let c =
          match cfg.cache with Some k -> with_cache k c | None -> c
        in
        match deadline_s with Some d -> with_deadline d c | None -> c
      in
      let resume_first = Option.map roundtrip_checkpoint resume in
      let outcomes, stop =
        Cspm.Check.run_seq ~start ?resume_first ~config loaded
      in
      match stop with
      | Some s ->
        (* daemon shutdown interrupted the search mid-job: report what we
           have as a valid partial document and stop retrying. The spilled
           checkpoint is deliberately left behind (and refreshed) — it is
           the resume handle for a client that resubmits after restart. *)
        let settled = s.Cspm.Check.next_index - start in
        spill_checkpoint cfg job
          {
            Cspm.Check.script_digest;
            completed = completed @ render start (take settled outcomes);
            next_index = s.Cspm.Check.next_index;
            search = s.Cspm.Check.search;
          };
        let report = report_of (completed @ render start outcomes) in
        cfg.emit
          (Protocol.result ~v ?diagnostics ~id:job.Protocol.id ~attempts:k
             ~interrupted:true ~report ());
        note_failed t
      | None -> (
        match (if k <= retries then first_timeout 0 outcomes else None) with
        | Some (rel, o) ->
          let completed = completed @ render start (take rel outcomes) in
          let resume = checkpoint_of o in
          (* Spill before sleeping: the backoff window is exactly when an
             impatient operator restarts the daemon. *)
          spill_checkpoint cfg job
            {
              Cspm.Check.script_digest;
              completed;
              next_index = start + rel;
              search = resume;
            };
          let pause = backoff t k in
          t.retries <- t.retries + 1;
          Obs.incr t.c_retries;
          cfg.emit
            (Protocol.retrying ~v ~id:job.Protocol.id ~attempt:(k + 1)
               ~backoff_s:pause
               ~resumed:(Option.is_some resume) ());
          cfg.sleep pause;
          (* Double the per-attempt budget, but never past a configurable
             multiple of the job's own deadline — unbounded doubling let a
             pathological model hold the single-job runner hostage for
             2^retries times what the client asked for. *)
          let next_deadline =
            match deadline_s, job.Protocol.deadline_s with
            | Some d, Some d0 ->
              Some (Float.min (d *. 2.) (d0 *. cfg.max_deadline_factor))
            | Some d, None -> Some (d *. 2.)
            | None, _ -> None
          in
          attempt (k + 1) ~start:(start + rel) ~completed ~resume
            ~deadline_s:next_deadline
        | None ->
          let report = report_of (completed @ render start outcomes) in
          (* terminal verdict: the retry checkpoint is now stale state *)
          remove_checkpoint cfg job;
          cfg.emit
            (Protocol.result ~v ?diagnostics ~id:job.Protocol.id ~attempts:k
               ~interrupted:false ~report ());
          note_done t)
    in
    attempt 1 ~start:0 ~completed:[] ~resume:None
      ~deadline_s:job.Protocol.deadline_s)

(* Trace-check jobs are a single pass over the corpus — no product
   search, so no retries, checkpoints, or deadline doubling; an error
   anywhere (script, database, unreadable corpus) is terminal. A failing
   verdict is still a completed job: the report is the deliverable. *)
let run_trace_job t (job : Protocol.job) ~corpus ~specs ~dbc =
  let cfg = t.cfg in
  let v = job.Protocol.version in
  let fail reason =
    cfg.emit (Protocol.failed ~v ~id:job.Protocol.id ~attempts:1 ~reason ());
    note_failed t
  in
  match load_job job with
  | Error reason -> fail reason
  | Ok (_source, loaded) -> (
    cfg.emit (Protocol.started ~v ~id:job.Protocol.id ~attempt:1 ());
    let config =
      let open Csp.Check_config in
      let c = default |> with_obs cfg.obs in
      let c =
        match job.Protocol.max_states with
        | Some n -> with_max_states n c
        | None -> c
      in
      match cfg.cache with Some k -> with_cache k c | None -> c
    in
    let dbc_text =
      match dbc with
      | None -> Ok None
      | Some path -> (
        match read_file path with
        | text -> Ok (Some text)
        | exception Sys_error msg -> Error msg)
    in
    match
      Result.bind dbc_text (fun dbc ->
          Trace_run.prepare ~config ~script:loaded ~specs ~dbc ~corpus ())
    with
    | Error reason -> fail reason
    | Ok (map, requirements) -> (
      match
        Trace_run.check_corpus
          ~workers:(max 1 job.Protocol.workers)
          ~obs:cfg.obs ~map ~requirements ~path:corpus ()
      with
      | Error reason -> fail reason
      | Ok report ->
        cfg.emit
          (Protocol.result ~v
             ~verdicts:
               ( report.Trace_run.streams,
                 report.Trace_run.streams_accepted,
                 report.Trace_run.streams_rejected )
             ~id:job.Protocol.id ~attempts:1 ~interrupted:false
             ~report:(Trace_run.json_of_report report) ());
        note_done t))

let run_job t (job : Protocol.job) =
  match job.Protocol.kind with
  | Protocol.Check -> run_check_job t job
  | Protocol.Trace_check { corpus; specs; dbc } ->
    run_trace_job t job ~corpus ~specs ~dbc

let fail_queued t reason =
  Queue.iter
    (fun (j : Protocol.job) ->
      t.cfg.emit
        (Protocol.failed ~v:j.Protocol.version ~id:j.Protocol.id ~attempts:0
           ~reason ());
      note_failed t)
    t.queue;
  Queue.clear t.queue;
  Obs.set t.g_queue 0.

let run_pending t =
  let rec go () =
    if Signals.tripped t.cfg.cancel then begin
      t.draining <- true;
      fail_queued t "daemon interrupted"
    end
    else
      match Queue.take_opt t.queue with
      | None -> ()
      | Some job ->
        Obs.set t.g_queue (float_of_int (Queue.length t.queue));
        run_job t job;
        go ()
  in
  go ()

let drain t =
  t.draining <- true;
  run_pending t;
  t.cfg.emit (Protocol.drained ~done_:t.jobs_done ~failed:t.jobs_failed ())

let request ?v t = function
  | Protocol.Submit job -> submit t job
  | Protocol.Health -> emit_health ?v t
  | Protocol.Drain -> t.draining <- true

(* One reader domain feeds a mutex-protected inbox so the main loop can
   interleave job execution with request ingestion (and notice a drain or
   signal between jobs). The reader blocks in [input_line]; it is never
   joined — process exit reaps it. *)
type inbox = {
  mu : Mutex.t;
  lines : string Queue.t;
  mutable eof : bool;
}

let serve cfg ic =
  let t = create cfg in
  let inbox = { mu = Mutex.create (); lines = Queue.create (); eof = false } in
  let _reader : unit Domain.t =
    Domain.spawn (fun () ->
        let rec loop () =
          match input_line ic with
          | line ->
            Mutex.lock inbox.mu;
            Queue.add line inbox.lines;
            Mutex.unlock inbox.mu;
            loop ()
          | exception End_of_file ->
            Mutex.lock inbox.mu;
            inbox.eof <- true;
            Mutex.unlock inbox.mu
        in
        loop ())
  in
  let pop () =
    Mutex.lock inbox.mu;
    let line = Queue.take_opt inbox.lines in
    let eof = inbox.eof in
    Mutex.unlock inbox.mu;
    (line, eof)
  in
  let rec loop () =
    if Signals.tripped cfg.cancel then begin
      t.draining <- true;
      fail_queued t "daemon interrupted";
      cfg.emit (Protocol.drained ~done_:t.jobs_done ~failed:t.jobs_failed ())
    end
    else
      match pop () with
      | Some line, _ ->
        (match Protocol.request_of_line line with
        | Ok (req, v) -> request ~v t req
        | Error reason -> cfg.emit (Protocol.rejected ~id:None ~reason ()));
        loop ()
      | None, eof -> (
        if eof then t.draining <- true;
        match Queue.take_opt t.queue with
        | Some job ->
          Obs.set t.g_queue (float_of_int (Queue.length t.queue));
          run_job t job;
          loop ()
        | None ->
          if t.draining then
            cfg.emit
              (Protocol.drained ~done_:t.jobs_done ~failed:t.jobs_failed ())
          else begin
            (* idle: nothing queued, input still open *)
            cfg.sleep 0.02;
            loop ()
          end)
  in
  loop ()
