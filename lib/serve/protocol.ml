let schema = "cspm-checkd/2"
let schema_v1 = "cspm-checkd/1"

type version = V1 | V2

let schema_of_version = function V1 -> schema_v1 | V2 -> schema

type script_source = Inline of string | Path of string

type kind =
  | Check
  | Trace_check of {
      corpus : string;
      specs : string list;
      dbc : string option;
    }

type job = {
  id : string;
  source : script_source;
  kind : kind;
  version : version;
  deadline_s : float option;
  workers : int;
  max_states : int option;
  max_retries : int option;
  reductions : string option;
  lint : bool;
  deny_warnings : bool;
}

type request = Submit of job | Health | Drain

let request_of_line line =
  let open Obs.Json in
  match parse line with
  | Error msg -> Error ("request is not JSON: " ^ msg)
  | Ok json -> (
    let str k = Option.bind (member k json) to_str in
    let int k = Option.bind (member k json) to_int in
    let bool k =
      match member k json with Some (Bool b) -> b | _ -> false
    in
    let num k =
      match member k json with Some (Num f) -> Some f | _ -> None
    in
    let version =
      match str "schema" with
      | Some s when String.equal s schema -> Ok V2
      | Some s when String.equal s schema_v1 -> Ok V1
      | Some s ->
        Error
          (Printf.sprintf "unsupported schema %S (want %S or %S)" s schema
             schema_v1)
      (* A schema-less request is a v1 client unless it uses a v2-only
         field — "kind" did not exist in cspm-checkd/1. *)
      | None -> Ok (if member "kind" json = None then V1 else V2)
    in
    match version with
    | Error _ as e -> e
    | Ok version -> (
      match str "op" with
      | Some "health" -> Ok (Health, version)
      | Some "drain" -> Ok (Drain, version)
      | Some "submit" -> (
        match str "id" with
        | None -> Error "submit needs a string \"id\""
        | Some id -> (
          let kind =
            match str "kind" with
            | None | Some "check" -> Ok Check
            | Some "trace-check" when version = V1 ->
              Error
                (Printf.sprintf
                   "trace-check jobs need schema %S (got %S)" schema
                   schema_v1)
            | Some "trace-check" -> (
              match str "corpus" with
              | None -> Error "trace-check needs a string \"corpus\" path"
              | Some corpus -> (
                let dbc = str "dbc" in
                match member "specs" json, str "spec" with
                | Some _, Some _ ->
                  Error "trace-check takes \"specs\" or \"spec\", not both"
                | None, spec ->
                  Ok
                    (Trace_check
                       { corpus; specs = Option.to_list spec; dbc })
                | Some (List items), None ->
                  let rec collect acc = function
                    | [] -> Ok (List.rev acc)
                    | Str s :: rest -> collect (s :: acc) rest
                    | _ -> Error "\"specs\" must be a list of strings"
                  in
                  Result.map
                    (fun specs -> Trace_check { corpus; specs; dbc })
                    (collect [] items)
                | Some _, None ->
                  Error "\"specs\" must be a list of strings"))
            | Some k -> Error (Printf.sprintf "unknown job kind %S" k)
          in
          match kind with
          | Error _ as e -> e
          | Ok kind -> (
            let submit source =
              Ok
                ( Submit
                    {
                      id;
                      source;
                      kind;
                      version;
                      deadline_s = num "deadline_s";
                      workers = Option.value (int "workers") ~default:1;
                      max_states = int "max_states";
                      max_retries = int "max_retries";
                      reductions = str "reductions";
                      lint = bool "lint" || bool "deny_warnings";
                      deny_warnings = bool "deny_warnings";
                    },
                  version )
            in
            match str "script", str "path" with
            | None, None -> Error "submit needs \"script\" or \"path\""
            | Some _, Some _ ->
              Error "submit takes \"script\" or \"path\", not both"
            | Some s, None -> submit (Inline s)
            | None, Some p -> submit (Path p))))
      | Some op -> Error (Printf.sprintf "unknown op %S" op)
      | None -> Error "request has no \"op\""))

let event ?(v = V2) name fields =
  Obs.Json.Obj (("schema", Obs.Json.Str (schema_of_version v))
                :: ("event", Obs.Json.Str name)
                :: fields)

let num n = Obs.Json.Num (float_of_int n)

let accepted ?v ~id ~queue_depth () =
  event ?v "accepted"
    [ "id", Obs.Json.Str id; "queue_depth", num queue_depth ]

let rejected ?v ~id ~reason () =
  event ?v "rejected"
    ((match id with Some id -> [ "id", Obs.Json.Str id ] | None -> [])
    @ [ "reason", Obs.Json.Str reason ])

let started ?v ~id ~attempt () =
  event ?v "started" [ "id", Obs.Json.Str id; "attempt", num attempt ]

let retrying ?v ~id ~attempt ~backoff_s ~resumed () =
  event ?v "retrying"
    [
      "id", Obs.Json.Str id;
      "attempt", num attempt;
      "backoff_s", Obs.Json.Num backoff_s;
      "resumed", Obs.Json.Bool resumed;
    ]

let result ?v ?verdicts ?diagnostics ~id ~attempts ~interrupted ~report () =
  event ?v "result"
    ([ "id", Obs.Json.Str id; "attempts", num attempts ]
    @ (if interrupted then [ "interrupted", Obs.Json.Bool true ] else [])
    @ (match verdicts with
       | Some (streams, accepted, rejected) ->
         [
           "streams", num streams;
           "accepted", num accepted;
           "rejected", num rejected;
         ]
       | None -> [])
    @ (match diagnostics with
       | Some d -> [ "diagnostics", d ]
       | None -> [])
    @ [ "report", report ])

let failed ?v ?diagnostics ~id ~attempts ~reason () =
  event ?v "failed"
    ([
       "id", Obs.Json.Str id;
       "attempts", num attempts;
       "reason", Obs.Json.Str reason;
     ]
    @
    match diagnostics with Some d -> [ "diagnostics", d ] | None -> [])

let health ?v ?cache ~queued ~done_ ~failed ~retries ~draining () =
  event ?v "health"
    ([
       "queued", num queued;
       "done", num done_;
       "failed", num failed;
       "retries", num retries;
       "draining", Obs.Json.Bool draining;
     ]
    @ match cache with Some j -> [ "cache", j ] | None -> [])

let drained ?v ~done_ ~failed () =
  event ?v "drained" [ "done", num done_; "failed", num failed ]
