let schema = "cspm-checkd/1"

type script_source = Inline of string | Path of string

type job = {
  id : string;
  source : script_source;
  deadline_s : float option;
  workers : int;
  max_states : int option;
  max_retries : int option;
  reductions : string option;
}

type request = Submit of job | Health | Drain

let request_of_line line =
  let open Obs.Json in
  match parse line with
  | Error msg -> Error ("request is not JSON: " ^ msg)
  | Ok json -> (
    let str k = Option.bind (member k json) to_str in
    let int k = Option.bind (member k json) to_int in
    let num k =
      match member k json with Some (Num f) -> Some f | _ -> None
    in
    match str "schema" with
    | Some s when not (String.equal s schema) ->
      Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
    | _ -> (
      match str "op" with
      | Some "health" -> Ok Health
      | Some "drain" -> Ok Drain
      | Some "submit" -> (
        match str "id" with
        | None -> Error "submit needs a string \"id\""
        | Some id -> (
          let submit source =
            Ok
              (Submit
                 {
                   id;
                   source;
                   deadline_s = num "deadline_s";
                   workers = Option.value (int "workers") ~default:1;
                   max_states = int "max_states";
                   max_retries = int "max_retries";
                   reductions = str "reductions";
                 })
          in
          match str "script", str "path" with
          | None, None -> Error "submit needs \"script\" or \"path\""
          | Some _, Some _ ->
            Error "submit takes \"script\" or \"path\", not both"
          | Some s, None -> submit (Inline s)
          | None, Some p -> submit (Path p)))
      | Some op -> Error (Printf.sprintf "unknown op %S" op)
      | None -> Error "request has no \"op\""))

let event name fields =
  Obs.Json.Obj (("schema", Obs.Json.Str schema)
                :: ("event", Obs.Json.Str name)
                :: fields)

let num n = Obs.Json.Num (float_of_int n)

let accepted ~id ~queue_depth =
  event "accepted"
    [ "id", Obs.Json.Str id; "queue_depth", num queue_depth ]

let rejected ~id ~reason =
  event "rejected"
    ((match id with Some id -> [ "id", Obs.Json.Str id ] | None -> [])
    @ [ "reason", Obs.Json.Str reason ])

let started ~id ~attempt =
  event "started" [ "id", Obs.Json.Str id; "attempt", num attempt ]

let retrying ~id ~attempt ~backoff_s ~resumed =
  event "retrying"
    [
      "id", Obs.Json.Str id;
      "attempt", num attempt;
      "backoff_s", Obs.Json.Num backoff_s;
      "resumed", Obs.Json.Bool resumed;
    ]

let result ~id ~attempts ~interrupted ~report =
  event "result"
    ([ "id", Obs.Json.Str id; "attempts", num attempts ]
    @ (if interrupted then [ "interrupted", Obs.Json.Bool true ] else [])
    @ [ "report", report ])

let failed ~id ~attempts ~reason =
  event "failed"
    [
      "id", Obs.Json.Str id;
      "attempts", num attempts;
      "reason", Obs.Json.Str reason;
    ]

let health ?cache ~queued ~done_ ~failed ~retries ~draining () =
  event "health"
    ([
       "queued", num queued;
       "done", num done_;
       "failed", num failed;
       "retries", num retries;
       "draining", Obs.Json.Bool draining;
     ]
    @ match cache with Some j -> [ "cache", j ] | None -> [])

let drained ~done_ ~failed =
  event "drained" [ "done", num done_; "failed", num failed ]
