(** The supervised job runner behind [cspm_checkd].

    Jobs arrive as {!Protocol.job} values (from the NDJSON loop of
    {!serve} or programmatically via {!submit}), wait in a bounded queue
    — submissions beyond [queue_limit] are rejected, which is the
    protocol's backpressure — and run one at a time on the calling
    domain, each with its own worker pool as requested.

    The runner dispatches on {!Protocol.kind}: [Check] jobs run the
    refinement engine with the retry/checkpoint machinery below;
    [Trace_check] jobs stream a [can-trace/1] corpus through
    {!Trace_run} — a single pass, so no retries or checkpoints; their
    [result] events embed the ["trace-check/1"] report and carry
    top-level stream/verdict counts.

    A job whose attempt exhausts its wall budget ([deadline_s], the
    per-job watchdog) is retried with exponential backoff and jitter, and
    the retry {e resumes} from the engine checkpoint the interrupted
    attempt left in its resume hint — the checkpoint is round-tripped
    through its JSON codec on the way, so the wire format is exercised on
    every retry. The per-attempt budget doubles each retry, so a
    too-tight first deadline still converges. Retries stop when an
    attempt finishes without a deadline/memory exhaustion or the retry
    budget runs out; whatever outcomes exist then are reported.

    The runner's cancellation token is threaded into every check, so
    tripping it (SIGTERM via {!Signals.install_termination}, or a [drain]
    while a job runs — both only in the binary) interrupts the running
    search at its next poll and the job reports a valid partial result
    marked [interrupted].

    Queue depth, completed/failed/retry counts are published as
    [serve.*] gauges and counters on the runner's [obs] handle. *)

type config = {
  queue_limit : int;  (** submissions beyond this are rejected *)
  default_retries : int;
      (** retry budget for jobs that don't set [max_retries] *)
  backoff_base_s : float;
      (** first backoff; doubles each retry up to [backoff_max_s] *)
  backoff_max_s : float;
  seed : int;
      (** seeds the jitter PRNG — a fixed seed makes retry schedules
          reproducible in tests *)
  max_deadline_factor : float;
      (** cap on the doubling per-attempt budget: no retry's deadline
          ever exceeds the job's original [deadline_s] times this *)
  sleep : float -> unit;
      (** injectable so tests can count backoffs instead of waiting *)
  emit : Obs.Json.t -> unit;  (** one protocol event, one call *)
  obs : Obs.t;
  cancel : Signals.token;
  cache : Csp.Cache.t option;
      (** the LTS cache every job's checks compile through — one shared,
          mutex-guarded store, so a stream of near-duplicate models only
          recompiles what each edit actually changed. Stats appear in
          [health] events and each result's report. *)
  state_dir : string option;
      (** directory for per-job retry checkpoints (as [cspm-checkpoint/1]
          documents, written atomically and durably). A checkpoint is
          spilled before each retry's backoff and refreshed if daemon
          shutdown interrupts a job — so a crash mid-retry leaves a
          resume handle — and removed when the job reaches a terminal
          verdict. [None] keeps checkpoints in memory only. *)
}

val default_config : emit:(Obs.Json.t -> unit) -> config
(** [queue_limit = 16], [default_retries = 2], backoff 50ms..2s,
    [max_deadline_factor = 8.], a fixed seed, [sleep = Unix.sleepf],
    silent obs, a fresh token, no cache, no state dir. *)

type t

val create : config -> t
val queue_depth : t -> int
val draining : t -> bool

val submit : t -> Protocol.job -> unit
(** Enqueue, emitting [accepted] — or [rejected] when the queue is full
    or the runner is draining. Does not run the job. *)

val request : ?v:Protocol.version -> t -> Protocol.request -> unit
(** Apply one protocol request: [Submit] is {!submit}, [Health] emits a
    health event (tagged [v], the version the request arrived under),
    [Drain] stops further admissions. *)

val run_pending : t -> unit
(** Run queued jobs to completion, in order, emitting their events. If
    the cancellation token trips mid-job the running job reports a
    partial [interrupted] result and the rest of the queue is failed
    without running. *)

val drain : t -> unit
(** Stop admissions, {!run_pending}, and emit the final [drained]
    event. *)

val serve : config -> in_channel -> unit
(** The daemon loop: a reader domain ingests NDJSON requests from the
    channel while the calling domain applies them and runs jobs. Returns
    after the queue is drained following a [drain] request, end of input,
    or the cancellation token tripping; the [drained] event is the last
    line emitted. The reader domain is deliberately not joined — it may
    be parked in a blocking read on a channel nothing will ever close. *)
