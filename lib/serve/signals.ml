type token = bool Atomic.t

let create () = Atomic.make false
let trip t = Atomic.set t true
let tripped t = Atomic.get t
let read t () = Atomic.get t

let install_termination t =
  let handle signo =
    (* First signal: degrade gracefully. Second signal of the same kind:
       the default (fatal) behaviour, because this handler is gone. *)
    Sys.set_signal signo Sys.Signal_default;
    Atomic.set t true
  in
  List.iter
    (fun signo -> Sys.set_signal signo (Sys.Signal_handle handle))
    [ Sys.sigint; Sys.sigterm ]
