(** Crash-safe file output.

    Every artifact the tools leave behind (JSON reports, observability
    streams, checkpoints) is written through here: the bytes go to a
    hidden temporary file in the destination's own directory and the
    temporary is renamed over the target only after a clean close. A
    rename within one directory is atomic on POSIX filesystems, so a
    crash, signal, or full disk mid-write leaves either the previous
    file or no file — never a truncated artifact that parses as garbage.

    Writes are also {e durable}: the temporary's data is fsynced before
    the rename and the containing directory is fsynced after it, so once
    {!with_atomic_out} returns, the artifact survives power loss — not
    just process death. (Without the directory sync, the rename itself
    lives only in the page cache.) *)

val with_atomic_out : path:string -> (out_channel -> unit) -> unit
(** [with_atomic_out ~path f] runs [f] on a channel to a fresh temporary
    file next to [path], then renames it over [path]. If [f] raises (or
    the close fails), the temporary is removed and [path] is untouched;
    the exception propagates. *)

val atomic_write : path:string -> string -> unit
(** [atomic_write ~path contents] is [with_atomic_out] of one
    [output_string]. *)

val fsync_count : unit -> int
(** Number of fsync syscalls this module has issued in this process
    (file data and directory syncs both count). A successful
    {!with_atomic_out} increments it by two — the test hook for the
    durability contract above. *)
