type medium =
  | Reliable
  | Intruder
  | Intruder_with_shared_key
  | Lossy

type t = {
  defs : Csp.Defs.t;
  system : Csp.Proc.t;
  medium : medium;
  check_macs : bool;
  alphabet : Csp.Eventset.t;
}

let make_lossy ?(check_macs = true) () =
  let retries = Messages.max_retries in
  let defs = Csp.Defs.create () in
  Messages.declare_lossy defs;
  Agents.define_ecu defs;
  Agents.define_vmg_retry ~retries defs;
  let config = Messages.intruder_config () in
  let medium_name = Security.Intruder.lossy_medium defs config in
  let agents =
    Csp.Proc.inter
      ( Csp.Proc.call ("VMG_RETRY", [ Csp.Expr.int 1; Csp.Expr.int retries ]),
        Csp.Proc.call ("ECU", [ Csp.Expr.int 0; Csp.Expr.bool check_macs ]) )
  in
  (* The VMG's timer synchronizes with the medium's loss signal, so
     [timeout] joins the usual send/recv interface. *)
  let interface = Csp.Eventset.chans [ "send"; "recv"; "timeout" ] in
  let system =
    Csp.Proc.par (agents, interface, Csp.Proc.call (medium_name, []))
  in
  {
    defs;
    system;
    medium = Lossy;
    check_macs;
    alphabet =
      Csp.Eventset.chans
        [ "send"; "recv"; "installed"; "timeout"; "backoff"; "giveup" ];
  }

let make ?(check_macs = true) ?(medium = Reliable) () =
  match medium with
  | Lossy -> make_lossy ~check_macs ()
  | _ ->
  let defs = Csp.Defs.create () in
  Messages.declare defs;
  Agents.define_ecu defs;
  Agents.define_vmg defs;
  let config =
    match medium with
    | Reliable | Intruder | Lossy -> Messages.intruder_config ()
    | Intruder_with_shared_key ->
      Messages.intruder_config
        ~knowledge:[ Messages.attacker_key; Messages.shared_key ] ()
  in
  let medium_proc =
    match medium with
    | Reliable | Lossy ->
      Csp.Proc.call (Security.Intruder.reliable_medium defs config, [])
    | Intruder | Intruder_with_shared_key ->
      Csp.Proc.call (Security.Intruder.define defs config, [])
  in
  let agents = Agents.agents_with ~check_macs ~target:1 ~initial:0 in
  let system = Security.Intruder.compose agents ~medium:medium_proc config in
  {
    defs;
    system;
    medium;
    check_macs;
    alphabet = Csp.Eventset.chans [ "send"; "recv"; "installed" ];
  }

let make_extended () =
  let defs = Csp.Defs.create () in
  Messages.declare_extended defs;
  Agents.define_ecu defs;
  Agents.define_server defs;
  let config = Messages.intruder_config () in
  let medium_proc =
    Csp.Proc.call (Security.Intruder.reliable_medium defs config, [])
  in
  let agents =
    Csp.Proc.inter
      ( Csp.Proc.inter
          ( Csp.Proc.call ("VMG_EXT", []),
            Csp.Proc.call
              ("ECU", [ Csp.Expr.int 0; Csp.Expr.bool true ]) ),
        Csp.Proc.call ("SERVER", [ Csp.Expr.int 1 ]) )
  in
  let system = Security.Intruder.compose agents ~medium:medium_proc config in
  {
    defs;
    system;
    medium = Reliable;
    check_macs = true;
    alphabet = Csp.Eventset.chans [ "send"; "recv"; "installed" ];
  }

let deadlock_result ?config t =
  Csp.Refine.deadlock_free ?config t.defs t.system

let divergence_result ?config t =
  Csp.Refine.divergence_free ?config t.defs t.system
