(** The secure-update requirements of the paper's Table III as executable
    refinement checks, plus the update-authenticity property that the
    attack scenarios (S2) exercise.

    | ID  | Requirement |
    |-----|-------------|
    | R01 | At start of the update process, the VMG sends a software inventory request |
    | R02 | Every inventory request is answered with a software list response (the paper's SP02) |
    | R03 | On receipt of a validly MAC'd apply-update message, the ECU applies the update |
    | R04 | On completion of installation, the ECU sends the update result |
    | R05 | Shared-key authenticity: an update module is installed only if the VMG requested it under the shared key |
*)

type check = {
  id : string;
  description : string;
  result : Csp.Refine.result;
}

val r01 : ?config:Csp.Check_config.t -> Scenario.t -> Csp.Refine.result
val r02 : ?config:Csp.Check_config.t -> Scenario.t -> Csp.Refine.result

val r02_delivered : ?config:Csp.Check_config.t -> Scenario.t -> Csp.Refine.result
(** SP02 observed at the ECU: every {e delivered} inventory request is
    answered before the next one arrives. Equivalent to {!r02} on a
    faithful medium, but robust to retransmission — on the {!Scenario.Lossy}
    medium the retrying VMG may emit [reqSw] twice in a row (so {!r02}
    fails there by construction), yet the delivered-request alternation
    still holds. *)

val r02_liveness : ?config:Csp.Check_config.t -> Scenario.t -> Csp.Refine.result
(** The availability strengthening of R02, checked in the stable-failures
    model: the system must not only never produce a wrong
    request/response order, it must never {e refuse} to continue the
    diagnosis dialogue. Holds on the reliable medium; an intruder medium
    may drop packets, so availability is expected to fail there — the
    classic safety/liveness split the paper's Section IV-A1 alludes to
    ("availability (liveness)"). *)

val r03 : ?config:Csp.Check_config.t -> Scenario.t -> Csp.Refine.result
val r04 : ?config:Csp.Check_config.t -> Scenario.t -> Csp.Refine.result

val r05 : ?config:Csp.Check_config.t -> Scenario.t -> version:int -> Csp.Refine.result
(** Authenticity of installing [version] (checked per version because the
    property is version-indexed). *)

val run_all : ?config:Csp.Check_config.t -> Scenario.t -> check list
(** R01–R04 plus R05 for every version. *)

val all_hold : check list -> bool
val pp_check : Format.formatter -> check -> unit
