(* The scenario factory: mass-produce adversarial OTA trace corpora by
   running the demo network under per-stream fault plans.

   All randomness — fault-plan parameters, the flawed-ECU draw, and the
   fault layer's own injection decisions — derives from one master seed
   through [Fault.Rng] splits, so a corpus is reproducible byte-for-byte
   (the determinism contract the fixed-seed corpus test enforces). One
   simulation runs at a time and its log is streamed straight to the
   writer, so generation is constant-memory in the number of streams. *)

let generator_name = "ota-fault"

type summary = {
  streams : int;
  entries : int;
  faults : int;
  flawed : int;
}

type stream_plan = {
  plan : Canbus.Fault.plan;
  stream_flawed : bool;
}

let draw_plan rng ~flawed_rate =
  let r = Canbus.Fault.Rng.split rng in
  let prob scale = Canbus.Fault.Rng.float r *. scale in
  let babble =
    if Canbus.Fault.Rng.float r < 0.1 then
      Some
        (Canbus.Fault.babble
           ~period_us:(500 + Canbus.Fault.Rng.int r 2000)
           ~count:(10 + Canbus.Fault.Rng.int r 40)
           ())
    else None
  in
  {
    plan =
      Canbus.Fault.plan
        ~seed:(Canbus.Fault.Rng.int r 0x3FFFFFFF)
        ~drop:(prob 0.3) ~corrupt:(prob 0.25) ~delay:(prob 0.3)
        ~delay_us:(100 + Canbus.Fault.Rng.int r 400)
        ~duplicate:(prob 0.2) ?babble ();
    (* the flawed-ECU draw reuses the same per-stream split so adding
       streams never perturbs earlier ones *)
    stream_flawed = Canbus.Fault.Rng.float r < flawed_rate;
  }

let meta_of_plan { plan; stream_flawed } =
  let open Obs.Json in
  Obj
    ([
       ("drop", Num plan.Canbus.Fault.drop);
       ("corrupt", Num plan.Canbus.Fault.corrupt);
       ("delay", Num plan.Canbus.Fault.delay);
       ("duplicate", Num plan.Canbus.Fault.duplicate);
       ("babble", Bool (plan.Canbus.Fault.babble <> None));
     ]
    @ if stream_flawed then [ ("flawed", Bool true) ] else [])

let stream_name i = Printf.sprintf "s%05d" i

let generate ?(seed = 0) ?(streams = 100) ?(until_ms = 400)
    ?(flawed_rate = 0.) ?(embed_dbc = true) ~path () =
  let master = Canbus.Fault.Rng.make seed in
  let header =
    {
      Serve.Trace_io.generator = Some generator_name;
      seed = Some seed;
      dbc = (if embed_dbc then Some Capl_sources.dbc else None);
    }
  in
  Serve.Trace_io.with_writer ~path ~header (fun w ->
      let entries = ref 0 and faults = ref 0 and flawed_n = ref 0 in
      for i = 0 to streams - 1 do
        let sp = draw_plan master ~flawed_rate in
        let stream = stream_name i in
        Serve.Trace_io.write_meta w ~stream (meta_of_plan sp);
        if sp.stream_flawed then incr flawed_n;
        let sim = Capl_sources.simulation ~flawed:sp.stream_flawed () in
        let _fault =
          Canbus.Fault.install (Capl.Simulation.bus sim) sp.plan
        in
        Capl.Simulation.start sim;
        let _events = Capl.Simulation.run ~until_ms sim in
        Canbus.Trace_log.iter (Capl.Simulation.log sim) (fun e ->
            incr entries;
            (match e.Canbus.Trace_log.direction with
             | Canbus.Trace_log.Fault _ -> incr faults
             | _ -> ());
            Serve.Trace_io.write_entry w ~stream e)
      done;
      { streams; entries = !entries; faults = !faults; flawed = !flawed_n })
