(** CSP models of the X.1373 components (paper Fig. 2): the Vehicle Mobile
    Gateway, the target ECU, and (extended scope) the update server.

    These are specification-level implementation models — hand-written
    counterparts of what the extractor produces from CAPL — communicating
    through the directed [send]/[recv] channels so they can be composed
    with the {!Security.Intruder} medium. *)

val define_ecu : Csp.Defs.t -> unit
(** Defines [ECU(v, chk)]: current software version [v]; when [chk] is
    true the ECU verifies the MAC on [reqApp] against the shared key
    (requirements R03/R05) and silently discards forgeries; when false it
    installs any [reqApp] — the deliberately flawed variant. On a valid
    update it performs [installed.w], reports [rptUpd.w] (R04) and
    continues at version [w]. [reqSw] is always answered with
    [rptSw.v] (R02). Stray packets are ignored. *)

val define_vmg : Csp.Defs.t -> unit
(** Defines [VMG(target)]: diagnose ([reqSw]/[rptSw], R01/R02), then if
    the reported version differs from [target], request the update with a
    MAC under the shared key (R03) and await [rptUpd] (R04); repeats. *)

val define_vmg_retry : ?retries:int -> Csp.Defs.t -> unit
(** Defines [VMG_RETRY(target, n)] (and its helper [VMG_UPDATE]): the
    {!define_vmg} campaign made robust against a lossy network (requires
    {!Messages.declare_lossy}). Every request arms a timer synchronized
    with the medium's [timeout]; a timed-out request is retried after an
    observable [backoff.k] event, at most [retries] (default
    {!Messages.max_retries}) times in a row; exhausting the budget
    performs [giveup] and stops. Completing an exchange resets the
    budget. *)

val define_server : Csp.Defs.t -> unit
(** Extended scope only (after {!Messages.declare_extended}): defines
    [SERVER(latest)] answering [diagnose] with [update_check.latest] and
    granting [update.v.mac] on request, and [VMG_EXT] relaying between
    server and ECU. *)

val agents : Csp.Proc.t
(** [VMG(1) ||| ECU(0, true)] — the secure demonstration pair. *)

val agents_with : check_macs:bool -> target:int -> initial:int -> Csp.Proc.t
