(** Message and data-type declarations for the ITU-T X.1373 over-the-air
    software-update case study (paper Section V, Table II).

    The diagnose/update exchange of Table II is modelled at the
    specification level with directed channels in the Ryan–Schneider
    style:

    - [send.src.dst.packet] — a component hands a packet to the network;
    - [recv.dst.packet] — the network delivers a packet;
    - [installed.v] — the ECU-internal observable "update module v was
      applied" event (requirement R03);

    and a finite packet datatype
    [Packet = reqSw | rptSw.Ver | reqApp.Ver.Mac | rptUpd.Ver] where [Mac]
    terms are the symbolic [mac.key.k.ver] values of {!Security.Crypto},
    so the Dolev-Yao intruder's derivability rules apply directly. The
    extended X.1373 message set of the paper's future work (diagnose /
    update_check / update / update_report with the update server) is
    declared by {!declare_extended}. *)

val versions : int
(** Software versions range over [{0..versions-1}] (2). *)

val shared_key : Csp.Value.t
(** [key.kShared] — the OEM/vehicle shared key of requirement R05. *)

val attacker_key : Csp.Value.t
(** [key.kAtt] — a key the attacker owns (for forged MACs). *)

val mac : Csp.Value.t -> int -> Csp.Value.t
(** [mac k v] is the symbolic MAC of version [v] under [k]. *)

(** Packet constructors. *)

val req_sw : Csp.Value.t
val rpt_sw : int -> Csp.Value.t
val req_app : int -> Csp.Value.t -> Csp.Value.t
(** [req_app v m]: apply update module [v], authenticated by MAC [m]. *)

val rpt_upd : int -> Csp.Value.t

val vmg : Csp.Value.t
val ecu : Csp.Value.t
val server : Csp.Value.t

val declare : Csp.Defs.t -> unit
(** Declare [Ver], [KeyName], [Key], [Mac], [Packet], [Agent] (vmg, ecu)
    and channels [send], [recv], [installed]. *)

val declare_extended : Csp.Defs.t -> unit
(** Also declare the update server agent and the four extended message
    types ([diagnose], [update_check], [update], [update_report]) used by
    the server/VMG leg. Call instead of {!declare}. *)

val max_retries : int
(** Retry budget of the timeout-aware VMG (2). *)

val declare_lossy : Csp.Defs.t -> unit
(** {!declare} plus the channels of the lossy-network scenario:
    [timeout] (the medium lost a packet), [backoff.n] (the VMG's [n]-th
    back-off before retrying, [n < max_retries]) and [giveup] (retry
    budget exhausted). Call instead of {!declare}. *)

val intruder_config :
  ?knowledge:Csp.Value.t list -> unit -> Security.Intruder.config
(** Channels wired to [send]/[recv]; default knowledge is the attacker's
    own key plus all public packet parts (no shared key). *)
