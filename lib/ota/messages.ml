module V = Csp.Value
module T = Csp.Ty

let versions = 2

let shared_key = Security.Crypto.key "kShared"
let attacker_key = Security.Crypto.key "kAtt"
let mac k v = Security.Crypto.mac k (V.Int v)

let req_sw = V.sym "reqSw"
let rpt_sw v = V.Ctor ("rptSw", [ V.Int v ])
let req_app v m = V.Ctor ("reqApp", [ V.Int v; m ])
let rpt_upd v = V.Ctor ("rptUpd", [ V.Int v ])

let vmg = V.sym "vmg"
let ecu = V.sym "ecu"
let server = V.sym "server"

let ver_ty = T.Named "Ver"

let declare_common defs ~agents ~packet_ctors =
  Csp.Defs.declare_nametype defs "Ver" (T.Int_range (0, versions - 1));
  Csp.Defs.declare_datatype defs "KeyName" [ "kShared", []; "kAtt", [] ];
  Csp.Defs.declare_datatype defs "Key" [ "key", [ T.Named "KeyName" ] ];
  Csp.Defs.declare_datatype defs "Mac" [ "mac", [ T.Named "Key"; ver_ty ] ];
  Csp.Defs.declare_datatype defs "Packet" packet_ctors;
  Csp.Defs.declare_datatype defs "Agent" agents;
  Csp.Defs.declare_channel defs "send"
    [ T.Named "Agent"; T.Named "Agent"; T.Named "Packet" ];
  Csp.Defs.declare_channel defs "recv" [ T.Named "Agent"; T.Named "Packet" ];
  Csp.Defs.declare_channel defs "installed" [ ver_ty ]

let basic_packets =
  [
    "reqSw", [];
    "rptSw", [ ver_ty ];
    "reqApp", [ ver_ty; T.Named "Mac" ];
    "rptUpd", [ ver_ty ];
  ]

let declare defs =
  declare_common defs
    ~agents:[ "vmg", []; "ecu", [] ]
    ~packet_ctors:basic_packets

let max_retries = 2

let declare_lossy defs =
  declare defs;
  Csp.Defs.declare_channel defs "timeout" [];
  Csp.Defs.declare_channel defs "backoff" [ T.Int_range (0, max_retries - 1) ];
  Csp.Defs.declare_channel defs "giveup" []

let declare_extended defs =
  declare_common defs
    ~agents:[ "vmg", []; "ecu", []; "server", [] ]
    ~packet_ctors:
      (basic_packets
       @ [
           "diagnose", [];
           "update_check", [ ver_ty ];
           "update", [ ver_ty; T.Named "Mac" ];
           "update_report", [ ver_ty ];
         ])

let intruder_config ?knowledge () =
  let default_knowledge =
    (* the attacker owns kAtt and knows the public protocol vocabulary;
       the shared key is NOT known (requirement R05) *)
    [ attacker_key; req_sw ]
  in
  {
    Security.Intruder.send_chan = "send";
    recv_chan = "recv";
    knowledge = Option.value ~default:default_knowledge knowledge;
  }
