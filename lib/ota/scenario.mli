(** Assembled case-study systems: agents plus a medium, ready to check.

    A scenario corresponds to one cell of the paper's evaluation space:
    secure/flawed ECU × reliable network / Dolev-Yao intruder (optionally
    with a leaked shared key). *)

type medium =
  | Reliable  (** faithful delivery — the no-attacker baseline *)
  | Intruder  (** Dolev-Yao attacker owning [kAtt] but not the shared key *)
  | Intruder_with_shared_key  (** compromised-key variant *)

type t = {
  defs : Csp.Defs.t;
  system : Csp.Proc.t;  (** agents [|{send,recv}|] medium *)
  medium : medium;
  check_macs : bool;
  alphabet : Csp.Eventset.t;  (** send, recv, installed *)
}

val make : ?check_macs:bool -> ?medium:medium -> unit -> t
(** Fresh environment with {!Messages.declare}, both agents, the chosen
    medium, and the composed system ([VMG(1) ||| ECU(0, chk)] against the
    medium). Defaults: [check_macs = true], [medium = Reliable]. *)

val make_extended : unit -> t
(** The future-work scope: server + VMG_EXT + ECU over a reliable medium,
    with the extended message set. *)

val deadlock_result : ?max_states:int -> t -> Csp.Refine.result
val divergence_result : ?max_states:int -> t -> Csp.Refine.result
