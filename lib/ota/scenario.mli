(** Assembled case-study systems: agents plus a medium, ready to check.

    A scenario corresponds to one cell of the paper's evaluation space:
    secure/flawed ECU × reliable network / Dolev-Yao intruder (optionally
    with a leaked shared key) / lossy network with a retrying VMG. *)

type medium =
  | Reliable  (** faithful delivery — the no-attacker baseline *)
  | Intruder  (** Dolev-Yao attacker owning [kAtt] but not the shared key *)
  | Intruder_with_shared_key  (** compromised-key variant *)
  | Lossy
      (** packet-dropping network ({!Security.Intruder.lossy_medium})
          paired with the timeout/backoff/giveup VMG
          ({!Agents.define_vmg_retry}) *)

type t = {
  defs : Csp.Defs.t;
  system : Csp.Proc.t;  (** agents [|{send,recv}|] medium *)
  medium : medium;
  check_macs : bool;
  alphabet : Csp.Eventset.t;  (** send, recv, installed *)
}

val make : ?check_macs:bool -> ?medium:medium -> unit -> t
(** Fresh environment with {!Messages.declare}, both agents, the chosen
    medium, and the composed system ([VMG(1) ||| ECU(0, chk)] against the
    medium). Defaults: [check_macs = true], [medium = Reliable].
    [~medium:Lossy] delegates to {!make_lossy}. *)

val make_lossy : ?check_macs:bool -> unit -> t
(** The degraded-network cell: {!Messages.declare_lossy},
    [VMG_RETRY(1, max_retries) ||| ECU(0, chk)] synchronized with the
    lossy medium on [{| send, recv, timeout |}]. The scenario alphabet
    additionally contains [backoff] and [giveup]. *)

val make_extended : unit -> t
(** The future-work scope: server + VMG_EXT + ECU over a reliable medium,
    with the extended message set. *)

val deadlock_result : ?config:Csp.Check_config.t -> t -> Csp.Refine.result
val divergence_result : ?config:Csp.Check_config.t -> t -> Csp.Refine.result
