module P = Csp.Proc
module E = Csp.Expr
module V = Csp.Value

type check = {
  id : string;
  description : string;
  result : Csp.Refine.result;
}

(* ------------------------------------------------------------------ *)
(* Event vocabulary                                                    *)
(* ------------------------------------------------------------------ *)

let valid_req_app w = Messages.req_app w (Messages.mac Messages.shared_key w)

let ev_vmg_req_sw =
  Csp.Event.event "send" [ Messages.vmg; Messages.ecu; Messages.req_sw ]

let ev_ecu_rpt_sw v =
  Csp.Event.event "send" [ Messages.ecu; Messages.vmg; Messages.rpt_sw v ]

let ev_vmg_req_app w =
  Csp.Event.event "send" [ Messages.vmg; Messages.ecu; valid_req_app w ]

let ev_ecu_rpt_upd w =
  Csp.Event.event "send" [ Messages.ecu; Messages.vmg; Messages.rpt_upd w ]

let ev_recv_valid_app w =
  Csp.Event.event "recv" [ Messages.ecu; valid_req_app w ]

let ev_installed w = Csp.Event.event "installed" [ V.Int w ]

let is_send_from agent (e : Csp.Event.t) =
  String.equal e.Csp.Event.chan "send"
  && match e.Csp.Event.args with
     | src :: _ -> V.equal src agent
     | [] -> false

let is_installed (e : Csp.Event.t) = String.equal e.Csp.Event.chan "installed"

let all_events (s : Scenario.t) = Csp.Defs.events_of s.Scenario.defs s.Scenario.alphabet

(* External choice over concrete events, each continuing via [k]. *)
let choice_over events k =
  P.ext_all
    (List.map (fun e -> P.send e.Csp.Event.chan e.Csp.Event.args (k e)) events)

let versions = List.init Messages.versions Fun.id

(* ------------------------------------------------------------------ *)
(* R01: the first VMG transmission is the inventory request            *)
(* ------------------------------------------------------------------ *)

let r01 ?config (s : Scenario.t) =
  let defs = Csp.Defs.copy s.Scenario.defs in
  let all = all_events s in
  let free_events =
    List.filter (fun e -> not (is_send_from Messages.vmg e)) all
  in
  let body =
    P.ext
      ( choice_over free_events (fun _ -> P.call ("R01", [])),
        P.send "send"
          [ Messages.vmg; Messages.ecu; Messages.req_sw ]
          (P.run s.Scenario.alphabet) )
  in
  Csp.Defs.define_proc defs "R01" [] body;
  Csp.Refine.traces_refines ?config defs ~spec:(P.call ("R01", []))
    ~impl:s.Scenario.system

(* ------------------------------------------------------------------ *)
(* R02: SP02 — request/response alternation (paper Section V-B)        *)
(* ------------------------------------------------------------------ *)

let r02 ?config (s : Scenario.t) =
  let defs = Csp.Defs.copy s.Scenario.defs in
  let interesting =
    ev_vmg_req_sw :: List.map ev_ecu_rpt_sw versions
  in
  let hidden = Csp.Eventset.diff s.Scenario.alphabet (Csp.Eventset.events interesting) in
  let impl = P.hide (s.Scenario.system, hidden) in
  let responses =
    choice_over (List.map ev_ecu_rpt_sw versions) (fun _ -> P.call ("SP02", []))
  in
  let body =
    P.send "send" [ Messages.vmg; Messages.ecu; Messages.req_sw ] responses
  in
  Csp.Defs.define_proc defs "SP02" [] body;
  Csp.Refine.traces_refines ?config defs ~spec:(P.call ("SP02", [])) ~impl

let ev_ecu_recv_req_sw =
  Csp.Event.event "recv" [ Messages.ecu; Messages.req_sw ]

(* SP02 observed at the ECU instead of at the VMG's send point: a lossy
   network may force the VMG to send [reqSw] several times in a row (each
   retry is a fresh send), so the alternation that survives faults is
   "every *delivered* request is answered before the next delivery". The
   ECU is sequential, so this is exactly the paper's SP02 seen from the
   responder's side. *)
let r02_delivered ?config (s : Scenario.t) =
  let defs = Csp.Defs.copy s.Scenario.defs in
  let interesting =
    ev_ecu_recv_req_sw :: List.map ev_ecu_rpt_sw versions
  in
  let hidden =
    Csp.Eventset.diff s.Scenario.alphabet (Csp.Eventset.events interesting)
  in
  let impl = P.hide (s.Scenario.system, hidden) in
  let responses =
    choice_over (List.map ev_ecu_rpt_sw versions) (fun _ ->
        P.call ("SP02D", []))
  in
  let body =
    P.send "recv" [ Messages.ecu; Messages.req_sw ] responses
  in
  Csp.Defs.define_proc defs "SP02D" [] body;
  Csp.Refine.traces_refines ?config defs ~spec:(P.call ("SP02D", [])) ~impl

let r02_liveness ?config (s : Scenario.t) =
  let defs = Csp.Defs.copy s.Scenario.defs in
  let interesting = ev_vmg_req_sw :: List.map ev_ecu_rpt_sw versions in
  let hidden =
    Csp.Eventset.diff s.Scenario.alphabet (Csp.Eventset.events interesting)
  in
  let impl = P.hide (s.Scenario.system, hidden) in
  (* the response version is the system's choice (internal choice), but a
     response must come: the spec's acceptances are the singletons
     {rptSw.v}, so a stable state refusing every response violates *)
  let responses =
    match
      List.map
        (fun e ->
          P.send e.Csp.Event.chan e.Csp.Event.args (P.call ("SP02L", [])))
        (List.map ev_ecu_rpt_sw versions)
    with
    | [] -> P.stop
    | first :: rest -> List.fold_left (fun acc b -> P.intc (acc, b)) first rest
  in
  let body =
    P.send "send" [ Messages.vmg; Messages.ecu; Messages.req_sw ] responses
  in
  Csp.Defs.define_proc defs "SP02L" [] body;
  Csp.Refine.failures_refines ?config defs ~spec:(P.call ("SP02L", []))
    ~impl

(* ------------------------------------------------------------------ *)
(* R03: a validly MAC'd reqApp is applied before the ECU does anything
   else                                                                *)
(* ------------------------------------------------------------------ *)

let r03 ?config (s : Scenario.t) =
  let defs = Csp.Defs.copy s.Scenario.defs in
  let all = all_events s in
  let valid_deliveries = List.map ev_recv_valid_app versions in
  let is_valid_delivery e =
    List.exists (Csp.Event.equal e) valid_deliveries
  in
  let quiet =
    List.filter (fun e -> not (is_valid_delivery e)) all
  in
  let waiting_ok w =
    (* while the ECU applies w, everything except ECU activity and further
       valid deliveries may happen *)
    List.filter
      (fun e ->
        (not (is_send_from Messages.ecu e))
        && (not (is_installed e))
        && not (is_valid_delivery e))
      all
    |> fun evs -> evs, ev_installed w
  in
  List.iter
    (fun w ->
      let evs, inst = waiting_ok w in
      Csp.Defs.define_proc defs (Printf.sprintf "R03WAIT%d" w) []
        (P.ext
           ( P.send inst.Csp.Event.chan inst.Csp.Event.args (P.call ("R03", [])),
             choice_over evs (fun _ ->
                 P.call (Printf.sprintf "R03WAIT%d" w, [])) )))
    versions;
  let body =
    P.ext
      ( choice_over quiet (fun _ -> P.call ("R03", [])),
        choice_over valid_deliveries (fun e ->
            match e.Csp.Event.args with
            | [ _; V.Ctor ("reqApp", [ V.Int w; _ ]) ] ->
              P.call (Printf.sprintf "R03WAIT%d" w, [])
            | _ -> invalid_arg "Requirements.r03: unexpected event shape") )
  in
  Csp.Defs.define_proc defs "R03" [] body;
  Csp.Refine.traces_refines ?config defs ~spec:(P.call ("R03", []))
    ~impl:s.Scenario.system

(* ------------------------------------------------------------------ *)
(* R04: installation is followed by the update report                  *)
(* ------------------------------------------------------------------ *)

let r04 ?config (s : Scenario.t) =
  let defs = Csp.Defs.copy s.Scenario.defs in
  let all = all_events s in
  let quiet = List.filter (fun e -> not (is_installed e)) all in
  List.iter
    (fun w ->
      let report = ev_ecu_rpt_upd w in
      let waiting =
        List.filter
          (fun e -> (not (is_send_from Messages.ecu e)) && not (is_installed e))
          all
      in
      Csp.Defs.define_proc defs (Printf.sprintf "R04WAIT%d" w) []
        (P.ext
           ( P.send report.Csp.Event.chan report.Csp.Event.args
               (P.call ("R04", [])),
             choice_over waiting (fun _ ->
                 P.call (Printf.sprintf "R04WAIT%d" w, [])) )))
    versions;
  let body =
    P.ext
      ( choice_over quiet (fun _ -> P.call ("R04", [])),
        choice_over (List.map ev_installed versions) (fun e ->
            match e.Csp.Event.args with
            | [ V.Int w ] -> P.call (Printf.sprintf "R04WAIT%d" w, [])
            | _ -> invalid_arg "Requirements.r04: unexpected event shape") )
  in
  Csp.Defs.define_proc defs "R04" [] body;
  Csp.Refine.traces_refines ?config defs ~spec:(P.call ("R04", []))
    ~impl:s.Scenario.system

(* ------------------------------------------------------------------ *)
(* R05: update authenticity under the shared-key assumption            *)
(* ------------------------------------------------------------------ *)

let r05 ?config (s : Scenario.t) ~version =
  let defs = Csp.Defs.copy s.Scenario.defs in
  let spec =
    Security.Properties.precedes defs ~alphabet:s.Scenario.alphabet
      ~trigger:(ev_vmg_req_app version) ~guarded:(ev_installed version)
  in
  Csp.Refine.traces_refines ?config defs ~spec ~impl:s.Scenario.system

let run_all ?config s =
  let checks =
    [
      ( "R01",
        "VMG starts the update process with a software inventory request",
        r01 ?config s );
      ( "R02",
        "every inventory request is answered with a software list (SP02)",
        r02 ?config s );
      ( "R03",
        "a validly MAC'd apply-update message is applied by the ECU",
        r03 ?config s );
      ( "R04",
        "completed installations are reported with an update result",
        r04 ?config s );
    ]
    @ List.map
        (fun w ->
          ( Printf.sprintf "R05v%d" w,
            Printf.sprintf
              "version %d is installed only on a shared-key request" w,
            r05 ?config s ~version:w ))
        versions
  in
  List.map
    (fun (id, description, result) -> { id; description; result })
    checks

let all_hold checks =
  List.for_all (fun c -> Csp.Refine.holds c.result) checks

let pp_check ppf c =
  let status = if Csp.Refine.holds c.result then "PASS" else "FAIL" in
  Format.fprintf ppf "@[<v 2>[%s] %s: %s@ %a@]" status c.id c.description
    Csp.Refine.pp_result c.result
