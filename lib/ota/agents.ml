module P = Csp.Proc
module E = Csp.Expr

let ver_set = E.Ty_dom (Csp.Ty.Named "Ver")
let mac_set = E.Ty_dom (Csp.Ty.Named "Mac")

let evmg = E.sym "vmg"
let eecu = E.sym "ecu"
let eserver = E.sym "server"

let e_req_sw = E.sym "reqSw"
let e_rpt_sw v = E.Ctor ("rptSw", [ v ])
let e_req_app v m = E.Ctor ("reqApp", [ v; m ])
let e_rpt_upd v = E.Ctor ("rptUpd", [ v ])
let e_mac k v = E.Ctor ("mac", [ k; v ])
let e_shared_key = E.Ctor ("key", [ E.sym "kShared" ])

(* send.src.dst.p / recv.dst.p *)
let send src dst p cont =
  P.prefix_items ("send", [ P.Out src; P.Out dst; P.Out p ], cont)

let recv dst p cont = P.prefix_items ("recv", [ P.Out dst; P.Out p ], cont)

let define_ecu defs =
  (* ECU(v, chk) — see the interface for the behaviour. *)
  let continue_same = P.call ("ECU", [ E.Var "v"; E.Var "chk" ]) in
  let diagnose =
    recv eecu e_req_sw
      (send eecu evmg (e_rpt_sw (E.Var "v")) continue_same)
  in
  let apply =
    P.ext_over
      ( "w",
        ver_set,
        P.ext_over
          ( "m",
            mac_set,
            recv eecu
              (e_req_app (E.Var "w") (E.Var "m"))
              (P.ite
                 ( E.Bin
                     ( E.Or,
                       E.Not (E.Var "chk"),
                       E.Bin (E.Eq, E.Var "m", e_mac e_shared_key (E.Var "w"))
                     ),
                   P.prefix_items
                     ( "installed",
                       [ P.Out (E.Var "w") ],
                       send eecu evmg (e_rpt_upd (E.Var "w"))
                         (P.call ("ECU", [ E.Var "w"; E.Var "chk" ])) ),
                   continue_same )) ) )
  in
  let ignore_stray =
    P.ext
      ( P.ext_over
          ("w", ver_set, recv eecu (e_rpt_sw (E.Var "w")) continue_same),
        P.ext_over
          ("w", ver_set, recv eecu (e_rpt_upd (E.Var "w")) continue_same) )
  in
  Csp.Defs.define_proc defs "ECU" [ "v"; "chk" ]
    (P.ext (P.ext (diagnose, apply), ignore_stray))

let define_vmg defs =
  (* VMG(target) — diagnose, update if behind, repeat. *)
  let restart = P.call ("VMG", [ E.Var "target" ]) in
  let await_report =
    P.ext_over
      ("u", ver_set, recv evmg (e_rpt_upd (E.Var "u")) restart)
  in
  let update =
    send evmg eecu
      (e_req_app (E.Var "target") (e_mac e_shared_key (E.Var "target")))
      await_report
  in
  let body =
    send evmg eecu e_req_sw
      (P.ext_over
         ( "w",
           ver_set,
           recv evmg (e_rpt_sw (E.Var "w"))
             (P.ite (E.Bin (E.Eq, E.Var "w", E.Var "target"), restart, update))
         ))
  in
  Csp.Defs.define_proc defs "VMG" [ "target" ] body

let define_server defs =
  (* SERVER(latest): X.1373 extended exchange with the VMG. *)
  let continue_ = P.call ("SERVER", [ E.Var "latest" ]) in
  let diagnose =
    recv eserver (E.sym "diagnose")
      (send eserver evmg
         (E.Ctor ("update_check", [ E.Var "latest" ]))
         continue_)
  in
  let grant =
    P.ext_over
      ( "w",
        ver_set,
        recv eserver
          (E.Ctor ("update_check", [ E.Var "w" ]))
          (send eserver evmg
             (E.Ctor ("update", [ E.Var "latest"; e_mac e_shared_key (E.Var "latest") ]))
             continue_) )
  in
  let log_report =
    P.ext_over
      ( "u",
        ver_set,
        recv eserver (E.Ctor ("update_report", [ E.Var "u" ])) continue_ )
  in
  Csp.Defs.define_proc defs "SERVER" [ "latest" ]
    (P.ext (P.ext (diagnose, grant), log_report));
  (* VMG_EXT: ask the server what is current, then run the vehicle-side
     campaign against the ECU with the granted update. *)
  let report =
    P.ext_over
      ( "u",
        ver_set,
        recv evmg (e_rpt_upd (E.Var "u"))
          (send evmg eserver
             (E.Ctor ("update_report", [ E.Var "u" ]))
             (P.call ("VMG_EXT", []))) )
  in
  let forward_update =
    P.ext_over
      ( "v",
        ver_set,
        P.ext_over
          ( "m",
            mac_set,
            recv evmg
              (E.Ctor ("update", [ E.Var "v"; E.Var "m" ]))
              (send evmg eecu (e_req_app (E.Var "v") (E.Var "m")) report) ) )
  in
  let after_check =
    send evmg eserver
      (E.Ctor ("update_check", [ E.Var "latest" ]))
      forward_update
  in
  let vmg_ext =
    send evmg eserver (E.sym "diagnose")
      (P.ext_over
         ( "latest",
           ver_set,
           recv evmg (E.Ctor ("update_check", [ E.Var "latest" ])) after_check
         ))
  in
  Csp.Defs.define_proc defs "VMG_EXT" [] vmg_ext

let define_vmg_retry ?(retries = Messages.max_retries) defs =
  (* VMG_RETRY(target, n) — the VMG hardened for a lossy network: every
     request arms a timer; on [timeout] the request is retried after an
     observable [backoff], at most [retries] times in a row, after which
     the VMG performs [giveup] and stops. A completed exchange resets the
     budget. *)
  let fresh = E.int retries in
  let decrement = E.Bin (E.Sub, E.Var "n", E.int 1) in
  (* timeout -> (n > 0 & backoff.(retries - n) -> retry) [] (n == 0 & giveup -> STOP) *)
  let on_timeout retry =
    P.prefix_items
      ( "timeout",
        [],
        P.ext
          ( P.guard
              ( E.Bin (E.Gt, E.Var "n", E.int 0),
                P.prefix_items
                  ( "backoff",
                    [ P.Out (E.Bin (E.Sub, fresh, E.Var "n")) ],
                    retry ) ),
            P.guard
              ( E.Bin (E.Eq, E.Var "n", E.int 0),
                P.prefix_items ("giveup", [], P.stop) ) ) )
  in
  let restart = P.call ("VMG_RETRY", [ E.Var "target"; fresh ]) in
  let update_fresh = P.call ("VMG_UPDATE", [ E.Var "target"; fresh ]) in
  let await_report =
    P.ext_over ("u", ver_set, recv evmg (e_rpt_upd (E.Var "u")) restart)
  in
  Csp.Defs.define_proc defs "VMG_UPDATE" [ "target"; "n" ]
    (send evmg eecu
       (e_req_app (E.Var "target") (e_mac e_shared_key (E.Var "target")))
       (P.ext
          ( await_report,
            on_timeout (P.call ("VMG_UPDATE", [ E.Var "target"; decrement ]))
          )));
  let await_inventory =
    P.ext_over
      ( "w",
        ver_set,
        recv evmg (e_rpt_sw (E.Var "w"))
          (P.ite
             (E.Bin (E.Eq, E.Var "w", E.Var "target"), restart, update_fresh))
      )
  in
  Csp.Defs.define_proc defs "VMG_RETRY" [ "target"; "n" ]
    (send evmg eecu e_req_sw
       (P.ext
          ( await_inventory,
            on_timeout (P.call ("VMG_RETRY", [ E.Var "target"; decrement ]))
          )))

let agents_with ~check_macs ~target ~initial =
  P.inter
    ( P.call ("VMG", [ E.int target ]),
      P.call ("ECU", [ E.int initial; E.bool check_macs ]) )

let agents = agents_with ~check_macs:true ~target:1 ~initial:0
