(** Adversarial OTA trace corpora: the fault-injection layer as a
    scenario factory.

    Each stream of the corpus is one run of the paper's demonstration
    network (VMG + target ECU) under a randomly drawn {!Canbus.Fault}
    plan — drops, corruption, delay, duplication, the occasional
    babbling idiot, and (at [flawed_rate]) the tag-skipping flawed ECU.
    Every draw derives from the master [seed] via [Fault.Rng] splits,
    one split per stream, so corpora are byte-identical across runs of
    the same seed and adding streams never changes earlier ones.

    Output is a [can-trace/1] file ({!Serve.Trace_io}) with the demo
    CAN database embedded in the header (unless [embed_dbc:false]), so
    a corpus is self-contained: [cspm_tracecheck check] needs only the
    spec script. Each stream opens with a [meta] line recording its
    fault plan — the ground truth the EXPERIMENTS walkthrough compares
    verdict rates against. *)

type summary = {
  streams : int;
  entries : int;  (** total trace-log entries written *)
  faults : int;  (** entries recording injected faults *)
  flawed : int;  (** streams that ran the flawed (no-tag-check) ECU *)
}

val generator_name : string
(** ["ota-fault"], the header's [generator] tag. *)

val stream_name : int -> string
(** ["s%05d"] — the corpus stream identifier of stream [i]. *)

val generate :
  ?seed:int ->
  ?streams:int ->
  ?until_ms:int ->
  ?flawed_rate:float ->
  ?embed_dbc:bool ->
  path:string ->
  unit ->
  summary
(** Write a corpus of [streams] (default 100) runs of [until_ms]
    (default 400) simulated milliseconds each to [path], atomically and
    durably. One simulation is alive at a time and its log streams
    straight to disk — generation is constant-memory in [streams]. *)
