let dbc =
  "VERSION \"1.0\"\n\
   BU_: VMG ECU\n\
   BO_ 257 reqSw: 1 VMG\n\
   \ SG_ ping : 0|2@1+ (1,0) [0|3] \"\" ECU\n\
   BO_ 513 rptSw: 1 ECU\n\
   \ SG_ version : 0|3@1+ (1,0) [0|7] \"\" VMG\n\
   BO_ 258 reqApp: 2 VMG\n\
   \ SG_ version : 0|3@1+ (1,0) [0|7] \"\" ECU\n\
   \ SG_ tag : 8|3@1+ (1,0) [0|7] \"\" ECU\n\
   BO_ 514 rptUpd: 1 ECU\n\
   \ SG_ version : 0|3@1+ (1,0) [0|7] \"\" VMG\n\
   CM_ BO_ 257 \"software inventory request (diagnose)\";\n\
   CM_ BO_ 513 \"software list response\";\n\
   CM_ BO_ 258 \"apply update module, authenticated by tag\";\n\
   CM_ BO_ 514 \"software update result\";\n"

let shared_secret = 5
let checksum v = (v + shared_secret) mod 8

let vmg =
  Printf.sprintf
    {q|
// Vehicle Mobile Gateway: drives the X.1373 diagnose/update exchange.
variables {
  message reqSw mReq;
  message reqApp mApp;
  msTimer retry;
  int target = 1;    // version this campaign installs
}

on start {
  mReq.ping = 1;
  output(mReq);
  setTimer(retry, 50);
}

on timer retry {
  // diagnosis was lost: ask again
  mReq.ping = 1;
  output(mReq);
  setTimer(retry, 50);
}

on message rptSw {
  cancelTimer(retry);
  if (this.version < target) {
    mApp.version = target;
    mApp.tag = (target + %d) %% 8;   // MAC under the shared secret
    output(mApp);
  }
}

on message rptUpd {
  write("update complete, ECU now at version %%d", this.version);
}
|q}
    shared_secret

let ecu_template ~check =
  Printf.sprintf
    {q|
// Target ECU: update module per ITU-T X.1373.
variables {
  message rptSw mList;
  message rptUpd mResult;
  int version = 0;   // installed software version
}

int valid(int v, int tag) {
  return tag == (v + %d) %% 8;
}

on message reqSw {
  mList.version = version;
  output(mList);
}

on message reqApp {
%s
}
|q}
    shared_secret
    (if check then
       "  if (valid(this.version, this.tag)) {\n\
       \    version = this.version;\n\
       \    mResult.version = version;\n\
       \    output(mResult);\n\
       \  }"
     else
       "  version = this.version;\n\
       \  mResult.version = version;\n\
       \  output(mResult);")

let ecu = ecu_template ~check:true
let ecu_nocheck = ecu_template ~check:false

let sources = [ "VMG", vmg; "ECU", ecu ]
let sources_flawed = [ "VMG", vmg; "ECU", ecu_nocheck ]

let build_system ?(flawed = false) () =
  Extractor.Pipeline.build_from_sources ~dbc
    (if flawed then sources_flawed else sources)

let simulation ?(flawed = false) () =
  let db = Candb.To_capl.msgdb (Candb.Dbc_parser.parse dbc) in
  Capl.Simulation.of_sources ~db
    (if flawed then sources_flawed else sources)
