(** The demonstration network of the paper's Fig. 2 as concrete artifacts:
    a CAN database and CAPL sources for the VMG and target ECU nodes,
    implementing the Table II message exchange with a shared-secret
    checksum standing in for the MAC (CAPL has no crypto library; the
    checksum preserves the authentication structure — a forger who does
    not know [shared_secret] cannot produce a valid tag for a new
    version).

    These sources feed the whole Fig. 1 workflow: they run on the CAN
    simulator through the CAPL interpreter, and they translate through the
    model extractor into the CSPm script of Fig. 3. *)

val dbc : string
(** CAN database: [reqSw] (0x101), [rptSw] (0x201), [reqApp] (0x102,
    signals [version], [tag]), [rptUpd] (0x202). *)

val shared_secret : int
(** The checksum key both legitimate nodes hold (requirement R05). *)

val checksum : int -> int
(** [checksum v = (v + shared_secret) mod 8] — the stand-in MAC. *)

val vmg : string
(** CAPL source of the Vehicle Mobile Gateway node: diagnoses on start
    (and cyclically on a timer), requests the update when the ECU is
    behind the target version, logs the result. *)

val ecu : string
(** CAPL source of the target ECU: answers diagnosis, verifies the tag,
    applies the update, reports the result. *)

val ecu_nocheck : string
(** The flawed ECU: skips tag verification (the security bug the checker
    must find). *)

val sources : (string * string) list
(** [("VMG", vmg); ("ECU", ecu)]. *)

val sources_flawed : (string * string) list

val build_system : ?flawed:bool -> unit -> Extractor.Pipeline.system
(** Run the extractor over the demo ([flawed] picks {!ecu_nocheck}). *)

val simulation : ?flawed:bool -> unit -> Capl.Simulation.t
(** The same sources attached to a simulated bus. *)
