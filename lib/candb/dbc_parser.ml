exception Parse_error of string * int

let fail line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (s, line))) fmt

(* Tokenize one record: identifiers/numbers, quoted strings and the
   punctuation DBC uses. *)
type tok =
  | Word of string
  | Str of string
  | Punct of char

let tokenize lineno s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '-' || c = '+'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '"' do
        incr i
      done;
      if !i >= n then fail lineno "unterminated string";
      toks := Str (String.sub s start (!i - start)) :: !toks;
      incr i
    end
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word s.[!i] do
        incr i
      done;
      toks := Word (String.sub s start (!i - start)) :: !toks
    end
    else begin
      toks := Punct c :: !toks;
      incr i
    end
  done;
  List.rev !toks

let int_of_word lineno w =
  match int_of_string_opt w with
  | Some n -> n
  | None -> fail lineno "expected an integer, got %s" w

let float_of_word lineno w =
  match float_of_string_opt w with
  | Some f -> f
  | None -> fail lineno "expected a number, got %s" w

(* SG_ name [mux] : start|len@order sign (factor,offset) [min|max] "unit" rcv,rcv *)
let parse_signal lineno toks =
  let name, mux, rest =
    match toks with
    | Word name :: Word mux :: Punct ':' :: rest
      when String.length mux > 0 && (mux.[0] = 'm' || mux.[0] = 'M') ->
      name, Some mux, rest
    | Word name :: Punct ':' :: rest -> name, None, rest
    | _ -> fail lineno "malformed SG_ record"
  in
  match rest with
  | Word start :: Punct '|' :: Word len :: Punct '@' :: Word order_sign :: rest
    ->
    let byte_order, signed =
      match order_sign with
      | "1+" -> Dbc_ast.Little_endian, false
      | "1-" -> Dbc_ast.Little_endian, true
      | "0+" -> Dbc_ast.Big_endian, false
      | "0-" -> Dbc_ast.Big_endian, true
      | _ -> fail lineno "malformed byte order/sign %s" order_sign
    in
    let factor, offset, rest =
      match rest with
      | Punct '(' :: Word f :: Punct ',' :: Word o :: Punct ')' :: rest ->
        float_of_word lineno f, float_of_word lineno o, rest
      | _ -> fail lineno "expected (factor,offset)"
    in
    let minimum, maximum, rest =
      match rest with
      | Punct '[' :: Word mn :: Punct '|' :: Word mx :: Punct ']' :: rest ->
        float_of_word lineno mn, float_of_word lineno mx, rest
      | _ -> fail lineno "expected [min|max]"
    in
    let unit, rest =
      match rest with
      | Str u :: rest -> u, rest
      | _ -> fail lineno "expected a unit string"
    in
    let receivers =
      List.filter_map
        (function
          | Word w -> Some w
          | Punct ',' -> None
          | _ -> None)
        rest
    in
    {
      Dbc_ast.sig_name = name;
      start_bit = int_of_word lineno start;
      length = int_of_word lineno len;
      byte_order;
      signed;
      factor;
      offset;
      minimum;
      maximum;
      unit;
      receivers;
      multiplexing = mux;
    }
  | _ -> fail lineno "malformed SG_ layout"

let parse src =
  let lines = String.split_on_char '\n' src in
  let version = ref None in
  let nodes = ref [] in
  let messages = ref [] in  (* reverse order; signals attach to the head *)
  let value_tables = ref [] in
  let comments = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let trimmed = String.trim line in
      if trimmed = "" then ()
      else begin
        let toks = tokenize lineno trimmed in
        match toks with
        | Word "VERSION" :: Str v :: _ -> version := Some v
        | Word "BU_" :: Punct ':' :: rest ->
          nodes :=
            List.filter_map (function Word w -> Some w | _ -> None) rest
        | Word "BO_" :: Word id :: Word name :: Punct ':' :: Word dlc
          :: Word sender :: _ ->
          (* BO_ may write "name:" without space; tokenizer splits on ':' *)
          messages :=
            {
              Dbc_ast.msg_id = int_of_word lineno id;
              msg_name = name;
              dlc = int_of_word lineno dlc;
              sender;
              signals = [];
            }
            :: !messages
        | Word "BO_" :: _ -> fail lineno "malformed BO_ record"
        | Word "SG_" :: rest ->
          (match !messages with
           | [] -> fail lineno "SG_ record before any BO_"
           | m :: ms ->
             let s = parse_signal lineno rest in
             messages :=
               { m with Dbc_ast.signals = m.Dbc_ast.signals @ [ s ] } :: ms)
        | Word "VAL_" :: Word id :: Word sig_name :: rest ->
          let rec pairs acc = function
            | Word v :: Str label :: rest ->
              pairs ((int_of_word lineno v, label) :: acc) rest
            | Punct ';' :: _ | [] -> List.rev acc
            | _ -> fail lineno "malformed VAL_ entries"
          in
          value_tables :=
            {
              Dbc_ast.vt_msg_id = int_of_word lineno id;
              vt_sig_name = sig_name;
              entries = pairs [] rest;
            }
            :: !value_tables
        | Word "CM_" :: rest ->
          let target, text =
            match rest with
            | Word "BU_" :: Word node :: Str text :: _ ->
              Dbc_ast.Node node, text
            | Word "BO_" :: Word id :: Str text :: _ ->
              Dbc_ast.Message (int_of_word lineno id), text
            | Word "SG_" :: Word id :: Word sg :: Str text :: _ ->
              Dbc_ast.Signal (int_of_word lineno id, sg), text
            | Str text :: _ -> Dbc_ast.Network, text
            | _ -> fail lineno "malformed CM_ record"
          in
          comments := { Dbc_ast.target; text } :: !comments
        (* Skip the numerous record types a model extractor ignores. *)
        | Word
            ( "NS_" | "BS_" | "BA_" | "BA_DEF_" | "BA_DEF_DEF_" | "EV_"
            | "VAL_TABLE_" | "SIG_VALTYPE_" | "SGTYPE_" | "CAT_" | "FILTER"
            | "NS_DESC_" | "CM_ENV_" )
          :: _ ->
          ()
        | Word _ :: _ | Punct _ :: _ | Str _ :: _ -> ()
        | [] -> ()
      end)
    lines;
  {
    Dbc_ast.version = !version;
    nodes = !nodes;
    messages = List.rev !messages;
    value_tables = List.rev !value_tables;
    comments = List.rev !comments;
  }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse content
