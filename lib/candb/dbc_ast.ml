(** Abstract syntax of CAN database ([.dbc]) files — the de-facto standard
    format the paper's Section IV-B2 describes, covering the record types a
    model extractor needs: network nodes ([BU_]), message frames ([BO_]),
    signals ([SG_]), value tables ([VAL_]) and comments ([CM_]). *)

type byte_order =
  | Little_endian  (** [@1] — Intel *)
  | Big_endian  (** [@0] — Motorola *)

type signal = {
  sig_name : string;
  start_bit : int;
  length : int;
  byte_order : byte_order;
  signed : bool;
  factor : float;
  offset : float;
  minimum : float;
  maximum : float;
  unit : string;
  receivers : string list;
  multiplexing : string option;  (** raw [m0]/[M] indicator if present *)
}

type message = {
  msg_id : int;
  msg_name : string;
  dlc : int;
  sender : string;
  signals : signal list;
}

type value_table = {
  vt_msg_id : int;
  vt_sig_name : string;
  entries : (int * string) list;
}

type comment_target =
  | Network
  | Node of string
  | Message of int
  | Signal of int * string

type comment = {
  target : comment_target;
  text : string;
}

type t = {
  version : string option;
  nodes : string list;  (** [BU_] network nodes *)
  messages : message list;
  value_tables : value_table list;
  comments : comment list;
}

let empty =
  { version = None; nodes = []; messages = []; value_tables = []; comments = [] }

let find_message t id = List.find_opt (fun m -> m.msg_id = id) t.messages

let find_message_by_name t name =
  List.find_opt (fun m -> String.equal m.msg_name name) t.messages

let find_value_table t msg_id sig_name =
  List.find_opt
    (fun vt -> vt.vt_msg_id = msg_id && String.equal vt.vt_sig_name sig_name)
    t.value_tables
