(** Adapter: parsed DBC database → CAPL-facing message database. *)

val signal : Dbc_ast.signal -> Capl.Msgdb.signal
(** Convert one signal's layout (used by frame decoding in conformance
    checks as well as by {!msgdb}). *)

val msgdb : Dbc_ast.t -> Capl.Msgdb.t
(** Raw-value bounds are derived from the physical [min|max] through factor
    and offset when the scaling is integral; otherwise the full bit range
    is used. *)
