let raw_bounds (s : Dbc_ast.signal) =
  (* raw = (phys - offset) / factor; only trust integral conversions *)
  if s.Dbc_ast.factor = 0.0 then 0, 0
  else begin
    let lo = (s.Dbc_ast.minimum -. s.Dbc_ast.offset) /. s.Dbc_ast.factor in
    let hi = (s.Dbc_ast.maximum -. s.Dbc_ast.offset) /. s.Dbc_ast.factor in
    if Float.is_integer lo && Float.is_integer hi then
      int_of_float lo, int_of_float hi
    else 0, 0
  end

let signal (s : Dbc_ast.signal) =
  let minimum, maximum = raw_bounds s in
  {
    Capl.Msgdb.sig_name = s.Dbc_ast.sig_name;
    start_bit = s.Dbc_ast.start_bit;
    length = s.Dbc_ast.length;
    byte_order =
      (match s.Dbc_ast.byte_order with
       | Dbc_ast.Little_endian -> Capl.Msgdb.Little_endian
       | Dbc_ast.Big_endian -> Capl.Msgdb.Big_endian);
    signed = s.Dbc_ast.signed;
    minimum;
    maximum;
  }

let msgdb (db : Dbc_ast.t) =
  Capl.Msgdb.of_messages
    (List.map
       (fun (m : Dbc_ast.message) ->
         {
           Capl.Msgdb.msg_name = m.Dbc_ast.msg_name;
           msg_id = m.Dbc_ast.msg_id;
           msg_dlc = m.Dbc_ast.dlc;
           signals = List.map signal m.Dbc_ast.signals;
         })
       db.Dbc_ast.messages)
