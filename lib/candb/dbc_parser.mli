(** Parser for CAN database ([.dbc]) text.

    Handles the record types in {!Dbc_ast}; unknown record types
    ([BA_], [NS_] blocks, [BS_], [EV_], ...) are skipped, as real-world
    databases carry many vendor attributes a model extractor does not
    need. *)

exception Parse_error of string * int  (** message, line number *)

val parse : string -> Dbc_ast.t
(** @raise Parse_error on malformed [BU_]/[BO_]/[SG_]/[VAL_]/[CM_] records. *)

val parse_file : string -> Dbc_ast.t
(** Read and {!parse} a file. @raise Sys_error on IO failure. *)
