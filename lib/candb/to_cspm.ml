type config = {
  max_domain : int;
  channel_prefix : string;
  use_value_tables : bool;
}

let default_config =
  { max_domain = 256; channel_prefix = ""; use_value_tables = true }

let capitalize s =
  if s = "" then s else String.mapi (fun i c -> if i = 0 then Char.uppercase_ascii c else c) s

let signal_type_name (m : Dbc_ast.message) (s : Dbc_ast.signal) =
  capitalize m.Dbc_ast.msg_name ^ "_" ^ s.Dbc_ast.sig_name

(* The raw range of a signal: prefer database [min|max] (through integral
   scaling), fall back to the bit width. *)
let raw_range (s : Dbc_ast.signal) =
  let by_scaling =
    if s.Dbc_ast.factor = 0.0 then None
    else begin
      let lo = (s.Dbc_ast.minimum -. s.Dbc_ast.offset) /. s.Dbc_ast.factor in
      let hi = (s.Dbc_ast.maximum -. s.Dbc_ast.offset) /. s.Dbc_ast.factor in
      if Float.is_integer lo && Float.is_integer hi && hi > lo then
        Some (int_of_float lo, int_of_float hi)
      else None
    end
  in
  match by_scaling with
  | Some r -> r
  | None ->
    let bits = min s.Dbc_ast.length 30 in
    if s.Dbc_ast.signed then -(1 lsl (bits - 1)), (1 lsl (bits - 1)) - 1
    else 0, (1 lsl bits) - 1

let clamped_range config s =
  let lo, hi = raw_range s in
  if hi - lo + 1 > config.max_domain then 0, config.max_domain - 1, true
  else lo, hi, false

let has_full_value_table ?(config = default_config) (db : Dbc_ast.t)
    (m : Dbc_ast.message) s =
  if not config.use_value_tables then None
  else
    match Dbc_ast.find_value_table db m.Dbc_ast.msg_id s.Dbc_ast.sig_name with
    | None -> None
    | Some vt -> if vt.Dbc_ast.entries = [] then None else Some vt

let abstracted_signals ?(config = default_config) (db : Dbc_ast.t) =
  List.concat_map
    (fun (m : Dbc_ast.message) ->
      List.filter_map
        (fun s ->
          match has_full_value_table ~config db m s with
          | Some _ -> None
          | None ->
            let _, _, clamped = clamped_range config s in
            if clamped then Some (m.Dbc_ast.msg_name, s.Dbc_ast.sig_name)
            else None)
        m.Dbc_ast.signals)
    db.Dbc_ast.messages

let declare ?(config = default_config) (db : Dbc_ast.t) defs =
  List.iter
    (fun (m : Dbc_ast.message) ->
      let field_tys =
        List.map
          (fun s ->
            let ty_name = signal_type_name m s in
            (match has_full_value_table ~config db m s with
             | Some vt ->
               (* enumerated signal: datatype with one constructor per
                  named value *)
               Csp.Defs.declare_datatype defs ty_name
                 (List.map (fun (_, label) -> label, []) vt.Dbc_ast.entries)
             | None ->
               let lo, hi, _ = clamped_range config s in
               Csp.Defs.declare_nametype defs ty_name
                 (Csp.Ty.Int_range (lo, hi)));
            Csp.Ty.Named ty_name)
          m.Dbc_ast.signals
      in
      Csp.Defs.declare_channel defs
        (config.channel_prefix ^ m.Dbc_ast.msg_name)
        field_tys)
    db.Dbc_ast.messages

let to_defs ?config db =
  let defs = Csp.Defs.create () in
  declare ?config db defs;
  defs
