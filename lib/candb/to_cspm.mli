(** DBC → CSPm declaration generation: the "second parser and model
    generator ... to handle CAN database files, extracting message formats
    as CSPm declarations for data types, name types, and data ranges" the
    paper proposes as future work (Section VIII-A).

    Each message becomes a channel whose fields are its signals; each
    signal becomes a nametype over its raw-value range (clamped by
    [max_domain] — data abstraction keeping the model finite), or a
    datatype when the database carries a complete [VAL_] enumeration for
    it. *)

type config = {
  max_domain : int;
      (** upper bound on any one signal's domain size; larger ranges are
          abstracted to [{0..max_domain-1}] (default 256) *)
  channel_prefix : string;  (** prepended to channel names (default "") *)
  use_value_tables : bool;
      (** emit datatypes for [VAL_]-enumerated signals (default); when
          false every signal becomes an integer nametype, which is what
          the model extractor requires *)
}

val default_config : config

val declare : ?config:config -> Dbc_ast.t -> Csp.Defs.t -> unit
(** Add the database's nametypes/datatypes and channels to an existing
    definition environment.
    @raise Csp.Defs.Duplicate on name collisions. *)

val to_defs : ?config:config -> Dbc_ast.t -> Csp.Defs.t
(** A fresh environment holding only the database's declarations. *)

val signal_type_name : Dbc_ast.message -> Dbc_ast.signal -> string
(** The generated type name for a signal, e.g. [ReqSw_payload]. *)

val clamped_range : config -> Dbc_ast.signal -> int * int * bool
(** The (lo, hi, was_clamped) raw-value range used for a signal's
    nametype; the model extractor wraps output values into it. *)

val abstracted_signals : ?config:config -> Dbc_ast.t -> (string * string) list
(** (message, signal) pairs whose domain was clamped by [max_domain] —
    the documented over-approximation. *)
