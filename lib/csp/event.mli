(** Events and transition labels.

    A visible event is a channel name applied to zero or more ground values,
    e.g. [send.reqSw.0]. Transition labels add the silent action [tau] and
    the termination signal [tick] (the paper's {m \checkmark}). *)

type t = {
  chan : string;
  args : Value.t list;
}

type label =
  | Tau
  | Tick
  | Vis of t

val event : string -> Value.t list -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val equal_label : label -> label -> bool
val compare_label : label -> label -> int
val pp_label : Format.formatter -> label -> unit
val label_to_string : label -> string

val is_visible : label -> bool
(** [tau] and [tick] are not visible; [tick] is nevertheless recorded at the
    end of completed traces, as in the paper's {m \Sigma^{*\checkmark}}. *)
