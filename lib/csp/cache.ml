(* Content-addressed store of compiled/normalised/reduced LTSs.

   Keys are digests of everything that determines the artifact: the
   elaborated process term, every definition/declaration reachable from
   it (so editing one CAPL handler only invalidates the components that
   actually call it), and a fingerprint of the compilation parameters
   (state budget, reduction pipeline, model, and — for reduced graphs —
   the specification digest, since the dead-event pass eliminates events
   against the spec alphabet). Digest and fingerprint construction is
   deliberately confined to this module (tools/lint.ml enforces it) so
   keying cannot silently drift between producers and consumers.

   The store is mutex-guarded — the daemon shares one across jobs, and
   [Cspm.Check.run] schedules independent assertions onto concurrent
   domains — and bounded by resident implementation states with LRU
   eviction. Entries can optionally be spilled to a directory (one file
   per digest, written through an injected atomic writer so the cache
   directory never holds a torn artifact) and reloaded in a later
   process; terms read back from disk lost their physical identity to
   marshalling, so they are re-admitted through the hash-consing smart
   constructors before use. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  resident_states : int;
  resident_entries : int;
}

type persistence = {
  dir : string;
  write : path:string -> string -> unit;
}

type value =
  | Lts_graph of Lts.t  (** a compiled implementation graph *)
  | Norm_spec of Lts.t * Normalise.t
      (** a compiled specification graph with its normal form *)
  | Reduced of Lts.t * Reduce.pass_stat list
      (** an implementation graph after the graph passes of a pipeline *)

type entry = {
  key : string;
  value : value;
  weight : int;  (** resident implementation states of the entry *)
  mutable tick : int;  (** last-use stamp for LRU eviction *)
}

type t = {
  mu : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_resident_states : int;
  persist : persistence option;
  mutable clock : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  c_hits : Obs.counter;
  c_misses : Obs.counter;
  c_evictions : Obs.counter;
  g_resident : Obs.gauge;
}

let create ?(obs = Obs.silent) ?persist
    ?(max_resident_states = 4_000_000) () =
  {
    mu = Mutex.create ();
    table = Hashtbl.create 64;
    max_resident_states;
    persist;
    clock = 0;
    resident = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    c_hits = Obs.counter obs "serve.cache_hits";
    c_misses = Obs.counter obs "serve.cache_misses";
    c_evictions = Obs.counter obs "serve.cache_evictions";
    g_resident = Obs.gauge obs "serve.cache_resident_states";
  }

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      resident_states = t.resident;
      resident_entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.mu;
  s

let json_of_stats (s : stats) =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    [
      "hits", num s.hits;
      "misses", num s.misses;
      "evictions", num s.evictions;
      "resident_states", num s.resident_states;
      "resident_entries", num s.resident_entries;
    ]

(* ------------------------------------------------------------------ *)
(* Keying                                                              *)
(* ------------------------------------------------------------------ *)

(* Names a term can depend on: called processes, applied (or referenced)
   functions. Variables are over-approximated — a bound variable that
   shadows a definition name drags the unused definition into the digest,
   which can only invalidate more than necessary, never less. *)
let rec expr_names acc (e : Expr.t) =
  match e with
  | Expr.Lit _ | Expr.Ty_dom _ -> acc
  | Expr.Var v -> v :: acc
  | Expr.Neg a | Expr.Not a -> expr_names acc a
  | Expr.Bin (_, a, b) | Expr.Range (a, b) | Expr.Mem (a, b) ->
    expr_names (expr_names acc a) b
  | Expr.Tuple es | Expr.Set es | Expr.Ctor (_, es) ->
    List.fold_left expr_names acc es
  | Expr.If (a, b, c) -> expr_names (expr_names (expr_names acc a) b) c
  | Expr.App (f, es) -> List.fold_left expr_names (f :: acc) es

let comm_names acc = function
  | Proc.Out e -> expr_names acc e
  | Proc.In (_, Some e) -> expr_names acc e
  | Proc.In (_, None) -> acc

let rec proc_names acc p =
  match Proc.view p with
  | Proc.Stop | Proc.Skip | Proc.Omega | Proc.Run _ | Proc.Chaos _ -> acc
  | Proc.Prefix (_, items, q) ->
    proc_names (List.fold_left comm_names acc items) q
  | Proc.Ext (a, b)
  | Proc.Int (a, b)
  | Proc.Seq (a, b)
  | Proc.Inter (a, b)
  | Proc.Interrupt (a, b)
  | Proc.Timeout (a, b) ->
    proc_names (proc_names acc a) b
  | Proc.Par (a, _, b) | Proc.APar (a, _, _, b) ->
    proc_names (proc_names acc a) b
  | Proc.Hide (q, _) | Proc.Rename (q, _) -> proc_names acc q
  | Proc.If (e, a, b) -> proc_names (proc_names (expr_names acc e) a) b
  | Proc.Guard (e, q) -> proc_names (expr_names acc e) q
  | Proc.Call (name, args) ->
    name :: List.fold_left expr_names acc args
  | Proc.Ext_over (_, e, q) | Proc.Int_over (_, e, q)
  | Proc.Inter_over (_, e, q) ->
    proc_names (expr_names acc e) q

(* Per-node content digests, memoized on the hash-consed id. Two facts
   make the memo sound: the digest below is computed from node content
   only (tags, literals, and child digests — never ids), and [Proc.id]
   guarantees a dead term's id is only ever reused by a structurally
   identical resurrection, so a stale hit still names the same content.
   The payoff is linearity in the term DAG: rendering a term as a string
   re-renders a shared subterm once per path (the flat event-choice
   specs the security properties build make that milliseconds per key),
   while this walk visits each distinct node once, ever, per process. *)
let node_digests : (int, string) Hashtbl.t = Hashtbl.create 4096
let node_digests_mu = Mutex.create ()

let digest_node root =
  let rec go p =
    match Hashtbl.find_opt node_digests (Proc.id p) with
    | Some d -> d
    | None ->
      let buf = Buffer.create 128 in
      let tag s = Buffer.add_string buf s in
      let child q =
        Buffer.add_char buf ';';
        Buffer.add_string buf (go q)
      in
      let str s =
        Buffer.add_char buf ';';
        Buffer.add_string buf s
      in
      let expr e = str (Expr.to_string e) in
      let set s = str (Eventset.to_string s) in
      let comm = function
        | Proc.Out e ->
          str "!";
          expr e
        | Proc.In (v, None) -> str ("?" ^ v)
        | Proc.In (v, Some e) ->
          str ("?" ^ v ^ ":");
          expr e
      in
      (match Proc.view p with
       | Proc.Stop -> tag "stop"
       | Proc.Skip -> tag "skip"
       | Proc.Omega -> tag "omega"
       | Proc.Prefix (c, items, k) ->
         tag "prefix";
         str c;
         List.iter comm items;
         child k
       | Proc.Ext (a, b) ->
         tag "ext";
         child a;
         child b
       | Proc.Int (a, b) ->
         tag "int";
         child a;
         child b
       | Proc.Seq (a, b) ->
         tag "seq";
         child a;
         child b
       | Proc.Inter (a, b) ->
         tag "inter";
         child a;
         child b
       | Proc.Interrupt (a, b) ->
         tag "interrupt";
         child a;
         child b
       | Proc.Timeout (a, b) ->
         tag "timeout";
         child a;
         child b
       | Proc.Par (a, s, b) ->
         tag "par";
         child a;
         set s;
         child b
       | Proc.APar (a, sa, sb, b) ->
         tag "apar";
         child a;
         set sa;
         set sb;
         child b
       | Proc.Hide (q, s) ->
         tag "hide";
         child q;
         set s
       | Proc.Rename (q, map) ->
         tag "rename";
         child q;
         List.iter (fun (f, t) -> str (f ^ "<-" ^ t)) map
       | Proc.If (e, a, b) ->
         tag "if";
         expr e;
         child a;
         child b
       | Proc.Guard (e, q) ->
         tag "guard";
         expr e;
         child q
       | Proc.Call (name, args) ->
         tag "call";
         str name;
         List.iter expr args
       | Proc.Ext_over (v, e, q) ->
         tag "ext_over";
         str v;
         expr e;
         child q
       | Proc.Int_over (v, e, q) ->
         tag "int_over";
         str v;
         expr e;
         child q
       | Proc.Inter_over (v, e, q) ->
         tag "inter_over";
         str v;
         expr e;
         child q
       | Proc.Run s ->
         tag "run";
         set s
       | Proc.Chaos s ->
         tag "chaos";
         set s);
      let d = Digest.to_hex (Digest.string (Buffer.contents buf)) in
      (* the memo only ever grows; a backstop reset bounds a pathological
         daemon lifetime at the price of re-digesting afterwards *)
      if Hashtbl.length node_digests > 1_000_000 then
        Hashtbl.reset node_digests;
      Hashtbl.replace node_digests (Proc.id p) d;
      d
  in
  Mutex.lock node_digests_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock node_digests_mu)
    (fun () -> go root)

(* The transitive closure of definitions the term can reach, rendered
   deterministically. Channel/datatype/nametype declarations are global
   in a script and cheap to render, so they are folded into every digest
   wholesale: editing a declaration invalidates everything (correct),
   editing one handler body invalidates only its dependents. *)
let add_reachable_defs buf defs roots =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      (match Defs.proc defs name with
       | Some (_, body) -> List.iter visit (proc_names [] body)
       | None -> ());
      match List.assoc_opt name (Defs.funcs defs) with
      | Some (_, body) -> List.iter visit (expr_names [] body)
      | None -> ()
    end
  in
  List.iter visit roots;
  let names = Hashtbl.fold (fun n () acc -> n :: acc) seen [] in
  List.iter
    (fun name ->
      (match Defs.proc defs name with
       | Some (params, body) ->
         Buffer.add_string buf
           (Printf.sprintf "\x00proc %s(%s)=%s" name
              (String.concat "," params)
              (digest_node body))
       | None -> ());
      match List.assoc_opt name (Defs.funcs defs) with
      | Some (params, body) ->
        Buffer.add_string buf
          (Printf.sprintf "\x00fun %s(%s)=%s" name
             (String.concat "," params)
             (Expr.to_string body))
      | None -> ())
    (List.sort String.compare names)

let add_declarations buf defs =
  Buffer.add_string buf
    (Printf.sprintf "\x00domain_limit=%d" (Defs.domain_limit defs));
  List.iter
    (fun (c, tys) ->
      Buffer.add_string buf
        (Printf.sprintf "\x00channel %s:%s" c
           (String.concat "." (List.map Ty.to_string tys))))
    (List.sort compare (Defs.channels defs));
  List.iter
    (fun (name, ctors) ->
      Buffer.add_string buf (Printf.sprintf "\x00datatype %s=" name);
      List.iter
        (fun (c, tys) ->
          Buffer.add_string buf
            (Printf.sprintf "%s(%s)|" c
               (String.concat "," (List.map Ty.to_string tys))))
        ctors)
    (List.sort compare (Defs.datatypes defs));
  List.iter
    (fun (name, ty) ->
      Buffer.add_string buf
        (Printf.sprintf "\x00nametype %s=%s" name (Ty.to_string ty)))
    (List.sort compare (Defs.nametypes defs))

let digest_term defs p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "csp-cache-key/1";
  add_declarations buf defs;
  add_reachable_defs buf defs (proc_names [] p);
  Buffer.add_string buf "\x00term=";
  Buffer.add_string buf (digest_node p);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let script_digest source = Digest.to_hex (Digest.string source)

let spec_key ~max_states defs p =
  Printf.sprintf "norm-%d-%s" max_states (digest_term defs p)

let impl_key ~max_states defs p =
  Printf.sprintf "staged-%d-%s" max_states (digest_term defs p)

let lts_key ~max_states defs p =
  Printf.sprintf "lts-%d-%s" max_states (digest_term defs p)

let model_tag = function
  | `Traces -> "T"
  | `Failures -> "F"
  | `Fd -> "FD"

(* A reduced graph depends on the implementation, the pipeline, the model
   the passes were gated for, and the specification (the dead pass hides
   events against the spec's normal-form alphabet), so all four are in
   the key. [impl] and [spec] are the component keys, which already carry
   the state budget. *)
let reduced_key ~model ~pipeline ~spec ~impl =
  Printf.sprintf "reduced-%s-%s-(%s)-(%s)" (model_tag model)
    (Reduce.fingerprint pipeline) spec impl

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

(* Terms that travelled through [Marshal] are structurally intact but
   physically dead: they are not in the hash-consing table, so [Proc.equal]
   (physical equality) against live terms is always false and the search
   engine's interning would treat every cached state as fresh. Re-admit
   every node bottom-up through the smart constructors; sharing inside the
   marshalled graph is preserved by memoizing on the dead ids (unique
   within one marshalled value). *)
let reintern_proc root =
  let memo = Hashtbl.create 256 in
  let rec go p =
    match Hashtbl.find_opt memo (Proc.id p) with
    | Some q -> q
    | None ->
      let q =
        match Proc.view p with
        | Proc.Stop -> Proc.stop
        | Proc.Skip -> Proc.skip
        | Proc.Omega -> Proc.omega
        | Proc.Prefix (c, items, k) -> Proc.prefix_items (c, items, go k)
        | Proc.Ext (a, b) -> Proc.ext (go a, go b)
        | Proc.Int (a, b) -> Proc.intc (go a, go b)
        | Proc.Seq (a, b) -> Proc.seq (go a, go b)
        | Proc.Par (a, s, b) -> Proc.par (go a, s, go b)
        | Proc.APar (a, sa, sb, b) -> Proc.apar (go a, sa, sb, go b)
        | Proc.Inter (a, b) -> Proc.inter (go a, go b)
        | Proc.Interrupt (a, b) -> Proc.interrupt (go a, go b)
        | Proc.Timeout (a, b) -> Proc.timeout (go a, go b)
        | Proc.Hide (q, s) -> Proc.hide (go q, s)
        | Proc.Rename (q, m) -> Proc.rename (go q, m)
        | Proc.If (e, a, b) -> Proc.ite (e, go a, go b)
        | Proc.Guard (e, q) -> Proc.guard (e, go q)
        | Proc.Call (name, args) -> Proc.call (name, args)
        | Proc.Ext_over (x, e, q) -> Proc.ext_over (x, e, go q)
        | Proc.Int_over (x, e, q) -> Proc.int_over (x, e, go q)
        | Proc.Inter_over (x, e, q) -> Proc.inter_over (x, e, go q)
        | Proc.Run s -> Proc.run s
        | Proc.Chaos s -> Proc.chaos s
      in
      Hashtbl.replace memo (Proc.id p) q;
      q
  in
  go root

let reintern_lts (lts : Lts.t) =
  {
    lts with
    Lts.states = Array.map reintern_proc lts.Lts.states;
  }

(* What goes to disk: the key (revalidated on load — a digest collision
   or a renamed file must read as a miss, not as a wrong graph) and the
   graph(s). [Normalise.t] is not persisted: it is derived from the spec
   graph deterministically and cheaply relative to compilation, so a disk
   hit recomputes it. *)
type disk_value =
  | D_lts of Lts.t
  | D_norm of Lts.t
  | D_reduced of Lts.t * Reduce.pass_stat list

type disk_entry = {
  d_key : string;
  d_value : disk_value;
}

(* Marshal is not portable across compiler versions; the magic ties a
   cache directory to the format that wrote it, and any read failure is
   treated as a miss. *)
let disk_magic = "cspm-lts-cache/1:" ^ Sys.ocaml_version ^ "\n"

let entry_path dir key = Filename.concat dir (key ^ ".ltsc")

let to_disk_value = function
  | Lts_graph lts -> D_lts lts
  | Norm_spec (lts, _) -> D_norm lts
  | Reduced (lts, stats) -> D_reduced (lts, stats)

let of_disk_value = function
  | D_lts lts -> Lts_graph (reintern_lts lts)
  | D_norm lts ->
    let lts = reintern_lts lts in
    Norm_spec (lts, Normalise.normalise lts)
  | D_reduced (lts, stats) -> Reduced (reintern_lts lts, stats)

let persist_store t key value =
  match t.persist with
  | None -> ()
  | Some { dir; write } -> (
    let payload =
      disk_magic ^ Marshal.to_string { d_key = key; d_value = value } []
    in
    try write ~path:(entry_path dir key) payload with Sys_error _ -> ())

let persist_load t key =
  match t.persist with
  | None -> None
  | Some { dir; _ } -> (
    let path = entry_path dir key in
    if not (Sys.file_exists path) then None
    else
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            let magic_len = String.length disk_magic in
            if n < magic_len then None
            else begin
              let magic = really_input_string ic magic_len in
              if not (String.equal magic disk_magic) then None
              else
                let payload = really_input_string ic (n - magic_len) in
                let entry : disk_entry = Marshal.from_string payload 0 in
                if String.equal entry.d_key key then
                  Some (of_disk_value entry.d_value)
                else None
            end)
      with
      | Sys_error _ | End_of_file | Failure _ -> None)

(* ------------------------------------------------------------------ *)
(* The bounded store                                                   *)
(* ------------------------------------------------------------------ *)

let weight_of = function
  | Lts_graph lts | Norm_spec (lts, _) | Reduced (lts, _) ->
    Lts.num_states lts

(* Called under the mutex. Evict least-recently-used entries until the
   resident total fits; an entry heavier than the whole budget is evicted
   as soon as anything else needs room, but never blocks admission — a
   cache that refuses the one graph the workload needs would be useless. *)
let evict_to_fit t incoming =
  let budget = max incoming t.max_resident_states in
  while
    t.resident + incoming > budget && Hashtbl.length t.table > 0
  do
    let victim =
      Hashtbl.fold
        (fun _ e acc ->
          match acc with
          | Some best when best.tick <= e.tick -> acc
          | _ -> Some e)
        t.table None
    in
    match victim with
    | None -> ()
    | Some e ->
      Hashtbl.remove t.table e.key;
      t.resident <- t.resident - e.weight;
      t.evictions <- t.evictions + 1;
      Obs.incr t.c_evictions
  done

let note_hit t =
  t.hits <- t.hits + 1;
  Obs.incr t.c_hits

let note_miss t =
  t.misses <- t.misses + 1;
  Obs.incr t.c_misses

let find t key =
  Mutex.lock t.mu;
  let found =
    match Hashtbl.find_opt t.table key with
    | Some e ->
      t.clock <- t.clock + 1;
      e.tick <- t.clock;
      note_hit t;
      Some e.value
    | None -> None
  in
  Mutex.unlock t.mu;
  match found with
  | Some v -> Some v
  | None -> (
    (* Disk probe outside the lock: deserialising a graph can take longer
       than a search, and concurrent jobs must not serialise on it. A
       racing double-load is admitted once by [add]. *)
    match persist_load t key with
    | Some v ->
      Mutex.lock t.mu;
      note_hit t;
      (if not (Hashtbl.mem t.table key) then begin
         let weight = weight_of v in
         evict_to_fit t weight;
         t.clock <- t.clock + 1;
         Hashtbl.replace t.table key { key; value = v; weight; tick = t.clock };
         t.resident <- t.resident + weight;
         Obs.set t.g_resident (float_of_int t.resident)
       end);
      Mutex.unlock t.mu;
      Some v
    | None ->
      Mutex.lock t.mu;
      note_miss t;
      Mutex.unlock t.mu;
      None)

let add t key value =
  Mutex.lock t.mu;
  (if not (Hashtbl.mem t.table key) then begin
     let weight = weight_of value in
     evict_to_fit t weight;
     t.clock <- t.clock + 1;
     Hashtbl.replace t.table key { key; value; weight; tick = t.clock };
     t.resident <- t.resident + weight;
     Obs.set t.g_resident (float_of_int t.resident)
   end);
  Mutex.unlock t.mu;
  persist_store t key (to_disk_value value)
