(** Explicit labelled transition systems, compiled from process terms by
    breadth-first exploration of the operational semantics. *)

type t = {
  initial : int;
  states : Proc.t array;  (** index to the ground term it denotes *)
  transitions : (Event.label * int) list array;  (** per-state, sorted *)
}

exception State_limit of int
(** Raised by {!compile} when exploration exceeds the state bound; carries
    the bound. *)

type progress = {
  explored : int;  (** states whose transitions were computed *)
  frontier : int;  (** discovered but unexplored states *)
  reason : [ `States | `Deadline ];  (** which budget ran out *)
}

type compile_result =
  | Complete of t
  | Partial of t * progress
      (** Exploration stopped early: the graph covers only the states
          discovered so far (frontier states have empty transition rows,
          and transitions into undiscovered states are dropped). Useful
          for statistics and resumption, not for verdicts. *)

val compile_budgeted :
  ?max_states:int -> ?stop_at:float -> ?obs:Obs.t ->
  Defs.t -> Proc.t -> compile_result
(** Like {!compile} but degrades gracefully: instead of raising, returns
    {!Partial} when the state budget (default [1_000_000]) is exhausted or
    the wall clock passes [stop_at] (absolute time, on the {!Obs.now}
    clock). At least one state is always explored before the deadline is
    consulted, so progress counters are never all zero. [obs] records an
    [lts.compile] span plus state/transition counters. *)

val compile : ?max_states:int -> Defs.t -> Proc.t -> t
(** Compile the reachable state graph of a ground term
    (default [max_states] = [1_000_000]). Transition computation is
    memoized per call.
    @raise State_limit when the state bound is exceeded. *)

val num_states : t -> int
val num_transitions : t -> int

val transitions_of : t -> int -> (Event.label * int) list
val state_term : t -> int -> Proc.t

val initials : t -> int -> Event.label list
(** Labels offered by a state (sorted, deduplicated). *)

val is_stable : t -> int -> bool
(** No outgoing [tau]. *)

val tau_closure : t -> int list -> int list
(** States reachable from the given set via zero or more [tau] steps
    (sorted, deduplicated). *)

val deadlocks : t -> int list
(** Stable states with no transitions at all, excluding terminated
    ([Omega]) states. *)

val path_to : t -> (int -> bool) -> (Event.label list * int) option
(** BFS for the first state satisfying the predicate; returns the label
    path from the initial state. *)

val trace_path_to : t -> (int -> bool) -> (Event.t list * int) option
(** Like {!path_to} but keeps only visible events (the counterexample-trace
    view of the path). *)

val divergences : t -> int list
(** States lying on a [tau]-cycle (each such state can diverge). *)

val pp_stats : Format.formatter -> t -> unit

val to_dot : ?max_label:int -> t -> string
(** Graphviz rendering of the state graph (the visualisation role of the
    FDR GUI): states are numbered nodes (the initial one doubled), edges
    are labelled with their event ([tau] dashed). State terms longer than
    [max_label] characters (default 40) are elided in tooltips. *)
