(* Staged state-space reduction. Three stages, all optional and selected
   by [Check_config.reductions]:

   1. [compile_staged]: decompose the term's parallel structure into a
      tree of lazy combinator nodes (FDR's supercompilation idea). Leaves
      step their small subterms through the operational semantics;
      composition nodes work on integer component-state pairs with
      memoized transition rows and event-indexed synchronisation lookup.
      Only the root's reachable graph is materialized — an interleaving of
      hundreds of two-state intruder cells costs its reachable product,
      never 2^cells, because intermediate nodes are only ever driven by
      root reachability.

   2. [apply]: composable Lts.t -> Lts.t passes (dead-event hiding, tau
      compression, strong-bisimulation quotienting), each obs-instrumented.

   3. [por_hooks]: ample-set partial-order reduction hooks consumed by
      [Search.product] during the search itself.

   Soundness notes are kept with each pass; the passes are gated per
   model by [effective], and reduced counterexamples are re-derived by
   the raw engine in [Refine], so every user-visible verdict and trace is
   identical to the unreduced engine's. *)

type pass = Dead_events | Tau_compress | Bisim | Por
type pipeline = pass list

(* Also the application order: hiding dead events first manufactures taus
   for tau compression, and bisim merges whatever is left. *)
let canonical_order = [ Dead_events; Tau_compress; Bisim; Por ]
let default_pipeline = canonical_order

let pass_name = function
  | Dead_events -> "dead"
  | Tau_compress -> "tau"
  | Bisim -> "bisim"
  | Por -> "por"

let effective ~model pipeline =
  List.filter
    (fun p ->
      List.memq p pipeline
      &&
      match p, model with
      | (Dead_events | Por), `Traces -> true
      (* dead-event hiding changes stability, and the ample conditions
         assume violations are trace violations: traces only *)
      | (Dead_events | Por), (`Failures | `Fd) -> false
      | (Tau_compress | Bisim), _ -> true)
    canonical_order

let pipeline_to_string = function
  | [] -> "none"
  | ps ->
    String.concat ","
      (List.map pass_name (List.filter (fun p -> List.memq p ps) canonical_order))

let fingerprint = pipeline_to_string

let pipeline_of_string s =
  let s = String.trim s in
  if String.equal s "none" || String.equal s "" then Ok []
  else if String.equal s "default" then Ok default_pipeline
  else
    let rec go acc = function
      | [] -> Ok (List.filter (fun p -> List.memq p acc) canonical_order)
      | part :: rest -> (
        match String.trim part with
        | "dead" -> go (Dead_events :: acc) rest
        | "tau" -> go (Tau_compress :: acc) rest
        | "bisim" -> go (Bisim :: acc) rest
        | "por" -> go (Por :: acc) rest
        | other ->
          Error
            (Printf.sprintf
               "unknown reduction %S (expected a comma-separated subset of \
                dead, tau, bisim, por — or none / default)"
               other))
    in
    go [] (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Small shared machinery                                              *)
(* ------------------------------------------------------------------ *)

module Proc_tbl = Hashtbl.Make (struct
  type t = Proc.t

  let equal = Proc.equal
  let hash = Proc.hash
end)

module Label_tbl = Hashtbl.Make (struct
  type t = Event.label

  let equal = Event.equal_label

  let hash = function
    | Event.Tau -> 0x6b1
    | Event.Tick -> 0x3a7
    | Event.Vis e -> Event.hash e
end)

(* Growable array: the state tables of combinator nodes. *)
module Dyn = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 64 dummy; len = 0; dummy }

  let push t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) t.dummy in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let set t i x = t.data.(i) <- x
end

(* Sort a materialized row by (label, target) and deduplicate — the
   invariant of [Semantics.transitions] / [Lts.t]. Inside the combinator
   tree rows stay raw: they are deterministic and duplicate-free by
   construction, and only the root graph's rows are ever handed to
   consumers that rely on the sorted shape. *)
let sort_edges edges =
  List.sort_uniq
    (fun (l1, (j1 : int)) (l2, j2) ->
      let c = Event.compare_label l1 l2 in
      if c <> 0 then c else Int.compare j1 j2)
    edges

(* ------------------------------------------------------------------ *)
(* Staged compilation: lazy combinator tree                            *)
(* ------------------------------------------------------------------ *)

exception Stage_stop of [ `States | `Deadline ]

type env = {
  step : Proc.t -> (Event.label * Proc.t) list;
  defs : Defs.t;
  fenv : Expr.fenv;
  tys : Ty.lookup;
  mutable budget : int;  (* total states across every tree node *)
  mutable ticks : int;
  stop_at : float option;
  cancel : (unit -> bool) option;
}

(* Charged once per interned component state; the wall clock and the
   cancellation token ride the same 256-state cadence as the search
   engine's budget polling. *)
let charge env =
  env.budget <- env.budget - 1;
  if env.budget < 0 then raise (Stage_stop `States);
  env.ticks <- env.ticks + 1;
  if env.ticks land 255 = 0 then begin
    (match env.stop_at with
     | Some t when Obs.now () > t -> raise (Stage_stop `Deadline)
     | _ -> ());
    match env.cancel with
    | Some cancelled when cancelled () -> raise (Stage_stop `Deadline)
    | _ -> ()
  end

(* A combinator node: a lazily explored integer state space. [c_step] is
   memoized per state; [c_term] rebuilds the process term a state denotes
   (for the materialized graph, counterexamples and POR grouping).

   Each transition carries the structural hash of its event (0 for tau
   and tick), computed once when the edge first appears at a leaf and
   propagated through every composition level. Synchronization joins are
   hash joins, and without the annotation they would re-walk the deep
   payload of the same physically-shared event once per composed state
   that exposes it — the dominant cost on intruder-style models whose
   events carry structured packets. *)
type comp = {
  c_initial : int;
  c_step : int -> (Event.label * int * int) list;
  c_term : int -> Proc.t;
}

let label_hash = function
  | Event.Vis e -> Event.hash e
  | Event.Tau | Event.Tick -> 0

(* A leaf steps its subterm through the operational semantics, interning
   the (small) terms it reaches. Laziness is what keeps decomposition
   sound for components whose standalone state space dwarfs their
   synchronized-reachable one: nothing drives a leaf beyond the states the
   whole system visits. *)
let leaf_comp env term0 =
  let ids = Proc_tbl.create 64 in
  let terms = Dyn.create term0 in
  let memo : (Event.label * int * int) list option Dyn.t = Dyn.create None in
  let intern t =
    match Proc_tbl.find_opt ids t with
    | Some i -> i
    | None ->
      charge env;
      let i = terms.Dyn.len in
      Dyn.push terms t;
      Dyn.push memo None;
      Proc_tbl.add ids t i;
      i
  in
  let c_initial = intern term0 in
  let c_step i =
    match Dyn.get memo i with
    | Some ts -> ts
    | None ->
      (* [env.step] already returns sorted, deduplicated rows; this map
         preserves that order, so no re-sort is needed. *)
      let ts =
        List.map
          (fun (l, t) -> l, label_hash l, intern t)
          (env.step (Dyn.get terms i))
      in
      Dyn.set memo i (Some ts);
      ts
  in
  { c_initial; c_step; c_term = (fun i -> Dyn.get terms i) }

(* Typed hash tables for the two hot keys of parallel composition. The
   polymorphic versions funnel every probe through [caml_compare] /
   [caml_hash] on deep values — on packet-carrying events that C-level
   structural walk dominates the whole staged compile. *)
module Pair_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = (a2 : int) && b1 = (b2 : int)
  let hash (a, b) = (a * 65599) + b
end)


(* Parallel composition at the graph level, replicating the term rules of
   [Semantics.par_trans] exactly: free moves (tau always; visible when not
   synchronized and allowed on that side), synchronized moves on equal
   events, and a joint tick to a terminal state. States are pairs of
   component states; (-1, -1) encodes the terminated process Omega. The
   right side's synchronizing transitions are indexed by event once per
   right state, turning the quadratic sync match of the term semantics
   into a hash lookup per left transition. *)
let par_comp env ~sync ~allowed_left ~allowed_right ~mk left right =
  let ids : int Pair_tbl.t = Pair_tbl.create 64 in
  let pairs = Dyn.create (0, 0) in
  let memo = Dyn.create None in
  let intern p =
    match Pair_tbl.find_opt ids p with
    | Some i -> i
    | None ->
      charge env;
      let i = pairs.Dyn.len in
      Dyn.push pairs p;
      Dyn.push memo None;
      Pair_tbl.add ids p i;
      i
  in
  let c_initial = intern (left.c_initial, right.c_initial) in
  (* Join machinery. Both memos are per component state, so the deep
     structural hash of a payload-carrying event is never recomputed per
     pair: edges arrive hash-annotated from the children, [left_plan]
     just filters a state's synchronizing transitions, [right_index]
     buckets the right side's by the annotated hash (int-keyed buckets,
     with [Event.equal] resolving collisions, keep the table itself free
     of deep hashing on probe). *)
  let left_plans : (int, (Event.t * int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let left_plan il =
    match Hashtbl.find_opt left_plans il with
    | Some plan -> plan
    | None ->
      let plan =
        List.filter_map
          (fun (l, h, il') ->
            match l with
            | Event.Vis e when sync e -> Some (e, h, il')
            | Event.Vis _ | Event.Tau | Event.Tick -> None)
          (left.c_step il)
      in
      Hashtbl.replace left_plans il plan;
      plan
  in
  let right_sync : (int, (int, (Event.t * int) list) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let right_index ir =
    match Hashtbl.find_opt right_sync ir with
    | Some idx -> idx
    | None ->
      let idx : (int, (Event.t * int) list) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (l, h, jr) ->
          match l with
          | Event.Vis e when sync e ->
            let entries =
              match Hashtbl.find_opt idx h with
              | Some es -> es
              | None -> []
            in
            Hashtbl.replace idx h ((e, jr) :: entries)
          | Event.Vis _ | Event.Tau | Event.Tick -> ())
        (right.c_step ir);
      Hashtbl.replace right_sync ir idx;
      idx
  in
  (* With only a handful of probes, scanning the right row beats paying
     the index's full-row hashing — the asymmetric case (a few agents
     composed against a bulky intruder) is exactly where index building
     used to dominate. *)
  let scan_join_max = 16 in
  let c_step i =
    match Dyn.get memo i with
    | Some ts -> ts
    | None ->
      let il, ir = Dyn.get pairs i in
      let ts =
        if il < 0 then [] (* Omega *)
        else begin
          let lt = left.c_step il and rt = right.c_step ir in
          let acc = ref [] in
          let plan = left_plan il in
          let scan_join =
            plan <> [] && List.length plan <= scan_join_max
          in
          (* single pass per side: free moves, the scan join and tick
             detection all ride one traversal of each (large) row *)
          let l_tick = ref false in
          List.iter
            (fun (l, h, il') ->
              match l with
              | Event.Tau -> acc := (Event.Tau, 0, intern (il', ir)) :: !acc
              | Event.Tick -> l_tick := true
              | Event.Vis e ->
                if (not (sync e)) && allowed_left e then
                  acc := (l, h, intern (il', ir)) :: !acc)
            lt;
          let r_tick = ref false in
          List.iter
            (fun (l, h, ir') ->
              match l with
              | Event.Tau -> acc := (Event.Tau, 0, intern (il, ir')) :: !acc
              | Event.Tick -> r_tick := true
              | Event.Vis e ->
                if sync e then begin
                  if scan_join then
                    List.iter
                      (fun (el, hl, il') ->
                        (* annotated hashes make most rejections one int
                           compare instead of a structural descent *)
                        if hl = h && Event.equal el e then
                          acc := (l, h, intern (il', ir')) :: !acc)
                      plan
                end
                else if allowed_right e then
                  acc := (l, h, intern (il, ir')) :: !acc)
            rt;
          if (not scan_join) && plan <> [] then begin
            let idx = right_index ir in
            List.iter
              (fun (e, h, il') ->
                match Hashtbl.find_opt idx h with
                | None -> ()
                | Some entries ->
                  List.iter
                    (fun (er, jr) ->
                      if Event.equal e er then
                        acc := (Event.Vis e, h, intern (il', jr)) :: !acc)
                    entries)
              plan
          end;
          if !l_tick && !r_tick then
            acc := (Event.Tick, 0, intern (-1, -1)) :: !acc;
          (* deliberately unsorted: children's rows are deduplicated and
             deterministic, free moves and sync joins cannot introduce
             duplicates, and only the materialized root graph needs the
             canonical edge order. Sorting here again would re-walk deep
             event comparisons at every level of a composition spine —
             the dominant cost on interleavings of many small cells. *)
          !acc
        end
      in
      Dyn.set memo i (Some ts);
      ts
  in
  let c_term i =
    let il, ir = Dyn.get pairs i in
    if il < 0 then Proc.omega else mk (left.c_term il) (right.c_term ir)
  in
  { c_initial; c_step; c_term }

(* Hiding and renaming relabel the inner node's transitions in place —
   they share the inner state space (no new states to charge). A tick
   target denotes Omega in the inner node already, and stays bare Omega
   rather than being wrapped, matching the term semantics. *)
let hide_comp set inner =
  let memo : (int, (Event.label * int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let c_step i =
    match Hashtbl.find_opt memo i with
    | Some ts -> ts
    | None ->
      let ts =
        List.map
          (fun ((l, _, j) as edge) ->
            match l with
            | Event.Vis e when Eventset.mem set e -> Event.Tau, 0, j
            | _ -> edge)
          (inner.c_step i)
      in
      Hashtbl.replace memo i ts;
      ts
  in
  let c_term i =
    let t = inner.c_term i in
    if Proc.equal t Proc.omega then t else Proc.hide (t, set)
  in
  { c_initial = inner.c_initial; c_step; c_term }

let rename_comp mapping inner =
  let memo : (int, (Event.label * int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let c_step i =
    match Hashtbl.find_opt memo i with
    | Some ts -> ts
    | None ->
      let ts =
        List.map
          (fun ((l, _, j) as edge) ->
            match l with
            | Event.Vis e -> (
              match List.assoc_opt e.Event.chan mapping with
              | None -> edge
              | Some chan ->
                let e' = { e with Event.chan } in
                Event.Vis e', Event.hash e', j)
            | Event.Tau | Event.Tick -> edge)
          (inner.c_step i)
      in
      Hashtbl.replace memo i ts;
      ts
  in
  let c_term i =
    let t = inner.c_term i in
    if Proc.equal t Proc.omega then t else Proc.rename (t, mapping)
  in
  { c_initial = inner.c_initial; c_step; c_term }

(* Resolve a named call to its (folded) body so the decomposition can see
   through definitions like SYS = A [|..|] B. Any evaluation problem means
   the call is left as a leaf, where stepping it reports the same error
   the raw engine would. *)
let unfold_call env f args =
  match Defs.proc env.defs f with
  | None -> None
  | Some (params, body) ->
    if List.length params <> List.length args then None
    else (
      try
        let values =
          List.map
            (fun e -> Expr.eval ~tys:env.tys env.fenv Expr.empty_env e)
            args
        in
        let bindings = List.combine params values in
        let resolve x = List.assoc_opt x bindings in
        Some (Proc.const_fold ~tys:env.tys env.fenv (Proc.subst resolve body))
      with Expr.Eval_error _ -> None)

let is_composition p =
  match Proc.view p with
  | Proc.Par _ | Proc.APar _ | Proc.Inter _ | Proc.Hide _ | Proc.Rename _ ->
    true
  | _ -> false

let rec build env depth term =
  match Proc.view term with
  | Proc.Par (p, iface, q) ->
    let l = build env depth p in
    let r = build env depth q in
    par_comp env
      ~sync:(fun e -> Eventset.mem iface e)
      ~allowed_left:(fun _ -> true)
      ~allowed_right:(fun _ -> true)
      ~mk:(fun a b -> Proc.par (a, iface, b))
      l r
  | Proc.APar (p, alpha_a, alpha_b, q) ->
    let l = build env depth p in
    let r = build env depth q in
    par_comp env
      ~sync:(fun e -> Eventset.mem alpha_a e && Eventset.mem alpha_b e)
      ~allowed_left:(fun e -> Eventset.mem alpha_a e)
      ~allowed_right:(fun e -> Eventset.mem alpha_b e)
      ~mk:(fun a b -> Proc.apar (a, alpha_a, alpha_b, b))
      l r
  | Proc.Inter (p, q) ->
    let l = build env depth p in
    let r = build env depth q in
    par_comp env
      ~sync:(fun _ -> false)
      ~allowed_left:(fun _ -> true)
      ~allowed_right:(fun _ -> true)
      ~mk:(fun a b -> Proc.inter (a, b))
      l r
  | Proc.Hide (p, set) -> hide_comp set (build env depth p)
  | Proc.Rename (p, mapping) -> rename_comp mapping (build env depth p)
  | Proc.Call (f, args) when depth < 64 -> (
    match unfold_call env f args with
    | Some body when is_composition body -> build env (depth + 1) body
    | Some _ | None -> leaf_comp env term)
  | _ -> leaf_comp env term

let compile_staged ?(max_states = 1_000_000) ?stop_at ?cancel
    ?(obs = Obs.silent) defs root =
  Obs.span obs "reduce.compile_staged" (fun () ->
      let fenv = Defs.fenv defs in
      let tys = Defs.ty_lookup defs in
      let root = Proc.const_fold ~tys fenv root in
      let env =
        {
          step = Semantics.make_cached ~obs defs;
          defs;
          fenv;
          tys;
          budget = max_states;
          ticks = 0;
          stop_at;
          cancel;
        }
      in
      let c_states = Obs.counter obs "reduce.staged_states" in
      (* BFS-materialize the root node's reachable graph. Dense ids are
         assigned in discovery order, so the rows pushed per dequeue line
         up with them (FIFO: dequeue order = discovery order). *)
      let dense : (int, int) Hashtbl.t = Hashtbl.create 1024 in
      let order = Dyn.create 0 in
      let rows : (Event.label * int) list Dyn.t = Dyn.create [] in
      let queue = Queue.create () in
      let explored = ref 0 in
      match
        let comp = build env 0 root in
        let admit ci =
          match Hashtbl.find_opt dense ci with
          | Some di -> di
          | None ->
            let di = order.Dyn.len in
            Hashtbl.add dense ci di;
            Dyn.push order ci;
            Queue.add ci queue;
            di
        in
        let (_ : int) = admit comp.c_initial in
        while not (Queue.is_empty queue) do
          let ci = Queue.take queue in
          let ts = comp.c_step ci in
          Dyn.push rows (List.map (fun (l, _, cj) -> l, admit cj) ts);
          incr explored
        done;
        comp
      with
      | comp ->
        let n = order.Dyn.len in
        let states =
          Array.init n (fun di -> comp.c_term (Dyn.get order di))
        in
        let transitions =
          Array.init n (fun di -> sort_edges (Dyn.get rows di))
        in
        Obs.add c_states n;
        Lts.Complete { Lts.initial = 0; states; transitions }
      | exception Stage_stop reason ->
        let progress =
          { Lts.explored = !explored; frontier = Queue.length queue; reason }
        in
        Lts.Partial
          ( { Lts.initial = 0; states = [| root |]; transitions = [| [] |] },
            progress ))

(* ------------------------------------------------------------------ *)
(* Graph passes                                                        *)
(* ------------------------------------------------------------------ *)

(* Drop states unreachable from the initial one and renumber densely in
   BFS discovery order. *)
let restrict_reachable (lts : Lts.t) =
  let n = Array.length lts.Lts.states in
  let map = Array.make n (-1) in
  let order = Dyn.create 0 in
  let queue = Queue.create () in
  let admit i =
    if map.(i) < 0 then begin
      map.(i) <- order.Dyn.len;
      Dyn.push order i;
      Queue.add i queue
    end
  in
  admit lts.Lts.initial;
  while not (Queue.is_empty queue) do
    let i = Queue.take queue in
    List.iter (fun (_, j) -> admit j) lts.Lts.transitions.(i)
  done;
  let m = order.Dyn.len in
  if m = n then lts
  else
    {
      Lts.initial = map.(lts.Lts.initial);
      states = Array.init m (fun k -> lts.Lts.states.(Dyn.get order k));
      transitions =
        Array.init m (fun k ->
            sort_edges
              (List.map
                 (fun (l, j) -> l, map.(j))
                 lts.Lts.transitions.(Dyn.get order k)));
    }

(* The labels the specification is insensitive to: visible labels with a
   self-loop at every normal-form node. Such a label can never move the
   spec, cause a violation, or mask one. *)
let spec_free_labels norm =
  let n = Normalise.num_nodes norm in
  let counts = Label_tbl.create 32 in
  for node = 0 to n - 1 do
    List.iter
      (fun (l, j) ->
        match l with
        | Event.Vis _ when j = node ->
          Label_tbl.replace counts l
            (1 + Option.value (Label_tbl.find_opt counts l) ~default:0)
        | _ -> ())
      (Normalise.afters norm node)
  done;
  let free = Label_tbl.create 32 in
  Label_tbl.iter (fun l c -> if c = n then Label_tbl.replace free l ()) counts;
  free

(* Dead-event hiding (traces only): relabel spec-free events to tau. The
   product reachable under the relabelled graph is identical (the spec
   node never moved on these labels anyway), and tau compression can then
   collapse the runs they formed. *)
let hide_dead ~norm (lts : Lts.t) =
  let free = spec_free_labels norm in
  if Label_tbl.length free = 0 then lts
  else
    {
      lts with
      Lts.transitions =
        Array.map
          (fun ts ->
            sort_edges
              (List.map
                 (fun (l, j) ->
                   if Label_tbl.mem free l then Event.Tau, j else l, j)
                 ts))
          lts.Lts.transitions;
    }

(* Tarjan over the tau edges, iterative. Returns the SCC id per state and
   the SCC count; ids follow Tarjan completion order, which is a reverse
   topological order of the condensation (every tau-successor SCC of c
   has an id smaller than c). *)
let tau_sccs (lts : Lts.t) =
  let n = Array.length lts.Lts.states in
  let tau_succs i =
    List.filter_map
      (fun (l, j) -> match l with Event.Tau -> Some j | _ -> None)
      lts.Lts.transitions.(i)
  in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let scc = Array.make n (-1) in
  let counter = ref 0 in
  let nscc = ref 0 in
  let visit root =
    let frames = Stack.create () in
    index.(root) <- !counter;
    low.(root) <- !counter;
    incr counter;
    stack := root :: !stack;
    on_stack.(root) <- true;
    Stack.push (root, tau_succs root) frames;
    while not (Stack.is_empty frames) do
      let v, succs = Stack.pop frames in
      match succs with
      | [] ->
        if low.(v) = index.(v) then begin
          let id = !nscc in
          incr nscc;
          let rec popall () =
            match !stack with
            | w :: rest ->
              stack := rest;
              on_stack.(w) <- false;
              scc.(w) <- id;
              if w <> v then popall ()
            | [] -> ()
          in
          popall ()
        end;
        (match Stack.top_opt frames with
         | Some (parent, _) ->
           if low.(v) < low.(parent) then low.(parent) <- low.(v)
         | None -> ())
      | w :: rest ->
        Stack.push (v, rest) frames;
        if index.(w) < 0 then begin
          index.(w) <- !counter;
          low.(w) <- !counter;
          incr counter;
          stack := w :: !stack;
          on_stack.(w) <- true;
          Stack.push (w, tau_succs w) frames
        end
        else if on_stack.(w) && index.(w) < low.(v) then low.(v) <- index.(w)
    done
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then visit root
  done;
  scc, !nscc

exception Pass_too_big

(* Full tau elimination (traces only): each state adopts the visible
   edges of its tau closure; states only reachable through tau chains
   fall away. Preserves the visible-trace set exactly; discards stability
   and divergence, which the traces model ignores.

   Closures are computed once per tau-SCC over the condensation in
   reverse topological order (SCC ids are already in that order), so the
   pass is linear in the size of its own output. Genuine closure
   blow-ups — the output of tau elimination can be quadratic — abort the
   pass and return the graph unchanged. *)
let tau_eliminate (lts : Lts.t) =
  let n = Array.length lts.Lts.states in
  let scc, nscc = tau_sccs lts in
  let members = Array.make (max 1 nscc) [] in
  for i = n - 1 downto 0 do
    members.(scc.(i)) <- i :: members.(scc.(i))
  done;
  let vis = Array.make (max 1 nscc) [] in
  let work = ref 0 in
  let work_cap = max 1_000_000 (8 * Lts.num_transitions lts) in
  match
    for c = 0 to nscc - 1 do
      let own = ref [] and succs = ref [] in
      List.iter
        (fun i ->
          List.iter
            (fun (l, j) ->
              match l with
              | Event.Tau -> if scc.(j) <> c then succs := scc.(j) :: !succs
              | _ -> own := (l, j) :: !own)
            lts.Lts.transitions.(i))
        members.(c);
      let all =
        List.fold_left
          (fun acc c' -> List.rev_append vis.(c') acc)
          !own
          (List.sort_uniq Int.compare !succs)
      in
      work := !work + List.length all;
      if !work > work_cap then raise Pass_too_big;
      vis.(c) <- sort_edges all
    done
  with
  | () ->
    restrict_reachable
      {
        lts with
        Lts.transitions = Array.init n (fun i -> vis.(scc.(i)));
      }
  | exception Pass_too_big -> lts

(* Failures/FD-safe tau compression: collapse each tau-SCC to its
   smallest member, keeping a tau self-loop on merged representatives so
   instability and divergence survive. Every member of a non-trivial
   tau-SCC is unstable and divergent, and those are exactly the
   properties the failures and FD checks read off tau edges. *)
let tau_scc_collapse (lts : Lts.t) =
  let n = Array.length lts.Lts.states in
  let scc, nscc = tau_sccs lts in
  let size = Array.make (max 1 nscc) 0 in
  Array.iter (fun c -> size.(c) <- size.(c) + 1) scc;
  if not (Array.exists (fun s -> s >= 2) size) then lts
  else begin
    let rep = Array.make nscc max_int in
    for i = n - 1 downto 0 do
      if i < rep.(scc.(i)) then rep.(scc.(i)) <- i
    done;
    let target i = rep.(scc.(i)) in
    let rows = Array.make n [] in
    for i = n - 1 downto 0 do
      let r = target i in
      rows.(r) <-
        List.rev_append
          (List.map (fun (l, j) -> l, target j) lts.Lts.transitions.(i))
          rows.(r)
    done;
    let rows =
      Array.mapi
        (fun i ts ->
          if i = target i then
            let ts =
              if size.(scc.(i)) >= 2 then (Event.Tau, i) :: ts else ts
            in
            sort_edges ts
          else [])
        rows
    in
    restrict_reachable
      {
        Lts.initial = target lts.Lts.initial;
        states = lts.Lts.states;
        transitions = rows;
      }
  end

(* Strong-bisimulation quotient by signature refinement: start from one
   block, repeatedly split blocks by the multiset of (label, target
   block) signatures until the partition is stable — the coarsest strong
   bisimulation. Sound in every model (strong bisimilarity preserves
   traces, failures and divergence). Block ids are assigned in
   first-member order and the smallest member represents each block, so
   the quotient is deterministic. *)
let bisim_state_cap = 50_000

let bisim_quotient (lts : Lts.t) =
  let n = Array.length lts.Lts.states in
  if n <= 1 || n > bisim_state_cap then lts
  else begin
    let labels =
      List.sort_uniq Event.compare_label
        (Array.fold_left
           (fun acc ts -> List.fold_left (fun acc (l, _) -> l :: acc) acc ts)
           [] lts.Lts.transitions)
    in
    let lid = Label_tbl.create 64 in
    List.iteri (fun k l -> Label_tbl.replace lid l k) labels;
    let row =
      Array.map
        (fun ts -> List.map (fun (l, j) -> Label_tbl.find lid l, j) ts)
        lts.Lts.transitions
    in
    let block = Array.make n 0 in
    let nblocks = ref 1 in
    let changed = ref true in
    while !changed do
      let sigs : (int * (int * int) list, int) Hashtbl.t = Hashtbl.create n in
      let next = Array.make n 0 in
      let count = ref 0 in
      for i = 0 to n - 1 do
        let s =
          List.sort_uniq compare
            (List.map (fun (l, j) -> l, block.(j)) row.(i))
        in
        let key = block.(i), s in
        match Hashtbl.find_opt sigs key with
        | Some b -> next.(i) <- b
        | None ->
          let b = !count in
          incr count;
          Hashtbl.replace sigs key b;
          next.(i) <- b
      done;
      if !count = !nblocks then changed := false
      else begin
        Array.blit next 0 block 0 n;
        nblocks := !count
      end
    done;
    if !nblocks = n then lts
    else begin
      let m = !nblocks in
      let rep = Array.make m (-1) in
      for i = n - 1 downto 0 do
        rep.(block.(i)) <- i
      done;
      let states = Array.init m (fun b -> lts.Lts.states.(rep.(b))) in
      let transitions =
        Array.init m (fun b ->
            sort_edges
              (List.map
                 (fun (l, j) -> l, block.(j))
                 lts.Lts.transitions.(rep.(b))))
      in
      { Lts.initial = block.(lts.Lts.initial); states; transitions }
    end
  end

type pass_stat = { pass : string; states_before : int; states_after : int }

let apply ?(obs = Obs.silent) ~model ~norm pipeline lts =
  let run name f (lts, stats) =
    Obs.span obs ("reduce." ^ name) (fun () ->
        let states_before = Lts.num_states lts in
        let lts = f lts in
        let states_after = Lts.num_states lts in
        Obs.add
          (Obs.counter obs ("reduce." ^ name ^ ".states_before"))
          states_before;
        Obs.add
          (Obs.counter obs ("reduce." ^ name ^ ".states_after"))
          states_after;
        lts, { pass = name; states_before; states_after } :: stats)
  in
  let lts, stats =
    List.fold_left
      (fun acc p ->
        match p with
        | Dead_events -> run "dead" (hide_dead ~norm) acc
        | Tau_compress -> (
          match model with
          | `Traces -> run "tau" tau_eliminate acc
          | `Failures | `Fd -> run "tau" tau_scc_collapse acc)
        | Bisim -> run "bisim" bisim_quotient acc
        | Por -> acc (* search-time, see [por_hooks] *))
      (lts, [])
      (effective ~model pipeline)
  in
  lts, List.rev stats

(* ------------------------------------------------------------------ *)
(* Partial-order reduction hooks                                       *)
(* ------------------------------------------------------------------ *)

(* Strip structurally identical Hide/Rename wrappers from both terms so
   the component analysis sees the Inter spine of e.g. (A ||| B) \ H. *)
let rec strip_wrappers t u =
  match Proc.view t, Proc.view u with
  | Proc.Hide (t', s1), Proc.Hide (u', s2) when Eventset.equal s1 s2 ->
    strip_wrappers t' u'
  | Proc.Rename (t', m1), Proc.Rename (u', m2) when m1 = m2 ->
    strip_wrappers t' u'
  | _ -> t, u

let rec flatten_inter t acc =
  match Proc.view t with
  | Proc.Inter (a, b) -> flatten_inter a (flatten_inter b acc)
  | _ -> t :: acc

(* Which interleaved component moved between [t] and [u]? [Some k] only
   when exactly one position of the (equally shaped) Inter spines
   differs — interleaving has no synchronization, so every genuine step
   moves exactly one component. *)
let changed_component t u =
  let t, u = strip_wrappers t u in
  match Proc.view t with
  | Proc.Inter _ ->
    let ct = flatten_inter t [] in
    let cu = flatten_inter u [] in
    if List.length ct <> List.length cu then None
    else begin
      let diffs = ref [] in
      List.iteri
        (fun k (a, b) -> if not (Proc.equal a b) then diffs := k :: !diffs)
        (List.combine ct cu);
      match !diffs with [ k ] -> Some k | _ -> None
    end
  | _ -> None

let por_hooks ~norm lts =
  let free = spec_free_labels norm in
  let por_spec_free = function
    | Event.Tau -> true
    | Event.Tick -> false
    | Event.Vis _ as l -> Label_tbl.mem free l
  in
  let por_groups i =
    match Lts.transitions_of lts i with
    | [] | [ _ ] -> []
    | ts ->
      let t = Lts.state_term lts i in
      let tagged =
        List.map
          (fun (l, j) ->
            match changed_component t (Lts.state_term lts j) with
            | Some k -> Some (k, (l, j))
            | None -> None)
          ts
      in
      if List.exists Option.is_none tagged then []
      else begin
        let module IM = Map.Make (Int) in
        let by_component =
          List.fold_left
            (fun m (k, e) ->
              IM.update k
                (fun prev -> Some (e :: Option.value prev ~default:[]))
                m)
            IM.empty
            (List.filter_map Fun.id tagged)
        in
        List.rev (IM.fold (fun _ es acc -> List.rev es :: acc) by_component [])
      end
  in
  { Search.por_groups; por_spec_free }
