type node = {
  members : int list;  (* sorted, tau-closed *)
  mutable edges : (Event.label * int) list;
  mutable acceptances : Event.label list list;
  mutable divergent : bool;
}

type t = {
  nodes : node array;
  initial : int;
}

module Members_tbl = Hashtbl.Make (struct
  type t = int list
  let equal = List.equal Int.equal
  let hash = Hashtbl.hash
end)

(* The subset construction below leans on the Lts invariant that
   transition rows are sorted by (label, target): merging sorted rows and
   deduplicating adjacent labels replaces map building and re-sorting —
   with their O(n log n) deep label comparisons per node — by single
   linear passes. *)

(* Merge two label-sorted rows, keeping duplicates. *)
let rec merge_rows r1 r2 =
  match r1, r2 with
  | [], r | r, [] -> r
  | ((l1, _) as e1) :: t1, ((l2, _) as e2) :: t2 ->
    if Event.compare_label l1 l2 <= 0 then e1 :: merge_rows t1 r2
    else e2 :: merge_rows r1 t2

(* Distinct labels of a sorted row. *)
let uniq_labels_of_sorted row =
  let rec go = function
    | [] -> []
    | [ (l, _) ] -> [ l ]
    | (l1, _) :: ((l2, _) :: _ as rest) ->
      if Event.equal_label l1 l2 then go rest else l1 :: go rest
  in
  go row

let compare_label_list = List.compare Event.compare_label

(* [a] ⊆ [b] for sorted lists, by parallel descent. *)
let rec subset_sorted a b =
  match a, b with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys ->
    let c = Event.compare_label x y in
    if c = 0 then subset_sorted xs ys
    else if c > 0 then subset_sorted a ys
    else false

(* Keep only minimal sets under inclusion. *)
let minimal_acceptances sets =
  let sets = List.sort_uniq compare_label_list sets in
  List.filter
    (fun a ->
      not
        (List.exists
           (fun b -> compare_label_list a b <> 0 && subset_sorted b a)
           sets))
    sets

let normalise ?(obs = Obs.silent) (lts : Lts.t) =
  Obs.span obs "normalise" (fun () ->
  let diverging = Lts.divergences lts in
  let index = Members_tbl.create 256 in
  let nodes = ref [] in  (* reverse order *)
  let count = ref 0 in
  let queue = Queue.create () in
  let intern members =
    match Members_tbl.find_opt index members with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      let node = { members; edges = []; acceptances = []; divergent = false } in
      Members_tbl.replace index members i;
      nodes := node :: !nodes;
      Queue.add (i, node) queue;
      i
  in
  let initial = intern (Lts.tau_closure lts [ lts.Lts.initial ]) in
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some (_, node) ->
      (* Group non-tau successors of all members by label: merge the
         members' sorted rows, then collect runs of equal labels. Taus
         sort first and are dropped up front; the grouped output stays in
         ascending label order, so the edge list needs no re-sort. *)
      let merged =
        List.fold_left
          (fun acc m -> merge_rows acc (Lts.transitions_of lts m))
          [] node.members
      in
      let rec group = function
        | [] -> []
        | (Event.Tau, _) :: rest -> group rest
        | (l, j) :: rest ->
          let rec take acc = function
            | (l', j') :: rest' when Event.equal_label l' l ->
              take (j' :: acc) rest'
            | rest' -> acc, rest'
          in
          let targets, rest' = take [ j ] rest in
          (l, targets) :: group rest'
      in
      node.edges <-
        List.map
          (fun (l, targets) -> l, intern (Lts.tau_closure lts targets))
          (group merged);
      let stable_inits =
        List.filter_map
          (fun m ->
            if Lts.is_stable lts m then
              Some (uniq_labels_of_sorted (Lts.transitions_of lts m))
            else None)
          node.members
      in
      node.acceptances <- minimal_acceptances stable_inits;
      node.divergent <-
        List.exists (fun m -> List.mem m diverging) node.members;
      drain ()
  in
  drain ();
  Obs.add (Obs.counter obs "normalise.nodes") !count;
  { nodes = Array.of_list (List.rev !nodes); initial })

let initial t = t.initial
let num_nodes t = Array.length t.nodes
let members t i = t.nodes.(i).members
let afters t i = t.nodes.(i).edges

let after t i label =
  List.find_map
    (fun (l, j) -> if Event.equal_label l label then Some j else None)
    t.nodes.(i).edges

let acceptances t i = t.nodes.(i).acceptances

let divergent t i = t.nodes.(i).divergent

let can_terminate t i =
  List.exists
    (fun (l, _) -> match l with Event.Tick -> true | _ -> false)
    t.nodes.(i).edges
