type node = {
  members : int list;  (* sorted, tau-closed *)
  mutable edges : (Event.label * int) list;
  mutable acceptances : Event.label list list;
  mutable divergent : bool;
}

type t = {
  nodes : node array;
  initial : int;
}

module Members_tbl = Hashtbl.Make (struct
  type t = int list
  let equal = List.equal Int.equal
  let hash = Hashtbl.hash
end)

module Label_map = Map.Make (struct
  type t = Event.label
  let compare = Event.compare_label
end)

(* Keep only minimal sets under inclusion. *)
let minimal_acceptances sets =
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  let sets = List.sort_uniq Stdlib.compare sets in
  List.filter
    (fun a ->
      not
        (List.exists (fun b -> (not (Stdlib.compare a b = 0)) && subset b a) sets))
    sets

let normalise ?(obs = Obs.silent) (lts : Lts.t) =
  Obs.span obs "normalise" (fun () ->
  let diverging = Lts.divergences lts in
  let index = Members_tbl.create 256 in
  let nodes = ref [] in  (* reverse order *)
  let count = ref 0 in
  let queue = Queue.create () in
  let intern members =
    match Members_tbl.find_opt index members with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      let node = { members; edges = []; acceptances = []; divergent = false } in
      Members_tbl.replace index members i;
      nodes := node :: !nodes;
      Queue.add (i, node) queue;
      i
  in
  let initial = intern (Lts.tau_closure lts [ lts.Lts.initial ]) in
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some (_, node) ->
      (* Group non-tau successors of all members by label. *)
      let by_label =
        List.fold_left
          (fun acc m ->
            List.fold_left
              (fun acc (l, j) ->
                match l with
                | Event.Tau -> acc
                | Event.Tick | Event.Vis _ ->
                  let old =
                    Option.value ~default:[] (Label_map.find_opt l acc)
                  in
                  Label_map.add l (j :: old) acc)
              acc
              (Lts.transitions_of lts m))
          Label_map.empty node.members
      in
      node.edges <-
        Label_map.fold
          (fun l targets acc -> (l, intern (Lts.tau_closure lts targets)) :: acc)
          by_label []
        |> List.sort (fun (l1, _) (l2, _) -> Event.compare_label l1 l2);
      let stable_inits =
        List.filter_map
          (fun m ->
            if Lts.is_stable lts m then
              Some
                (List.sort_uniq Event.compare_label
                   (List.map fst (Lts.transitions_of lts m)))
            else None)
          node.members
      in
      node.acceptances <- minimal_acceptances stable_inits;
      node.divergent <-
        List.exists (fun m -> List.mem m diverging) node.members;
      drain ()
  in
  drain ();
  Obs.add (Obs.counter obs "normalise.nodes") !count;
  { nodes = Array.of_list (List.rev !nodes); initial })

let initial t = t.initial
let num_nodes t = Array.length t.nodes
let members t i = t.nodes.(i).members
let afters t i = t.nodes.(i).edges

let after t i label =
  List.find_map
    (fun (l, j) -> if Event.equal_label l label then Some j else None)
    t.nodes.(i).edges

let acceptances t i = t.nodes.(i).acceptances

let divergent t i = t.nodes.(i).divergent

let can_terminate t i =
  List.exists
    (fun (l, _) -> match l with Event.Tick -> true | _ -> false)
    t.nodes.(i).edges
