(** Specification normalization: determinization of an LTS by tau-closure
    subset construction, as FDR does before a refinement check.

    Each normal-form node is a tau-closed set of specification states; a
    visible label (or [tick]) leads from one node to the tau-closure of the
    union of its successors. Nodes also carry the minimal acceptance sets of
    their stable member states, which is exactly what the stable-failures
    refinement check needs. *)

type t

val normalise : ?obs:Obs.t -> Lts.t -> t
(** [obs] records a [normalise] span and a node counter. *)

val initial : t -> int
val num_nodes : t -> int

val members : t -> int -> int list
(** The (sorted) underlying LTS states of a node. *)

val afters : t -> int -> (Event.label * int) list
(** Outgoing edges of a node; labels are visible events or [Tick], sorted
    and unique per label. *)

val after : t -> int -> Event.label -> int option
(** Follow one label, if the specification allows it. *)

val acceptances : t -> int -> Event.label list list
(** Minimal acceptance sets: for each stable member state, its initials
    (visible events and [Tick]); dominated (superset) acceptances removed.
    Empty if the node has no stable member. *)

val can_terminate : t -> int -> bool
(** The node has a [Tick] edge. *)

val divergent : t -> int -> bool
(** Some member state of the node lies on a tau cycle — in the
    failures-divergences model everything refines such a node. *)
