(** The product-search engine shared by every refinement check.

    A refinement check explores the product of the implementation's states
    with the normalized specification's nodes, breadth-first (so reported
    counterexamples have minimal length). The implementation side is
    abstracted as a {!source} of integer states — either process terms
    interned on the fly ({!proc_source}) or a precompiled {!Lts.t}
    ({!lts_source}) — and the refusal mode and divergence predicate are
    pluggable, so traces, stable-failures, failures-divergences, and
    determinism checking are all thin configurations of {!product}.

    The engine owns the shared mechanics: pair interning, parent tracking
    with O(depth) trace reconstruction, pair/deadline budgets, per-check
    instrumentation (wall time, states per second, peak frontier), and —
    with [workers > 1] — a level-synchronous multicore exploration over a
    fixed pool of OCaml 5 domains whose verdicts, counterexample traces,
    and state/pair counts are byte-identical to the sequential engine's. *)

type violation =
  | Trace_violation of Event.label
      (** the implementation performed this label where the specification
          forbids it *)
  | Refusal_violation of {
      offered : Event.label list;
          (** what the stable implementation state offers *)
      acceptances : Event.label list list;
          (** the specification's minimal acceptance sets at that point *)
    }
  | Deadlock
  | Divergence

type counterexample = {
  trace : Event.label list;
      (** visible labels (and possibly a final [Tick]) from the initial
          state to the violation; for trace violations the offending label
          is included as the last element *)
  violation : violation;
  impl_state : Proc.t;  (** the implementation term at the violation *)
}

type stats = {
  impl_states : int;  (** distinct implementation states visited *)
  spec_nodes : int;  (** normal-form nodes of the specification *)
  pairs : int;  (** product pairs visited *)
  wall_s : float;  (** wall-clock time spent in the search *)
  states_per_sec : float;
      (** [max impl_states pairs / wall_s] — the search throughput *)
  peak_frontier : int;
      (** largest number of discovered-but-unexplored pairs at any point *)
  workers : int;  (** domains used by the search (1 = sequential) *)
  par_speedup : float;
      (** estimated speedup over one worker: aggregate worker busy time
          divided by wall time; 1.0 for a sequential search *)
  reductions : (string * int * int) list;
      (** per reduction pass: name, implementation states before, states
          after. Empty for the raw (unreduced) engine and for [Fails]
          paths, whose counterexamples are re-derived unreduced. *)
}

type budget_kind =
  | Deadline  (** the wall-clock deadline passed *)
  | States  (** an [Lts] compilation hit its state budget *)
  | Pairs  (** the product exploration hit its pair budget *)
  | Interrupt  (** the cancellation token tripped (signal, drain, …) *)
  | Memory  (** the heap watermark was crossed before the OOM killer *)

val budget_kind_to_string : budget_kind -> string
(** Stable lowercase names ("deadline", "states", "pairs", "interrupt",
    "memory") used by every JSON schema that mentions an exhausted
    budget. *)

val budget_kind_of_string : string -> budget_kind option

type checkpoint = {
  explored : int;  (** commits completed at the recorded boundary *)
  pairs : int;  (** product pairs interned at the boundary *)
  impl_states : int;  (** informational: states interned when captured *)
  visited_digest : int;
      (** 52-bit rolling hash over every interned pair in interning
          order; validated when a resumed run crosses the boundary *)
  deadline_left : float option;
      (** unconsumed wall budget at capture, seconds; [None] = the run
          had no deadline *)
  exhausted : budget_kind;  (** why the original run stopped *)
  pipeline : string;
      (** fingerprint of the reduction pipeline the interrupted search ran
          under ([Reduce.fingerprint]; ["none"] for the raw engine). Pair
          ids and the visit-order digest are only reproducible under the
          same pipeline, so {!product} refuses to resume under any
          other. *)
}
(** A serializable commit-boundary snapshot of the deterministic search.
    The engine commits pairs in an order that is byte-identical at any
    worker count, so "the state after [explored] commits" determines the
    rest of the search: resuming replays the prefix (deadline unarmed,
    progress suppressed), validates [pairs]/[visited_digest] at the
    crossing point, then continues with the remaining budget. Final
    verdicts, counterexamples, and state/pair counts are byte-identical
    to an uninterrupted run. *)

exception Resume_mismatch of string
(** Raised when a resumed replay crosses the recorded position in a state
    that does not match the checkpoint — the script, assertion, or
    budgets differ from the interrupted run. *)

val json_of_checkpoint : checkpoint -> Obs.Json.t
(** Schema ["cspm-search-checkpoint/1"]; every field round-trips exactly
    ([visited_digest] is masked to 52 bits so a float-backed JSON number
    carries it losslessly). *)

val checkpoint_of_json : Obs.Json.t -> (checkpoint, string) result

type resume_hint = {
  frontier : int;
      (** discovered-but-unexplored states or pairs at the point of
          exhaustion — how much work was left in the queue *)
  deepest : Event.label list;
      (** visible trace to the most recently explored state; under BFS this
          is a deepest explored path, a natural place to resume or to
          narrow the model *)
  exhausted : budget_kind;
  checkpoint : checkpoint option;
      (** resumable snapshot of the interrupted product search; [None]
          when the exhaustion happened outside the product engine (an
          [Lts] compilation budget) or before any pair was interned *)
}

type result =
  | Holds of stats
  | Fails of counterexample
  | Inconclusive of stats * resume_hint
      (** a budget ran out before a verdict: the property neither holds nor
          fails on the explored prefix; [stats] counts what was explored *)

type refusal =
  [ `None  (** traces only *)
  | `Acceptances
    (** a stable implementation state must cover some minimal acceptance
        of the node (stable-failures refinement) *)
  | `Full
    (** a stable implementation state must offer every label the normal
        form can perform (the determinism check) *) ]

type raw_target =
  | Raw_term of Proc.t
  | Raw_state of int
      (** a successor produced by a worker, not yet interned: interning
          mutates the shared state tables, so it is deferred to the
          deterministic merge phase *)

type source = {
  initial : int;
  raw_step : unit -> int -> (Event.label * raw_target) list;
      (** [raw_step ()] builds a fresh stepper with its own private memo
          caches — one per worker domain, so the parallel hot path takes
          no locks *)
  intern : raw_target -> int;
      (** merge-phase only: admit a raw successor into the dense state
          space *)
  term_of : int -> Proc.t;
  state_count : unit -> int;
      (** distinct implementation states interned so far *)
  divergent : (int -> bool) option;
      (** [Some p]: check divergence — prune subtrees under divergent
          specification nodes and report a divergent implementation state
          elsewhere as a violation. [None]: divergence-blind. *)
}

(** Ample-set partial-order reduction hooks (see [Reduce.por_hooks]).
    [por_groups i] partitions state [i]'s transitions into groups owned by
    independent interleaved components ([] when the state has no such
    structure); [por_spec_free l] holds when the specification self-loops
    on [l] at every normal-form node (so [l] can neither cause nor mask a
    violation). When the ample conditions hold at a committed pair the
    engine explores a single qualifying group instead of the full
    successor set. Only consulted for [`None] (traces) refusal with a
    divergence-blind source. *)
type por = {
  por_groups : int -> (Event.label * int) list list;
  por_spec_free : Event.label -> bool;
}

type interner =
  [ `Id  (** hash-consed: [Proc.equal] / [Proc.hash], O(1) *)
  | `Structural
    (** deep [Proc.structural_equal] / [Proc.structural_hash]; the test
        oracle — verdicts must be identical to [`Id] *) ]

type progress = {
  explored : int;  (** pairs dequeued and expanded so far *)
  pairs : int;  (** pairs interned so far *)
  impl_states : int;  (** distinct implementation states so far *)
  frontier : int;  (** discovered-but-unexplored pairs right now *)
  elapsed_s : float;  (** wall-clock seconds since the search started *)
  rate : float;  (** explored pairs per second so far *)
  budget_frac : float;  (** fraction of the pair budget consumed *)
}
(** A snapshot handed to the throttled progress callback of {!product}. *)

val proc_source :
  ?interner:interner ->
  make_step:(unit -> Proc.t -> (Event.label * Proc.t) list) ->
  Proc.t ->
  source
(** States are process terms, interned on the fly as the search reaches
    them (early counterexamples avoid compiling the full state space).
    [make_step] is invoked once per worker domain so each gets a private
    transition memo. Default interner is [`Id]. *)

val lts_source : ?check_divergence:bool -> Lts.t -> source
(** States are the nodes of a precompiled graph. [check_divergence]
    (default [true]) precomputes the tau-SCC divergence bitset. *)

val visible_trace : Event.label list -> Event.label list
(** Drop [Tau] labels (keeps [Tick]). *)

val make_stats :
  ?wall_s:float -> ?peak_frontier:int -> ?workers:int -> ?par_speedup:float ->
  ?reductions:(string * int * int) list ->
  impl_states:int -> spec_nodes:int -> pairs:int -> unit -> stats
(** Assemble a {!stats} for results produced outside {!product} (partial
    compiles, deadlock/divergence checks); derives [states_per_sec]. *)

val product :
  refusal:refusal ->
  max_pairs:int ->
  ?stop_at:float ->
  ?workers:int ->
  ?obs:Obs.t ->
  ?progress:(progress -> unit) ->
  ?cancel:(unit -> bool) ->
  ?memory_limit_mb:int ->
  ?resume_from:checkpoint ->
  ?resume_deadline:float ->
  ?por:por ->
  ?pipeline:string ->
  norm:Normalise.t ->
  source ->
  result
(** Run the search. [stop_at] is an absolute wall-clock deadline (seconds,
    on the {!Obs.now} clock), polled once every 256 dequeues (a clock read
    is a syscall); an empty queue always yields the exact verdict even if
    the deadline has passed, so an {!Inconclusive} result always carries
    non-zero stats.

    [cancel] is a cancellation token polled on the same cadence: once it
    returns [true] the search stops with [Inconclusive] ([Interrupt]) and
    a fresh {!checkpoint} — the hook CLIs use to turn SIGINT/SIGTERM into
    a flushed checkpoint instead of a dead process. [memory_limit_mb]
    installs a heap watermark (also polled on the cadence): crossing it
    stops with [Inconclusive] ([Memory]) while the process is still
    healthy enough to write its report. Neither affects verdicts of runs
    that complete.

    [resume_from] replays a checkpointed search: the deterministic prefix
    is re-explored with the deadline unarmed and progress suppressed
    ([cancel] and the memory guard stay live), the engine validates the
    pair count and visited digest at the recorded boundary (raising
    {!Resume_mismatch} on disagreement), and only then arms
    [resume_deadline] seconds of wall budget (default: the checkpoint's
    own [deadline_left]) measured from the crossing point. The final
    verdict, counterexample, and state/pair counts are byte-identical to
    an uninterrupted run with sufficient budget.

    [workers] (default 1) sets the size of the domain pool; the calling
    domain participates, so [workers = 4] spawns three extra domains.
    Every BFS level of the frontier is expanded concurrently into
    position-indexed slots and merged in frontier order, so verdicts,
    counterexample traces, and state/pair counts are byte-identical to a
    [workers = 1] run — only [wall_s], [states_per_sec], and
    [par_speedup] vary.

    [obs] (default {!Obs.silent}) receives a [search.product] span (plus
    one [search.level] span per BFS level when [workers > 1]), counters
    for pairs explored/interned and per-domain work items, gauges for the
    live frontier depth, budget fraction, and implementation state count,
    and level-size histograms. With the silent handle every update is a
    single branch — the hot path allocates nothing.

    [progress] is invoked at the deadline-poll cadence (once per 256
    dequeues) with a {!progress} snapshot; searches smaller than one
    cadence interval never fire it. The callback runs on the merge domain
    and must not mutate the search. Neither [obs] nor [progress] affects
    verdicts, counterexamples, or state/pair counts. *)
