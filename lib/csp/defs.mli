(** Definition environments: channel declarations, datatypes, nametypes,
    named process definitions and user functions.

    A [Defs.t] plays the role of a loaded CSPm script: it gives the
    operational semantics the channel field types needed to expand input
    prefixes, and resolves named process calls. *)

type t

exception Duplicate of string
exception Unknown_channel of string

val create : ?domain_limit:int -> unit -> t
(** [domain_limit] caps every enumerated channel-field domain
    (default [100_000]). *)

val copy : t -> t

val id : t -> int
(** A unique identifier per environment (fresh on [create] and [copy]);
    used to key transition caches. *)

val domain_limit : t -> int
(** The domain cap this environment was created with (it affects every
    enumerated event set, so artifact digests must include it). *)

val domain : t -> Ty.t -> Value.t list
(** Enumerate a type's domain under this environment's declarations and
    domain limit. *)

(** {1 Declarations} *)

val declare_channel : t -> string -> Ty.t list -> unit
(** @raise Duplicate if the channel is already declared. *)

val declare_datatype : t -> string -> (string * Ty.t list) list -> unit
(** Declares the datatype and registers each constructor.
    @raise Duplicate on redeclaration of the type or of a constructor. *)

val declare_nametype : t -> string -> Ty.t -> unit

val define_proc : t -> string -> string list -> Proc.t -> unit
(** [define_proc t name params body].
    @raise Duplicate if [name] is already defined. *)

val define_fun : t -> string -> string list -> Expr.t -> unit

(** {1 Lookups} *)

val channel_type : t -> string -> Ty.t list option
val channels : t -> (string * Ty.t list) list
(** All declared channels in declaration order. *)

val proc : t -> string -> (string list * Proc.t) option
val procs : t -> (string * (string list * Proc.t)) list
val ty_lookup : t -> Ty.lookup
val fenv : t -> Expr.fenv
val funcs : t -> (string * (string list * Expr.t)) list
(** All user-defined functions, sorted by name. *)

val find_ctor : t -> string -> (string * Ty.t list) option
(** [find_ctor t c] returns the datatype name and argument types of
    constructor [c], if declared by any [datatype]. *)

val datatypes : t -> (string * (string * Ty.t list) list) list
val nametypes : t -> (string * Ty.t) list

(** {1 Domains} *)

val field_domain : t -> chan:string -> int -> Value.t list
(** Domain of the [i]-th (0-based) field of channel [chan].
    @raise Unknown_channel if undeclared, [Invalid_argument] if out of
    range. *)

val chan_events : t -> string -> Event.t list
(** Every event on a channel (cartesian product of its field domains).
    @raise Unknown_channel if undeclared. *)

val events_of : t -> Eventset.t -> Event.t list
(** Enumerate a symbolic event set against this environment. *)

val alphabet : t -> Event.t list
(** Every event of every declared channel. *)
