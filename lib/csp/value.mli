(** Ground data values carried by CSP events.

    Values are the payloads communicated on channels: integers, booleans,
    datatype constructor applications (e.g. [mac(k, reqSw)]) and tuples.
    They form the leaves of process states, so they support total ordering,
    structural equality and hashing. *)

type t =
  | Int of int
  | Bool of bool
  | Ctor of string * t list  (** datatype constructor, possibly with fields *)
  | Tuple of t list

val sym : string -> t
(** [sym s] is the nullary constructor [Ctor (s, [])]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val equal_list : t list -> t list -> bool
val compare_list : t list -> t list -> int

val pp : Format.formatter -> t -> unit
(** CSPm-compatible rendering: constructor fields use dot notation
    ([mac.K.reqSw]), tuples use parentheses. *)

val pp_atom : Format.formatter -> t -> unit
(** Like {!pp} but parenthesizes constructor applications with fields, for
    use inside dotted event notation. *)

val to_string : t -> string

val as_int : t -> int
(** @raise Invalid_argument if the value is not an [Int]. *)

val as_bool : t -> bool
(** @raise Invalid_argument if the value is not a [Bool]. *)
